package iochar

import (
	"strings"
	"testing"
)

// tierOpts is sized so the heterogeneous fleet scales strictly: at 16384
// both the 1 TB spindles and the 800 GB flash drive stay above the
// MinSectors floor.
func tierOpts(extra ...Option) Options {
	return NewOptions(append([]Option{
		WithScale(16384), WithSlaves(3), WithMapTaskTarget(8),
	}, extra...)...)
}

var tierFactors = Factors{Slots: Slots1x8, MemoryGB: 16, Compress: true}

// TestTieredRunClassGroupsAndAwaitCollapse runs TeraSort all-mechanical and
// with the flash intermediate tier: the tiered report must carry the
// per-class iostat groups, and the intermediate-disk await — the paper's
// headline pathology (small random spill/shuffle I/O on spindles) — must
// collapse when that traffic moves to flash.
func TestTieredRunClassGroupsAndAwaitCollapse(t *testing.T) {
	base, err := Run(TS, tierFactors, tierOpts())
	if err != nil {
		t.Fatal(err)
	}
	if base.Classes != nil {
		t.Errorf("untiered run reported per-class groups: %v", base.Classes)
	}

	tiered, err := Run(TS, tierFactors, tierOpts(WithIntermediateTier(TierSSD)))
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"hdd", "ssd"} {
		r, ok := tiered.Classes[class]
		if !ok || r == nil {
			t.Fatalf("tiered run missing class group %q (have %v)", class, tiered.Classes)
		}
		if r.Util.Len() == 0 {
			t.Errorf("class group %q collected no samples", class)
		}
	}
	if util := tiered.Classes["ssd"].Util.Max(); util <= 0 {
		t.Error("flash devices saw no traffic in a tiered TeraSort")
	}

	baseAwait := base.MR.AwaitMs.MeanNonzero()
	tierAwait := tiered.MR.AwaitMs.MeanNonzero()
	if tierAwait >= baseAwait {
		t.Errorf("intermediate-disk await did not collapse on flash: %.3f ms tiered vs %.3f ms on spindles", tierAwait, baseAwait)
	}
}

// A tiered fleet must scale strictly: a Scale that would clamp either
// device class to the capacity floor is an error, not a silent
// equalization of the two capacities.
func TestTieredRunRejectsClampingScale(t *testing.T) {
	_, err := Run(TS, tierFactors, NewOptions(
		WithScale(262144), WithSlaves(3), WithMapTaskTarget(8),
		WithIntermediateTier(TierSSD)))
	if err == nil {
		t.Fatal("tiered run at a clamping scale must fail")
	}
	if !strings.Contains(err.Error(), "floor") {
		t.Errorf("error should name the capacity floor, got: %v", err)
	}
}

// Pooled spindles cannot be two device classes.
func TestTieredRunRejectsSharedDataDisks(t *testing.T) {
	_, err := Run(TS, tierFactors, tierOpts(
		WithSharedDataDisks(), WithIntermediateTier(TierSSD)))
	if err == nil || !strings.Contains(err.Error(), "SharedDataDisks") {
		t.Errorf("want SharedDataDisks conflict error, got: %v", err)
	}
}

// WithSSDParams must be given actual flash params, not a mechanical drive.
func TestWithSSDParamsRequiresFlashModel(t *testing.T) {
	mech := DataCenterSSD()
	mech.SSD = nil // a "flash override" with no flash model
	_, err := Run(TS, tierFactors, tierOpts(
		WithIntermediateTier(TierSSD), WithSSDParams(mech)))
	if err == nil || !strings.Contains(err.Error(), "flash") {
		t.Errorf("want flash-model validation error, got: %v", err)
	}
}

// ParseTier mirrors the CLI -tier flag values.
func TestParseTier(t *testing.T) {
	if c, err := ParseTier("ssd"); err != nil || c != TierSSD {
		t.Errorf("ParseTier(ssd) = %v, %v", c, err)
	}
	if c, err := ParseTier("hdd"); err != nil || c != TierHDD {
		t.Errorf("ParseTier(hdd) = %v, %v", c, err)
	}
	if _, err := ParseTier("nvme"); err == nil {
		t.Error("ParseTier must reject unknown classes")
	}
}
