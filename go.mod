module iochar

go 1.23
