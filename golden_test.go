package iochar

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"iochar/internal/bench"
	"iochar/internal/core"
)

// The golden files pin the simulated outcome of the HDD-only path: the full
// -all byte stream and the per-workload bench fingerprints at goldenOpts.
// Any change to device timing, scheduling, merging, or accounting that
// alters simulated results on the default (untiered) configuration fails
// these tests. Regenerate deliberately with:
//
//	IOCHAR_UPDATE_GOLDEN=1 go test -run TestGolden ./...
const (
	goldenAllFile          = "testdata/golden_all.txt"
	goldenFingerprintsFile = "testdata/golden_fingerprints.txt"
)

// TestGoldenAllOutput pins the -all output byte stream at goldenOpts. With
// tiering disabled nothing in the device-model extraction may shift a single
// byte of any figure or table.
func TestGoldenAllOutput(t *testing.T) {
	got := renderAll(t, NewSuite(goldenOpts))
	if os.Getenv("IOCHAR_UPDATE_GOLDEN") != "" {
		writeGolden(t, goldenAllFile, got)
		return
	}
	want, err := os.ReadFile(goldenAllFile)
	if err != nil {
		t.Fatalf("missing golden (regenerate with IOCHAR_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-all output diverged from golden (%d bytes, want %d)\n%s",
			len(got), len(want), firstDiff(got, want))
	}
}

// TestGoldenBenchFingerprints pins the bench outcome fingerprint of every
// workload on the untiered path. The fingerprint hashes virtual wall time,
// the kernel event count, HDFS/MR byte and request totals, and the job
// counters — so even an event-count-neutral timing change is caught.
func TestGoldenBenchFingerprints(t *testing.T) {
	var buf bytes.Buffer
	for _, w := range append(core.PaperWorkloads(), core.Join) {
		rep, err := core.RunOne(w, core.SlotsRuns[0], core.Options{
			Scale:         goldenOpts.Scale,
			Slaves:        goldenOpts.Slaves,
			MapTaskTarget: goldenOpts.MapTaskTarget,
		})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		fmt.Fprintf(&buf, "%s %s\n", w, bench.Fingerprint(rep))
	}
	got := buf.Bytes()
	if os.Getenv("IOCHAR_UPDATE_GOLDEN") != "" {
		writeGolden(t, goldenFingerprintsFile, got)
		return
	}
	want, err := os.ReadFile(goldenFingerprintsFile)
	if err != nil {
		t.Fatalf("missing golden (regenerate with IOCHAR_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("bench fingerprints diverged from golden:\ngot:\n%swant:\n%s", got, want)
	}
}

func writeGolden(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d bytes)", path, len(data))
}
