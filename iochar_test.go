package iochar

import (
	"bytes"
	"strings"
	"testing"
)

// facadeOpts keeps facade tests fast; the heavyweight shape assertions live
// in internal/core's tests.
var facadeOpts = Options{Scale: 65536, Slaves: 4, MapTaskTarget: 24}

func TestRunFacade(t *testing.T) {
	rep, err := Run(AGG, Factors{Slots: Slots1x8, MemoryGB: 32}, facadeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != AGG || rep.Wall <= 0 {
		t.Errorf("unexpected report: %s %v", rep.Workload, rep.Wall)
	}
	var buf bytes.Buffer
	Summarize(&buf, rep)
	if !strings.Contains(buf.String(), "workload AGG") {
		t.Errorf("summary missing workload line:\n%s", buf.String())
	}
}

func TestRunFacadeInvalidWorkload(t *testing.T) {
	if _, err := Run(Workload(0), Factors{Slots: Slots1x8, MemoryGB: 16}, facadeOpts); err == nil {
		t.Error("want error")
	}
	if _, err := ParseWorkload("XX"); err == nil {
		t.Error("want error from ParseWorkload")
	}
}

func TestFiguresAndTablesLists(t *testing.T) {
	if got := Figures(); len(got) != 12 || got[0] != 1 || got[11] != 12 {
		t.Errorf("Figures() = %v", got)
	}
	if got := Tables(); len(got) != 3 || got[0] != 5 {
		t.Errorf("Tables() = %v", got)
	}
}

func TestRenderFigureAndCSV(t *testing.T) {
	s := NewSuite(facadeOpts)
	var buf bytes.Buffer
	if err := RenderFigure(&buf, s, 12); err != nil { // compression family: 4 cells... wait, fig 12 is MR-only, compress family
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 12") || !strings.Contains(out, "TS_on") {
		t.Errorf("figure rendering incomplete:\n%s", out)
	}
	buf.Reset()
	if err := RenderFigureCSV(&buf, s, 12); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "figure,panel,label") {
		t.Error("CSV header missing")
	}
	// Cells must be shared: figure 12 and figure 3 use the same runs.
	n := s.CachedRuns()
	buf.Reset()
	if err := RenderFigure(&buf, s, 3); err != nil {
		t.Fatal(err)
	}
	if s.CachedRuns() != n {
		t.Errorf("figure 3 re-ran cells: %d -> %d", n, s.CachedRuns())
	}
}

func TestRenderTableAndCSV(t *testing.T) {
	s := NewSuite(facadeOpts)
	var buf bytes.Buffer
	if err := RenderTable(&buf, s, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Peak HDFS Disk Read Bandwidth") {
		t.Errorf("table rendering incomplete:\n%s", buf.String())
	}
	buf.Reset()
	if err := RenderTableCSV(&buf, s, 5); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) != 5 {
		t.Errorf("table CSV rows:\n%s", buf.String())
	}
}

func TestRenderErrors(t *testing.T) {
	s := NewSuite(facadeOpts)
	var buf bytes.Buffer
	if err := RenderFigure(&buf, s, 99); err == nil {
		t.Error("want error for figure 99")
	}
	if err := RenderTable(&buf, s, 1); err == nil {
		t.Error("want error for table 1 (configuration table)")
	}
}
