// Package iochar reproduces "I/O Characterization of Big Data Workloads in
// Data Centers" (Pan, Yue, Xiong, Hao — BPOE-4, 2014) as a self-contained
// simulation study: a deterministic virtual-time Hadoop-1.x testbed (HDFS,
// MapReduce, page cache, mechanical disks, 1 GbE network), the paper's four
// BigDataBench workloads executing real data end to end, an iostat clone,
// and a harness that regenerates every figure and table of the paper's
// evaluation.
//
// The one-call entry points:
//
//	suite := iochar.NewSuite(iochar.Options{Scale: 4096})
//	iochar.RenderFigure(os.Stdout, suite, 1)    // Figure 1 of the paper
//	iochar.RenderTable(os.Stdout, suite, 6)     // Table 6 of the paper
//
// or run a single experiment cell:
//
//	rep, err := iochar.Run("TS", iochar.Factors{
//	    Slots: iochar.Slots1x8, MemoryGB: 32, Compress: true,
//	}, iochar.Options{})
//
// The building blocks live under internal/: the simulation kernel (sim),
// the disk and page-cache models (disk, pagecache), the filesystems
// (localfs, hdfs), the MapReduce runtime (mapred), the workloads, and the
// characterization framework (core). This package is the stable facade.
package iochar

import (
	"io"
	"time"

	"iochar/internal/core"
	"iochar/internal/faults"
	"iochar/internal/report"
)

// Options configures the simulated testbed; the zero value gives the
// defaults documented on core.Options (scale 1/1024, 10 slaves, 1 s-scaled
// iostat interval).
type Options = core.Options

// Factors is one cell of the paper's experiment matrix: task slots, memory
// size, and intermediate-data compression.
type Factors = core.Factors

// SlotsConfig names a per-node task-slot setting.
type SlotsConfig = core.SlotsConfig

// The paper's two slot settings.
var (
	Slots1x8  = core.Slots1x8
	Slots2x16 = core.Slots2x16
)

// Experiment families (shared baselines across figures, per the captions).
var (
	SlotsRuns    = core.SlotsRuns
	MemoryRuns   = core.MemoryRuns
	CompressRuns = core.CompressRuns
)

// RunReport is one executed cell: iostat reports for the HDFS and
// MapReduce-intermediate disk groups plus per-job counters.
type RunReport = core.RunReport

// Suite caches experiment cells across figures and tables.
type Suite = core.Suite

// NewSuite creates an experiment suite.
func NewSuite(opts Options) *Suite { return core.NewSuite(opts) }

// Run executes one workload ("TS", "AGG", "KM", "PR") under one factor
// setting on a fresh simulated cluster.
func Run(workload string, f Factors, opts Options) (*RunReport, error) {
	return core.RunOne(workload, f, opts)
}

// Figures returns the reproducible figure numbers (1-12).
func Figures() []int { return core.Figures() }

// Tables returns the reproducible table numbers (5-7; Tables 1-4 are
// configuration and notation, encoded as package defaults).
func Tables() []int { return core.Tables() }

// RenderFigure regenerates paper Figure n and renders it to w.
func RenderFigure(w io.Writer, s *Suite, n int) error {
	fd, err := s.Figure(n)
	if err != nil {
		return err
	}
	report.WriteFigure(w, fd)
	return nil
}

// RenderTable regenerates paper Table n and renders it to w.
func RenderTable(w io.Writer, s *Suite, n int) error {
	td, err := s.Table(n)
	if err != nil {
		return err
	}
	report.WriteTable(w, td)
	return nil
}

// RenderFigureCSV emits Figure n's data as CSV for external plotting.
func RenderFigureCSV(w io.Writer, s *Suite, n int) error {
	fd, err := s.Figure(n)
	if err != nil {
		return err
	}
	report.WriteFigureCSV(w, fd)
	return nil
}

// RenderTableCSV emits Table n as CSV.
func RenderTableCSV(w io.Writer, s *Suite, n int) error {
	td, err := s.Table(n)
	if err != nil {
		return err
	}
	report.WriteTableCSV(w, td)
	return nil
}

// FaultPlan is a deterministic, seeded schedule of failures (disk, node,
// network) injected into a run via Options.Faults.
type FaultPlan = faults.Plan

// ParseFaultPlan parses the fault-plan string syntax, e.g.
// "kill-datanode@15s:node=slave-02;drop-shuffle@5s:until=20s,prob=0.3".
func ParseFaultPlan(s string) (FaultPlan, error) { return faults.ParsePlan(s) }

// RandomFaultPlan samples n fault events over [0, window) against the named
// nodes, deterministically for a seed.
func RandomFaultPlan(seed int64, nodes []string, window time.Duration, n int) FaultPlan {
	return faults.RandomPlan(seed, nodes, window, n)
}

// Summarize renders one run's job counters and byte totals to w, including
// the fault/recovery block for runs that injected failures.
func Summarize(w io.Writer, rep *RunReport) { report.JobSummary(w, rep) }

// RenderAttribution renders the per-stage I/O demand breakdown of every
// workload (the paper's future work, implemented as an extension).
func RenderAttribution(w io.Writer, s *Suite) error {
	td, err := s.AttributionTable()
	if err != nil {
		return err
	}
	report.WriteTable(w, td)
	return nil
}
