// Package iochar reproduces "I/O Characterization of Big Data Workloads in
// Data Centers" (Pan, Yue, Xiong, Hao — BPOE-4, 2014) as a self-contained
// simulation study: a deterministic virtual-time Hadoop-1.x testbed (HDFS,
// MapReduce, page cache, mechanical disks, 1 GbE network), the paper's four
// BigDataBench workloads executing real data end to end, an iostat clone,
// and a harness that regenerates every figure and table of the paper's
// evaluation.
//
// The one-call entry points:
//
//	suite := iochar.NewSuite(iochar.Options{Scale: 4096},
//	    iochar.WithParallelism(4),          // fan cells out across 4 workers
//	    iochar.WithCacheDir(".iochar-cache")) // persist results across runs
//	iochar.RenderFigure(os.Stdout, suite, 1)    // Figure 1 of the paper
//	iochar.RenderTable(os.Stdout, suite, 6)     // Table 6 of the paper
//
// or run a single experiment cell:
//
//	rep, err := iochar.Run(iochar.TS, iochar.Factors{
//	    Slots: iochar.Slots1x8, MemoryGB: 32, Compress: true,
//	}, iochar.Options{})
//
// Long sweeps are cancellable: RunContext and Suite.RunContext thread a
// context.Context down into the discrete-event loop.
//
// The building blocks live under internal/: the simulation kernel (sim),
// the disk and page-cache models (disk, pagecache), the filesystems
// (localfs, hdfs), the MapReduce runtime (mapred), the workloads, and the
// characterization framework (core). This package is the stable facade.
package iochar

import (
	"context"
	"io"
	"time"

	"iochar/internal/core"
	"iochar/internal/disk"
	"iochar/internal/faults"
	"iochar/internal/iostat"
	"iochar/internal/report"
)

// Options configures the simulated testbed; the zero value gives the
// defaults documented on core.Options (scale 1/1024, 10 slaves, 1 s-scaled
// iostat interval). Prefer building it with NewOptions and the With*
// functional options; the struct form remains as a thin compatibility
// layer for one release.
type Options = core.Options

// Option configures the testbed one knob at a time; see NewOptions.
type Option = core.Option

// NewOptions builds an Options value from functional options:
//
//	opts := iochar.NewOptions(iochar.WithScale(4096), iochar.WithAudit())
//
// Zero-valued knobs keep their documented defaults, exactly as for a
// hand-filled struct. Extend an existing value with Options.With.
func NewOptions(opts ...Option) Options { return core.NewOptions(opts...) }

// The testbed knobs, mirrored from internal/core.
var (
	WithScale           = core.WithScale           // capacity divisor vs the paper's testbed
	WithSlaves          = core.WithSlaves          // number of slave nodes
	WithRacks           = core.WithRacks           // top-of-rack topology (1 = flat fabric)
	WithUplink          = core.WithUplink          // rack uplink bytes/sec (0 = NIC rate)
	WithSeed            = core.WithSeed            // simulation seed
	WithSampleInterval  = core.WithSampleInterval  // iostat sampling interval
	WithMapTaskTarget   = core.WithMapTaskTarget   // map-task bound for the largest workload
	WithInputFraction   = core.WithInputFraction   // shrink inputs further (0,1]
	WithHistograms      = core.WithHistograms      // per-request latency/size distributions
	WithAudit           = core.WithAudit           // post-run invariant audit
	WithIntegrity       = core.WithIntegrity       // end-to-end HDFS checksums
	WithScrubRate       = core.WithScrubRate       // background replica scrubber rate
	WithFaults          = core.WithFaults          // deterministic fault plan
	WithRecovery        = core.WithRecovery        // HDFS failure detection/repair tuning
	WithMasterRecovery  = core.WithMasterRecovery  // journaled NameNode/JobTracker state + restart recovery
	WithFaultSlowDisk   = core.WithFaultSlowDisk   // one-knob straggler disk
	WithSharedDataDisks = core.WithSharedDataDisks // pooled instead of dedicated spindles
	WithTraceAttach     = core.WithTraceAttach     // per-disk observer hook
	WithTuneMapred      = core.WithTuneMapred      // MapReduce config hook
	WithInspect         = core.WithInspect         // post-run simulation-context hook

	WithIntermediateTier = core.WithIntermediateTier // device class for intermediate data
	WithSSDParams        = core.WithSSDParams        // override the tiered flash drive
)

// Tier is a block-device class for storage-tier policy: the intermediate
// (spill/merge/shuffle) volumes can be provisioned on TierSSD while HDFS
// data disks stay mechanical. Parse user input with ParseTier.
type Tier = disk.Class

// The device classes.
const (
	TierHDD = disk.ClassHDD // mechanical: seek + rotation + transfer
	TierSSD = disk.ClassSSD // flash: per-op latency + bandwidth + channels
)

// ParseTier resolves a device-class name ("hdd" or "ssd").
func ParseTier(s string) (Tier, error) { return disk.ParseClass(s) }

// DataCenterSSD returns the default flash drive a tiered run provisions —
// the template for WithSSDParams overrides (adjust latency, bandwidth
// asymmetry, or channel count on the copy).
func DataCenterSSD() disk.Params { return disk.DataCenterSSD() }

// Factors is one cell of the paper's experiment matrix: task slots, memory
// size, and intermediate-data compression.
type Factors = core.Factors

// SlotsConfig names a per-node task-slot setting.
type SlotsConfig = core.SlotsConfig

// The paper's two slot settings.
var (
	Slots1x8  = core.Slots1x8
	Slots2x16 = core.Slots2x16
)

// Experiment families (shared baselines across figures, per the captions).
var (
	SlotsRuns    = core.SlotsRuns
	MemoryRuns   = core.MemoryRuns
	CompressRuns = core.CompressRuns
)

// RunReport is one executed cell: iostat reports for the HDFS and
// MapReduce-intermediate disk groups plus per-job counters.
type RunReport = core.RunReport

// AuditReport is the post-run invariant audit (HDFS replication, localfs
// leak accounting, dirty pages, canonical output checksums) attached to
// RunReport.Audit when Options.Audit is set — the chaos harness's oracle
// input, usable standalone for any run.
type AuditReport = core.AuditReport

// Workload is a typed benchmark identifier; use the TS/AGG/KM/PR constants
// (or Join for the extension) instead of magic strings. It serializes as
// the paper abbreviation and implements fmt.Stringer.
type Workload = core.Workload

// The paper's four workloads and the Join extension.
const (
	TS   = core.TS   // TeraSort
	AGG  = core.AGG  // Hive Aggregation
	KM   = core.KM   // K-means
	PR   = core.PR   // PageRank
	Join = core.Join // Hive Join (extension)
)

// ParseWorkload resolves a workload name ("TS", "terasort", ... in any
// case) to its typed identifier.
func ParseWorkload(s string) (Workload, error) { return core.ParseWorkload(s) }

// Workloads returns the paper's four workloads in figure order.
func Workloads() []Workload { return core.PaperWorkloads() }

// Suite is the experiment executor: it resolves cells against an in-memory
// result map, an optional persistent on-disk cache, and fresh execution on
// a bounded worker pool, deduplicating concurrent requests so figures that
// share baseline runs never execute a cell twice. Suites are safe for
// concurrent use.
type Suite = core.Suite

// SuiteOption configures executor behaviour on NewSuite.
type SuiteOption = core.SuiteOption

// ProgressEvent reports one experiment cell resolving (executed or loaded
// from the persistent cache); see WithProgress.
type ProgressEvent = core.ProgressEvent

// WithParallelism bounds the suite's worker pool: at most n experiment
// cells simulate concurrently (n < 1 selects GOMAXPROCS). Results are
// byte-identical at every parallelism level.
func WithParallelism(n int) SuiteOption { return core.WithParallelism(n) }

// WithCacheDir persists resolved cells as versioned JSON under dir, so
// repeat invocations skip completed cells entirely. Corrupt, truncated or
// schema-stale entries are treated as misses and rewritten.
func WithCacheDir(dir string) SuiteOption { return core.WithCacheDir(dir) }

// WithProgress installs a callback fired as cells resolve (possibly from
// concurrent worker goroutines).
func WithProgress(fn func(ProgressEvent)) SuiteOption { return core.WithProgress(fn) }

// NewSuite creates an experiment suite. With no SuiteOptions it executes
// sequentially and keeps results only in memory.
func NewSuite(opts Options, sopts ...SuiteOption) *Suite { return core.NewSuite(opts, sopts...) }

// Run executes one workload under one factor setting on a fresh simulated
// cluster.
func Run(w Workload, f Factors, opts Options) (*RunReport, error) {
	return core.RunOne(w, f, opts)
}

// RunContext is Run with cancellation: ctx is threaded into the
// discrete-event loop, so cancelling it aborts the simulation promptly.
func RunContext(ctx context.Context, w Workload, f Factors, opts Options) (*RunReport, error) {
	return core.RunOneContext(ctx, w, f, opts)
}

// Cell is one (workload, factors) coordinate of the experiment matrix.
type Cell = core.Cell

// RunSource says where a resolved cell came from (see ProgressEvent).
type RunSource = core.RunSource

// The cell resolution sources.
const (
	SourceExecuted = core.SourceExecuted // simulated fresh
	SourceDisk     = core.SourceDisk     // loaded from the persistent cache
)

// MatrixCells returns every distinct cell of the paper's experiment matrix
// (baseline cells shared between factor families listed once).
func MatrixCells() []Cell { return core.MatrixCells() }

// FigureCells returns the cells paper Figure n renders from.
func FigureCells(n int) ([]Cell, error) { return core.FigureCells(n) }

// TableCells returns the cells paper Table n renders from.
func TableCells(n int) ([]Cell, error) { return core.TableCells(n) }

// Figures returns the reproducible figure numbers (1-12).
func Figures() []int { return core.Figures() }

// Tables returns the reproducible table numbers (5-7; Tables 1-4 are
// configuration and notation, encoded as package defaults).
func Tables() []int { return core.Tables() }

// RenderFigure regenerates paper Figure n and renders it to w.
func RenderFigure(w io.Writer, s *Suite, n int) error {
	fd, err := s.Figure(n)
	if err != nil {
		return err
	}
	report.WriteFigure(w, fd)
	return nil
}

// RenderTable regenerates paper Table n and renders it to w.
func RenderTable(w io.Writer, s *Suite, n int) error {
	td, err := s.Table(n)
	if err != nil {
		return err
	}
	report.WriteTable(w, td)
	return nil
}

// RenderFigureCSV emits Figure n's data as CSV for external plotting.
func RenderFigureCSV(w io.Writer, s *Suite, n int) error {
	fd, err := s.Figure(n)
	if err != nil {
		return err
	}
	report.WriteFigureCSV(w, fd)
	return nil
}

// RenderTableCSV emits Table n as CSV.
func RenderTableCSV(w io.Writer, s *Suite, n int) error {
	td, err := s.Table(n)
	if err != nil {
		return err
	}
	report.WriteTableCSV(w, td)
	return nil
}

// FaultPlan is a deterministic, seeded schedule of failures (disk, node,
// network) injected into a run via Options.Faults.
type FaultPlan = faults.Plan

// ParseFaultPlan parses the fault-plan string syntax, e.g.
// "kill-datanode@15s:node=slave-02;drop-shuffle@5s:until=20s,prob=0.3".
func ParseFaultPlan(s string) (FaultPlan, error) { return faults.ParsePlan(s) }

// RandomFaultPlan samples n fault events over [0, window) against the named
// nodes, deterministically for a seed.
func RandomFaultPlan(seed int64, nodes []string, window time.Duration, n int) FaultPlan {
	return faults.RandomPlan(seed, nodes, window, n)
}

// Summarize renders one run's job counters and byte totals to w, including
// the fault/recovery block for runs that injected failures.
func Summarize(w io.Writer, rep *RunReport) { report.JobSummary(w, rep) }

// RenderAttribution renders the per-stage I/O demand breakdown of every
// workload (the paper's future work, implemented as an extension).
func RenderAttribution(w io.Writer, s *Suite) error {
	td, err := s.AttributionTable()
	if err != nil {
		return err
	}
	report.WriteTable(w, td)
	return nil
}

// RenderLatencyTable renders per-request latency/size distributions
// (p50/p95/p99/max of await, svctm and request size) for every workload's
// baseline cell. The suite must be built with Options.Histograms set.
func RenderLatencyTable(w io.Writer, s *Suite) error {
	td, err := s.LatencyTable()
	if err != nil {
		return err
	}
	report.WriteTable(w, td)
	return nil
}

// PhysicalAttribution accumulates device-level per-stage I/O totals from
// stage-tagged request completions; attach it to data disks via
// Options.TraceAttach and render with its Table method.
type PhysicalAttribution = core.PhysicalAttribution

// NewPhysicalAttribution returns an empty physical per-stage accumulator.
func NewPhysicalAttribution() *PhysicalAttribution { return core.NewPhysicalAttribution() }

// RenderPhysicalAttribution renders the accumulated physical per-stage
// totals to w.
func RenderPhysicalAttribution(w io.Writer, pa *PhysicalAttribution) {
	report.WriteTable(w, pa.Table())
}

// LatencyDists renders one monitored group's per-request distributions
// (collected under Options.Histograms) as p50/p95/p99/max rows.
func LatencyDists(w io.Writer, name string, h *iostat.Hists) {
	report.WriteLatencyDists(w, name, h)
}
