package iochar

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"iochar/internal/core"
)

// benchOpts is the shared benchmark testbed: the paper's 1+10 layout at an
// aggressive scale so a full -bench=. pass stays in minutes. Experiment
// cells are cached in one suite across all figure/table benchmarks, exactly
// as `iochar -all` shares them, so each cell executes once per `go test`.
var benchOpts = core.Options{
	Scale:         16384,
	Slaves:        10,
	MapTaskTarget: 64,
	Seed:          1,
}

var (
	benchSuiteOnce sync.Once
	benchSuite     *core.Suite
)

func suite() *core.Suite {
	benchSuiteOnce.Do(func() { benchSuite = core.NewSuite(benchOpts) })
	return benchSuite
}

// reportShape attaches the figure's headline numbers to the benchmark
// output so `go test -bench` doubles as the reproduction record.
func reportShape(b *testing.B, fd *core.FigureData) {
	b.Helper()
	for _, panel := range fd.Panels {
		for _, r := range panel.Rows {
			b.ReportMetric(r.Summary, fmt.Sprintf("%s/%s", sanitize(panel.Title), r.Label))
		}
		break // first panel is enough for the metric line; full data via cmd/iochar
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '—':
			out = append(out, '_')
		case r == '/':
			out = append(out, '-')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// benchFigure regenerates one paper figure per iteration (cached after the
// first, as in the CLI).
func benchFigure(b *testing.B, n int) {
	b.Helper()
	var fd *core.FigureData
	var err error
	for i := 0; i < b.N; i++ {
		fd, err = suite().Figure(n)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportShape(b, fd)
}

// One benchmark per evaluation figure (paper Figures 1-12).

func BenchmarkFigure1(b *testing.B)  { benchFigure(b, 1) }
func BenchmarkFigure2(b *testing.B)  { benchFigure(b, 2) }
func BenchmarkFigure3(b *testing.B)  { benchFigure(b, 3) }
func BenchmarkFigure4(b *testing.B)  { benchFigure(b, 4) }
func BenchmarkFigure5(b *testing.B)  { benchFigure(b, 5) }
func BenchmarkFigure6(b *testing.B)  { benchFigure(b, 6) }
func BenchmarkFigure7(b *testing.B)  { benchFigure(b, 7) }
func BenchmarkFigure8(b *testing.B)  { benchFigure(b, 8) }
func BenchmarkFigure9(b *testing.B)  { benchFigure(b, 9) }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, 10) }
func BenchmarkFigure11(b *testing.B) { benchFigure(b, 11) }
func BenchmarkFigure12(b *testing.B) { benchFigure(b, 12) }

// One benchmark per evaluation table (paper Tables 5-7).

func benchTable(b *testing.B, n int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := suite().Table(n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) { benchTable(b, 5) }
func BenchmarkTable6(b *testing.B) { benchTable(b, 6) }
func BenchmarkTable7(b *testing.B) { benchTable(b, 7) }

// BenchmarkWorkloads times one full execution of each workload per
// iteration on a fresh testbed — the raw cost of the simulation itself.
func BenchmarkWorkloads(b *testing.B) {
	for _, wkey := range core.WorkloadOrder {
		b.Run(wkey.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := core.RunOne(wkey, core.SlotsRuns[0], benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(rep.Wall.Seconds(), "virtual-s/op")
				}
			}
		})
	}
}

// Ablation benchmarks: the design choices DESIGN.md calls out, each toggled
// off to show its effect on the headline metrics. Results are reported as
// custom metrics, not asserted — ablations are evidence, not tests.

// BenchmarkAblationCompression contrasts TeraSort's intermediate traffic
// with the codec on and off (the paper's Figure 3/12 mechanism).
func BenchmarkAblationCompression(b *testing.B) {
	for _, f := range core.CompressRuns {
		name := "off"
		if f.Compress {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var rep *core.RunReport
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = suite().Run(core.TS, f)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.MR.TotalWrittenBytes)/(1<<20), "MR-written-MB")
			b.ReportMetric(rep.MR.AvgrqSz.MeanNonzero(), "MR-avgrq-sz")
		})
	}
}

// BenchmarkAblationMemory contrasts the 16 GB and 32 GB testbeds for
// TeraSort (the paper's Figures 2/5/8/11 mechanism).
func BenchmarkAblationMemory(b *testing.B) {
	for _, f := range core.MemoryRuns {
		b.Run(fmt.Sprintf("%dG", f.MemoryGB), func(b *testing.B) {
			var rep *core.RunReport
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = suite().Run(core.TS, f)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.MR.TotalReads+rep.MR.TotalWrites), "MR-requests")
			b.ReportMetric(rep.Wall.Seconds(), "virtual-s")
		})
	}
}

// BenchmarkRenderAll exercises the full figure+table rendering path against
// the cached suite (the cost of reporting, separated from simulation).
func BenchmarkRenderAll(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		for _, n := range Figures() {
			if err := RenderFigure(io.Discard, s, n); err != nil {
				b.Fatal(err)
			}
		}
		for _, n := range Tables() {
			if err := RenderTable(io.Discard, s, n); err != nil {
				b.Fatal(err)
			}
		}
	}
}
