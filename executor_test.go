package iochar

import (
	"bytes"
	"context"
	"strconv"
	"sync/atomic"
	"testing"
)

// goldenOpts is deliberately tiny: the golden test runs the full 20-cell
// matrix three times (sequential, parallel, warm cache), so each cell must
// be cheap. Byte-identity does not depend on scale.
var goldenOpts = Options{Scale: 262144, Slaves: 3, MapTaskTarget: 8}

// renderAll regenerates every figure and table into one buffer — the exact
// byte stream `iochar -all` writes to stdout.
func renderAll(t *testing.T, s *Suite) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, n := range Figures() {
		if err := RenderFigure(&buf, s, n); err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
	}
	for _, n := range Tables() {
		if err := RenderTable(&buf, s, n); err != nil {
			t.Fatalf("table %d: %v", n, err)
		}
	}
	return buf.Bytes()
}

// TestAllOutputByteIdenticalAcrossExecutors pins the tentpole acceptance
// criterion: -all output is byte-for-byte identical whether cells are run
// sequentially, fanned out across a worker pool, or served entirely from a
// warm persistent cache.
func TestAllOutputByteIdenticalAcrossExecutors(t *testing.T) {
	ctx := context.Background()
	cells := len(MatrixCells())
	dir := t.TempDir()

	seq := NewSuite(goldenOpts)
	seqOut := renderAll(t, seq)
	if len(seqOut) == 0 {
		t.Fatal("sequential render produced no output")
	}

	var parExec, parDisk atomic.Int64
	par := NewSuite(goldenOpts,
		WithParallelism(4),
		WithCacheDir(dir),
		WithProgress(func(ev ProgressEvent) {
			switch ev.Source {
			case SourceExecuted:
				parExec.Add(1)
			case SourceDisk:
				parDisk.Add(1)
			}
		}))
	if err := par.RunAll(ctx); err != nil {
		t.Fatal(err)
	}
	parOut := renderAll(t, par)
	if got := parExec.Load(); got != int64(cells) {
		t.Errorf("cold parallel run executed %d cells, want %d", got, cells)
	}
	if got := parDisk.Load(); got != 0 {
		t.Errorf("cold parallel run hit disk cache %d times, want 0", got)
	}
	if !bytes.Equal(seqOut, parOut) {
		t.Errorf("parallel -all output differs from sequential:\nseq %d bytes, parallel %d bytes\n%s",
			len(seqOut), len(parOut), firstDiff(seqOut, parOut))
	}

	var warmExec, warmDisk atomic.Int64
	warm := NewSuite(goldenOpts,
		WithParallelism(4),
		WithCacheDir(dir),
		WithProgress(func(ev ProgressEvent) {
			switch ev.Source {
			case SourceExecuted:
				warmExec.Add(1)
			case SourceDisk:
				warmDisk.Add(1)
			}
		}))
	if err := warm.RunAll(ctx); err != nil {
		t.Fatal(err)
	}
	warmOut := renderAll(t, warm)
	if got := warmExec.Load(); got != 0 {
		t.Errorf("warm run executed %d cells, want 0 (all from cache)", got)
	}
	if got := warmDisk.Load(); got != int64(cells) {
		t.Errorf("warm run served %d cells from disk, want %d", got, cells)
	}
	if !bytes.Equal(seqOut, warmOut) {
		t.Errorf("warm-cache -all output differs from sequential:\nseq %d bytes, warm %d bytes\n%s",
			len(seqOut), len(warmOut), firstDiff(seqOut, warmOut))
	}
}

// firstDiff locates the first divergent line for a readable failure message.
func firstDiff(a, b []byte) string {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return "first diff at line " + strconv.Itoa(i+1) + ":\n  a: " + string(la[i]) + "\n  b: " + string(lb[i])
		}
	}
	return "one output is a prefix of the other"
}
