// Storage layout: testing the paper's concluding recommendation.
//
// Observation 4 of the paper: HDFS data and MapReduce intermediate data
// have different I/O modes (large-sequential vs small-random), "which
// leads us to configuring their own storage systems according to their I/O
// mode". The paper's testbed therefore dedicates three disks per node to
// each class. This example runs the counterfactual: the same six spindles
// per node, once split 3+3 as in the paper and once pooled so both traffic
// classes share every disk. The result is a genuine trade-off rather than
// a one-sided win: pooling lets each phase of TeraSort spread over six
// spindles instead of three (statistical multiplexing — the job finishes
// faster), while the dedicated layout keeps HDFS's sequential requests out
// of the intermediate data's seek storms (I/O latency stays ~3x lower).
// The paper's recommendation is therefore a latency-isolation choice, and
// the await column below is exactly the evidence it rests on.
//
//	go run ./examples/storagelayout
package main

import (
	"fmt"
	"log"
	"time"

	"iochar"
)

func main() {
	fmt.Println("Dedicated (3 HDFS + 3 MR disks/node, the paper's layout) vs")
	fmt.Println("shared (6 pooled disks/node), 1/8192 scale, 16 GB nodes:")
	fmt.Println()
	fmt.Printf("%-4s %-10s %12s %14s %14s\n", "", "layout", "runtime", "await (ms)", "avgrq-sz")
	for _, wk := range []iochar.Workload{iochar.TS, iochar.AGG} {
		var base time.Duration
		for _, shared := range []bool{false, true} {
			rep, err := iochar.Run(wk, iochar.Factors{
				Slots: iochar.Slots1x8, MemoryGB: 16, Compress: false,
			}, iochar.Options{Scale: 8192, SharedDataDisks: shared})
			if err != nil {
				log.Fatal(err)
			}
			name := "dedicated"
			note := ""
			if shared {
				name = "shared"
				if base > 0 {
					note = fmt.Sprintf("  (%+.0f%%)", (rep.Wall.Seconds()/base.Seconds()-1)*100)
				}
			} else {
				base = rep.Wall
			}
			// Under the shared layout both "groups" see the same pooled
			// disks, so one group's numbers describe the whole.
			fmt.Printf("%-4s %-10s %12v %14.2f %14.0f%s\n",
				wk, name, rep.Wall.Round(time.Millisecond),
				rep.HDFS.AwaitMs.MeanNonzero(), rep.HDFS.AvgrqSz.MeanNonzero(), note)
		}
	}
	fmt.Println()
	fmt.Println("The trade-off, measured: pooling finishes TeraSort sooner (each")
	fmt.Println("phase can use all six spindles), but mixing the traffic classes")
	fmt.Println("multiplies I/O waiting time — the interference the paper's")
	fmt.Println("dedicated layout buys out of. Aggregation, with almost no")
	fmt.Println("intermediate traffic, barely notices the layout either way.")
}
