// Quickstart: run one paper experiment cell end to end.
//
// This runs TeraSort on the simulated 1+10-node testbed (scaled 1/8192 so
// it finishes in seconds), with 32 GB nodes, 8 map + 1 reduce slots, and
// compressed intermediate data, then prints the job counters and the
// iostat view of the two disk groups — the paper's basic measurement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"iochar"
)

func main() {
	rep, err := iochar.Run(iochar.TS, iochar.Factors{
		Slots:    iochar.Slots1x8,
		MemoryGB: 16,
		Compress: true,
	}, iochar.Options{Scale: 8192})
	if err != nil {
		log.Fatal(err)
	}

	iochar.Summarize(os.Stdout, rep)

	fmt.Println()
	fmt.Println("The paper's headline contrast, visible in one run:")
	fmt.Printf("  HDFS      avgrq-sz %6.0f sectors (large sequential)\n", rep.HDFS.AvgrqSz.MeanNonzero())
	fmt.Printf("  MapReduce avgrq-sz %6.0f sectors (small random)\n", rep.MR.AvgrqSz.MeanNonzero())
	fmt.Printf("  HDFS      wait %6.2f ms\n", rep.HDFS.WaitMs.MeanNonzero())
	fmt.Printf("  MapReduce wait %6.2f ms (queueing on the intermediate disks)\n", rep.MR.WaitMs.MeanNonzero())
}
