// Trace replay: block-level what-if analysis on a captured workload.
//
// The paper characterizes workloads through aggregate iostat statistics;
// the natural next step (and the methodology of the storage papers it
// cites) is block-level tracing. This example captures the complete
// request stream of a TeraSort run — every (time, disk, op, sector, size)
// — and replays one intermediate-data disk's stream through alternative
// block-layer configurations, answering "how much is the elevator worth on
// MapReduce's small random I/O" with the workload's own trace.
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"

	"iochar"
	"iochar/internal/disk"
	"iochar/internal/trace"
)

func main() {
	collector := trace.NewCollector()
	opts := iochar.Options{
		Scale:       16384,
		TraceAttach: func(dev string, d *disk.Disk) { collector.Attach(d, dev) },
	}
	fmt.Println("running TeraSort (1_8, 16G, compression off) with block tracing...")
	rep, err := iochar.Run(iochar.TS, iochar.Factors{
		Slots: iochar.Slots1x8, MemoryGB: 16, Compress: false,
	}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d requests across %d devices in %v of virtual time\n\n",
		collector.Len(), len(trace.Devices(collector.Records())), rep.Wall)

	// Pick the busiest intermediate-data disk.
	counts := map[string]int{}
	for _, r := range collector.Records() {
		counts[r.Dev]++
	}
	busiest, best := "", 0
	for _, dev := range trace.Devices(collector.Records()) {
		if len(dev) > 4 && dev[len(dev)-3:len(dev)-1] == "mr" && counts[dev] > best {
			busiest, best = dev, counts[dev]
		}
	}
	if busiest == "" {
		log.Fatal("no intermediate-disk records in trace")
	}
	fmt.Printf("replaying %s (%d requests) through block-layer variants:\n", busiest, best)
	fmt.Printf("%-28s %14s %14s\n", "configuration", "device busy", "mean await")

	variants := []struct {
		name string
		mut  func(*disk.Params)
	}{
		{"LOOK + merging (baseline)", func(p *disk.Params) {}},
		{"FIFO + merging", func(p *disk.Params) { p.Scheduler = disk.SchedFIFO }},
		{"LOOK, no merging", func(p *disk.Params) { p.NoMerge = true }},
		{"FIFO, no merging", func(p *disk.Params) { p.Scheduler = disk.SchedFIFO; p.NoMerge = true }},
	}
	for _, v := range variants {
		p := disk.SeagateST1000NM0011()
		v.mut(&p)
		res, err := trace.Replay(collector.Records(), busiest, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %14v %14v\n", v.name, res.TotalBusy.Round(1e6), res.MeanAwait.Round(1e4))
	}
	fmt.Println("\nThe block layer's two tricks — elevator ordering and request")
	fmt.Println("merging — are what stand between MapReduce's intermediate I/O")
	fmt.Println("pattern and far worse service times.")
}
