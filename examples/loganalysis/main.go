// Log analysis: a custom MapReduce job on the toolkit's building blocks.
//
// The paper motivates SQL-style operators with log analysis. This example
// builds its own workload instead of using a canned one: it generates web
// server access logs, loads them into the simulated HDFS, runs a MapReduce
// job computing per-URL hit counts and total bytes served (with a map-side
// combiner), and reports both the answer and the I/O profile — showing how
// any custom job plugs into the same characterization loop.
//
//	go run ./examples/loganalysis
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"iochar/internal/cluster"
	"iochar/internal/hdfs"
	"iochar/internal/iostat"
	"iochar/internal/mapred"
	"iochar/internal/sim"
)

// genLogs produces Apache-style access log lines with Zipf-popular URLs.
func genLogs(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, 199)
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("/page/%d", zipf.Uint64())
		size := rng.Intn(40_000) + 200
		fmt.Fprintf(&buf, "10.0.%d.%d - - [05/Jul/2026:12:%02d:%02d] \"GET %s HTTP/1.1\" 200 %d\n",
			rng.Intn(256), rng.Intn(256), i/60%60, i%60, url, size)
	}
	return buf.Bytes()
}

func main() {
	const scale = 8192
	env := sim.New(7)
	cl, err := cluster.New(env, cluster.DefaultHardware(scale), 4)
	if err != nil {
		log.Fatal(err)
	}
	fs := hdfs.New(env, hdfs.DefaultConfig(scale), cl.Net, cl.Slaves)
	cfg := mapred.DefaultConfig(scale)
	cfg.MapSlots, cfg.ReduceSlots = 4, 1
	rt, err := mapred.New(env, cl, fs, cl.Net, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Load one log shard per slave, as a collector fleet would.
	var inputs []string
	for i, s := range cl.Slaves {
		path := fmt.Sprintf("/logs/part-%d", i)
		fs.Load(path, s.Name, genLogs(int64(i+1), 4000))
		inputs = append(inputs, path)
	}

	job := &mapred.Job{
		Name:   "url-stats",
		Input:  inputs,
		Output: "/out/url-stats",
		Format: mapred.LineFormat{},
		Mapper: mapred.MapperFunc(func(rec []byte, emit func(k, v []byte)) {
			// "... "GET <url> HTTP/1.1" 200 <bytes>"
			f := bytes.Fields(rec)
			if len(f) < 9 {
				return
			}
			emit(f[5], append([]byte("1,"), f[8]...))
		}),
		Combiner:   mapred.ReducerFunc(foldStats),
		Reducer:    mapred.ReducerFunc(foldStats),
		NumReduces: 4,
		Costs:      mapred.CostModel{MapNsPerRecord: 400, MapNsPerByte: 8, ReduceNsPerRecord: 100},
	}

	mon := iostat.NewMonitor(10 * time.Millisecond)
	mon.AddGroup("hdfs", cl.AllHDFSDisks()...)
	mon.AddGroup("mr", cl.AllMRDisks()...)
	mon.Start(env)

	var res *mapred.Result
	env.Go("driver", func(p *sim.Proc) {
		var err error
		res, err = rt.Run(p, job)
		if err != nil {
			log.Fatal(err)
		}
		cl.SyncAll(p)
		mon.Stop(p.Now())

		// Read the answer back and show the top URLs.
		type stat struct {
			url  string
			hits int64
			by   int64
		}
		var all []stat
		for _, path := range fs.List("/out/url-stats/part-r-") {
			rd, err := fs.Open(path, cl.Master.Name)
			if err != nil {
				log.Fatal(err)
			}
			data, err := rd.ReadAt(p, 0, rd.Size())
			if err != nil {
				log.Fatal(err)
			}
			for len(data) > 0 {
				k, v, rest := mapred.NextKV(data)
				data = rest
				hits, by := parseStats(v)
				all = append(all, stat{string(k), hits, by})
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].hits > all[j].hits })
		fmt.Println("top URLs by hits:")
		for i := 0; i < 5 && i < len(all); i++ {
			fmt.Printf("  %-12s %6d hits %10d bytes\n", all[i].url, all[i].hits, all[i].by)
		}
	})
	env.Run(0)

	fmt.Printf("\njob: %d maps, %d reduces, %v virtual runtime\n",
		res.MapTasks, res.ReduceTasks, res.Runtime())
	h, m := mon.Report("hdfs"), mon.Report("mr")
	fmt.Printf("HDFS read %.1f MB, avgrq-sz %.0f sectors; intermediate wrote %.1f MB, avgrq-sz %.0f sectors\n",
		float64(h.TotalReadBytes)/(1<<20), h.AvgrqSz.MeanNonzero(),
		float64(m.TotalWrittenBytes)/(1<<20), m.AvgrqSz.MeanNonzero())
}

// foldStats sums "hits,bytes" pairs.
func foldStats(k []byte, vals [][]byte, emit func(k, v []byte)) {
	var hits, by int64
	for _, v := range vals {
		h, b := parseStats(v)
		hits += h
		by += b
	}
	out := strconv.AppendInt(nil, hits, 10)
	out = append(out, ',')
	out = strconv.AppendInt(out, by, 10)
	emit(k, out)
}

func parseStats(v []byte) (hits, by int64) {
	i := bytes.IndexByte(v, ',')
	hits, _ = strconv.ParseInt(string(v[:i]), 10, 64)
	by, _ = strconv.ParseInt(string(v[i+1:]), 10, 64)
	return hits, by
}
