// Memory sweep: extend the paper's two-point memory experiment to a curve.
//
// The paper compares 16 GB and 32 GB nodes (Figures 2, 5, 8, 11) and
// concludes that more memory reduces I/O requests and relieves disk
// pressure. This example sweeps node memory across 8-48 GB for TeraSort —
// the workload with the heaviest intermediate traffic — and prints how the
// intermediate-disk request count, utilization and job runtime respond,
// exposing the saturation point the paper's two samples bracket.
//
//	go run ./examples/memorysweep
package main

import (
	"fmt"
	"log"

	"iochar"
)

func main() {
	fmt.Println("TeraSort vs node memory (slots 1_8, compression off, scale 1/8192):")
	fmt.Printf("%8s %12s %12s %12s %12s\n", "mem(GB)", "MR requests", "MR %util", "HDFS rMB/s", "runtime")
	for _, gb := range []int{8, 16, 24, 32, 48} {
		rep, err := iochar.Run(iochar.TS, iochar.Factors{
			Slots:    iochar.Slots1x8,
			MemoryGB: gb,
			Compress: false,
		}, iochar.Options{Scale: 8192})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d %12.1f %12.1f %12v\n",
			gb,
			rep.MR.TotalReads+rep.MR.TotalWrites,
			rep.MR.Util.Mean(),
			rep.HDFS.RMBs.Mean(),
			rep.Wall.Round(1e6))
	}
	fmt.Println("\nExpected shape (paper observation 2): request count and MR pressure")
	fmt.Println("fall as memory grows, and the job speeds up until the intermediate")
	fmt.Println("data fits in buffers and the curve flattens.")
}
