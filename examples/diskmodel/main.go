// Disk model tour: why HDFS and MapReduce I/O look so different.
//
// The paper's central qualitative finding is that HDFS traffic is large and
// sequential while MapReduce intermediate traffic is small and random. This
// example strips away the cluster and demonstrates the mechanism on one
// modeled disk + page cache: the same megabytes moved four ways —
// sequential vs scattered, with and without readahead — and the iostat
// metrics each pattern produces.
//
//	go run ./examples/diskmodel
package main

import (
	"fmt"
	"time"

	"iochar/internal/disk"
	"iochar/internal/iostat"
	"iochar/internal/pagecache"
	"iochar/internal/sim"
)

// run moves total bytes through cache+disk in reqSize chunks, sequentially
// or scattered, and returns the resulting iostat aggregates.
func run(sequential, readahead bool, total, reqSize int) (mbps, avgrq, awaitMs float64, elapsed time.Duration) {
	env := sim.New(42)
	p := disk.SeagateST1000NM0011()
	d := disk.New(env, p)
	opts := pagecache.DefaultOptions()
	opts.NoReadahead = !readahead
	cache := pagecache.New(env, d, 1<<16, opts)

	mon := iostat.NewMonitor(50 * time.Millisecond)
	mon.AddGroup("d", d)
	mon.Start(env)

	env.Go("io", func(pr *sim.Proc) {
		rs := &pagecache.ReadState{}
		sectors := int64(reqSize / disk.SectorSize)
		n := int64(total / reqSize)
		for i := int64(0); i < n; i++ {
			var sector int64
			if sequential {
				sector = i * sectors
			} else {
				sector = env.Rand().Int63n(p.Sectors - sectors)
				sector = sector / 8 * 8 // page aligned
			}
			cache.Read(pr, rs, sector, int(sectors))
		}
		elapsed = pr.Now()
		mon.Stop(pr.Now())
	})
	env.Run(0)
	rep := mon.Report("d")
	return rep.RMBs.MeanNonzero(), rep.AvgrqSz.MeanNonzero(), rep.AwaitMs.MeanNonzero(), elapsed
}

func main() {
	const total = 64 << 20 // move 64 MiB each way
	fmt.Println("One Seagate ST1000NM0011 (the paper's disk), 64 MiB moved per pattern:")
	fmt.Printf("%-34s %10s %10s %10s %12s\n", "pattern", "MB/s", "avgrq-sz", "await(ms)", "elapsed")
	cases := []struct {
		name       string
		sequential bool
		readahead  bool
		reqSize    int
	}{
		{"sequential 64KB + readahead", true, true, 64 << 10},
		{"sequential 64KB, no readahead", true, false, 64 << 10},
		{"random 64KB", false, false, 64 << 10},
		{"random 4KB (spill-like)", false, false, 4 << 10},
	}
	for _, c := range cases {
		mbps, rq, aw, el := run(c.sequential, c.readahead, total, c.reqSize)
		fmt.Printf("%-34s %10.1f %10.0f %10.2f %12v\n", c.name, mbps, rq, aw, el.Round(time.Millisecond))
	}
	fmt.Println("\nThe 100x spread between the first and last rows is the paper's")
	fmt.Println("HDFS-vs-MapReduce contrast in miniature: request size and")
	fmt.Println("sequentiality, not device speed, decide everything.")
}
