// Package datagen reproduces the role of BigDataBench 2.1's data generation
// tools: deterministic, seeded generators that produce realistic input for
// each of the paper's four workloads at any volume, preserving the
// characteristics that matter to I/O behaviour (record framing, key
// distributions, compressibility).
//
//   - TeraGen     — 100-byte sort records (10-byte key, 90-byte payload)
//     for TeraSort.
//   - OrderGen    — delimited e-commerce order rows with Zipf-skewed
//     categories for the Hive Aggregation query.
//   - PointGen    — d-dimensional numeric points clustered around k true
//     centers for K-means.
//   - GraphGen    — a power-law web graph (preferential attachment) as an
//     edge list for PageRank, standing in for the Google web graph.
//
// All generators are pure functions of (seed, part, size): the same part is
// byte-identical across runs, so experiments are reproducible and contents
// verifiable.
package datagen

import (
	"math/rand"
	"strconv"
)

// RecordSize is the fixed TeraSort record length, as in TeraGen.
const RecordSize = 100

// KeySize is the TeraSort key prefix length.
const KeySize = 10

// TeraGen generates TeraSort input.
type TeraGen struct{ Seed int64 }

// Part returns approximately size bytes of whole 100-byte records for the
// given part index. Keys are uniform random printable bytes, so sort load
// balances, and payloads carry structured filler (compressible, like
// TeraGen's).
func (g TeraGen) Part(part int, size int64) []byte {
	n := size / RecordSize
	if n == 0 {
		n = 1
	}
	rng := rand.New(rand.NewSource(g.Seed*1_000_003 + int64(part)))
	out := make([]byte, 0, n*RecordSize)
	row := int64(part) << 40
	var idBuf [20]byte // row ids are non-negative, at most 19 digits
	for i := int64(0); i < n; i++ {
		for k := 0; k < KeySize; k++ {
			out = append(out, byte(' '+rng.Intn(95)))
		}
		// Payload: 22-digit row id, then filler split between a repeated
		// character and random printable bytes. The mix pins the fast-codec
		// compression ratio near the ~2:1 of real GenSort records — an
		// all-repetitive filler would overstate compression and erase the
		// intermediate-disk pressure the paper measures for TeraSort.
		const payLen = 22 // zero-padded width, as Sprintf("%022d") produced
		digits := strconv.AppendInt(idBuf[:0], row+i, 10)
		for k := len(digits); k < payLen; k++ {
			out = append(out, '0')
		}
		out = append(out, digits...)
		fill := byte('A' + i%26)
		half := (RecordSize - KeySize - payLen) / 2
		for k := 0; k < half; k++ {
			out = append(out, fill)
		}
		for len(out)%RecordSize != 0 {
			out = append(out, byte(' '+rng.Intn(95)))
		}
	}
	return out
}

// Key returns the sort key of the record starting at off.
func Key(data []byte, off int) []byte { return data[off : off+KeySize] }

// OrderGen generates the Hive Aggregation table: one order item per line,
// "order|user|item|category|price|quantity". Categories follow a Zipf
// distribution — aggregation output is much smaller than its input, as with
// the paper's OLAP query.
type OrderGen struct {
	Seed       int64
	Categories int // number of distinct group-by keys (default 1000)
}

// Part returns approximately size bytes of whole order lines.
func (g OrderGen) Part(part int, size int64) []byte {
	cats := g.Categories
	if cats <= 0 {
		cats = 1000
	}
	rng := rand.New(rand.NewSource(g.Seed*7_368_787 + int64(part)))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(cats-1))
	out := make([]byte, 0, size+128)
	order := int64(part) << 36
	for int64(len(out)) < size {
		order++
		user := rng.Intn(100_000)
		item := rng.Intn(1_000_000)
		cat := zipf.Uint64()
		price := rng.Intn(9900) + 100 // cents
		qty := rng.Intn(9) + 1
		out = strconv.AppendInt(out, order, 10)
		out = append(out, '|')
		out = strconv.AppendInt(out, int64(user), 10)
		out = append(out, '|')
		out = strconv.AppendInt(out, int64(item), 10)
		out = append(out, '|')
		out = append(out, "cat-"...)
		out = strconv.AppendUint(out, cat, 10)
		out = append(out, '|')
		out = strconv.AppendInt(out, int64(price), 10)
		out = append(out, '|')
		out = strconv.AppendInt(out, int64(qty), 10)
		out = append(out, '\n')
	}
	return out
}

// UserGen generates the dimension table for the Join query: one user per
// line, "user|name|region". User ids are dense in [0, Users), matching the
// uniform user draw of OrderGen, so a fact⋈dimension equi-join on user id
// has realistic hit rates.
type UserGen struct {
	Seed  int64
	Users int // default 100_000, the OrderGen user universe
}

// Part returns approximately size bytes of whole user lines. The table is
// range-partitioned: part i carries a contiguous id slice, as a dimension
// table export would be.
func (g UserGen) Part(part int, size int64) []byte {
	users := g.Users
	if users <= 0 {
		users = 100_000
	}
	rng := rand.New(rand.NewSource(g.Seed*65_537 + int64(part)))
	regions := []string{"north", "south", "east", "west", "central"}
	out := make([]byte, 0, size+128)
	// Walk ids from a per-part base so parts partition the universe.
	id := part * 7919 % users
	for int64(len(out)) < size {
		out = strconv.AppendInt(out, int64(id), 10)
		out = append(out, '|')
		out = append(out, "user-"...)
		out = strconv.AppendInt(out, int64(id), 10)
		out = append(out, '|')
		out = append(out, regions[rng.Intn(len(regions))]...)
		out = append(out, '\n')
		id = (id + 1) % users
	}
	return out
}

// PointGen generates K-means input: one point per line, comma-separated
// float coordinates, drawn around TrueCenters cluster centers.
type PointGen struct {
	Seed        int64
	Dims        int // default 8
	TrueCenters int // default 16
}

// Part returns approximately size bytes of whole point lines.
func (g PointGen) Part(part int, size int64) []byte {
	dims := g.Dims
	if dims <= 0 {
		dims = 8
	}
	k := g.TrueCenters
	if k <= 0 {
		k = 16
	}
	// Centers are derived from the seed only, identical across parts.
	crng := rand.New(rand.NewSource(g.Seed * 31))
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = make([]float64, dims)
		for d := range centers[i] {
			centers[i][d] = crng.Float64() * 1000
		}
	}
	rng := rand.New(rand.NewSource(g.Seed*104_729 + int64(part)))
	out := make([]byte, 0, size+256)
	for int64(len(out)) < size {
		c := centers[rng.Intn(k)]
		for d := 0; d < dims; d++ {
			if d > 0 {
				out = append(out, ',')
			}
			v := c[d] + rng.NormFloat64()*25
			out = strconv.AppendFloat(out, v, 'f', 3, 64)
		}
		out = append(out, '\n')
	}
	return out
}

// GraphGen generates PageRank input: a power-law directed graph as
// "src\tdst" edge lines, built by preferential attachment so in-degree
// follows the heavy-tailed distribution of real web graphs.
type GraphGen struct {
	Seed      int64
	OutDegree int // average edges per new vertex (default 8)
}

// Part returns approximately size bytes of whole edge lines. Vertices are
// globally numbered per part (part-disjoint subgraphs, as a crawler shard
// would produce), which keeps generation parallel and deterministic.
func (g GraphGen) Part(part int, size int64) []byte {
	deg := g.OutDegree
	if deg <= 0 {
		deg = 8
	}
	rng := rand.New(rand.NewSource(g.Seed*179_424_673 + int64(part)))
	base := int64(part) << 32
	out := make([]byte, 0, size+256)
	// Preferential attachment over a growing target multiset.
	targets := []int64{base, base + 1}
	next := base + 2
	appendEdge := func(src, dst int64) {
		out = strconv.AppendInt(out, src, 10)
		out = append(out, '\t')
		out = strconv.AppendInt(out, dst, 10)
		out = append(out, '\n')
	}
	appendEdge(base, base+1)
	for int64(len(out)) < size {
		src := next
		next++
		for e := 0; e < deg; e++ {
			var dst int64
			if rng.Intn(10) == 0 {
				dst = base + rng.Int63n(next-base) // uniform exploration
			} else {
				dst = targets[rng.Intn(len(targets))] // preferential
			}
			if dst == src {
				continue
			}
			appendEdge(src, dst)
			targets = append(targets, dst)
		}
		targets = append(targets, src)
		// Bound the multiset so memory stays O(recent window).
		if len(targets) > 1<<16 {
			targets = targets[len(targets)-1<<15:]
		}
	}
	return out
}

// SplitRecords returns the largest prefix length of data that ends on a
// record boundary for fixed-size records.
func SplitRecords(dataLen int, recordSize int) int {
	return dataLen - dataLen%recordSize
}

// Lines iterates newline-terminated records in data, calling fn with each
// line (without the newline). A trailing unterminated fragment is ignored,
// matching how the MapReduce input format treats split boundaries.
func Lines(data []byte, fn func(line []byte)) {
	start := 0
	for i, b := range data {
		if b == '\n' {
			fn(data[start:i])
			start = i + 1
		}
	}
}
