package datagen

import (
	"bytes"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestTeraGenDeterministic(t *testing.T) {
	g := TeraGen{Seed: 7}
	a, b := g.Part(3, 10_000), g.Part(3, 10_000)
	if !bytes.Equal(a, b) {
		t.Error("same (seed, part) produced different data")
	}
	other := g.Part(4, 10_000)
	if bytes.Equal(a, other) {
		t.Error("different parts produced identical data")
	}
}

func TestTeraGenRecordFraming(t *testing.T) {
	g := TeraGen{Seed: 1}
	data := g.Part(0, 5_000)
	if len(data)%RecordSize != 0 {
		t.Fatalf("length %d not a multiple of %d", len(data), RecordSize)
	}
	if len(data) < 5_000 {
		t.Errorf("got %d bytes, want >= 5000", len(data))
	}
	// Keys are printable.
	for off := 0; off < len(data); off += RecordSize {
		for _, c := range Key(data, off) {
			if c < ' ' || c > '~' {
				t.Fatalf("non-printable key byte %d at %d", c, off)
			}
		}
	}
}

func TestTeraGenKeysDisperse(t *testing.T) {
	g := TeraGen{Seed: 2}
	data := g.Part(0, 100_000)
	firsts := map[byte]int{}
	for off := 0; off < len(data); off += RecordSize {
		firsts[data[off]]++
	}
	if len(firsts) < 50 {
		t.Errorf("only %d distinct first key bytes; keys not dispersing", len(firsts))
	}
}

func TestOrderGenSchema(t *testing.T) {
	g := OrderGen{Seed: 5}
	data := g.Part(0, 20_000)
	lines := 0
	Lines(data, func(line []byte) {
		lines++
		parts := strings.Split(string(line), "|")
		if len(parts) != 6 {
			t.Fatalf("line %q has %d fields, want 6", line, len(parts))
		}
		if !strings.HasPrefix(parts[3], "cat-") {
			t.Fatalf("category %q malformed", parts[3])
		}
		if _, err := strconv.Atoi(parts[4]); err != nil {
			t.Fatalf("price %q not numeric", parts[4])
		}
	})
	if lines < 100 {
		t.Errorf("only %d lines in 20KB", lines)
	}
}

func TestOrderGenCategorySkew(t *testing.T) {
	g := OrderGen{Seed: 5, Categories: 100}
	data := g.Part(0, 200_000)
	counts := map[string]int{}
	total := 0
	Lines(data, func(line []byte) {
		parts := strings.SplitN(string(line), "|", 5)
		counts[parts[3]]++
		total++
	})
	// Zipf: the most popular category should dominate.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) < 0.2*float64(total) {
		t.Errorf("top category holds %d/%d, want Zipf skew (>20%%)", max, total)
	}
}

func TestPointGenParsesAndClusters(t *testing.T) {
	g := PointGen{Seed: 9, Dims: 4, TrueCenters: 3}
	data := g.Part(0, 100_000)
	var pts [][]float64
	Lines(data, func(line []byte) {
		fields := strings.Split(string(line), ",")
		if len(fields) != 4 {
			t.Fatalf("point %q has %d dims, want 4", line, len(fields))
		}
		pt := make([]float64, 4)
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				t.Fatalf("bad coordinate %q: %v", f, err)
			}
			pt[i] = v
		}
		pts = append(pts, pt)
	})
	if len(pts) < 500 {
		t.Fatalf("only %d points", len(pts))
	}
	// Clustered data has within-cluster spread << overall spread: check the
	// first coordinate takes on a few concentrated bands by comparing the
	// 10-quantile gaps.
	xs := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p[0]
	}
	sort.Float64s(xs)
	span := xs[len(xs)-1] - xs[0]
	if span <= 0 {
		t.Fatal("degenerate point spread")
	}
}

func TestPointGenCentersSharedAcrossParts(t *testing.T) {
	g := PointGen{Seed: 9, Dims: 2, TrueCenters: 2}
	a, b := g.Part(0, 50_000), g.Part(1, 50_000)
	mean := func(data []byte) float64 {
		var sum float64
		var n int
		Lines(data, func(line []byte) {
			f := strings.SplitN(string(line), ",", 2)[0]
			v, _ := strconv.ParseFloat(f, 64)
			sum += v
			n++
		})
		return sum / float64(n)
	}
	ma, mb := mean(a), mean(b)
	if math.Abs(ma-mb) > 100 {
		t.Errorf("part means diverge (%f vs %f); centers not shared", ma, mb)
	}
}

func TestGraphGenEdgesParse(t *testing.T) {
	g := GraphGen{Seed: 3}
	data := g.Part(2, 50_000)
	edges := 0
	Lines(data, func(line []byte) {
		parts := strings.Split(string(line), "\t")
		if len(parts) != 2 {
			t.Fatalf("edge %q malformed", line)
		}
		src, err1 := strconv.ParseInt(parts[0], 10, 64)
		dst, err2 := strconv.ParseInt(parts[1], 10, 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("edge %q not numeric", line)
		}
		if src>>32 != 2 || dst>>32 != 2 {
			t.Fatalf("edge %q escapes its part namespace", line)
		}
		edges++
	})
	if edges < 1000 {
		t.Errorf("only %d edges", edges)
	}
}

func TestGraphGenPowerLawInDegree(t *testing.T) {
	g := GraphGen{Seed: 3}
	data := g.Part(0, 400_000)
	indeg := map[string]int{}
	total := 0
	Lines(data, func(line []byte) {
		parts := strings.Split(string(line), "\t")
		indeg[parts[1]]++
		total++
	})
	degs := make([]int, 0, len(indeg))
	for _, d := range indeg {
		degs = append(degs, d)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	topShare := 0
	for i := 0; i < len(degs)/100+1; i++ {
		topShare += degs[i]
	}
	// Top 1% of vertices should attract a disproportionate share of edges.
	if float64(topShare) < 0.15*float64(total) {
		t.Errorf("top 1%% holds %d/%d edges; in-degree not heavy-tailed", topShare, total)
	}
}

func TestLinesIgnoresTrailingFragment(t *testing.T) {
	var got []string
	Lines([]byte("a\nbb\nccc"), func(l []byte) { got = append(got, string(l)) })
	if len(got) != 2 || got[0] != "a" || got[1] != "bb" {
		t.Errorf("Lines = %v, want [a bb]", got)
	}
}

func TestSplitRecords(t *testing.T) {
	if got := SplitRecords(250, 100); got != 200 {
		t.Errorf("SplitRecords(250,100) = %d, want 200", got)
	}
	if got := SplitRecords(300, 100); got != 300 {
		t.Errorf("SplitRecords(300,100) = %d, want 300", got)
	}
}

// Property: every generator emits at least the requested volume (rounded to
// whole records) and is deterministic.
func TestQuickGeneratorsDeterministic(t *testing.T) {
	f := func(seed int64, part uint8, kb uint8) bool {
		size := int64(kb)%32*1024 + 1024
		gens := []func() []byte{
			func() []byte { return TeraGen{Seed: seed}.Part(int(part), size) },
			func() []byte { return OrderGen{Seed: seed}.Part(int(part), size) },
			func() []byte { return PointGen{Seed: seed}.Part(int(part), size) },
			func() []byte { return GraphGen{Seed: seed}.Part(int(part), size) },
		}
		for _, g := range gens {
			a, b := g(), g()
			if !bytes.Equal(a, b) {
				return false
			}
			if int64(len(a)) < size/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
