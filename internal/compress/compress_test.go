package compress

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestIdentityRoundTrip(t *testing.T) {
	c := Identity{}
	src := []byte("hello world")
	if !bytes.Equal(c.Decompress(c.Compress(src)), src) {
		t.Error("identity round trip failed")
	}
	if c.CompressCost(1<<20) != 0 || c.DecompressCost(1<<20) != 0 {
		t.Error("identity must be free")
	}
}

func TestDeflateRoundTrip(t *testing.T) {
	c := NewDeflate()
	src := bytes.Repeat([]byte("abcdefgh12345678"), 4096)
	enc := c.Compress(src)
	if len(enc) >= len(src) {
		t.Errorf("repetitive data did not shrink: %d -> %d", len(src), len(enc))
	}
	if !bytes.Equal(c.Decompress(enc), src) {
		t.Error("deflate round trip failed")
	}
}

func TestDeflateEmptyInput(t *testing.T) {
	c := NewDeflate()
	if got := c.Decompress(c.Compress(nil)); len(got) != 0 {
		t.Errorf("empty round trip returned %d bytes", len(got))
	}
}

func TestDeflateIncompressibleData(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := make([]byte, 1<<16)
	rng.Read(src)
	c := NewDeflate()
	enc := c.Compress(src)
	if !bytes.Equal(c.Decompress(enc), src) {
		t.Error("random data round trip failed")
	}
	if r := Ratio(c, src); r < 0.99 {
		t.Errorf("random data ratio = %f, expected ~1", r)
	}
}

func TestCostModelLinear(t *testing.T) {
	c := NewDeflate()
	one := c.CompressCost(1 << 20)
	ten := c.CompressCost(10 << 20)
	if ten != 10*one {
		t.Errorf("cost not linear: %v vs 10x%v", ten, one)
	}
	// 250 MB/s => 1 MiB in ~4ms.
	if one < 3*time.Millisecond || one > 5*time.Millisecond {
		t.Errorf("1 MiB compress cost = %v, want ~4ms", one)
	}
	if c.DecompressCost(1<<20) >= one {
		t.Error("decompression should be cheaper than compression")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"identity", "none", "off", ""} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != "identity" {
			t.Errorf("ByName(%q) = %s, want identity", name, c.Name())
		}
	}
	for _, name := range []string{"deflate", "snappy", "on"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != "deflate" {
			t.Errorf("ByName(%q) = %s, want deflate", name, c.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("want error for unknown codec")
	}
}

func TestRatioEmpty(t *testing.T) {
	if Ratio(NewDeflate(), nil) != 1 {
		t.Error("empty ratio should be 1")
	}
}

// Property: deflate round-trips arbitrary byte strings exactly.
func TestQuickDeflateRoundTrip(t *testing.T) {
	c := NewDeflate()
	f := func(src []byte) bool {
		return bytes.Equal(c.Decompress(c.Compress(src)), src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: text-like data (small alphabet) always compresses below 90%.
func TestQuickTextCompresses(t *testing.T) {
	c := NewDeflate()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		words := []string{"the", "quick", "brown", "fox", "jumps", "rank", "page", "key"}
		var buf bytes.Buffer
		for buf.Len() < 32<<10 {
			buf.WriteString(words[rng.Intn(len(words))])
			buf.WriteByte(' ')
		}
		return Ratio(c, buf.Bytes()) < 0.9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDeflateCompress(b *testing.B) {
	c := NewDeflate()
	src := bytes.Repeat([]byte("order|12345|item-678|cat-9|1099|3\n"), 2048)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Compress(src)
	}
}

func BenchmarkDeflateDecompress(b *testing.B) {
	c := NewDeflate()
	src := bytes.Repeat([]byte("order|12345|item-678|cat-9|1099|3\n"), 2048)
	enc := c.Compress(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Decompress(enc)
	}
}
