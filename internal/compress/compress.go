// Package compress provides the intermediate-data codecs for the MapReduce
// runtime. The paper toggles Hadoop's mapred.compress.map.output; here the
// equivalent is choosing between the Identity codec and Deflate, a real
// byte-level codec (stdlib flate at its fastest level, standing in for the
// Snappy/LZO class) paired with a virtual-CPU cost model calibrated to that
// class (~250 MB/s compression, ~500 MB/s decompression per 2010s core).
//
// Because the codec really compresses the real intermediate bytes, each
// workload's compression ratio emerges from its own data: sorted text
// shrinks differently from aggregation partials or graph adjacency — which
// is exactly why the paper sees per-workload differences in Figure 12.
package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
	"time"
)

// Codec compresses byte blocks and prices the CPU time the work costs.
type Codec interface {
	// Name identifies the codec in configs and reports.
	Name() string
	// Compress returns the encoded form of src.
	Compress(src []byte) []byte
	// Decompress reverses Compress. It panics on corrupt input — in the
	// simulation that is a program bug, not an I/O condition.
	Decompress(enc []byte) []byte
	// CompressCost returns virtual CPU time to compress n input bytes.
	CompressCost(n int) time.Duration
	// DecompressCost returns virtual CPU time to decompress to n output bytes.
	DecompressCost(n int) time.Duration
}

// Identity is the no-compression codec (mapred.compress.map.output=false).
type Identity struct{}

// Name implements Codec.
func (Identity) Name() string { return "identity" }

// Compress implements Codec; it returns src unchanged.
func (Identity) Compress(src []byte) []byte { return src }

// Decompress implements Codec; it returns enc unchanged.
func (Identity) Decompress(enc []byte) []byte { return enc }

// CompressCost implements Codec; identity costs nothing.
func (Identity) CompressCost(int) time.Duration { return 0 }

// DecompressCost implements Codec; identity costs nothing.
func (Identity) DecompressCost(int) time.Duration { return 0 }

// Deflate is a real fast-deflate codec with a Snappy-class cost model.
type Deflate struct {
	// CompressBps and DecompressBps are the modeled single-core codec
	// throughputs in bytes/second.
	CompressBps   int64
	DecompressBps int64
}

// NewDeflate returns the codec with default 2010s-era fast-codec costs.
func NewDeflate() Deflate {
	return Deflate{CompressBps: 250 << 20, DecompressBps: 500 << 20}
}

// Name implements Codec.
func (Deflate) Name() string { return "deflate" }

// Codec state is pooled: a flate writer carries ~600 KiB of match tables
// whose zeroing used to dominate the simulator's allocation profile (one
// NewWriter per spill). Reset makes a recycled writer bit-identical to a
// fresh one, so pooling cannot change any compressed byte. The pools are
// process-global and concurrency-safe, which matters because the suite
// executor compresses from many worker goroutines at once.
var (
	flateWriters = sync.Pool{New: func() any {
		w, err := flate.NewWriter(io.Discard, flate.BestSpeed)
		if err != nil {
			panic(fmt.Sprintf("compress: flate writer: %v", err))
		}
		return w
	}}
	flateReaders = sync.Pool{New: func() any {
		return flate.NewReader(bytes.NewReader(nil))
	}}
)

// Compress implements Codec using flate.BestSpeed.
func (Deflate) Compress(src []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(src)/2 + 64)
	w := flateWriters.Get().(*flate.Writer)
	w.Reset(&buf)
	if _, err := w.Write(src); err != nil {
		panic(fmt.Sprintf("compress: flate write: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("compress: flate close: %v", err))
	}
	flateWriters.Put(w)
	return buf.Bytes()
}

// Decompress implements Codec.
func (Deflate) Decompress(enc []byte) []byte {
	r := flateReaders.Get().(io.ReadCloser)
	if err := r.(flate.Resetter).Reset(bytes.NewReader(enc), nil); err != nil {
		panic(fmt.Sprintf("compress: flate reset: %v", err))
	}
	// Decompressed intermediate data is rarely more than a few times larger
	// than its encoded form; growing up front avoids ReadAll's doubling
	// copies without pinning oversized buffers.
	buf := bytes.NewBuffer(make([]byte, 0, len(enc)*3+512))
	if _, err := buf.ReadFrom(r); err != nil {
		panic(fmt.Sprintf("compress: flate read: %v", err))
	}
	if err := r.Close(); err != nil {
		panic(fmt.Sprintf("compress: flate close: %v", err))
	}
	flateReaders.Put(r)
	return buf.Bytes()
}

// CompressCost implements Codec.
func (c Deflate) CompressCost(n int) time.Duration {
	return time.Duration(float64(n) / float64(c.CompressBps) * 1e9)
}

// DecompressCost implements Codec.
func (c Deflate) DecompressCost(n int) time.Duration {
	return time.Duration(float64(n) / float64(c.DecompressBps) * 1e9)
}

// ByName returns the codec for a config string ("identity"/"none"/"off" or
// "deflate"/"snappy"/"on").
func ByName(name string) (Codec, error) {
	switch name {
	case "identity", "none", "off", "":
		return Identity{}, nil
	case "deflate", "snappy", "on":
		return NewDeflate(), nil
	}
	return nil, fmt.Errorf("compress: unknown codec %q", name)
}

// Ratio returns compressed/original size for src under c (1.0 for
// incompressible or empty input).
func Ratio(c Codec, src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	return float64(len(c.Compress(src))) / float64(len(src))
}
