package pagecache

import (
	"testing"
	"time"

	"iochar/internal/disk"
	"iochar/internal/sim"
)

func benchRig(opts Options) (*sim.Env, *Cache) {
	env := sim.New(1)
	p := disk.SeagateST1000NM0011()
	p.Sectors = 1 << 26
	d := disk.New(env, p)
	return env, New(env, d, 1<<15, opts)
}

func BenchmarkCacheHitRead(b *testing.B) {
	env, c := benchRig(DefaultOptions())
	env.Go("warm", func(p *sim.Proc) { c.Read(p, nil, 0, 1024) })
	env.Run(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Go("r", func(p *sim.Proc) { c.Read(p, nil, 0, 1024) })
		env.Run(0)
	}
}

func BenchmarkCacheColdSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env, c := benchRig(DefaultOptions())
		env.Go("r", func(p *sim.Proc) {
			rs := &ReadState{}
			for j := 0; j < 256; j++ {
				c.Read(p, rs, int64(j*16*PageSectors), 16*PageSectors)
			}
		})
		env.Run(0)
	}
}

// BenchmarkAblationReadahead contrasts virtual completion time of a
// sequential scan with and without prefetching.
func BenchmarkAblationReadahead(b *testing.B) {
	for _, c := range []struct {
		name string
		off  bool
	}{{"readahead", false}, {"none", true}} {
		b.Run(c.name, func(b *testing.B) {
			var vt time.Duration
			for i := 0; i < b.N; i++ {
				opts := DefaultOptions()
				opts.NoReadahead = c.off
				env, cache := benchRig(opts)
				env.Go("r", func(p *sim.Proc) {
					rs := &ReadState{}
					for j := 0; j < 512; j++ {
						cache.Read(p, rs, int64(j*4*PageSectors), 4*PageSectors)
					}
				})
				vt, _ = env.Run(0)
			}
			b.ReportMetric(vt.Seconds()*1000, "virtual-ms")
		})
	}
}

func BenchmarkWriteAndSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env, c := benchRig(DefaultOptions())
		env.Go("w", func(p *sim.Proc) {
			for j := 0; j < 512; j++ {
				c.Write(p, int64(j*8*PageSectors), 8*PageSectors)
			}
			c.Sync(p)
		})
		env.Run(0)
	}
}
