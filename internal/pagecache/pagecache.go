// Package pagecache models the OS page cache in front of one simulated disk:
// 4 KiB pages, LRU eviction, sequential readahead with a doubling window,
// background dirty writeback with contiguous-run clustering, dirty-ratio
// writer throttling, and discard of deleted data before it reaches the disk.
//
// The cache is a timing/residency model only — file contents are stored by
// internal/localfs. What the cache decides is which accesses become disk
// requests, how large those requests are, and when they are issued: exactly
// the levers behind the paper's memory-size observations (more memory ⇒
// fewer I/O requests, absorbed spill files, bigger writeback bursts).
package pagecache

import (
	"slices"
	"time"

	"iochar/internal/disk"
	"iochar/internal/sim"
)

// PageSize is the page size in bytes; PageSectors is its size in sectors.
const (
	PageSize    = 4096
	PageSectors = PageSize / disk.SectorSize
)

// Options tune the cache's writeback and readahead behaviour. The defaults
// (see DefaultOptions) follow Linux conventions.
type Options struct {
	// DirtyBGRatio is the dirty fraction above which background writeback
	// starts working aggressively (Linux dirty_background_ratio).
	DirtyBGRatio float64
	// DirtyHardRatio is the dirty fraction at which writers block until
	// writeback catches up (Linux dirty_ratio).
	DirtyHardRatio float64
	// WritebackInterval is the period of the background flusher.
	WritebackInterval time.Duration
	// ReadaheadMaxPages caps the readahead window (Linux default 128 KiB).
	ReadaheadMaxPages int
	// DirtyExpire is the age at which a dirty page is flushed regardless of
	// the dirty ratio (Linux dirty_expire_centisecs, default 30 s). Without
	// it, small dirty residues would sit in memory forever.
	DirtyExpire time.Duration
	// NoReadahead disables prefetching (ablation).
	NoReadahead bool
}

// DefaultOptions returns Linux-flavoured defaults.
func DefaultOptions() Options {
	return Options{
		DirtyBGRatio:      0.10,
		DirtyHardRatio:    0.40,
		WritebackInterval: time.Second,
		ReadaheadMaxPages: 32, // 128 KiB
		DirtyExpire:       30 * time.Second,
	}
}

// Stats counts cache activity for tests and reports.
type Stats struct {
	Hits           uint64
	Misses         uint64
	ReadaheadPages uint64
	FlushedPages   uint64
	EvictedClean   uint64
	EvictedDirty   uint64 // dirty pages flushed due to memory pressure
	DiscardedDirty uint64 // dirty pages dropped before ever reaching disk
	ThrottleStalls uint64
}

type page struct {
	num     int64 // page number on the device
	dirty   bool
	dirtyAt time.Duration // when the page last became dirty
	stage   disk.Stage    // pipeline stage that last wrote (or read) the page
	pending *sim.Event    // in-flight disk read filling this page, if any

	// Intrusive LRU links (prev is toward the MRU front, next toward the
	// tail), so residency tracking costs no allocation beyond the page.
	prev, next *page
}

// lruList is an intrusive doubly-linked list threaded through the pages;
// front is most recently used.
type lruList struct {
	front, back *page
}

func (l *lruList) pushFront(pg *page) {
	pg.prev = nil
	pg.next = l.front
	if l.front != nil {
		l.front.prev = pg
	} else {
		l.back = pg
	}
	l.front = pg
}

func (l *lruList) remove(pg *page) {
	if pg.prev != nil {
		pg.prev.next = pg.next
	} else {
		l.front = pg.next
	}
	if pg.next != nil {
		pg.next.prev = pg.prev
	} else {
		l.back = pg.prev
	}
	pg.prev, pg.next = nil, nil
}

func (l *lruList) moveToFront(pg *page) {
	if l.front == pg {
		return
	}
	l.remove(pg)
	l.pushFront(pg)
}

// Cache is the page cache for one device. Create with New.
type Cache struct {
	env  *sim.Env
	d    *disk.Disk
	opts Options

	capacity int // pages
	pages    map[int64]*page
	lru      lruList // front = most recently used
	free     *page   // recycled page structs, linked through next
	dirty    int

	kick  *sim.Cond // unparks the writeback daemon when pages first dirty
	stats Stats
}

// newPage returns a reset page struct, recycling evicted ones: at steady
// state the cache churns pages at disk speed, and the free list keeps that
// churn from being an allocation per page.
func (c *Cache) newPage(n int64) *page {
	pg := c.free
	if pg == nil {
		return &page{num: n}
	}
	c.free = pg.next
	*pg = page{num: n}
	return pg
}

// New creates a cache of capacityPages pages backed by d and starts its
// writeback daemon.
func New(env *sim.Env, d *disk.Disk, capacityPages int, opts Options) *Cache {
	if capacityPages < 8 {
		capacityPages = 8
	}
	if opts.DirtyBGRatio <= 0 {
		opts.DirtyBGRatio = 0.10
	}
	if opts.DirtyHardRatio <= opts.DirtyBGRatio {
		opts.DirtyHardRatio = opts.DirtyBGRatio * 4
	}
	if opts.WritebackInterval <= 0 {
		opts.WritebackInterval = time.Second
	}
	if opts.ReadaheadMaxPages <= 0 {
		opts.ReadaheadMaxPages = 32
	}
	if opts.DirtyExpire <= 0 {
		opts.DirtyExpire = 30 * time.Second
	}
	c := &Cache{
		env:      env,
		d:        d,
		opts:     opts,
		capacity: capacityPages,
		pages:    make(map[int64]*page, capacityPages),
		kick:     sim.NewCond(env),
	}
	env.Go("writeback:"+d.P.Name, func(p *sim.Proc) {
		p.SetDaemon(true)
		c.writebackLoop(p)
	})
	return c
}

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// DirtyPages returns the current number of dirty pages.
func (c *Cache) DirtyPages() int { return c.dirty }

// ResidentPages returns the number of cached pages.
func (c *Cache) ResidentPages() int { return len(c.pages) }

// Capacity returns the configured capacity in pages.
func (c *Cache) Capacity() int { return c.capacity }

// ReadState tracks one sequential stream's readahead window. Use one per
// open file/stream. Limit, when positive, is the first device sector the
// prefetcher must not cross — callers set it to the end of the current file
// extent so readahead never strays into neighbouring files.
type ReadState struct {
	Limit    int64 // exclusive readahead bound in sectors; 0 = device end
	nextPage int64 // expected next page if access stays sequential
	window   int   // current readahead window, pages
}

// pageRange converts a sector range to an inclusive-exclusive page range.
func pageRange(sector int64, nsect int) (int64, int64) {
	first := sector / PageSectors
	last := (sector + int64(nsect) + PageSectors - 1) / PageSectors
	return first, last
}

// Read brings the sector range into the cache, blocking p until every
// covered page is resident. rs may be nil for non-streaming access (no
// readahead). Misses are fetched with as few, as large disk requests as the
// miss pattern allows; sequential streams additionally prefetch a doubling
// readahead window asynchronously.
func (c *Cache) Read(p *sim.Proc, rs *ReadState, sector int64, nsect int) {
	c.ReadStaged(p, rs, sector, nsect, disk.StageNone)
}

// ReadStaged is Read with a pipeline-stage tag: disk reads issued on behalf
// of this access (demand fetches and the readahead they trigger) carry the
// tag for per-stage physical attribution.
func (c *Cache) ReadStaged(p *sim.Proc, rs *ReadState, sector int64, nsect int, stage disk.Stage) {
	first, last := pageRange(sector, nsect)

	// Readahead window bookkeeping.
	ra := 0
	if rs != nil && !c.opts.NoReadahead {
		if first == rs.nextPage || (first < rs.nextPage && last > rs.nextPage) {
			rs.window *= 2
			if rs.window == 0 {
				rs.window = 4
			}
			if rs.window > c.opts.ReadaheadMaxPages {
				rs.window = c.opts.ReadaheadMaxPages
			}
		} else {
			rs.window = 0 // seek: reset
		}
		rs.nextPage = last
		ra = rs.window
	}

	// Collect misses in [first, last), then fetch each contiguous miss run
	// with one submission (the block layer may merge runs further).
	var waits []*sim.Event
	runStart := int64(-1)
	flushRun := func(end int64) {
		if runStart < 0 {
			return
		}
		ev := c.fetch(runStart, end, stage)
		waits = append(waits, ev)
		runStart = -1
	}
	for n := first; n < last; n++ {
		if pg := c.lookup(n); pg != nil {
			c.stats.Hits++
			if pg.pending != nil {
				waits = append(waits, pg.pending)
			}
			flushRun(n)
			continue
		}
		c.stats.Misses++
		if runStart < 0 {
			runStart = n
		}
	}
	flushRun(last)

	// Asynchronous readahead beyond the demanded range.
	if ra > 0 {
		raFirst, raLast := last, last
		maxPage := c.d.P.Sectors / PageSectors
		if rs != nil && rs.Limit > 0 {
			if lim := rs.Limit / PageSectors; lim < maxPage {
				maxPage = lim
			}
		}
		for n := last; n < last+int64(ra) && n < maxPage; n++ {
			if c.lookup(n) == nil {
				raLast = n + 1
			} else {
				break
			}
		}
		if raLast > raFirst {
			c.stats.ReadaheadPages += uint64(raLast - raFirst)
			c.fetch(raFirst, raLast, stage)
		}
	}

	for _, ev := range waits {
		ev.Wait(p)
	}
}

// fetch inserts pending pages [first,last) and submits one disk read for
// them, returning the completion event. Pages become clean residents once
// the read completes.
func (c *Cache) fetch(first, last int64, stage disk.Stage) *sim.Event {
	ev := sim.NewEvent(c.env)
	for n := first; n < last; n++ {
		pg := c.newPage(n)
		pg.stage = stage
		pg.pending = ev
		c.insert(pg)
	}
	req := c.d.SubmitStaged(disk.Read, first*PageSectors, int(last-first)*PageSectors, stage)
	c.env.Go("fill", func(p *sim.Proc) {
		c.d.Wait(p, req)
		for n := first; n < last; n++ {
			if pg, ok := c.pages[n]; ok && pg.pending == ev {
				pg.pending = nil
			}
		}
		ev.Fire()
	})
	return ev
}

// Write dirties the covered pages without touching the disk. If the dirty
// ratio exceeds the hard limit, the writer is throttled until writeback
// catches up — the mechanism that couples memory size to write behaviour.
func (c *Cache) Write(p *sim.Proc, sector int64, nsect int) {
	c.WriteStaged(p, sector, nsect, disk.StageNone)
}

// WriteStaged is Write with a pipeline-stage tag. The tag is recorded on the
// dirtied pages (last writer wins) and travels with them to the eventual
// writeback request, so deferred flushes are still attributed to the stage
// that produced the data rather than to the flusher.
func (c *Cache) WriteStaged(p *sim.Proc, sector int64, nsect int, stage disk.Stage) {
	first, last := pageRange(sector, nsect)
	for n := first; n < last; n++ {
		pg := c.lookup(n)
		if pg == nil {
			pg = c.newPage(n)
			c.insert(pg)
		}
		pg.stage = stage
		if !pg.dirty {
			pg.dirty = true
			pg.dirtyAt = c.env.Now()
			c.dirty++
			if c.dirty == 1 {
				c.kick.Broadcast() // unpark the writeback daemon
			}
		}
	}
	// Dirty-ratio throttling, Linux balance_dirty_pages style: a writer that
	// pushes the cache past the hard limit performs writeback itself, which
	// is what couples write-heavy workloads to disk speed when memory is
	// scarce.
	if float64(c.dirty) > c.opts.DirtyHardRatio*float64(c.capacity) {
		c.stats.ThrottleStalls++
		c.flushDown(p, int(c.opts.DirtyHardRatio*float64(c.capacity)/2))
	}
}

// lookup returns the resident page and refreshes its LRU position.
func (c *Cache) lookup(n int64) *page {
	pg, ok := c.pages[n]
	if !ok {
		return nil
	}
	c.lru.moveToFront(pg)
	return pg
}

// insert adds a page, evicting from the LRU tail as needed.
func (c *Cache) insert(pg *page) {
	for len(c.pages) >= c.capacity {
		if !c.evictOne() {
			break // everything is pinned/dirty beyond help; overcommit briefly
		}
	}
	c.lru.pushFront(pg)
	c.pages[pg.num] = pg
}

// evictOne removes the least recently used evictable page. Clean, idle
// pages are preferred; if the tail region is all dirty, the oldest dirty
// page is flushed synchronously as part of a clustered run (memory-pressure
// writeback). Returns false if nothing could be evicted.
func (c *Cache) evictOne() bool {
	var oldestDirty *page
	for pg := c.lru.back; pg != nil; pg = pg.prev {
		if pg.pending != nil {
			continue
		}
		if !pg.dirty {
			c.remove(pg)
			c.stats.EvictedClean++
			return true
		}
		if oldestDirty == nil {
			oldestDirty = pg
		}
	}
	if oldestDirty == nil {
		return false
	}
	// Memory pressure: flush a clustered run around the oldest dirty page,
	// then drop those pages.
	run := c.dirtyRunAround(oldestDirty.num)
	c.stats.EvictedDirty += uint64(len(run))
	c.flushRunAndDrop(run)
	return true
}

func (c *Cache) remove(pg *page) {
	c.lru.remove(pg)
	delete(c.pages, pg.num)
	if pg.dirty {
		c.dirty--
	}
	// Recycle the struct. Nothing holds page pointers across simulation
	// yields (the fill path re-looks pages up by number), so reuse is safe.
	pg.pending = nil
	pg.next = c.free
	c.free = pg
}

// dirtyRunAround returns the maximal contiguous run of dirty page numbers
// containing n, capped at the device's request ceiling.
func (c *Cache) dirtyRunAround(n int64) []int64 {
	maxPages := int64(c.d.P.MaxReqSect / PageSectors)
	lo := n
	for lo > n-maxPages {
		pg, ok := c.pages[lo-1]
		if !ok || !pg.dirty || pg.pending != nil {
			break
		}
		lo--
	}
	hi := n + 1
	for hi < lo+maxPages {
		pg, ok := c.pages[hi]
		if !ok || !pg.dirty || pg.pending != nil {
			break
		}
		hi++
	}
	run := make([]int64, 0, hi-lo)
	for i := lo; i < hi; i++ {
		run = append(run, i)
	}
	return run
}

// flushRunAndDrop writes a contiguous dirty run and removes the pages.
// Used under memory pressure; the caller is the cache-internal path, so the
// disk write is fire-and-forget (the request is already queued and counted).
func (c *Cache) flushRunAndDrop(run []int64) {
	stage := c.pages[run[0]].stage
	for _, n := range run {
		pg := c.pages[n]
		c.remove(pg)
	}
	c.stats.FlushedPages += uint64(len(run))
	c.d.SubmitStaged(disk.Write, run[0]*PageSectors, len(run)*PageSectors, stage)
}

// writebackLoop is the background flusher. It parks on a condition while the
// cache is fully clean (so a drained simulation can terminate), and while
// dirty pages exist it wakes every WritebackInterval; when the dirty ratio
// exceeds the background threshold it flushes clustered runs until back
// under half the threshold. Dirty pages below the threshold are left to age
// — they are either discarded with their file or flushed by Sync.
func (c *Cache) writebackLoop(p *sim.Proc) {
	for {
		for c.dirty == 0 {
			c.kick.Wait(p)
		}
		p.Sleep(c.opts.WritebackInterval)
		if float64(c.dirty) > c.opts.DirtyBGRatio*float64(c.capacity) {
			c.flushDown(p, int(c.opts.DirtyBGRatio*float64(c.capacity)/2))
		}
		c.flushExpired(p)
	}
}

// flushExpired flushes every dirty page older than DirtyExpire, so residues
// below the background ratio still reach the disk (and a drained simulation
// eventually reaches dirty == 0 and parks the daemon).
func (c *Cache) flushExpired(p *sim.Proc) {
	cutoff := c.env.Now() - c.opts.DirtyExpire
	if cutoff < 0 || c.dirty == 0 {
		return
	}
	var nums []int64
	for n, pg := range c.pages {
		if pg.dirty && pg.pending == nil && pg.dirtyAt <= cutoff {
			nums = append(nums, n)
		}
	}
	if len(nums) == 0 {
		return
	}
	slices.Sort(nums)
	var reqs []*disk.Request
	for _, run := range clusterRuns(nums, c.d.P.MaxReqSect/PageSectors) {
		stage := c.pages[run[0]].stage
		for _, n := range run {
			pg := c.pages[n]
			pg.dirty = false
			c.dirty--
		}
		c.stats.FlushedPages += uint64(len(run))
		reqs = append(reqs, c.d.SubmitStaged(disk.Write, run[0]*PageSectors, len(run)*PageSectors, stage))
	}
	for _, r := range reqs {
		c.d.Wait(p, r)
	}
}

// clusterRuns groups sorted page numbers into contiguous runs capped at
// maxPages each.
func clusterRuns(nums []int64, maxPages int) [][]int64 {
	var runs [][]int64
	var cur []int64
	for _, n := range nums {
		if len(cur) > 0 && (n != cur[len(cur)-1]+1 || len(cur) >= maxPages) {
			runs = append(runs, cur)
			cur = nil
		}
		cur = append(cur, n)
	}
	if len(cur) > 0 {
		runs = append(runs, cur)
	}
	return runs
}

// flushDown flushes dirty pages (clean-marking them, keeping them resident)
// until at most target dirty pages remain. Runs are built by sorting the
// dirty page numbers and grouping contiguity, giving writeback its
// characteristic large sequential bursts.
func (c *Cache) flushDown(p *sim.Proc, target int) {
	for c.dirty > target {
		runs := c.dirtyRuns(c.dirty - target)
		if len(runs) == 0 {
			return
		}
		var reqs []*disk.Request
		for _, run := range runs {
			stage := c.pages[run[0]].stage
			for _, n := range run {
				pg := c.pages[n]
				pg.dirty = false
				c.dirty--
			}
			c.stats.FlushedPages += uint64(len(run))
			reqs = append(reqs, c.d.SubmitStaged(disk.Write, run[0]*PageSectors, len(run)*PageSectors, stage))
		}
		for _, r := range reqs {
			c.d.Wait(p, r)
		}
	}
}

// dirtyRuns returns up to limit dirty pages grouped into contiguous runs,
// each capped at the device request ceiling.
func (c *Cache) dirtyRuns(limit int) [][]int64 {
	if limit <= 0 || c.dirty == 0 {
		return nil
	}
	nums := make([]int64, 0, c.dirty)
	for n, pg := range c.pages {
		if pg.dirty && pg.pending == nil {
			nums = append(nums, n)
		}
	}
	slices.Sort(nums)
	if limit < len(nums) {
		nums = nums[:limit]
	}
	return clusterRuns(nums, c.d.P.MaxReqSect/PageSectors)
}

// Sync flushes every dirty page and blocks p until the writes complete.
func (c *Cache) Sync(p *sim.Proc) {
	c.flushDown(p, 0)
}

// DropAll empties the cache without writeback — the fate of every resident
// page when the node hosting the device crashes. Pages with an in-flight
// fill are left pending (their disk request already exists and will
// complete; the fill path tolerates the page being gone).
func (c *Cache) DropAll() {
	for _, pg := range c.pages {
		if pg.pending != nil {
			continue
		}
		if pg.dirty {
			c.stats.DiscardedDirty++
		}
		c.remove(pg)
	}
}

// FirstDirtyInRange returns the device sector of the lowest-numbered dirty
// page overlapping [sector, sector+nsect), or -1 if every covered page is
// clean or absent. Crash semantics use it to find the flushed prefix of a
// file: bytes past the first dirty page never reached the platter.
func (c *Cache) FirstDirtyInRange(sector int64, nsect int) int64 {
	first, last := pageRange(sector, nsect)
	best := int64(-1)
	for n := first; n < last; n++ {
		if pg, ok := c.pages[n]; ok && pg.dirty {
			if best < 0 || n < best {
				best = n
			}
		}
	}
	if best < 0 {
		return -1
	}
	s := best * PageSectors
	if s < sector {
		s = sector
	}
	return s
}

// Discard drops the covered pages without writeback — the fate of deleted
// files (e.g. MapReduce intermediate data removed after the job). Dirty
// pages die here without ever generating disk traffic, which is how extra
// memory absorbs spill I/O.
func (c *Cache) Discard(sector int64, nsect int) {
	first, last := pageRange(sector, nsect)
	for n := first; n < last; n++ {
		if pg, ok := c.pages[n]; ok && pg.pending == nil {
			if pg.dirty {
				c.stats.DiscardedDirty++
			}
			c.remove(pg)
		}
	}
}
