package pagecache

import (
	"testing"
	"testing/quick"
	"time"

	"iochar/internal/disk"
	"iochar/internal/sim"
)

func rig(capPages int, opts Options) (*sim.Env, *disk.Disk, *Cache) {
	env := sim.New(1)
	p := disk.SeagateST1000NM0011()
	p.Sectors = 1 << 24
	d := disk.New(env, p)
	return env, d, New(env, d, capPages, opts)
}

func TestColdReadMissesThenHits(t *testing.T) {
	env, d, c := rig(1024, DefaultOptions())
	env.Go("r", func(p *sim.Proc) {
		c.Read(p, nil, 0, 64) // 8 pages, cold
		before := d.Stats().ReadsCompleted
		c.Read(p, nil, 0, 64) // warm
		if got := d.Stats().ReadsCompleted; got != before {
			t.Errorf("warm read issued %d extra disk reads", got-before)
		}
	})
	env.Run(0)
	s := c.Stats()
	if s.Misses != 8 {
		t.Errorf("Misses = %d, want 8", s.Misses)
	}
	if s.Hits != 8 {
		t.Errorf("Hits = %d, want 8", s.Hits)
	}
}

func TestWriteIsCacheOnlyUntilSync(t *testing.T) {
	env, d, c := rig(4096, DefaultOptions())
	env.Go("w", func(p *sim.Proc) {
		start := p.Now()
		c.Write(p, 0, 512) // 64 pages, well under thresholds
		if p.Now() != start {
			t.Error("small write should not block in virtual time")
		}
		if d.Stats().WritesCompleted != 0 {
			t.Error("write reached disk before sync")
		}
		c.Sync(p)
		if d.Stats().SectorsWritten != 512 {
			t.Errorf("SectorsWritten = %d, want 512 after sync", d.Stats().SectorsWritten)
		}
	})
	env.Run(0)
	if c.DirtyPages() != 0 {
		t.Errorf("DirtyPages = %d after sync, want 0", c.DirtyPages())
	}
}

func TestSyncClustersContiguousDirtyPages(t *testing.T) {
	env, d, c := rig(4096, DefaultOptions())
	env.Go("w", func(p *sim.Proc) {
		// Dirty 64 contiguous pages out of order: sync must cluster them.
		for i := 63; i >= 0; i-- {
			c.Write(p, int64(i*PageSectors), PageSectors)
		}
		c.Sync(p)
	})
	env.Run(0)
	s := d.Stats()
	if s.WritesCompleted > 2 {
		t.Errorf("sync issued %d writes for one contiguous run, want 1 (or 2 with merge accounting)", s.WritesCompleted)
	}
	if s.SectorsWritten != 64*PageSectors {
		t.Errorf("SectorsWritten = %d, want %d", s.SectorsWritten, 64*PageSectors)
	}
}

func TestDiscardDropsDirtyWithoutIO(t *testing.T) {
	env, d, c := rig(4096, DefaultOptions())
	env.Go("w", func(p *sim.Proc) {
		c.Write(p, 0, 256)
		c.Discard(0, 256)
		c.Sync(p)
	})
	env.Run(0)
	if w := d.Stats().SectorsWritten; w != 0 {
		t.Errorf("discarded data still wrote %d sectors", w)
	}
	if got := c.Stats().DiscardedDirty; got != 32 {
		t.Errorf("DiscardedDirty = %d, want 32", got)
	}
}

func TestDirtyThrottleTriggersInlineWriteback(t *testing.T) {
	opts := DefaultOptions()
	env, d, c := rig(256, opts) // tiny cache: hard limit ~102 pages
	env.Go("w", func(p *sim.Proc) {
		c.Write(p, 0, 150*PageSectors) // 150 dirty pages > 40% of 256
	})
	env.Run(0)
	if c.Stats().ThrottleStalls == 0 {
		t.Error("expected a throttle stall")
	}
	if d.Stats().SectorsWritten == 0 {
		t.Error("inline writeback should have reached the disk")
	}
	if float64(c.DirtyPages()) > 0.41*256 {
		t.Errorf("DirtyPages = %d, still above hard limit", c.DirtyPages())
	}
}

func TestLRUEvictionPrefersClean(t *testing.T) {
	env, _, c := rig(64, DefaultOptions())
	env.Go("w", func(p *sim.Proc) {
		c.Read(p, nil, 0, 32*PageSectors)     // 32 clean pages
		c.Write(p, 1<<20, 16*PageSectors)     // 16 dirty pages elsewhere
		c.Read(p, nil, 1<<21, 30*PageSectors) // push past capacity; clean supply suffices
	})
	env.Run(0)
	s := c.Stats()
	if s.EvictedClean == 0 {
		t.Error("expected clean evictions")
	}
	if s.EvictedDirty != 0 {
		t.Errorf("EvictedDirty = %d; clean pages were available", s.EvictedDirty)
	}
	if c.ResidentPages() > c.Capacity() {
		t.Errorf("resident %d exceeds capacity %d", c.ResidentPages(), c.Capacity())
	}
}

func TestMemoryPressureFlushesDirty(t *testing.T) {
	opts := DefaultOptions()
	opts.DirtyHardRatio = 0.95 // keep throttling out of the way
	opts.DirtyBGRatio = 0.90
	env, d, c := rig(64, opts)
	env.Go("w", func(p *sim.Proc) {
		c.Write(p, 0, 50*PageSectors)         // 50 dirty pages
		c.Read(p, nil, 1<<20, 40*PageSectors) // needs 40 more: pressure
	})
	env.Run(0)
	if c.Stats().EvictedDirty == 0 {
		t.Error("expected dirty pages flushed under memory pressure")
	}
	if d.Stats().SectorsWritten == 0 {
		t.Error("pressure flush should reach the disk")
	}
}

func TestReadaheadGrowsForSequentialStream(t *testing.T) {
	env, d, c := rig(4096, DefaultOptions())
	env.Go("r", func(p *sim.Proc) {
		rs := &ReadState{}
		for i := 0; i < 32; i++ {
			c.Read(p, rs, int64(i*4*PageSectors), 4*PageSectors)
		}
	})
	env.Run(0)
	s := c.Stats()
	if s.ReadaheadPages == 0 {
		t.Fatal("sequential stream produced no readahead")
	}
	// Readahead must convert most accesses into hits.
	if s.Hits < s.Misses {
		t.Errorf("hits %d < misses %d; readahead ineffective", s.Hits, s.Misses)
	}
	// Few large reads, not many tiny ones: fewer disk reads than accesses.
	if got := d.Stats().ReadsCompleted; got >= 32 {
		t.Errorf("disk reads = %d, want far fewer than 32 accesses", got)
	}
}

func TestReadaheadResetsOnSeek(t *testing.T) {
	env, _, c := rig(4096, DefaultOptions())
	env.Go("r", func(p *sim.Proc) {
		rs := &ReadState{}
		c.Read(p, rs, 0, 4*PageSectors)
		c.Read(p, rs, 4*PageSectors, 4*PageSectors)
		grown := rs.window
		c.Read(p, rs, 1<<20, 4*PageSectors) // seek
		if rs.window != 0 {
			t.Errorf("window = %d after seek, want 0 (was %d)", rs.window, grown)
		}
	})
	env.Run(0)
}

func TestNoReadaheadAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.NoReadahead = true
	env, _, c := rig(4096, opts)
	env.Go("r", func(p *sim.Proc) {
		rs := &ReadState{}
		for i := 0; i < 16; i++ {
			c.Read(p, rs, int64(i*4*PageSectors), 4*PageSectors)
		}
	})
	env.Run(0)
	if got := c.Stats().ReadaheadPages; got != 0 {
		t.Errorf("ReadaheadPages = %d with NoReadahead, want 0", got)
	}
}

func TestConcurrentReadersShareInFlightFetch(t *testing.T) {
	env, d, c := rig(4096, DefaultOptions())
	for i := 0; i < 4; i++ {
		env.Go("r", func(p *sim.Proc) {
			c.Read(p, nil, 0, 64)
		})
	}
	env.Run(0)
	// All four readers need the same 8 pages; only one fetch should happen.
	if got := d.Stats().SectorsRead; got != 64 {
		t.Errorf("SectorsRead = %d, want 64 (single shared fetch)", got)
	}
}

func TestSimulationDrainsWithIdleDaemon(t *testing.T) {
	env, _, c := rig(1024, DefaultOptions())
	env.Go("w", func(p *sim.Proc) {
		c.Write(p, 0, 64)
		c.Sync(p)
	})
	end, _ := env.Run(0)
	if end > time.Hour {
		t.Errorf("simulation failed to drain: ended at %v", end)
	}
}

// Property: after any sequence of writes followed by Sync, every page is
// clean and sectors written to disk >= distinct pages dirtied (clustering
// may round up to page boundaries but never lose data).
func TestQuickWriteSyncConservation(t *testing.T) {
	f := func(ops []uint32) bool {
		if len(ops) > 30 {
			ops = ops[:30]
		}
		env := sim.New(3)
		p := disk.SeagateST1000NM0011()
		p.Sectors = 1 << 24
		d := disk.New(env, p)
		opts := DefaultOptions()
		c := New(env, d, 8192, opts)
		dirtied := map[int64]bool{}
		env.Go("w", func(pr *sim.Proc) {
			for _, op := range ops {
				sector := int64(op % (1 << 20))
				n := int(op%64) + 1
				c.Write(pr, sector, n)
				first, last := pageRange(sector, n)
				for pg := first; pg < last; pg++ {
					dirtied[pg] = true
				}
			}
			c.Sync(pr)
		})
		env.Run(0)
		if c.DirtyPages() != 0 {
			return false
		}
		written := d.Stats().SectorsWritten
		return written >= uint64(len(dirtied))*PageSectors-written%PageSectors && written >= uint64(len(dirtied))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: reads never lose pages — after reading a range it is resident
// (unless capacity forced eviction, so use a large cache).
func TestQuickReadResidency(t *testing.T) {
	f := func(ops []uint32) bool {
		if len(ops) > 20 {
			ops = ops[:20]
		}
		env := sim.New(5)
		p := disk.SeagateST1000NM0011()
		p.Sectors = 1 << 24
		d := disk.New(env, p)
		c := New(env, d, 1<<16, DefaultOptions())
		ok := true
		env.Go("r", func(pr *sim.Proc) {
			for _, op := range ops {
				sector := int64(op % (1 << 20))
				n := int(op%128) + 1
				c.Read(pr, nil, sector, n)
				first, last := pageRange(sector, n)
				for pg := first; pg < last; pg++ {
					if pgp, found := c.pages[pg]; !found || pgp.pending != nil {
						ok = false
					}
				}
			}
		})
		env.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
