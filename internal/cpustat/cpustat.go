// Package cpustat samples per-node CPU utilization over virtual time — the
// vmstat/top side of the paper's methodology. The paper classifies each
// workload as CPU-bound or I/O-bound (Table 3) and proposes combining CPU
// and disk descriptions in future work; this sampler provides the CPU half
// so the classification is measurable rather than asserted.
package cpustat

import (
	"time"

	"iochar/internal/cluster"
	"iochar/internal/sim"
	"iochar/internal/stats"
)

// Monitor periodically samples the CPU utilization of a set of nodes.
type Monitor struct {
	interval time.Duration
	nodes    []*cluster.Node
	series   *stats.Series // cluster-wide mean utilization, percent
	perNode  []*stats.Series
	lastBusy []time.Duration
	lastAt   time.Duration
	stopped  bool
	started  bool
}

// NewMonitor creates a monitor over the given nodes.
func NewMonitor(interval time.Duration, nodes []*cluster.Node) *Monitor {
	if interval <= 0 {
		panic("cpustat: non-positive interval")
	}
	if len(nodes) == 0 {
		panic("cpustat: no nodes")
	}
	m := &Monitor{
		interval: interval,
		nodes:    nodes,
		series:   stats.NewSeries("cpu.%util"),
		lastBusy: make([]time.Duration, len(nodes)),
	}
	for _, n := range nodes {
		m.perNode = append(m.perNode, stats.NewSeries(n.Name+".cpu%"))
	}
	return m
}

// Start spawns the sampling process. Call at most once.
func (m *Monitor) Start(env *sim.Env) {
	if m.started {
		panic("cpustat: Start called twice")
	}
	m.started = true
	m.lastAt = env.Now()
	for i, n := range m.nodes {
		m.lastBusy[i] = n.CPU.BusyTime()
	}
	env.Go("cpustat", func(p *sim.Proc) {
		for !m.stopped {
			p.Sleep(m.interval)
			m.sample(p.Now())
		}
	})
}

// Stop ends sampling, flushing a final partial interval when meaningful.
func (m *Monitor) Stop(now time.Duration) {
	if m.stopped {
		return
	}
	m.stopped = true
	if now-m.lastAt >= m.interval/10 {
		m.sample(now)
	}
}

func (m *Monitor) sample(now time.Duration) {
	if m.stopped && now == m.lastAt {
		return
	}
	elapsed := now - m.lastAt
	if elapsed <= 0 {
		return
	}
	total := 0.0
	for i, n := range m.nodes {
		busy := n.CPU.BusyTime()
		util := float64(busy-m.lastBusy[i]) / (float64(elapsed) * float64(n.CPU.Capacity())) * 100
		m.perNode[i].Add(now, util)
		m.lastBusy[i] = busy
		total += util
	}
	m.series.Add(now, total/float64(len(m.nodes)))
	m.lastAt = now
}

// Util returns the cluster-wide mean CPU utilization series (percent).
func (m *Monitor) Util() *stats.Series { return m.series }

// NodeUtil returns one node's utilization series, or nil if out of range.
func (m *Monitor) NodeUtil(i int) *stats.Series {
	if i < 0 || i >= len(m.perNode) {
		return nil
	}
	return m.perNode[i]
}
