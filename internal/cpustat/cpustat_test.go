package cpustat

import (
	"testing"
	"time"

	"iochar/internal/cluster"
	"iochar/internal/sim"
)

func rig(nslaves int) (*sim.Env, *cluster.Cluster) {
	env := sim.New(1)
	hw := cluster.DefaultHardware(8192)
	hw.Cores = 4
	cl, err := cluster.New(env, hw, nslaves)
	if err != nil {
		panic(err)
	}
	return env, cl
}

func TestUtilizationTracksLoad(t *testing.T) {
	env, cl := rig(2)
	m := NewMonitor(100*time.Millisecond, cl.Slaves)
	m.Start(env)
	env.Go("load", func(p *sim.Proc) {
		// Slave 0: 2 of 4 cores busy for 1s. Slave 1 idle.
		done := make([]*sim.Handle, 0, 2)
		for i := 0; i < 2; i++ {
			done = append(done, env.Go("burn", func(b *sim.Proc) {
				cl.Slaves[0].Compute(b, time.Second)
			}))
		}
		for _, h := range done {
			h.Wait(p)
		}
		m.Stop(p.Now())
	})
	env.Run(0)
	// Slave 0 at 50%, slave 1 at 0% -> cluster mean 25%.
	got := m.Util().Mean()
	if got < 20 || got > 30 {
		t.Errorf("cluster mean util = %.1f, want ~25", got)
	}
	if n0 := m.NodeUtil(0).Mean(); n0 < 45 || n0 > 55 {
		t.Errorf("node 0 util = %.1f, want ~50", n0)
	}
	if n1 := m.NodeUtil(1).Mean(); n1 != 0 {
		t.Errorf("node 1 util = %.1f, want 0", n1)
	}
}

func TestIdleClusterZero(t *testing.T) {
	env, cl := rig(1)
	m := NewMonitor(50*time.Millisecond, cl.Slaves)
	m.Start(env)
	env.Go("idle", func(p *sim.Proc) {
		p.Sleep(300 * time.Millisecond)
		m.Stop(p.Now())
	})
	env.Run(0)
	if m.Util().Max() != 0 {
		t.Errorf("idle cluster shows util %.1f", m.Util().Max())
	}
	if m.Util().Len() < 5 {
		t.Errorf("samples = %d, want >= 5", m.Util().Len())
	}
}

func TestSaturationCapsAt100(t *testing.T) {
	env, cl := rig(1)
	m := NewMonitor(50*time.Millisecond, cl.Slaves)
	m.Start(env)
	env.Go("load", func(p *sim.Proc) {
		var hs []*sim.Handle
		for i := 0; i < 8; i++ { // 8 tasks on 4 cores
			hs = append(hs, env.Go("burn", func(b *sim.Proc) {
				cl.Slaves[0].Compute(b, 200*time.Millisecond)
			}))
		}
		for _, h := range hs {
			h.Wait(p)
		}
		m.Stop(p.Now())
	})
	env.Run(0)
	if max := m.Util().Max(); max > 100.001 {
		t.Errorf("util exceeded 100%%: %.2f", max)
	}
	if mean := m.Util().MeanNonzero(); mean < 95 {
		t.Errorf("saturated node mean = %.1f, want ~100", mean)
	}
}

func TestNodeUtilOutOfRange(t *testing.T) {
	env, cl := rig(1)
	m := NewMonitor(time.Second, cl.Slaves)
	_ = env
	if m.NodeUtil(-1) != nil || m.NodeUtil(99) != nil {
		t.Error("out-of-range NodeUtil should be nil")
	}
}
