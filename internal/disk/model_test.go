package disk

import (
	"testing"
	"time"

	"iochar/internal/sim"
)

func newTestSSD(channels int) Params {
	return Params{
		Name:       "testssd",
		Sectors:    1 << 24,
		MaxReqSect: 1024,
		Scheduler:  SchedFIFO,
		SSD: &SSDParams{
			ReadLatency:  100 * time.Microsecond,
			WriteLatency: 130 * time.Microsecond,
			ReadBC:       512 << 20,
			WriteBC:      460 << 20,
			Channels:     channels,
		},
	}
}

// Regression (sweep order): pickLOOK must dispatch strictly in sweep order —
// ascending to the top request, then the full descending sweep — with the
// direction flip committed only when a request is actually dispatched from
// the reversed scan, and merged requests keeping their (possibly front-
// extended) position in the sweep.
func TestLOOKSweepOrderStableUnderMerges(t *testing.T) {
	env := sim.New(1)
	d := newTestDisk(env) // LOOK scheduler, head at 0, ascending
	var order []int64
	var counts []int
	d.Subscribe(func(c Completion) {
		order = append(order, c.Sector)
		counts = append(counts, c.Count)
	})
	env.Go("load", func(p *sim.Proc) {
		first := d.Submit(Read, 4096, 8)
		// Let the service loop dispatch the first request, so everything
		// below queues behind it and is scheduled by one LOOK pass.
		p.Sleep(10 * time.Microsecond)
		reqs := []*Request{
			d.Submit(Read, 8000, 8),
			d.Submit(Read, 2000, 8),
			d.Submit(Read, 4200, 8),
			d.Submit(Read, 4208, 8), // back-merges into 4200 → one request [4200,4216)
			d.Submit(Read, 100, 8),
		}
		d.Wait(p, first)
		for _, r := range reqs {
			d.Wait(p, r)
		}
	})
	env.Run(0)
	// Head lands at 4104 after the first request. Ascending: 4200 (merged,
	// 16 sectors), 8000. No request remains above; the reversed sweep
	// dispatches 2000 then 100.
	wantOrder := []int64{4096, 4200, 8000, 2000, 100}
	wantCounts := []int{8, 16, 8, 8, 8}
	if len(order) != len(wantOrder) {
		t.Fatalf("completions = %v (counts %v), want sectors %v", order, counts, wantOrder)
	}
	for i := range wantOrder {
		if order[i] != wantOrder[i] || counts[i] != wantCounts[i] {
			t.Fatalf("completion %d = sector %d count %d, want sector %d count %d (full order %v)",
				i, order[i], counts[i], wantOrder[i], wantCounts[i], order)
		}
	}
}

// An SSD pays no positional cost: service time is identical for adjacent and
// far-apart sectors, and writes are slower than reads per the configured
// asymmetry.
func TestSSDServiceFlatAndAsymmetric(t *testing.T) {
	env := sim.New(1)
	d := New(env, newTestSSD(1))
	if d.Class() != ClassSSD {
		t.Fatalf("Class = %v, want ssd", d.Class())
	}
	var near, far, write time.Duration
	env.Go("r", func(p *sim.Proc) {
		s := p.Now()
		d.Do(p, Read, 1, 64) // head at 0: non-contiguous for an HDD
		near = p.Now() - s
		s = p.Now()
		d.Do(p, Read, 1<<23, 64) // far end of the device
		far = p.Now() - s
		s = p.Now()
		w := d.Submit(Write, 1<<20, 64)
		d.Wait(p, w)
		write = p.Now() - s
	})
	env.Run(0)
	if near != far {
		t.Errorf("flash service time varies with distance: near %v, far %v", near, far)
	}
	if write <= near {
		t.Errorf("write %v should exceed read %v (program latency + lower bandwidth)", write, near)
	}
	hdd := New(sim.New(1), SeagateST1000NM0011())
	if hdd.Class() != ClassHDD {
		t.Errorf("Class = %v, want hdd", hdd.Class())
	}
}

// Channel parallelism: N requests across C channels overlap, so the
// makespan is ceil(N/C) service times, not N; busy accounting (IOTicks,
// hence %util) covers the union of in-service intervals exactly once.
func TestSSDChannelParallelismAccounting(t *testing.T) {
	const channels, requests = 4, 8
	env := sim.New(1)
	p := newTestSSD(channels)
	p.NoMerge = true
	d := New(env, p)
	service := d.Service(0, 256) // identical for every request on flash
	var elapsed time.Duration
	env.Go("load", func(pr *sim.Proc) {
		start := pr.Now()
		var reqs []*Request
		for i := 0; i < requests; i++ {
			// Scattered, non-contiguous sectors: merging is disabled and
			// positional cost does not exist, so all requests are equal.
			reqs = append(reqs, d.Submit(Read, int64(i)*100_000, 256))
		}
		for _, r := range reqs {
			d.Wait(pr, r)
		}
		elapsed = pr.Now() - start
	})
	env.Run(0)
	waves := (requests + channels - 1) / channels
	want := time.Duration(waves) * service
	if elapsed != want {
		t.Errorf("makespan = %v, want %d waves × %v = %v", elapsed, waves, service, want)
	}
	s := d.Stats()
	if s.ReadsCompleted != requests {
		t.Errorf("ReadsCompleted = %d, want %d", s.ReadsCompleted, requests)
	}
	if s.IOTicks != elapsed {
		t.Errorf("IOTicks = %v, want the continuously-busy makespan %v (overlapping channels must not double-count)", s.IOTicks, elapsed)
	}
	if s.SectorsRead != requests*256 {
		t.Errorf("SectorsRead = %d, want %d", s.SectorsRead, requests*256)
	}
}

// Fail-slow injection lives outside the device model, so SetSlowFactor
// degrades flash exactly as it degrades spindles.
func TestFailSlowAppliesToSSD(t *testing.T) {
	env := sim.New(1)
	d := New(env, newTestSSD(2))
	healthy := d.Service(0, 256)
	d.SetSlowFactor(8)
	if got := d.Service(0, 256); got != time.Duration(float64(healthy)*8) {
		t.Errorf("slow service = %v, want 8 × %v", got, healthy)
	}
	d.SetSlowFactor(1)
	if got := d.Service(0, 256); got != healthy {
		t.Errorf("restored service = %v, want %v", got, healthy)
	}
}

// The default flash drive must advertise multiple channels and a FIFO
// scheduler (elevator sweeps buy nothing without a head), and Disk.Model
// must expose the active model.
func TestDataCenterSSDDefaults(t *testing.T) {
	p := DataCenterSSD()
	if p.Class() != ClassSSD || p.SSD == nil {
		t.Fatal("DataCenterSSD must carry a flash model")
	}
	if p.SSD.Channels < 2 {
		t.Errorf("Channels = %d, want parallelism", p.SSD.Channels)
	}
	if p.Scheduler != SchedFIFO {
		t.Errorf("Scheduler = %v, want FIFO", p.Scheduler)
	}
	if p.SSD.WriteLatency <= p.SSD.ReadLatency || p.SSD.WriteBC >= p.SSD.ReadBC {
		t.Error("flash defaults should be read-favoured (write asymmetry)")
	}
	d := New(sim.New(1), p)
	if d.Model().Channels() != p.SSD.Channels {
		t.Errorf("Model().Channels() = %d, want %d", d.Model().Channels(), p.SSD.Channels)
	}
}
