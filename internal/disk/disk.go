// Package disk models a mechanical hard drive together with the Linux block
// layer that feeds it: a request queue with an elevator (LOOK) scheduler,
// back/front merging of contiguous requests, and /proc/diskstats-compatible
// accounting. Service times follow the classic seek + rotation + transfer
// decomposition; the default parameters are the Seagate ST1000NM0011
// datasheet values used in the paper's testbed (7200 RPM, 8.5 ms average
// seek, 4.2 ms average rotational latency, 150 MB/s sustained transfer).
//
// The model is timing-only: callers address sectors, not bytes. Data
// contents live in the filesystem layers above (internal/pagecache,
// internal/localfs), which is also where integrity is enforced.
package disk

import (
	"fmt"
	"time"

	"iochar/internal/sim"
)

// SectorSize is the fixed sector size in bytes, matching the paper's
// avgrq-sz unit ("the size of sector is 512B").
const SectorSize = 512

// Op distinguishes reads from writes.
type Op uint8

// Request operations.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Stage identifies the MapReduce pipeline stage that issued a request, for
// per-stage physical attribution (the paper's §3.3 decomposition of disk
// traffic into intermediate-data and HDFS traffic, at block-trace
// resolution). StageNone marks untagged traffic.
type Stage uint8

// Pipeline stages. The four named stages are the ones the paper's workloads
// exercise: map-side/reduce-side spills, multi-pass merges, shuffle serving,
// and HDFS block I/O (input reads, output and replication writes). StageScrub
// tags the background checksum scrubber's verification reads, so scrub
// traffic is separable from foreground I/O in traces and attribution.
const (
	StageNone Stage = iota
	StageHDFS
	StageSpill
	StageMerge
	StageShuffle
	StageScrub
	// StageMeta tags master metadata I/O: the NameNode's edit log and
	// fsimage checkpoints and the JobTracker's job journal. Nonzero only
	// when master recovery is modeled.
	StageMeta

	numStages
)

func (s Stage) String() string {
	switch s {
	case StageHDFS:
		return "hdfs"
	case StageSpill:
		return "spill"
	case StageMerge:
		return "merge"
	case StageShuffle:
		return "shuffle"
	case StageScrub:
		return "scrub"
	case StageMeta:
		return "meta"
	default:
		return "-"
	}
}

// NumStages is the number of distinct Stage values, for dense per-stage
// accumulator arrays.
const NumStages = int(numStages)

// ParseStage is the inverse of Stage.String. "-" and "" parse as StageNone.
func ParseStage(s string) (Stage, error) {
	switch s {
	case "", "-":
		return StageNone, nil
	case "hdfs":
		return StageHDFS, nil
	case "spill":
		return StageSpill, nil
	case "merge":
		return StageMerge, nil
	case "shuffle":
		return StageShuffle, nil
	case "scrub":
		return StageScrub, nil
	case "meta":
		return StageMeta, nil
	}
	return StageNone, fmt.Errorf("disk: unknown stage %q", s)
}

// Sched selects the request scheduler.
type Sched uint8

// Available schedulers. LOOK is the default and mirrors Linux's elevator
// behaviour closely enough for characterization; FIFO exists for ablation.
const (
	SchedLOOK Sched = iota
	SchedFIFO
)

// Params describes a drive and its block-layer configuration.
type Params struct {
	Name       string
	Sectors    int64         // total addressable sectors
	MinSeek    time.Duration // track-to-track seek
	MaxSeek    time.Duration // full-stroke seek
	RPM        int           // spindle speed
	TransferBC int64         // sustained transfer, bytes/second
	MaxReqSect int           // merge ceiling per request, in sectors (Linux max_sectors_kb)
	Scheduler  Sched
	NoMerge    bool // disable request merging (ablation)
	// SlowFactor degrades every service time by this multiplier (fault
	// injection: a failing drive doing internal retries, or a cold spare
	// rebuilding). 0 or 1 means healthy. Applied outside the device model,
	// so fail-slow faults degrade flash and mechanical drives alike.
	SlowFactor float64
	// SSD, when non-nil, selects the flash device model (per-op latency +
	// bandwidth + channel parallelism) instead of the mechanical one; the
	// mechanical fields (MinSeek/MaxSeek/RPM/TransferBC) are then ignored.
	SSD *SSDParams
}

// Class reports the device technology the params describe.
func (p Params) Class() Class {
	if p.SSD != nil {
		return ClassSSD
	}
	return ClassHDD
}

// SeagateST1000NM0011 returns the paper's drive: 1 TB, 7200 RPM, 8.5 ms
// average seek, 150 MB/s sustained transfer, 512 KiB max request.
//
// MinSeek/MaxSeek are chosen so the mean seek over uniformly random
// distances equals the 8.5 ms datasheet average under the square-root seek
// curve used by Service (E[sqrt(U)] = 2/3).
func SeagateST1000NM0011() Params {
	return Params{
		Name:       "ST1000NM0011",
		Sectors:    2_000_000_000, // ~1 TB
		MinSeek:    500 * time.Microsecond,
		MaxSeek:    12500 * time.Microsecond, // 0.5 + (8.5-0.5)*3/2
		RPM:        7200,
		TransferBC: 150 << 20,
		MaxReqSect: 1024, // 512 KiB
		Scheduler:  SchedLOOK,
	}
}

// Stats mirrors the cumulative counters of /proc/diskstats that iostat
// consumes. All times are virtual.
type Stats struct {
	ReadsCompleted  uint64
	ReadsMerged     uint64
	SectorsRead     uint64
	TimeReading     time.Duration // total residence time of completed reads
	WritesCompleted uint64
	WritesMerged    uint64
	SectorsWritten  uint64
	TimeWriting     time.Duration // total residence time of completed writes
	IOTicks         time.Duration // time the device was busy
	WeightedTicks   time.Duration // integral of in-flight requests over time
}

// Request is one block-layer request. It may absorb contiguous requests by
// merging; completion fires a single event that wakes every contributor.
type Request struct {
	Op     Op
	Sector int64
	Count  int   // sectors
	Stage  Stage // pipeline stage of the first (absorbing) sub-request

	arrived     time.Duration
	subArrivals []time.Duration // arrival times of merged sub-requests
	completion  *sim.Event
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.completion.Fired() }

// end returns the first sector past the request.
func (r *Request) end() int64 { return r.Sector + int64(r.Count) }

// Disk is a simulated drive. Create with New; it runs as a background
// process in the environment and services submitted requests forever.
type Disk struct {
	P   Params
	env *sim.Env

	queue        []*Request
	inflight     int
	work         *sim.Cond
	headPos      int64 // sector under the head after the last request
	ascend       bool  // LOOK direction
	busy         bool
	active       int // requests in service (multi-channel devices)
	lastBusy     time.Duration
	lastWeighted time.Duration

	stats Stats
	model DeviceModel

	// obs are the completion observers (block-level tracing, as blktrace
	// would provide — see internal/trace — plus latency histograms in
	// internal/iostat). Every completed request fans out to all of them.
	obs       []observer
	nextObsID uint64
}

// Completion describes one completed block-layer request as delivered to
// observers. A merged request completes as a single Completion; Arrived is
// the arrival of its first sub-request, so Done-Arrived is the residence
// time iostat calls await and Done-Start is the pure device service time
// (svctm).
type Completion struct {
	Op     Op
	Sector int64
	Count  int   // sectors
	Stage  Stage // pipeline stage of the absorbing sub-request

	Arrived time.Duration // submission time of the first merged sub-request
	Start   time.Duration // when the device began servicing the request
	Done    time.Duration // completion time
}

type observer struct {
	id uint64
	fn func(Completion)
}

// Subscribe registers fn to observe every completed request and returns a
// function that removes the subscription. Any number of observers may be
// attached concurrently; each completion is delivered to all of them in
// subscription order. With no observers attached the completion path does no
// extra work.
//
// The simulation is strictly serialized, so observers need no locking.
// Unsubscribing from inside an observer callback is safe; it takes effect
// for the next completion. Unsubscribe is idempotent.
func (d *Disk) Subscribe(fn func(Completion)) (unsubscribe func()) {
	if fn == nil {
		panic("disk: Subscribe with nil observer")
	}
	id := d.nextObsID
	d.nextObsID++
	d.obs = append(d.obs, observer{id: id, fn: fn})
	return func() {
		for i := range d.obs {
			if d.obs[i].id != id {
				continue
			}
			// Copy-on-write so a dispatch loop holding the old slice
			// header is unaffected by the removal.
			next := make([]observer, 0, len(d.obs)-1)
			next = append(next, d.obs[:i]...)
			next = append(next, d.obs[i+1:]...)
			d.obs = next
			return
		}
	}
}

// New creates a disk and starts its service process(es): one for a
// single-channel (mechanical) device, one per channel for flash.
func New(env *sim.Env, p Params) *Disk {
	if p.MaxReqSect <= 0 {
		p.MaxReqSect = 1024
	}
	var model DeviceModel
	if p.SSD != nil {
		s := *p.SSD
		if p.Sectors <= 0 || s.ReadBC <= 0 || s.WriteBC <= 0 || s.ReadLatency < 0 || s.WriteLatency < 0 {
			panic("disk: invalid SSD params for " + p.Name)
		}
		model = ssdModel{s: s}
	} else {
		if p.Sectors <= 0 || p.RPM <= 0 || p.TransferBC <= 0 {
			panic("disk: invalid params for " + p.Name)
		}
		model = newHDDModel(p)
	}
	d := &Disk{
		P:      p,
		env:    env,
		work:   sim.NewCond(env),
		ascend: true,
		model:  model,
	}
	if ch := model.Channels(); ch > 1 {
		for i := 0; i < ch; i++ {
			env.Go(fmt.Sprintf("disk:%s:ch%d", p.Name, i), func(proc *sim.Proc) {
				proc.SetDaemon(true)
				d.serveChannel(proc)
			})
		}
	} else {
		env.Go("disk:"+p.Name, func(proc *sim.Proc) {
			proc.SetDaemon(true)
			d.serve(proc)
		})
	}
	return d
}

// Model returns the device's service-time model.
func (d *Disk) Model() DeviceModel { return d.model }

// Class reports the device technology, for per-class iostat grouping.
func (d *Disk) Class() Class { return d.model.Class() }

// Stats returns a copy of the cumulative counters.
func (d *Disk) Stats() Stats {
	// Fold the in-progress busy period in, so samplers see smooth %util.
	s := d.stats
	if d.busy {
		s.IOTicks += d.env.Now() - d.lastBusy
	}
	return s
}

// QueueLen returns the number of queued (not yet serviced) requests.
func (d *Disk) QueueLen() int { return len(d.queue) }

// InFlight returns the number of submitted, incomplete logical requests
// (merged sub-requests count individually).
func (d *Disk) InFlight() int { return d.inflight }

// Submit enqueues a request without blocking. The returned Request can be
// waited on with Wait. Count must be positive and the range in-bounds.
func (d *Disk) Submit(op Op, sector int64, count int) *Request {
	return d.SubmitStaged(op, sector, count, StageNone)
}

// SubmitStaged is Submit with a pipeline-stage tag attached to the request.
// When contiguous requests from different stages merge, the absorbing
// request's stage wins — same as Linux, where a merged bio inherits the
// identity of the request it merged into.
func (d *Disk) SubmitStaged(op Op, sector int64, count int, stage Stage) *Request {
	if count <= 0 {
		panic(fmt.Sprintf("disk %s: non-positive request size %d", d.P.Name, count))
	}
	if sector < 0 || sector+int64(count) > d.P.Sectors {
		panic(fmt.Sprintf("disk %s: request [%d,+%d) out of bounds (disk has %d sectors)", d.P.Name, sector, count, d.P.Sectors))
	}
	d.accrueWeighted()
	d.inflight++
	if !d.P.NoMerge {
		if r := d.tryMerge(op, sector, count); r != nil {
			return r
		}
	}
	r := &Request{
		Op:         op,
		Sector:     sector,
		Count:      count,
		Stage:      stage,
		arrived:    d.env.Now(),
		completion: sim.NewEvent(d.env),
	}
	d.queue = append(d.queue, r)
	d.work.Broadcast()
	return r
}

// tryMerge attempts to extend a queued request with a contiguous range of
// the same operation, honouring the per-request size ceiling. It returns the
// absorbing request, or nil if no merge applies.
func (d *Disk) tryMerge(op Op, sector int64, count int) *Request {
	for _, q := range d.queue {
		if q.Op != op || q.Count+count > d.P.MaxReqSect {
			continue
		}
		if q.end() == sector { // back merge
			q.Count += count
			q.subArrivals = append(q.subArrivals, d.env.Now())
			d.bumpMerge(op)
			return q
		}
		if sector+int64(count) == q.Sector { // front merge
			q.Sector = sector
			q.Count += count
			q.subArrivals = append(q.subArrivals, d.env.Now())
			d.bumpMerge(op)
			return q
		}
	}
	return nil
}

func (d *Disk) bumpMerge(op Op) {
	if op == Read {
		d.stats.ReadsMerged++
	} else {
		d.stats.WritesMerged++
	}
}

// Wait blocks p until r completes.
func (d *Disk) Wait(p *sim.Proc, r *Request) { r.completion.Wait(p) }

// Do submits a request and blocks until it completes — the common
// synchronous path.
func (d *Disk) Do(p *sim.Proc, op Op, sector int64, count int) {
	r := d.Submit(op, sector, count)
	r.completion.Wait(p)
}

// serve is the single-channel service loop: one request in service at a
// time, as a mechanical drive's single head assembly dictates.
func (d *Disk) serve(p *sim.Proc) {
	for {
		for len(d.queue) == 0 {
			d.setBusy(false)
			d.work.Wait(p)
		}
		d.setBusy(true)
		r := d.pick()
		start := d.env.Now()
		p.Sleep(d.serviceFor(r.Op, r.Sector, r.Count))
		d.complete(r, start)
	}
}

// serveChannel is one of the Channels() concurrent service loops of a
// multi-channel (flash) device. Busy time (IOTicks, hence %util) covers any
// interval with at least one request in service: a saturated 8-channel SSD
// is 100% utilized, not 800%.
func (d *Disk) serveChannel(p *sim.Proc) {
	for {
		for len(d.queue) == 0 {
			if d.active == 0 {
				d.setBusy(false)
			}
			d.work.Wait(p)
		}
		if d.active == 0 {
			d.setBusy(true)
		}
		d.active++
		r := d.pick()
		start := d.env.Now()
		p.Sleep(d.serviceFor(r.Op, r.Sector, r.Count))
		d.active--
		d.complete(r, start)
	}
}

// pick removes and returns the next request per the configured scheduler.
func (d *Disk) pick() *Request {
	idx := 0
	if d.P.Scheduler == SchedLOOK && len(d.queue) > 1 {
		idx = d.pickLOOK()
	}
	r := d.queue[idx]
	d.queue = append(d.queue[:idx], d.queue[idx+1:]...)
	return r
}

// pickLOOK chooses the nearest request at or past the head in the current
// direction, reversing direction when none remains. The direction flip
// commits only together with a dispatch from the reversed sweep: flipping
// before knowing the reversed scan succeeds (as an earlier version did)
// leaves the elevator pointed the wrong way on the fallback path, and the
// fallback then dispatches queue[0] out of sweep order.
func (d *Disk) pickLOOK() int {
	if i := d.scanLOOK(d.ascend); i >= 0 {
		return i
	}
	if i := d.scanLOOK(!d.ascend); i >= 0 {
		d.ascend = !d.ascend
		return i
	}
	// Unreachable with a non-empty queue: every sector is at-or-above the
	// head or below it, so one of the two sweeps matches. Serve FIFO
	// without corrupting sweep state if it ever triggers.
	return 0
}

// scanLOOK returns the index of the queued request nearest the head in the
// given direction, or -1 when no request lies that way.
func (d *Disk) scanLOOK(ascending bool) int {
	best, bestDist := -1, int64(0)
	for i, q := range d.queue {
		var dist int64
		if ascending {
			dist = q.Sector - d.headPos
		} else {
			dist = d.headPos - q.Sector
		}
		if dist < 0 {
			continue
		}
		if best == -1 || dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

// Service returns the modeled service time for a read starting at sector
// with count sectors, given the current head position. The actual physics
// live in the device model (see DeviceModel); this wrapper applies the
// fault-injection SlowFactor on top, outside the model, so fail-slow
// degradation covers every device class.
func (d *Disk) Service(sector int64, count int) time.Duration {
	return d.serviceFor(Read, sector, count)
}

// serviceFor prices one dispatched request: model time × SlowFactor.
func (d *Disk) serviceFor(op Op, sector int64, count int) time.Duration {
	t := d.model.Service(op, sector, d.headPos, count)
	if d.P.SlowFactor > 1 {
		t = time.Duration(float64(t) * d.P.SlowFactor)
	}
	return t
}

// SetSlowFactor changes the service-time degradation multiplier at runtime
// (fault injection: a drive going fail-slow mid-run, or recovering). Values
// at or below 1 restore healthy timing.
func (d *Disk) SetSlowFactor(f float64) { d.P.SlowFactor = f }

// complete finalizes accounting for r and wakes its waiters. start is the
// time the device began servicing r.
func (d *Disk) complete(r *Request, start time.Duration) {
	d.accrueWeighted()
	now := d.env.Now()
	d.headPos = r.end()
	// Linux semantics: a merged request completes as ONE request (merges
	// lower the I/O count, which is exactly what raises avgrq-sz), and its
	// residence time is accounted once, from first arrival to completion.
	residence := now - r.arrived
	if r.Op == Read {
		d.stats.ReadsCompleted++
		d.stats.SectorsRead += uint64(r.Count)
		d.stats.TimeReading += residence
	} else {
		d.stats.WritesCompleted++
		d.stats.SectorsWritten += uint64(r.Count)
		d.stats.TimeWriting += residence
	}
	d.inflight -= 1 + len(r.subArrivals)
	if len(d.obs) != 0 {
		c := Completion{
			Op:      r.Op,
			Sector:  r.Sector,
			Count:   r.Count,
			Stage:   r.Stage,
			Arrived: r.arrived,
			Start:   start,
			Done:    now,
		}
		// Snapshot the slice header: unsubscribing mid-dispatch replaces
		// d.obs (copy-on-write), leaving this loop's view intact.
		obs := d.obs
		for i := range obs {
			obs[i].fn(c)
		}
	}
	r.completion.Fire()
}

// setBusy maintains the IOTicks (busy time) integral.
func (d *Disk) setBusy(b bool) {
	now := d.env.Now()
	if d.busy {
		d.stats.IOTicks += now - d.lastBusy
	}
	d.busy = b
	d.lastBusy = now
}

// accrueWeighted maintains the in-flight integral (field 11 of diskstats).
func (d *Disk) accrueWeighted() {
	now := d.env.Now()
	d.stats.WeightedTicks += time.Duration(d.inflight) * (now - d.lastWeighted)
	d.lastWeighted = now
}
