package disk

import (
	"fmt"
	"math"
	"time"
)

// Class identifies a device technology, for per-class iostat grouping
// (hdd.* / ssd.* report groups) and storage-tier policy.
type Class uint8

// Device classes.
const (
	ClassHDD Class = iota // mechanical: seek + rotation + transfer
	ClassSSD              // flash: per-op latency + bandwidth, channel-parallel
)

func (c Class) String() string {
	if c == ClassSSD {
		return "ssd"
	}
	return "hdd"
}

// ParseClass is the inverse of Class.String.
func ParseClass(s string) (Class, error) {
	switch s {
	case "hdd":
		return ClassHDD, nil
	case "ssd":
		return ClassSSD, nil
	}
	return ClassHDD, fmt.Errorf("disk: unknown device class %q (want hdd or ssd)", s)
}

// MarshalText serializes the class as its name, so JSON (cache keys, chaos
// schedules, bench configs) reads "hdd"/"ssd" instead of a bare number.
func (c Class) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses a class name.
func (c *Class) UnmarshalText(b []byte) error {
	v, err := ParseClass(string(b))
	if err != nil {
		return err
	}
	*c = v
	return nil
}

// DeviceModel prices individual requests for one device technology. The
// queue, elevator, merging and diskstats accounting in Disk are shared
// across models; only the service-time physics and the device's internal
// parallelism vary per class.
type DeviceModel interface {
	// Service returns the raw device service time for one dispatched
	// request, given the head position at dispatch. Positional cost only
	// exists for mechanical models; flash models ignore head. Fault
	// degradation (SlowFactor) is applied by Disk outside the model, so
	// fail-slow injection works identically for every class.
	Service(op Op, sector, head int64, count int) time.Duration
	// Channels is how many requests the device services concurrently:
	// 1 for a mechanical drive (one head assembly), the internal flash
	// channel count for an SSD.
	Channels() int
	// Class identifies the device technology.
	Class() Class
}

// hddModel is the classic seek + rotation + transfer decomposition: a
// square-root seek curve between MinSeek and MaxSeek, average rotational
// latency for non-contiguous accesses, and linear transfer time.
// Contiguous accesses (sector == head) pay transfer only, modelling
// streaming.
type hddModel struct {
	p      Params
	avgRot time.Duration
}

func newHDDModel(p Params) hddModel {
	fullRot := time.Duration(60e9 / float64(p.RPM))
	return hddModel{p: p, avgRot: fullRot / 2}
}

func (m hddModel) Service(op Op, sector, head int64, count int) time.Duration {
	var t time.Duration
	if sector != head {
		dist := sector - head
		if dist < 0 {
			dist = -dist
		}
		frac := float64(dist) / float64(m.p.Sectors)
		t += m.p.MinSeek + time.Duration(float64(m.p.MaxSeek-m.p.MinSeek)*math.Sqrt(frac))
		t += m.avgRot
	}
	bytes := int64(count) * SectorSize
	t += time.Duration(float64(bytes) / float64(m.p.TransferBC) * 1e9)
	return t
}

func (m hddModel) Channels() int { return 1 }
func (m hddModel) Class() Class  { return ClassHDD }

// SSDParams describes a flash drive: no positional cost, per-operation
// latency plus sustained bandwidth, with read/write asymmetry (program
// operations are slower than page reads) and internal channel parallelism.
type SSDParams struct {
	ReadLatency  time.Duration // per-request read latency (page read + controller)
	WriteLatency time.Duration // per-request program latency
	ReadBC       int64         // sustained read bandwidth, bytes/second
	WriteBC      int64         // sustained write bandwidth, bytes/second
	// Channels is the number of independent flash channels: requests on
	// different channels service concurrently, which is why small random
	// I/O does not collapse SSD throughput the way it does a spindle.
	Channels int
}

// ssdModel prices a request as per-op latency + size/bandwidth for the
// operation's direction. There is no seek or rotation term.
type ssdModel struct {
	s SSDParams
}

func (m ssdModel) Service(op Op, sector, head int64, count int) time.Duration {
	lat, bw := m.s.ReadLatency, m.s.ReadBC
	if op == Write {
		lat, bw = m.s.WriteLatency, m.s.WriteBC
	}
	bytes := int64(count) * SectorSize
	return lat + time.Duration(float64(bytes)/float64(bw)*1e9)
}

func (m ssdModel) Channels() int {
	if m.s.Channels > 1 {
		return m.s.Channels
	}
	return 1
}

func (m ssdModel) Class() Class { return ClassSSD }

// DataCenterSSD returns a datacenter SATA flash drive of the paper's era
// (2013-class, Intel DC S3700-like): 800 GB, ~50 µs reads, ~65 µs writes,
// 500/460 MB/s sustained, 8 internal channels. The request scheduler is
// FIFO — elevator sweeps buy nothing on a device with no head.
func DataCenterSSD() Params {
	return Params{
		Name:       "DC-S3700-800G",
		Sectors:    1_600_000_000, // ~800 GB
		MaxReqSect: 1024,          // 512 KiB
		Scheduler:  SchedFIFO,
		SSD: &SSDParams{
			ReadLatency:  50 * time.Microsecond,
			WriteLatency: 65 * time.Microsecond,
			ReadBC:       500 << 20,
			WriteBC:      460 << 20,
			Channels:     8,
		},
	}
}
