package disk

import (
	"fmt"
	"sync"
)

// MinSectors is the capacity floor Scaled will not shrink below: a device
// under 32 MiB cannot hold even one scaled HDFS block stripe and the
// simulation degenerates.
const MinSectors = 1 << 16

// ClampWarning reports that Scaled hit the MinSectors floor: the scale
// factor asked for fewer sectors than the floor, so the device kept
// MinSectors instead of its proportional share. At that point devices with
// different nominal capacities silently end up the same size, which
// invalidates any experiment that depends on heterogeneous capacities —
// heterogeneous provisioning must use ScaledStrict instead.
type ClampWarning struct {
	Name    string // device name being scaled
	Factor  int64  // requested scale divisor
	Want    int64  // Sectors/Factor, what proportional scaling asked for
	Clamped int64  // the MinSectors floor actually applied
}

func (w ClampWarning) String() string {
	return fmt.Sprintf("disk: scaling %s by %d wants %d sectors, clamped to the %d-sector floor (capacity ratios no longer hold at this scale)",
		w.Name, w.Factor, w.Want, w.Clamped)
}

var (
	clampMu     sync.Mutex
	clampObs    []clampObserver
	clampNextID uint64
)

type clampObserver struct {
	id uint64
	fn func(ClampWarning)
}

// SubscribeScaleClamps registers fn on the provisioning warning bus: it is
// called for every Scaled invocation that hits the MinSectors floor, and the
// returned function removes the subscription. Unlike the per-disk completion
// bus, scaling happens outside the simulation (concurrently across parallel
// suite cells), so fn must be safe to call from multiple goroutines.
func SubscribeScaleClamps(fn func(ClampWarning)) (unsubscribe func()) {
	if fn == nil {
		panic("disk: SubscribeScaleClamps with nil observer")
	}
	clampMu.Lock()
	id := clampNextID
	clampNextID++
	clampObs = append(clampObs, clampObserver{id: id, fn: fn})
	clampMu.Unlock()
	return func() {
		clampMu.Lock()
		defer clampMu.Unlock()
		for i := range clampObs {
			if clampObs[i].id != id {
				continue
			}
			next := make([]clampObserver, 0, len(clampObs)-1)
			next = append(next, clampObs[:i]...)
			next = append(next, clampObs[i+1:]...)
			clampObs = next
			return
		}
	}
}

func notifyClamp(w ClampWarning) {
	clampMu.Lock()
	obs := clampObs
	clampMu.Unlock()
	for i := range obs {
		obs[i].fn(w)
	}
}

// Scaled returns a copy of p with capacity divided by factor, for
// proportionally scaled-down experiments. Timing parameters are unchanged:
// a smaller disk is not a faster disk. Capacity never drops below
// MinSectors; hitting that floor reports a ClampWarning on the bus
// registered via SubscribeScaleClamps, because past it every device scales
// to the same size regardless of its nominal capacity. Provisioning paths
// that mix device capacities must use ScaledStrict, which refuses instead.
func (p Params) Scaled(factor int64) Params {
	if factor > 1 {
		want := p.Sectors / factor
		if want < MinSectors {
			notifyClamp(ClampWarning{Name: p.Name, Factor: factor, Want: want, Clamped: MinSectors})
			want = MinSectors
		}
		p.Sectors = want
	}
	return p
}

// ScaledStrict is Scaled without the floor: when factor would push capacity
// below MinSectors it returns an error instead of clamping. Heterogeneous
// fleets (the flash intermediate tier alongside mechanical HDFS disks) use
// this path, since clamping would silently equalize distinct capacities and
// void the comparison the tier exists to make.
func (p Params) ScaledStrict(factor int64) (Params, error) {
	if factor > 1 {
		want := p.Sectors / factor
		if want < MinSectors {
			return Params{}, fmt.Errorf("disk: scaling %s by %d yields %d sectors, below the %d-sector floor; lower -scale so heterogeneous capacities stay proportional",
				p.Name, factor, want, MinSectors)
		}
		p.Sectors = want
	}
	return p, nil
}
