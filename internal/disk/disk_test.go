package disk

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"iochar/internal/sim"
)

func newTestDisk(env *sim.Env) *Disk {
	p := SeagateST1000NM0011()
	p.Sectors = 1 << 24 // small disk keeps seek distances meaningful in tests
	return New(env, p)
}

func TestSequentialReadPaysTransferOnly(t *testing.T) {
	env := sim.New(1)
	d := newTestDisk(env)
	var elapsed time.Duration
	env.Go("r", func(p *sim.Proc) {
		d.Do(p, Read, 0, 256) // head starts at 0: contiguous
		start := p.Now()
		d.Do(p, Read, 256, 256) // still contiguous
		elapsed = p.Now() - start
	})
	env.Run(0)
	want := d.Service(d.headPos, 256) // pure transfer, head already there
	_ = want
	transfer := time.Duration(float64(256*SectorSize) / float64(d.P.TransferBC) * 1e9)
	if elapsed != transfer {
		t.Errorf("sequential read took %v, want pure transfer %v", elapsed, transfer)
	}
}

func TestRandomReadPaysSeekAndRotation(t *testing.T) {
	env := sim.New(1)
	d := newTestDisk(env)
	var randTime, seqTime time.Duration
	env.Go("r", func(p *sim.Proc) {
		d.Do(p, Read, 0, 8)
		s := p.Now()
		d.Do(p, Read, 8, 8) // sequential
		seqTime = p.Now() - s
		s = p.Now()
		d.Do(p, Read, 1<<23, 8) // far away
		randTime = p.Now() - s
	})
	env.Run(0)
	avgRot := time.Duration(60e9/float64(d.P.RPM)) / 2
	if randTime < seqTime+avgRot {
		t.Errorf("random access %v should exceed sequential %v by at least rotation %v", randTime, seqTime, avgRot)
	}
}

func TestSeekCurveMonotoneInDistance(t *testing.T) {
	env := sim.New(1)
	d := newTestDisk(env)
	prev := time.Duration(0)
	for _, dist := range []int64{1, 100, 10_000, 1_000_000, 8_000_000} {
		d.headPos = 0
		st := d.Service(dist, 1)
		if st < prev {
			t.Errorf("service time decreased with distance %d: %v < %v", dist, st, prev)
		}
		prev = st
	}
}

func TestStatsConservation(t *testing.T) {
	env := sim.New(1)
	d := newTestDisk(env)
	env.Go("w", func(p *sim.Proc) {
		d.Do(p, Write, 0, 100)
		d.Do(p, Read, 1000, 50)
		d.Do(p, Write, 5000, 25)
	})
	env.Run(0)
	s := d.Stats()
	if s.SectorsWritten != 125 {
		t.Errorf("SectorsWritten = %d, want 125", s.SectorsWritten)
	}
	if s.SectorsRead != 50 {
		t.Errorf("SectorsRead = %d, want 50", s.SectorsRead)
	}
	if s.ReadsCompleted != 1 || s.WritesCompleted != 2 {
		t.Errorf("completions = %d/%d, want 1/2", s.ReadsCompleted, s.WritesCompleted)
	}
	if s.IOTicks <= 0 {
		t.Error("IOTicks should be positive after activity")
	}
	if s.TimeReading <= 0 || s.TimeWriting <= 0 {
		t.Error("residence times should be positive")
	}
}

func TestBackMergeCombinesContiguousRequests(t *testing.T) {
	env := sim.New(1)
	d := newTestDisk(env)
	// Occupy the device so subsequent submissions queue and can merge.
	env.Go("blocker", func(p *sim.Proc) { d.Do(p, Read, 1<<20, 1024) })
	env.Go("stream", func(p *sim.Proc) {
		var reqs []*Request
		for i := 0; i < 4; i++ {
			reqs = append(reqs, d.Submit(Write, int64(i*128), 128))
		}
		for _, r := range reqs {
			d.Wait(p, r)
		}
	})
	env.Run(0)
	s := d.Stats()
	if s.WritesMerged != 3 {
		t.Errorf("WritesMerged = %d, want 3", s.WritesMerged)
	}
	if s.WritesCompleted != 1 {
		t.Errorf("WritesCompleted = %d, want 1 (single merged request)", s.WritesCompleted)
	}
	if s.SectorsWritten != 512 {
		t.Errorf("SectorsWritten = %d, want 512", s.SectorsWritten)
	}
}

func TestFrontMerge(t *testing.T) {
	env := sim.New(1)
	d := newTestDisk(env)
	env.Go("blocker", func(p *sim.Proc) { d.Do(p, Read, 1<<20, 1024) })
	env.Go("s", func(p *sim.Proc) {
		r1 := d.Submit(Write, 512, 128)
		r2 := d.Submit(Write, 384, 128) // immediately before r1
		d.Wait(p, r1)
		d.Wait(p, r2)
	})
	env.Run(0)
	if got := d.Stats().WritesMerged; got != 1 {
		t.Errorf("WritesMerged = %d, want 1", got)
	}
}

func TestMergeRespectsMaxRequestSize(t *testing.T) {
	env := sim.New(1)
	p := SeagateST1000NM0011()
	p.Sectors = 1 << 24
	p.MaxReqSect = 256
	d := New(env, p)
	env.Go("blocker", func(pr *sim.Proc) { d.Do(pr, Read, 1<<20, 256) })
	env.Go("s", func(pr *sim.Proc) {
		var reqs []*Request
		for i := 0; i < 4; i++ { // 4 x 128 sectors; ceiling allows only 2 per request
			reqs = append(reqs, d.Submit(Write, int64(i*128), 128))
		}
		for _, r := range reqs {
			d.Wait(pr, r)
		}
	})
	env.Run(0)
	s := d.Stats()
	if s.WritesCompleted != 2 {
		t.Errorf("WritesCompleted = %d, want 2 (256-sector ceiling)", s.WritesCompleted)
	}
}

func TestNoMergeAblation(t *testing.T) {
	env := sim.New(1)
	p := SeagateST1000NM0011()
	p.Sectors = 1 << 24
	p.NoMerge = true
	d := New(env, p)
	env.Go("blocker", func(pr *sim.Proc) { d.Do(pr, Read, 1<<20, 1024) })
	env.Go("s", func(pr *sim.Proc) {
		var reqs []*Request
		for i := 0; i < 4; i++ {
			reqs = append(reqs, d.Submit(Write, int64(i*128), 128))
		}
		for _, r := range reqs {
			d.Wait(pr, r)
		}
	})
	env.Run(0)
	s := d.Stats()
	if s.WritesMerged != 0 {
		t.Errorf("WritesMerged = %d, want 0 with NoMerge", s.WritesMerged)
	}
	if s.WritesCompleted != 4 {
		t.Errorf("WritesCompleted = %d, want 4", s.WritesCompleted)
	}
}

func TestLOOKOrdersByPosition(t *testing.T) {
	env := sim.New(1)
	d := newTestDisk(env)
	var completions []int64
	// Saturate the queue while the device is busy with a far request. The
	// microsecond delay ensures the blocker is already in service when the
	// probes queue, so LOOK ordering starts from the blocker's position.
	env.Go("blocker", func(p *sim.Proc) { d.Do(p, Read, 1<<22, 8) })
	for _, sect := range []int64{9 << 20, 1 << 20, 5 << 20} {
		sect := sect
		env.Go("r", func(p *sim.Proc) {
			p.Sleep(time.Microsecond)
			r := d.Submit(Read, sect, 8)
			d.Wait(p, r)
			completions = append(completions, sect)
		})
	}
	env.Run(0)
	if len(completions) != 3 {
		t.Fatalf("got %d completions, want 3", len(completions))
	}
	// Head ends at 1<<22+8 ascending; nearest-in-direction first: 5<<20, 9<<20, then reverse to 1<<20.
	want := []int64{5 << 20, 9 << 20, 1 << 20}
	for i := range want {
		if completions[i] != want[i] {
			t.Errorf("completion[%d] = %d, want %d (LOOK order)", i, completions[i], want[i])
		}
	}
}

func TestFIFOSchedulerOrder(t *testing.T) {
	env := sim.New(1)
	p := SeagateST1000NM0011()
	p.Sectors = 1 << 24
	p.Scheduler = SchedFIFO
	p.NoMerge = true
	d := New(env, p)
	var completions []int64
	env.Go("blocker", func(pr *sim.Proc) { d.Do(pr, Read, 1<<22, 8) })
	for _, sect := range []int64{9 << 20, 1 << 20, 5 << 20} {
		sect := sect
		env.Go("r", func(pr *sim.Proc) {
			r := d.Submit(Read, sect, 8)
			d.Wait(pr, r)
			completions = append(completions, sect)
		})
	}
	env.Run(0)
	want := []int64{9 << 20, 1 << 20, 5 << 20}
	for i := range want {
		if completions[i] != want[i] {
			t.Errorf("completion[%d] = %d, want %d (FIFO order)", i, completions[i], want[i])
		}
	}
}

func TestUtilizationBusyVsIdle(t *testing.T) {
	env := sim.New(1)
	d := newTestDisk(env)
	env.Go("r", func(p *sim.Proc) {
		d.Do(p, Read, 0, 1024)
		p.Sleep(time.Second) // idle period
	})
	env.Run(0)
	s := d.Stats()
	if s.IOTicks >= time.Second {
		t.Errorf("IOTicks = %v, should be far below the 1s idle tail", s.IOTicks)
	}
	if s.IOTicks <= 0 {
		t.Error("IOTicks should be positive")
	}
}

func TestAwaitIncludesQueueing(t *testing.T) {
	env := sim.New(1)
	d := newTestDisk(env)
	// Two far-apart requests: the second queues behind the first.
	env.Go("a", func(p *sim.Proc) { d.Do(p, Read, 1<<22, 8) })
	env.Go("b", func(p *sim.Proc) { d.Do(p, Read, 1<<10, 8) })
	env.Run(0)
	s := d.Stats()
	// Total residence must exceed pure busy time because of queueing overlap.
	if s.TimeReading <= s.IOTicks {
		t.Errorf("total residence %v should exceed busy time %v when requests queue", s.TimeReading, s.IOTicks)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	env := sim.New(1)
	d := newTestDisk(env)
	env.Go("r", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("want panic for out-of-bounds request")
			}
		}()
		d.Submit(Read, d.P.Sectors-1, 2)
	})
	env.Run(0)
}

func TestScaledParamsClampAndShrink(t *testing.T) {
	p := SeagateST1000NM0011()
	s := p.Scaled(1024)
	if s.Sectors != p.Sectors/1024 {
		t.Errorf("Sectors = %d, want %d", s.Sectors, p.Sectors/1024)
	}
	tiny := p.Scaled(1 << 40)
	if tiny.Sectors != MinSectors {
		t.Errorf("Sectors = %d, want clamp at %d", tiny.Sectors, MinSectors)
	}
	if s.TransferBC != p.TransferBC {
		t.Error("scaling must not change timing parameters")
	}
}

// Regression: the clamp must be loud. Scaled silently equalized every disk
// to the same MinSectors floor at large scale factors, which voids any
// experiment that depends on heterogeneous capacities; now every clamp
// reports a ClampWarning on the subscription bus, and ScaledStrict refuses
// outright.
func TestScaledClampWarnsAndStrictErrors(t *testing.T) {
	p := SeagateST1000NM0011()

	var warns []ClampWarning
	unsub := SubscribeScaleClamps(func(w ClampWarning) { warns = append(warns, w) })
	defer unsub()

	if s := p.Scaled(1024); s.Sectors != p.Sectors/1024 {
		t.Fatalf("Sectors = %d, want %d", s.Sectors, p.Sectors/1024)
	}
	if len(warns) != 0 {
		t.Fatalf("proportional scaling warned: %v", warns)
	}

	factor := int64(1 << 20)
	if s := p.Scaled(factor); s.Sectors != MinSectors {
		t.Fatalf("Sectors = %d, want clamp at %d", s.Sectors, MinSectors)
	}
	if len(warns) != 1 {
		t.Fatalf("got %d clamp warnings, want 1: %v", len(warns), warns)
	}
	w := warns[0]
	if w.Name != p.Name || w.Factor != factor || w.Want != p.Sectors/factor || w.Clamped != MinSectors {
		t.Errorf("warning = %+v, want {%s %d %d %d}", w, p.Name, factor, p.Sectors/factor, MinSectors)
	}

	if _, err := p.ScaledStrict(factor); err == nil {
		t.Error("ScaledStrict must refuse a factor that would clamp")
	}
	s, err := p.ScaledStrict(1024)
	if err != nil {
		t.Fatalf("ScaledStrict(1024): %v", err)
	}
	if s.Sectors != p.Sectors/1024 {
		t.Errorf("strict Sectors = %d, want %d", s.Sectors, p.Sectors/1024)
	}

	unsub()
	p.Scaled(factor)
	if len(warns) != 1 {
		t.Error("unsubscribe did not stop clamp notifications")
	}
}

// Property: for any batch of in-bounds requests, sectors in == sectors out
// and all requests complete (no lost wakeups), regardless of interleaving.
func TestQuickSectorConservation(t *testing.T) {
	f := func(seed int64, raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		env := sim.New(seed)
		d := newTestDisk(env)
		var wantR, wantW uint64
		for i, rv := range raw {
			sect := int64(rv) % (d.P.Sectors - 2048)
			count := int(rv%512) + 1
			op := Read
			if i%2 == 1 {
				op = Write
			}
			if op == Read {
				wantR += uint64(count)
			} else {
				wantW += uint64(count)
			}
			delay := time.Duration(rv%1000) * time.Microsecond
			env.Go("u", func(p *sim.Proc) {
				p.Sleep(delay)
				d.Do(p, op, sect, count)
			})
		}
		env.Run(0)
		s := d.Stats()
		if s.SectorsRead != wantR || s.SectorsWritten != wantW {
			t.Logf("sectors: got %d/%d want %d/%d", s.SectorsRead, s.SectorsWritten, wantR, wantW)
			return false
		}
		return d.InFlight() == 0 && d.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: avg service time over random single-sector accesses approximates
// seek + rotation (the datasheet promise the model was calibrated to).
func TestRandomAccessAverageNearDatasheet(t *testing.T) {
	env := sim.New(7)
	p := SeagateST1000NM0011()
	d := New(env, p)
	const n = 2000
	var total time.Duration
	env.Go("r", func(pr *sim.Proc) {
		for i := 0; i < n; i++ {
			sect := int64(env.Rand().Int63n(p.Sectors - 8))
			st := d.Service(sect, 1)
			d.headPos = sect + 1
			total += st
		}
	})
	env.Run(0)
	avg := total / n
	// 8.5ms seek + 4.17ms rotation ± 20%.
	lo, hi := 10*time.Millisecond, 16*time.Millisecond
	if avg < lo || avg > hi {
		t.Errorf("avg random access %v, want within [%v, %v]", avg, lo, hi)
	}
}

func TestSlowFactorDegradesService(t *testing.T) {
	env := sim.New(1)
	healthy := New(env, SeagateST1000NM0011())
	pSlow := SeagateST1000NM0011()
	pSlow.Name = "degraded"
	pSlow.SlowFactor = 4
	slow := New(env, pSlow)
	h := healthy.Service(1<<20, 256)
	s := slow.Service(1<<20, 256)
	if s != 4*h {
		t.Errorf("degraded service %v, want 4x healthy %v", s, h)
	}
}

// Failure injection end-to-end: a degraded disk in a striped group must
// dominate completion time and show the elevated await signature that an
// operator would diagnose with iostat.
func TestDegradedDiskSlowsGroupAndShowsInAwait(t *testing.T) {
	run := func(slowFactor float64) (time.Duration, time.Duration) {
		env := sim.New(1)
		var disks []*Disk
		for i := 0; i < 3; i++ {
			p := SeagateST1000NM0011()
			p.Sectors = 1 << 24
			p.Name = fmt.Sprintf("d%d", i)
			if i == 0 {
				p.SlowFactor = slowFactor
			}
			disks = append(disks, New(env, p))
		}
		// Stripe writes round-robin, as the MR volume rotation does.
		env.Go("w", func(pr *sim.Proc) {
			for i := 0; i < 60; i++ {
				disks[i%3].Do(pr, Write, int64(i)*4096, 256)
			}
		})
		end, _ := env.Run(0)
		st := disks[0].Stats()
		var await time.Duration
		if st.WritesCompleted > 0 {
			await = st.TimeWriting / time.Duration(st.WritesCompleted)
		}
		return end, await
	}
	healthyEnd, healthyAwait := run(1)
	degradedEnd, degradedAwait := run(8)
	if degradedEnd <= healthyEnd*2 {
		t.Errorf("degraded group finished at %v, healthy %v; fault not visible", degradedEnd, healthyEnd)
	}
	if degradedAwait <= healthyAwait*3 {
		t.Errorf("degraded await %v vs healthy %v; iostat signature missing", degradedAwait, healthyAwait)
	}
}

func TestSubscribeFansOutToAllObservers(t *testing.T) {
	env := sim.New(1)
	d := newTestDisk(env)
	var a, b []Completion
	unsubA := d.Subscribe(func(c Completion) { a = append(a, c) })
	d.Subscribe(func(c Completion) { b = append(b, c) })
	env.Go("io", func(p *sim.Proc) {
		d.Do(p, Read, 0, 64)
		d.Do(p, Write, 1<<20, 128)
		d.Do(p, Read, 1<<21, 8)
		// Unsubscribing mid-run stops a alone; b keeps observing.
		unsubA()
		unsubA() // idempotent
		d.Do(p, Write, 1<<22, 16)
	})
	env.Run(0)
	if len(a) != 3 {
		t.Fatalf("unsubscribed observer saw %d completions, want 3", len(a))
	}
	if len(b) != 4 {
		t.Fatalf("second observer saw %d completions, want 4", len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("completion %d differs between observers: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i, c := range b {
		if c.Done <= c.Arrived || c.Done < c.Start || c.Start < c.Arrived {
			t.Errorf("completion %d has inconsistent timestamps: %+v", i, c)
		}
	}
	if b[3].Op != Write || b[3].Count != 16 {
		t.Errorf("post-unsubscribe completion = %+v, want the 16-sector write", b[3])
	}
}

func TestUnsubscribeDuringDispatch(t *testing.T) {
	// An observer removing itself from inside its own callback must not
	// disturb the fan-out to the remaining observers.
	env := sim.New(1)
	d := newTestDisk(env)
	var selfRemoved, other int
	var unsub func()
	unsub = d.Subscribe(func(Completion) {
		selfRemoved++
		unsub()
	})
	d.Subscribe(func(Completion) { other++ })
	env.Go("io", func(p *sim.Proc) {
		d.Do(p, Read, 0, 8)
		d.Do(p, Read, 1<<20, 8)
	})
	env.Run(0)
	if selfRemoved != 1 {
		t.Errorf("self-removing observer fired %d times, want 1", selfRemoved)
	}
	if other != 2 {
		t.Errorf("surviving observer fired %d times, want 2", other)
	}
}

func TestSubscribeReplacementPattern(t *testing.T) {
	// Single-slot replacement (the old SetTrace semantics) is expressed on
	// the bus as unsubscribe-then-subscribe, without displacing other
	// observers.
	env := sim.New(1)
	d := newTestDisk(env)
	var first, second, bus int
	d.Subscribe(func(Completion) { bus++ })
	unsub := d.Subscribe(func(Completion) { first++ })
	unsub()
	d.Subscribe(func(Completion) { second++ })
	env.Go("io", func(p *sim.Proc) {
		d.Do(p, Write, 0, 32)
	})
	env.Run(0)
	if first != 0 {
		t.Errorf("replaced trace fn fired %d times, want 0", first)
	}
	if second != 1 {
		t.Errorf("current trace fn fired %d times, want 1", second)
	}
	if bus != 1 {
		t.Errorf("bus observer fired %d times, want 1", bus)
	}
}
