package disk

import (
	"fmt"
	"testing"
	"time"

	"iochar/internal/sim"
)

// runPattern drives n requests through a fresh disk and returns the virtual
// completion time and the disk — the ablation quantities (wall time is the
// benchmark's own).
func runPattern(b *testing.B, sched Sched, noMerge bool, random bool, n int) (time.Duration, *Disk) {
	b.Helper()
	env := sim.New(1)
	p := SeagateST1000NM0011()
	p.Sectors = 1 << 26
	p.Scheduler = sched
	p.NoMerge = noMerge
	d := New(env, p)
	for s := 0; s < 8; s++ {
		s := s
		env.Go(fmt.Sprintf("w%d", s), func(pr *sim.Proc) {
			pos := int64(s) << 20
			// Submit in batches of 8 so the queue has depth — the block
			// layer only merges requests it can see waiting.
			for i := 0; i < n/8; i += 8 {
				var reqs []*Request
				for j := 0; j < 8; j++ {
					var sector int64
					if random {
						sector = env.Rand().Int63n(p.Sectors - 256)
					} else {
						sector = pos
						pos += 128
					}
					reqs = append(reqs, d.Submit(Write, sector, 128))
				}
				for _, r := range reqs {
					d.Wait(pr, r)
				}
			}
		})
	}
	end, _ := env.Run(0)
	return end, d
}

func BenchmarkDiskSequentialStreams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runPattern(b, SchedLOOK, false, false, 800)
	}
}

func BenchmarkDiskRandomStreams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runPattern(b, SchedLOOK, false, true, 800)
	}
}

// BenchmarkAblationScheduler contrasts LOOK and FIFO on the same random
// load: the elevator should finish the batch in less virtual time.
func BenchmarkAblationScheduler(b *testing.B) {
	for _, c := range []struct {
		name  string
		sched Sched
	}{{"LOOK", SchedLOOK}, {"FIFO", SchedFIFO}} {
		b.Run(c.name, func(b *testing.B) {
			var vt time.Duration
			for i := 0; i < b.N; i++ {
				vt, _ = runPattern(b, c.sched, false, true, 800)
			}
			b.ReportMetric(vt.Seconds(), "virtual-s")
		})
	}
}

// BenchmarkAblationMerging contrasts request merging on and off for
// contiguous writes. Sequential transfers take the same virtual time either
// way; what merging changes is the request count — exactly the avgrq-sz
// effect the paper's Figures 10-12 rest on.
func BenchmarkAblationMerging(b *testing.B) {
	for _, c := range []struct {
		name    string
		noMerge bool
	}{{"merge", false}, {"nomerge", true}} {
		b.Run(c.name, func(b *testing.B) {
			var completed uint64
			for i := 0; i < b.N; i++ {
				_, d := runPattern(b, SchedLOOK, c.noMerge, false, 800)
				completed = d.Stats().WritesCompleted
			}
			b.ReportMetric(float64(completed), "requests")
		})
	}
}

func BenchmarkServiceTime(b *testing.B) {
	env := sim.New(1)
	d := New(env, SeagateST1000NM0011())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Service(int64(i%1_000_000)*977, 64)
	}
}
