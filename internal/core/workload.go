package core

import (
	"fmt"
	"strings"
)

// Workload identifies one benchmark of the study as a typed enum — the four
// paper workloads plus the Join extension — replacing the magic strings the
// framework's early API took. The zero value is invalid; obtain values from
// the constants or ParseWorkload.
type Workload uint8

// The paper's four workloads (Table 3) and the Join extension.
const (
	workloadInvalid Workload = iota
	TS                       // TeraSort: total-order sort, I/O-bound
	AGG                      // Hive Aggregation: group-by revenue, CPU-bound
	KM                       // K-means: iterative clustering
	PR                       // PageRank: power iterations
	Join                     // Hive Join (extension beyond the paper)
)

var workloadKeys = map[Workload]string{
	TS: "TS", AGG: "AGG", KM: "KM", PR: "PR", Join: "JOIN",
}

// String returns the paper's abbreviation (TS, AGG, KM, PR; JOIN for the
// extension), or "invalid" for values outside the enum.
func (w Workload) String() string {
	if s, ok := workloadKeys[w]; ok {
		return s
	}
	return "invalid"
}

// Valid reports whether w is one of the defined workloads.
func (w Workload) Valid() bool { _, ok := workloadKeys[w]; return ok }

// MarshalText encodes w as its abbreviation, so JSON-serialized reports and
// cache entries stay human-readable and stable across enum reorderings.
func (w Workload) MarshalText() ([]byte, error) {
	if !w.Valid() {
		return nil, fmt.Errorf("core: cannot encode invalid workload %d", uint8(w))
	}
	return []byte(w.String()), nil
}

// UnmarshalText decodes an abbreviation (any case, full names accepted).
func (w *Workload) UnmarshalText(text []byte) error {
	v, err := ParseWorkload(string(text))
	if err != nil {
		return err
	}
	*w = v
	return nil
}

// ParseWorkload resolves a workload name: the paper abbreviation in any
// case, or the full benchmark name ("terasort", "aggregation", "kmeans",
// "pagerank", "join").
func ParseWorkload(s string) (Workload, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "ts", "terasort":
		return TS, nil
	case "agg", "aggregation":
		return AGG, nil
	case "km", "kmeans", "k-means":
		return KM, nil
	case "pr", "pagerank":
		return PR, nil
	case "join":
		return Join, nil
	}
	return workloadInvalid, fmt.Errorf("core: unknown workload %q (want TS, AGG, KM, PR or JOIN)", s)
}

// PaperWorkloads returns the four paper workloads in the paper's figure
// order (WorkloadOrder).
func PaperWorkloads() []Workload {
	out := make([]Workload, len(WorkloadOrder))
	copy(out, WorkloadOrder)
	return out
}
