package core

import (
	"fmt"

	"iochar/internal/iostat"
	"iochar/internal/stats"
)

// SeriesRow is one plotted line/bar of a figure panel: a workload under one
// factor level, with summary statistics and the (downsampled) time series.
type SeriesRow struct {
	Label    string // e.g. "AGG_1_8", "TS_32G", "KM_on"
	Mean     float64
	MeanBusy float64 // mean over non-idle sampling intervals
	Peak     float64
	// Summary is the headline value for bars and comparisons: the whole-run
	// mean for bandwidth (bytes are conserved, so bursts must not inflate
	// it) and the busy-interval mean for utilization/latency/request-size
	// (idle intervals carry no such sample).
	Summary float64
	Series  *stats.Series
}

// Panel is one subfigure ((a), (b), ...).
type Panel struct {
	Title string
	Unit  string
	Rows  []SeriesRow
}

// FigureData is everything needed to render one paper figure.
type FigureData struct {
	ID     int
	Title  string
	Note   string
	Panels []Panel
}

// TableData is one paper table.
type TableData struct {
	ID     int
	Title  string
	Header []string
	Rows   [][]string
}

// metric selects one iostat series and names it.
type metric struct {
	name string
	unit string
	sel  func(*iostat.Report) *stats.Series
}

var (
	metricRead  = metric{"Disk Read Bandwidth", "MB/s", func(r *iostat.Report) *stats.Series { return r.RMBs }}
	metricWrite = metric{"Disk Write Bandwidth", "MB/s", func(r *iostat.Report) *stats.Series { return r.WMBs }}
	metricUtil  = metric{"Disk Utilization", "%util", func(r *iostat.Report) *stats.Series { return r.Util }}
	metricWait  = metric{"Avg Waiting Time of I/O Requests", "ms (await-svctm)", func(r *iostat.Report) *stats.Series { return r.WaitMs }}
	metricRqSz  = metric{"Avg Size of I/O Requests", "sectors (avgrq-sz)", func(r *iostat.Report) *stats.Series { return r.AvgrqSz }}
)

// family bundles an experiment family's runs with its display naming.
type family struct {
	key  string
	runs []Factors
}

var (
	famSlots    = family{"slots", SlotsRuns}
	famMemory   = family{"memory", MemoryRuns}
	famCompress = family{"compress", CompressRuns}
)

// scenario selects a disk group from a run report.
type scenario struct {
	name string
	sel  func(*RunReport) *iostat.Report
}

var (
	scenHDFS = scenario{"HDFS", func(r *RunReport) *iostat.Report { return r.HDFS }}
	scenMR   = scenario{"MapReduce", func(r *RunReport) *iostat.Report { return r.MR }}
)

// panel builds one subfigure: every workload under every factor level of
// the family, for one metric and scenario.
func (s *Suite) panel(fam family, m metric, sc scenario) (Panel, error) {
	p := Panel{Title: fmt.Sprintf("%s — %s", sc.name, m.name), Unit: m.unit}
	for _, wkey := range WorkloadOrder {
		for _, f := range fam.runs {
			rep, err := s.Run(wkey, f)
			if err != nil {
				return Panel{}, err
			}
			series := m.sel(sc.sel(rep))
			row := SeriesRow{
				Label:    wkey.String() + "_" + FactorLabel(fam.key, f),
				Mean:     series.Mean(),
				MeanBusy: series.MeanNonzero(),
				Peak:     series.Max(),
				Series:   series.Downsample(60),
			}
			if m.unit == "MB/s" {
				row.Summary = row.Mean
			} else {
				row.Summary = row.MeanBusy
			}
			p.Rows = append(p.Rows, row)
		}
	}
	return p, nil
}

// figureSpec describes one paper figure declaratively.
type figureSpec struct {
	title  string
	note   string
	fam    family
	m      metric
	panels []scenario // one Panel per scenario, read first for R then W when both metrics
	both   bool       // read+write bandwidth figure (panels duplicated per metric)
}

var figureSpecs = map[int]figureSpec{
	1: {title: "Effects of task slots on Disk R/W Bandwidth (HDFS & MapReduce)",
		note: "mem=16G, compression=on", fam: famSlots, m: metricRead, both: true,
		panels: []scenario{scenHDFS, scenMR}},
	2: {title: "Effects of memory on Disk R/W Bandwidth (HDFS & MapReduce)",
		note: "slots=1_8, compression=off", fam: famMemory, m: metricRead, both: true,
		panels: []scenario{scenHDFS, scenMR}},
	3: {title: "Effects of compression on Disk R/W Bandwidth (MapReduce)",
		note: "mem=32G, slots=1_8", fam: famCompress, m: metricRead, both: true,
		panels: []scenario{scenMR}},
	4: {title: "Effects of task slots on Disk Utilization",
		note: "mem=16G, compression=on", fam: famSlots, m: metricUtil,
		panels: []scenario{scenHDFS, scenMR}},
	5: {title: "Effects of memory on Disk Utilization",
		note: "slots=1_8, compression=off", fam: famMemory, m: metricUtil,
		panels: []scenario{scenHDFS, scenMR}},
	6: {title: "Effects of compression on Disk Utilization",
		note: "mem=32G, slots=1_8", fam: famCompress, m: metricUtil,
		panels: []scenario{scenHDFS, scenMR}},
	7: {title: "Effects of task slots on Disk waiting time of I/O requests",
		note: "mem=16G, compression=on", fam: famSlots, m: metricWait,
		panels: []scenario{scenHDFS, scenMR}},
	8: {title: "Effects of memory on Disk waiting time of I/O requests",
		note: "slots=1_8, compression=off", fam: famMemory, m: metricWait,
		panels: []scenario{scenHDFS, scenMR}},
	9: {title: "Effects of compression on Disk waiting time of I/O requests",
		note: "mem=32G, slots=1_8", fam: famCompress, m: metricWait,
		panels: []scenario{scenHDFS, scenMR}},
	10: {title: "Effects of task slots on Disk average size of I/O requests",
		note: "mem=16G, compression=on", fam: famSlots, m: metricRqSz,
		panels: []scenario{scenHDFS, scenMR}},
	11: {title: "Effects of memory on Disk average size of I/O requests",
		note: "slots=1_8, compression=off", fam: famMemory, m: metricRqSz,
		panels: []scenario{scenHDFS, scenMR}},
	12: {title: "Effects of compression on Disk average size of I/O requests (MapReduce)",
		note: "mem=32G, slots=1_8", fam: famCompress, m: metricRqSz,
		panels: []scenario{scenMR}},
}

// Figure regenerates the data behind paper Figure n (1-12).
func (s *Suite) Figure(n int) (*FigureData, error) {
	spec, ok := figureSpecs[n]
	if !ok {
		return nil, fmt.Errorf("core: no figure %d (paper has 1-12)", n)
	}
	fd := &FigureData{ID: n, Title: spec.title, Note: spec.note}
	if spec.both {
		// Bandwidth figures carry read and write panels per scenario,
		// ordered as in the paper: reads first, then writes.
		for _, m := range []metric{metricRead, metricWrite} {
			for _, sc := range spec.panels {
				p, err := s.panel(spec.fam, m, sc)
				if err != nil {
					return nil, err
				}
				fd.Panels = append(fd.Panels, p)
			}
		}
		return fd, nil
	}
	for _, sc := range spec.panels {
		p, err := s.panel(spec.fam, spec.m, sc)
		if err != nil {
			return nil, err
		}
		fd.Panels = append(fd.Panels, p)
	}
	return fd, nil
}

// Table regenerates paper Table n (5, 6 or 7). Tables 1-4 are configuration
// and notation, encoded as defaults throughout the packages.
func (s *Suite) Table(n int) (*TableData, error) {
	switch n {
	case 5:
		return s.table5()
	case 6:
		return s.utilTable(6, "The Peak ratio of HDFS disk utilization", scenHDFS)
	case 7:
		return s.utilTable(7, "The ratio of MapReduce disk utilization", scenMR)
	}
	return nil, fmt.Errorf("core: no table %d (reproducible tables are 5, 6, 7)", n)
}

// table5 is the peak HDFS disk read bandwidth per workload × slots config.
func (s *Suite) table5() (*TableData, error) {
	t := &TableData{
		ID:     5,
		Title:  "Peak HDFS Disk Read Bandwidth (MB/s)",
		Header: []string{"Workload", "1_8", "2_16"},
	}
	for _, wkey := range WorkloadOrder {
		row := []string{wkey.String()}
		for _, f := range SlotsRuns {
			rep, err := s.Run(wkey, f)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", rep.HDFS.RMBs.Max()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// utilTable is the fraction of sampled intervals with %util above each
// threshold, per workload (Tables 6 and 7), on the baseline slots run.
func (s *Suite) utilTable(id int, title string, sc scenario) (*TableData, error) {
	t := &TableData{
		ID:     id,
		Title:  title,
		Header: append([]string{""}, workloadHeader()...),
	}
	thresholds := []float64{90, 95, 99}
	rows := make([][]string, len(thresholds))
	for i, thr := range thresholds {
		rows[i] = []string{fmt.Sprintf(">%.0f%%util", thr)}
	}
	for _, wkey := range WorkloadOrder {
		rep, err := s.Run(wkey, SlotsRuns[0])
		if err != nil {
			return nil, err
		}
		// Per-disk pooled samples: the paper's ratios count (disk, interval)
		// pairs above each threshold, which a 30-disk average would erase.
		util := sc.sel(rep).UtilPool
		for i, thr := range thresholds {
			rows[i] = append(rows[i], fmt.Sprintf("%.1f%%", util.FracAbove(thr)*100))
		}
	}
	t.Rows = rows
	return t, nil
}

// workloadHeader renders WorkloadOrder as table-header cells.
func workloadHeader() []string {
	out := make([]string, len(WorkloadOrder))
	for i, w := range WorkloadOrder {
		out[i] = w.String()
	}
	return out
}

// Figures lists the reproducible figure numbers.
func Figures() []int {
	return []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
}

// Tables lists the reproducible table numbers.
func Tables() []int { return []int{5, 6, 7} }
