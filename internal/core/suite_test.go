package core

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"iochar/internal/cluster"
	"iochar/internal/faults"
	"iochar/internal/hdfs"
	"iochar/internal/runcache"
	"iochar/internal/sim"
)

// tinyOpts is the smallest testbed that still exercises the full pipeline —
// executor tests below run many cells and care about scheduling, not shape.
var tinyOpts = Options{Scale: 262144, Slaves: 3, MapTaskTarget: 8}

// reportJSON canonicalizes a report for equality checks: byte-identical
// JSON means byte-identical figures, since rendering reads only these
// fields.
func reportJSON(t *testing.T, rep *RunReport) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// countingProgress tallies progress events by source, concurrency-safely.
type countingProgress struct {
	executed atomic.Int64
	disk     atomic.Int64
}

func (c *countingProgress) fn(ev ProgressEvent) {
	switch ev.Source {
	case SourceExecuted:
		c.executed.Add(1)
	case SourceDisk:
		c.disk.Add(1)
	}
}

// TestSuiteSingleflightDedup drives one cell from many goroutines at once:
// exactly one execution may happen, everyone shares its report. Run under
// -race this is also the concurrency-safety test for the Suite cache the
// old implementation lacked.
func TestSuiteSingleflightDedup(t *testing.T) {
	var prog countingProgress
	s := NewSuite(tinyOpts, WithParallelism(4), WithProgress(prog.fn))
	const callers = 8
	var wg sync.WaitGroup
	reps := make([]*RunReport, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = s.Run(KM, SlotsRuns[0])
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if reps[i] != reps[0] {
			t.Errorf("caller %d got a different report instance", i)
		}
	}
	if got := prog.executed.Load(); got != 1 {
		t.Errorf("cell executed %d times, want exactly 1 (singleflight)", got)
	}
	if s.CachedRuns() != 1 {
		t.Errorf("CachedRuns = %d", s.CachedRuns())
	}
}

// TestSuiteConcurrentDistinctCells exercises the executor's worker pool
// with more cells than workers, from concurrent callers — the -race test
// for a Suite shared across goroutines.
func TestSuiteConcurrentDistinctCells(t *testing.T) {
	s := NewSuite(tinyOpts, WithParallelism(2))
	cells, err := FigureCells(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prewarm(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if s.CachedRuns() != len(cells) {
		t.Errorf("CachedRuns = %d, want %d", s.CachedRuns(), len(cells))
	}
}

// TestParallelMatchesSequential pins the determinism contract at the report
// level: the same cell resolved under a parallel sweep is byte-identical to
// a sequential standalone execution.
func TestParallelMatchesSequential(t *testing.T) {
	par := NewSuite(tinyOpts, WithParallelism(4))
	cells := []Cell{
		{TS, SlotsRuns[0]}, {AGG, SlotsRuns[0]},
		{TS, MemoryRuns[1]}, {KM, SlotsRuns[1]},
	}
	if err := par.Prewarm(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		seq, err := RunOne(c.Workload, c.Factors, tinyOpts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Run(c.Workload, c.Factors)
		if err != nil {
			t.Fatal(err)
		}
		if reportJSON(t, got) != reportJSON(t, seq) {
			t.Errorf("%s: parallel report differs from sequential", c.Factors.cacheKey(c.Workload))
		}
	}
}

// TestDiskCacheRoundTrip: a second suite over the same cache directory must
// serve every cell from disk, byte-identical to the executed original.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var cold countingProgress
	a := NewSuite(tinyOpts, WithCacheDir(dir), WithProgress(cold.fn))
	repA, err := a.Run(TS, SlotsRuns[0])
	if err != nil {
		t.Fatal(err)
	}
	if cold.executed.Load() != 1 || cold.disk.Load() != 0 {
		t.Fatalf("cold run: executed=%d disk=%d", cold.executed.Load(), cold.disk.Load())
	}

	var warm countingProgress
	b := NewSuite(tinyOpts, WithCacheDir(dir), WithProgress(warm.fn))
	repB, err := b.Run(TS, SlotsRuns[0])
	if err != nil {
		t.Fatal(err)
	}
	if warm.executed.Load() != 0 || warm.disk.Load() != 1 {
		t.Errorf("warm run: executed=%d disk=%d, want pure disk hit",
			warm.executed.Load(), warm.disk.Load())
	}
	if reportJSON(t, repA) != reportJSON(t, repB) {
		t.Error("disk round trip changed the report")
	}
	// The typed fields must survive serialization, not just compare equal.
	if repB.Workload != TS || repB.HDFS.TotalReadBytes == 0 || repB.CPUUtil.Len() == 0 {
		t.Errorf("deserialized report lost data: %+v", repB.Workload)
	}
}

// TestDiskCacheCorruptionReExecutes is the end-to-end corruption story: a
// truncated entry is re-executed (never a panic, never a wrong figure) and
// the slot is rewritten valid.
func TestDiskCacheCorruptionReExecutes(t *testing.T) {
	dir := t.TempDir()
	a := NewSuite(tinyOpts, WithCacheDir(dir))
	repA, err := a.Run(AGG, SlotsRuns[0])
	if err != nil {
		t.Fatal(err)
	}
	// Truncate every entry in the cache directory.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache dir entries=%d err=%v", len(entries), err)
	}
	for _, e := range entries {
		p := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, b[:len(b)/3], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var prog countingProgress
	b := NewSuite(tinyOpts, WithCacheDir(dir), WithProgress(prog.fn))
	repB, err := b.Run(AGG, SlotsRuns[0])
	if err != nil {
		t.Fatal(err)
	}
	if prog.executed.Load() != 1 || prog.disk.Load() != 0 {
		t.Errorf("corrupt entry not re-executed: executed=%d disk=%d",
			prog.executed.Load(), prog.disk.Load())
	}
	if reportJSON(t, repA) != reportJSON(t, repB) {
		t.Error("re-executed report differs from the original")
	}
	// The slot must now be valid again: a third suite hits disk.
	var prog2 countingProgress
	c := NewSuite(tinyOpts, WithCacheDir(dir), WithProgress(prog2.fn))
	if _, err := c.Run(AGG, SlotsRuns[0]); err != nil {
		t.Fatal(err)
	}
	if prog2.disk.Load() != 1 {
		t.Error("corrupt entry was not rewritten after re-execution")
	}
}

// TestDiskCacheSchemaVersionMismatch: entries written by another schema
// version must be invisible, not deserialized.
func TestDiskCacheSchemaVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	a := NewSuite(tinyOpts, WithCacheDir(dir))
	if _, err := a.Run(KM, SlotsRuns[0]); err != nil {
		t.Fatal(err)
	}
	// Rewrite the entry under a stale version, as a pre-bump binary would
	// have left it (same key, older envelope version).
	staleStore, err := runcache.Open(dir, SchemaVersion-1)
	if err != nil {
		t.Fatal(err)
	}
	key, err := runcache.Key(keyMaterial(KM, SlotsRuns[0], NewSuite(tinyOpts).Opts))
	if err != nil {
		t.Fatal(err)
	}
	var rep RunReport
	cur, _ := runcache.Open(dir, SchemaVersion)
	if !cur.Get(key, &rep) {
		t.Fatal("entry missing under the computed key — key material drifted?")
	}
	if err := staleStore.Put(key, &rep); err != nil {
		t.Fatal(err)
	}
	var prog countingProgress
	b := NewSuite(tinyOpts, WithCacheDir(dir), WithProgress(prog.fn))
	if _, err := b.Run(KM, SlotsRuns[0]); err != nil {
		t.Fatal(err)
	}
	if prog.executed.Load() != 1 {
		t.Error("stale-version entry was served instead of re-executing")
	}
}

// TestFaultedDiskCacheRoundTrip: a faulted, audited run persists and reloads
// byte-identically — and lands in a different cache slot than the fault-free
// configuration, so a faulted report can never be served for (or poison) a
// healthy request.
func TestFaultedDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts
	var err error
	opts.Faults, err = faults.ParsePlan(killPlan)
	if err != nil {
		t.Fatal(err)
	}
	opts.Audit = true

	var cold countingProgress
	a := NewSuite(opts, WithCacheDir(dir), WithProgress(cold.fn))
	repA, err := a.Run(TS, SlotsRuns[0])
	if err != nil {
		t.Fatal(err)
	}
	if cold.executed.Load() != 1 || cold.disk.Load() != 0 {
		t.Fatalf("cold faulted run: executed=%d disk=%d", cold.executed.Load(), cold.disk.Load())
	}

	var warm countingProgress
	b := NewSuite(opts, WithCacheDir(dir), WithProgress(warm.fn))
	repB, err := b.Run(TS, SlotsRuns[0])
	if err != nil {
		t.Fatal(err)
	}
	if warm.executed.Load() != 0 || warm.disk.Load() != 1 {
		t.Errorf("warm faulted run: executed=%d disk=%d, want pure disk hit",
			warm.executed.Load(), warm.disk.Load())
	}
	if reportJSON(t, repA) != reportJSON(t, repB) {
		t.Error("disk round trip changed the faulted report")
	}
	// The fault-run fields must survive serialization.
	if repB.Audit == nil || !repB.Audit.Clean() || len(repB.Audit.OutputSums) == 0 {
		t.Errorf("deserialized audit lost data: %+v", repB.Audit)
	}
	if len(repB.FaultsInjected) == 0 || repB.Recovery.DeadDataNodes != 1 {
		t.Errorf("deserialized fault observability lost data: %+v", repB)
	}

	// Same cell, fault-free configuration: different content address.
	faultedKey, err := runcache.Key(keyMaterial(TS, SlotsRuns[0], a.Opts))
	if err != nil {
		t.Fatal(err)
	}
	cleanKey, err := runcache.Key(keyMaterial(TS, SlotsRuns[0], NewSuite(fastOpts).Opts))
	if err != nil {
		t.Fatal(err)
	}
	if faultedKey == cleanKey {
		t.Error("faulted run shares a cache slot with the fault-free configuration")
	}
}

// TestRestartRunDeterministicAcrossParallelism pins the determinism contract
// for the new fault kinds: cells under a restart+corruption plan (with
// integrity verification and audit on) resolve byte-identically whether the
// suite runs them sequentially or across a worker pool.
func TestRestartRunDeterministicAcrossParallelism(t *testing.T) {
	opts := fastOpts
	opts.Audit = true
	opts.Integrity = true
	var err error
	opts.Faults, err = faults.ParsePlan(
		"corrupt-block@250ms:node=slave-01;restart-datanode@300ms:node=slave-02,down=400ms")
	if err != nil {
		t.Fatal(err)
	}

	par := NewSuite(opts, WithParallelism(4))
	cells := []Cell{{TS, SlotsRuns[0]}, {AGG, SlotsRuns[0]}, {TS, MemoryRuns[1]}}
	if err := par.Prewarm(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	seq := NewSuite(opts) // parallelism 1
	for _, c := range cells {
		want, err := seq.Run(c.Workload, c.Factors)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Run(c.Workload, c.Factors)
		if err != nil {
			t.Fatal(err)
		}
		if reportJSON(t, got) != reportJSON(t, want) {
			t.Errorf("%s: restart-run report differs between parallelism 1 and 4",
				c.Factors.cacheKey(c.Workload))
		}
		if got.Recovery.BlockReports == 0 {
			t.Errorf("%s: no block report recorded — the restart never exercised rejoin",
				c.Factors.cacheKey(c.Workload))
		}
	}
}

// TestFaultedRestartNeverAliasesCleanCache: a restart+corruption run and the
// fault-free configuration of the same cell must occupy different content
// addresses — a cold faulted run executes, its warm repeat is a pure disk
// hit, and a clean suite over the same cache directory still executes rather
// than being served the faulted report (or vice versa).
func TestFaultedRestartNeverAliasesCleanCache(t *testing.T) {
	dir := t.TempDir()
	faulted := tinyOpts
	faulted.Audit = true
	faulted.Integrity = true
	faulted.ScrubRate = -1
	var err error
	faulted.Faults, err = faults.ParsePlan("restart-datanode@100ms:node=slave-01,down=100ms")
	if err != nil {
		t.Fatal(err)
	}

	var cold countingProgress
	a := NewSuite(faulted, WithCacheDir(dir), WithProgress(cold.fn))
	repFaulted, err := a.Run(TS, SlotsRuns[0])
	if err != nil {
		t.Fatal(err)
	}
	if cold.executed.Load() != 1 || cold.disk.Load() != 0 {
		t.Fatalf("cold faulted run: executed=%d disk=%d", cold.executed.Load(), cold.disk.Load())
	}

	var warm countingProgress
	b := NewSuite(faulted, WithCacheDir(dir), WithProgress(warm.fn))
	repWarm, err := b.Run(TS, SlotsRuns[0])
	if err != nil {
		t.Fatal(err)
	}
	if warm.executed.Load() != 0 || warm.disk.Load() != 1 {
		t.Errorf("warm faulted run: executed=%d disk=%d, want pure disk hit",
			warm.executed.Load(), warm.disk.Load())
	}
	if reportJSON(t, repWarm) != reportJSON(t, repFaulted) {
		t.Error("disk round trip changed the faulted-restart report")
	}

	// A clean suite over the same directory must NOT see the faulted entry.
	var clean countingProgress
	c := NewSuite(tinyOpts, WithCacheDir(dir), WithProgress(clean.fn))
	repClean, err := c.Run(TS, SlotsRuns[0])
	if err != nil {
		t.Fatal(err)
	}
	if clean.disk.Load() != 0 || clean.executed.Load() != 1 {
		t.Errorf("clean run over faulted cache: executed=%d disk=%d, want a fresh execution",
			clean.executed.Load(), clean.disk.Load())
	}
	if repClean.Recovery.BlockReports != 0 || repClean.FaultsInjected != nil {
		t.Errorf("clean run carries faulted state — cache aliasing: %+v", repClean.Recovery)
	}

	// And the faulted cell must still be servable from disk afterwards.
	var warm2 countingProgress
	d := NewSuite(faulted, WithCacheDir(dir), WithProgress(warm2.fn))
	if _, err := d.Run(TS, SlotsRuns[0]); err != nil {
		t.Fatal(err)
	}
	if warm2.disk.Load() != 1 {
		t.Error("clean run evicted or shadowed the faulted cache entry")
	}
}

// TestCacheKeySeparatesConfigurations: any change to the run configuration
// must land in a different slot.
func TestCacheKeySeparatesConfigurations(t *testing.T) {
	base := NewSuite(tinyOpts).Opts
	baseKey, err := runcache.Key(keyMaterial(TS, SlotsRuns[0], base))
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]Options{}
	o := base
	o.Seed = 2
	variants["seed"] = o
	o = base
	o.Scale = base.Scale * 2
	variants["scale"] = o
	o = base
	o.InputFraction = 0.5
	variants["input-fraction"] = o
	o = base
	o.SharedDataDisks = true
	variants["shared-disks"] = o
	o = base
	o.FaultSlowDisk = 4
	variants["slow-disk"] = o
	o = base
	if o.Faults, err = faults.ParsePlan(killPlan); err != nil {
		t.Fatal(err)
	}
	variants["fault-plan"] = o
	o = base
	o.Faults.Seed = base.Faults.Seed + 1
	variants["fault-seed"] = o
	o = base
	o.Audit = true
	variants["audit"] = o
	o = base
	o.Integrity = true
	variants["integrity"] = o
	o = base
	o.ScrubRate = 4 << 20
	variants["scrub-rate"] = o
	for name, opts := range variants {
		k, err := runcache.Key(keyMaterial(TS, SlotsRuns[0], opts))
		if err != nil {
			t.Fatal(err)
		}
		if k == baseKey {
			t.Errorf("%s change did not change the cache key", name)
		}
	}
	// Different workload and factors also separate.
	if k, _ := runcache.Key(keyMaterial(AGG, SlotsRuns[0], base)); k == baseKey {
		t.Error("workload not in the key")
	}
	if k, _ := runcache.Key(keyMaterial(TS, SlotsRuns[1], base)); k == baseKey {
		t.Error("factors not in the key")
	}
}

// TestHookedRunsBypassDiskCache: runs with live hooks must not be persisted
// or served from disk — their effects are not in the serialized report.
func TestHookedRunsBypassDiskCache(t *testing.T) {
	dir := t.TempDir()
	opts := tinyOpts
	inspected := 0
	opts.Inspect = func(p *sim.Proc, fs *hdfs.FS, cl *cluster.Cluster) { inspected++ }
	var prog countingProgress
	s := NewSuite(opts, WithCacheDir(dir), WithProgress(prog.fn))
	if _, err := s.Run(TS, SlotsRuns[0]); err != nil {
		t.Fatal(err)
	}
	if inspected != 1 {
		t.Fatalf("Inspect ran %d times", inspected)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Errorf("hooked run persisted %d cache entries, want none", len(entries))
	}
	// A second suite re-executes (and re-runs the hook) rather than serving
	// a report that silently skipped it.
	var prog2 countingProgress
	s2 := NewSuite(opts, WithCacheDir(dir), WithProgress(prog2.fn))
	if _, err := s2.Run(TS, SlotsRuns[0]); err != nil {
		t.Fatal(err)
	}
	if prog2.executed.Load() != 1 || prog2.disk.Load() != 0 {
		t.Errorf("hooked run served from cache: executed=%d disk=%d",
			prog2.executed.Load(), prog2.disk.Load())
	}
}

func TestSuiteRunContextCancelled(t *testing.T) {
	s := NewSuite(tinyOpts)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx, TS, SlotsRuns[0]); err == nil {
		t.Error("want cancellation error")
	}
	if s.CachedRuns() != 0 {
		t.Error("cancelled cell must stay unresolved")
	}
	// The cell is retryable after cancellation.
	if _, err := s.Run(TS, SlotsRuns[0]); err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
}

func TestMatrixCellsDedupAndCoverage(t *testing.T) {
	cells := MatrixCells()
	// 4 workloads × 5 distinct factor settings (two baselines are shared
	// between families).
	if len(cells) != 20 {
		t.Fatalf("matrix has %d cells, want 20", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		key := c.Factors.cacheKey(c.Workload)
		if seen[key] {
			t.Errorf("duplicate cell %s", key)
		}
		seen[key] = true
	}
	// Every cell any figure needs is in the matrix.
	for n := 1; n <= 12; n++ {
		fc, err := FigureCells(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range fc {
			if !seen[c.Factors.cacheKey(c.Workload)] {
				t.Errorf("figure %d cell %s missing from matrix", n, c.Factors.cacheKey(c.Workload))
			}
		}
	}
	for _, n := range []int{5, 6, 7} {
		tc, err := TableCells(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range tc {
			if !seen[c.Factors.cacheKey(c.Workload)] {
				t.Errorf("table %d cell %s missing from matrix", n, c.Factors.cacheKey(c.Workload))
			}
		}
	}
}

func TestFigureTableCellsUnknown(t *testing.T) {
	if _, err := FigureCells(13); err == nil {
		t.Error("figure 13 should error")
	}
	if _, err := TableCells(4); err == nil {
		t.Error("table 4 should error")
	}
}

// TestBadCacheDirFailsLoudly: an unusable cache directory is a
// configuration error, not a silent fall-through to re-execution.
func TestBadCacheDirFailsLoudly(t *testing.T) {
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewSuite(tinyOpts, WithCacheDir(filepath.Join(f, "cache")))
	if _, err := s.Run(TS, SlotsRuns[0]); err == nil {
		t.Error("want error for cache dir under a regular file")
	}
}
