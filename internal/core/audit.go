// Post-run invariant auditing — the oracles the chaos harness checks after
// a faulted run drains. The audit cross-checks every durable layer of the
// testbed: HDFS must be fully replicated with no orphaned replicas, the
// local filesystems must not have leaked extents, the page caches must hold
// no dirty pages after the end-of-run sync, and every job output must be
// readable with a canonical content checksum for comparison against a
// fault-free golden run. On a healthy run the audit is trivially clean; a
// violation after recovery has quiesced means a fault-handling path lost,
// leaked, or corrupted data.
package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"

	"iochar/internal/cluster"
	"iochar/internal/hdfs"
	"iochar/internal/localfs"
	"iochar/internal/mapred"
	"iochar/internal/sim"
)

// auditPrefix is the HDFS namespace scanned for job outputs: every workload
// stages its data under /bench/<KEY>/, with inputs in .../in and output
// directories whose names start with "out" (out, out-iterN, out-stateN).
const auditPrefix = "/bench/"

// AuditReport is the outcome of the post-run invariant audit, produced when
// Options.Audit is set. It is JSON-serializable so fault-run results can be
// cached and shrunk chaos schedules can pin expected values.
type AuditReport struct {
	// HDFSBlocks is the number of live blocks the replication audit scanned.
	HDFSBlocks int `json:"hdfs_blocks"`
	// HDFSViolations lists replication-audit failures: blocks below their
	// achievable replication target, blocks with zero live replicas, and
	// orphaned replica files (see hdfs.ReplicationAudit).
	HDFSViolations []string `json:"hdfs_violations,omitempty"`
	// LeakedSectors is the total allocator slack across every data volume:
	// sectors neither free nor owned by a live file. Nonzero means a
	// recovery path dropped a file without releasing its extents.
	LeakedSectors int64 `json:"leaked_sectors"`
	// DirtyPages counts dirty pages remaining after the end-of-run SyncAll
	// across the volumes that sync covers (live nodes, unfailed volumes).
	// Nonzero means writeback was lost or the sync barrier has a hole.
	DirtyPages int `json:"dirty_pages"`
	// OutputSums maps each job-output file to a canonical content checksum:
	// SHA-256 over its key/value pairs in sorted order, so two runs that
	// produced the same multiset of pairs hash identically even if faults
	// reordered reduce-side value arrival.
	OutputSums map[string]string `json:"output_sums"`
	// Unreadable lists output files whose bytes could not be read back for
	// reasons other than structured data loss — a data-loss oracle failure
	// even when the NameNode's metadata looks consistent.
	Unreadable []string `json:"unreadable,omitempty"`
	// DataLoss holds the structured form of read-back failures that named
	// their lost blocks (hdfs.DataLossError): which path, which block IDs,
	// and the replication target the file asked for. Want==1 losses after a
	// crash are physics, not a bug — the chaos harness classifies them as
	// expected for replication-factor-1 outputs.
	DataLoss []DataLossRecord `json:"data_loss,omitempty"`
	// BadChunks lists stored replicas whose bytes fail the end-to-end
	// checksums at audit time (hdfs.AuditIntegrity). Empty unless integrity
	// is enabled; nonzero means corruption survived read-repair and scrub.
	BadChunks []string `json:"bad_chunks,omitempty"`
}

// DataLossRecord is one output file that could not be served because every
// replica of one or more blocks is unreachable.
type DataLossRecord struct {
	Path   string  `json:"path"`
	Blocks []int64 `json:"blocks"`
	Want   int     `json:"want"` // the file's replication target
}

func (d DataLossRecord) String() string {
	return fmt.Sprintf("%s: blocks %v unreachable (replication target %d)", d.Path, d.Blocks, d.Want)
}

// Violations renders every invariant failure in the report as a
// human-readable finding. Output checksums are not judged here — they only
// mean something relative to a golden run, which is the chaos harness's job.
func (a *AuditReport) Violations() []string {
	var v []string
	for _, h := range a.HDFSViolations {
		v = append(v, "hdfs: "+h)
	}
	if a.LeakedSectors != 0 {
		v = append(v, fmt.Sprintf("localfs: %d sectors leaked (allocated but owned by no file)", a.LeakedSectors))
	}
	if a.DirtyPages != 0 {
		v = append(v, fmt.Sprintf("pagecache: %d dirty pages after final sync", a.DirtyPages))
	}
	for _, u := range a.Unreadable {
		v = append(v, "output unreadable: "+u)
	}
	for _, d := range a.DataLoss {
		v = append(v, "data loss: "+d.String())
	}
	for _, b := range a.BadChunks {
		v = append(v, "bad chunks: "+b)
	}
	return v
}

// Clean reports whether the audit found no invariant violations.
func (a *AuditReport) Clean() bool { return len(a.Violations()) == 0 }

// auditRun computes the report in simulation context, after monitoring has
// stopped: the invariant checks are pure, and the output read-back only
// spends virtual time outside the measured window.
func auditRun(p *sim.Proc, fs *hdfs.FS, cl *cluster.Cluster) *AuditReport {
	a := &AuditReport{OutputSums: make(map[string]string)}

	ra := fs.AuditReplication()
	a.HDFSBlocks = ra.Blocks
	for _, s := range ra.LostBlocks {
		a.HDFSViolations = append(a.HDFSViolations, "lost "+s)
	}
	for _, s := range ra.UnderReplicated {
		a.HDFSViolations = append(a.HDFSViolations, "under-replicated "+s)
	}
	for _, s := range ra.Orphans {
		a.HDFSViolations = append(a.HDFSViolations, "orphan "+s)
	}

	// Allocator accounting holds on every volume — failed or not, dead node
	// or not — because Fail() freezes a volume without disturbing its file
	// table. Volumes are deduplicated by identity (SharedDataDisks aliases
	// the role lists). Dirty pages are only an invariant where SyncAll
	// reaches: a dead node's or failed volume's cache legitimately holds
	// unwritten data, exactly as powered-off hardware would.
	seen := make(map[*localfs.FS]bool)
	for _, s := range cl.Slaves {
		vols := append(append([]*localfs.FS{}, s.HDFSVols...), s.MRVols...)
		for _, v := range vols {
			if seen[v] {
				continue
			}
			seen[v] = true
			a.LeakedSectors += v.LeakedExtents()
			if s.Alive() && !v.Failed() {
				a.DirtyPages += v.Cache().DirtyPages()
			}
		}
	}

	// The master's metadata volumes (present only under master recovery) are
	// held to the same standard: journal rolls must not leak extents, and
	// MasterFlush+SyncAll must have left nothing dirty.
	for _, v := range cl.Master.MetaVols {
		a.LeakedSectors += v.LeakedExtents()
		a.DirtyPages += v.Cache().DirtyPages()
	}

	a.BadChunks = fs.AuditIntegrity()

	for _, path := range fs.List(auditPrefix) {
		if !isOutputPath(path) {
			continue
		}
		r, err := fs.Open(path, cl.Master.Name)
		if err != nil {
			a.noteReadFailure(path, err)
			continue
		}
		data, err := r.ReadAt(p, 0, r.Size())
		if err != nil {
			a.noteReadFailure(path, err)
			continue
		}
		a.OutputSums[path] = canonicalKVSum(data)
	}
	return a
}

// noteReadFailure files an output read-back failure under DataLoss when the
// error names its lost blocks, and under Unreadable otherwise.
func (a *AuditReport) noteReadFailure(path string, err error) {
	var dl *hdfs.DataLossError
	if errors.As(err, &dl) {
		a.DataLoss = append(a.DataLoss, DataLossRecord{Path: path, Blocks: dl.Blocks, Want: dl.Want})
		return
	}
	a.Unreadable = append(a.Unreadable, fmt.Sprintf("%s: %v", path, err))
}

// isOutputPath reports whether an HDFS path is a job-output file: under the
// bench namespace, inside a directory whose name starts with "out" (the
// final output plus any per-iteration outputs a workload keeps).
func isOutputPath(path string) bool {
	rest := strings.TrimPrefix(path, auditPrefix)
	if rest == path {
		return false
	}
	_, rest, ok := strings.Cut(rest, "/")
	if !ok {
		return false
	}
	dir, _, ok := strings.Cut(rest, "/")
	return ok && strings.HasPrefix(dir, "out")
}

// canonicalKVSum hashes a reduce-output KV stream as a sorted multiset of
// pairs. Reduce outputs are key-sorted already, but values of one key can
// legitimately arrive (and be emitted) in a different order under faults;
// sorting by (key, value) makes the checksum order-insensitive while still
// pinning every byte of every pair.
func canonicalKVSum(data []byte) string {
	type pair struct{ k, v []byte }
	var pairs []pair
	for len(data) > 0 {
		k, v, rest := mapred.NextKV(data)
		if len(rest) >= len(data) {
			break // malformed tail; hash what framed cleanly
		}
		pairs = append(pairs, pair{k, v})
		data = rest
	}
	sort.Slice(pairs, func(i, j int) bool {
		if c := bytes.Compare(pairs[i].k, pairs[j].k); c != 0 {
			return c < 0
		}
		return bytes.Compare(pairs[i].v, pairs[j].v) < 0
	})
	h := sha256.New()
	var n [8]byte
	for _, pr := range pairs {
		binary.LittleEndian.PutUint64(n[:], uint64(len(pr.k)))
		h.Write(n[:])
		h.Write(pr.k)
		binary.LittleEndian.PutUint64(n[:], uint64(len(pr.v)))
		h.Write(n[:])
		h.Write(pr.v)
	}
	return hex.EncodeToString(h.Sum(nil))
}
