package core

import (
	"testing"

	"iochar/internal/faults"
)

// rackOpts is the two-rack testbed the network-fault tests run on — the
// same shape as the checked-in chaos regression schedules.
var rackOpts = Options{
	Scale:         262144,
	Slaves:        5,
	MapTaskTarget: 8,
	Seed:          1,
	Racks:         2,
}

// TestSlowLinkShuffleRetriesWithoutBlacklist: a degraded uplink plus a
// lossy NIC during the shuffle must surface as net-fetch stalls that are
// waited out with backoff — never as tracker blacklisting (the tracker is
// healthy; the path is not) and never as abandoned fetches.
func TestSlowLinkShuffleRetriesWithoutBlacklist(t *testing.T) {
	plan, err := faults.ParsePlan("slow-link@20ms:rack=2,factor=6;drop-link@30ms:node=slave-01,until=80ms,prob=0.9")
	if err != nil {
		t.Fatal(err)
	}
	plan.Seed = 202
	opts := rackOpts
	opts.Faults = plan
	rep, err := RunOne(KM, Factors{Slots: Slots1x8, MemoryGB: 32}, opts)
	if err != nil {
		t.Fatal(err)
	}
	var stalls, blacklisted, failed, retries int64
	for _, j := range rep.Jobs {
		stalls += j.Counters.NetFetchStalls
		blacklisted += j.Counters.BlacklistedTrackers
		failed += j.Counters.FailedFetches
		retries += j.Counters.FetchRetries
	}
	if stalls == 0 {
		t.Error("no NetFetchStalls: the lossy link never perturbed the shuffle")
	}
	if retries == 0 {
		t.Error("no FetchRetries recorded alongside the net stalls")
	}
	if blacklisted != 0 {
		t.Errorf("BlacklistedTrackers = %d; transient network faults must not blacklist healthy trackers", blacklisted)
	}
	if failed != 0 {
		t.Errorf("FailedFetches = %d; stalls within the retry budget must not abandon outputs", failed)
	}
}

// TestFlatTopologyByteIdentical pins the zero-overhead contract of the
// rack work: an explicit Racks=1 (and 0, the unset default) is the flat
// network, and the whole report — counters, iostat, and the rendered
// figures behind them — is byte-identical to a run that never mentions
// racks. Combined with TestHealthyPathMatchesSeedGolden this anchors the
// healthy -all output to the pre-rack seed build.
func TestFlatTopologyByteIdentical(t *testing.T) {
	f := Factors{Slots: Slots1x8, MemoryGB: 16, Compress: true}
	base, err := RunOne(TS, f, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	explicit := fastOpts
	explicit.Racks = 1
	rep, err := RunOne(TS, f, explicit)
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, rep) != reportJSON(t, base) {
		t.Error("explicit Racks=1 report differs from the default flat network")
	}
	if rep.Network == nil || rep.Network.Racks != 1 || len(rep.Network.Uplinks) != 0 {
		t.Errorf("flat network stats malformed: %+v", rep.Network)
	}
	if rep.Network.FailedTransfers != 0 || rep.Network.DroppedChunks != 0 {
		t.Errorf("healthy flat run recorded network faults: %+v", rep.Network)
	}
}

// TestRackTopologyDeterminism pins the cross-topology determinism
// contract: the same two-rack cell is byte-identical whether it runs
// standalone or under a parallel sweep.
func TestRackTopologyDeterminism(t *testing.T) {
	par := NewSuite(rackOpts, WithParallelism(4))
	cells := []Cell{{TS, SlotsRuns[0]}, {KM, SlotsRuns[0]}, {AGG, SlotsRuns[0]}}
	for _, c := range cells {
		seq, err := RunOne(c.Workload, c.Factors, rackOpts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Run(c.Workload, c.Factors)
		if err != nil {
			t.Fatal(err)
		}
		if reportJSON(t, got) != reportJSON(t, seq) {
			t.Errorf("%s: racks=2 parallel report differs from sequential", c.Factors.cacheKey(c.Workload))
		}
		if got.Network == nil || got.Network.Racks != 2 {
			t.Errorf("%s: report Network group missing or wrong rack count: %+v", c.Factors.cacheKey(c.Workload), got.Network)
		}
	}
}
