package core

import (
	"encoding/json"
	"testing"
)

func TestParseWorkload(t *testing.T) {
	cases := map[string]Workload{
		"TS": TS, "ts": TS, "terasort": TS, " TeraSort ": TS,
		"AGG": AGG, "aggregation": AGG,
		"KM": KM, "kmeans": KM, "k-means": KM,
		"PR": PR, "pagerank": PR,
		"JOIN": Join, "join": Join,
	}
	for in, want := range cases {
		got, err := ParseWorkload(in)
		if err != nil || got != want {
			t.Errorf("ParseWorkload(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "XX", "terasort2", "all"} {
		if _, err := ParseWorkload(bad); err == nil {
			t.Errorf("ParseWorkload(%q) should fail", bad)
		}
	}
}

func TestWorkloadStringRoundTrip(t *testing.T) {
	for _, w := range []Workload{TS, AGG, KM, PR, Join} {
		back, err := ParseWorkload(w.String())
		if err != nil || back != w {
			t.Errorf("round trip %v -> %q -> %v, %v", w, w.String(), back, err)
		}
		if !w.Valid() {
			t.Errorf("%v not Valid", w)
		}
	}
	if Workload(0).Valid() || Workload(99).Valid() {
		t.Error("out-of-enum values must be invalid")
	}
	if Workload(99).String() != "invalid" {
		t.Errorf("invalid String = %q", Workload(99).String())
	}
}

func TestWorkloadJSONEncoding(t *testing.T) {
	b, err := json.Marshal(TS)
	if err != nil || string(b) != `"TS"` {
		t.Fatalf("Marshal(TS) = %s, %v", b, err)
	}
	var w Workload
	if err := json.Unmarshal([]byte(`"agg"`), &w); err != nil || w != AGG {
		t.Errorf("Unmarshal = %v, %v", w, err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &w); err == nil {
		t.Error("bogus name must not decode")
	}
	if _, err := json.Marshal(Workload(99)); err == nil {
		t.Error("invalid value must not encode")
	}
}

func TestPaperWorkloadsMatchesOrder(t *testing.T) {
	ws := PaperWorkloads()
	if len(ws) != 4 || ws[0] != AGG || ws[1] != TS || ws[2] != KM || ws[3] != PR {
		t.Errorf("PaperWorkloads() = %v", ws)
	}
	// Defensive copy: mutating the return must not corrupt WorkloadOrder.
	ws[0] = PR
	if WorkloadOrder[0] != AGG {
		t.Error("PaperWorkloads aliases WorkloadOrder")
	}
}
