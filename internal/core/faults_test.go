package core

import (
	"crypto/sha256"
	"errors"
	"reflect"
	"testing"
	"time"

	"iochar/internal/cluster"
	"iochar/internal/faults"
	"iochar/internal/hdfs"
	"iochar/internal/mapred"
	"iochar/internal/sim"
)

// goldenRun is the set of counters frozen from the seed build (captured
// before any fault-tolerance code existed). The healthy path must keep
// producing these exact values: any drift means the off path is no longer
// zero-overhead.
type goldenRun struct {
	wall                  time.Duration
	hdfsR, hdfsW          uint64
	mrR, mrW              uint64
	mapIn, mapOut         int64
	spills                int64
	shuffle, redOut       int64
	localMaps, remoteMaps int
	speculative           int64
}

var seedGolden = map[Workload]goldenRun{
	TS: {
		wall: 1098495440, hdfsR: 34062336, hdfsW: 34283520,
		mrR: 33792000, mrW: 41414656,
		mapIn: 335540, mapOut: 33554000, spills: 100,
		shuffle: 15228370, redOut: 33889540,
		localMaps: 49, remoteMaps: 1, speculative: 0,
	},
	AGG: {
		wall: 449967576, hdfsR: 17137664, hdfsW: 122880,
		mrR: 696320, mrW: 0,
		mapIn: 447993, mapOut: 4601883, spills: 46,
		shuffle: 164188, redOut: 14722,
		localMaps: 25, remoteMaps: 0, speculative: 0,
	},
}

// TestHealthyPathMatchesSeedGolden is the zero-overhead regression test of
// the fault work: with no fault plan configured, every counter and iostat
// total is byte-identical to the pre-fault-tolerance seed build.
func TestHealthyPathMatchesSeedGolden(t *testing.T) {
	for wk, want := range seedGolden {
		rep, err := RunOne(wk, Factors{Slots: Slots1x8, MemoryGB: 16, Compress: true}, fastOpts)
		if err != nil {
			t.Fatalf("%s: %v", wk, err)
		}
		c := rep.Jobs[0].Counters
		got := goldenRun{
			wall: rep.Wall, hdfsR: rep.HDFS.TotalReadBytes, hdfsW: rep.HDFS.TotalWrittenBytes,
			mrR: rep.MR.TotalReadBytes, mrW: rep.MR.TotalWrittenBytes,
			mapIn: c.MapInputRecords, mapOut: c.MapOutputBytes, spills: c.Spills,
			shuffle: c.ShuffleBytes, redOut: c.ReduceOutputBytes,
			localMaps: c.LocalMaps, remoteMaps: c.RemoteMaps, speculative: c.SpeculativeAttempts,
		}
		if got != want {
			t.Errorf("%s drifted from the seed golden:\n got  %+v\n want %+v", wk, got, want)
		}
		if rep.Recovery != (hdfs.RecoveryStats{}) || rep.FaultsInjected != nil || rep.FaultGroups != nil {
			t.Errorf("%s: healthy run carries fault-run state: %+v", wk, rep)
		}
	}
}

// tsFaultFactors is the cell the DataNode-loss experiment runs.
var tsFaultFactors = Factors{Slots: Slots1x8, MemoryGB: 16, Compress: true}

// killPlan kills one whole node (TaskTracker + DataNode) mid-TeraSort. At
// fastOpts scale the healthy run lasts ~1.1 virtual seconds with maps
// finishing throughout the first ~0.8 s, so 300 ms is mid-map-phase: the
// victim holds completed map outputs (forcing re-execution) and block
// replicas (forcing re-replication).
const killPlan = "kill-node@300ms:node=slave-02"

type tsOutcome struct {
	rep      *RunReport
	sums     map[string][32]byte // output part file -> content hash
	inLocs   map[string][]int    // input file -> live replica count per block
	underRep int
}

func runTS(t *testing.T, planStr string) *tsOutcome {
	t.Helper()
	opts := fastOpts
	opts.Audit = true
	if planStr != "" {
		plan, err := faults.ParsePlan(planStr)
		if err != nil {
			t.Fatal(err)
		}
		opts.Faults = plan
	}
	out := &tsOutcome{sums: map[string][32]byte{}, inLocs: map[string][]int{}}
	opts.Inspect = func(p *sim.Proc, fs *hdfs.FS, cl *cluster.Cluster) {
		for _, path := range fs.List("/bench/TS/out/") {
			rd, err := fs.Open(path, cl.Master.Name)
			if err != nil {
				t.Errorf("open %s: %v", path, err)
				return
			}
			data, err := rd.ReadAt(p, 0, rd.Size())
			if err != nil {
				t.Errorf("read %s: %v", path, err)
				return
			}
			out.sums[path] = sha256.Sum256(data)
		}
		for _, path := range fs.List("/bench/TS/in/") {
			locs, err := fs.BlockLocations(path)
			if err != nil {
				t.Errorf("locations %s: %v", path, err)
				return
			}
			var counts []int
			for _, l := range locs {
				counts = append(counts, len(l))
			}
			out.inLocs[path] = counts
		}
		out.underRep = fs.UnderReplicated()
	}
	rep, err := RunOne(TS, tsFaultFactors, opts)
	if err != nil {
		t.Fatalf("TS with plan %q: %v", planStr, err)
	}
	out.rep = rep
	return out
}

// TestDataNodeLossMidTeraSort is the tentpole acceptance scenario: one node
// dies mid-job, yet the job completes with byte-identical output, the lost
// map work is re-executed, and HDFS restores every input block to its full
// replication factor.
func TestDataNodeLossMidTeraSort(t *testing.T) {
	healthy := runTS(t, "")
	faulty := runTS(t, killPlan)

	if len(faulty.sums) == 0 || !reflect.DeepEqual(healthy.sums, faulty.sums) {
		t.Errorf("output diverged under faults: healthy %d part(s), faulty %d part(s)",
			len(healthy.sums), len(faulty.sums))
	}
	rec := faulty.rep.Recovery
	if rec.DeadDataNodes != 1 {
		t.Errorf("DeadDataNodes = %d, want 1", rec.DeadDataNodes)
	}
	if rec.ReReplicatedBlocks == 0 || rec.ReReplicatedBytes == 0 {
		t.Errorf("no re-replication happened: %+v", rec)
	}
	var reexec int64
	for _, j := range faulty.rep.Jobs {
		reexec += j.ReExecutedMaps
	}
	if reexec == 0 {
		t.Errorf("no map tasks were re-executed; kill fired too late or victim held no outputs")
	}
	if len(faulty.rep.FaultsInjected) != 1 {
		t.Errorf("FaultsInjected = %v, want exactly the kill event", faulty.rep.FaultsInjected)
	}
	if faulty.underRep != 0 {
		t.Errorf("%d block(s) still under-replicated after WaitRecovered", faulty.underRep)
	}
	for path, counts := range faulty.inLocs {
		for i, n := range counts {
			if n != 3 {
				t.Errorf("%s block %d has %d live replica(s), want 3", path, i, n)
			}
		}
	}
	// Victim/survivor iostat splits exist and the victim group flatlines
	// after the kill while survivors absorb the recovery writes.
	for _, name := range []string{GroupHDFSVictims, GroupMRVictims, GroupHDFSSurvivors, GroupMRSurvivors} {
		if faulty.rep.FaultGroups[name] == nil {
			t.Errorf("missing fault iostat group %q", name)
		}
	}
	if hv, sv := faulty.rep.FaultGroups[GroupHDFSVictims], faulty.rep.FaultGroups[GroupHDFSSurvivors]; hv != nil && sv != nil {
		if sv.TotalWrittenBytes <= hv.TotalWrittenBytes {
			t.Errorf("survivors wrote %d <= victim's %d; recovery traffic missing",
				sv.TotalWrittenBytes, hv.TotalWrittenBytes)
		}
	}
}

// TestFaultRunDeterministic: two runs with the same fault plan and seed are
// event-for-event identical — same counters, same wall time, same recovery
// work.
func TestFaultRunDeterministic(t *testing.T) {
	a := runTS(t, killPlan)
	b := runTS(t, killPlan)
	if a.rep.Wall != b.rep.Wall {
		t.Errorf("wall diverged: %v vs %v", a.rep.Wall, b.rep.Wall)
	}
	if !reflect.DeepEqual(a.rep.Jobs[0].Counters, b.rep.Jobs[0].Counters) {
		t.Errorf("counters diverged:\n %+v\n %+v", a.rep.Jobs[0].Counters, b.rep.Jobs[0].Counters)
	}
	if a.rep.Recovery != b.rep.Recovery {
		t.Errorf("recovery stats diverged:\n %+v\n %+v", a.rep.Recovery, b.rep.Recovery)
	}
	if !reflect.DeepEqual(a.rep.FaultsInjected, b.rep.FaultsInjected) {
		t.Errorf("fault logs diverged: %v vs %v", a.rep.FaultsInjected, b.rep.FaultsInjected)
	}
	if !reflect.DeepEqual(a.sums, b.sums) {
		t.Errorf("outputs diverged between identical fault runs")
	}
}

// TestShuffleDropRetries: a transient fetch-drop window mid-shuffle makes
// reducers retry with backoff, and the job still completes correctly.
func TestShuffleDropRetries(t *testing.T) {
	healthy := runTS(t, "")
	faulty := runTS(t, "drop-shuffle@400ms:until=800ms,prob=0.5")
	if !reflect.DeepEqual(healthy.sums, faulty.sums) {
		t.Errorf("output diverged under shuffle drops")
	}
	var retries int64
	for _, j := range faulty.rep.Jobs {
		retries += j.FetchRetries
	}
	if retries == 0 {
		t.Errorf("no fetch retries recorded under a 50%% drop window")
	}
}

// restartPlan bounces one node's DataNode mid-TeraSort: the crash at 300 ms
// is mid-map-phase, the 400 ms outage spans the (scaled) dead timeout, so
// detection fires, re-replication starts, and the node rejoins with a block
// report that must reconcile against partially repaired state.
const restartPlan = "restart-datanode@300ms:node=slave-02,down=400ms"

// TestRestartDataNodeMidTeraSort is the rejoin acceptance scenario: a
// DataNode bounce mid-job leaves output byte-identical to the healthy run,
// the rejoined node shows up in the recovering iostat group, and the
// post-run replication audit is clean.
func TestRestartDataNodeMidTeraSort(t *testing.T) {
	healthy := runTS(t, "")
	faulty := runTS(t, restartPlan)

	if len(faulty.sums) == 0 || !reflect.DeepEqual(healthy.sums, faulty.sums) {
		t.Errorf("output diverged under a DataNode restart: healthy %d part(s), faulty %d part(s)",
			len(healthy.sums), len(faulty.sums))
	}
	rec := faulty.rep.Recovery
	if rec.BlockReports == 0 {
		t.Error("rejoin sent no block report")
	}
	if rec.DeadDataNodes != 1 {
		t.Errorf("DeadDataNodes = %d, want 1 (the bounce must cross the dead timeout)", rec.DeadDataNodes)
	}
	for _, name := range []string{GroupHDFSRecovering, GroupMRRecovering, GroupHDFSSurvivors, GroupMRSurvivors} {
		if faulty.rep.FaultGroups[name] == nil {
			t.Errorf("missing fault iostat group %q", name)
		}
	}
	if faulty.rep.FaultGroups[GroupHDFSVictims] != nil {
		t.Error("restart-only plan registered a victims group")
	}
	if faulty.underRep != 0 {
		t.Errorf("%d block(s) under-replicated after the rejoin settled", faulty.underRep)
	}
	if faulty.rep.Audit == nil || !faulty.rep.Audit.Clean() {
		t.Errorf("audit not clean after restart: %v", faulty.rep.Audit.Violations())
	}
}

// TestRejoinDuringReReplication overlaps a permanent DataNode loss with a
// bounce of a second node, so the second node's block report is reconciled
// while re-replication streams from the first loss are still in flight.
// Under `go test -race` (the CI configuration) this doubles as the data-race
// test for block-report reconciliation against live recovery state.
func TestRejoinDuringReReplication(t *testing.T) {
	healthy := runTS(t, "")
	faulty := runTS(t, "kill-datanode@300ms:node=slave-01;restart-datanode@320ms:node=slave-02,down=120ms")

	if !reflect.DeepEqual(healthy.sums, faulty.sums) {
		t.Error("output diverged when a rejoin raced re-replication")
	}
	rec := faulty.rep.Recovery
	if rec.BlockReports == 0 {
		t.Error("no block report from the bounced node")
	}
	if rec.ReReplicatedBlocks == 0 {
		t.Error("the permanent loss triggered no re-replication")
	}
	if faulty.underRep != 0 {
		t.Errorf("%d block(s) under-replicated after recovery", faulty.underRep)
	}
	if faulty.rep.Audit == nil || !faulty.rep.Audit.Clean() {
		t.Errorf("audit not clean: %v", faulty.rep.Audit.Violations())
	}
}

// TestRestartNodeZombieTasks bounces a whole node (TaskTracker included)
// with an outage short enough that the machine is back up while task
// attempts started under its previous incarnation are still mid-flight.
// Regression: Alive() alone cannot see a crash-and-restart, so a "zombie"
// attempt used to survive the bounce and merge its crash-truncated spill
// files, panicking in decompression. The incarnation counter must kill the
// attempt instead, and the rerun must leave output byte-identical.
func TestRestartNodeZombieTasks(t *testing.T) {
	healthy := runTS(t, "")
	faulty := runTS(t, "restart-node@300ms:node=slave-02,down=50ms")

	if len(faulty.sums) == 0 || !reflect.DeepEqual(healthy.sums, faulty.sums) {
		t.Errorf("output diverged after a fast node bounce: healthy %d part(s), faulty %d part(s)",
			len(healthy.sums), len(faulty.sums))
	}
	if faulty.underRep != 0 {
		t.Errorf("%d block(s) under-replicated after the bounce settled", faulty.underRep)
	}
	if faulty.rep.Audit == nil || !faulty.rep.Audit.Clean() {
		t.Errorf("audit not clean after node bounce: %v", faulty.rep.Audit.Violations())
	}
}

// TestOverlappingNodeRestarts crashes the same node again before the first
// reboot has finished its journal-replay remounts. Regression: the first
// reboot's rejoin half used to complete anyway, resurrecting the node in
// the middle of its second outage and letting re-replication target a
// machine whose volumes were failed. The crash-generation guard must
// abandon the superseded reboot.
func TestOverlappingNodeRestarts(t *testing.T) {
	healthy := runTS(t, "")
	faulty := runTS(t, "restart-node@300ms:node=slave-02,down=120ms;restart-node@430ms:node=slave-02,down=150ms")

	if len(faulty.sums) == 0 || !reflect.DeepEqual(healthy.sums, faulty.sums) {
		t.Errorf("output diverged under overlapping restarts: healthy %d part(s), faulty %d part(s)",
			len(healthy.sums), len(faulty.sums))
	}
	if faulty.underRep != 0 {
		t.Errorf("%d block(s) under-replicated after overlapping restarts", faulty.underRep)
	}
	if faulty.rep.Audit == nil || !faulty.rep.Audit.Clean() {
		t.Errorf("audit not clean after overlapping restarts: %v", faulty.rep.Audit.Violations())
	}
}

// TestJobFailsCleanlyWhenClusterDies: when every slave dies no retry budget
// can save the job; it must fail with a typed JobError instead of hanging.
func TestJobFailsCleanlyWhenClusterDies(t *testing.T) {
	opts := fastOpts
	plan := "kill-node@200ms:node=slave-00;kill-node@210ms:node=slave-01;kill-node@220ms:node=slave-02;kill-node@230ms:node=slave-03;kill-node@240ms:node=slave-04"
	var err error
	opts.Faults, err = faults.ParsePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunOne(TS, tsFaultFactors, opts)
	if err == nil {
		t.Fatal("job survived the loss of every slave")
	}
	var je *mapred.JobError
	if !errors.As(err, &je) {
		t.Fatalf("error is not a mapred.JobError: %v", err)
	}
}
