package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"iochar/internal/disk"
	"iochar/internal/hdfs"
	"iochar/internal/runcache"
)

// SchemaVersion identifies the RunReport result schema and the simulation
// semantics behind it. Bump it whenever a change makes previously persisted
// reports stale — a new counter, a renamed field, a behavioural fix that
// shifts byte totals — so old cache entries degrade to misses instead of
// resurfacing outdated figures.
const SchemaVersion = 8

// RunSource says where a resolved experiment cell came from.
type RunSource string

const (
	// SourceExecuted means the cell ran on a fresh simulated testbed.
	SourceExecuted RunSource = "executed"
	// SourceDisk means the cell was loaded from the persistent run cache.
	SourceDisk RunSource = "disk-cache"
)

// ProgressEvent reports one experiment cell resolving. Events fire for
// executions and disk-cache loads (not in-memory hits, which figures
// produce constantly and carry no cost). Done/Total track matrix progress:
// Total is the number of cells a Prewarm or RunAll sweep set out to
// resolve, or zero outside a sweep.
type ProgressEvent struct {
	Workload Workload
	Factors  Factors
	Source   RunSource
	Err      error // non-nil if the cell failed
	Done     int
	Total    int
}

// Cell is one (workload, factors) coordinate of the experiment matrix.
type Cell struct {
	Workload Workload
	Factors  Factors
}

// SuiteOption configures executor behaviour on NewSuite — parallelism,
// persistence, observability — without growing Options, which describes the
// simulated testbed itself.
type SuiteOption func(*Suite)

// WithParallelism bounds the suite's worker pool: at most n experiment
// cells simulate concurrently. n < 1 resets to the default, GOMAXPROCS.
// Parallel and sequential execution produce byte-identical results: every
// cell owns its simulation kernel and seeded RNG, so the schedule of cells
// across workers cannot leak into any cell's outcome.
func WithParallelism(n int) SuiteOption {
	return func(s *Suite) {
		if n < 1 {
			n = runtime.GOMAXPROCS(0)
		}
		s.parallelism = n
	}
}

// WithCacheDir enables the persistent run cache rooted at dir: resolved
// cells are stored as versioned JSON keyed by a hash of the full run
// configuration, and later suites (including other processes) reuse them.
// Runs with live hooks installed (Options.TraceAttach, Options.Inspect)
// bypass the cache, since the hooks' effects are not captured in the
// persisted report.
func WithCacheDir(dir string) SuiteOption {
	return func(s *Suite) { s.cacheDir = dir }
}

// WithProgress installs a callback invoked as cells resolve. The callback
// may fire concurrently from worker goroutines; it must be safe for that.
func WithProgress(fn func(ProgressEvent)) SuiteOption {
	return func(s *Suite) { s.progress = fn }
}

// Suite is the experiment executor: it resolves (workload, factors) cells
// against a three-level hierarchy — an in-memory result map, an optional
// persistent on-disk cache, and fresh execution on a bounded worker pool —
// deduplicating concurrent requests for the same cell so figures that share
// baseline runs never execute a cell twice. A Suite is safe for concurrent
// use by multiple goroutines.
type Suite struct {
	Opts Options

	parallelism int
	cacheDir    string
	progress    func(ProgressEvent)
	sem         chan struct{} // worker-pool tokens

	mu       sync.Mutex
	cache    map[string]*RunReport
	inflight map[string]*inflightCell
	store    *runcache.Store
	storeErr error
	opened   bool
	done     int // cells resolved by execution or disk load
	total    int // sweep size set by Prewarm/RunAll; 0 otherwise
}

// inflightCell is the singleflight slot for one executing cell: the first
// caller executes, later callers park on done and share the outcome.
type inflightCell struct {
	done chan struct{}
	rep  *RunReport
	err  error
}

// NewSuite creates an experiment suite over the given testbed options,
// executing sequentially with no persistent cache unless SuiteOptions say
// otherwise.
func NewSuite(opts Options, sopts ...SuiteOption) *Suite {
	s := &Suite{
		Opts:        opts.withDefaults(),
		parallelism: 1,
		cache:       map[string]*RunReport{},
		inflight:    map[string]*inflightCell{},
	}
	for _, o := range sopts {
		o(s)
	}
	s.sem = make(chan struct{}, s.parallelism)
	return s
}

// Run returns the cached or freshly executed cell.
func (s *Suite) Run(w Workload, f Factors) (*RunReport, error) {
	return s.RunContext(context.Background(), w, f)
}

// RunContext resolves one cell, honouring ctx: a caller waiting on the
// worker pool or on another goroutine's in-flight execution of the same
// cell unblocks with ctx's error when cancelled, and a fresh execution is
// itself cancellable mid-simulation. If the goroutine that won the right to
// execute a cell is cancelled, waiters deduplicated onto it receive its
// cancellation error; the cell stays unresolved and can be retried.
func (s *Suite) RunContext(ctx context.Context, w Workload, f Factors) (*RunReport, error) {
	key := f.cacheKey(w)
	s.mu.Lock()
	if r, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		select {
		case <-c.done:
			return c.rep, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &inflightCell{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	c.rep, c.err = s.execute(ctx, w, f)

	s.mu.Lock()
	if c.err == nil {
		s.cache[key] = c.rep
	}
	delete(s.inflight, key)
	s.mu.Unlock()
	close(c.done)
	return c.rep, c.err
}

// execute resolves a cell the expensive way: disk cache, then simulation,
// bounded by the worker pool.
func (s *Suite) execute(ctx context.Context, w Workload, f Factors) (*RunReport, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()

	store, diskKey, err := s.diskStore(w, f)
	if err != nil {
		return nil, err
	}
	if store != nil {
		rep := &RunReport{}
		if store.Get(diskKey, rep) {
			s.emit(w, f, SourceDisk, nil)
			return rep, nil
		}
	}
	rep, err := RunOneContext(ctx, w, f, s.Opts)
	if err != nil {
		if ctx.Err() == nil {
			s.emit(w, f, SourceExecuted, err)
		}
		return nil, err
	}
	if store != nil {
		// Best-effort persistence: a full disk or read-only cache directory
		// must not fail the experiment that just completed.
		_ = store.Put(diskKey, rep)
	}
	s.emit(w, f, SourceExecuted, nil)
	return rep, nil
}

// diskStore returns the persistent store and this cell's content address,
// or (nil, "") when the run is not cacheable or no cache is configured.
// The store opens lazily so a Suite that never resolves a cell never
// touches the filesystem; an unopenable cache directory is a configuration
// error and fails the run loudly rather than silently re-executing forever.
func (s *Suite) diskStore(w Workload, f Factors) (*runcache.Store, string, error) {
	if s.cacheDir == "" || !cacheable(s.Opts) {
		return nil, "", nil
	}
	s.mu.Lock()
	if !s.opened {
		s.opened = true
		s.store, s.storeErr = runcache.Open(s.cacheDir, SchemaVersion)
	}
	store, err := s.store, s.storeErr
	s.mu.Unlock()
	if err != nil {
		return nil, "", err
	}
	key, err := runcache.Key(keyMaterial(w, f, s.Opts))
	if err != nil {
		return nil, "", err
	}
	return store, key, nil
}

// cacheable reports whether runs under opts may be persisted: live hooks
// observe or mutate the testbed in ways the serialized report cannot carry.
func cacheable(opts Options) bool {
	return opts.TraceAttach == nil && opts.Inspect == nil && opts.TuneMapred == nil
}

// runKeyMaterial is everything that determines a cell's outcome. It is
// hashed (as canonical JSON) into the cell's content address, so any
// configuration drift — testbed scale, seeds, fault plans, recovery knobs,
// result schema — lands in a different cache slot instead of colliding.
type runKeyMaterial struct {
	Schema          int
	Workload        string
	Slots           SlotsConfig
	MemoryGB        int
	Compress        bool
	Scale           int64
	Slaves          int
	Racks           int
	UplinkBPS       int64
	Seed            int64
	SampleInterval  int64 // nanoseconds
	MapTaskTarget   int64
	InputFraction   float64
	FaultSlowDisk   float64
	SharedDataDisks bool
	Histograms      bool
	Faults          string // Plan.String(): the canonical plan syntax
	FaultSeed       int64
	Recovery        hdfs.RecoveryConfig
	MasterRecovery  MasterRecovery
	Audit           bool
	Integrity       bool
	ScrubRate       int64
	// Storage-tier configuration: the tier class and the full device params
	// of any SSD override. Tiered and untiered runs of the same cell have
	// different outcomes, so both must land in distinct cache slots.
	IntermediateTier string
	SSD              *disk.Params
}

func keyMaterial(w Workload, f Factors, opts Options) runKeyMaterial {
	return runKeyMaterial{
		Schema:           SchemaVersion,
		Workload:         w.String(),
		Slots:            f.Slots,
		MemoryGB:         f.MemoryGB,
		Compress:         f.Compress,
		Scale:            opts.Scale,
		Slaves:           opts.Slaves,
		Racks:            opts.Racks,
		UplinkBPS:        opts.UplinkBPS,
		Seed:             opts.Seed,
		SampleInterval:   int64(opts.SampleInterval),
		MapTaskTarget:    opts.MapTaskTarget,
		InputFraction:    opts.InputFraction,
		FaultSlowDisk:    opts.FaultSlowDisk,
		SharedDataDisks:  opts.SharedDataDisks,
		Histograms:       opts.Histograms,
		Faults:           opts.Faults.String(),
		FaultSeed:        opts.Faults.Seed,
		Recovery:         opts.Recovery,
		MasterRecovery:   opts.MasterRecovery,
		Audit:            opts.Audit,
		Integrity:        opts.Integrity,
		ScrubRate:        opts.ScrubRate,
		IntermediateTier: opts.IntermediateTier.String(),
		SSD:              opts.SSD,
	}
}

// emit fires the progress callback (if any) and advances the done counter.
func (s *Suite) emit(w Workload, f Factors, src RunSource, err error) {
	s.mu.Lock()
	s.done++
	ev := ProgressEvent{Workload: w, Factors: f, Source: src, Err: err, Done: s.done, Total: s.total}
	fn := s.progress
	s.mu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// CachedRuns returns the number of cells resolved into memory.
func (s *Suite) CachedRuns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// MatrixCells returns every distinct cell of the paper's experiment matrix
// — the union of the three factor families across the four workloads, with
// cells shared between families (the baselines) listed once — in a stable
// order.
func MatrixCells() []Cell {
	var cells []Cell
	seen := map[string]bool{}
	for _, w := range WorkloadOrder {
		for _, fam := range []family{famSlots, famMemory, famCompress} {
			for _, f := range fam.runs {
				key := f.cacheKey(w)
				if !seen[key] {
					seen[key] = true
					cells = append(cells, Cell{Workload: w, Factors: f})
				}
			}
		}
	}
	return cells
}

// FigureCells returns the cells paper Figure n renders from.
func FigureCells(n int) ([]Cell, error) {
	spec, ok := figureSpecs[n]
	if !ok {
		return nil, fmt.Errorf("core: no figure %d (paper has 1-12)", n)
	}
	var cells []Cell
	for _, w := range WorkloadOrder {
		for _, f := range spec.fam.runs {
			cells = append(cells, Cell{Workload: w, Factors: f})
		}
	}
	return cells, nil
}

// TableCells returns the cells paper Table n renders from.
func TableCells(n int) ([]Cell, error) {
	var runs []Factors
	switch n {
	case 5:
		runs = SlotsRuns
	case 6, 7:
		runs = SlotsRuns[:1]
	default:
		return nil, fmt.Errorf("core: no table %d (reproducible tables are 5, 6, 7)", n)
	}
	var cells []Cell
	for _, w := range WorkloadOrder {
		for _, f := range runs {
			cells = append(cells, Cell{Workload: w, Factors: f})
		}
	}
	return cells, nil
}

// Prewarm resolves the given cells across the worker pool and blocks until
// all have finished (or ctx is cancelled), returning the first error. After
// a successful Prewarm every figure or table over those cells renders from
// memory without further execution.
func (s *Suite) Prewarm(ctx context.Context, cells []Cell) error {
	s.mu.Lock()
	s.total += len(cells)
	s.mu.Unlock()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for _, c := range cells {
		wg.Add(1)
		go func(c Cell) {
			defer wg.Done()
			if _, err := s.RunContext(ctx, c.Workload, c.Factors); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return firstErr
}

// RunAll resolves the full experiment matrix — what `iochar -all` needs —
// across the worker pool.
func (s *Suite) RunAll(ctx context.Context) error {
	return s.Prewarm(ctx, MatrixCells())
}
