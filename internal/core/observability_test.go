package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"iochar/internal/disk"
	"iochar/internal/iostat"
	"iochar/internal/trace"
)

// TestRunWithHistogramsAndStreamTrace runs one cell with every observer at
// once — per-request histograms, a streaming trace sink and the physical
// per-stage accumulator — and checks each output is complete and that the
// trace is identical to what a stream-only run produces. This is the
// end-to-end version of the per-disk simultaneity test in internal/trace.
func TestRunWithHistogramsAndStreamTrace(t *testing.T) {
	runStream := func(histograms bool) (*RunReport, *bytes.Buffer, *PhysicalAttribution) {
		var buf bytes.Buffer
		sink := trace.NewStreamCollector(&buf)
		pa := NewPhysicalAttribution()
		opts := tinyOpts
		opts.Histograms = histograms
		opts.TraceAttach = func(dev string, d *disk.Disk) {
			sink.Attach(d, dev)
			pa.Attach(d)
		}
		rep, err := RunOne(TS, SlotsRuns[0], opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		if sink.Len() == 0 {
			t.Fatal("stream sink observed no requests")
		}
		return rep, &buf, pa
	}

	rep, combined, pa := runStream(true)
	for _, gr := range []struct {
		name string
		h    *iostat.Hists
	}{{"HDFS", rep.HDFS.Hists}, {"MR", rep.MR.Hists}} {
		if gr.h == nil || gr.h.Requests == 0 {
			t.Fatalf("%s histograms missing or empty", gr.name)
		}
		p50, p95, p99 := gr.h.Await.Quantile(0.50), gr.h.Await.Quantile(0.95), gr.h.Await.Quantile(0.99)
		if !(p50 > 0 && p50 <= p95 && p95 <= p99) {
			t.Errorf("%s await quantiles not monotone: p50=%g p95=%g p99=%g", gr.name, p50, p95, p99)
		}
	}
	var physReqs uint64
	for st := 0; st < disk.NumStages; st++ {
		physReqs += pa.Reads[st] + pa.Writes[st]
	}
	if physReqs == 0 {
		t.Error("physical attribution observed no requests")
	}
	if pa.Reads[disk.StageHDFS]+pa.Writes[disk.StageHDFS] == 0 {
		t.Error("no requests attributed to the HDFS stage")
	}

	_, alone, _ := runStream(false)
	if !bytes.Equal(combined.Bytes(), alone.Bytes()) {
		t.Error("streamed trace differs when histograms are also enabled")
	}
}

// TestHistogramsSurviveJSONRoundTrip guards the run cache: a report with
// histograms must serialize and deserialize without losing distribution
// state (quantiles are derived from the bucket counts alone).
func TestHistogramsSurviveJSONRoundTrip(t *testing.T) {
	opts := tinyOpts
	opts.Histograms = true
	rep, err := RunOne(TS, SlotsRuns[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	h, g := rep.HDFS.Hists, back.HDFS.Hists
	if g == nil {
		t.Fatal("Hists lost in round trip")
	}
	if g.Requests != h.Requests {
		t.Errorf("Requests = %d after round trip, want %d", g.Requests, h.Requests)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := g.Await.Quantile(q), h.Await.Quantile(q); got != want {
			t.Errorf("Await q%.0f = %g after round trip, want %g", q*100, got, want)
		}
	}
	if got, want := reportJSON(t, &back), string(b); got != want {
		t.Error("re-marshalled report differs; round trip is lossy")
	}
}

// TestLatencyTableRequiresHistograms checks both the guard and the happy
// path of the suite-level distribution table.
func TestLatencyTableRequiresHistograms(t *testing.T) {
	if _, err := sharedSuite.LatencyTable(); err == nil {
		t.Error("LatencyTable without Options.Histograms: want error")
	}
	opts := tinyOpts
	opts.Histograms = true
	s := NewSuite(opts, WithParallelism(2))
	td, err := s.LatencyTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Rows) == 0 {
		t.Fatal("LatencyTable produced no rows")
	}
	perWorkload := map[string]int{}
	for _, row := range td.Rows {
		perWorkload[row[0]]++
	}
	for _, w := range WorkloadOrder {
		// Two groups x three metrics per workload.
		if perWorkload[w.String()] != 6 {
			t.Errorf("workload %s has %d rows, want 6", w, perWorkload[w.String()])
		}
	}
}
