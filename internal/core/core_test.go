package core

import (
	"math"
	"testing"
	"time"
)

// fastOpts is a deliberately small testbed so the full observation suite
// stays in seconds. Shape assertions below are loose on purpose: they
// encode the paper's qualitative findings, not point estimates.
var fastOpts = Options{
	Scale:         32768,
	Slaves:        5,
	MapTaskTarget: 48,
	Seed:          1,
}

// sharedSuite caches cells across the tests in this package.
var sharedSuite = NewSuite(fastOpts)

func mustRun(t *testing.T, wkey Workload, f Factors) *RunReport {
	t.Helper()
	rep, err := sharedSuite.Run(wkey, f)
	if err != nil {
		t.Fatalf("%s: %v", wkey, err)
	}
	return rep
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1024 || o.Slaves != 10 || o.Seed != 1 {
		t.Errorf("defaults = %+v", o)
	}
	if o.SampleInterval <= 0 {
		t.Error("sample interval not defaulted")
	}
	if o.InputFraction != 1 {
		t.Errorf("InputFraction = %f", o.InputFraction)
	}
}

func TestSampleIntervalScalesWithScale(t *testing.T) {
	small := Options{Scale: 64}.withDefaults().SampleInterval
	big := Options{Scale: 8192}.withDefaults().SampleInterval
	if small != time.Second {
		t.Errorf("scale-64 interval = %v, want 1s", small)
	}
	if big >= small {
		t.Error("interval must shrink with scale")
	}
}

func TestRunOneProducesWellFormedReport(t *testing.T) {
	rep := mustRun(t, TS, SlotsRuns[0])
	if rep.Workload != TS {
		t.Errorf("Workload = %s", rep.Workload)
	}
	if len(rep.Jobs) != 1 {
		t.Errorf("jobs = %d, want 1", len(rep.Jobs))
	}
	if rep.Wall <= 0 {
		t.Error("no virtual runtime")
	}
	if rep.HDFS == nil || rep.MR == nil {
		t.Fatal("missing iostat reports")
	}
	if rep.HDFS.Util.Len() < 10 {
		t.Errorf("only %d samples; interval not scaled?", rep.HDFS.Util.Len())
	}
	if rep.HDFS.TotalReadBytes == 0 {
		t.Error("no HDFS reads recorded")
	}
	if rep.MR.TotalWrittenBytes == 0 {
		t.Error("no intermediate writes recorded")
	}
}

func TestRunOneInvalidWorkload(t *testing.T) {
	if _, err := RunOne(Workload(99), SlotsRuns[0], fastOpts); err == nil {
		t.Error("want error")
	}
	if _, err := RunOne(Workload(0), SlotsRuns[0], fastOpts); err == nil {
		t.Error("zero Workload must be rejected")
	}
}

func TestSuiteCachesCells(t *testing.T) {
	s := NewSuite(fastOpts)
	if _, err := s.Run(KM, SlotsRuns[0]); err != nil {
		t.Fatal(err)
	}
	n := s.CachedRuns()
	if _, err := s.Run(KM, SlotsRuns[0]); err != nil {
		t.Fatal(err)
	}
	if s.CachedRuns() != n {
		t.Error("repeat run was not cached")
	}
}

func TestDeterministicAcrossSuites(t *testing.T) {
	a, err := RunOne(AGG, SlotsRuns[0], fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	b := mustRun(t, AGG, SlotsRuns[0])
	if a.Wall != b.Wall {
		t.Errorf("runtime differs across identical runs: %v vs %v", a.Wall, b.Wall)
	}
	if a.HDFS.TotalReadBytes != b.HDFS.TotalReadBytes {
		t.Errorf("HDFS bytes differ: %d vs %d", a.HDFS.TotalReadBytes, b.HDFS.TotalReadBytes)
	}
}

// --- The paper's four concluding observations, as assertions. ---

// Observation 1: task slots leave the four I/O metrics essentially
// unchanged.
func TestObservation1SlotsLeaveIOMetricsUnchanged(t *testing.T) {
	for _, wkey := range []Workload{AGG, TS} {
		a := mustRun(t, wkey, SlotsRuns[0])
		b := mustRun(t, wkey, SlotsRuns[1])
		within := func(name string, x, y, tol float64) {
			if x == 0 && y == 0 {
				return
			}
			if d := math.Abs(x-y) / math.Max(x, y); d > tol {
				t.Errorf("%s %s drifts %.0f%% across slot configs (%.2f vs %.2f)", wkey, name, d*100, x, y)
			}
		}
		within("HDFS read MB/s", a.HDFS.RMBs.Mean(), b.HDFS.RMBs.Mean(), 0.30)
		within("HDFS %util", a.HDFS.Util.Mean(), b.HDFS.Util.Mean(), 0.30)
		within("HDFS avgrq-sz", a.HDFS.AvgrqSz.MeanNonzero(), b.HDFS.AvgrqSz.MeanNonzero(), 0.35)
	}
}

// Observation 2: more memory reduces the number of I/O requests and eases
// intermediate-disk pressure (spill-heavy TS), and raises HDFS read
// bandwidth for large inputs.
func TestObservation2MemoryReducesIO(t *testing.T) {
	lo := mustRun(t, TS, MemoryRuns[0])
	hi := mustRun(t, TS, MemoryRuns[1])
	loReq := lo.MR.TotalReads + lo.MR.TotalWrites
	hiReq := hi.MR.TotalReads + hi.MR.TotalWrites
	if hiReq >= loReq {
		t.Errorf("MR requests did not fall with memory: %d -> %d", loReq, hiReq)
	}
	if hi.MR.Util.Mean() >= lo.MR.Util.Mean() {
		t.Errorf("MR util did not fall with memory: %.1f -> %.1f", lo.MR.Util.Mean(), hi.MR.Util.Mean())
	}
	if hi.HDFS.RMBs.Mean() <= lo.HDFS.RMBs.Mean() {
		t.Errorf("HDFS read bandwidth did not rise with memory: %.1f -> %.1f",
			lo.HDFS.RMBs.Mean(), hi.HDFS.RMBs.Mean())
	}
	// Small-output workloads see little write-side change (paper: K-means).
	kmLo := mustRun(t, KM, MemoryRuns[0])
	kmHi := mustRun(t, KM, MemoryRuns[1])
	_ = kmLo
	_ = kmHi
}

// Observation 3: compression shrinks MapReduce intermediate I/O but leaves
// HDFS I/O (bytes moved) untouched.
func TestObservation3CompressionIsMapReduceOnly(t *testing.T) {
	off := mustRun(t, TS, CompressRuns[0])
	on := mustRun(t, TS, CompressRuns[1])
	if on.MR.TotalWrittenBytes >= off.MR.TotalWrittenBytes {
		t.Errorf("compression did not shrink intermediate writes: %d -> %d",
			off.MR.TotalWrittenBytes, on.MR.TotalWrittenBytes)
	}
	if on.MR.AvgrqSz.MeanNonzero() >= off.MR.AvgrqSz.MeanNonzero() {
		t.Errorf("compression did not shrink MR avgrq-sz: %.0f -> %.0f",
			off.MR.AvgrqSz.MeanNonzero(), on.MR.AvgrqSz.MeanNonzero())
	}
	// HDFS volume is essentially untouched: HDFS data is never compressed
	// (sub-percent drift comes from readahead/eviction timing only).
	drift := math.Abs(float64(on.HDFS.TotalReadBytes)-float64(off.HDFS.TotalReadBytes)) /
		float64(off.HDFS.TotalReadBytes)
	if drift > 0.01 {
		t.Errorf("compression changed HDFS read volume by %.1f%%: %d vs %d",
			drift*100, off.HDFS.TotalReadBytes, on.HDFS.TotalReadBytes)
	}
}

// Observation 4: HDFS I/O is large-sequential, MapReduce intermediate I/O
// small-random — avgrq-sz tells them apart for every workload with real
// intermediate traffic.
func TestObservation4AccessPatternContrast(t *testing.T) {
	for _, wkey := range []Workload{TS, KM, PR} {
		rep := mustRun(t, wkey, SlotsRuns[0])
		h := rep.HDFS.AvgrqSz.MeanNonzero()
		m := rep.MR.AvgrqSz.MeanNonzero()
		if m == 0 {
			continue // negligible intermediate traffic at this scale
		}
		if h <= m {
			t.Errorf("%s: HDFS avgrq-sz %.0f not above MapReduce %.0f", wkey, h, m)
		}
	}
}

// Table 6/7 shape: AGG leads HDFS busy fractions; TS leads MapReduce's.
func TestTablesBusyFractionOrdering(t *testing.T) {
	reps := map[Workload]*RunReport{}
	for _, wkey := range WorkloadOrder {
		reps[wkey] = mustRun(t, wkey, SlotsRuns[0])
	}
	aggBusy := reps[AGG].HDFS.Util.Mean()
	tsBusyMR := reps[TS].MR.Util.Mean()
	for _, wkey := range []Workload{KM, PR} {
		if got := reps[wkey].HDFS.Util.Mean(); got > aggBusy {
			t.Errorf("HDFS mean util: %s (%.2f) above AGG (%.2f)", wkey, got, aggBusy)
		}
		if got := reps[wkey].MR.Util.Mean(); got > tsBusyMR {
			t.Errorf("MR mean util: %s (%.2f) above TS (%.2f)", wkey, got, tsBusyMR)
		}
	}
}

func TestFigureDataShape(t *testing.T) {
	fd, err := sharedSuite.Figure(10)
	if err != nil {
		t.Fatal(err)
	}
	if fd.ID != 10 || len(fd.Panels) != 2 {
		t.Fatalf("figure 10: %d panels", len(fd.Panels))
	}
	for _, p := range fd.Panels {
		if len(p.Rows) != 8 { // 4 workloads x 2 factor levels
			t.Errorf("panel %q has %d rows, want 8", p.Title, len(p.Rows))
		}
		for _, r := range p.Rows {
			if r.Series == nil || r.Series.Len() == 0 {
				t.Errorf("row %s has no series", r.Label)
			}
		}
	}
}

func TestBandwidthFigureHasReadAndWritePanels(t *testing.T) {
	fd, err := sharedSuite.Figure(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Panels) != 2 { // MR read + MR write
		t.Fatalf("figure 3: %d panels, want 2", len(fd.Panels))
	}
}

func TestUnknownFigureAndTable(t *testing.T) {
	if _, err := sharedSuite.Figure(13); err == nil {
		t.Error("figure 13 should error")
	}
	if _, err := sharedSuite.Table(4); err == nil {
		t.Error("table 4 should error (configuration table)")
	}
}

func TestTable5Shape(t *testing.T) {
	td, err := sharedSuite.Table(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Rows) != 4 || len(td.Header) != 3 {
		t.Fatalf("table 5: %dx%d", len(td.Rows), len(td.Header))
	}
}

func TestTables67Shape(t *testing.T) {
	for _, n := range []int{6, 7} {
		td, err := sharedSuite.Table(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(td.Rows) != 3 {
			t.Errorf("table %d: %d rows, want 3 thresholds", n, len(td.Rows))
		}
		for _, row := range td.Rows {
			if len(row) != 5 { // label + 4 workloads
				t.Errorf("table %d row %v: %d cells", n, row[0], len(row))
			}
		}
	}
}

func TestFactorLabel(t *testing.T) {
	f := Factors{Slots: Slots2x16, MemoryGB: 16, Compress: true}
	cases := map[string]string{"slots": "2_16", "memory": "16G", "compress": "on"}
	for fam, want := range cases {
		if got := FactorLabel(fam, f); got != want {
			t.Errorf("FactorLabel(%s) = %s, want %s", fam, got, want)
		}
	}
	if FactorLabel("bogus", f) != "?" {
		t.Error("unknown family should be ?")
	}
}

func TestLabelMatchesPaperNaming(t *testing.T) {
	f := Factors{Slots: Slots1x8}
	if got := f.Label(AGG); got != "AGG_1_8" {
		t.Errorf("Label = %s", got)
	}
}

func TestBlockBytesBounds(t *testing.T) {
	o := fastOpts.withDefaults()
	bs := o.blockBytes()
	if bs < 64<<10 {
		t.Errorf("block %d below floor", bs)
	}
	if bs%4096 != 0 {
		t.Errorf("block %d not page aligned", bs)
	}
}

func TestAttributionShapes(t *testing.T) {
	agg, err := sharedSuite.Attribution(AGG, SlotsRuns[0])
	if err != nil {
		t.Fatal(err)
	}
	ts, err := sharedSuite.Attribution(TS, SlotsRuns[0])
	if err != nil {
		t.Fatal(err)
	}
	// AGG is dominated by its input scan; TS spreads I/O across the whole
	// pipeline (the paper's "major source of I/O demand" future work).
	if float64(agg.HDFSInputRead) < 0.7*float64(agg.Total()) {
		t.Errorf("AGG input share = %.2f, want > 0.7", float64(agg.HDFSInputRead)/float64(agg.Total()))
	}
	if agg.MRShare() >= ts.MRShare() {
		t.Errorf("intermediate share: AGG %.2f should be below TS %.2f", agg.MRShare(), ts.MRShare())
	}
	if ts.SpillWrite == 0 || ts.ShuffleRead == 0 {
		t.Error("TS attribution missing pipeline stages")
	}
	// Conservation: shuffle read can never exceed what the maps produced.
	if ts.ShuffleRead > ts.SpillWrite+ts.MergeWrite {
		t.Errorf("shuffle read %d exceeds produced map output %d", ts.ShuffleRead, ts.SpillWrite+ts.MergeWrite)
	}
}

func TestAttributionTableShape(t *testing.T) {
	td, err := sharedSuite.AttributionTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Rows) != 8 {
		t.Errorf("rows = %d, want 8 stages", len(td.Rows))
	}
	for _, row := range td.Rows {
		if len(row) != 5 {
			t.Errorf("row %q has %d cells", row[0], len(row))
		}
	}
}

// Table 3: the CPU-bound vs I/O-bound classification, measured rather than
// asserted — AGG keeps the cores busier than TS (CPU-bound), while TS keeps
// the intermediate disks busier than anyone (I/O-bound).
func TestTable3BottleneckClassification(t *testing.T) {
	agg := mustRun(t, AGG, SlotsRuns[0])
	ts := mustRun(t, TS, SlotsRuns[0])
	pr := mustRun(t, PR, SlotsRuns[0])
	if agg.CPUUtil == nil || agg.CPUUtil.Len() == 0 {
		t.Fatal("no CPU samples")
	}
	if agg.CPUUtil.Mean() <= ts.CPUUtil.Mean() {
		t.Errorf("CPU util: AGG %.1f should exceed TS %.1f (CPU-bound vs I/O-bound)",
			agg.CPUUtil.Mean(), ts.CPUUtil.Mean())
	}
	if pr.CPUUtil.Mean() <= ts.CPUUtil.Mean() {
		t.Errorf("CPU util: PR %.1f should exceed TS %.1f", pr.CPUUtil.Mean(), ts.CPUUtil.Mean())
	}
}

// Failure injection: a single degraded intermediate disk must slow the
// whole TeraSort job (speculative map execution softens but cannot remove
// the hit — the straggler disk also serves shuffle reads) and inflate the
// iostat await signature an operator would diagnose with.
func TestFaultSlowDiskVisibleEndToEnd(t *testing.T) {
	healthy := mustRun(t, TS, SlotsRuns[0])
	opts := fastOpts
	opts.FaultSlowDisk = 8
	degraded, err := RunOne(TS, SlotsRuns[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Wall <= healthy.Wall*6/5 {
		t.Errorf("degraded run %v not meaningfully slower than healthy %v", degraded.Wall, healthy.Wall)
	}
	// The straggler's slow requests inflate the group's mean await — the
	// iostat signature an operator would chase.
	if degraded.MR.AwaitMs.MeanNonzero() <= healthy.MR.AwaitMs.MeanNonzero() {
		t.Errorf("degraded MR await %.2f not above healthy %.2f",
			degraded.MR.AwaitMs.MeanNonzero(), healthy.MR.AwaitMs.MeanNonzero())
	}
}
