package core

import (
	"crypto/sha256"
	"reflect"
	"testing"

	"iochar/internal/cluster"
	"iochar/internal/faults"
	"iochar/internal/hdfs"
	"iochar/internal/sim"
)

// runTSMasters is runTS with master recovery forced on, plus an end-of-run
// replay-equivalence check: the namespace a restarting NameNode would
// rebuild must equal the live one after every fault has settled.
func runTSMasters(t *testing.T, planStr string) *tsOutcome {
	t.Helper()
	opts := fastOpts
	opts.Audit = true
	opts.MasterRecovery.Enabled = true
	if planStr != "" {
		plan, err := faults.ParsePlan(planStr)
		if err != nil {
			t.Fatal(err)
		}
		opts.Faults = plan
	}
	out := &tsOutcome{sums: map[string][32]byte{}, inLocs: map[string][]int{}}
	base := opts.Inspect
	opts.Inspect = func(p *sim.Proc, fs *hdfs.FS, cl *cluster.Cluster) {
		if base != nil {
			base(p, fs, cl)
		}
		if !reflect.DeepEqual(fs.LiveNamespace(), fs.MasterReplayNamespace()) {
			t.Error("replayed NameNode state diverges from the live namespace at end of run")
		}
		for _, path := range fs.List("/bench/TS/out/") {
			rd, err := fs.Open(path, cl.Master.Name)
			if err != nil {
				t.Errorf("open %s: %v", path, err)
				return
			}
			data, err := rd.ReadAt(p, 0, rd.Size())
			if err != nil {
				t.Errorf("read %s: %v", path, err)
				return
			}
			out.sums[path] = sha256.Sum256(data)
		}
		out.underRep = fs.UnderReplicated()
	}
	rep, err := RunOne(TS, tsFaultFactors, opts)
	if err != nil {
		t.Fatalf("TS with master recovery and plan %q: %v", planStr, err)
	}
	out.rep = rep
	return out
}

// TestMasterRecoveryHealthyRun: master recovery on with no faults leaves the
// workload outcome identical to the plain healthy run while the metadata
// stream — edit journal, checkpoints — lands as real bytes on the master's
// own disks, visible in the masters iostat group.
func TestMasterRecoveryHealthyRun(t *testing.T) {
	healthy := runTS(t, "")
	mastered := runTSMasters(t, "")

	if len(mastered.sums) == 0 || !reflect.DeepEqual(healthy.sums, mastered.sums) {
		t.Errorf("output changed when master recovery was enabled: healthy %d part(s), mastered %d part(s)",
			len(healthy.sums), len(mastered.sums))
	}
	nn := mastered.rep.NameNode
	if nn.JournalRecords == 0 || nn.JournalBytes == 0 {
		t.Errorf("NameNode journaled nothing: %+v", nn)
	}
	if nn.ClientStalls != 0 {
		t.Errorf("clients stalled %d time(s) on a never-crashed master", nn.ClientStalls)
	}
	jt := mastered.rep.JobTracker
	if jt.JournalRecords == 0 {
		t.Errorf("JobTracker journaled nothing: %+v", jt)
	}
	if mastered.rep.Masters == nil || mastered.rep.Masters.TotalWrittenBytes == 0 {
		t.Error("masters iostat group missing or empty")
	}
	if mastered.rep.Audit == nil || !mastered.rep.Audit.Clean() {
		t.Errorf("audit not clean under master recovery: %v", mastered.rep.Audit.Violations())
	}
}

// nnRestartPlan bounces the NameNode mid-TeraSort. 300 ms is mid-map-phase
// at fastOpts scale, and the 100 ms outage comfortably spans the scaled
// DataNode dead timeout, so the restart must also prove that the outage
// itself does not read as a cluster-wide failure.
const nnRestartPlan = "restart-namenode@300ms:down=100ms"

// TestNameNodeRestartMidTeraSort: the NameNode dies and returns mid-job;
// clients stall and retry instead of failing, the restarted master replays
// its journal and holds safe mode until block reports confirm replicas, and
// the job completes with byte-identical output.
func TestNameNodeRestartMidTeraSort(t *testing.T) {
	healthy := runTS(t, "")
	faulty := runTSMasters(t, nnRestartPlan)

	if len(faulty.sums) == 0 || !reflect.DeepEqual(healthy.sums, faulty.sums) {
		t.Errorf("output diverged across a NameNode bounce: healthy %d part(s), faulty %d part(s)",
			len(healthy.sums), len(faulty.sums))
	}
	nn := faulty.rep.NameNode
	if nn.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", nn.Restarts)
	}
	if nn.ClientStalls == 0 || nn.StallTime == 0 {
		t.Errorf("no client stalled on the outage: %+v", nn)
	}
	if nn.SafeModeWait == 0 {
		t.Errorf("restart skipped safe mode: %+v", nn)
	}
	if nn.ReplayBytes == 0 {
		t.Errorf("restart read no journal bytes back: %+v", nn)
	}
	if faulty.underRep != 0 {
		t.Errorf("%d block(s) under-replicated after the bounce settled", faulty.underRep)
	}
	if faulty.rep.Audit == nil || !faulty.rep.Audit.Clean() {
		t.Errorf("audit not clean after a NameNode bounce: %v", faulty.rep.Audit.Violations())
	}
}

// TestJobTrackerRestartMidTeraSort: the JobTracker dies and returns mid-job;
// task grants stall on backoff, the restarted scheduler replays job state
// and reconciles against the cluster, and output is byte-identical.
func TestJobTrackerRestartMidTeraSort(t *testing.T) {
	healthy := runTS(t, "")
	faulty := runTSMasters(t, "restart-jobtracker@300ms:down=100ms")

	if len(faulty.sums) == 0 || !reflect.DeepEqual(healthy.sums, faulty.sums) {
		t.Errorf("output diverged across a JobTracker bounce: healthy %d part(s), faulty %d part(s)",
			len(healthy.sums), len(faulty.sums))
	}
	jt := faulty.rep.JobTracker
	if jt.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", jt.Restarts)
	}
	if jt.GrantStalls == 0 || jt.StallTime == 0 {
		t.Errorf("no tracker stalled on the outage: %+v", jt)
	}
	if jt.ReplayBytes == 0 {
		t.Errorf("restart read no journal bytes back: %+v", jt)
	}
	if faulty.rep.Audit == nil || !faulty.rep.Audit.Clean() {
		t.Errorf("audit not clean after a JobTracker bounce: %v", faulty.rep.Audit.Violations())
	}
}

// TestDoubleMasterRestart bounces both masters with overlapping-in-time (but
// per-victim disjoint) outages — the double-master scenario the chaos
// regression schedule PR-double-master pins.
func TestDoubleMasterRestart(t *testing.T) {
	healthy := runTS(t, "")
	faulty := runTSMasters(t, "restart-namenode@300ms:down=80ms;restart-jobtracker@330ms:down=80ms")

	if len(faulty.sums) == 0 || !reflect.DeepEqual(healthy.sums, faulty.sums) {
		t.Errorf("output diverged across a double master bounce: healthy %d part(s), faulty %d part(s)",
			len(healthy.sums), len(faulty.sums))
	}
	if faulty.rep.NameNode.Restarts != 1 || faulty.rep.JobTracker.Restarts != 1 {
		t.Errorf("restarts: NN %d, JT %d, want 1 and 1",
			faulty.rep.NameNode.Restarts, faulty.rep.JobTracker.Restarts)
	}
	if faulty.rep.Audit == nil || !faulty.rep.Audit.Clean() {
		t.Errorf("audit not clean after a double master bounce: %v", faulty.rep.Audit.Violations())
	}
}

// TestMasterFaultPlanImpliesRecovery: a plan carrying master-restart events
// switches the machinery on even when the option is off — the injector
// needs killable masters.
func TestMasterFaultPlanImpliesRecovery(t *testing.T) {
	opts := fastOpts
	plan, err := faults.ParsePlan(nnRestartPlan)
	if err != nil {
		t.Fatal(err)
	}
	opts.Faults = plan
	rep, err := RunOne(TS, tsFaultFactors, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NameNode.Restarts != 1 {
		t.Errorf("implied master recovery did not run: %+v", rep.NameNode)
	}
	if rep.Masters == nil {
		t.Error("masters iostat group missing on an implied-recovery run")
	}
}

// TestMasterRecoveryDeterministic: identical master-fault runs are
// event-for-event identical.
func TestMasterRecoveryDeterministic(t *testing.T) {
	a := runTSMasters(t, nnRestartPlan)
	b := runTSMasters(t, nnRestartPlan)
	if a.rep.Wall != b.rep.Wall {
		t.Errorf("wall diverged: %v vs %v", a.rep.Wall, b.rep.Wall)
	}
	if a.rep.NameNode != b.rep.NameNode {
		t.Errorf("NameNode stats diverged:\n %+v\n %+v", a.rep.NameNode, b.rep.NameNode)
	}
	if a.rep.JobTracker != b.rep.JobTracker {
		t.Errorf("JobTracker stats diverged:\n %+v\n %+v", a.rep.JobTracker, b.rep.JobTracker)
	}
	if !reflect.DeepEqual(a.sums, b.sums) {
		t.Error("outputs diverged between identical master-fault runs")
	}
}
