package core

import (
	"fmt"
	"math"

	"iochar/internal/disk"
	"iochar/internal/iostat"
	"iochar/internal/mapred"
	"iochar/internal/stats"
)

// Attribution breaks one workload's logical I/O volume down by pipeline
// stage — the paper's stated future work ("combine a low-level description
// of physical resources and the high-level functional composition of big
// data workloads to reveal the major source of I/O demand"), implemented.
//
// Bytes are logical (as issued by the stage); HDFS writes additionally fan
// out by the replication factor at the device level.
type Attribution struct {
	Workload Workload
	Factors  Factors

	HDFSInputRead   int64 // map-task split reads
	HDFSOutputWrite int64 // reduce output (pre-replication)
	SpillWrite      int64 // map-side spill writes (post-codec)
	MergeRead       int64 // map-side merge re-reads
	MergeWrite      int64 // map-side merged output writes
	ShuffleRead     int64 // map-output reads serving reducers
	RunWrite        int64 // reduce-side shuffle-run spills
	RunRead         int64 // reduce-side run re-reads
}

// Total returns the summed logical volume.
func (a *Attribution) Total() int64 {
	return a.HDFSInputRead + a.HDFSOutputWrite + a.SpillWrite + a.MergeRead +
		a.MergeWrite + a.ShuffleRead + a.RunWrite + a.RunRead
}

// MRShare returns the fraction of logical I/O on the intermediate
// (MapReduce) disks.
func (a *Attribution) MRShare() float64 {
	t := a.Total()
	if t == 0 {
		return 0
	}
	mr := a.SpillWrite + a.MergeRead + a.MergeWrite + a.ShuffleRead + a.RunWrite + a.RunRead
	return float64(mr) / float64(t)
}

// attribution folds job counters into the breakdown.
func attribution(w Workload, f Factors, jobs []*mapred.Result) *Attribution {
	a := &Attribution{Workload: w, Factors: f}
	for _, j := range jobs {
		a.HDFSInputRead += j.MapInputBytes
		a.HDFSOutputWrite += j.ReduceOutputBytes
		a.SpillWrite += j.MapSpillBytes
		a.MergeRead += j.MapMergeReadBytes
		a.MergeWrite += j.MapMergeWriteBytes
		a.ShuffleRead += j.ShuffleBytes
		a.RunWrite += j.ReduceRunWriteBytes
		a.RunRead += j.ReduceRunReadBytes
	}
	return a
}

// Attribution runs (or reuses) the workload's baseline cell and returns the
// per-stage I/O breakdown.
func (s *Suite) Attribution(w Workload, f Factors) (*Attribution, error) {
	rep, err := s.Run(w, f)
	if err != nil {
		return nil, err
	}
	return attribution(w, f, rep.Jobs), nil
}

// AttributionTable renders the breakdown of every workload under the
// baseline slots configuration as a table: rows are stages, columns
// workloads, cells "MB (share%)".
func (s *Suite) AttributionTable() (*TableData, error) {
	type stage struct {
		name string
		sel  func(*Attribution) int64
	}
	stages := []stage{
		{"HDFS input read", func(a *Attribution) int64 { return a.HDFSInputRead }},
		{"HDFS output write", func(a *Attribution) int64 { return a.HDFSOutputWrite }},
		{"map spill write", func(a *Attribution) int64 { return a.SpillWrite }},
		{"map merge read", func(a *Attribution) int64 { return a.MergeRead }},
		{"map merge write", func(a *Attribution) int64 { return a.MergeWrite }},
		{"shuffle read", func(a *Attribution) int64 { return a.ShuffleRead }},
		{"reduce run write", func(a *Attribution) int64 { return a.RunWrite }},
		{"reduce run read", func(a *Attribution) int64 { return a.RunRead }},
	}
	t := &TableData{
		ID:     0,
		Title:  "Sources of I/O demand (logical MB and share of workload total; extension of the paper's future work)",
		Header: append([]string{"stage"}, workloadHeader()...),
	}
	atts := map[Workload]*Attribution{}
	for _, wkey := range WorkloadOrder {
		a, err := s.Attribution(wkey, SlotsRuns[0])
		if err != nil {
			return nil, err
		}
		atts[wkey] = a
	}
	for _, st := range stages {
		row := []string{st.name}
		for _, wkey := range WorkloadOrder {
			a := atts[wkey]
			v := st.sel(a)
			share := 0.0
			if a.Total() > 0 {
				share = float64(v) / float64(a.Total()) * 100
			}
			row = append(row, fmt.Sprintf("%.1f (%2.0f%%)", float64(v)/(1<<20), share))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// PhysicalAttribution accumulates device-level per-stage totals from
// stage-tagged request completions — the physical counterpart of
// Attribution's logical byte counts. The two differ by exactly the layers in
// between: the page cache absorbs re-reads and short-lived spills, writeback
// clusters small appends into large requests, and HDFS writes fan out by the
// replication factor. Attach it to data disks via Options.TraceAttach.
type PhysicalAttribution struct {
	Reads      [disk.NumStages]uint64
	Writes     [disk.NumStages]uint64
	ReadBytes  [disk.NumStages]int64
	WriteBytes [disk.NumStages]int64
}

// NewPhysicalAttribution returns an empty accumulator.
func NewPhysicalAttribution() *PhysicalAttribution { return &PhysicalAttribution{} }

// Attach subscribes the accumulator to a disk; the returned function
// unsubscribes it.
func (pa *PhysicalAttribution) Attach(d *disk.Disk) func() {
	return d.Subscribe(pa.Observe)
}

// Observe folds one completed request into the per-stage totals.
func (pa *PhysicalAttribution) Observe(c disk.Completion) {
	bytes := int64(c.Count) * disk.SectorSize
	if c.Op == disk.Read {
		pa.Reads[c.Stage]++
		pa.ReadBytes[c.Stage] += bytes
	} else {
		pa.Writes[c.Stage]++
		pa.WriteBytes[c.Stage] += bytes
	}
}

// Table renders the accumulated per-stage physical totals; stages with no
// traffic are omitted. The "-" row is traffic no stage claimed (setup,
// tests, direct volume users).
func (pa *PhysicalAttribution) Table() *TableData {
	t := &TableData{
		ID:     0,
		Title:  "Physical I/O by pipeline stage (device-level: post-cache, post-merge, replicated)",
		Header: []string{"stage", "reads", "read MB", "writes", "write MB"},
	}
	for st := disk.Stage(0); int(st) < disk.NumStages; st++ {
		if pa.Reads[st] == 0 && pa.Writes[st] == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			st.String(),
			fmt.Sprintf("%d", pa.Reads[st]),
			fmt.Sprintf("%.1f", float64(pa.ReadBytes[st])/(1<<20)),
			fmt.Sprintf("%d", pa.Writes[st]),
			fmt.Sprintf("%.1f", float64(pa.WriteBytes[st])/(1<<20)),
		})
	}
	return t
}

// LatencyTable renders per-request await/svctm/request-size distributions
// (p50/p95/p99/max) for every workload's baseline cell — the tail companion
// to Table 4's interval means. It requires Options.Histograms; the
// distributions serialize with the report, so the table is served from the
// run cache like any figure.
func (s *Suite) LatencyTable() (*TableData, error) {
	if !s.Opts.Histograms {
		return nil, fmt.Errorf("core: LatencyTable requires Options.Histograms")
	}
	t := &TableData{
		ID:     0,
		Title:  "I/O latency and request-size distributions (per physical request; extension of Table 4)",
		Header: []string{"workload", "group", "metric", "p50", "p95", "p99", "max"},
	}
	for _, wkey := range WorkloadOrder {
		rep, err := s.Run(wkey, SlotsRuns[0])
		if err != nil {
			return nil, err
		}
		for _, gr := range []struct {
			name string
			r    *iostat.Report
		}{{"HDFS", rep.HDFS}, {"MR", rep.MR}} {
			h := gr.r.Hists
			if h == nil || h.Requests == 0 {
				continue
			}
			add := func(metric, format string, hist *stats.Histogram, max float64) {
				// Bucketed quantiles can overshoot the observed maximum
				// (they report the bucket's upper edge); clamp for display.
				q := func(p float64) float64 { return math.Min(hist.Quantile(p), max) }
				t.Rows = append(t.Rows, []string{
					wkey.String(), gr.name, metric,
					fmt.Sprintf(format, q(0.50)),
					fmt.Sprintf(format, q(0.95)),
					fmt.Sprintf(format, q(0.99)),
					fmt.Sprintf(format, max),
				})
			}
			add("await ms", "%.2f", h.Await, h.AwaitMaxMs)
			add("svctm ms", "%.2f", h.Svctm, h.SvctmMaxMs)
			add("rq-sz sect", "%.0f", h.Size, h.SizeMax)
		}
	}
	return t, nil
}
