package core

import (
	"fmt"

	"iochar/internal/mapred"
)

// Attribution breaks one workload's logical I/O volume down by pipeline
// stage — the paper's stated future work ("combine a low-level description
// of physical resources and the high-level functional composition of big
// data workloads to reveal the major source of I/O demand"), implemented.
//
// Bytes are logical (as issued by the stage); HDFS writes additionally fan
// out by the replication factor at the device level.
type Attribution struct {
	Workload Workload
	Factors  Factors

	HDFSInputRead   int64 // map-task split reads
	HDFSOutputWrite int64 // reduce output (pre-replication)
	SpillWrite      int64 // map-side spill writes (post-codec)
	MergeRead       int64 // map-side merge re-reads
	MergeWrite      int64 // map-side merged output writes
	ShuffleRead     int64 // map-output reads serving reducers
	RunWrite        int64 // reduce-side shuffle-run spills
	RunRead         int64 // reduce-side run re-reads
}

// Total returns the summed logical volume.
func (a *Attribution) Total() int64 {
	return a.HDFSInputRead + a.HDFSOutputWrite + a.SpillWrite + a.MergeRead +
		a.MergeWrite + a.ShuffleRead + a.RunWrite + a.RunRead
}

// MRShare returns the fraction of logical I/O on the intermediate
// (MapReduce) disks.
func (a *Attribution) MRShare() float64 {
	t := a.Total()
	if t == 0 {
		return 0
	}
	mr := a.SpillWrite + a.MergeRead + a.MergeWrite + a.ShuffleRead + a.RunWrite + a.RunRead
	return float64(mr) / float64(t)
}

// attribution folds job counters into the breakdown.
func attribution(w Workload, f Factors, jobs []*mapred.Result) *Attribution {
	a := &Attribution{Workload: w, Factors: f}
	for _, j := range jobs {
		a.HDFSInputRead += j.MapInputBytes
		a.HDFSOutputWrite += j.ReduceOutputBytes
		a.SpillWrite += j.MapSpillBytes
		a.MergeRead += j.MapMergeReadBytes
		a.MergeWrite += j.MapMergeWriteBytes
		a.ShuffleRead += j.ShuffleBytes
		a.RunWrite += j.ReduceRunWriteBytes
		a.RunRead += j.ReduceRunReadBytes
	}
	return a
}

// Attribution runs (or reuses) the workload's baseline cell and returns the
// per-stage I/O breakdown.
func (s *Suite) Attribution(w Workload, f Factors) (*Attribution, error) {
	rep, err := s.Run(w, f)
	if err != nil {
		return nil, err
	}
	return attribution(w, f, rep.Jobs), nil
}

// AttributionTable renders the breakdown of every workload under the
// baseline slots configuration as a table: rows are stages, columns
// workloads, cells "MB (share%)".
func (s *Suite) AttributionTable() (*TableData, error) {
	type stage struct {
		name string
		sel  func(*Attribution) int64
	}
	stages := []stage{
		{"HDFS input read", func(a *Attribution) int64 { return a.HDFSInputRead }},
		{"HDFS output write", func(a *Attribution) int64 { return a.HDFSOutputWrite }},
		{"map spill write", func(a *Attribution) int64 { return a.SpillWrite }},
		{"map merge read", func(a *Attribution) int64 { return a.MergeRead }},
		{"map merge write", func(a *Attribution) int64 { return a.MergeWrite }},
		{"shuffle read", func(a *Attribution) int64 { return a.ShuffleRead }},
		{"reduce run write", func(a *Attribution) int64 { return a.RunWrite }},
		{"reduce run read", func(a *Attribution) int64 { return a.RunRead }},
	}
	t := &TableData{
		ID:     0,
		Title:  "Sources of I/O demand (logical MB and share of workload total; extension of the paper's future work)",
		Header: append([]string{"stage"}, workloadHeader()...),
	}
	atts := map[Workload]*Attribution{}
	for _, wkey := range WorkloadOrder {
		a, err := s.Attribution(wkey, SlotsRuns[0])
		if err != nil {
			return nil, err
		}
		atts[wkey] = a
	}
	for _, st := range stages {
		row := []string{st.name}
		for _, wkey := range WorkloadOrder {
			a := atts[wkey]
			v := st.sel(a)
			share := 0.0
			if a.Total() > 0 {
				share = float64(v) / float64(a.Total()) * 100
			}
			row = append(row, fmt.Sprintf("%.1f (%2.0f%%)", float64(v)/(1<<20), share))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
