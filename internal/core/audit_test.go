package core

import (
	"reflect"
	"testing"

	"iochar/internal/faults"
)

// TestAuditOracles runs the post-run invariant audit on a healthy TeraSort
// and on one that loses a node mid-job: both must come back clean, and the
// canonical output checksums must agree — recovery restored the exact bytes.
func TestAuditOracles(t *testing.T) {
	opts := fastOpts
	opts.Audit = true
	healthy, err := RunOne(TS, tsFaultFactors, opts)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Audit == nil {
		t.Fatal("Options.Audit set but RunReport.Audit is nil")
	}
	if !healthy.Audit.Clean() {
		t.Fatalf("healthy run failed its own audit: %v", healthy.Audit.Violations())
	}
	if healthy.Audit.HDFSBlocks == 0 || len(healthy.Audit.OutputSums) == 0 {
		t.Fatalf("audit scanned nothing: %d blocks, %d output files",
			healthy.Audit.HDFSBlocks, len(healthy.Audit.OutputSums))
	}
	for path := range healthy.Audit.OutputSums {
		if !isOutputPath(path) {
			t.Errorf("non-output path %s in OutputSums", path)
		}
	}
	if isOutputPath("/bench/TS/in/part-0") || isOutputPath("/other/TS/out/x") {
		t.Error("isOutputPath misclassifies")
	}

	opts.Faults, err = faults.ParsePlan(killPlan)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := RunOne(TS, tsFaultFactors, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !faulty.Audit.Clean() {
		t.Fatalf("recovered run failed the audit: %v", faulty.Audit.Violations())
	}
	if !reflect.DeepEqual(healthy.Audit.OutputSums, faulty.Audit.OutputSums) {
		t.Errorf("canonical output checksums diverged under node loss:\n healthy %v\n faulty  %v",
			healthy.Audit.OutputSums, faulty.Audit.OutputSums)
	}
}

// TestAuditOffByDefault: without Options.Audit the report carries no audit —
// part of the healthy path's zero-overhead contract.
func TestAuditOffByDefault(t *testing.T) {
	rep, err := RunOne(AGG, SlotsRuns[0], fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Audit != nil {
		t.Error("RunReport.Audit set without Options.Audit")
	}
}
