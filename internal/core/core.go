// Package core is the characterization framework — the paper's experimental
// methodology as code. It assembles the simulated testbed (cluster, HDFS,
// MapReduce runtime), runs each workload under the paper's three factors
// (task slots, memory size, intermediate-data compression), samples the two
// disk groups with the iostat clone, and extracts the data behind every
// figure and table of the evaluation section.
//
// Scaling: experiments run at a capacity divisor (Options.Scale) with all
// byte ratios preserved. One deliberate deviation is documented here rather
// than hidden: the paper's 64 MB blocks imply ~16 000 map tasks for the
// 1 TB TeraSort; the simulated block size is raised so the largest workload
// runs ~512 map tasks (same multi-wave scheduling regime, tractable event
// counts), and the sort/shuffle buffers are scaled with the block so the
// spill behaviour per task matches the paper's configuration.
package core

import (
	"context"
	"fmt"
	"time"

	"iochar/internal/cluster"
	"iochar/internal/compress"
	"iochar/internal/cpustat"
	"iochar/internal/disk"
	"iochar/internal/faults"
	"iochar/internal/hdfs"
	"iochar/internal/iostat"
	"iochar/internal/mapred"
	"iochar/internal/netsim"
	"iochar/internal/sim"
	"iochar/internal/stats"
	"iochar/internal/workloads"
)

// SlotsConfig is one task-slot setting. The paper labels its two settings
// "1_8" and "2_16"; the text's reading of the pair is ambiguous, so this
// reproduction adopts the standard Hadoop 1.x sizing for a 12-core node —
// 8 map slots and 1 reduce slot per node for "1_8", both doubled for
// "2_16". The paper's finding (slot count leaves the four I/O metrics
// unchanged) is insensitive to the reading; see DESIGN.md.
type SlotsConfig struct {
	Name        string
	MapSlots    int
	ReduceSlots int
}

// The paper's two slot settings.
var (
	Slots1x8  = SlotsConfig{Name: "1_8", MapSlots: 8, ReduceSlots: 1}
	Slots2x16 = SlotsConfig{Name: "2_16", MapSlots: 16, ReduceSlots: 2}
)

// Factors is one cell of the experiment matrix.
type Factors struct {
	Slots    SlotsConfig
	MemoryGB int  // 16 or 32
	Compress bool // intermediate-data compression
}

// Label renders the paper's run naming, e.g. "AGG_1_8".
func (f Factors) Label(w Workload) string {
	return w.String() + "_" + f.Slots.Name
}

func (f Factors) cacheKey(w Workload) string {
	return fmt.Sprintf("%s/%s/m%d/c%v", w, f.Slots.Name, f.MemoryGB, f.Compress)
}

// Options configures the simulated testbed.
type Options struct {
	Scale          int64         // capacity divisor; default 1024
	Slaves         int           // default 10, as in the paper
	Seed           int64         // default 1
	SampleInterval time.Duration // iostat interval; default 1 s of virtual time
	// Racks splits the slaves across this many top-of-rack switches joined
	// by per-rack uplinks: slave i lands in rack i%Racks, the master in rack
	// 0, HDFS placement turns rack-aware (one writer-local replica, the rest
	// on one remote rack), and cross-rack transfers traverse both uplinks.
	// The default 1 keeps the paper's flat non-blocking fabric and is
	// byte-identical to builds without the topology layer.
	Racks int
	// UplinkBPS caps each rack uplink at this many bytes/second; 0 matches
	// the node NIC rate (non-blocking). Values below the NIC rate
	// oversubscribe the fabric. Meaningful only with Racks > 1.
	UplinkBPS int64
	// MapTaskTarget bounds the map-task count of the largest workload (see
	// the package comment); default 512.
	MapTaskTarget int64
	// InputFraction further shrinks every workload's input relative to
	// PaperInputBytes()/Scale (benchmarks use < 1 for speed); default 1.
	InputFraction float64
	// TraceAttach, when set, is called once per data disk before the run
	// with a stable device name ("slave-03.mr1") — the hook point for
	// internal/trace.Collector.Attach and other block-level observers.
	TraceAttach func(dev string, d *disk.Disk)
	// Histograms collects per-request await/svctm/size distributions for
	// each monitored device group (RunReport.HDFS.Hists and MR.Hists) via
	// the disk observer bus. Composes freely with TraceAttach observers;
	// off, it costs nothing.
	Histograms bool
	// FaultSlowDisk, when > 1, injects a degraded drive: the first slave's
	// first intermediate-data disk services every request this many times
	// slower — the classic straggler fault, visible end-to-end in job
	// runtime and in the per-disk %util/await distributions.
	FaultSlowDisk float64
	// SharedDataDisks pools HDFS and intermediate data on the same six
	// spindles instead of the paper's dedicated 3+3 layout — the
	// counterfactual behind the paper's observation 4 recommendation.
	SharedDataDisks bool
	// IntermediateTier selects the device class backing the
	// intermediate-data (spill/merge/shuffle) volumes. The zero value
	// (disk.ClassHDD) keeps the paper's all-mechanical testbed and is
	// byte-identical to builds without the tier feature; disk.ClassSSD
	// provisions the MR volumes on flash while HDFS data disks stay
	// mechanical — the tiering experiment the paper's small-random-write
	// observation motivates. Tiered runs also monitor per-class disk
	// groups (RunReport.Classes, "hdd"/"ssd").
	IntermediateTier disk.Class
	// SSD overrides the flash drive provisioned for a tiered run; nil
	// selects disk.DataCenterSSD(). The params must carry a non-nil SSD
	// model (read/write latency and bandwidth asymmetry, channel count).
	// Ignored unless IntermediateTier is disk.ClassSSD.
	SSD *disk.Params
	// Faults is a deterministic fault plan injected during the run (see
	// internal/faults for the syntax and event kinds). A non-empty plan
	// switches on HDFS recovery and MapReduce fault tolerance; with an empty
	// plan none of that machinery is instantiated and the run is
	// byte-identical to a fault-free build.
	Faults faults.Plan
	// Recovery tunes HDFS failure detection and repair for fault runs. Zero
	// fields default to Hadoop's knobs compressed by the same Scale factor as
	// SampleInterval, so detection latency stays proportionate to scaled run
	// lengths.
	Recovery hdfs.RecoveryConfig
	// MasterRecovery switches on master fault tolerance: metadata volumes are
	// provisioned on the master node, the NameNode journals every namespace
	// mutation (with periodic fsimage checkpoints) and the JobTracker
	// journals job state, both as real bytes through the disk models, and
	// both masters become killable and restartable. A fault plan carrying
	// restart-namenode/restart-jobtracker events implies the machinery even
	// when Enabled is false. Off, nothing is provisioned and the run is
	// byte-identical to a build without the master layer.
	MasterRecovery MasterRecovery
	// TuneMapred, when set, adjusts the derived MapReduce configuration just
	// before the runtime is built — the hook chaos testing uses to weaken
	// recovery budgets on purpose and prove the oracles catch it. Runs with
	// it set bypass the persistent cache (the closure is not serializable).
	TuneMapred func(*mapred.Config)
	// Integrity switches on end-to-end HDFS checksumming: per-chunk CRC32C
	// computed from the writer's bytes, verified on every streaming read,
	// with corrupt replicas reported and read-repaired. Off by default — a
	// healthy baseline carries no verification and is byte-identical to the
	// seed.
	Integrity bool
	// ScrubRate enables the background replica scrubber (implies Integrity's
	// machinery must be on; RunOne enforces the pairing). > 0 is a
	// bytes-per-second rate limit; < 0 runs unthrottled passes. 0 leaves the
	// scrubber off.
	ScrubRate int64
	// Audit switches on the post-run invariant audit (RunReport.Audit): HDFS
	// replication cross-check, localfs leak accounting, dirty-page check, and
	// canonical output checksums. It runs after monitoring stops, so measured
	// series are unaffected; healthy runs without it carry zero extra work.
	Audit bool
	// Inspect, when set, runs in simulation context after the workload (and
	// any fault recovery) completes, once monitoring has stopped — a hook for
	// tests and tools to read back HDFS contents and block placement while
	// the cluster still exists.
	Inspect func(p *sim.Proc, fs *hdfs.FS, cl *cluster.Cluster)
}

// MasterRecovery configures the journaled NameNode/JobTracker layers (see
// Options.MasterRecovery). Zero duration fields default to Hadoop-flavoured
// knobs compressed by the run's Scale factor, exactly as Recovery's do.
type MasterRecovery struct {
	// Enabled switches the master layers on even without master faults in
	// the plan — e.g. to measure the metadata I/O stream of a healthy run.
	Enabled bool
	// CheckpointInterval overrides how often each master rolls its journal
	// into a checkpoint image (default: 30 s compressed by Scale).
	CheckpointInterval time.Duration
	// SafeModeFrac overrides the fraction of pre-crash replicas block
	// reports must re-confirm before a restarted NameNode serves mutations
	// (default 0.999).
	SafeModeFrac float64
	// LeaseTimeout overrides the NameNode's hard lease limit (default: four
	// DataNode dead-timeouts, so lease recovery never races live failure
	// detection).
	LeaseTimeout time.Duration
}

// hdfsMasterConfig derives the NameNode's master config: MasterRecovery
// overrides where set, Scale-compressed defaults elsewhere, client retry
// backoff on the same timescale as the run.
func (o Options) hdfsMasterConfig() hdfs.MasterConfig {
	cfg := hdfs.MasterConfig{
		CheckpointInterval: o.MasterRecovery.CheckpointInterval,
		SafeModeFrac:       o.MasterRecovery.SafeModeFrac,
		LeaseTimeout:       o.MasterRecovery.LeaseTimeout,
		RetryBase:          scaleDur(200*time.Millisecond, o.Scale),
		RetryMax:           scaleDur(5*time.Second, o.Scale),
		Seed:               o.Seed + 1,
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = scaleDur(30*time.Second, o.Scale)
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 4 * o.Recovery.DeadTimeout
	}
	return cfg
}

// jtMasterConfig derives the JobTracker's master config on the same basis.
func (o Options) jtMasterConfig() mapred.MasterConfig {
	cfg := mapred.MasterConfig{
		CheckpointInterval: o.MasterRecovery.CheckpointInterval,
		RetryBase:          scaleDur(200*time.Millisecond, o.Scale),
		RetryMax:           scaleDur(5*time.Second, o.Scale),
		Seed:               o.Seed + 2,
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = scaleDur(30*time.Second, o.Scale)
	}
	return cfg
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1024
	}
	if o.Slaves <= 0 {
		o.Slaves = 10
	}
	if o.Racks <= 0 {
		o.Racks = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SampleInterval <= 0 {
		// The paper sampled iostat every second over runs of tens of
		// minutes; scaled runs are proportionally shorter, so the default
		// interval shrinks with Scale to keep sample counts comparable.
		o.SampleInterval = time.Duration(int64(time.Second) * 64 / o.Scale)
		if o.SampleInterval < time.Millisecond {
			o.SampleInterval = time.Millisecond
		}
	}
	if o.MapTaskTarget <= 0 {
		o.MapTaskTarget = 512
	}
	if o.InputFraction <= 0 || o.InputFraction > 1 {
		o.InputFraction = 1
	}
	if o.Recovery.HeartbeatInterval <= 0 {
		o.Recovery.HeartbeatInterval = scaleDur(3*time.Second, o.Scale)
	}
	if o.Recovery.DeadTimeout <= 0 {
		o.Recovery.DeadTimeout = 10 * o.Recovery.HeartbeatInterval
	}
	if o.Recovery.Streams <= 0 {
		o.Recovery.Streams = 2
	}
	if o.Faults.Seed == 0 {
		o.Faults.Seed = o.Seed
	}
	return o
}

// scaleDur compresses a wall-clock Hadoop timescale to the scaled testbed,
// with the same 64/Scale factor SampleInterval uses.
func scaleDur(d time.Duration, scale int64) time.Duration {
	d = time.Duration(int64(d) * 64 / scale)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// inputBytes returns a workload's scaled input volume.
func (o Options) inputBytes(w workloads.Workload) int64 {
	b := int64(float64(w.PaperInputBytes()) / float64(o.Scale) * o.InputFraction)
	if b < 64<<10 {
		b = 64 << 10
	}
	return b
}

// blockBytes picks the HDFS block size: the scaled 64 MB default, raised if
// needed so the largest workload stays near MapTaskTarget map tasks.
func (o Options) blockBytes() int64 {
	var maxInput int64
	for _, w := range workloads.All() {
		if b := o.inputBytes(w); b > maxInput {
			maxInput = b
		}
	}
	bs := (64 << 20) / o.Scale
	if byTasks := maxInput / o.MapTaskTarget; byTasks > bs {
		bs = byTasks
	}
	if bs < 64<<10 {
		bs = 64 << 10
	}
	return bs / 4096 * 4096
}

// RunReport is the outcome of one workload × factors execution.
type RunReport struct {
	Workload Workload
	Factors  Factors
	HDFS     *iostat.Report
	MR       *iostat.Report
	// CPUUtil is the cluster-wide mean CPU utilization over time (percent)
	// — the measurement behind Table 3's CPU-bound/I/O-bound labels.
	CPUUtil *stats.Series
	Jobs    []*mapred.Result
	Wall    time.Duration // virtual time from job submission to completion
	// Events is the number of kernel events the simulation dispatched end to
	// end — the deterministic work metric behind the benchmark harness's
	// events/sec throughput numbers.
	Events uint64
	// Network is the fabric's end-of-run accounting: per-NIC and per-uplink
	// bytes and busy time, retransmitted bytes, and failed transfers.
	Network *netsim.Stats

	// Classes holds the per-device-class iostat reports ("hdd"/"ssd") of a
	// tiered run; nil when the fleet is homogeneous (IntermediateTier off).
	Classes map[string]*iostat.Report

	// Fault-run observability; zero/nil for healthy runs.
	Recovery       hdfs.RecoveryStats        // HDFS repair work performed
	FaultsInjected []string                  // events that actually fired, in order
	FaultGroups    map[string]*iostat.Report // victim/survivor disk splits

	// Master-recovery observability; zero/nil unless the master layers ran.
	// Masters is the iostat report over the master node's metadata disks —
	// the edit-journal/checkpoint stream the paper's master traces show.
	Masters    *iostat.Report
	NameNode   hdfs.MasterStats
	JobTracker mapred.MasterStats

	// Audit is the post-run invariant audit; nil unless Options.Audit is set.
	Audit *AuditReport
}

// Runtime groups names for the monitored disk groups. The victim/survivor
// splits exist only on fault runs whose plan kills a node or DataNode: they
// re-sample the same disks partitioned by whether their node is a planned
// victim, so recovery traffic (re-replication onto survivors, the victim's
// flatline) is separable from the workload's own I/O.
const (
	GroupHDFS          = "HDFS"
	GroupMR            = "MapReduce"
	GroupHDFSVictims   = "HDFS-victims"
	GroupMRVictims     = "MapReduce-victims"
	GroupHDFSSurvivors = "HDFS-survivors"
	GroupMRSurvivors   = "MapReduce-survivors"
	// Recovering groups cover nodes a restart fault takes down and brings
	// back: their disks flatline during the outage, then absorb block-report
	// scans, journal replays, and any re-replication catch-up on rejoin.
	GroupHDFSRecovering = "HDFS-recovering"
	GroupMRRecovering   = "MapReduce-recovering"
	// GroupMasters covers the master node's metadata disks, monitored only
	// when master recovery is on (the only time those disks exist): the
	// NameNode edit-log/fsimage stream and the JobTracker job journal.
	GroupMasters = "masters"
	// Per-device-class groups, monitored only on tiered runs (where the
	// fleet actually has two classes): every mechanical spindle vs every
	// flash device, regardless of role. Series render as "hdd.*"/"ssd.*".
	GroupClassHDD = "hdd"
	GroupClassSSD = "ssd"
)

// RunOne builds a fresh testbed and executes one experiment cell.
func RunOne(w Workload, f Factors, opts Options) (*RunReport, error) {
	return RunOneContext(context.Background(), w, f, opts)
}

// RunOneContext is RunOne with cancellation: the context is threaded into
// the discrete-event loop, so a long cell aborts promptly when ctx is
// cancelled (returning ctx's error) instead of simulating to completion.
func RunOneContext(ctx context.Context, w Workload, f Factors, opts Options) (*RunReport, error) {
	opts = opts.withDefaults()
	if !w.Valid() {
		return nil, fmt.Errorf("core: invalid workload %d (use the Workload constants or ParseWorkload)", uint8(w))
	}
	wl, err := workloads.ByKey(w.String())
	if err != nil {
		return nil, err
	}
	env := sim.New(opts.Seed)
	hw := cluster.DefaultHardware(opts.Scale).WithMemoryGB(f.MemoryGB)
	hw.Racks = opts.Racks
	hw.UplinkBPS = opts.UplinkBPS
	// Scale artifact control: data volumes scale by Options.Scale but block
	// size only by the task-target factor, so per-stream readahead windows
	// are proportionally larger than on the real testbed. A full 128 KiB
	// window per stream would thrash the scaled cache at the high slot
	// count — a pure artifact. Bounding the window at 64 KiB and giving the
	// cache a modest floor keeps stream working sets inside the cache at
	// both slot levels, as they were on the real machines.
	hw.PageCacheOpts.ReadaheadMaxPages = 16
	hw.SharedDataDisks = opts.SharedDataDisks
	if opts.IntermediateTier == disk.ClassSSD {
		if opts.SharedDataDisks {
			return nil, fmt.Errorf("core: SharedDataDisks pools one set of spindles and cannot combine with an SSD intermediate tier")
		}
		ssd := disk.DataCenterSSD()
		if opts.SSD != nil {
			if opts.SSD.SSD == nil {
				return nil, fmt.Errorf("core: Options.SSD (%s) carries no flash model; use disk.DataCenterSSD() as a template", opts.SSD.Name)
			}
			ssd = *opts.SSD
		}
		hw.MRDiskParams = &ssd
	}
	cl, err := cluster.New(env, hw, opts.Slaves)
	if err != nil {
		return nil, err
	}

	// Extent granularity follows the block size: with 1 MiB extents under
	// sub-megabyte scaled blocks, allocation slack would dominate the
	// scaled disks' capacity (and fragmentation would vanish).
	extentSectors := opts.blockBytes() / 4 / 512
	if extentSectors < 64 {
		extentSectors = 64
	}
	if extentSectors > 2048 {
		extentSectors = 2048
	}
	for _, s := range cl.Slaves {
		for _, v := range s.HDFSVols {
			v.SetExtentSectors(extentSectors)
		}
		for _, v := range s.MRVols {
			v.SetExtentSectors(extentSectors)
		}
	}
	if opts.TraceAttach != nil {
		for _, s := range cl.Slaves {
			for _, d := range append(append([]*disk.Disk{}, s.HDFSDisks...), s.MRDisks...) {
				opts.TraceAttach(d.P.Name, d)
			}
		}
	}
	if opts.FaultSlowDisk > 1 {
		cl.Slaves[0].MRDisks[0].P.SlowFactor = opts.FaultSlowDisk
	}

	// Master recovery provisions the masters' metadata volumes; a plan with
	// master-restart events implies the machinery even when the option is
	// off, since the injector needs killable masters to aim at.
	masterOn := opts.MasterRecovery.Enabled || opts.Faults.HasMasterFaults()
	if masterOn {
		if err := cl.ProvisionMasterMeta(2); err != nil {
			return nil, err
		}
	}

	hcfg := hdfs.DefaultConfig(opts.Scale)
	hcfg.BlockSize = opts.blockBytes()
	// Seeds o.Seed+1/+2 belong to the master layers; +3/+4 drive the HDFS
	// and MapReduce clients' transient-network backoff jitter (healthy runs
	// never draw from them).
	hcfg.Seed = opts.Seed + 3
	fs := hdfs.New(env, hcfg, cl.Net, cl.Slaves)
	fs.SetMasterNode(cl.Master.Name)
	if opts.Integrity || opts.ScrubRate != 0 {
		// Enabled before Prepare so the sums are computed from the pristine
		// input bytes, ahead of any fault.
		fs.EnableIntegrity()
	}
	if masterOn {
		// Enabled before Prepare so experiment setup is journaled too: the
		// replayed namespace must cover every file, not just workload output.
		fs.EnableMaster(cl.Master.MetaVols[0], opts.hdfsMasterConfig())
	}

	mcfg := mapred.DefaultConfig(opts.Scale)
	mcfg.Seed = opts.Seed + 4
	mcfg.MapSlots = f.Slots.MapSlots
	mcfg.ReduceSlots = f.Slots.ReduceSlots
	// Buffers follow memory, as the testbed's io.sort.mb/shuffle budget did:
	// at 32 GB the sort buffer comfortably holds a full map output (one
	// spill); at 16 GB it does not (two spills) — Hadoop's 100 MB-per-64 MB
	// proportion.
	memFrac := float64(f.MemoryGB) / 32
	mcfg.SortBufBytes = int64(float64(hcfg.BlockSize) * 100 / 64 * memFrac)
	mcfg.ShuffleBufBytes = int64(float64(hcfg.BlockSize) * 140 / 64 * memFrac)
	if f.Compress {
		mcfg.Codec = compress.NewDeflate()
	}
	if opts.TuneMapred != nil {
		opts.TuneMapred(&mcfg)
	}
	rt, err := mapred.New(env, cl, fs, cl.Net, mcfg)
	if err != nil {
		return nil, err
	}
	if masterOn {
		rt.EnableMaster(cl.Master.MetaVols[1], opts.jtMasterConfig())
	}

	// Fault machinery is instantiated only when a plan exists: a healthy run
	// must carry zero extra events (heartbeats, monitors, workers) so its
	// counters and iostat output are byte-identical to the fault-free build.
	var inj *faults.Injector
	if !opts.Faults.Empty() {
		fs.EnableRecovery(opts.Recovery)
		rt.EnableFaults()
		inj = faults.New(env, cl, fs, rt, opts.Faults)
		if err := inj.Start(); err != nil {
			return nil, err
		}
	}
	if opts.ScrubRate != 0 {
		scfg := hdfs.ScrubConfig{PassInterval: scaleDur(30*time.Second, opts.Scale)}
		if opts.ScrubRate > 0 {
			scfg.BytesPerSec = opts.ScrubRate
		}
		fs.EnableScrubber(scfg)
	}

	wl.Prepare(fs, cl, opts.inputBytes(wl), opts.Seed)

	mon := iostat.NewMonitor(opts.SampleInterval)
	mon.AddGroup(GroupHDFS, cl.AllHDFSDisks()...)
	mon.AddGroup(GroupMR, cl.AllMRDisks()...)
	// Per-class groups only exist on a heterogeneous fleet: an untiered run
	// adds no groups, no events and no bytes of output, keeping the HDD-only
	// path byte-identical. The monitor's single sampling process covers all
	// groups, so the extra groups on tiered runs add no kernel events either.
	classGroups := opts.IntermediateTier == disk.ClassSSD
	if classGroups {
		mon.AddGroup(GroupClassHDD, cl.DisksByClass(disk.ClassHDD)...)
		mon.AddGroup(GroupClassSSD, cl.DisksByClass(disk.ClassSSD)...)
	}
	faultGroups := addFaultGroups(mon, cl, opts.Faults)
	if masterOn {
		mon.AddGroup(GroupMasters, cl.Master.MetaDisks...)
	}
	if opts.Histograms {
		mon.EnableHistograms()
	}
	mon.Start(env)
	cpu := cpustat.NewMonitor(opts.SampleInterval, cl.Slaves)
	cpu.Start(env)

	rep := &RunReport{Workload: w, Factors: f}
	var runErr error
	env.Go("driver", func(p *sim.Proc) {
		// The injector and recovery loops must stop even when the workload
		// fails, or their periodic events would keep Env.Run alive forever.
		defer func() {
			fs.StopScrubber()
			if inj != nil {
				inj.Stop()
				fs.StopRecovery()
			}
			fs.StopMaster()
			rt.StopMaster()
		}()
		start := p.Now()
		jobs, err := wl.Run(p, rt, fs, cl)
		if err != nil {
			runErr = err
			mon.Stop(p.Now())
			cpu.Stop(p.Now())
			return
		}
		if inj != nil {
			// A fault scheduled past the workload's natural end would fire
			// after the recovery barrier below and leave the cluster mid-
			// failure at audit time; run the clock past the last armed event
			// so every fault lands before recovery is awaited.
			if rem := inj.LastAt() + time.Millisecond - p.Now(); rem > 0 {
				p.Sleep(rem)
			}
			// A restarted master must finish its replay and leave safe mode
			// before block recovery is awaited — re-replication deliberately
			// stalls behind safe mode.
			fs.WaitMasterReady(p)
			rt.WaitMasterReady(p)
			// Let detection and re-replication finish inside the monitored
			// window, so the iostat series shows the recovery traffic.
			fs.WaitRecovered(p)
		}
		if opts.ScrubRate != 0 {
			// Wait out one full scrub pass over the settled namespace, then
			// any read-repair it queued: silent corruption in blocks the
			// workload never re-read is still found and fixed inside the
			// monitored window.
			fs.ScrubWait(p)
			fs.WaitRecovered(p)
		}
		// Drain pending journal bytes so iostat and the audit account the
		// full metadata stream (no-ops without the master layers).
		fs.MasterFlush(p)
		rt.MasterFlush(p)
		cl.SyncAll(p) // flush caches so iostat sees all writes
		rep.Jobs = jobs
		rep.Wall = p.Now() - start
		mon.Stop(p.Now())
		cpu.Stop(p.Now())
		if opts.Audit {
			rep.Audit = auditRun(p, fs, cl)
		}
		if opts.Inspect != nil {
			opts.Inspect(p, fs, cl)
		}
	})
	if _, err := env.RunContext(ctx, 0); err != nil {
		// The simulation was abandoned mid-flight; nothing in rep is usable.
		return nil, fmt.Errorf("core: %s: %w", f.cacheKey(w), err)
	}
	if runErr != nil {
		return nil, fmt.Errorf("core: %s: %w", f.cacheKey(w), runErr)
	}
	rep.Events = env.Events()
	rep.HDFS = mon.Report(GroupHDFS)
	rep.MR = mon.Report(GroupMR)
	if classGroups {
		rep.Classes = map[string]*iostat.Report{
			GroupClassHDD: mon.Report(GroupClassHDD),
			GroupClassSSD: mon.Report(GroupClassSSD),
		}
	}
	rep.CPUUtil = cpu.Util()
	rep.Network = cl.Net.Stats()
	if masterOn {
		rep.Masters = mon.Report(GroupMasters)
		rep.NameNode = fs.MasterStats()
		rep.JobTracker = rt.MasterStats()
	}
	if inj != nil {
		rep.Recovery = fs.RecoveryStats()
		rep.FaultsInjected = inj.Fired()
		if len(faultGroups) > 0 {
			rep.FaultGroups = make(map[string]*iostat.Report, len(faultGroups))
			for _, name := range faultGroups {
				rep.FaultGroups[name] = mon.Report(name)
			}
		}
	}
	return rep, nil
}

// addFaultGroups registers victim/survivor disk groups for plans that kill a
// node or its DataNode, returning the group names added. Victims are known
// statically from the plan, so the split covers the whole run — including
// the healthy period before the fault fires.
func addFaultGroups(mon *iostat.Monitor, cl *cluster.Cluster, plan faults.Plan) []string {
	victim := map[string]bool{}
	recovering := map[string]bool{}
	for _, ev := range plan.Events {
		switch ev.Kind {
		case faults.KillNode, faults.KillDataNode:
			victim[ev.Node] = true
		case faults.RestartNode, faults.RestartDataNode:
			recovering[ev.Node] = true
		}
	}
	if len(victim) == 0 && len(recovering) == 0 {
		return nil
	}
	var vh, vm, rh, rm, sh, sm []*disk.Disk
	for _, s := range cl.Slaves {
		switch {
		case victim[s.Name]:
			vh = append(vh, s.HDFSDisks...)
			vm = append(vm, s.MRDisks...)
		case recovering[s.Name]:
			rh = append(rh, s.HDFSDisks...)
			rm = append(rm, s.MRDisks...)
		default:
			sh = append(sh, s.HDFSDisks...)
			sm = append(sm, s.MRDisks...)
		}
	}
	var names []string
	add := func(name string, disks []*disk.Disk) {
		if len(disks) > 0 {
			mon.AddGroup(name, disks...)
			names = append(names, name)
		}
	}
	add(GroupHDFSVictims, vh)
	add(GroupMRVictims, vm)
	add(GroupHDFSRecovering, rh)
	add(GroupMRRecovering, rm)
	add(GroupHDFSSurvivors, sh)
	add(GroupMRSurvivors, sm)
	return names
}

// WorkloadOrder is the paper's figure ordering.
var WorkloadOrder = []Workload{AGG, TS, KM, PR}

// Factor settings for the three experiment families (baselines per the
// paper's figure captions).
var (
	// SlotsRuns: memory 16 GB, compression on (Figure 1 caption).
	SlotsRuns = []Factors{
		{Slots: Slots1x8, MemoryGB: 16, Compress: true},
		{Slots: Slots2x16, MemoryGB: 16, Compress: true},
	}
	// MemoryRuns: slots 1_8, compression off (Figure 2 caption).
	MemoryRuns = []Factors{
		{Slots: Slots1x8, MemoryGB: 16, Compress: false},
		{Slots: Slots1x8, MemoryGB: 32, Compress: false},
	}
	// CompressRuns: 32 GB, slots 1_8 (Figure 3 caption).
	CompressRuns = []Factors{
		{Slots: Slots1x8, MemoryGB: 32, Compress: false},
		{Slots: Slots1x8, MemoryGB: 32, Compress: true},
	}
)

// FactorLabel names a factor level for display ("1_8"/"2_16", "16G"/"32G",
// "off"/"on") by experiment family.
func FactorLabel(family string, f Factors) string {
	switch family {
	case "slots":
		return f.Slots.Name
	case "memory":
		return fmt.Sprintf("%dG", f.MemoryGB)
	case "compress":
		if f.Compress {
			return "on"
		}
		return "off"
	}
	return "?"
}
