package core

import (
	"time"

	"iochar/internal/cluster"
	"iochar/internal/disk"
	"iochar/internal/faults"
	"iochar/internal/hdfs"
	"iochar/internal/mapred"
	"iochar/internal/sim"
)

// Option configures the simulated testbed, one knob at a time — the
// composable successor to filling Options fields by hand. Options sprawled
// as PRs bolted on booleans (Audit, Integrity, Histograms, fault plans,
// tuning hooks); the With* constructors gather those knobs behind one
// pattern, matching the suite's WithParallelism/WithCacheDir style.
//
// Build a testbed configuration with NewOptions:
//
//	opts := core.NewOptions(
//	    core.WithScale(4096),
//	    core.WithHistograms(),
//	    core.WithAudit(),
//	)
//
// The Options struct remains usable directly as a thin compatibility layer
// for one release; new knobs land here first.
type Option func(*Options)

// NewOptions builds an Options value from functional options. Zero fields
// keep the documented defaults (scale 1024, 10 slaves, seed 1, ...), applied
// by the runners exactly as for a hand-filled struct.
func NewOptions(opts ...Option) Options {
	var o Options
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// With applies additional options to an existing configuration — the bridge
// for callers migrating from the struct form.
func (o Options) With(opts ...Option) Options {
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// WithScale sets the capacity divisor versus the paper's testbed.
func WithScale(scale int64) Option { return func(o *Options) { o.Scale = scale } }

// WithSlaves sets the number of slave nodes.
func WithSlaves(n int) Option { return func(o *Options) { o.Slaves = n } }

// WithRacks splits the slaves across n top-of-rack switches (slave i in
// rack i%n): HDFS placement turns rack-aware and cross-rack transfers
// traverse the rack uplinks. n <= 1 keeps the flat fabric.
func WithRacks(n int) Option { return func(o *Options) { o.Racks = n } }

// WithUplink caps each rack uplink at bps bytes/second; 0 matches the node
// NIC rate (non-blocking). Meaningful only with WithRacks(n > 1).
func WithUplink(bps int64) Option { return func(o *Options) { o.UplinkBPS = bps } }

// WithSeed sets the simulation seed.
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithSampleInterval sets the iostat sampling interval in virtual time.
func WithSampleInterval(d time.Duration) Option {
	return func(o *Options) { o.SampleInterval = d }
}

// WithMapTaskTarget bounds the map-task count of the largest workload.
func WithMapTaskTarget(n int64) Option { return func(o *Options) { o.MapTaskTarget = n } }

// WithInputFraction shrinks every workload's input relative to the scaled
// paper volume (0 < f <= 1).
func WithInputFraction(f float64) Option { return func(o *Options) { o.InputFraction = f } }

// WithHistograms collects per-request await/svctm/size distributions for
// each monitored device group.
func WithHistograms() Option { return func(o *Options) { o.Histograms = true } }

// WithAudit switches on the post-run invariant audit (RunReport.Audit).
func WithAudit() Option { return func(o *Options) { o.Audit = true } }

// WithIntegrity switches on end-to-end HDFS checksumming: per-chunk CRC32C
// computed at write time and verified on every streaming read.
func WithIntegrity() Option { return func(o *Options) { o.Integrity = true } }

// WithScrubRate enables the background replica scrubber (> 0 limits
// bytes/sec, < 0 runs unthrottled). Implies the integrity machinery.
func WithScrubRate(rate int64) Option { return func(o *Options) { o.ScrubRate = rate } }

// WithMasterRecovery switches on master fault tolerance: journaled
// NameNode/JobTracker state on provisioned metadata disks, crash–restart
// recovery, and failover-aware clients. Master-restart fault plans imply it.
func WithMasterRecovery() Option {
	return func(o *Options) { o.MasterRecovery.Enabled = true }
}

// WithFaults injects a deterministic fault plan during the run.
func WithFaults(plan faults.Plan) Option { return func(o *Options) { o.Faults = plan } }

// WithRecovery tunes HDFS failure detection and repair for fault runs.
func WithRecovery(cfg hdfs.RecoveryConfig) Option { return func(o *Options) { o.Recovery = cfg } }

// WithFaultSlowDisk degrades the first slave's first intermediate-data disk
// by the given service-time multiplier (> 1) — the classic straggler fault.
func WithFaultSlowDisk(factor float64) Option {
	return func(o *Options) { o.FaultSlowDisk = factor }
}

// WithSharedDataDisks pools HDFS and intermediate data on the same spindles
// instead of the paper's dedicated 3+3 layout.
func WithSharedDataDisks() Option { return func(o *Options) { o.SharedDataDisks = true } }

// WithIntermediateTier selects the device class backing the
// intermediate-data (spill/merge/shuffle) volumes: disk.ClassHDD keeps the
// paper's all-mechanical layout, disk.ClassSSD provisions the MR volumes on
// flash while HDFS data disks stay mechanical. Tiered runs add per-class
// iostat groups to the report (RunReport.Classes).
func WithIntermediateTier(c disk.Class) Option {
	return func(o *Options) { o.IntermediateTier = c }
}

// WithSSDParams overrides the flash drive a tiered run provisions (the
// default is disk.DataCenterSSD()); p must carry a non-nil SSD model. It has
// no effect unless WithIntermediateTier(disk.ClassSSD) is also set.
func WithSSDParams(p disk.Params) Option {
	return func(o *Options) { o.SSD = &p }
}

// WithTraceAttach installs the per-disk observer hook, called once per data
// disk before the run. Runs with it set bypass the persistent cache.
func WithTraceAttach(fn func(dev string, d *disk.Disk)) Option {
	return func(o *Options) { o.TraceAttach = fn }
}

// WithTuneMapred adjusts the derived MapReduce configuration just before the
// runtime is built. Runs with it set bypass the persistent cache.
func WithTuneMapred(fn func(*mapred.Config)) Option {
	return func(o *Options) { o.TuneMapred = fn }
}

// WithInspect installs the post-run simulation-context hook. Runs with it
// set bypass the persistent cache.
func WithInspect(fn func(p *sim.Proc, fs *hdfs.FS, cl *cluster.Cluster)) Option {
	return func(o *Options) { o.Inspect = fn }
}
