package netsim

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"iochar/internal/sim"
)

func TestTransferTimeMatchesBandwidth(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0) // 100 MiB/s, no latency
	n.AddNode("a")
	n.AddNode("b")
	var took time.Duration
	env.Go("t", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, "a", "b", 100<<20)
		took = p.Now() - start
	})
	env.Run(0)
	if took < 990*time.Millisecond || took > 1010*time.Millisecond {
		t.Errorf("100 MiB at 100 MiB/s took %v, want ~1s", took)
	}
}

func TestDisjointFlowsRunInParallel(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	for _, name := range []string{"a", "b", "c", "d"} {
		n.AddNode(name)
	}
	var end time.Duration
	done := func(p *sim.Proc) {
		if p.Now() > end {
			end = p.Now()
		}
	}
	env.Go("t1", func(p *sim.Proc) { n.Transfer(p, "a", "b", 100<<20); done(p) })
	env.Go("t2", func(p *sim.Proc) { n.Transfer(p, "c", "d", 100<<20); done(p) })
	env.Run(0)
	if end > 1100*time.Millisecond {
		t.Errorf("disjoint flows took %v, want ~1s (parallel)", end)
	}
}

func TestSharedNICFlowsSerialize(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	for _, name := range []string{"a", "b", "c"} {
		n.AddNode(name)
	}
	var end time.Duration
	track := func(p *sim.Proc) {
		if p.Now() > end {
			end = p.Now()
		}
	}
	// Both flows transmit from a: combined 2x data through one NIC.
	env.Go("t1", func(p *sim.Proc) { n.Transfer(p, "a", "b", 100<<20); track(p) })
	env.Go("t2", func(p *sim.Proc) { n.Transfer(p, "a", "c", 100<<20); track(p) })
	env.Run(0)
	if end < 1900*time.Millisecond {
		t.Errorf("shared-NIC flows finished in %v, want ~2s (bandwidth shared)", end)
	}
}

func TestChunkingInterleavesFairly(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	for _, name := range []string{"a", "b", "c"} {
		n.AddNode(name)
	}
	var small, big time.Duration
	env.Go("big", func(p *sim.Proc) {
		n.Transfer(p, "a", "b", 200<<20)
		big = p.Now()
	})
	env.Go("small", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // arrive second
		n.Transfer(p, "a", "c", 1<<20)
		small = p.Now()
	})
	env.Run(0)
	// Chunked sharing: the small transfer must not wait for the whole big one.
	if small >= big {
		t.Errorf("small transfer finished at %v, after big at %v; no interleaving", small, big)
	}
}

func TestLoopbackCostsLatencyOnly(t *testing.T) {
	env := sim.New(1)
	n := New(env, 1<<20, time.Millisecond) // slow NIC, visible latency
	n.AddNode("a")
	var took time.Duration
	env.Go("t", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, "a", "a", 100<<20)
		took = p.Now() - start
	})
	env.Run(0)
	if took != time.Millisecond {
		t.Errorf("loopback took %v, want 1ms latency only", took)
	}
}

func TestByteAccounting(t *testing.T) {
	env := sim.New(1)
	n := Gigabit(env)
	a, b := n.AddNode("a"), n.AddNode("b")
	env.Go("t", func(p *sim.Proc) {
		n.Transfer(p, "a", "b", 12345)
		n.Transfer(p, "b", "a", 11)
	})
	env.Run(0)
	if a.BytesSent() != 12345 || b.BytesReceived() != 12345 {
		t.Errorf("a->b accounting wrong: %d/%d", a.BytesSent(), b.BytesReceived())
	}
	if b.BytesSent() != 11 || a.BytesReceived() != 11 {
		t.Errorf("b->a accounting wrong: %d/%d", b.BytesSent(), a.BytesReceived())
	}
}

func TestZeroTransferNoop(t *testing.T) {
	env := sim.New(1)
	n := Gigabit(env)
	n.AddNode("a")
	n.AddNode("b")
	env.Go("t", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, "a", "b", 0)
		if p.Now() != start {
			t.Error("zero transfer advanced time")
		}
	})
	env.Run(0)
}

func TestUnregisteredNodePanics(t *testing.T) {
	env := sim.New(1)
	n := Gigabit(env)
	n.AddNode("a")
	env.Go("t", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		n.Transfer(p, "a", "ghost", 10)
	})
	env.Run(0)
}

func TestDuplicateNodePanics(t *testing.T) {
	env := sim.New(1)
	n := Gigabit(env)
	n.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	n.AddNode("a")
}

func TestManyToOneConvergecastSerializesAtReceiver(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	n.AddNode("sink")
	for i := 0; i < 4; i++ {
		n.AddNode(string(rune('a' + i)))
	}
	var end time.Duration
	for i := 0; i < 4; i++ {
		src := string(rune('a' + i))
		env.Go(src, func(p *sim.Proc) {
			n.Transfer(p, src, "sink", 50<<20)
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	env.Run(0)
	// 200 MiB must pass through the sink's rx at 100 MiB/s: >= 2s.
	if end < 1900*time.Millisecond {
		t.Errorf("convergecast finished in %v, want ~2s (rx-bound)", end)
	}
}

func TestTypedDownErrorBothDirections(t *testing.T) {
	env := sim.New(1)
	n := Gigabit(env)
	n.AddNode("a")
	n.AddNode("b")
	n.SetDown("b", true)
	env.Go("t", func(p *sim.Proc) {
		for _, dir := range [][2]string{{"a", "b"}, {"b", "a"}} {
			err := n.TryTransfer(p, dir[0], dir[1], 10)
			var de *DownError
			if !errors.As(err, &de) || de.Node != "b" {
				t.Errorf("%v -> %v: got %v, want *DownError{b}", dir[0], dir[1], err)
			}
			if !errors.Is(err, ErrUnreachable) {
				t.Errorf("%v not ErrUnreachable", err)
			}
			if errors.Is(err, ErrTransient) {
				t.Errorf("down node matched ErrTransient; crashes are not transient")
			}
		}
	})
	env.Run(0)
}

func TestOversubscribedUplinkSerializesCrossRack(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	n.SetRacks(2, 50<<20) // uplink at half the NIC rate
	n.AddNodeRack("a0", 0)
	n.AddNodeRack("a1", 0)
	n.AddNodeRack("b0", 1)
	n.AddNodeRack("b1", 1)
	var end time.Duration
	track := func(p *sim.Proc) {
		if p.Now() > end {
			end = p.Now()
		}
	}
	// Two disjoint cross-rack flows share rack 0's 50 MiB/s uplink:
	// 200 MiB total through it takes >= 4s.
	env.Go("t1", func(p *sim.Proc) { n.Transfer(p, "a0", "b0", 100<<20); track(p) })
	env.Go("t2", func(p *sim.Proc) { n.Transfer(p, "a1", "b1", 100<<20); track(p) })
	env.Run(0)
	if end < 3900*time.Millisecond {
		t.Errorf("cross-rack flows finished in %v, want ~4s (uplink-bound)", end)
	}
	st := n.Stats()
	if len(st.Uplinks) != 2 {
		t.Fatalf("want 2 uplinks in stats, got %d", len(st.Uplinks))
	}
	if st.Uplinks[0].BytesUp != 200<<20 || st.Uplinks[1].BytesDown != 200<<20 {
		t.Errorf("uplink byte accounting wrong: %+v", st.Uplinks)
	}
}

func TestSameRackFlowsSkipUplink(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	n.SetRacks(2, 1<<20) // absurdly slow uplink must not matter intra-rack
	n.AddNodeRack("a0", 0)
	n.AddNodeRack("a1", 0)
	n.AddNodeRack("b0", 1)
	var took time.Duration
	env.Go("t", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, "a0", "a1", 100<<20)
		took = p.Now() - start
	})
	env.Run(0)
	if took > 1100*time.Millisecond {
		t.Errorf("same-rack transfer took %v, want ~1s (no uplink hop)", took)
	}
	if st := n.Stats(); st.Uplinks[0].BytesUp != 0 {
		t.Errorf("same-rack transfer charged the uplink: %+v", st.Uplinks[0])
	}
}

func TestPartitionSeversAndHeals(t *testing.T) {
	env := sim.New(1)
	n := Gigabit(env)
	n.AddNode("a")
	n.AddNode("b")
	n.AddNode("c")
	n.Partition("p1", []string{"b", "c"})
	env.Go("t", func(p *sim.Proc) {
		err := n.TryTransfer(p, "a", "b", 10)
		var pe *PartitionError
		if !errors.As(err, &pe) {
			t.Fatalf("got %v, want *PartitionError", err)
		}
		if !errors.Is(err, ErrUnreachable) || !errors.Is(err, ErrTransient) {
			t.Errorf("partition error should match ErrUnreachable and ErrTransient")
		}
		// Inside the minority partition traffic still flows.
		if err := n.TryTransfer(p, "b", "c", 10); err != nil {
			t.Errorf("intra-partition transfer failed: %v", err)
		}
		if n.Reachable("a", "b") || !n.Reachable("b", "c") {
			t.Error("Reachable disagrees with partition boundary")
		}
		n.Heal("p1")
		if err := n.TryTransfer(p, "a", "b", 10); err != nil {
			t.Errorf("post-heal transfer failed: %v", err)
		}
	})
	env.Run(0)
}

func TestPartitionSeversInFlightTransfer(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	n.AddNode("a")
	n.AddNode("b")
	var err error
	env.Go("t", func(p *sim.Proc) {
		err = n.TryTransfer(p, "a", "b", 100<<20) // ~1s healthy
	})
	env.Go("chaos", func(p *sim.Proc) {
		p.Sleep(100 * time.Millisecond)
		n.Partition("mid", []string{"b"})
	})
	env.Run(0)
	if !errors.Is(err, ErrTransient) {
		t.Errorf("in-flight transfer got %v, want transient partition error", err)
	}
}

func TestSlowNICStretchesTransfer(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	n.AddNode("a")
	n.AddNode("b")
	n.SetNICSlow("b", 4)
	var took time.Duration
	env.Go("t", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, "a", "b", 100<<20)
		took = p.Now() - start
	})
	env.Run(0)
	if took < 3900*time.Millisecond || took > 4100*time.Millisecond {
		t.Errorf("transfer through 4x-slow NIC took %v, want ~4s", took)
	}
	n.SetNICSlow("b", 1) // restore
	var again time.Duration
	env2 := env
	_ = env2
	env.Go("t2", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, "a", "b", 100<<20)
		again = p.Now() - start
	})
	env.Run(0)
	if again > 1100*time.Millisecond {
		t.Errorf("restored NIC took %v, want ~1s", again)
	}
}

func TestSlowUplinkOnlyAffectsCrossRack(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	n.SetRacks(2, 100<<20)
	n.AddNodeRack("a0", 0)
	n.AddNodeRack("a1", 0)
	n.AddNodeRack("b0", 1)
	n.SetUplinkSlow(0, 10)
	var cross, local time.Duration
	env.Go("cross", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, "a0", "b0", 10<<20)
		cross = p.Now() - start
	})
	env.Go("local", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, "a1", "a0", 10<<20)
		local = p.Now() - start
	})
	env.Run(0)
	if cross < 900*time.Millisecond {
		t.Errorf("cross-rack through 10x-slow uplink took %v, want ~1s", cross)
	}
	if local > 300*time.Millisecond {
		t.Errorf("intra-rack transfer took %v; slow uplink leaked into the rack", local)
	}
}

func TestDropRetransmitsAndCounts(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	n.AddNode("a")
	n.AddNode("b")
	n.SetDrop("b", 0.5, rand.New(rand.NewSource(7)))
	var clean, lossy time.Duration
	env.Go("t", func(p *sim.Proc) {
		start := p.Now()
		if err := n.TryTransfer(p, "a", "b", 50<<20); err != nil {
			t.Errorf("lossy transfer failed outright: %v", err)
		}
		lossy = p.Now() - start
		n.ClearDrop("b")
		start = p.Now()
		n.Transfer(p, "a", "b", 50<<20)
		clean = p.Now() - start
	})
	env.Run(0)
	if lossy <= clean {
		t.Errorf("lossy transfer (%v) not slower than clean (%v)", lossy, clean)
	}
	st := n.Stats()
	if st.DroppedChunks == 0 {
		t.Error("no dropped chunks counted on a 50% lossy path")
	}
	if st.NICs[0].RetransBytes == 0 {
		t.Error("no retransmitted bytes charged to the sender")
	}
}

func TestDeadDropPathFailsTransient(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	n.AddNode("a")
	n.AddNode("b")
	n.SetDrop("b", 1.0, rand.New(rand.NewSource(1)))
	env.Go("t", func(p *sim.Proc) {
		err := n.TryTransfer(p, "a", "b", 10<<20)
		var de *DropError
		if !errors.As(err, &de) {
			t.Fatalf("got %v, want *DropError", err)
		}
		if !errors.Is(err, ErrTransient) || !errors.Is(err, ErrUnreachable) {
			t.Error("drop error should match ErrTransient and ErrUnreachable")
		}
	})
	env.Run(0)
}

func TestRackAssignmentHelpers(t *testing.T) {
	env := sim.New(1)
	n := Gigabit(env)
	n.SetRacks(2, 0)
	n.AddNodeRack("m", 0)
	n.AddNodeRack("s1", 1)
	n.AddNodeRack("s2", 0)
	if n.RackOf("s1") != 1 || n.RackOf("m") != 0 {
		t.Error("RackOf wrong")
	}
	got := n.RackNodes(0)
	if len(got) != 2 || got[0] != "m" || got[1] != "s2" {
		t.Errorf("RackNodes(0) = %v, want [m s2] in registration order", got)
	}
	if n.Racks() != 2 {
		t.Errorf("Racks() = %d, want 2", n.Racks())
	}
}

func TestHealthyRunDrawsNoRandomness(t *testing.T) {
	// Byte-identity guard: with no faults configured the fabric must not
	// consult any rng, so two identical runs produce identical event counts.
	walls := make([]time.Duration, 2)
	for i := range walls {
		env := sim.New(1)
		n := New(env, 100<<20, 0)
		n.AddNode("a")
		n.AddNode("b")
		env.Go("t", func(p *sim.Proc) { n.Transfer(p, "a", "b", 64<<20) })
		env.Run(0)
		walls[i] = env.Now()
	}
	if walls[0] != walls[1] {
		t.Errorf("healthy runs diverged: %v vs %v", walls[0], walls[1])
	}
}
