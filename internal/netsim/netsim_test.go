package netsim

import (
	"testing"
	"time"

	"iochar/internal/sim"
)

func TestTransferTimeMatchesBandwidth(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0) // 100 MiB/s, no latency
	n.AddNode("a")
	n.AddNode("b")
	var took time.Duration
	env.Go("t", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, "a", "b", 100<<20)
		took = p.Now() - start
	})
	env.Run(0)
	if took < 990*time.Millisecond || took > 1010*time.Millisecond {
		t.Errorf("100 MiB at 100 MiB/s took %v, want ~1s", took)
	}
}

func TestDisjointFlowsRunInParallel(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	for _, name := range []string{"a", "b", "c", "d"} {
		n.AddNode(name)
	}
	var end time.Duration
	done := func(p *sim.Proc) {
		if p.Now() > end {
			end = p.Now()
		}
	}
	env.Go("t1", func(p *sim.Proc) { n.Transfer(p, "a", "b", 100<<20); done(p) })
	env.Go("t2", func(p *sim.Proc) { n.Transfer(p, "c", "d", 100<<20); done(p) })
	env.Run(0)
	if end > 1100*time.Millisecond {
		t.Errorf("disjoint flows took %v, want ~1s (parallel)", end)
	}
}

func TestSharedNICFlowsSerialize(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	for _, name := range []string{"a", "b", "c"} {
		n.AddNode(name)
	}
	var end time.Duration
	track := func(p *sim.Proc) {
		if p.Now() > end {
			end = p.Now()
		}
	}
	// Both flows transmit from a: combined 2x data through one NIC.
	env.Go("t1", func(p *sim.Proc) { n.Transfer(p, "a", "b", 100<<20); track(p) })
	env.Go("t2", func(p *sim.Proc) { n.Transfer(p, "a", "c", 100<<20); track(p) })
	env.Run(0)
	if end < 1900*time.Millisecond {
		t.Errorf("shared-NIC flows finished in %v, want ~2s (bandwidth shared)", end)
	}
}

func TestChunkingInterleavesFairly(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	for _, name := range []string{"a", "b", "c"} {
		n.AddNode(name)
	}
	var small, big time.Duration
	env.Go("big", func(p *sim.Proc) {
		n.Transfer(p, "a", "b", 200<<20)
		big = p.Now()
	})
	env.Go("small", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // arrive second
		n.Transfer(p, "a", "c", 1<<20)
		small = p.Now()
	})
	env.Run(0)
	// Chunked sharing: the small transfer must not wait for the whole big one.
	if small >= big {
		t.Errorf("small transfer finished at %v, after big at %v; no interleaving", small, big)
	}
}

func TestLoopbackCostsLatencyOnly(t *testing.T) {
	env := sim.New(1)
	n := New(env, 1<<20, time.Millisecond) // slow NIC, visible latency
	n.AddNode("a")
	var took time.Duration
	env.Go("t", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, "a", "a", 100<<20)
		took = p.Now() - start
	})
	env.Run(0)
	if took != time.Millisecond {
		t.Errorf("loopback took %v, want 1ms latency only", took)
	}
}

func TestByteAccounting(t *testing.T) {
	env := sim.New(1)
	n := Gigabit(env)
	a, b := n.AddNode("a"), n.AddNode("b")
	env.Go("t", func(p *sim.Proc) {
		n.Transfer(p, "a", "b", 12345)
		n.Transfer(p, "b", "a", 11)
	})
	env.Run(0)
	if a.BytesSent() != 12345 || b.BytesReceived() != 12345 {
		t.Errorf("a->b accounting wrong: %d/%d", a.BytesSent(), b.BytesReceived())
	}
	if b.BytesSent() != 11 || a.BytesReceived() != 11 {
		t.Errorf("b->a accounting wrong: %d/%d", b.BytesSent(), a.BytesReceived())
	}
}

func TestZeroTransferNoop(t *testing.T) {
	env := sim.New(1)
	n := Gigabit(env)
	n.AddNode("a")
	n.AddNode("b")
	env.Go("t", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, "a", "b", 0)
		if p.Now() != start {
			t.Error("zero transfer advanced time")
		}
	})
	env.Run(0)
}

func TestUnregisteredNodePanics(t *testing.T) {
	env := sim.New(1)
	n := Gigabit(env)
	n.AddNode("a")
	env.Go("t", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		n.Transfer(p, "a", "ghost", 10)
	})
	env.Run(0)
}

func TestDuplicateNodePanics(t *testing.T) {
	env := sim.New(1)
	n := Gigabit(env)
	n.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	n.AddNode("a")
}

func TestManyToOneConvergecastSerializesAtReceiver(t *testing.T) {
	env := sim.New(1)
	n := New(env, 100<<20, 0)
	n.AddNode("sink")
	for i := 0; i < 4; i++ {
		n.AddNode(string(rune('a' + i)))
	}
	var end time.Duration
	for i := 0; i < 4; i++ {
		src := string(rune('a' + i))
		env.Go(src, func(p *sim.Proc) {
			n.Transfer(p, src, "sink", 50<<20)
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	env.Run(0)
	// 200 MiB must pass through the sink's rx at 100 MiB/s: >= 2s.
	if end < 1900*time.Millisecond {
		t.Errorf("convergecast finished in %v, want ~2s (rx-bound)", end)
	}
}
