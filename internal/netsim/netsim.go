// Package netsim models the cluster network as a two-tier rack topology:
// one full-duplex NIC per node attached to its rack's top-of-rack switch,
// with racks joined by configurable (oversubscribable) uplinks. The default
// is a single rack, which degenerates to the paper's flat non-blocking
// 1 GbE switch. Transfers are chunked; each chunk holds the sender's
// transmit side, any rack uplinks on the path, and the receiver's receive
// side for its serialization time, so concurrent flows through the same NIC
// or uplink interleave approximately fairly while disjoint flows proceed in
// parallel. Acquisition is always in fixed class order (tx, uplink-up,
// uplink-down, rx) with at most one resource per class, which excludes
// deadlock by construction.
//
// The fabric is also a fault target: nodes can be down, the cluster can be
// partitioned along arbitrary node-set boundaries, NICs and uplinks can be
// fail-slow by a factor, and paths can drop chunks with a probability
// (modelled as retransmissions, surfacing a transient error only when a
// chunk fails repeatedly). Failed transfers return typed errors that
// callers match with errors.Is/errors.As: all failures match
// ErrUnreachable; partition and drop failures also match ErrTransient,
// because they heal on a schedule.
package netsim

import (
	"errors"
	"math/rand"
	"sort"
	"time"

	"iochar/internal/sim"
)

// DefaultChunk is the transfer interleaving granularity.
const DefaultChunk = 256 << 10 // 256 KiB

// maxChunkAttempts bounds consecutive retransmissions of one chunk on a
// lossy path before the transfer surfaces a *DropError. With drop
// probability p the chance of hitting the bound is p^8, so moderate loss
// costs only time while a near-dead link fails fast.
const maxChunkAttempts = 8

// ErrUnreachable matches every transfer failure: down endpoints, severed
// partitions, and paths whose loss rate exhausted the retransmit budget.
var ErrUnreachable = errors.New("netsim: unreachable")

// ErrTransient matches failures that heal on a schedule (partitions and
// lossy links) but not crashed endpoints: a client that sees ErrTransient
// should back off and retry instead of writing the peer off.
var ErrTransient = errors.New("netsim: transient failure")

// DownError reports a transfer endpoint that is down. It matches
// ErrUnreachable but not ErrTransient: a down node needs recovery, not
// patience.
type DownError struct{ Node string }

func (e *DownError) Error() string { return "netsim: node " + e.Node + " is down" }

// Is matches ErrUnreachable so callers can classify without the concrete type.
func (e *DownError) Is(target error) bool { return target == ErrUnreachable }

// PartitionError reports a transfer severed by a network partition.
type PartitionError struct{ Src, Dst string }

func (e *PartitionError) Error() string {
	return "netsim: " + e.Src + " and " + e.Dst + " are in different partitions"
}

// Is matches both ErrUnreachable and ErrTransient: partitions heal.
func (e *PartitionError) Is(target error) bool {
	return target == ErrUnreachable || target == ErrTransient
}

// DropError reports a transfer that exhausted its retransmit budget on a
// lossy path.
type DropError struct{ Src, Dst string }

func (e *DropError) Error() string {
	return "netsim: path " + e.Src + " -> " + e.Dst + " dropped too many chunks"
}

// Is matches both ErrUnreachable and ErrTransient: lossy windows end.
func (e *DropError) Is(target error) bool {
	return target == ErrUnreachable || target == ErrTransient
}

// NIC is one node's network interface.
type NIC struct {
	Node string
	Rack int
	tx   *sim.Resource
	rx   *sim.Resource
	bps  int64
	slow float64 // fail-slow factor; <= 1 means healthy

	sent     uint64
	received uint64
	retrans  uint64 // bytes retransmitted on lossy paths
	txBusy   time.Duration
	rxBusy   time.Duration
}

// uplink is one rack's connection to the aggregation layer, full duplex.
type uplink struct {
	rack int
	up   *sim.Resource
	down *sim.Resource
	bps  int64
	slow float64

	bytesUp   uint64
	bytesDown uint64
	upBusy    time.Duration
	downBusy  time.Duration
}

type dropState struct {
	prob float64
	rng  *rand.Rand
}

// Network is the fabric connecting NICs.
type Network struct {
	env       *sim.Env
	bps       int64 // per-NIC, each direction
	latency   time.Duration
	chunk     int64
	racks     int
	uplinkBPS int64
	nics      map[string]*NIC
	order     []string // registration order, for deterministic stats
	uplinks   map[int]*uplink
	down      map[string]bool   // nodes currently unreachable (fault injection)
	part      map[string]string // node -> partition id ("" = main partition)
	drops     map[string]*dropState

	failedTransfers uint64
	droppedChunks   uint64
}

// New creates a single-rack network where every NIC runs at bytesPerSec in
// each direction with the given per-chunk latency.
func New(env *sim.Env, bytesPerSec int64, latency time.Duration) *Network {
	if bytesPerSec <= 0 {
		panic("netsim: non-positive bandwidth")
	}
	return &Network{
		env:     env,
		bps:     bytesPerSec,
		latency: latency,
		chunk:   DefaultChunk,
		racks:   1,
		nics:    make(map[string]*NIC),
		uplinks: make(map[int]*uplink),
		down:    make(map[string]bool),
		part:    make(map[string]string),
		drops:   make(map[string]*dropState),
	}
}

// Gigabit returns the paper's 1 GbE fabric (125 MB/s, 100 µs latency).
func Gigabit(env *sim.Env) *Network {
	return New(env, 125<<20, 100*time.Microsecond)
}

// SetChunk overrides the interleaving granularity.
func (n *Network) SetChunk(bytes int64) {
	if bytes <= 0 {
		panic("netsim: non-positive chunk")
	}
	n.chunk = bytes
}

// SetRacks configures the topology: racks top-of-rack switches joined by
// uplinks of uplinkBPS bytes/sec per direction (<= 0 means uplinks match
// the NIC rate, i.e. non-oversubscribed). Must be called before nodes are
// registered; with racks == 1 the fabric stays flat and cross-rack
// machinery never engages.
func (n *Network) SetRacks(racks int, uplinkBPS int64) {
	if racks < 1 {
		panic("netsim: racks must be >= 1")
	}
	if len(n.nics) > 0 {
		panic("netsim: SetRacks after AddNode")
	}
	n.racks = racks
	n.uplinkBPS = uplinkBPS
}

// Racks returns the configured rack count.
func (n *Network) Racks() int { return n.racks }

// AddNode registers a node in rack 0 and returns its NIC. Duplicate names
// panic.
func (n *Network) AddNode(name string) *NIC { return n.AddNodeRack(name, 0) }

// AddNodeRack registers a node in the given rack and returns its NIC.
func (n *Network) AddNodeRack(name string, rack int) *NIC {
	if _, dup := n.nics[name]; dup {
		panic("netsim: duplicate node " + name)
	}
	if rack < 0 || rack >= n.racks {
		panic("netsim: rack out of range for node " + name)
	}
	nic := &NIC{
		Node: name,
		Rack: rack,
		tx:   sim.NewResource(n.env, name+".tx", 1),
		rx:   sim.NewResource(n.env, name+".rx", 1),
		bps:  n.bps,
	}
	n.nics[name] = nic
	n.order = append(n.order, name)
	if n.racks > 1 {
		n.rackUplink(rack)
	}
	return nic
}

// rackUplink returns (creating if needed) the uplink for a rack.
func (n *Network) rackUplink(rack int) *uplink {
	if u, ok := n.uplinks[rack]; ok {
		return u
	}
	bps := n.uplinkBPS
	if bps <= 0 {
		bps = n.bps
	}
	u := &uplink{
		rack: rack,
		up:   sim.NewResource(n.env, rackName(rack)+".up", 1),
		down: sim.NewResource(n.env, rackName(rack)+".down", 1),
		bps:  bps,
	}
	n.uplinks[rack] = u
	return u
}

func rackName(rack int) string {
	return "rack" + string(rune('0'+rack/10)) + string(rune('0'+rack%10))
}

// NIC returns a registered NIC or nil.
func (n *Network) NIC(name string) *NIC { return n.nics[name] }

// RackOf returns the rack a node was registered in; unregistered nodes
// panic.
func (n *Network) RackOf(name string) int {
	nic := n.nics[name]
	if nic == nil {
		panic("netsim: RackOf unregistered node " + name)
	}
	return nic.Rack
}

// RackNodes returns the nodes registered in a rack, in registration order.
func (n *Network) RackNodes(rack int) []string {
	var out []string
	for _, name := range n.order {
		if n.nics[name].Rack == rack {
			out = append(out, name)
		}
	}
	return out
}

// SetDown marks a node unreachable (or reachable again). Transfers touching
// a down node fail at the next chunk boundary, so in-flight flows collapse
// within one chunk's serialization time rather than hanging.
func (n *Network) SetDown(name string, down bool) {
	if _, ok := n.nics[name]; !ok {
		panic("netsim: SetDown on unregistered node " + name)
	}
	n.down[name] = down
}

// Down reports whether the node is marked unreachable.
func (n *Network) Down(name string) bool { return n.down[name] }

// Partition splits the listed nodes away from the rest of the cluster under
// the given id. Nodes inside the set reach each other; every path crossing
// the boundary fails with a *PartitionError at the next chunk boundary.
// Disjoint concurrent partitions (distinct ids) are each isolated from the
// main partition and from one another.
func (n *Network) Partition(id string, nodes []string) {
	if id == "" {
		panic("netsim: empty partition id")
	}
	for _, name := range nodes {
		if _, ok := n.nics[name]; !ok {
			panic("netsim: Partition on unregistered node " + name)
		}
		n.part[name] = id
	}
}

// Heal removes the partition with the given id, reuniting its nodes with
// the main partition.
func (n *Network) Heal(id string) {
	for name, pid := range n.part {
		if pid == id {
			delete(n.part, name)
		}
	}
}

// Partitioned reports whether the node is currently split from the main
// partition.
func (n *Network) Partitioned(name string) bool { return n.part[name] != "" }

// Reachable reports whether a transfer between the two nodes could succeed
// right now: neither endpoint down and both in the same partition. Lossy
// links do not affect reachability (they retransmit).
func (n *Network) Reachable(a, b string) bool {
	return !n.down[a] && !n.down[b] && n.part[a] == n.part[b]
}

// SetNICSlow fail-slows a node's NIC by factor (both directions); factor
// <= 1 restores full speed.
func (n *Network) SetNICSlow(name string, factor float64) {
	nic := n.nics[name]
	if nic == nil {
		panic("netsim: SetNICSlow on unregistered node " + name)
	}
	if factor <= 1 {
		factor = 0
	}
	nic.slow = factor
}

// SetUplinkSlow fail-slows a rack's uplink by factor (both directions);
// factor <= 1 restores full speed. Panics on a flat (single-rack) network.
func (n *Network) SetUplinkSlow(rack int, factor float64) {
	if n.racks <= 1 {
		panic("netsim: SetUplinkSlow on a flat network")
	}
	u := n.rackUplink(rack)
	if factor <= 1 {
		factor = 0
	}
	u.slow = factor
}

// SetDrop makes every path touching the node lossy: each chunk is dropped
// (and retransmitted) with probability prob, drawn from rng. A chunk that
// drops maxChunkAttempts times in a row fails the transfer with a
// *DropError.
func (n *Network) SetDrop(name string, prob float64, rng *rand.Rand) {
	if _, ok := n.nics[name]; !ok {
		panic("netsim: SetDrop on unregistered node " + name)
	}
	if prob <= 0 || prob > 1 {
		panic("netsim: drop probability out of (0,1]")
	}
	n.drops[name] = &dropState{prob: prob, rng: rng}
}

// ClearDrop removes the lossy-path state for a node.
func (n *Network) ClearDrop(name string) { delete(n.drops, name) }

// BytesSent returns the total bytes transmitted by the node.
func (nic *NIC) BytesSent() uint64 { return nic.sent }

// BytesReceived returns the total bytes received by the node.
func (nic *NIC) BytesReceived() uint64 { return nic.received }

// Transfer moves bytes from node src to node dst, blocking p for the full
// transfer time. Local "transfers" (src == dst) cost one latency only,
// modelling loopback (a reducer fetching a map output from its own node).
// It panics if the path fails; fault-aware callers use TryTransfer.
func (n *Network) Transfer(p *sim.Proc, src, dst string, bytes int64) {
	if err := n.TryTransfer(p, src, dst, bytes); err != nil {
		panic("netsim: " + err.Error())
	}
}

// TryTransfer is Transfer with failure reporting: it returns a typed error
// (*DownError, *PartitionError, or *DropError — all matching ErrUnreachable,
// the latter two also ErrTransient) when the path is (or becomes) unusable,
// checked before every chunk so a fault severs in-flight flows promptly.
// Bytes are accounted only on full success.
func (n *Network) TryTransfer(p *sim.Proc, src, dst string, bytes int64) error {
	if bytes <= 0 {
		return nil
	}
	s, d := n.nics[src], n.nics[dst]
	if s == nil || d == nil {
		panic("netsim: transfer between unregistered nodes " + src + " -> " + dst)
	}
	if err := n.pathErr(src, dst); err != nil {
		n.failedTransfers++
		return err
	}
	if src == dst {
		p.Sleep(n.latency)
		s.sent += uint64(bytes)
		d.received += uint64(bytes)
		return nil
	}
	var su, du *uplink
	lat := n.latency
	if s.Rack != d.Rack {
		su, du = n.rackUplink(s.Rack), n.rackUplink(d.Rack)
		lat *= 2 // extra switch hop through the aggregation layer
	}
	remaining := bytes
	attempts := 0
	for remaining > 0 {
		c := n.chunk
		if c > remaining {
			c = remaining
		}
		t := time.Duration(float64(c) / float64(n.pathBPS(s, d, su, du)) * 1e9)
		s.tx.Acquire(p, 1)
		if su != nil {
			su.up.Acquire(p, 1)
			du.down.Acquire(p, 1)
		}
		d.rx.Acquire(p, 1)
		p.Sleep(t + lat)
		d.rx.Release(1)
		if su != nil {
			du.down.Release(1)
			su.up.Release(1)
		}
		s.tx.Release(1)
		s.txBusy += t
		d.rxBusy += t
		if su != nil {
			su.upBusy += t
			du.downBusy += t
		}
		if err := n.pathErr(src, dst); err != nil {
			n.failedTransfers++
			return err
		}
		if n.chunkDropped(src, dst) {
			n.droppedChunks++
			s.retrans += uint64(c)
			attempts++
			if attempts >= maxChunkAttempts {
				n.failedTransfers++
				return &DropError{Src: src, Dst: dst}
			}
			continue // retransmit the chunk
		}
		attempts = 0
		remaining -= c
	}
	s.sent += uint64(bytes)
	d.received += uint64(bytes)
	if su != nil {
		su.bytesUp += uint64(bytes)
		du.bytesDown += uint64(bytes)
	}
	return nil
}

// pathBPS returns the bottleneck rate across the hops of a path, honouring
// fail-slow factors.
func (n *Network) pathBPS(s, d *NIC, su, du *uplink) int64 {
	bps := effBPS(s.bps, s.slow)
	if b := effBPS(d.bps, d.slow); b < bps {
		bps = b
	}
	if su != nil {
		if b := effBPS(su.bps, su.slow); b < bps {
			bps = b
		}
		if b := effBPS(du.bps, du.slow); b < bps {
			bps = b
		}
	}
	return bps
}

func effBPS(bps int64, slow float64) int64 {
	if slow <= 1 {
		return bps
	}
	if e := int64(float64(bps) / slow); e > 0 {
		return e
	}
	return 1
}

func (n *Network) pathErr(src, dst string) error {
	if n.down[src] {
		return &DownError{Node: src}
	}
	if n.down[dst] {
		return &DownError{Node: dst}
	}
	if len(n.part) > 0 && n.part[src] != n.part[dst] {
		return &PartitionError{Src: src, Dst: dst}
	}
	return nil
}

// chunkDropped draws the loss coin for a chunk on the src->dst path. With
// no lossy endpoints it is a pair of map lookups and never touches an rng,
// keeping healthy runs byte-identical.
func (n *Network) chunkDropped(src, dst string) bool {
	if len(n.drops) == 0 {
		return false
	}
	if ds := n.drops[src]; ds != nil && ds.rng.Float64() < ds.prob {
		return true
	}
	if ds := n.drops[dst]; ds != nil && ds.rng.Float64() < ds.prob {
		return true
	}
	return false
}

// NICStat is one NIC's traffic snapshot.
type NICStat struct {
	Node          string        `json:"node"`
	Rack          int           `json:"rack"`
	BytesSent     uint64        `json:"bytes_sent"`
	BytesReceived uint64        `json:"bytes_received"`
	RetransBytes  uint64        `json:"retrans_bytes,omitempty"`
	TxBusy        time.Duration `json:"tx_busy"`
	RxBusy        time.Duration `json:"rx_busy"`
}

// UplinkStat is one rack uplink's traffic snapshot.
type UplinkStat struct {
	Rack      int           `json:"rack"`
	BPS       int64         `json:"bps"`
	BytesUp   uint64        `json:"bytes_up"`
	BytesDown uint64        `json:"bytes_down"`
	UpBusy    time.Duration `json:"up_busy"`
	DownBusy  time.Duration `json:"down_busy"`
}

// Stats is a deterministic fabric snapshot: NICs in registration order,
// uplinks by rack number.
type Stats struct {
	Racks           int          `json:"racks"`
	NICBPS          int64        `json:"nic_bps"`
	NICs            []NICStat    `json:"nics"`
	Uplinks         []UplinkStat `json:"uplinks,omitempty"`
	FailedTransfers uint64       `json:"failed_transfers,omitempty"`
	DroppedChunks   uint64       `json:"dropped_chunks,omitempty"`
}

// Stats snapshots the fabric's traffic counters.
func (n *Network) Stats() *Stats {
	st := &Stats{
		Racks:           n.racks,
		NICBPS:          n.bps,
		FailedTransfers: n.failedTransfers,
		DroppedChunks:   n.droppedChunks,
	}
	for _, name := range n.order {
		nic := n.nics[name]
		st.NICs = append(st.NICs, NICStat{
			Node:          nic.Node,
			Rack:          nic.Rack,
			BytesSent:     nic.sent,
			BytesReceived: nic.received,
			RetransBytes:  nic.retrans,
			TxBusy:        nic.txBusy,
			RxBusy:        nic.rxBusy,
		})
	}
	racks := make([]int, 0, len(n.uplinks))
	for r := range n.uplinks {
		racks = append(racks, r)
	}
	sort.Ints(racks)
	for _, r := range racks {
		u := n.uplinks[r]
		st.Uplinks = append(st.Uplinks, UplinkStat{
			Rack:      u.rack,
			BPS:       u.bps,
			BytesUp:   u.bytesUp,
			BytesDown: u.bytesDown,
			UpBusy:    u.upBusy,
			DownBusy:  u.downBusy,
		})
	}
	return st
}
