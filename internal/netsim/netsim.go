// Package netsim models the cluster network: one full-duplex NIC per node
// attached to a non-blocking switch (the paper's testbed used 1 GbE).
// Transfers are chunked; each chunk holds the sender's transmit side and the
// receiver's receive side for its serialization time, so concurrent flows
// through the same NIC interleave approximately fairly while disjoint flows
// proceed in parallel. Acquisition is always transmit-then-receive, which
// (two ordered resource classes) excludes deadlock by construction.
package netsim

import (
	"time"

	"iochar/internal/sim"
)

// DefaultChunk is the transfer interleaving granularity.
const DefaultChunk = 256 << 10 // 256 KiB

// NIC is one node's network interface.
type NIC struct {
	Node string
	tx   *sim.Resource
	rx   *sim.Resource
	bps  int64

	sent     uint64
	received uint64
}

// Network is the fabric connecting NICs.
type Network struct {
	env     *sim.Env
	bps     int64 // per-NIC, each direction
	latency time.Duration
	chunk   int64
	nics    map[string]*NIC
	down    map[string]bool // nodes currently unreachable (fault injection)
}

// DownError reports a transfer endpoint that is down.
type DownError struct{ Node string }

func (e *DownError) Error() string { return "netsim: node " + e.Node + " is down" }

// New creates a network where every NIC runs at bytesPerSec in each
// direction with the given per-chunk latency.
func New(env *sim.Env, bytesPerSec int64, latency time.Duration) *Network {
	if bytesPerSec <= 0 {
		panic("netsim: non-positive bandwidth")
	}
	return &Network{
		env:     env,
		bps:     bytesPerSec,
		latency: latency,
		chunk:   DefaultChunk,
		nics:    make(map[string]*NIC),
		down:    make(map[string]bool),
	}
}

// Gigabit returns the paper's 1 GbE fabric (125 MB/s, 100 µs latency).
func Gigabit(env *sim.Env) *Network {
	return New(env, 125<<20, 100*time.Microsecond)
}

// SetChunk overrides the interleaving granularity.
func (n *Network) SetChunk(bytes int64) {
	if bytes <= 0 {
		panic("netsim: non-positive chunk")
	}
	n.chunk = bytes
}

// AddNode registers a node and returns its NIC. Duplicate names panic.
func (n *Network) AddNode(name string) *NIC {
	if _, dup := n.nics[name]; dup {
		panic("netsim: duplicate node " + name)
	}
	nic := &NIC{
		Node: name,
		tx:   sim.NewResource(n.env, name+".tx", 1),
		rx:   sim.NewResource(n.env, name+".rx", 1),
		bps:  n.bps,
	}
	n.nics[name] = nic
	return nic
}

// NIC returns a registered NIC or nil.
func (n *Network) NIC(name string) *NIC { return n.nics[name] }

// SetDown marks a node unreachable (or reachable again). Transfers touching
// a down node fail at the next chunk boundary, so in-flight flows collapse
// within one chunk's serialization time rather than hanging.
func (n *Network) SetDown(name string, down bool) {
	if _, ok := n.nics[name]; !ok {
		panic("netsim: SetDown on unregistered node " + name)
	}
	n.down[name] = down
}

// Down reports whether the node is marked unreachable.
func (n *Network) Down(name string) bool { return n.down[name] }

// BytesSent returns the total bytes transmitted by the node.
func (nic *NIC) BytesSent() uint64 { return nic.sent }

// BytesReceived returns the total bytes received by the node.
func (nic *NIC) BytesReceived() uint64 { return nic.received }

// Transfer moves bytes from node src to node dst, blocking p for the full
// transfer time. Local "transfers" (src == dst) cost one latency only,
// modelling loopback (a reducer fetching a map output from its own node).
// It panics if an endpoint is down; fault-aware callers use TryTransfer.
func (n *Network) Transfer(p *sim.Proc, src, dst string, bytes int64) {
	if err := n.TryTransfer(p, src, dst, bytes); err != nil {
		panic("netsim: " + err.Error())
	}
}

// TryTransfer is Transfer with failure reporting: it returns a *DownError
// when either endpoint is (or becomes) down, checked before every chunk so
// a node crash severs in-flight flows promptly. Bytes are accounted only on
// full success.
func (n *Network) TryTransfer(p *sim.Proc, src, dst string, bytes int64) error {
	if bytes <= 0 {
		return nil
	}
	s, d := n.nics[src], n.nics[dst]
	if s == nil || d == nil {
		panic("netsim: transfer between unregistered nodes " + src + " -> " + dst)
	}
	if err := n.endpointErr(src, dst); err != nil {
		return err
	}
	if src == dst {
		p.Sleep(n.latency)
		s.sent += uint64(bytes)
		d.received += uint64(bytes)
		return nil
	}
	remaining := bytes
	for remaining > 0 {
		c := n.chunk
		if c > remaining {
			c = remaining
		}
		t := time.Duration(float64(c) / float64(n.bps) * 1e9)
		s.tx.Acquire(p, 1)
		d.rx.Acquire(p, 1)
		p.Sleep(t + n.latency)
		d.rx.Release(1)
		s.tx.Release(1)
		if err := n.endpointErr(src, dst); err != nil {
			return err
		}
		remaining -= c
	}
	s.sent += uint64(bytes)
	d.received += uint64(bytes)
	return nil
}

func (n *Network) endpointErr(src, dst string) error {
	if n.down[src] {
		return &DownError{Node: src}
	}
	if n.down[dst] {
		return &DownError{Node: dst}
	}
	return nil
}
