// Package faults injects failures into a running simulation — fail-stop and
// fail-slow disks, DataNode crashes, whole-node (TaskTracker) crashes, and
// transient shuffle-fetch drops — at deterministic virtual timestamps or
// sampled from a seeded RNG. The injector only *causes* failures; detection
// and repair live with the subsystems themselves (hdfs.EnableRecovery,
// mapred.EnableFaults), which the caller must switch on for the cluster to
// survive what is injected here.
//
// A fault plan is a semicolon-separated list of events:
//
//	kill-datanode@15s:node=slave-02
//	kill-node@20s:node=slave-01
//	fail-disk@10s:node=slave-03,disk=hdfs1
//	slow-disk@12s:node=slave-03,disk=mr0,factor=8
//	drop-shuffle@8s:until=30s,prob=0.3
//	partition@10s:nodes=slave-01+slave-02,down=20s
//	partition@10s:rack=2,down=20s
//	slow-link@5s:node=slave-03,factor=8
//	slow-link@5s:rack=1,factor=4
//	drop-link@8s:node=slave-04,until=30s,prob=0.3
//
// Timestamps are virtual time from the start of the run, parsed by
// time.ParseDuration. Two runs with the same plan (and, for drop-shuffle,
// drop-link, and RandomPlan, the same seed) inject byte-identical fault
// sequences.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"iochar/internal/cluster"
	"iochar/internal/hdfs"
	"iochar/internal/localfs"
	"iochar/internal/mapred"
	"iochar/internal/netsim"
	"iochar/internal/sim"
)

// Kind identifies a fault class.
type Kind string

const (
	// KillDataNode fail-stops the DataNode process on a node: HDFS reads,
	// write-pipeline hops, and heartbeats stop, but the TaskTracker and NIC
	// survive. The NameNode notices after its dead timeout.
	KillDataNode Kind = "kill-datanode"
	// KillNode fail-stops the whole machine: NIC severed, DataNode and
	// TaskTracker dead, running task attempts written off.
	KillNode Kind = "kill-node"
	// FailDisk fail-stops one data volume. An HDFS volume's replicas enter
	// the repair queue immediately (the DataNode reports the bad dfs.data.dir);
	// an intermediate volume's map outputs are declared lost.
	FailDisk Kind = "fail-disk"
	// SlowDisk degrades one volume's disk by a service-time multiplier — the
	// classic fail-slow fault that speculation exists to mask.
	SlowDisk Kind = "slow-disk"
	// DropShuffle drops each shuffle fetch with probability Prob inside the
	// window [At, Until), forcing the reduce side into retry/backoff.
	DropShuffle Kind = "drop-shuffle"
	// RestartDataNode fail-stops the DataNode process at At and restarts it
	// Down later: on rejoin it sends a block report the NameNode reconciles
	// (re-adopting intact replicas, purging stale ones, cancelling repairs
	// that are no longer needed). The machine, its page cache, NIC, and
	// TaskTracker stay up throughout.
	RestartDataNode Kind = "restart-datanode"
	// RestartNode power-cycles the whole machine: at At it dies like
	// KillNode and every local volume crashes (dirty page cache lost, files
	// truncated to their flushed prefix); Down later the volumes remount by
	// replaying their metadata journals, the NIC returns, the DataNode
	// rejoins with a block report, and the TaskTracker re-registers with the
	// JobTracker so its slots rejoin scheduling.
	RestartNode Kind = "restart-node"
	// CorruptBlock silently flips bytes inside one stored HDFS replica on
	// the target node (optionally restricted to blocks of path=). Nothing
	// notices until a checksummed read or the scrubber trips over it.
	CorruptBlock Kind = "corrupt-block"
	// RestartNameNode fail-stops the NameNode at At and restarts it down=
	// later: clients stall on backoff while it is down, and the restart
	// replays checkpoint+journal off the master's metadata disk and holds
	// mutations in safe mode until block reports re-confirm enough replicas.
	// Requires master recovery to be modeled (core.WithMasterRecovery, or
	// implied by the plan). Takes no node=: the master is the target.
	RestartNameNode Kind = "restart-namenode"
	// RestartJobTracker fail-stops the JobTracker at At and restarts it
	// down= later: task grants stall on backoff, membership events queue
	// until restart, and the restart replays the job-state journal and
	// reconciles zombie attempts via incarnation counters.
	RestartJobTracker Kind = "restart-jobtracker"
	// Partition splits a node set (nodes=a+b+c) or a whole rack (rack=N,
	// 1-indexed) away from the rest of the cluster at At and heals the cut
	// Down later. Nodes inside the cut reach one another; every path across
	// it fails. Nothing reboots: processes, disks, and page caches are
	// untouched, so the heal is instant — clients that backed off across the
	// window resume, and a node the NameNode declared dead for missed
	// heartbeats re-registers from its own heartbeat loop.
	Partition Kind = "partition"
	// SlowLink degrades a node's NIC (node=) or a rack's ToR uplink (rack=N)
	// by a service-time multiplier — the network twin of SlowDisk. Fire-only,
	// like SlowDisk: the link stays slow for the rest of the run.
	SlowLink Kind = "slow-link"
	// DropLink makes every path touching node= lossy inside [At, Until):
	// each chunk drops (and retransmits) with probability Prob; a chunk that
	// drops too many times in a row fails the transfer with a transient
	// error the clients wait out.
	DropLink Kind = "drop-link"
)

// Event is one scheduled fault.
type Event struct {
	Kind   Kind
	At     time.Duration // virtual time the fault fires
	Node   string        // target node (all kinds except DropShuffle)
	Disk   string        // volume selector, e.g. "hdfs0", "mr2", "data1"
	Factor float64       // SlowDisk/SlowLink service-time multiplier (> 1)
	Until  time.Duration // DropShuffle/DropLink window end
	Prob   float64       // DropShuffle/DropLink drop probability
	Down   time.Duration // Restart*/Partition outage length; the rejoin/heal fires at At+Down
	Path   string        // CorruptBlock: restrict victims to this HDFS path
	Nodes  []string      // Partition: the node set split away (syntax nodes=a+b+c)
	Rack   int           // Partition/SlowLink rack target, 1-indexed; 0 = unset
}

// String renders the event in ParsePlan's syntax.
func (ev Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s", ev.Kind, ev.At)
	sep := ":"
	put := func(k, v string) {
		b.WriteString(sep + k + "=" + v)
		sep = ","
	}
	if ev.Node != "" {
		put("node", ev.Node)
	}
	if len(ev.Nodes) > 0 {
		put("nodes", strings.Join(ev.Nodes, "+"))
	}
	if ev.Rack != 0 {
		put("rack", strconv.Itoa(ev.Rack))
	}
	if ev.Disk != "" {
		put("disk", ev.Disk)
	}
	if ev.Factor != 0 {
		put("factor", strconv.FormatFloat(ev.Factor, 'g', -1, 64))
	}
	if ev.Kind == DropShuffle || ev.Kind == DropLink {
		put("until", ev.Until.String())
		put("prob", strconv.FormatFloat(ev.Prob, 'g', -1, 64))
	}
	if ev.Down != 0 {
		put("down", ev.Down.String())
	}
	if ev.Path != "" {
		put("path", ev.Path)
	}
	return b.String()
}

// Plan is a set of fault events plus the seed driving any randomized
// behaviour (drop-shuffle coin flips).
type Plan struct {
	Events []Event
	Seed   int64
}

// Empty reports whether the plan injects nothing.
func (pl Plan) Empty() bool { return len(pl.Events) == 0 }

// String renders the plan in ParsePlan's syntax.
func (pl Plan) String() string {
	parts := make([]string, len(pl.Events))
	for i, ev := range pl.Events {
		parts[i] = ev.String()
	}
	return strings.Join(parts, ";")
}

// ParsePlan parses the fault-plan syntax documented in the package comment.
// An empty string yields an empty plan. The plan's Seed is left zero — tie
// it to an experiment seed afterwards (core.Options does so automatically).
func ParsePlan(s string) (Plan, error) {
	var pl Plan
	s = strings.TrimSpace(s)
	if s == "" {
		return pl, nil
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return Plan{}, err
		}
		pl.Events = append(pl.Events, ev)
	}
	if err := pl.Validate(); err != nil {
		return Plan{}, err
	}
	return pl, nil
}

func parseEvent(s string) (Event, error) {
	head, args, _ := strings.Cut(s, ":")
	kindStr, atStr, ok := strings.Cut(head, "@")
	if !ok {
		return Event{}, fmt.Errorf("faults: %q: want kind@time[:k=v,...]", s)
	}
	ev := Event{Kind: Kind(kindStr)}
	switch ev.Kind {
	case KillDataNode, KillNode, FailDisk, SlowDisk, DropShuffle,
		RestartDataNode, RestartNode, CorruptBlock,
		RestartNameNode, RestartJobTracker,
		Partition, SlowLink, DropLink:
	default:
		return Event{}, fmt.Errorf("faults: %q: unknown fault kind %q", s, kindStr)
	}
	at, err := time.ParseDuration(atStr)
	if err != nil || at <= 0 {
		return Event{}, fmt.Errorf("faults: %q: bad timestamp %q (want a positive duration)", s, atStr)
	}
	ev.At = at
	if args != "" {
		for _, kv := range strings.Split(args, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return Event{}, fmt.Errorf("faults: %q: bad argument %q", s, kv)
			}
			switch k {
			case "node":
				ev.Node = v
			case "nodes":
				ev.Nodes = strings.Split(v, "+")
			case "rack":
				ev.Rack, err = strconv.Atoi(v)
			case "disk":
				ev.Disk = v
			case "factor":
				ev.Factor, err = strconv.ParseFloat(v, 64)
			case "until":
				ev.Until, err = time.ParseDuration(v)
			case "prob":
				ev.Prob, err = strconv.ParseFloat(v, 64)
			case "down":
				ev.Down, err = time.ParseDuration(v)
			case "path":
				ev.Path = v
			default:
				return Event{}, fmt.Errorf("faults: %q: unknown argument %q", s, k)
			}
			if err != nil {
				return Event{}, fmt.Errorf("faults: %q: bad value %q for %q", s, v, k)
			}
		}
	}
	return ev, ev.validate()
}

func (ev Event) validate() error {
	switch ev.Kind {
	case KillDataNode, KillNode:
		if ev.Node == "" {
			return fmt.Errorf("faults: %s needs node=", ev.Kind)
		}
	case FailDisk:
		// node=/disk= are required to arm against a cluster, but that is
		// checked by Injector.Start — iosim applies disk faults to its one
		// standalone device and has no selectors.
	case SlowDisk:
		if ev.Factor <= 1 {
			return fmt.Errorf("faults: %s needs factor > 1, got %g", ev.Kind, ev.Factor)
		}
	case DropShuffle:
		if ev.Until <= ev.At {
			return fmt.Errorf("faults: %s needs until > the start time", ev.Kind)
		}
		if ev.Prob <= 0 || ev.Prob > 1 {
			return fmt.Errorf("faults: %s needs prob in (0,1], got %g", ev.Kind, ev.Prob)
		}
	case RestartDataNode, RestartNode:
		if ev.Node == "" {
			return fmt.Errorf("faults: %s needs node=", ev.Kind)
		}
		if ev.Down <= 0 {
			return fmt.Errorf("faults: %s needs down > 0", ev.Kind)
		}
	case CorruptBlock:
		if ev.Node == "" && ev.Path == "" {
			return fmt.Errorf("faults: %s needs node= or path=", ev.Kind)
		}
	case RestartNameNode, RestartJobTracker:
		if ev.Node != "" {
			return fmt.Errorf("faults: %s takes no node= (the master is the target)", ev.Kind)
		}
		if ev.Down <= 0 {
			return fmt.Errorf("faults: %s needs down > 0", ev.Kind)
		}
	case Partition:
		if (len(ev.Nodes) > 0) == (ev.Rack > 0) {
			return fmt.Errorf("faults: %s needs exactly one of nodes= or rack=", ev.Kind)
		}
		for _, n := range ev.Nodes {
			if n == "" {
				return fmt.Errorf("faults: %s has an empty entry in nodes=", ev.Kind)
			}
		}
		if ev.Down <= 0 {
			return fmt.Errorf("faults: %s needs down > 0 (partitions must heal)", ev.Kind)
		}
	case SlowLink:
		if (ev.Node != "") == (ev.Rack > 0) {
			return fmt.Errorf("faults: %s needs exactly one of node= or rack=", ev.Kind)
		}
		if ev.Factor <= 1 {
			return fmt.Errorf("faults: %s needs factor > 1, got %g", ev.Kind, ev.Factor)
		}
	case DropLink:
		if ev.Node == "" {
			return fmt.Errorf("faults: %s needs node=", ev.Kind)
		}
		if ev.Until <= ev.At {
			return fmt.Errorf("faults: %s needs until > the start time", ev.Kind)
		}
		if ev.Prob <= 0 || ev.Prob > 1 {
			return fmt.Errorf("faults: %s needs prob in (0,1], got %g", ev.Kind, ev.Prob)
		}
	}
	return nil
}

// cutKeys returns the identities a partition event cuts off — its node
// names, or an opaque rack key when the cut is a whole rack (rack
// membership is only known once the plan is armed against a cluster).
func (ev Event) cutKeys() []string {
	if ev.Rack > 0 {
		return []string{fmt.Sprintf("rack:%d", ev.Rack)}
	}
	return ev.Nodes
}

// victim names the entity an event takes down — the target node, or the
// master process for master faults. Used to detect conflicting outage
// windows on one victim.
func (ev Event) victim() string {
	switch ev.Kind {
	case RestartNameNode:
		return "namenode"
	case RestartJobTracker:
		return "jobtracker"
	}
	return ev.Node
}

// HasMasterFaults reports whether the plan restarts the NameNode or the
// JobTracker — such plans require the master-recovery machinery.
func (pl Plan) HasMasterFaults() bool {
	for _, ev := range pl.Events {
		if ev.Kind == RestartNameNode || ev.Kind == RestartJobTracker {
			return true
		}
	}
	return false
}

// Validate checks the plan's cross-event structure: every event valid on
// its own, no exact duplicates, no overlapping outage windows on one victim
// (a restart's rejoin firing inside a later restart of the same victim
// would resurrect a node that is supposed to be down), no overlapping lossy
// windows on one node (the earlier window's cleanup would strip the later
// window's drop state mid-flight), and no partition whose cut set overlaps
// an in-flight partition window — node membership in concurrent cuts must
// be disjoint, or the first heal would reunite nodes the second cut is
// still supposed to isolate. A nodes= cut and a rack= cut never conflict
// statically: rack membership is only known once the plan is armed, so that
// pairing is checked by Injector.Start instead.
func (pl Plan) Validate() error {
	type window struct{ at, until time.Duration }
	type cut struct {
		at, until time.Duration
		keys      []string
	}
	seen := make(map[string]bool, len(pl.Events))
	wins := make(map[string][]window)
	var cuts []cut
	for _, ev := range pl.Events {
		if err := ev.validate(); err != nil {
			return err
		}
		key := ev.String()
		if seen[key] {
			return fmt.Errorf("faults: duplicate event %q", key)
		}
		seen[key] = true
		if ev.Kind == Partition {
			c := cut{at: ev.At, until: ev.At + ev.Down, keys: ev.cutKeys()}
			for _, prev := range cuts {
				if c.at < prev.until && prev.at < c.until && keysIntersect(prev.keys, c.keys) {
					return fmt.Errorf("faults: partition at %v overlaps an in-flight partition window (%v-%v) on the same nodes",
						ev.At, prev.at, prev.until)
				}
			}
			cuts = append(cuts, c)
			continue
		}
		v, until, windowed := ev.window()
		if !windowed {
			continue
		}
		for _, w := range wins[v] {
			if ev.At < w.until && w.at < until {
				return fmt.Errorf("faults: overlapping outage windows on %s (%v-%v and %v-%v)",
					v, w.at, w.until, ev.At, until)
			}
		}
		wins[v] = append(wins[v], window{at: ev.At, until: until})
	}
	return nil
}

// window returns the victim key and end time of the event's outage window;
// ok is false for events that hold no window (instant faults, fire-only
// degradations, and partitions, which Validate checks by cut set instead).
func (ev Event) window() (victim string, until time.Duration, ok bool) {
	switch {
	case ev.Kind == Partition:
		return "", 0, false
	case ev.Kind == DropLink:
		// Namespaced separately from restarts: a lossy window over a node
		// outage is harmless (the path already fails), but two lossy windows
		// on one node would tear each other's state down.
		return "droplink:" + ev.Node, ev.Until, true
	case ev.Down > 0:
		return ev.victim(), ev.At + ev.Down, true
	}
	return "", 0, false
}

func keysIntersect(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// RandomPlan samples n fault events uniformly over [0, window) against the
// given nodes, deterministically for a seed. Disk faults always target index
// 0 of a random role (every node has at least one disk per role); kill-node
// and restart-node are excluded when nodes has a single entry, since losing
// the only slave cannot be survived (even briefly — a restart still loses
// the only copy of running attempts). Events are sorted by time.
func RandomPlan(seed int64, nodes []string, window time.Duration, n int) Plan {
	rng := rand.New(rand.NewSource(seed))
	kinds := []Kind{KillDataNode, FailDisk, SlowDisk, DropShuffle, RestartDataNode, CorruptBlock,
		RestartNameNode, RestartJobTracker, SlowLink, DropLink, KillNode, RestartNode, Partition}
	if len(nodes) <= 1 {
		// Master restarts and link faults cost no slave; whole-node loss
		// does, and a partition needs a remainder to be cut off from.
		kinds = kinds[:10]
	}
	pl := Plan{Seed: seed}
	killed := 0
	for i := 0; i < n; i++ {
		ev := Event{
			Kind: kinds[rng.Intn(len(kinds))],
			At:   time.Duration(rng.Int63n(int64(window))),
			Node: nodes[rng.Intn(len(nodes))],
		}
		if ev.At == 0 {
			ev.At = 1 // a zero timestamp fails plan validation
		}
		if ev.Kind == KillNode || ev.Kind == RestartNode {
			// At most half the cluster may be down at once, or quorum-less
			// recovery (fewer live nodes than the replication factor)
			// dominates. Restarting nodes count: they are dead while down.
			if killed+1 >= (len(nodes)+1)/2 {
				ev.Kind = KillDataNode
			} else {
				killed++
			}
		}
		switch ev.Kind {
		case FailDisk, SlowDisk:
			if rng.Intn(2) == 0 {
				ev.Disk = "hdfs0"
			} else {
				ev.Disk = "mr0"
			}
			ev.Factor = float64(2 + rng.Intn(15)) // 2..16, used by slow-disk
		case DropShuffle:
			ev.Node = ""
			ev.Until = ev.At + time.Duration(rng.Int63n(int64(window)))
			ev.Prob = 0.1 + 0.4*rng.Float64()
		case RestartDataNode, RestartNode, RestartNameNode, RestartJobTracker:
			// Outages between an eighth and a third of the window: long
			// enough that the dead timeout can fire first, short enough that
			// the rejoin lands inside the run.
			ev.Down = window/8 + time.Duration(rng.Int63n(int64(window)/4+1))
			if ev.Kind == RestartNameNode || ev.Kind == RestartJobTracker {
				ev.Node = "" // the master is the target
			}
		case Partition:
			// Cut a minority subset away so writers always have a reachable
			// majority; the heal (same window shape as a restart outage)
			// reunites them well inside the clients' net-retry budgets.
			ev.Node = ""
			cut := 1 + rng.Intn(max(1, (len(nodes)-1)/2))
			perm := rng.Perm(len(nodes))[:cut]
			sort.Ints(perm)
			for _, idx := range perm {
				ev.Nodes = append(ev.Nodes, nodes[idx])
			}
			ev.Down = window/8 + time.Duration(rng.Int63n(int64(window)/4+1))
		case SlowLink:
			ev.Factor = float64(2 + rng.Intn(15)) // NIC target; rack= only via explicit plans
		case DropLink:
			// Lossy windows up to ~3/8 of the run on one node's paths.
			ev.Until = ev.At + window/8 + time.Duration(rng.Int63n(int64(window)/4+1))
			ev.Prob = 0.1 + 0.4*rng.Float64()
		}
		pl.Events = append(pl.Events, ev)
	}
	sort.SliceStable(pl.Events, func(i, j int) bool { return pl.Events[i].At < pl.Events[j].At })
	resolveConflicts(&pl)
	if err := pl.Validate(); err != nil {
		panic("faults: RandomPlan generated an invalid plan: " + err.Error())
	}
	return pl
}

// resolveConflicts nudges randomly drawn events that violate the plan's
// cross-event rules: an outage window opening inside an earlier outage of
// the same victim is pushed past it, and an exact duplicate event is pushed
// 1 ms later. Partitions are all charged to one shared victim — random
// plans simply never overlap two cuts, which satisfies Validate's cut-set
// rule without reasoning about membership. Deterministic, and convergent
// because every nudge moves an event strictly forward in time.
func resolveConflicts(pl *Plan) {
	for pass := 0; pass < len(pl.Events)+1; pass++ {
		changed := false
		seen := make(map[string]bool, len(pl.Events))
		end := make(map[string]time.Duration)
		for i := range pl.Events {
			ev := &pl.Events[i]
			if v, until, ok := conflictVictim(*ev); ok {
				if e := end[v]; ev.At <= e {
					ev.shift(e + time.Millisecond - ev.At)
					changed = true
					_, until, _ = conflictVictim(*ev)
				}
				if until > end[v] {
					end[v] = until
				}
			}
			for seen[ev.String()] {
				ev.shift(time.Millisecond)
				changed = true
			}
			seen[ev.String()] = true
		}
		if !changed {
			return
		}
		sort.SliceStable(pl.Events, func(i, j int) bool { return pl.Events[i].At < pl.Events[j].At })
	}
}

// conflictVictim is resolveConflicts's window accounting: like
// Event.window, but all partitions share one victim (see resolveConflicts).
func conflictVictim(ev Event) (victim string, until time.Duration, ok bool) {
	if ev.Kind == Partition {
		return "partition", ev.At + ev.Down, true
	}
	return ev.window()
}

// shift moves the event later by d, dragging a window end (drop-shuffle,
// drop-link) along so the nudge cannot invert the window.
func (ev *Event) shift(d time.Duration) {
	ev.At += d
	if ev.Until != 0 {
		ev.Until += d
	}
}

// Injector arms a plan against a concrete cluster. Create with New, call
// Start before sim.Env.Run, and Stop after the workload (plus recovery)
// drains to cancel any events that never fired.
type Injector struct {
	env  *sim.Env
	cl   *cluster.Cluster
	net  *netsim.Network
	fs   *hdfs.FS
	rt   *mapred.Runtime
	plan Plan

	timers   []*sim.Timer
	victims  []string   // nodes whose DataNode or whole machine was killed for good
	restarts []string   // nodes taken down by a restart event (they come back)
	fired    []string   // log of injected events, in firing order
	cuts     []armedCut // armed partition windows, for cross-form overlap checks

	// crashGen counts the death events fired at each node. A restart's
	// rejoin half captures the generation its crash created and aborts if a
	// later kill or crash superseded it — otherwise a reboot whose journal
	// replay outlives the next power failure would resurrect a node that is
	// supposed to be down (or down for good).
	crashGen map[string]int
}

// bumpGen records one death event at node and returns the new generation.
func (in *Injector) bumpGen(node string) int {
	if in.crashGen == nil {
		in.crashGen = make(map[string]int)
	}
	in.crashGen[node]++
	return in.crashGen[node]
}

// New wires an injector. fs and rt may be nil when the plan does not touch
// the corresponding subsystem (checked at Start).
func New(env *sim.Env, cl *cluster.Cluster, fs *hdfs.FS, rt *mapred.Runtime, plan Plan) *Injector {
	return &Injector{env: env, cl: cl, net: cl.Net, fs: fs, rt: rt, plan: plan}
}

// Start validates every event's target and schedules the plan as cancellable
// virtual-time callbacks. Shuffle-drop windows install a single seeded hook
// into the MapReduce runtime. Returns an error (scheduling nothing) if any
// event names an unknown node or disk.
func (in *Injector) Start() error {
	var drops []Event
	for i, ev := range in.plan.Events {
		i, ev := i, ev
		if ev.Kind == DropShuffle {
			drops = append(drops, ev)
			continue
		}
		if ev.Kind == CorruptBlock {
			if in.fs == nil {
				return fmt.Errorf("faults: %s without an HDFS instance", ev.Kind)
			}
			if ev.Node != "" && in.cl.FindNode(ev.Node) == nil {
				return fmt.Errorf("faults: %s: unknown node %q", ev.Kind, ev.Node)
			}
			// One rng per event, derived from the plan seed and the event's
			// position, so victim choice is deterministic and independent of
			// sibling events.
			rng := rand.New(rand.NewSource(in.plan.Seed ^ int64(i+1)*0x9E3779B97F4A7C))
			in.timers = append(in.timers, in.env.AfterFunc(ev.At, func() { in.corruptBlock(ev, rng) }))
			continue
		}
		if ev.Kind == RestartNameNode || ev.Kind == RestartJobTracker {
			if ev.Kind == RestartNameNode {
				if in.fs == nil || !in.fs.MasterEnabled() {
					return fmt.Errorf("faults: %s needs master recovery enabled (core.WithMasterRecovery)", ev.Kind)
				}
			} else if in.rt == nil || !in.rt.MasterEnabled() {
				return fmt.Errorf("faults: %s needs master recovery enabled (core.WithMasterRecovery)", ev.Kind)
			}
			gen := new(int)
			kind := ev.Kind
			fire := func() {
				*gen = in.bumpGen(ev.victim())
				if kind == RestartNameNode {
					in.fs.CrashNameNode()
				} else {
					in.rt.CrashJobTracker()
				}
				in.note(ev)
			}
			rejoin := func() {
				in.env.Go("restart:"+ev.victim(), func(p *sim.Proc) {
					if in.crashGen[ev.victim()] != *gen {
						return
					}
					if kind == RestartNameNode {
						in.fs.RestartNameNode(p)
					} else {
						in.rt.RestartJobTracker(p)
					}
					in.noteRejoin(ev)
				})
			}
			in.timers = append(in.timers, in.env.AfterFunc(ev.At, fire))
			in.timers = append(in.timers, in.env.AfterFunc(ev.At+ev.Down, rejoin))
			continue
		}
		if ev.Kind == Partition || ev.Kind == SlowLink || ev.Kind == DropLink {
			if err := in.armNetFault(i, ev); err != nil {
				return err
			}
			continue
		}
		if ev.Node == "" {
			return fmt.Errorf("faults: %s needs node= to target a cluster", ev.Kind)
		}
		node := in.cl.FindNode(ev.Node)
		if node == nil {
			return fmt.Errorf("faults: %s: unknown node %q", ev.Kind, ev.Node)
		}
		var fire func()
		var rejoin func()
		switch ev.Kind {
		case KillDataNode:
			if in.fs == nil {
				return fmt.Errorf("faults: %s without an HDFS instance", ev.Kind)
			}
			fire = func() { in.killDataNode(ev) }
		case KillNode:
			if in.fs == nil || in.rt == nil {
				return fmt.Errorf("faults: %s without HDFS and MapReduce instances", ev.Kind)
			}
			fire = func() { in.killNode(ev, node) }
		case RestartDataNode:
			if in.fs == nil {
				return fmt.Errorf("faults: %s without an HDFS instance", ev.Kind)
			}
			gen := new(int)
			fire = func() { *gen = in.stopDataNode(ev) }
			rejoin = func() { in.rejoinDataNode(ev, *gen) }
		case RestartNode:
			if in.fs == nil || in.rt == nil {
				return fmt.Errorf("faults: %s without HDFS and MapReduce instances", ev.Kind)
			}
			gen := new(int)
			fire = func() { *gen = in.crashNode(ev, node) }
			rejoin = func() { in.rebootNode(ev, node, *gen) }
		case FailDisk, SlowDisk:
			if ev.Disk == "" {
				return fmt.Errorf("faults: %s needs node= and disk= to target a cluster", ev.Kind)
			}
			vol, err := findVol(node, ev.Disk)
			if err != nil {
				return err
			}
			if ev.Kind == SlowDisk {
				fire = func() { in.slowDisk(ev, vol) }
			} else {
				fire = func() { in.failDisk(ev, node, vol) }
			}
		}
		in.timers = append(in.timers, in.env.AfterFunc(ev.At, fire))
		if rejoin != nil {
			in.timers = append(in.timers, in.env.AfterFunc(ev.At+ev.Down, rejoin))
		}
	}
	if len(drops) > 0 {
		if in.rt == nil {
			return fmt.Errorf("faults: %s without a MapReduce instance", DropShuffle)
		}
		for _, d := range drops {
			d := d
			// The hook below is passive; log each window when it opens so
			// reports still show that the run was perturbed.
			in.timers = append(in.timers, in.env.AfterFunc(d.At, func() { in.note(d) }))
		}
		rng := rand.New(rand.NewSource(in.plan.Seed))
		in.rt.SetFetchFault(func(now time.Duration) bool {
			for _, d := range drops {
				if now >= d.At && now < d.Until {
					// One deterministic draw per in-window fetch; windows
					// never stack (first match wins).
					return rng.Float64() < d.Prob
				}
			}
			return false
		})
	}
	return nil
}

// killDataNode fail-stops just the DataNode process: the machine, its NIC,
// and its TaskTracker stay up.
func (in *Injector) killDataNode(ev Event) {
	in.bumpGen(ev.Node)
	in.fs.CrashDataNode(ev.Node)
	in.victims = append(in.victims, ev.Node)
	in.note(ev)
}

// killNode fail-stops the whole machine, in the order the control planes
// would observe it: the machine stops (tasks abandon at their next chunk),
// the NIC goes dark (in-flight transfers collapse), the DataNode stops
// heartbeating, and the JobTracker writes off the node's attempts/outputs.
func (in *Injector) killNode(ev Event, node *cluster.Node) {
	in.bumpGen(ev.Node)
	node.SetDown(true)
	in.net.SetDown(ev.Node, true)
	in.fs.CrashDataNode(ev.Node)
	in.rt.OnNodeDown(ev.Node)
	in.victims = append(in.victims, ev.Node)
	in.note(ev)
}

// failDisk fail-stops one volume. HDFS volumes report straight to the
// NameNode's repair queue; intermediate volumes lose their map outputs.
func (in *Injector) failDisk(ev Event, node *cluster.Node, vol *localfs.FS) {
	if isHDFSVol(node, vol) && in.fs != nil {
		in.fs.FailVolume(ev.Node, vol) // calls vol.Fail and queues repairs
	} else {
		vol.Fail()
	}
	if isMRVol(node, vol) && in.rt != nil {
		in.rt.OnVolumeDown(vol)
	}
	in.note(ev)
}

func (in *Injector) slowDisk(ev Event, vol *localfs.FS) {
	vol.Disk().SetSlowFactor(ev.Factor)
	in.note(ev)
}

// stopDataNode is the down half of restart-datanode: only the DataNode
// process dies — volumes, page cache, NIC, and TaskTracker stay up.
func (in *Injector) stopDataNode(ev Event) int {
	gen := in.bumpGen(ev.Node)
	in.fs.CrashDataNode(ev.Node)
	in.restarts = append(in.restarts, ev.Node)
	in.note(ev)
	return gen
}

// rejoinDataNode is the up half of restart-datanode: the process restarts
// and sends its block report. gen is the generation the paired stop
// created; if a later kill or crash hit the node during the outage, this
// rejoin is superseded and must not resurrect it.
func (in *Injector) rejoinDataNode(ev Event, gen int) {
	in.env.Go("rejoin:"+ev.Node, func(p *sim.Proc) {
		if in.crashGen[ev.Node] != gen {
			return
		}
		in.fs.RejoinDataNode(p, ev.Node)
		in.noteRejoin(ev)
	})
}

// crashNode is the down half of restart-node: the machine power-fails.
// Every local volume crashes (dirty pages lost, files truncated to their
// flushed prefix), the NIC goes dark, and the control planes observe the
// death exactly as for kill-node.
func (in *Injector) crashNode(ev Event, node *cluster.Node) int {
	gen := in.bumpGen(ev.Node)
	node.SetDown(true)
	in.net.SetDown(ev.Node, true)
	for _, vol := range node.HDFSVols {
		vol.Crash()
	}
	for _, vol := range node.MRVols {
		vol.Crash()
	}
	in.fs.CrashDataNode(ev.Node)
	in.rt.OnNodeDown(ev.Node)
	in.restarts = append(in.restarts, ev.Node)
	in.note(ev)
	return gen
}

// rebootNode is the up half of restart-node: volumes remount (journal
// replay), the NIC returns, the DataNode rejoins with a block report, and
// the TaskTracker re-registers so its slots rejoin scheduling. gen is the
// generation the paired crash created; the reboot aborts — including
// between volume remounts, which replay journals in virtual time — as soon
// as a later death event supersedes it, so a reboot never resurrects a node
// whose next outage has already begun.
func (in *Injector) rebootNode(ev Event, node *cluster.Node, gen int) {
	in.env.Go("reboot:"+ev.Node, func(p *sim.Proc) {
		stale := func() bool { return in.crashGen[ev.Node] != gen }
		for _, vol := range node.HDFSVols {
			if stale() {
				return
			}
			vol.Remount(p)
		}
		for _, vol := range node.MRVols {
			if stale() {
				return
			}
			vol.Remount(p)
		}
		if stale() {
			return
		}
		node.SetDown(false)
		in.net.SetDown(ev.Node, false)
		in.fs.RejoinDataNode(p, ev.Node)
		if in.rt != nil {
			in.rt.OnNodeRejoin(ev.Node)
		}
		in.noteRejoin(ev)
	})
}

// corruptBlock flips bytes in one stored replica, chosen deterministically
// by the event's rng. A target that stores nothing eligible (already died,
// or never held the path) makes the event a logged no-op.
func (in *Injector) corruptBlock(ev Event, rng *rand.Rand) {
	id := in.fs.CorruptReplica(ev.Node, ev.Path, rng)
	in.fired = append(in.fired, fmt.Sprintf("t=%v %s blk=%d", in.env.Now(), ev, id))
}

func (in *Injector) noteRejoin(ev Event) {
	in.fired = append(in.fired, fmt.Sprintf("t=%v rejoin %s", in.env.Now(), ev.victim()))
}

func (in *Injector) note(ev Event) {
	in.fired = append(in.fired, fmt.Sprintf("t=%v %s", in.env.Now(), ev))
}

// LastAt returns the firing time of the plan's latest event — the point past
// which no further fault will change cluster state. Drivers that audit
// invariants after a run use it to let late-scheduled faults fire (and be
// recovered from) before judging the cluster quiescent.
func (in *Injector) LastAt() time.Duration {
	var last time.Duration
	for _, ev := range in.plan.Events {
		at := ev.At + ev.Down // restarts/partitions settle at their rejoin/heal
		if ev.Kind == DropLink && ev.Until > at {
			at = ev.Until // lossy paths settle when the window closes
		}
		if at > last {
			last = at
		}
	}
	return last
}

// Stop cancels events that have not fired yet. Call it once the run (and its
// recovery tail) is over, so Env.Run(0) is not held open by pending faults.
func (in *Injector) Stop() {
	for _, t := range in.timers {
		t.Stop()
	}
}

// Victims returns the nodes whose DataNode or whole machine has been killed
// for good so far, in firing order — the set iostat reporting separates out.
func (in *Injector) Victims() []string { return append([]string(nil), in.victims...) }

// RestartTargets returns the nodes a restart event has taken down so far —
// they rejoin later and iostat reporting groups them as "recovering" rather
// than victims.
func (in *Injector) RestartTargets() []string { return append([]string(nil), in.restarts...) }

// Fired returns a human-readable log of the events injected so far.
func (in *Injector) Fired() []string { return append([]string(nil), in.fired...) }

// findVol resolves a disk selector ("hdfs1", "mr0", or "data2" for pooled
// layouts) against a node's volumes.
func findVol(node *cluster.Node, sel string) (*localfs.FS, error) {
	role := strings.TrimRight(sel, "0123456789")
	idx, err := strconv.Atoi(sel[len(role):])
	if err != nil {
		return nil, fmt.Errorf("faults: bad disk selector %q (want e.g. hdfs0 or mr1)", sel)
	}
	var vols []*localfs.FS
	switch role {
	case "hdfs", "data":
		vols = node.HDFSVols
	case "mr":
		vols = node.MRVols
	default:
		return nil, fmt.Errorf("faults: bad disk role %q in %q (want hdfs, mr, or data)", role, sel)
	}
	if idx < 0 || idx >= len(vols) {
		return nil, fmt.Errorf("faults: node %s has no %s volume %d", node.Name, role, idx)
	}
	return vols[idx], nil
}

func isHDFSVol(node *cluster.Node, vol *localfs.FS) bool {
	for _, v := range node.HDFSVols {
		if v == vol {
			return true
		}
	}
	return false
}

func isMRVol(node *cluster.Node, vol *localfs.FS) bool {
	for _, v := range node.MRVols {
		if v == vol {
			return true
		}
	}
	return false
}
