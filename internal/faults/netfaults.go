// Network-fabric faults: partitions that split a node set or a whole rack
// away and heal on a schedule, fail-slow NICs and rack uplinks, and lossy
// paths that drop chunks inside a window. These events touch only the
// netsim layer — no process dies, no disk loses a byte — so everything the
// cluster "loses" during one comes back at the heal, and recovery is the
// clients' transient-retry machinery rather than re-replication.
package faults

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// armedCut is one armed partition's concrete membership and window, kept so
// Start can reject a nodes= cut overlapping a rack= cut — a pairing
// Plan.Validate cannot see because rack membership needs a cluster.
type armedCut struct {
	at, until time.Duration
	nodes     map[string]bool
}

// armNetFault validates and schedules one network-fabric event. i is the
// event's index in the plan, which keys its partition id and its
// deterministic per-event rng.
func (in *Injector) armNetFault(i int, ev Event) error {
	switch ev.Kind {
	case Partition:
		members, err := in.resolveCut(ev)
		if err != nil {
			return err
		}
		cut := armedCut{at: ev.At, until: ev.At + ev.Down, nodes: map[string]bool{}}
		for _, m := range members {
			cut.nodes[m] = true
		}
		for _, prev := range in.cuts {
			if cut.at < prev.until && prev.at < cut.until && cutsIntersect(prev.nodes, cut.nodes) {
				return fmt.Errorf("faults: %s overlaps an in-flight partition window on the same nodes", ev)
			}
		}
		in.cuts = append(in.cuts, cut)
		id := fmt.Sprintf("cut%d", i)
		in.timers = append(in.timers, in.env.AfterFunc(ev.At, func() {
			in.net.Partition(id, members)
			in.note(ev)
		}))
		in.timers = append(in.timers, in.env.AfterFunc(ev.At+ev.Down, func() {
			in.net.Heal(id)
			in.fired = append(in.fired, fmt.Sprintf("t=%v heal %s", in.env.Now(), strings.Join(members, "+")))
		}))
	case SlowLink:
		if ev.Rack > 0 {
			if in.net.Racks() <= 1 {
				return fmt.Errorf("faults: %s targets rack %d on a flat network (set racks > 1)", ev.Kind, ev.Rack)
			}
			if ev.Rack > in.net.Racks() {
				return fmt.Errorf("faults: %s: rack %d out of range (cluster has %d)", ev.Kind, ev.Rack, in.net.Racks())
			}
			rack := ev.Rack - 1 // 1-indexed in the plan syntax
			in.timers = append(in.timers, in.env.AfterFunc(ev.At, func() {
				in.net.SetUplinkSlow(rack, ev.Factor)
				in.note(ev)
			}))
			break
		}
		if in.cl.FindNode(ev.Node) == nil {
			return fmt.Errorf("faults: %s: unknown node %q", ev.Kind, ev.Node)
		}
		in.timers = append(in.timers, in.env.AfterFunc(ev.At, func() {
			in.net.SetNICSlow(ev.Node, ev.Factor)
			in.note(ev)
		}))
	case DropLink:
		if in.cl.FindNode(ev.Node) == nil {
			return fmt.Errorf("faults: %s: unknown node %q", ev.Kind, ev.Node)
		}
		// One rng per event, seeded like corrupt-block's: deterministic and
		// independent of sibling events.
		rng := rand.New(rand.NewSource(in.plan.Seed ^ int64(i+1)*0x9E3779B97F4A7C))
		in.timers = append(in.timers, in.env.AfterFunc(ev.At, func() {
			in.net.SetDrop(ev.Node, ev.Prob, rng)
			in.note(ev)
		}))
		in.timers = append(in.timers, in.env.AfterFunc(ev.Until, func() {
			in.net.ClearDrop(ev.Node)
			in.fired = append(in.fired, fmt.Sprintf("t=%v clear drop-link %s", in.env.Now(), ev.Node))
		}))
	}
	return nil
}

// resolveCut expands a partition event to its concrete node list: the nodes=
// set verbatim, or the registered members of rack=N.
func (in *Injector) resolveCut(ev Event) ([]string, error) {
	if ev.Rack > 0 {
		if in.net.Racks() <= 1 {
			return nil, fmt.Errorf("faults: %s targets rack %d on a flat network (set racks > 1)", ev.Kind, ev.Rack)
		}
		if ev.Rack > in.net.Racks() {
			return nil, fmt.Errorf("faults: %s: rack %d out of range (cluster has %d)", ev.Kind, ev.Rack, in.net.Racks())
		}
		return in.net.RackNodes(ev.Rack - 1), nil
	}
	for _, name := range ev.Nodes {
		if in.cl.FindNode(name) == nil {
			return nil, fmt.Errorf("faults: %s: unknown node %q", ev.Kind, name)
		}
	}
	return ev.Nodes, nil
}

func cutsIntersect(a, b map[string]bool) bool {
	for n := range a {
		if b[n] {
			return true
		}
	}
	return false
}
