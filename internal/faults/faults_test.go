package faults

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParsePlanRoundTrip(t *testing.T) {
	in := "kill-datanode@15s:node=slave-02;" +
		"kill-node@20s:node=slave-01;" +
		"fail-disk@10s:node=slave-03,disk=hdfs1;" +
		"slow-disk@12s:node=slave-03,disk=mr0,factor=8;" +
		"drop-shuffle@8s:until=30s,prob=0.3"
	pl, err := ParsePlan(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Events) != 5 {
		t.Fatalf("got %d events, want 5", len(pl.Events))
	}
	want := Event{Kind: SlowDisk, At: 12 * time.Second, Node: "slave-03", Disk: "mr0", Factor: 8}
	if !reflect.DeepEqual(pl.Events[3], want) {
		t.Errorf("event 3 = %+v, want %+v", pl.Events[3], want)
	}
	if pl.Events[4].Until != 30*time.Second || pl.Events[4].Prob != 0.3 {
		t.Errorf("drop-shuffle parsed wrong: %+v", pl.Events[4])
	}
	// String must re-parse to the same plan.
	again, err := ParsePlan(pl.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", pl.String(), err)
	}
	if !reflect.DeepEqual(pl, again) {
		t.Errorf("round trip changed the plan:\n %+v\n %+v", pl, again)
	}
}

func TestParsePlanEmpty(t *testing.T) {
	pl, err := ParsePlan("  ")
	if err != nil || !pl.Empty() {
		t.Fatalf("blank plan: %+v, %v", pl, err)
	}
}

func TestParsePlanRejectsBadInput(t *testing.T) {
	for _, s := range []string{
		"explode@5s:node=slave-01",              // unknown kind
		"kill-node@5s",                          // missing node
		"kill-datanode:node=slave-01",           // missing timestamp
		"slow-disk@5s:node=a,disk=mr0",          // missing factor
		"slow-disk@5s:node=a,disk=mr0,factor=1", // factor must be > 1
		"drop-shuffle@5s:until=2s,prob=0.5",     // window ends before it starts
		"drop-shuffle@5s:until=9s,prob=1.5",     // probability out of range
		"kill-node@5s:node=a,bogus=1",           // unknown argument
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted bad input", s)
		}
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	nodes := []string{"slave-00", "slave-01", "slave-02", "slave-03"}
	a := RandomPlan(7, nodes, 2*time.Minute, 6)
	b := RandomPlan(7, nodes, 2*time.Minute, 6)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different plans:\n %v\n %v", a, b)
	}
	c := RandomPlan(8, nodes, 2*time.Minute, 6)
	if reflect.DeepEqual(a, c) {
		t.Errorf("different seeds produced identical plans: %v", a)
	}
	for _, ev := range a.Events {
		if err := ev.validate(); err != nil {
			t.Errorf("random event invalid: %v (%v)", ev, err)
		}
	}
	// Sorted by firing time.
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Errorf("events out of order: %v", a.Events)
		}
	}
}

func TestRandomPlanSingleNodeNeverKillsIt(t *testing.T) {
	pl := RandomPlan(3, []string{"slave-00"}, time.Minute, 20)
	for _, ev := range pl.Events {
		if ev.Kind == KillNode {
			t.Fatalf("single-node plan contains kill-node: %s", pl)
		}
	}
	if !strings.Contains(pl.String(), "@") {
		t.Fatalf("plan did not render: %q", pl.String())
	}
}

func TestParsePlanRestartAndCorruptRoundTrip(t *testing.T) {
	in := "restart-datanode@10s:node=slave-01,down=5s;" +
		"restart-node@20s:node=slave-02,down=2s;" +
		"corrupt-block@8s:node=slave-03;" +
		"corrupt-block@9s:path=/bench/TS/in/part-000"
	pl, err := ParsePlan(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(pl.Events))
	}
	want := Event{Kind: RestartDataNode, At: 10 * time.Second, Node: "slave-01", Down: 5 * time.Second}
	if !reflect.DeepEqual(pl.Events[0], want) {
		t.Errorf("event 0 = %+v, want %+v", pl.Events[0], want)
	}
	if pl.Events[2].Node != "slave-03" || pl.Events[2].Path != "" {
		t.Errorf("node-targeted corrupt-block parsed wrong: %+v", pl.Events[2])
	}
	if pl.Events[3].Path != "/bench/TS/in/part-000" {
		t.Errorf("path-targeted corrupt-block parsed wrong: %+v", pl.Events[3])
	}
	again, err := ParsePlan(pl.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", pl.String(), err)
	}
	if !reflect.DeepEqual(pl, again) {
		t.Errorf("round trip changed the plan:\n %+v\n %+v", pl, again)
	}
}

func TestParsePlanRejectsBadRestartAndCorrupt(t *testing.T) {
	for _, s := range []string{
		"restart-datanode@10s:node=slave-01",     // missing down
		"restart-datanode@10s:down=5s",           // missing node
		"restart-node@10s:node=slave-01,down=0s", // zero outage
		"restart-node@10s:node=slave-01,down=-1s",
		"corrupt-block@5s", // needs node= or path=
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted bad input", s)
		}
	}
}

func TestRandomPlanRestartDownBounds(t *testing.T) {
	nodes := []string{"slave-00", "slave-01", "slave-02", "slave-03"}
	window := 2 * time.Minute
	seen := false
	for seed := int64(1); seed <= 60; seed++ {
		for _, ev := range RandomPlan(seed, nodes, window, 6).Events {
			if ev.Kind != RestartDataNode && ev.Kind != RestartNode {
				continue
			}
			seen = true
			if ev.Down < window/8 || ev.Down > window/8+window/4 {
				t.Fatalf("seed %d: restart down=%v outside [%v, %v]", seed, ev.Down, window/8, window/8+window/4)
			}
		}
	}
	if !seen {
		t.Fatal("no seed in 1..60 generated a restart event")
	}
}

func TestRandomPlanSingleNodeNeverRestartsWholeNode(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		for _, ev := range RandomPlan(seed, []string{"slave-00"}, time.Minute, 10).Events {
			if ev.Kind == RestartNode || ev.Kind == KillNode {
				t.Fatalf("single-node plan contains %s", ev.Kind)
			}
		}
	}
}

func TestParsePlanNetworkFaultsRoundTrip(t *testing.T) {
	in := "partition@10s:nodes=slave-01+slave-02,down=20s;" +
		"partition@40s:rack=2,down=5s;" +
		"slow-link@5s:node=slave-03,factor=8;" +
		"slow-link@6s:rack=1,factor=4;" +
		"drop-link@8s:node=slave-04,until=30s,prob=0.3"
	pl, err := ParsePlan(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Events) != 5 {
		t.Fatalf("got %d events, want 5", len(pl.Events))
	}
	want := Event{Kind: Partition, At: 10 * time.Second, Down: 20 * time.Second,
		Nodes: []string{"slave-01", "slave-02"}}
	if !reflect.DeepEqual(pl.Events[0], want) {
		t.Errorf("event 0 = %+v, want %+v", pl.Events[0], want)
	}
	if pl.Events[1].Rack != 2 || pl.Events[1].Nodes != nil {
		t.Errorf("rack partition parsed wrong: %+v", pl.Events[1])
	}
	if pl.Events[3].Rack != 1 || pl.Events[3].Factor != 4 {
		t.Errorf("rack slow-link parsed wrong: %+v", pl.Events[3])
	}
	if pl.Events[4].Until != 30*time.Second || pl.Events[4].Prob != 0.3 {
		t.Errorf("drop-link parsed wrong: %+v", pl.Events[4])
	}
	again, err := ParsePlan(pl.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", pl.String(), err)
	}
	if !reflect.DeepEqual(pl, again) {
		t.Errorf("round trip changed the plan:\n %+v\n %+v", pl, again)
	}
}

func TestParsePlanRejectsBadNetworkFaults(t *testing.T) {
	for _, s := range []string{
		"partition@10s:nodes=a+b",                                          // missing down
		"partition@10s:down=5s",                                            // no target
		"partition@10s:nodes=a+b,rack=1,down=5s",                           // both targets
		"partition@10s:nodes=a++b,down=5s",                                 // empty node entry
		"slow-link@5s:node=a",                                              // missing factor
		"slow-link@5s:factor=8",                                            // no target
		"slow-link@5s:node=a,rack=1,factor=8",                              // both targets
		"slow-link@5s:rack=1,factor=1",                                     // factor must be > 1
		"drop-link@5s:until=30s,prob=0.3",                                  // missing node
		"drop-link@5s:node=a,until=2s,prob=0.3",                            // window ends before start
		"drop-link@5s:node=a,until=30s,prob=0",                             // probability out of range
		"drop-link@5s:node=a,until=30s,prob=1.5",                           // probability out of range
		"partition@10s:nodes=a+b,down=20s;partition@15s:nodes=b+c,down=5s", // overlapping cuts share b
		"partition@10s:rack=2,down=20s;partition@15s:rack=2,down=5s",       // overlapping cuts, same rack
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted bad input", s)
		}
	}
}

func TestValidatePartitionOverlap(t *testing.T) {
	// Disjoint concurrent cuts are fine; so are back-to-back cuts of the
	// same nodes.
	for _, s := range []string{
		"partition@10s:nodes=a+b,down=20s;partition@15s:nodes=c+d,down=5s",
		"partition@10s:nodes=a+b,down=5s;partition@20s:nodes=a+b,down=5s",
		"partition@10s:rack=1,down=20s;partition@15s:rack=2,down=5s",
		// A nodes= cut and a rack= cut cannot be compared statically.
		"partition@10s:nodes=a+b,down=20s;partition@15s:rack=1,down=5s",
	} {
		if _, err := ParsePlan(s); err != nil {
			t.Errorf("ParsePlan(%q) rejected a valid plan: %v", s, err)
		}
	}
}

func TestRandomPlanGeneratesNetworkFaults(t *testing.T) {
	nodes := []string{"slave-00", "slave-01", "slave-02", "slave-03", "slave-04"}
	window := 2 * time.Minute
	kinds := map[Kind]bool{}
	for seed := int64(1); seed <= 120; seed++ {
		pl := RandomPlan(seed, nodes, window, 6)
		for _, ev := range pl.Events {
			kinds[ev.Kind] = true
			if ev.Kind != Partition {
				continue
			}
			if len(ev.Nodes) < 1 || len(ev.Nodes) > (len(nodes)-1)/2 {
				t.Fatalf("seed %d: partition cut size %d outside [1, %d]", seed, len(ev.Nodes), (len(nodes)-1)/2)
			}
			if ev.Down < window/8 || ev.Down > window/8+window/4 {
				t.Fatalf("seed %d: partition down=%v outside [%v, %v]", seed, ev.Down, window/8, window/8+window/4)
			}
		}
		if err := pl.Validate(); err != nil {
			t.Fatalf("seed %d: invalid random plan: %v", seed, err)
		}
	}
	for _, k := range []Kind{Partition, SlowLink, DropLink} {
		if !kinds[k] {
			t.Errorf("no seed in 1..120 generated %s", k)
		}
	}
}

func TestRandomPlanSingleNodeNeverPartitions(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		for _, ev := range RandomPlan(seed, []string{"slave-00"}, time.Minute, 10).Events {
			if ev.Kind == Partition {
				t.Fatalf("single-node plan contains %s", ev.Kind)
			}
		}
	}
}
