// JobTracker mortality: job state journaled to the master's metadata
// volume and the scheduler made killable. Every job-state transition — job
// start, map completion, map-output loss, reduce completion, failure —
// appends a record to a write-ahead journal whose bytes go through the
// page-cache and disk models, with periodic checkpoints rolling the journal
// into an image. Killing the JobTracker stalls task grants on bounded
// exponential backoff; cluster-membership events (node deaths, rejoins,
// volume failures) that fire during the outage are queued and only acted on
// at restart, when the recovered JobTracker also reconciles zombie map
// outputs via the task trackers' incarnation counters.
//
// None of this exists unless EnableMaster is called; a run without master
// recovery journals nothing and schedules byte-identically to a build
// without this file. The logical journal is appended synchronously at
// transition time (durability is never lost to a crash) while its bytes are
// charged to the metadata disk in batches, as in the HDFS master layer.
package mapred

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"iochar/internal/disk"
	"iochar/internal/localfs"
	"iochar/internal/sim"
)

const (
	jtJournalFileName = "jt_journal"
	jtImageFileName   = "jt_image"
)

// MasterConfig tunes JobTracker durability and recovery.
type MasterConfig struct {
	// CheckpointInterval is how often the journal is rolled into an image
	// (the mapred.jobtracker.restart.recover checkpoint cadence).
	CheckpointInterval time.Duration
	// RetryBase and RetryMax bound the exponential backoff task trackers
	// sleep on while the JobTracker is down.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed drives the jitter of tracker retry backoff.
	Seed int64
}

// DefaultMasterConfig returns experiment-scale defaults; callers scale the
// durations alongside the rest of the run's timing knobs.
func DefaultMasterConfig() MasterConfig {
	return MasterConfig{
		CheckpointInterval: 30 * time.Second,
		RetryBase:          200 * time.Millisecond,
		RetryMax:           5 * time.Second,
		Seed:               2,
	}
}

// MasterStats counts the JobTracker's durability and recovery work.
type MasterStats struct {
	JournalRecords  uint64        // job-state records logged
	JournalBytes    uint64        // journal bytes appended to the metadata disk
	JournalBatches  uint64        // journal daemon flushes
	Checkpoints     uint64        // image checkpoints written
	CheckpointBytes uint64        // image bytes written
	Restarts        int           // times the JobTracker was restarted
	ReplayRecords   uint64        // journal records replayed across restarts
	ReplayBytes     uint64        // image+journal bytes read back at restart
	GrantStalls     uint64        // tracker requests that found the master down
	StallTime       time.Duration // total tracker time spent stalled
	MissedEvents    uint64        // membership events queued during outages
	ZombieOutputs   uint64        // map outputs reconciled away at restart
}

// jtOp enumerates the journal's record types.
type jtOp int

const (
	jOpStart jtOp = iota
	jOpMapDone
	jOpMapLost
	jOpRedDone
	jOpFail
	jOpEnd
)

func (op jtOp) String() string {
	switch op {
	case jOpStart:
		return "JOB_START"
	case jOpMapDone:
		return "MAP_DONE"
	case jOpMapLost:
		return "MAP_LOST"
	case jOpRedDone:
		return "REDUCE_DONE"
	case jOpFail:
		return "JOB_FAIL"
	case jOpEnd:
		return "JOB_END"
	}
	return "INVALID"
}

// jtRec is one journal record. a/b carry the op's integers: task or
// partition index, or (for JOB_START) total maps and reduces.
type jtRec struct {
	op   jtOp
	job  string
	a, b int
}

// missedEvent is a cluster-membership change that fired while the
// JobTracker was down and must be applied at restart, in arrival order.
type missedEvent struct {
	kind string // "node-down" | "node-rejoin" | "vol-down"
	name string
	vol  *localfs.FS
}

// jtMaster is the live JobTracker-durability machinery hanging off a
// Runtime.
type jtMaster struct {
	cfg  MasterConfig
	vol  *localfs.FS
	rng  *rand.Rand
	down bool

	journalFile *localfs.File
	pending     []jtRec // records logged but not yet byte-charged
	journal     []jtRec // logical journal since the last checkpoint
	image       JobTrackerSnapshot
	missed      []missedEvent

	wake    *sim.Cond
	ready   *sim.Cond
	stopped bool
	stats   MasterStats
}

// EnableMaster switches on JobTracker job-state durability, journaling to
// the given metadata volume. Call it once, before any job runs, and only
// for runs modeling master recovery.
func (rt *Runtime) EnableMaster(vol *localfs.FS, cfg MasterConfig) {
	if rt.master != nil {
		panic("mapred: EnableMaster called twice")
	}
	if vol == nil {
		panic("mapred: EnableMaster needs a metadata volume")
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 30 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 200 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryBase {
		cfg.RetryMax = cfg.RetryBase
	}
	ms := &jtMaster{
		cfg:   cfg,
		vol:   vol,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		image: JobTrackerSnapshot{},
		wake:  sim.NewCond(rt.env),
		ready: sim.NewCond(rt.env),
	}
	f := vol.Create(jtJournalFileName)
	f.SetStage(disk.StageMeta)
	ms.journalFile = f
	rt.master = ms
	rt.jobs = make(map[string]*jobState)

	rt.env.Go("jobtracker-journal", func(p *sim.Proc) {
		for {
			for len(ms.pending) == 0 || ms.down {
				if ms.stopped {
					return
				}
				ms.wake.Wait(p)
			}
			rt.jtFlush(p)
		}
	})
	rt.env.Go("jobtracker-checkpoint", func(p *sim.Proc) {
		for {
			p.Sleep(ms.cfg.CheckpointInterval)
			if ms.stopped {
				return
			}
			if ms.down {
				continue
			}
			rt.jtCheckpoint(p)
		}
	})
}

// MasterEnabled reports whether EnableMaster has been called.
func (rt *Runtime) MasterEnabled() bool { return rt.master != nil }

// MasterStats returns a copy of the JobTracker durability counters (zero
// value when the master layer is not enabled).
func (rt *Runtime) MasterStats() MasterStats {
	if rt.master == nil {
		return MasterStats{}
	}
	return rt.master.stats
}

// JobTrackerDown reports whether the JobTracker is currently crashed.
func (rt *Runtime) JobTrackerDown() bool {
	ms := rt.master
	return ms != nil && ms.down
}

// jtJournal logs one record: appended to the logical journal immediately
// and queued for the journal daemon to charge its bytes.
func (rt *Runtime) jtJournal(r jtRec) {
	ms := rt.master
	if ms == nil {
		return
	}
	ms.journal = append(ms.journal, r)
	ms.pending = append(ms.pending, r)
	ms.stats.JournalRecords++
	ms.wake.Broadcast()
}

// jtRecord is the jobState-side hook into the journal.
func (js *jobState) jtRecord(op jtOp, a, b int) {
	if js.rt == nil || js.rt.master == nil {
		return
	}
	js.rt.jtJournal(jtRec{op: op, job: js.jobName, a: a, b: b})
}

func renderJTRec(r jtRec) string {
	return fmt.Sprintf("%s %s %d %d\n", r.op, r.job, r.a, r.b)
}

// jtFlush appends every pending record to the journal file and syncs it.
func (rt *Runtime) jtFlush(p *sim.Proc) {
	ms := rt.master
	if ms == nil || len(ms.pending) == 0 {
		return
	}
	batch := ms.pending
	ms.pending = nil
	var buf []byte
	for _, r := range batch {
		buf = append(buf, renderJTRec(r)...)
	}
	ms.journalFile.Append(p, buf)
	ms.journalFile.Sync(p)
	ms.stats.JournalBytes += uint64(len(buf))
	ms.stats.JournalBatches++
}

// MasterFlush synchronously drains pending journal records to disk.
func (rt *Runtime) MasterFlush(p *sim.Proc) {
	if rt.master != nil {
		rt.jtFlush(p)
	}
}

// jtCheckpoint rolls the journal into a fresh image, both written as real
// bytes on the metadata volume.
func (rt *Runtime) jtCheckpoint(p *sim.Proc) {
	ms := rt.master
	rt.jtFlush(p)
	ms.image = rt.LiveJobs()
	ms.journal = nil
	ms.vol.Delete(jtJournalFileName)
	f := ms.vol.Create(jtJournalFileName)
	f.SetStage(disk.StageMeta)
	ms.journalFile = f

	data := renderJTImage(ms.image)
	ms.vol.Delete(jtImageFileName)
	img := ms.vol.Create(jtImageFileName)
	img.SetStage(disk.StageMeta)
	img.Append(p, data)
	img.Sync(p)
	ms.stats.Checkpoints++
	ms.stats.CheckpointBytes += uint64(len(data))
}

func renderJTImage(snap JobTrackerSnapshot) []byte {
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	for _, n := range names {
		j := snap[n]
		buf = append(buf, fmt.Sprintf("J %s %d %d %t\n", n, j.TotalMaps, j.Reduces, j.Failed)...)
		buf = append(buf, fmt.Sprintf("M %v\nR %v\n", j.MapDone, j.RedDone)...)
	}
	return buf
}

// CrashJobTracker fail-stops the JobTracker: task grants stall, membership
// events queue, and nothing is journaled until RestartJobTracker. Safe to
// call from a fault injector's inline timer callback — it never blocks.
func (rt *Runtime) CrashJobTracker() {
	ms := rt.master
	if ms == nil {
		panic("mapred: CrashJobTracker without EnableMaster")
	}
	ms.down = true
}

// RestartJobTracker brings the JobTracker back: it replays image+journal
// off the metadata disk (charged as a sequential read), applies the
// membership events missed during the outage in arrival order, reconciles
// zombie map outputs whose nodes died or bounced unseen (their incarnation
// counters no longer match), and resumes scheduling.
func (rt *Runtime) RestartJobTracker(p *sim.Proc) {
	ms := rt.master
	if ms == nil || !ms.down {
		return
	}
	for _, name := range []string{jtImageFileName, jtJournalFileName} {
		sz := ms.vol.Size(name)
		if sz <= 0 {
			continue
		}
		f, err := ms.vol.Open(name)
		if err != nil {
			continue
		}
		f.SetStage(disk.StageMeta)
		f.ReadAt(p, 0, sz)
		ms.stats.ReplayBytes += uint64(sz)
	}
	ms.stats.Restarts++
	ms.stats.ReplayRecords += uint64(len(ms.journal))
	ms.down = false

	missed := ms.missed
	ms.missed = nil
	for _, ev := range missed {
		switch ev.kind {
		case "node-down":
			rt.OnNodeDown(ev.name)
		case "node-rejoin":
			rt.OnNodeRejoin(ev.name)
		case "vol-down":
			rt.OnVolumeDown(ev.vol)
		}
	}
	// Belt and braces: an output whose node bounced entirely within the
	// outage produces no missed event pair that loses it, but its incarnation
	// counter gives the zombie away.
	for _, js := range rt.sortedJobs() {
		for _, out := range js.outputs {
			if out.lost {
				continue
			}
			if !out.node.Alive() || out.node.Incarnation() != out.inc {
				js.loseOutput(out)
				ms.stats.ZombieOutputs++
			}
		}
		js.broadcastAll()
	}
	ms.wake.Broadcast()
	ms.ready.Broadcast()
}

// jtWait stalls a task tracker's grant request while the JobTracker is
// down, with jittered exponential backoff retries — and, symmetrically,
// while the tracker's node is partitioned away from the JobTracker's: a
// cut-off tracker behaves exactly like the client of a bounced master. The
// partition stall is bounded by the net-retry budget so a tracker on a
// permanently dead node cannot spin the simulation.
func (rt *Runtime) jtWait(p *sim.Proc, node string) {
	rt.jtDownStall(p)
	if rt.topo == nil || node == "" {
		return
	}
	jt := rt.cl.Master.Name
	if rt.reachable(node, jt) {
		return
	}
	bo := sim.NewBackoff(rt.cfg.NetRetryBase, rt.cfg.NetRetryMax, rt.netRng)
	for i := 0; i < rt.cfg.MaxNetFetchRetries; i++ {
		if rt.reachable(node, jt) || rt.topo.Down(node) {
			break
		}
		p.Sleep(bo.Next())
	}
	// The JobTracker may have bounced while this tracker was cut off.
	rt.jtDownStall(p)
}

// jtDownStall waits out a JobTracker crash with jittered backoff.
func (rt *Runtime) jtDownStall(p *sim.Proc) {
	ms := rt.master
	if ms == nil || ms.stopped || !ms.down {
		return
	}
	ms.stats.GrantStalls++
	start := p.Now()
	bo := sim.NewBackoff(ms.cfg.RetryBase, ms.cfg.RetryMax, ms.rng)
	for !ms.stopped && ms.down {
		p.Sleep(bo.Next())
	}
	ms.stats.StallTime += p.Now() - start
}

// WaitMasterReady blocks p until the JobTracker is serving — the run
// driver's barrier before waiting out recovery.
func (rt *Runtime) WaitMasterReady(p *sim.Proc) {
	ms := rt.master
	if ms == nil {
		return
	}
	for !ms.stopped && ms.down {
		ms.ready.Wait(p)
	}
}

// StopMaster shuts the durability machinery down; daemons exit at their
// next tick and stalled trackers unblock.
func (rt *Runtime) StopMaster() {
	ms := rt.master
	if ms == nil || ms.stopped {
		return
	}
	ms.stopped = true
	ms.wake.Broadcast()
	ms.ready.Broadcast()
}

// deferMembership queues a membership event while the JobTracker is down;
// it reports whether the event was queued (the caller then skips acting).
func (rt *Runtime) deferMembership(kind, name string, vol *localfs.FS) bool {
	ms := rt.master
	if ms == nil || !ms.down {
		return false
	}
	ms.missed = append(ms.missed, missedEvent{kind: kind, name: name, vol: vol})
	ms.stats.MissedEvents++
	return true
}

func (rt *Runtime) sortedJobs() []*jobState {
	out := make([]*jobState, 0, len(rt.jobs))
	for _, js := range rt.jobs {
		out = append(out, js)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].jobName < out[j].jobName })
	return out
}

// Replay-equivalence surface.

// JobRecord is one in-flight job in a JobTracker snapshot.
type JobRecord struct {
	TotalMaps int
	Reduces   int
	MapDone   []bool
	RedDone   []bool
	Failed    bool
}

// JobTrackerSnapshot is a canonical copy of the JobTracker's in-flight job
// state, keyed by job name.
type JobTrackerSnapshot map[string]*JobRecord

func cloneJTSnapshot(snap JobTrackerSnapshot) JobTrackerSnapshot {
	out := make(JobTrackerSnapshot, len(snap))
	for n, j := range snap {
		c := &JobRecord{TotalMaps: j.TotalMaps, Reduces: j.Reduces, Failed: j.Failed}
		c.MapDone = append(c.MapDone, j.MapDone...)
		c.RedDone = append(c.RedDone, j.RedDone...)
		out[n] = c
	}
	return out
}

// LiveJobs snapshots the scheduler's in-memory view of every in-flight job.
func (rt *Runtime) LiveJobs() JobTrackerSnapshot {
	snap := make(JobTrackerSnapshot, len(rt.jobs))
	for name, js := range rt.jobs {
		j := &JobRecord{TotalMaps: js.totalMaps, Reduces: len(js.redDone), Failed: js.failed != nil}
		j.MapDone = append(j.MapDone, js.completed...)
		j.RedDone = append(j.RedDone, js.redDone...)
		snap[name] = j
	}
	return snap
}

// MasterReplayJobs rebuilds the job state the way a restarting JobTracker
// does: last checkpoint image plus the journal. Equality with LiveJobs is
// the durability invariant.
func (rt *Runtime) MasterReplayJobs() JobTrackerSnapshot {
	ms := rt.master
	if ms == nil {
		panic("mapred: MasterReplayJobs without EnableMaster")
	}
	snap := cloneJTSnapshot(ms.image)
	for _, r := range ms.journal {
		applyJTRec(snap, r)
	}
	return snap
}

func applyJTRec(snap JobTrackerSnapshot, r jtRec) {
	switch r.op {
	case jOpStart:
		snap[r.job] = &JobRecord{
			TotalMaps: r.a,
			Reduces:   r.b,
			MapDone:   make([]bool, r.a),
			RedDone:   make([]bool, r.b),
		}
	case jOpMapDone:
		if j := snap[r.job]; j != nil && r.a < len(j.MapDone) {
			j.MapDone[r.a] = true
		}
	case jOpMapLost:
		if j := snap[r.job]; j != nil && r.a < len(j.MapDone) {
			j.MapDone[r.a] = false
		}
	case jOpRedDone:
		if j := snap[r.job]; j != nil && r.a < len(j.RedDone) {
			j.RedDone[r.a] = true
		}
	case jOpFail:
		if j := snap[r.job]; j != nil {
			j.Failed = true
		}
	case jOpEnd:
		delete(snap, r.job)
	}
}
