// Fault-mode JobTracker mechanics: re-enqueueing map tasks whose outputs
// died with their node, releasing reduce partitions owned by dead trackers,
// and failing jobs cleanly when recovery budgets run out. Every function
// here is a no-op or unreachable in a healthy run — the fault-free
// scheduler path is byte-identical to one without this file.
package mapred

import (
	"errors"

	"iochar/internal/cluster"
	"iochar/internal/localfs"
	"iochar/internal/netsim"
	"iochar/internal/sim"
)

// OnVolumeDown is the JobTracker learning that an intermediate-data volume
// fail-stopped: completed map outputs stored on it are unreadable by the
// shuffle, so their tasks are re-enqueued (Hadoop's TaskTracker reports the
// failed mapred.local.dir and the affected attempts are re-run).
func (rt *Runtime) OnVolumeDown(vol *localfs.FS) {
	if rt.deferMembership("vol-down", "", vol) {
		return // the JobTracker is down; it learns of this at restart
	}
	for js := range rt.active {
		for _, out := range js.outputs {
			if out.vol == vol {
				js.loseOutput(out)
			}
		}
	}
}

// fetchOneFaulty is the recovery-aware shuffle fetch: a fetch that fails
// (the map-side node died mid-transfer, or the injected fetch fault dropped
// it) is retried with exponential backoff up to MaxFetchRetries times, and
// past that the map output is declared lost, which re-enqueues its task.
//
// Transient network failures take a different path: a map-side node that is
// merely partitioned away (or a path whose loss rate exhausted the
// retransmit budget) heals on a schedule, so the fetcher waits it out under
// the much larger MaxNetFetchRetries budget — and never charges the
// tracker's blacklist account, because the fabric, not the tracker, is at
// fault. Losing the output (and re-executing the map) happens only when the
// net-retry budget is exhausted too.
func (rt *Runtime) fetchOneFaulty(fp *sim.Proc, js *jobState, st *fetchState, out *mapOutput, node *cluster.Node, part int, ingest func(*sim.Proc, []byte, segment)) {
	seg := out.segs[part]
	mark := func() {
		st.got[out.taskIdx] = true
		st.count++
		if st.count >= js.totalMaps {
			js.outputsCond.Broadcast() // release sibling fetchers parked for more
		}
	}
	if seg.clen == 0 {
		mark()
		return
	}
	retries, netRetries := 0, 0
	var nbo *sim.Backoff
	// netStall backs off across a transient network fault; false means the
	// budget ran out and the output was declared lost.
	netStall := func() bool {
		netRetries++
		js.mu(func() {
			js.counters.FetchRetries++
			js.counters.NetFetchStalls++
		})
		if netRetries > js.cfg.MaxNetFetchRetries {
			js.mu(func() { js.counters.FailedFetches++ })
			js.loseOutput(out)
			return false
		}
		if nbo == nil {
			nbo = sim.NewBackoff(js.cfg.NetRetryBase, js.cfg.NetRetryMax, rt.netRng)
		}
		fp.Sleep(nbo.Next())
		return true
	}
	for {
		if !node.Alive() || js.failed != nil || js.done {
			return // zombie fetcher; this attempt is being discarded
		}
		if out.lost {
			return // a replacement output will appear in the list
		}
		if !out.node.Alive() || out.node.Incarnation() != out.inc {
			js.loseOutput(out)
			return
		}
		dropped := rt.fetchFault != nil && rt.fetchFault(fp.Now())
		if !dropped {
			if !rt.reachable(out.node.Name, node.Name) {
				// Partitioned away from the map side: don't charge the
				// remote disk read, just wait for the heal.
				if !netStall() {
					return
				}
				continue
			}
			enc := out.file.ReadAt(fp, seg.off, seg.clen) // map-side disk read
			if out.lost || out.node.Incarnation() != out.inc {
				return // the owner died (or bounced) while the read slept;
				// enc may be crash-truncated and a replacement will appear
			}
			err := rt.net.TryTransfer(fp, out.node.Name, node.Name, seg.clen)
			if err == nil {
				ingest(fp, enc, seg)
				mark()
				return
			}
			if errors.Is(err, netsim.ErrTransient) {
				if !netStall() {
					return
				}
				continue
			}
		}
		retries++
		js.mu(func() { js.counters.FetchRetries++ })
		if retries > js.cfg.MaxFetchRetries {
			js.mu(func() { js.counters.FailedFetches++ })
			js.noteTrackerFailure(out.node.Name)
			js.loseOutput(out)
			return
		}
		fp.Sleep(js.cfg.FetchRetryDelay << (retries - 1)) // exponential backoff
	}
}

// noteTrackerFailure charges one failed task attempt to a tracker; at
// Config.MaxTrackerFailures the node is blacklisted — no new attempts are
// scheduled there (Hadoop's per-job tracker blacklist), so a fail-slow node
// stops soaking up the retry budget. Parked workers on the node are woken
// so they observe the blacklist and vacate their slots.
func (js *jobState) noteTrackerFailure(node string) {
	if !js.faulty || js.blacklisted[node] {
		return
	}
	js.trackerFailures[node]++
	if js.trackerFailures[node] < js.cfg.MaxTrackerFailures {
		return
	}
	js.blacklisted[node] = true
	js.mu(func() { js.counters.BlacklistedTrackers++ })
	js.mapWorkCond.Broadcast()
	js.redCond.Broadcast()
}

// fail records the job's terminal error once and wakes every parked worker
// so the job drains instead of hanging.
func (js *jobState) fail(err error) {
	if js.failed != nil {
		return
	}
	js.failed = err
	js.jtRecord(jOpFail, 0, 0)
	js.broadcastAll()
}

func (js *jobState) broadcastAll() {
	js.outputsCond.Broadcast()
	js.slowCond.Broadcast()
	if js.mapWorkCond != nil {
		js.mapWorkCond.Broadcast()
	}
	if js.redCond != nil {
		js.redCond.Broadcast()
	}
}

// noteAttempt records that node is running an attempt of task i, so the
// JobTracker can tell whether a task still has a live attempt when a node
// dies. Pure bookkeeping; kept on in healthy runs for simplicity.
func (js *jobState) noteAttempt(i int, node string) {
	if js.attemptNodes == nil {
		return
	}
	js.attemptNodes[i] = append(js.attemptNodes[i], node)
}

// clearAttempt removes one record of node running task i (the attempt
// returned, whatever its outcome).
func (js *jobState) clearAttempt(i int, node string) {
	if js.attemptNodes == nil {
		return
	}
	for k, n := range js.attemptNodes[i] {
		if n == node {
			js.attemptNodes[i] = append(js.attemptNodes[i][:k], js.attemptNodes[i][k+1:]...)
			return
		}
	}
}

// loseOutput declares a map output unusable (its node died, or fetches of
// it exhausted their retries): the task is re-enqueued unless another
// attempt is still running, and parked map workers and fetchers are woken.
// Idempotent per output.
func (js *jobState) loseOutput(out *mapOutput) {
	if !js.faulty || out.lost {
		return
	}
	out.lost = true
	i := out.taskIdx
	if js.completed[i] {
		js.completed[i] = false
		js.jtRecord(jOpMapLost, i, 0)
		js.mapsDone--
		js.counters.ReExecutedMaps++
	}
	if js.taken[i] && len(js.attemptNodes[i]) == 0 {
		js.taken[i] = false
		js.mapsLeft++
	}
	js.mapWorkCond.Broadcast()
	js.outputsCond.Broadcast()
}

// finishReduce marks a partition complete if this node still owns it. A
// false return means the attempt was a zombie (its partition was
// reassigned after its node was declared dead) and its results must be
// discarded. Healthy runs always win: each partition runs exactly once.
func (js *jobState) finishReduce(part int, node string) bool {
	if !js.faulty {
		if js.redDone != nil && !js.redDone[part] {
			// Master-recovery mode on a healthy run: record the completion the
			// fault path below would have.
			js.redDone[part] = true
			js.jtRecord(jOpRedDone, part, 0)
		}
		return true
	}
	if js.redDone[part] || js.redOwner[part] != node {
		return false
	}
	js.redDone[part] = true
	js.jtRecord(jOpRedDone, part, 0)
	js.redDoneCount++
	js.redCond.Broadcast()
	if js.redDoneCount == len(js.redDone) {
		js.done = true
		js.broadcastAll()
	}
	return true
}

// onNodeDown is the per-job half of Runtime.OnNodeDown: write off the dead
// node's running attempts, lose its finished map outputs, and release its
// reduce partitions.
func (js *jobState) onNodeDown(name string) {
	if !js.faulty {
		return
	}
	for i := range js.attemptNodes {
		kept := js.attemptNodes[i][:0]
		for _, n := range js.attemptNodes[i] {
			if n != name {
				kept = append(kept, n)
			}
		}
		js.attemptNodes[i] = kept
		if js.taken[i] && !js.completed[i] && len(kept) == 0 {
			js.taken[i] = false
			js.mapsLeft++
		}
	}
	for _, out := range js.outputs {
		if out.node.Name == name {
			js.loseOutput(out)
		}
	}
	for i := range js.redOwner {
		if js.redClaimed[i] && !js.redDone[i] && js.redOwner[i] == name {
			js.redClaimed[i] = false
			js.redOwner[i] = ""
		}
	}
	js.redCond.Broadcast()
	js.mapWorkCond.Broadcast()
	js.outputsCond.Broadcast()
}
