package mapred

import (
	"fmt"
	"time"

	"iochar/internal/cluster"
	"iochar/internal/hdfs"
	"iochar/internal/sim"
)

// transferer is the network dependency (satisfied by *netsim.Network).
type transferer interface {
	Transfer(p *sim.Proc, src, dst string, bytes int64)
}

// Runtime is the MapReduce service for one cluster: the JobTracker plus a
// TaskTracker per slave, each offering Config.MapSlots and
// Config.ReduceSlots concurrent task slots.
type Runtime struct {
	env *sim.Env
	cl  *cluster.Cluster
	fs  *hdfs.FS
	net transferer
	cfg Config
}

// New wires a runtime. Slaves double as DataNodes and TaskTrackers, as on
// the paper's testbed.
func New(env *sim.Env, cl *cluster.Cluster, fs *hdfs.FS, net transferer, cfg Config) *Runtime {
	if cfg.MapSlots <= 0 || cfg.ReduceSlots <= 0 {
		panic("mapred: slot counts must be positive")
	}
	if cfg.SortBufBytes <= 0 || cfg.ShuffleBufBytes <= 0 {
		panic("mapred: buffer sizes must be positive")
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 256 << 10
	}
	return &Runtime{env: env, cl: cl, fs: fs, net: net, cfg: cfg}
}

// Config returns the runtime configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// jobState is the JobTracker's view of one running job.
type jobState struct {
	env      *sim.Env
	cfg      *Config
	counters Counters

	splits    []split
	taken     []bool
	completed []bool
	startedAt []time.Duration
	attempts  []int
	mapsLeft  int
	mapsDone  int
	totalMaps int

	// completed-duration statistics feeding the straggler detector.
	durSum time.Duration
	durCnt int

	outputs     []*mapOutput // completion order
	outputsCond *sim.Cond

	reduceNext  int
	slowstartOK bool
	slowCond    *sim.Cond
	slowAt      int // maps needed before reducers start
}

// taskDone reports whether some attempt of the task already finished —
// running backup/original attempts poll this at chunk boundaries and
// abandon, the runtime's equivalent of Hadoop killing the loser.
func (js *jobState) taskDone(taskIdx int) bool { return js.completed[taskIdx] }

// mu runs fn "atomically" — the simulation serializes all processes, so
// this is documentation of intent rather than a lock, but it keeps every
// counter mutation in one audited place.
func (js *jobState) mu(fn func()) { fn() }

// completeMap registers a finished map attempt's output. The first attempt
// of a task wins; a later duplicate (speculation lost the race at the very
// end) discards its files. It reports whether this attempt won.
func (js *jobState) completeMap(out *mapOutput) bool {
	if js.completed[out.taskIdx] {
		if out.file != nil {
			_ = out.vol.Delete(out.file.Name())
		}
		return false
	}
	js.completed[out.taskIdx] = true
	js.durSum += js.env.Now() - js.startedAt[out.taskIdx]
	js.durCnt++
	js.outputs = append(js.outputs, out)
	js.mapsDone++
	js.outputsCond.Broadcast()
	if !js.slowstartOK && js.mapsDone >= js.slowAt {
		js.slowstartOK = true
		js.slowCond.Broadcast()
	}
	return true
}

// nextOutput hands a reduce fetcher the next map output in completion
// order, blocking until one is available; nil means every map output has
// been consumed by this fetcher group.
func (js *jobState) nextOutput(p *sim.Proc, cursor *int) *mapOutput {
	for {
		if *cursor < len(js.outputs) {
			out := js.outputs[*cursor]
			*cursor++
			return out
		}
		if *cursor >= js.totalMaps {
			return nil
		}
		js.outputsCond.Wait(p)
	}
}

// pickMap chooses the next map task for a node, preferring data-local
// splits as Hadoop's scheduler does. If allowRemote is false a node with no
// local work gets -1 while fresh tasks remain (delay scheduling). When no
// fresh task is left but maps are still running, an idle slot may claim a
// speculative backup attempt of a straggling task; only when every task has
// completed does it return remain=false.
func (js *jobState) pickMap(node string, allowRemote bool) (idx int, remain bool) {
	if js.mapsDone == js.totalMaps {
		return -1, false
	}
	if js.mapsLeft > 0 {
		fallback := -1
		for i, sp := range js.splits {
			if js.taken[i] {
				continue
			}
			if fallback < 0 {
				fallback = i
			}
			for _, h := range sp.hosts {
				if h == node {
					return js.claim(i), true
				}
			}
		}
		if allowRemote && fallback >= 0 {
			return js.claim(fallback), true
		}
		return -1, true
	}
	if idx := js.pickStraggler(); idx >= 0 {
		return idx, true
	}
	return -1, true
}

// claim marks a fresh task taken and records its start.
func (js *jobState) claim(i int) int {
	js.taken[i] = true
	js.attempts[i]++
	js.startedAt[i] = js.env.Now()
	js.mapsLeft--
	return i
}

// pickStraggler returns a running, un-duplicated task whose elapsed time
// exceeds the speculation threshold (a multiple of the mean completed-task
// duration), or -1. Hadoop's progress-rate heuristic reduces to elapsed
// time here because attempts progress linearly.
func (js *jobState) pickStraggler() int {
	if js.cfg == nil || !js.cfg.Speculative || js.durCnt == 0 {
		return -1
	}
	avg := js.durSum / time.Duration(js.durCnt)
	threshold := time.Duration(float64(avg) * js.cfg.SpeculativeSlowdown)
	best, bestElapsed := -1, threshold
	now := js.env.Now()
	for i := range js.splits {
		if !js.taken[i] || js.completed[i] || js.attempts[i] != 1 {
			continue
		}
		if elapsed := now - js.startedAt[i]; elapsed > bestElapsed {
			best, bestElapsed = i, elapsed
		}
	}
	if best >= 0 {
		js.attempts[best]++
		js.counters.SpeculativeAttempts++
	}
	return best
}

// Run executes the job, blocking p until completion, and returns its
// counters and phase timings.
func (rt *Runtime) Run(p *sim.Proc, job *Job) (*Result, error) {
	if err := rt.validate(job); err != nil {
		return nil, err
	}
	if job.Partitioner == nil {
		job.Partitioner = HashPartition
	}
	splits, err := rt.plan(job)
	if err != nil {
		return nil, err
	}
	js := &jobState{
		env:         rt.env,
		cfg:         &rt.cfg,
		splits:      splits,
		taken:       make([]bool, len(splits)),
		completed:   make([]bool, len(splits)),
		startedAt:   make([]time.Duration, len(splits)),
		attempts:    make([]int, len(splits)),
		mapsLeft:    len(splits),
		totalMaps:   len(splits),
		outputsCond: sim.NewCond(rt.env),
		slowCond:    sim.NewCond(rt.env),
	}
	js.slowAt = int(rt.cfg.SlowstartFrac * float64(js.totalMaps))
	if js.slowAt < 1 {
		js.slowAt = 1
	}
	res := &Result{Start: p.Now()}

	var workers []*sim.Handle
	// Map-slot workers.
	for _, node := range rt.cl.Slaves {
		node := node
		for s := 0; s < rt.cfg.MapSlots; s++ {
			s := s
			workers = append(workers, rt.env.Go(fmt.Sprintf("map-worker:%s/%d", node.Name, s), func(wp *sim.Proc) {
				// Heartbeat stagger: a tracker fills one slot per heartbeat
				// round, so the first claims spread across nodes instead of
				// one node's full slot bank draining the task queue.
				wp.Sleep(time.Duration(s) * rt.cfg.LocalityWait / 4)
				misses := 0
				for {
					idx, remain := js.pickMap(node.Name, misses >= rt.cfg.LocalityRetries)
					if !remain {
						return
					}
					if idx < 0 {
						// Delay scheduling: wait for local work to appear
						// or for the steal budget to unlock.
						misses++
						wp.Sleep(rt.cfg.LocalityWait)
						continue
					}
					misses = 0
					attempt := js.attempts[idx]
					sp := js.splits[idx]
					local := false
					for _, h := range sp.hosts {
						if h == node.Name {
							local = true
							break
						}
					}
					js.mu(func() {
						if local {
							js.counters.LocalMaps++
						} else {
							js.counters.RemoteMaps++
						}
					})
					rt.mapTask(wp, job, js, idx, attempt, sp, node)
				}
			}))
		}
	}
	mapWorkers := len(workers)

	// Reduce-slot workers: start pulling partitions once slowstart allows.
	for _, node := range rt.cl.Slaves {
		node := node
		for s := 0; s < rt.cfg.ReduceSlots; s++ {
			workers = append(workers, rt.env.Go(fmt.Sprintf("reduce-worker:%s/%d", node.Name, s), func(wp *sim.Proc) {
				for !js.slowstartOK {
					js.slowCond.Wait(wp)
				}
				for {
					var part int
					got := false
					js.mu(func() {
						if js.reduceNext < job.NumReduces {
							part = js.reduceNext
							js.reduceNext++
							got = true
						}
					})
					if !got {
						return
					}
					rt.reduceTask(wp, job, js, part, node)
				}
			}))
		}
	}

	for i, h := range workers {
		h.Wait(p)
		if i == mapWorkers-1 {
			res.MapsDone = p.Now()
		}
	}
	// Job cleanup: map output files are deleted once the job completes,
	// which is when dirty intermediate pages that never aged out die in the
	// cache instead of reaching the disks.
	for _, out := range js.outputs {
		if err := out.vol.Delete(out.file.Name()); err != nil {
			return nil, fmt.Errorf("mapred: cleanup: %v", err)
		}
	}
	res.End = p.Now()
	res.Counters = js.counters
	res.Counters.MapTasks = js.totalMaps
	res.Counters.ReduceTasks = job.NumReduces
	return res, nil
}

// validate rejects malformed jobs loudly.
func (rt *Runtime) validate(job *Job) error {
	switch {
	case job.Mapper == nil:
		return fmt.Errorf("mapred: job %s: nil mapper", job.Name)
	case job.Reducer == nil:
		return fmt.Errorf("mapred: job %s: nil reducer", job.Name)
	case job.NumReduces <= 0:
		return fmt.Errorf("mapred: job %s: NumReduces = %d", job.Name, job.NumReduces)
	case len(job.Input) == 0:
		return fmt.Errorf("mapred: job %s: no input", job.Name)
	case job.Output == "":
		return fmt.Errorf("mapred: job %s: no output path", job.Name)
	case job.Format == nil:
		return fmt.Errorf("mapred: job %s: nil record format", job.Name)
	}
	return nil
}

// plan computes one split per block of each input file, with the block's
// replica hosts for locality scheduling.
func (rt *Runtime) plan(job *Job) ([]split, error) {
	blockSize := rt.fs.Config().BlockSize
	_, wholeFile := job.Format.(KVFormat)
	var out []split
	for _, path := range job.Input {
		size := rt.fs.Size(path)
		if size < 0 {
			return nil, fmt.Errorf("mapred: job %s: input %s not found", job.Name, path)
		}
		if size == 0 {
			continue
		}
		locs, err := rt.fs.BlockLocations(path)
		if err != nil {
			return nil, err
		}
		if wholeFile {
			var hosts []string
			if len(locs) > 0 {
				hosts = locs[0]
			}
			out = append(out, split{file: path, off: 0, len: size, hosts: hosts})
			continue
		}
		for b := int64(0); b*blockSize < size; b++ {
			length := blockSize
			if b*blockSize+length > size {
				length = size - b*blockSize
			}
			var hosts []string
			if int(b) < len(locs) {
				hosts = locs[b]
			}
			out = append(out, split{file: path, off: b * blockSize, len: length, hosts: hosts})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mapred: job %s: inputs are empty", job.Name)
	}
	return out, nil
}
