package mapred

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"iochar/internal/cluster"
	"iochar/internal/hdfs"
	"iochar/internal/sim"
)

// transferer is the network dependency (satisfied by *netsim.Network).
type transferer interface {
	Transfer(p *sim.Proc, src, dst string, bytes int64)
	TryTransfer(p *sim.Proc, src, dst string, bytes int64) error
}

// topology is the optional reachability view of the network, satisfied by
// *netsim.Network. Topology-blind fakes keep working: without it every
// node is always reachable.
type topology interface {
	Reachable(a, b string) bool
	Down(name string) bool
}

// Runtime is the MapReduce service for one cluster: the JobTracker plus a
// TaskTracker per slave, each offering Config.MapSlots and
// Config.ReduceSlots concurrent task slots.
type Runtime struct {
	env *sim.Env
	cl  *cluster.Cluster
	fs  *hdfs.FS
	net    transferer
	topo   topology // rt.net's topology view, nil for topology-blind fakes
	netRng *rand.Rand
	cfg    Config

	// Fault mode: nil/false in healthy runs, so every recovery branch below
	// is dead code and the scheduler is byte-identical to a build without
	// fault tolerance.
	faulty     bool
	fetchFault func(now time.Duration) bool // injected shuffle-fetch drop
	active     map[*jobState]bool           // jobs in flight, for OnNodeDown

	// Master-recovery mode (see master.go); nil in runs without it.
	master *jtMaster
	jobs   map[string]*jobState // in-flight jobs by name, for snapshots
}

// New wires a runtime. Slaves double as DataNodes and TaskTrackers, as on
// the paper's testbed.
func New(env *sim.Env, cl *cluster.Cluster, fs *hdfs.FS, net transferer, cfg Config) (*Runtime, error) {
	if cfg.MapSlots <= 0 || cfg.ReduceSlots <= 0 {
		return nil, fmt.Errorf("mapred: slot counts must be positive, got %d map / %d reduce", cfg.MapSlots, cfg.ReduceSlots)
	}
	if cfg.SortBufBytes <= 0 || cfg.ShuffleBufBytes <= 0 {
		return nil, fmt.Errorf("mapred: buffer sizes must be positive, got sort %d / shuffle %d", cfg.SortBufBytes, cfg.ShuffleBufBytes)
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 256 << 10
	}
	if cfg.MaxFetchRetries <= 0 {
		cfg.MaxFetchRetries = 3
	}
	if cfg.FetchRetryDelay <= 0 {
		cfg.FetchRetryDelay = time.Second
	}
	if cfg.MaxTaskAttempts <= 0 {
		cfg.MaxTaskAttempts = 4
	}
	if cfg.MaxTrackerFailures <= 0 {
		cfg.MaxTrackerFailures = 3
	}
	if cfg.NetRetryBase <= 0 {
		cfg.NetRetryBase = 200 * time.Millisecond
	}
	if cfg.NetRetryMax < cfg.NetRetryBase {
		cfg.NetRetryMax = cfg.NetRetryBase
	}
	if cfg.MaxNetFetchRetries <= 0 {
		cfg.MaxNetFetchRetries = 64
	}
	rt := &Runtime{env: env, cl: cl, fs: fs, net: net, cfg: cfg,
		netRng: rand.New(rand.NewSource(cfg.Seed ^ 0x6d725f6e)),
		active: make(map[*jobState]bool)}
	if t, ok := net.(topology); ok {
		rt.topo = t
	}
	return rt, nil
}

// reachable reports whether two nodes can exchange bytes right now; always
// true for topology-blind networks.
func (rt *Runtime) reachable(a, b string) bool {
	if rt.topo == nil {
		return true
	}
	return rt.topo.Reachable(a, b)
}

// EnableFaults switches the runtime's recovery machinery on: lingering map
// workers that can re-execute lost tasks, reduce reassignment, fetch
// retries. Call it once before Run and only for runs with a fault plan —
// the recovery scheduler trades some bookkeeping for survivability and is
// kept off the healthy baseline's path.
func (rt *Runtime) EnableFaults() { rt.faulty = true }

// SetFetchFault installs a hook consulted before every shuffle fetch; a
// true return drops the fetch (the transient network-fault injection
// point). Implies EnableFaults.
func (rt *Runtime) SetFetchFault(f func(now time.Duration) bool) {
	rt.faulty = true
	rt.fetchFault = f
}

// OnNodeDown is the JobTracker learning that a TaskTracker died: running
// attempts on the node are written off, its completed map outputs are
// declared lost (their tasks re-enqueued), and its claimed reduce
// partitions are released for other nodes.
func (rt *Runtime) OnNodeDown(name string) {
	if rt.deferMembership("node-down", name, nil) {
		return // the JobTracker is down; it learns of this at restart
	}
	for js := range rt.active {
		js.onNodeDown(name)
	}
}

// Config returns the runtime configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// jobState is the JobTracker's view of one running job.
type jobState struct {
	env      *sim.Env
	rt       *Runtime // journal hook access; scheduling never reads it
	cfg      *Config
	counters Counters

	splits    []split
	taken     []bool
	completed []bool
	startedAt []time.Duration
	attempts  []int
	mapsLeft  int
	mapsDone  int
	totalMaps int

	// completed-duration statistics feeding the straggler detector.
	durSum time.Duration
	durCnt int

	outputs     []*mapOutput // completion order (append-only; entries may be marked lost)
	outputsCond *sim.Cond

	reduceNext  int
	slowstartOK bool
	slowCond    *sim.Cond
	slowAt      int // maps needed before reducers start

	// Fault-mode state (see recovery.go); untouched in healthy runs.
	faulty       bool
	jobName      string
	job          *Job           // for respawning workers on tracker rejoin
	mapLive      map[string]int // live map workers per node (fault mode)
	redLive      map[string]int // live reduce workers per node (fault mode)
	extra        []*sim.Handle  // workers respawned by tracker re-registration
	failed       error          // terminal job failure, set once
	done         bool           // every reduce partition completed
	mapWorkCond  *sim.Cond      // signalled when map work (re)appears or the job ends
	attemptNodes [][]string     // per task: nodes with a live running attempt
	allMapsAt    time.Duration
	redClaimed   []bool
	redOwner     []string
	redDone      []bool
	redDoneCount int
	redCond      *sim.Cond

	// Tracker blacklisting (fault mode): failed attempts per tracker, and
	// the trackers excluded from new scheduling after MaxTrackerFailures.
	trackerFailures map[string]int
	blacklisted     map[string]bool
}

// taskDone reports whether some attempt of the task already finished —
// running backup/original attempts poll this at chunk boundaries and
// abandon, the runtime's equivalent of Hadoop killing the loser.
func (js *jobState) taskDone(taskIdx int) bool { return js.completed[taskIdx] }

// mu runs fn "atomically" — the simulation serializes all processes, so
// this is documentation of intent rather than a lock, but it keeps every
// counter mutation in one audited place.
func (js *jobState) mu(fn func()) { fn() }

// completeMap registers a finished map attempt's output. The first attempt
// of a task wins; a later duplicate (speculation lost the race at the very
// end) discards its files. It reports whether this attempt won. In fault
// mode an output produced on a node that has since died — or crashed and
// restarted, truncating intermediate files — is rejected: its data is
// unreachable or incomplete for the shuffle.
func (js *jobState) completeMap(out *mapOutput) bool {
	if js.completed[out.taskIdx] || (js.faulty && (!out.node.Alive() || out.node.Incarnation() != out.inc)) {
		if out.file != nil {
			_ = out.vol.Delete(out.file.Name())
		}
		return false
	}
	js.completed[out.taskIdx] = true
	js.jtRecord(jOpMapDone, out.taskIdx, 0)
	js.durSum += js.env.Now() - js.startedAt[out.taskIdx]
	js.durCnt++
	js.outputs = append(js.outputs, out)
	js.mapsDone++
	if js.faulty && js.mapsDone == js.totalMaps {
		js.allMapsAt = js.env.Now()
	}
	js.outputsCond.Broadcast()
	if !js.slowstartOK && js.mapsDone >= js.slowAt {
		js.slowstartOK = true
		js.slowCond.Broadcast()
	}
	return true
}

// nextOutput hands a reduce fetcher the next map output in completion
// order, blocking until one is available; nil means every map output has
// been consumed by this fetcher group. In fault mode lost outputs and
// already-fetched tasks are skipped and the group finishes only when every
// task's output has actually been fetched (st.count), since a lost output
// means a replacement will appear later in the list.
func (js *jobState) nextOutput(p *sim.Proc, st *fetchState) *mapOutput {
	if !js.faulty {
		for {
			if st.cursor < len(js.outputs) {
				out := js.outputs[st.cursor]
				st.cursor++
				return out
			}
			if st.cursor >= js.totalMaps {
				return nil
			}
			js.outputsCond.Wait(p)
		}
	}
	for {
		if js.failed != nil || js.done {
			return nil
		}
		for st.cursor < len(js.outputs) {
			out := js.outputs[st.cursor]
			st.cursor++
			if out.lost || st.got[out.taskIdx] {
				continue
			}
			return out
		}
		if st.count >= js.totalMaps {
			return nil
		}
		js.outputsCond.Wait(p)
	}
}

// fetchState is one reduce attempt's shuffle progress: the shared cursor
// into the outputs list plus, in fault mode, which tasks' outputs this
// attempt has successfully pulled.
type fetchState struct {
	cursor int
	got    []bool // per map task (fault mode only)
	count  int
}

// pickMap chooses the next map task for a node, preferring data-local
// splits as Hadoop's scheduler does. If allowRemote is false a node with no
// local work gets -1 while fresh tasks remain (delay scheduling). When no
// fresh task is left but maps are still running, an idle slot may claim a
// speculative backup attempt of a straggling task; only when every task has
// completed does it return remain=false.
func (js *jobState) pickMap(node string, allowRemote bool) (idx int, remain bool) {
	if js.failed != nil || js.done {
		return -1, false
	}
	if js.mapsDone == js.totalMaps {
		return -1, false
	}
	if js.mapsLeft > 0 {
		fallback := -1
		for i, sp := range js.splits {
			if js.taken[i] {
				continue
			}
			if fallback < 0 {
				fallback = i
			}
			for _, h := range sp.hosts {
				if h == node {
					return js.claimChecked(i)
				}
			}
		}
		if allowRemote && fallback >= 0 {
			return js.claimChecked(fallback)
		}
		return -1, true
	}
	if idx := js.pickStraggler(); idx >= 0 {
		return idx, true
	}
	return -1, true
}

// claimChecked claims task i unless it has exhausted its attempt budget,
// in which case the job fails (fault mode; a healthy run never re-attempts
// a non-speculative task).
func (js *jobState) claimChecked(i int) (int, bool) {
	if js.faulty && js.attempts[i] >= js.cfg.MaxTaskAttempts {
		js.fail(&JobError{Job: js.jobName, Reason: fmt.Sprintf("map task %d exhausted %d attempts", i, js.cfg.MaxTaskAttempts)})
		return -1, false
	}
	return js.claim(i), true
}

// claim marks a fresh task taken and records its start.
func (js *jobState) claim(i int) int {
	js.taken[i] = true
	js.attempts[i]++
	js.startedAt[i] = js.env.Now()
	js.mapsLeft--
	return i
}

// pickStraggler returns a running, un-duplicated task whose elapsed time
// exceeds the speculation threshold (a multiple of the mean completed-task
// duration), or -1. Hadoop's progress-rate heuristic reduces to elapsed
// time here because attempts progress linearly.
func (js *jobState) pickStraggler() int {
	if js.cfg == nil || !js.cfg.Speculative || js.durCnt == 0 {
		return -1
	}
	avg := js.durSum / time.Duration(js.durCnt)
	threshold := time.Duration(float64(avg) * js.cfg.SpeculativeSlowdown)
	best, bestElapsed := -1, threshold
	now := js.env.Now()
	for i := range js.splits {
		if !js.taken[i] || js.completed[i] || js.attempts[i] != 1 {
			continue
		}
		if elapsed := now - js.startedAt[i]; elapsed > bestElapsed {
			best, bestElapsed = i, elapsed
		}
	}
	if best >= 0 {
		js.attempts[best]++
		js.counters.SpeculativeAttempts++
	}
	return best
}

// Run executes the job, blocking p until completion, and returns its
// counters and phase timings.
func (rt *Runtime) Run(p *sim.Proc, job *Job) (*Result, error) {
	if err := rt.validate(job); err != nil {
		return nil, err
	}
	if job.Partitioner == nil {
		job.Partitioner = HashPartition
	}
	splits, err := rt.plan(job)
	if err != nil {
		return nil, err
	}
	js := &jobState{
		env:         rt.env,
		rt:          rt,
		cfg:         &rt.cfg,
		splits:      splits,
		taken:       make([]bool, len(splits)),
		completed:   make([]bool, len(splits)),
		startedAt:   make([]time.Duration, len(splits)),
		attempts:    make([]int, len(splits)),
		mapsLeft:    len(splits),
		totalMaps:   len(splits),
		outputsCond: sim.NewCond(rt.env),
		slowCond:    sim.NewCond(rt.env),
		faulty:      rt.faulty,
		jobName:     job.Name,
	}
	if rt.faulty {
		js.job = job
		js.mapWorkCond = sim.NewCond(rt.env)
		js.redCond = sim.NewCond(rt.env)
		js.attemptNodes = make([][]string, len(splits))
		js.redClaimed = make([]bool, job.NumReduces)
		js.redOwner = make([]string, job.NumReduces)
		js.redDone = make([]bool, job.NumReduces)
		js.trackerFailures = make(map[string]int)
		js.blacklisted = make(map[string]bool)
		js.mapLive = make(map[string]int)
		js.redLive = make(map[string]int)
		rt.active[js] = true
		defer delete(rt.active, js)
	}
	js.slowAt = int(rt.cfg.SlowstartFrac * float64(js.totalMaps))
	if js.slowAt < 1 {
		js.slowAt = 1
	}
	if rt.master != nil {
		if js.redDone == nil {
			// Healthy scheduling has no per-partition completion record; the
			// journaled master needs one.
			js.redDone = make([]bool, job.NumReduces)
		}
		rt.jobs[job.Name] = js
		js.jtRecord(jOpStart, js.totalMaps, job.NumReduces)
		defer func() {
			js.jtRecord(jOpEnd, 0, 0)
			delete(rt.jobs, job.Name)
		}()
	}
	res := &Result{Start: p.Now()}

	var workers []*sim.Handle
	// Map-slot workers.
	for _, node := range rt.cl.Slaves {
		for s := 0; s < rt.cfg.MapSlots; s++ {
			workers = append(workers, rt.spawnMapWorker(job, js, node, s))
		}
	}
	mapWorkers := len(workers)

	// Reduce-slot workers: start pulling partitions once slowstart allows.
	for _, node := range rt.cl.Slaves {
		for s := 0; s < rt.cfg.ReduceSlots; s++ {
			workers = append(workers, rt.spawnReduceWorker(job, js, node, s))
		}
	}

	for i, h := range workers {
		h.Wait(p)
		if i == mapWorkers-1 {
			res.MapsDone = p.Now()
		}
	}
	// Workers respawned by tracker re-registration; the slice can grow while
	// draining (a node may rejoin more than once).
	for i := 0; i < len(js.extra); i++ {
		js.extra[i].Wait(p)
	}
	if rt.faulty {
		res.MapsDone = js.allMapsAt // lingering workers exit late; use the real mark
		if js.failed == nil && !js.done {
			js.fail(&JobError{Job: job.Name, Reason: "no live task trackers left"})
		}
	}
	// Job cleanup: map output files are deleted once the job completes,
	// which is when dirty intermediate pages that never aged out die in the
	// cache instead of reaching the disks.
	for _, out := range js.outputs {
		if err := out.vol.Delete(out.file.Name()); err != nil {
			if rt.faulty {
				continue // outputs lost to dead disks may already be gone
			}
			return nil, fmt.Errorf("mapred: cleanup: %v", err)
		}
	}
	if js.failed != nil {
		return nil, js.failed
	}
	res.End = p.Now()
	res.Counters = js.counters
	res.Counters.MapTasks = js.totalMaps
	res.Counters.ReduceTasks = job.NumReduces
	return res, nil
}

// spawnMapWorker starts one map-slot worker on node. Fault mode tracks the
// per-node live-worker census so a tracker re-registration knows how many
// slots actually need refilling.
func (rt *Runtime) spawnMapWorker(job *Job, js *jobState, node *cluster.Node, s int) *sim.Handle {
	return rt.env.Go(fmt.Sprintf("map-worker:%s/%d", node.Name, s), func(wp *sim.Proc) {
		if js.mapLive != nil {
			js.mapLive[node.Name]++
			defer func() { js.mapLive[node.Name]-- }()
		}
		// Heartbeat stagger: a tracker fills one slot per heartbeat round, so
		// the first claims spread across nodes instead of one node's full
		// slot bank draining the task queue.
		wp.Sleep(time.Duration(s) * rt.cfg.LocalityWait / 4)
		rt.mapWorkerLoop(wp, job, js, node)
	})
}

func (rt *Runtime) mapWorkerLoop(wp *sim.Proc, job *Job, js *jobState, node *cluster.Node) {
	misses := 0
	for {
		// Asking for a task is a JobTracker heartbeat: it stalls while the
		// master is down, with backoff+jitter retries.
		rt.jtWait(wp, node.Name)
		if rt.faulty && (!node.Alive() || js.blacklisted[node.Name]) {
			return // tracker died or was blacklisted; work goes elsewhere
		}
		idx, remain := js.pickMap(node.Name, misses >= rt.cfg.LocalityRetries)
		if !remain {
			if !rt.faulty || js.done || js.failed != nil {
				return
			}
			// Fault mode: a lost map output can resurrect work until the
			// last reduce finishes, so idle workers linger instead of
			// exiting.
			js.mapWorkCond.Wait(wp)
			continue
		}
		if idx < 0 {
			// Delay scheduling: wait for local work to appear or for the
			// steal budget to unlock.
			misses++
			wp.Sleep(rt.cfg.LocalityWait)
			continue
		}
		misses = 0
		attempt := js.attempts[idx]
		sp := js.splits[idx]
		local := false
		for _, h := range sp.hosts {
			if h == node.Name {
				local = true
				break
			}
		}
		js.mu(func() {
			if local {
				js.counters.LocalMaps++
			} else {
				js.counters.RemoteMaps++
			}
		})
		js.noteAttempt(idx, node.Name)
		rt.mapTask(wp, job, js, idx, attempt, sp, node)
		js.clearAttempt(idx, node.Name)
	}
}

// spawnReduceWorker starts one reduce-slot worker on node.
func (rt *Runtime) spawnReduceWorker(job *Job, js *jobState, node *cluster.Node, s int) *sim.Handle {
	return rt.env.Go(fmt.Sprintf("reduce-worker:%s/%d", node.Name, s), func(wp *sim.Proc) {
		if js.redLive != nil {
			js.redLive[node.Name]++
			defer func() { js.redLive[node.Name]-- }()
		}
		rt.reduceWorkerLoop(wp, job, js, node)
	})
}

func (rt *Runtime) reduceWorkerLoop(wp *sim.Proc, job *Job, js *jobState, node *cluster.Node) {
	for !js.slowstartOK {
		if js.failed != nil {
			return
		}
		js.slowCond.Wait(wp)
	}
	if !rt.faulty {
		for {
			rt.jtWait(wp, node.Name)
			var part int
			got := false
			js.mu(func() {
				if js.reduceNext < job.NumReduces {
					part = js.reduceNext
					js.reduceNext++
					got = true
				}
			})
			if !got {
				return
			}
			rt.reduceTask(wp, job, js, part, node)
		}
	}
	// Fault mode: claim unowned partitions until all are done; a partition
	// whose owner died is released for re-claiming.
	for {
		rt.jtWait(wp, node.Name)
		if !node.Alive() || js.failed != nil || js.blacklisted[node.Name] {
			return
		}
		part := -1
		js.mu(func() {
			for i := range js.redClaimed {
				if !js.redClaimed[i] && !js.redDone[i] {
					part = i
					js.redClaimed[i] = true
					js.redOwner[i] = node.Name
					break
				}
			}
		})
		if part < 0 {
			if js.done {
				return
			}
			js.redCond.Wait(wp)
			continue
		}
		rt.reduceTask(wp, job, js, part, node)
		js.mu(func() {
			if !js.redDone[part] && js.redOwner[part] == node.Name {
				// The attempt died under this node; release it.
				js.redClaimed[part] = false
				js.redOwner[part] = ""
				js.redCond.Broadcast()
			}
		})
	}
}

// OnNodeRejoin is the JobTracker learning that a restarted TaskTracker has
// re-registered: its blacklist entry and failure tally are cleared (the
// restart wiped whatever made it sick) and its task slots rejoin scheduling.
// Only the slots that are actually empty are refilled — a tracker that
// bounced faster than its parked workers noticed must not end up with more
// workers than slots (the double-registration the chaos oracle checks for).
func (rt *Runtime) OnNodeRejoin(name string) {
	if !rt.faulty {
		return
	}
	if rt.deferMembership("node-rejoin", name, nil) {
		return // re-registration waits out the JobTracker outage
	}
	node := rt.cl.FindNode(name)
	if node == nil {
		return
	}
	jobs := make([]*jobState, 0, len(rt.active))
	for js := range rt.active {
		jobs = append(jobs, js)
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].jobName < jobs[j].jobName })
	for _, js := range jobs {
		js.rejoinTracker(rt, node)
	}
}

// rejoinTracker refills one job's worker slots on a returning node.
func (js *jobState) rejoinTracker(rt *Runtime, node *cluster.Node) {
	if js.done || js.failed != nil {
		return
	}
	delete(js.blacklisted, node.Name)
	delete(js.trackerFailures, node.Name)
	js.mu(func() { js.counters.TrackerRejoins++ })
	if js.mapLive[node.Name] > js.cfg.MapSlots || js.redLive[node.Name] > js.cfg.ReduceSlots {
		js.mu(func() { js.counters.DoubleRegistrations++ })
	}
	for s := js.mapLive[node.Name]; s < js.cfg.MapSlots; s++ {
		js.extra = append(js.extra, rt.spawnMapWorker(js.job, js, node, s))
	}
	for s := js.redLive[node.Name]; s < js.cfg.ReduceSlots; s++ {
		js.extra = append(js.extra, rt.spawnReduceWorker(js.job, js, node, s))
	}
	// Parked workers elsewhere may be waiting for schedulable slots.
	js.mapWorkCond.Broadcast()
	js.redCond.Broadcast()
}

// validate rejects malformed jobs loudly.
func (rt *Runtime) validate(job *Job) error {
	switch {
	case job.Mapper == nil:
		return fmt.Errorf("mapred: job %s: nil mapper", job.Name)
	case job.Reducer == nil:
		return fmt.Errorf("mapred: job %s: nil reducer", job.Name)
	case job.NumReduces <= 0:
		return fmt.Errorf("mapred: job %s: NumReduces = %d", job.Name, job.NumReduces)
	case len(job.Input) == 0:
		return fmt.Errorf("mapred: job %s: no input", job.Name)
	case job.Output == "":
		return fmt.Errorf("mapred: job %s: no output path", job.Name)
	case job.Format == nil:
		return fmt.Errorf("mapred: job %s: nil record format", job.Name)
	}
	return nil
}

// plan computes one split per block of each input file, with the block's
// replica hosts for locality scheduling.
func (rt *Runtime) plan(job *Job) ([]split, error) {
	blockSize := rt.fs.Config().BlockSize
	_, wholeFile := job.Format.(KVFormat)
	var out []split
	for _, path := range job.Input {
		size := rt.fs.Size(path)
		if size < 0 {
			return nil, fmt.Errorf("mapred: job %s: input %s not found", job.Name, path)
		}
		if size == 0 {
			continue
		}
		locs, err := rt.fs.BlockLocations(path)
		if err != nil {
			return nil, err
		}
		if wholeFile {
			var hosts []string
			if len(locs) > 0 {
				hosts = locs[0]
			}
			out = append(out, split{file: path, off: 0, len: size, hosts: hosts})
			continue
		}
		for b := int64(0); b*blockSize < size; b++ {
			length := blockSize
			if b*blockSize+length > size {
				length = size - b*blockSize
			}
			var hosts []string
			if int(b) < len(locs) {
				hosts = locs[b]
			}
			out = append(out, split{file: path, off: b * blockSize, len: length, hosts: hosts})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mapred: job %s: inputs are empty", job.Name)
	}
	return out, nil
}
