package mapred

import (
	"fmt"
	"testing"

	"iochar/internal/cluster"
	"iochar/internal/hdfs"
	"iochar/internal/sim"
)

func benchEntries(n int) []kvEnt {
	arena := make([]byte, 0, n*16)
	ents := make([]kvEnt, 0, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%07d", (i*2654435761)%n)
		ko := len(arena)
		arena = append(arena, k...)
		ents = append(ents, kvEnt{part: i % 16, seq: i, key: arena[ko:len(arena):len(arena)], val: arena[ko:len(arena):len(arena)]})
	}
	return ents
}

func BenchmarkSortKVEntries(b *testing.B) {
	src := benchEntries(1 << 14)
	buf := make([]kvEnt, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		sortKVEntries(buf)
	}
	b.SetBytes(int64(len(src) * 16))
}

func benchRun(n, stride int) run {
	var r run
	for i := 0; i < n; i++ {
		r = appendKV(r, []byte(fmt.Sprintf("key-%07d", i*stride)), []byte("0123456789abcdef"))
	}
	return r
}

func BenchmarkMergeRuns(b *testing.B) {
	for _, fan := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("fanin-%d", fan), func(b *testing.B) {
			runs := make([]run, fan)
			for i := range runs {
				runs[i] = benchRun(4096/fan, fan)
			}
			b.ResetTimer()
			var total int
			for i := 0; i < b.N; i++ {
				total += len(mergeRuns(runs))
			}
			if total == 0 {
				b.Fatal("merge produced nothing")
			}
		})
	}
}

func BenchmarkGroupRun(b *testing.B) {
	r := benchRun(8192, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := 0
		groupRun(r, func(k []byte, vs [][]byte) { groups++ })
		if groups != 8192 {
			b.Fatal("bad grouping")
		}
	}
	b.SetBytes(int64(len(r)))
}

func BenchmarkHashPartition(b *testing.B) {
	keys := make([][]byte, 256)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%07d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashPartition(keys[i%len(keys)], 20)
	}
}

// BenchmarkAblationCombiner contrasts a word-count-shaped job's shuffle
// volume with and without the map-side combiner, on the live runtime.
func BenchmarkAblationCombiner(b *testing.B) {
	for _, withCombiner := range []bool{true, false} {
		name := "combiner"
		if !withCombiner {
			name = "none"
		}
		b.Run(name, func(b *testing.B) {
			var shuffle int64
			for i := 0; i < b.N; i++ {
				rig := newBenchRig()
				parts, _ := textParts()
				rig.loadLines("/in", parts)
				job := wordCountJob(rig.inputs("/in"), "/out")
				if withCombiner {
					job.Combiner = sumCombiner()
				}
				var res *Result
				var err error
				rig.env.Go("driver", func(p *sim.Proc) {
					res, err = rig.rt.Run(p, job)
				})
				rig.env.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				shuffle = res.ShuffleBytes
			}
			b.ReportMetric(float64(shuffle)/1024, "shuffle-KB")
		})
	}
}

// newBenchRig mirrors newRig without *testing.T plumbing.
func newBenchRig() *testRig {
	env := sim.New(1)
	cl, err := cluster.New(env, cluster.DefaultHardware(8192), 4)
	if err != nil {
		panic(err)
	}
	fs := hdfs.New(env, hdfs.DefaultConfig(8192), cl.Net, cl.Slaves)
	cfg := DefaultConfig(8192)
	cfg.MapSlots, cfg.ReduceSlots = 2, 2
	rt, err := New(env, cl, fs, cl.Net, cfg)
	if err != nil {
		panic(err)
	}
	return &testRig{env: env, cl: cl, fs: fs, rt: rt}
}
