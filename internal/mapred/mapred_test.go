package mapred

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"iochar/internal/cluster"
	"iochar/internal/compress"
	"iochar/internal/hdfs"
	"iochar/internal/sim"
)

// testRig is a small 4-slave cluster at aggressive scale.
type testRig struct {
	env *sim.Env
	cl  *cluster.Cluster
	fs  *hdfs.FS
	rt  *Runtime
}

func newRig(t *testing.T, mut func(*Config)) *testRig {
	t.Helper()
	env := sim.New(1)
	cl, err := cluster.New(env, cluster.DefaultHardware(8192), 4)
	if err != nil {
		t.Fatal(err)
	}
	fs := hdfs.New(env, hdfs.DefaultConfig(8192), cl.Net, cl.Slaves)
	cfg := DefaultConfig(8192)
	cfg.MapSlots, cfg.ReduceSlots = 2, 2
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(env, cl, fs, cl.Net, cfg)
	if err != nil {
		panic(err)
	}
	return &testRig{env: env, cl: cl, fs: fs, rt: rt}
}

// loadLines spreads text parts across slaves.
func (r *testRig) loadLines(path string, parts []string) {
	for i, part := range parts {
		r.fs.Load(fmt.Sprintf("%s/part-%d", path, i), r.cl.Slaves[i%len(r.cl.Slaves)].Name, []byte(part))
	}
}

// inputs lists the loaded part files.
func (r *testRig) inputs(path string) []string { return r.fs.List(path + "/") }

// runJob runs and returns the result, failing the test on error.
func (r *testRig) runJob(t *testing.T, job *Job) *Result {
	t.Helper()
	var res *Result
	var err error
	r.env.Go("driver", func(p *sim.Proc) {
		res, err = r.rt.Run(p, job)
	})
	r.env.Run(0)
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	return res
}

// readOutput concatenates and parses all part-r files into a key->values map.
func (r *testRig) readOutput(t *testing.T, dir string) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	var done bool
	r.env.Go("reader", func(p *sim.Proc) {
		for _, path := range r.fs.List(dir + "/part-r-") {
			rd, err := r.fs.Open(path, r.cl.Slaves[0].Name)
			if err != nil {
				t.Errorf("open %s: %v", path, err)
				return
			}
			data, err := rd.ReadAt(p, 0, rd.Size())
			if err != nil {
				t.Errorf("read %s: %v", path, err)
				return
			}
			for len(data) > 0 {
				k, v, rest := readKV(data)
				out[string(k)] = append(out[string(k)], string(v))
				data = rest
			}
		}
		done = true
	})
	r.env.Run(0)
	if !done {
		t.Fatal("output reader did not finish")
	}
	return out
}

// wordCountJob is the canonical test job.
func wordCountJob(input []string, output string) *Job {
	return &Job{
		Name:   "wordcount",
		Input:  input,
		Output: output,
		Format: LineFormat{},
		Mapper: MapperFunc(func(rec []byte, emit func(k, v []byte)) {
			for _, w := range bytes.Fields(rec) {
				emit(w, []byte("1"))
			}
		}),
		Reducer: ReducerFunc(func(k []byte, vals [][]byte, emit func(k, v []byte)) {
			sum := 0
			for _, v := range vals {
				n, _ := strconv.Atoi(string(v))
				sum += n
			}
			emit(k, []byte(strconv.Itoa(sum)))
		}),
		NumReduces: 3,
	}
}

func sumCombiner() Reducer {
	return ReducerFunc(func(k []byte, vals [][]byte, emit func(k, v []byte)) {
		sum := 0
		for _, v := range vals {
			n, _ := strconv.Atoi(string(v))
			sum += n
		}
		emit(k, []byte(strconv.Itoa(sum)))
	})
}

func textParts() ([]string, map[string]int) {
	words := []string{"pagerank", "terasort", "kmeans", "hive", "hdfs", "disk", "iostat", "await"}
	var parts []string
	want := map[string]int{}
	for p := 0; p < 4; p++ {
		var sb strings.Builder
		for i := 0; i < 400; i++ {
			w := words[(i*7+p*3)%len(words)]
			sb.WriteString(w)
			want[w]++
			if i%9 == 8 {
				sb.WriteByte('\n')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
		parts = append(parts, sb.String())
	}
	return parts, want
}

func checkWordCount(t *testing.T, got map[string][]string, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("got %d distinct words, want %d", len(got), len(want))
	}
	for w, n := range want {
		vs := got[w]
		if len(vs) != 1 {
			t.Errorf("word %q has %d outputs, want 1", w, len(vs))
			continue
		}
		if vs[0] != strconv.Itoa(n) {
			t.Errorf("word %q = %s, want %d", w, vs[0], n)
		}
	}
}

func TestWordCountEndToEnd(t *testing.T) {
	rig := newRig(t, nil)
	parts, want := textParts()
	rig.loadLines("/in", parts)
	job := wordCountJob(rig.inputs("/in"), "/out")
	res := rig.runJob(t, job)
	checkWordCount(t, rig.readOutput(t, "/out"), want)
	if res.MapTasks == 0 || res.ReduceTasks != 3 {
		t.Errorf("tasks = %d/%d", res.MapTasks, res.ReduceTasks)
	}
	if res.Runtime() <= 0 {
		t.Error("job consumed no virtual time")
	}
	if res.MapOutputRecords == 0 || res.ReduceInputRecords != res.MapOutputRecords {
		t.Errorf("record conservation: map out %d, reduce in %d", res.MapOutputRecords, res.ReduceInputRecords)
	}
}

func TestWordCountWithCombiner(t *testing.T) {
	rig := newRig(t, nil)
	parts, want := textParts()
	rig.loadLines("/in", parts)
	job := wordCountJob(rig.inputs("/in"), "/out")
	job.Combiner = sumCombiner()
	res := rig.runJob(t, job)
	checkWordCount(t, rig.readOutput(t, "/out"), want)
	if res.CombineInput == 0 {
		t.Error("combiner never ran")
	}
	if res.ReduceInputRecords >= res.MapOutputRecords {
		t.Errorf("combiner did not shrink traffic: %d >= %d", res.ReduceInputRecords, res.MapOutputRecords)
	}
}

func TestCompressionShrinksIntermediate(t *testing.T) {
	run := func(codec compress.Codec) *Result {
		rig := newRig(t, func(c *Config) { c.Codec = codec })
		parts, _ := textParts()
		rig.loadLines("/in", parts)
		return rig.runJob(t, wordCountJob(rig.inputs("/in"), "/out"))
	}
	plain := run(compress.Identity{})
	packed := run(compress.NewDeflate())
	if packed.CompressedMapOutput >= plain.CompressedMapOutput {
		t.Errorf("compression did not shrink map output: %d vs %d",
			packed.CompressedMapOutput, plain.CompressedMapOutput)
	}
	if packed.ShuffleBytes >= plain.ShuffleBytes {
		t.Errorf("compression did not shrink shuffle: %d vs %d", packed.ShuffleBytes, plain.ShuffleBytes)
	}
	// Same logical answer regardless of codec.
	if packed.ReduceInputRecords != plain.ReduceInputRecords {
		t.Errorf("codec changed record counts: %d vs %d", packed.ReduceInputRecords, plain.ReduceInputRecords)
	}
}

func TestTinySortBufferForcesSpillsAndMerge(t *testing.T) {
	rig := newRig(t, func(c *Config) { c.SortBufBytes = 4 << 10 })
	parts, want := textParts()
	rig.loadLines("/in", parts)
	res := rig.runJob(t, wordCountJob(rig.inputs("/in"), "/out"))
	if res.Spills <= int64(res.MapTasks) {
		t.Errorf("Spills = %d with a 4KB buffer, want more than one per map (%d maps)", res.Spills, res.MapTasks)
	}
	checkWordCount(t, rig.readOutput(t, "/out"), want)
}

func TestTinyShuffleBufferForcesReduceSpills(t *testing.T) {
	rig := newRig(t, func(c *Config) { c.ShuffleBufBytes = 2 << 10 })
	parts, want := textParts()
	rig.loadLines("/in", parts)
	res := rig.runJob(t, wordCountJob(rig.inputs("/in"), "/out"))
	if res.ReduceSpills == 0 {
		t.Error("no reduce-side spills with a 2KB shuffle buffer")
	}
	checkWordCount(t, rig.readOutput(t, "/out"), want)
}

func TestFixedFormatSplitsExactlyOnce(t *testing.T) {
	rig := newRig(t, nil)
	// 100-byte records; choose content so each record is identifiable.
	var data []byte
	const n = 500
	for i := 0; i < n; i++ {
		rec := make([]byte, 100)
		copy(rec, fmt.Sprintf("%010d", i))
		for j := 10; j < 100; j++ {
			rec[j] = 'x'
		}
		data = append(data, rec...)
	}
	rig.fs.Load("/fixed/part-0", rig.cl.Slaves[0].Name, data)
	job := &Job{
		Name:   "identity-fixed",
		Input:  []string{"/fixed/part-0"},
		Output: "/fixedout",
		Format: FixedFormat{Size: 100},
		Mapper: MapperFunc(func(rec []byte, emit func(k, v []byte)) {
			emit(rec[:10], []byte("1"))
		}),
		Reducer:    sumCombiner().(ReducerFunc),
		NumReduces: 2,
	}
	res := rig.runJob(t, job)
	if res.MapInputRecords != n {
		t.Errorf("MapInputRecords = %d, want %d (exactly-once framing)", res.MapInputRecords, n)
	}
	if res.MapTasks < 2 {
		t.Errorf("MapTasks = %d, want multiple splits", res.MapTasks)
	}
	out := rig.readOutput(t, "/fixedout")
	if len(out) != n {
		t.Errorf("distinct keys = %d, want %d", len(out), n)
	}
}

func TestLineFormatBoundarySplits(t *testing.T) {
	rig := newRig(t, nil)
	// Lines sized to straddle the scaled block boundary irregularly.
	var data []byte
	const n = 400
	for i := 0; i < n; i++ {
		data = append(data, []byte(fmt.Sprintf("line-%04d %s\n", i, strings.Repeat("z", i%71)))...)
	}
	rig.fs.Load("/lines/part-0", rig.cl.Slaves[1].Name, data)
	job := wordCountJob([]string{"/lines/part-0"}, "/lineout")
	job.Mapper = MapperFunc(func(rec []byte, emit func(k, v []byte)) {
		f := bytes.Fields(rec)
		if len(f) > 0 {
			emit(f[0], []byte("1"))
		}
	})
	res := rig.runJob(t, job)
	if res.MapTasks < 2 {
		t.Skipf("content fit one split (%d tasks); boundary not exercised", res.MapTasks)
	}
	if res.MapInputRecords != n {
		t.Errorf("MapInputRecords = %d, want %d (lines lost or duplicated at split boundaries)", res.MapInputRecords, n)
	}
	out := rig.readOutput(t, "/lineout")
	if len(out) != n {
		t.Errorf("distinct keys = %d, want %d", len(out), n)
	}
}

func TestLocalityPreferred(t *testing.T) {
	rig := newRig(t, nil)
	parts, _ := textParts()
	rig.loadLines("/in", parts)
	res := rig.runJob(t, wordCountJob(rig.inputs("/in"), "/out"))
	if res.LocalMaps == 0 {
		t.Error("no data-local map tasks; locality scheduling inert")
	}
	if res.LocalMaps+res.RemoteMaps != res.MapTasks {
		t.Errorf("locality accounting: %d+%d != %d", res.LocalMaps, res.RemoteMaps, res.MapTasks)
	}
}

func TestIntermediateFilesCleanedUp(t *testing.T) {
	rig := newRig(t, nil)
	parts, _ := textParts()
	rig.loadLines("/in", parts)
	rig.runJob(t, wordCountJob(rig.inputs("/in"), "/out"))
	for _, s := range rig.cl.Slaves {
		for _, v := range s.MRVols {
			if files := v.List(); len(files) != 0 {
				t.Errorf("%s leaked intermediate files: %v", s.Name, files)
			}
		}
	}
}

func TestValidationErrors(t *testing.T) {
	rig := newRig(t, nil)
	rig.fs.Load("/v/part-0", rig.cl.Slaves[0].Name, []byte("a b\n"))
	base := func() *Job { return wordCountJob([]string{"/v/part-0"}, "/vout") }
	cases := []struct {
		name string
		mut  func(*Job)
	}{
		{"nil mapper", func(j *Job) { j.Mapper = nil }},
		{"nil reducer", func(j *Job) { j.Reducer = nil }},
		{"zero reduces", func(j *Job) { j.NumReduces = 0 }},
		{"no input", func(j *Job) { j.Input = nil }},
		{"no output", func(j *Job) { j.Output = "" }},
		{"nil format", func(j *Job) { j.Format = nil }},
		{"missing input", func(j *Job) { j.Input = []string{"/nope"} }},
	}
	for _, c := range cases {
		job := base()
		c.mut(job)
		var err error
		rig.env.Go("driver", func(p *sim.Proc) { _, err = rig.rt.Run(p, job) })
		rig.env.Run(0)
		if err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestSlowstartDefersReducers(t *testing.T) {
	rig := newRig(t, func(c *Config) { c.SlowstartFrac = 1.0 })
	parts, want := textParts()
	rig.loadLines("/in", parts)
	res := rig.runJob(t, wordCountJob(rig.inputs("/in"), "/out"))
	checkWordCount(t, rig.readOutput(t, "/out"), want)
	if res.MapsDone > res.End {
		t.Errorf("MapsDone %v after End %v", res.MapsDone, res.End)
	}
}

func TestHashPartitionRangeAndDeterminism(t *testing.T) {
	keys := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), []byte(""), []byte("zz12")}
	for _, k := range keys {
		p1, p2 := HashPartition(k, 7), HashPartition(k, 7)
		if p1 != p2 {
			t.Errorf("HashPartition(%q) nondeterministic", k)
		}
		if p1 < 0 || p1 >= 7 {
			t.Errorf("HashPartition(%q) = %d out of range", k, p1)
		}
	}
	if HashPartition([]byte("x"), 1) != 0 {
		t.Error("single partition must be 0")
	}
}

func TestMergeRunsProperties(t *testing.T) {
	f := func(raw [][]byte) bool {
		if len(raw) > 6 {
			raw = raw[:6]
		}
		var runs []run
		var all []string
		for _, seed := range raw {
			// Build a sorted run from the fuzz bytes.
			var keys []string
			for i := 0; i+1 < len(seed); i += 2 {
				keys = append(keys, string(seed[i:i+2]))
			}
			sort.Strings(keys)
			var r run
			for _, k := range keys {
				r = appendKV(r, []byte(k), []byte("v"))
				all = append(all, k)
			}
			runs = append(runs, r)
		}
		merged := mergeRuns(runs)
		if !sortedRun(merged) {
			return false
		}
		return countKVs(merged) == int64(len(all))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKVSerializationRoundTrip(t *testing.T) {
	f := func(k, v []byte) bool {
		data := appendKV(nil, k, v)
		k2, v2, rest := readKV(data)
		return bytes.Equal(k, k2) && bytes.Equal(v, v2) && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGroupRunGroupsEqualKeys(t *testing.T) {
	var r run
	r = appendKV(r, []byte("a"), []byte("1"))
	r = appendKV(r, []byte("a"), []byte("2"))
	r = appendKV(r, []byte("b"), []byte("3"))
	var groups []string
	groupRun(r, func(k []byte, vs [][]byte) {
		groups = append(groups, fmt.Sprintf("%s:%d", k, len(vs)))
	})
	if len(groups) != 2 || groups[0] != "a:2" || groups[1] != "b:1" {
		t.Errorf("groups = %v", groups)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (*Result, map[string][]string) {
		rig := newRig(t, nil)
		parts, _ := textParts()
		rig.loadLines("/in", parts)
		res := rig.runJob(t, wordCountJob(rig.inputs("/in"), "/out"))
		return res, rig.readOutput(t, "/out")
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1.End != r2.End {
		t.Errorf("job end times differ: %v vs %v", r1.End, r2.End)
	}
	if len(o1) != len(o2) {
		t.Errorf("outputs differ in size")
	}
}

// Speculative execution: with one crippled disk making its node's map
// tasks straggle, backup attempts must fire, win, keep the output correct,
// and beat the same cluster with speculation disabled.
func TestSpeculativeExecutionRescuesStraggler(t *testing.T) {
	// Big enough that a 30x-degraded node's tasks dominate the tail by far
	// more than the scheduler's polling interval.
	bigParts := func() []string {
		base, _ := textParts()
		out := make([]string, len(base))
		for i, p := range base {
			var sb strings.Builder
			for sb.Len() < 120<<10 {
				sb.WriteString(p)
			}
			out[i] = sb.String()
		}
		return out
	}
	run := func(speculative bool) (*Result, *testRig) {
		rig := newRig(t, func(c *Config) {
			c.Speculative = speculative
			c.SpeculativeSlowdown = 2
		})
		// Cripple every disk of slave 0: map attempts reading their split
		// from it crawl.
		for _, d := range rig.cl.Slaves[0].HDFSDisks {
			d.P.SlowFactor = 30
		}
		for _, d := range rig.cl.Slaves[0].MRDisks {
			d.P.SlowFactor = 30
		}
		rig.loadLines("/in", bigParts())
		res := rig.runJob(t, wordCountJob(rig.inputs("/in"), "/out"))
		return res, rig
	}
	withSpec, rigSpec := run(true)
	without, _ := run(false)
	if withSpec.SpeculativeAttempts == 0 {
		t.Fatal("no speculative attempts despite a crippled node")
	}
	if withSpec.SpeculativeWins == 0 {
		t.Error("speculative attempts never won")
	}
	if withSpec.End-withSpec.Start >= without.End-without.Start {
		t.Errorf("speculation did not help: %v vs %v without",
			withSpec.End-withSpec.Start, without.End-without.Start)
	}
	// Output must be exactly once per task regardless of duplicate attempts:
	// map-in and reduce-out record conservation plus distinct keys.
	if withSpec.ReduceInputRecords != withSpec.MapOutputRecords {
		t.Errorf("record conservation broke under speculation: %d != %d",
			withSpec.ReduceInputRecords, withSpec.MapOutputRecords)
	}
	got := rigSpec.readOutput(t, "/out")
	if len(got) != 8 { // the 8 distinct words of textParts
		t.Errorf("distinct words = %d, want 8", len(got))
	}
	// Abandoned attempts must not leak intermediate files.
	for _, s := range rigSpec.cl.Slaves {
		for _, v := range s.MRVols {
			if files := v.List(); len(files) != 0 {
				t.Errorf("%s leaked files after speculation: %v", s.Name, files)
			}
		}
	}
}

// Delay scheduling at the pickMap level: a node with no local split is told
// to wait while fresh tasks remain, a local node claims its split at once,
// and the waiting node only steals remotely once its locality budget
// (allowRemote) unlocks.
func TestPickMapDelaySchedulingOrder(t *testing.T) {
	rig := newRig(t, nil)
	js := &jobState{
		env: rig.env,
		cfg: &rig.rt.cfg,
		splits: []split{
			{file: "/a", hosts: []string{"slave-00"}},
			{file: "/b", hosts: []string{"slave-01"}},
		},
		taken:     make([]bool, 2),
		completed: make([]bool, 2),
		startedAt: make([]time.Duration, 2),
		attempts:  make([]int, 2),
		mapsLeft:  2,
		totalMaps: 2,
	}
	if idx, remain := js.pickMap("slave-03", false); idx != -1 || !remain {
		t.Fatalf("non-local node got (%d, %v), want (-1, true): delay scheduling must hold it back", idx, remain)
	}
	if idx, _ := js.pickMap("slave-01", false); idx != 1 {
		t.Fatalf("local node claimed %d, want its own split 1", idx)
	}
	if idx, _ := js.pickMap("slave-03", true); idx != 0 {
		t.Fatalf("remote steal claimed %d, want the leftover split 0", idx)
	}
	// Everything is claimed but still running: idle slots must linger for
	// possible speculation rather than exit.
	if idx, remain := js.pickMap("slave-00", true); idx != -1 || !remain {
		t.Fatalf("with maps in flight got (%d, %v), want (-1, true)", idx, remain)
	}
	js.mapsDone = 2
	if _, remain := js.pickMap("slave-00", true); remain {
		t.Fatal("remain=true after every map completed")
	}
}

// Delay scheduling end to end: with replication 1 every split is local to
// one node, so the other slaves' slots must exhaust their locality retries
// and then run remote attempts — and the attempt accounting must balance.
func TestDelaySchedulingStealsRemotely(t *testing.T) {
	env := sim.New(1)
	cl, err := cluster.New(env, cluster.DefaultHardware(8192), 4)
	if err != nil {
		t.Fatal(err)
	}
	hcfg := hdfs.DefaultConfig(8192)
	hcfg.Replication = 1
	fs := hdfs.New(env, hcfg, cl.Net, cl.Slaves)
	cfg := DefaultConfig(8192)
	cfg.MapSlots, cfg.ReduceSlots = 2, 2
	rt, err := New(env, cl, fs, cl.Net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rig := &testRig{env: env, cl: cl, fs: fs, rt: rt}
	// Enough long maps that the holder's two slots cannot drain the queue
	// before the other slaves' locality budgets run out.
	parts, _ := textParts()
	for i := 0; i < 8; i++ {
		var sb strings.Builder
		for sb.Len() < 120<<10 {
			sb.WriteString(parts[i%len(parts)])
		}
		fs.Load(fmt.Sprintf("/skew/part-%d", i), cl.Slaves[0].Name, []byte(sb.String()))
	}
	res := rig.runJob(t, wordCountJob(rig.inputs("/skew"), "/skewout"))
	if out := rig.readOutput(t, "/skewout"); len(out) != 8 { // the 8 distinct words of textParts
		t.Errorf("distinct words = %d, want 8", len(out))
	}
	if res.ReduceInputRecords != res.MapOutputRecords {
		t.Errorf("record conservation: map out %d, reduce in %d", res.MapOutputRecords, res.ReduceInputRecords)
	}
	if res.RemoteMaps == 0 {
		t.Error("no remote map attempts although one node holds every replica")
	}
	if res.LocalMaps == 0 {
		t.Error("the data-holding node ran no local attempts")
	}
	if got := res.LocalMaps + res.RemoteMaps; got != res.MapTasks+int(res.SpeculativeAttempts) {
		t.Errorf("attempt accounting: local %d + remote %d = %d, want tasks %d + speculative %d",
			res.LocalMaps, res.RemoteMaps, got, res.MapTasks, res.SpeculativeAttempts)
	}
}

// A disk going fail-slow mid-run (the slow-disk fault knob) must create
// stragglers that speculation rescues, with attempt counters that balance.
func TestMidRunFailSlowDiskTriggersSpeculation(t *testing.T) {
	rig := newRig(t, func(c *Config) {
		c.Speculative = true
		c.SpeculativeSlowdown = 2
	})
	bigParts := func() []string {
		base, _ := textParts()
		out := make([]string, len(base))
		for i, p := range base {
			var sb strings.Builder
			for sb.Len() < 120<<10 {
				sb.WriteString(p)
			}
			out[i] = sb.String()
		}
		return out
	}
	rig.loadLines("/in", bigParts())
	// Degrade every disk of slave 0 shortly after the job starts, as the
	// injector's slow-disk event does — not before, so early attempts are
	// scheduled against a healthy-looking node.
	rig.env.AfterFunc(100*time.Microsecond, func() {
		for _, d := range rig.cl.Slaves[0].HDFSDisks {
			d.SetSlowFactor(30)
		}
		for _, d := range rig.cl.Slaves[0].MRDisks {
			d.SetSlowFactor(30)
		}
	})
	res := rig.runJob(t, wordCountJob(rig.inputs("/in"), "/out"))
	if res.SpeculativeAttempts == 0 {
		t.Fatal("no speculative attempts despite a mid-run fail-slow node")
	}
	if res.SpeculativeWins == 0 {
		t.Error("speculative attempts never won against a 30x-degraded node")
	}
	if got := res.LocalMaps + res.RemoteMaps; got != res.MapTasks+int(res.SpeculativeAttempts) {
		t.Errorf("attempt accounting: local %d + remote %d = %d, want tasks %d + speculative %d",
			res.LocalMaps, res.RemoteMaps, got, res.MapTasks, res.SpeculativeAttempts)
	}
	if res.ReduceInputRecords != res.MapOutputRecords {
		t.Errorf("record conservation broke under speculation: %d != %d",
			res.ReduceInputRecords, res.MapOutputRecords)
	}
}

func TestSpeculationOffByConfig(t *testing.T) {
	rig := newRig(t, func(c *Config) { c.Speculative = false })
	parts, _ := textParts()
	rig.loadLines("/in", parts)
	res := rig.runJob(t, wordCountJob(rig.inputs("/in"), "/out"))
	if res.SpeculativeAttempts != 0 {
		t.Errorf("speculation ran despite being disabled: %d attempts", res.SpeculativeAttempts)
	}
}
