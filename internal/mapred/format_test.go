package mapred

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

// chunkings to exercise: tiny chunks stress carry-over, huge chunks reduce
// to the batch case.
var chunkSizes = []int{1, 3, 7, 64, 1024, 1 << 20}

// framed runs the streaming framer over data cut into chunks of size c.
func framed(it recordIter, data []byte, c int) []string {
	fr := newFramer(it)
	var out []string
	for pos := 0; pos < len(data); pos += c {
		end := pos + c
		if end > len(data) {
			end = len(data)
		}
		fr.feed(data[pos:end], func(rec []byte) { out = append(out, string(rec)) })
		if fr.done {
			break
		}
	}
	return out
}

// batch runs the reference whole-buffer framer.
func batch(it recordIter, data []byte) []string {
	var out []string
	it.records(data, func(rec []byte) { out = append(out, string(rec)) })
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: the streaming framer produces exactly the records of the batch
// framer for every format, split geometry and chunking.
func TestQuickFramerMatchesBatch(t *testing.T) {
	f := func(seed int64, splitRaw uint16, nrec uint8) bool {
		n := int(nrec)%60 + 3

		// Line data with variable-length lines.
		var lineData []byte
		for i := 0; i < n; i++ {
			pad := int(((seed+int64(i))%37 + 37) % 37)
			lineData = append(lineData, []byte(fmt.Sprintf("line-%d-%s\n", i, bytes.Repeat([]byte{'x'}, pad)))...)
		}
		// Fixed-format data.
		var fixData []byte
		for i := 0; i < n; i++ {
			rec := make([]byte, 20)
			copy(rec, fmt.Sprintf("%08d", i))
			fixData = append(fixData, rec...)
		}
		// KV data.
		var kvData []byte
		for i := 0; i < n; i++ {
			kvData = appendKV(kvData, []byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte{'v'}, i%23))
		}

		type cs struct {
			format RecordFormat
			data   []byte
		}
		for _, c := range []cs{
			{LineFormat{}, lineData},
			{FixedFormat{Size: 20}, fixData},
			{KVFormat{}, kvData},
		} {
			fileSize := int64(len(c.data))
			splitOff := int64(splitRaw) % (fileSize + 1)
			splitLen := fileSize - splitOff
			if _, isKV := c.format.(KVFormat); isKV {
				splitOff, splitLen = 0, fileSize // KV is whole-file by contract
			}
			it := recordIter{format: c.format, splitOff: splitOff, splitLen: splitLen, fileSize: fileSize}
			off, length := it.readRange()
			window := c.data[off : off+length]
			want := batch(it, window)
			for _, chunk := range chunkSizes {
				if got := framed(it, window, chunk); !equalStrings(got, want) {
					t.Logf("format %T splitOff %d chunk %d: got %d records, want %d",
						c.format, splitOff, chunk, len(got), len(want))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every line belongs to exactly one split, whatever the split
// geometry — Hadoop's exactly-once framing law.
func TestQuickLineSplitsExactlyOnce(t *testing.T) {
	f := func(nrec uint8, splitSizeRaw uint16) bool {
		n := int(nrec)%80 + 2
		var data []byte
		for i := 0; i < n; i++ {
			data = append(data, []byte(fmt.Sprintf("r%04d %s\n", i, bytes.Repeat([]byte{'y'}, i%29)))...)
		}
		fileSize := int64(len(data))
		splitSize := int64(splitSizeRaw)%96 + 16
		var got []string
		for off := int64(0); off < fileSize; off += splitSize {
			length := splitSize
			if off+length > fileSize {
				length = fileSize - off
			}
			it := recordIter{format: LineFormat{}, splitOff: off, splitLen: length, fileSize: fileSize}
			ro, rl := it.readRange()
			it.records(data[ro:ro+rl], func(rec []byte) { got = append(got, string(rec)) })
		}
		if len(got) != n {
			t.Logf("splitSize %d: got %d records, want %d", splitSize, len(got), n)
			return false
		}
		for i, rec := range got {
			if want := fmt.Sprintf("r%04d", i); rec[:5] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: fixed records split exactly once too.
func TestQuickFixedSplitsExactlyOnce(t *testing.T) {
	f := func(nrec uint8, splitSizeRaw uint16) bool {
		n := int(nrec)%80 + 2
		const rs = 25
		var data []byte
		for i := 0; i < n; i++ {
			rec := make([]byte, rs)
			copy(rec, fmt.Sprintf("%06d", i))
			data = append(data, rec...)
		}
		fileSize := int64(len(data))
		splitSize := int64(splitSizeRaw)%120 + 10
		count := 0
		for off := int64(0); off < fileSize; off += splitSize {
			length := splitSize
			if off+length > fileSize {
				length = fileSize - off
			}
			it := recordIter{format: FixedFormat{Size: rs}, splitOff: off, splitLen: length, fileSize: fileSize}
			ro, rl := it.readRange()
			if rl == 0 {
				continue
			}
			it.records(data[ro:ro+rl], func(rec []byte) { count++ })
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKVLenPartial(t *testing.T) {
	full := appendKV(nil, []byte("key"), []byte("value"))
	for i := 0; i < len(full); i++ {
		if n, ok := kvLen(full[:i]); ok {
			t.Errorf("prefix %d reported complete (n=%d)", i, n)
		}
	}
	if n, ok := kvLen(full); !ok || n != len(full) {
		t.Errorf("full pair: n=%d ok=%v, want %d true", n, ok, len(full))
	}
}

func TestNCompares(t *testing.T) {
	if nCompares(0) != 0 || nCompares(1) != 0 {
		t.Error("trivial sizes should cost nothing")
	}
	if nCompares(1024) <= nCompares(512)*1.5 {
		t.Error("n log n should grow superlinearly")
	}
}
