package mapred

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"slices"
)

// appendKV serializes one pair as uvarint-length-prefixed key and value —
// the on-disk and on-wire intermediate format.
func appendKV(dst, key, value []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(value)))
	dst = append(dst, value...)
	return dst
}

// readKV deserializes the pair at the head of src, returning the key, the
// value, and the remainder. It panics on corruption — in a simulation that
// is a bug, not an I/O error.
func readKV(src []byte) (key, value, rest []byte) {
	kl, n := binary.Uvarint(src)
	if n <= 0 {
		panic("mapred: corrupt KV stream (key length)")
	}
	src = src[n:]
	key = src[:kl]
	src = src[kl:]
	vl, n := binary.Uvarint(src)
	if n <= 0 {
		panic("mapred: corrupt KV stream (value length)")
	}
	src = src[n:]
	value = src[:vl]
	return key, value, src[vl:]
}

// run is a sorted serialized KV stream.
type run []byte

// mergeRuns performs a k-way merge of sorted runs into one sorted run. The
// result may alias a single non-empty input run, so callers must treat both
// as read-only afterwards (they do: merged output is compressed or grouped,
// then dropped).
func mergeRuns(runs []run) run {
	runs2 := runs[:0]
	total := 0
	for _, r := range runs {
		if len(r) > 0 {
			runs2 = append(runs2, r)
			total += len(r)
		}
	}
	runs = runs2
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return runs[0]
	}
	type cursor struct {
		key, val, rest []byte
	}
	cs := make([]cursor, len(runs))
	for i, r := range runs {
		k, v, rest := readKV(r)
		cs[i] = cursor{k, v, rest}
	}
	// Loser-tree complexity is unnecessary at our fan-ins; a linear scan of
	// the (small) cursor set keeps this simple and deterministic.
	out := make(run, 0, total)
	for len(cs) > 0 {
		best := 0
		for i := 1; i < len(cs); i++ {
			if bytes.Compare(cs[i].key, cs[best].key) < 0 {
				best = i
			}
		}
		out = appendKV(out, cs[best].key, cs[best].val)
		if len(cs[best].rest) == 0 {
			cs = append(cs[:best], cs[best+1:]...)
			continue
		}
		k, v, rest := readKV(cs[best].rest)
		cs[best] = cursor{k, v, rest}
	}
	return out
}

// groupRun iterates a sorted run, invoking fn once per distinct key with
// all its values (subslices of the run; fn must not retain them).
func groupRun(r run, fn func(key []byte, values [][]byte)) {
	var curKey []byte
	var vals [][]byte
	for len(r) > 0 {
		k, v, rest := readKV(r)
		if curKey == nil || !bytes.Equal(k, curKey) {
			if curKey != nil {
				fn(curKey, vals)
			}
			curKey = k
			vals = vals[:0]
		}
		vals = append(vals, v)
		r = rest
	}
	if curKey != nil {
		fn(curKey, vals)
	}
}

// countKVs returns the number of pairs in a run.
func countKVs(r run) int64 {
	var n int64
	for len(r) > 0 {
		_, _, r2 := readKV(r)
		r = r2
		n++
	}
	return n
}

// sortedRun reports whether r is sorted by key (test helper used by
// property tests and debug assertions).
func sortedRun(r run) bool {
	var prev []byte
	for len(r) > 0 {
		k, _, rest := readKV(r)
		if prev != nil && bytes.Compare(prev, k) > 0 {
			return false
		}
		prev = k
		r = rest
	}
	return true
}

// recordIter produces record boundaries for a split under a RecordFormat.
//
// Hadoop semantics are preserved for both formats:
//   - lines: skip a partial first line (unless offset 0); consume past the
//     split end to finish the final line.
//   - fixed: the split owns records whose first byte lies inside it.
type recordIter struct {
	format   RecordFormat
	splitOff int64
	splitLen int64
	fileSize int64
}

// ranges returns the byte range of the file this split must actually read:
// for lines, up to one extra record's worth past the end. maxRecord bounds
// the overread window.
const maxLineOverread = 64 << 10

func (it recordIter) readRange() (off, length int64) {
	switch f := it.format.(type) {
	case FixedFormat:
		rs := int64(f.Size)
		first := (it.splitOff + rs - 1) / rs * rs
		afterLast := (it.splitOff + it.splitLen + rs - 1) / rs * rs
		if afterLast > it.fileSize {
			afterLast = it.fileSize
		}
		if first >= afterLast {
			return 0, 0
		}
		return first, afterLast - first
	case LineFormat:
		end := it.splitOff + it.splitLen + maxLineOverread
		if end > it.fileSize {
			end = it.fileSize
		}
		return it.splitOff, end - it.splitOff
	case KVFormat:
		return 0, it.fileSize // whole-file split
	default:
		panic(fmt.Sprintf("mapred: unknown record format %T", it.format))
	}
}

// framer incrementally frames records from chunks of the readRange, so map
// tasks interleave disk reads with record processing exactly as Hadoop's
// record readers do (one buffer ahead), instead of slurping the whole split
// before computing.
type framer struct {
	it          recordIter
	pending     []byte
	relPos      int64 // file-relative position of pending[0] minus readRange start
	skippedHead bool
	done        bool // past the split's last owned record (LineFormat)
}

func newFramer(it recordIter) *framer {
	return &framer{it: it, skippedHead: it.splitOff == 0}
}

// feed appends one chunk and emits every complete owned record in it.
func (f *framer) feed(chunk []byte, fn func(rec []byte)) {
	if f.done {
		return
	}
	f.pending = append(f.pending, chunk...)
	switch fmtv := f.it.format.(type) {
	case FixedFormat:
		n := len(f.pending) / fmtv.Size * fmtv.Size
		for off := 0; off < n; off += fmtv.Size {
			fn(f.pending[off : off+fmtv.Size])
		}
		f.consume(n)
	case LineFormat:
		if !f.skippedHead {
			i := bytes.IndexByte(f.pending, '\n')
			if i < 0 {
				return // keep accumulating the foreign partial line
			}
			f.consume(i + 1)
			f.skippedHead = true
		}
		limit := f.it.splitLen // owned lines start at relative pos <= splitLen
		// Walk complete lines by offset and consume once at the end — a
		// copy-down per record would be quadratic in the chunk size.
		off := 0
		for {
			if f.relPos+int64(off) > limit {
				f.done = true
				f.pending = nil
				return
			}
			i := bytes.IndexByte(f.pending[off:], '\n')
			if i < 0 {
				break
			}
			fn(f.pending[off : off+i])
			off += i + 1
		}
		f.consume(off)
	case KVFormat:
		off := 0
		for {
			n, ok := kvLen(f.pending[off:])
			if !ok {
				break
			}
			fn(f.pending[off : off+n])
			off += n
		}
		f.consume(off)
	default:
		panic(fmt.Sprintf("mapred: unknown record format %T", f.it.format))
	}
}

// consume drops n framed bytes from the head of pending.
func (f *framer) consume(n int) {
	f.relPos += int64(n)
	rest := f.pending[n:]
	// Copy down rather than re-slice so the backing array does not pin the
	// whole history of chunks.
	if len(rest) == 0 {
		f.pending = f.pending[:0]
	} else {
		f.pending = append(f.pending[:0], rest...)
	}
}

// kvLen returns the byte length of the complete KV pair at the head of
// data, or ok=false if data holds only a partial pair.
func kvLen(data []byte) (int, bool) {
	kl, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, false
	}
	pos := n + int(kl)
	if pos > len(data) {
		return 0, false
	}
	vl, m := binary.Uvarint(data[pos:])
	if m <= 0 {
		return 0, false
	}
	pos += m + int(vl)
	if pos > len(data) {
		return 0, false
	}
	return pos, true
}

// records invokes fn for every record the split owns, given the bytes of
// readRange(). For LineFormat, data begins at splitOff.
func (it recordIter) records(data []byte, fn func(rec []byte)) {
	switch f := it.format.(type) {
	case FixedFormat:
		for off := 0; off+f.Size <= len(data); off += f.Size {
			fn(data[off : off+f.Size])
		}
	case LineFormat:
		pos := 0
		if it.splitOff != 0 {
			// Skip the partial first line; it belongs to the prior split.
			i := bytes.IndexByte(data, '\n')
			if i < 0 {
				return
			}
			pos = i + 1
		}
		limit := int(it.splitLen) // records starting before splitOff+splitLen are ours
		for pos < len(data) && pos <= limit {
			i := bytes.IndexByte(data[pos:], '\n')
			if i < 0 {
				break // unterminated tail fragment at EOF
			}
			fn(data[pos : pos+i])
			pos += i + 1
		}
	case KVFormat:
		for len(data) > 0 {
			before := len(data)
			_, _, rest := readKV(data)
			fn(data[:before-len(rest)])
			data = rest
		}
	default:
		panic(fmt.Sprintf("mapred: unknown record format %T", it.format))
	}
}

// nCompares estimates comparisons for sorting n items (n log2 n).
func nCompares(n int) float64 {
	if n < 2 {
		return 0
	}
	log := 0.0
	for m := n; m > 1; m >>= 1 {
		log++
	}
	return float64(n) * log
}

// sortKVEntries sorts entries by (partition, key, emission order). The seq
// tiebreaker yields the effect of a stable sort (equal keys keep emission
// order, which keeps runs deterministic) at unstable-sort cost.
func sortKVEntries(ents []kvEnt) {
	// slices.SortFunc moves entries directly instead of going through
	// sort.Slice's reflection-based swapper — the comparison is a strict
	// total order (seq breaks ties), so any sorting algorithm produces the
	// same permutation.
	slices.SortFunc(ents, func(a, b kvEnt) int {
		if a.part != b.part {
			return a.part - b.part
		}
		if c := bytes.Compare(a.key, b.key); c != 0 {
			return c
		}
		return a.seq - b.seq
	})
}
