// Package mapred implements the MapReduce runtime of the paper's testbed
// (Hadoop 1.0.4): a job tracker with per-node map/reduce task slots, map
// tasks with sort-buffer spills and on-disk merges, a parallel shuffle over
// the cluster network, reduce-side merge, and HDFS output with replication.
//
// The runtime executes real user map and reduce functions over real bytes.
// Its I/O goes through internal/localfs (intermediate data, on the three
// dedicated per-node disks) and internal/hdfs (input/output), so the
// intermediate-vs-HDFS access-pattern contrast the paper measures is an
// emergent property of the same pipeline that produced it on the authors'
// cluster: many concurrently written spill files (small, fragmented,
// re-read by the shuffle) versus large streaming block I/O.
package mapred

import (
	"fmt"
	"time"

	"iochar/internal/compress"
)

// Mapper transforms one input record into zero or more key/value pairs.
// Implementations must not retain the record or emitted slices; the runtime
// copies what it needs.
type Mapper interface {
	Map(record []byte, emit func(key, value []byte))
}

// Reducer folds all values of one key into zero or more output pairs.
type Reducer interface {
	Reduce(key []byte, values [][]byte, emit func(key, value []byte))
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(record []byte, emit func(key, value []byte))

// Map implements Mapper.
func (f MapperFunc) Map(record []byte, emit func(key, value []byte)) { f(record, emit) }

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(key []byte, values [][]byte, emit func(key, value []byte))

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key []byte, values [][]byte, emit func(key, value []byte)) {
	f(key, values, emit)
}

// Partitioner maps a key to a reduce partition in [0, n).
type Partitioner func(key []byte, n int) int

// HashPartition is the default partitioner (FNV-1a, like Hadoop's hash
// partitioning in spirit).
func HashPartition(key []byte, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	if n <= 1 {
		return 0
	}
	return int(h % uint64(n))
}

// CostModel prices the user code's CPU work in virtual nanoseconds. These
// constants are what make a workload CPU-bound or I/O-bound (the paper's
// Table 3 classification); each workload package calibrates its own.
type CostModel struct {
	MapNsPerRecord    float64
	MapNsPerByte      float64
	ReduceNsPerRecord float64 // per input value
	ReduceNsPerByte   float64 // per input value byte
}

// RecordFormat tells the input reader how to frame records in a split.
type RecordFormat interface {
	// Frame returns record boundaries handling split edges: the reader
	// implementation is in format.go.
	isFormat()
}

// LineFormat frames newline-terminated records with Hadoop's
// LineRecordReader convention: a split skips a partial first line (unless
// it starts at offset 0) and reads past its end to finish the last line.
type LineFormat struct{}

func (LineFormat) isFormat() {}

// FixedFormat frames fixed-size records (TeraSort's 100-byte records): a
// split owns the records whose first byte falls inside it.
type FixedFormat struct{ Size int }

func (FixedFormat) isFormat() {}

// KVFormat frames the runtime's own uvarint key/value pairs — the format
// reduce tasks write — so iterative workloads (K-means, PageRank) can chain
// jobs. KV streams carry no sync markers, so files under this format are
// read as whole-file splits (parallelism comes from the file count, i.e.
// the previous job's reduce count, as with Hadoop sequence-file chains).
type KVFormat struct{}

func (KVFormat) isFormat() {}

// SplitKV decodes a KVFormat record into its key and value.
func SplitKV(rec []byte) (key, value []byte) {
	k, v, _ := readKV(rec)
	return k, v
}

// AppendKV serializes one pair in the runtime's KV format — the format of
// reduce output files. Exposed for drivers and tests that build or inspect
// KV streams.
func AppendKV(dst, key, value []byte) []byte { return appendKV(dst, key, value) }

// NextKV decodes the pair at the head of a KV stream and returns the
// remainder, for drivers walking reduce output files.
func NextKV(data []byte) (key, value, rest []byte) { return readKV(data) }

// Job describes one MapReduce job.
type Job struct {
	Name        string
	Input       []string // HDFS paths (files)
	Output      string   // HDFS directory for part-r-* files
	Format      RecordFormat
	Mapper      Mapper
	Reducer     Reducer
	Combiner    Reducer // optional map-side combine
	Partitioner Partitioner
	NumReduces  int
	Costs       CostModel
	// OutputReplication overrides HDFS's default replication for the job's
	// part files (0 = filesystem default). TeraSort conventionally writes
	// its output with replication 1.
	OutputReplication int
	// KeepOutput true leaves part files in HDFS; otherwise the caller may
	// delete them between experiment repetitions.
	KeepOutput bool
}

// Config is the cluster-wide runtime configuration (mapred-site.xml).
type Config struct {
	MapSlots    int // per node (the paper's 1_8 and 2_16 factor)
	ReduceSlots int // per node

	SortBufBytes    int64 // io.sort.mb: map-side buffer before a spill
	ShuffleBufBytes int64 // reduce-side in-memory merge budget
	Codec           compress.Codec
	SlowstartFrac   float64 // fraction of maps done before reducers launch
	ShuffleParallel int     // parallel fetchers per reduce task
	ChunkBytes      int64   // input streaming granularity

	// LocalityWait is delay scheduling: an idle map slot with no data-local
	// work waits this long (up to LocalityRetries times) before accepting a
	// remote split, so data-hosting nodes get first claim. Without it, slot
	// counts near the task count destroy locality artificially.
	LocalityWait    time.Duration
	LocalityRetries int

	// Speculative enables backup attempts for straggling map tasks
	// (mapred.map.tasks.speculative.execution, on by default in Hadoop 1.x).
	// A task becomes a straggler once it has run SpeculativeSlowdown times
	// the mean completed-task duration while idle slots exist.
	Speculative         bool
	SpeculativeSlowdown float64

	// Fault-tolerance knobs, consulted only when the runtime's fault mode
	// is enabled (Runtime.EnableFaults). A reduce fetch that fails is
	// retried up to MaxFetchRetries times with exponential backoff starting
	// at FetchRetryDelay; after that the map output is declared lost and its
	// task re-executed. A map task may be attempted MaxTaskAttempts times
	// (including speculation and re-execution) before the job fails with a
	// *JobError — Hadoop's mapred.map.max.attempts. A tracker that
	// accumulates MaxTrackerFailures failed attempts in one job is
	// blacklisted: no new attempts are scheduled there, so a fail-slow node
	// stops soaking up retries (Hadoop's mapred.max.tracker.failures).
	MaxFetchRetries    int
	FetchRetryDelay    time.Duration
	MaxTaskAttempts    int
	MaxTrackerFailures int

	// Transient-network-fault knobs: a shuffle fetch that fails because the
	// map-side node is partitioned away (or the path is lossy) retries with
	// exponential backoff between NetRetryBase and NetRetryMax for up to
	// MaxNetFetchRetries attempts before the output is declared lost. The
	// budget is generous and such failures never charge the tracker
	// blacklist: a partition is the fabric's fault, not the tracker's.
	NetRetryBase       time.Duration
	NetRetryMax        time.Duration
	MaxNetFetchRetries int
	// Seed feeds the net-retry backoff jitter rng; healthy runs never draw
	// from it.
	Seed int64

	// Framework CPU costs (virtual) — defaults mirror a 2010s JVM stack.
	ParseNsPerRecord   float64
	ParseNsPerByte     float64
	SortNsPerCompare   float64
	SerializeNsPerByte float64
	MergeNsPerByte     float64
}

// DefaultConfig returns Hadoop-1.0.4-flavoured defaults at the given scale
// divisor: 100 MB sort buffer and 140 MB shuffle buffer at scale 1.
func DefaultConfig(scale int64) Config {
	if scale <= 0 {
		scale = 1
	}
	return Config{
		MapSlots:            8,
		ReduceSlots:         1,
		SortBufBytes:        clampI64((100<<20)/scale, 64<<10),
		ShuffleBufBytes:     clampI64((140<<20)/scale, 64<<10),
		Codec:               compress.Identity{},
		SlowstartFrac:       0.05,
		ShuffleParallel:     5,
		ChunkBytes:          clampI64((1<<20)/scale*4, 16<<10),
		LocalityWait:        time.Duration(int64(3*time.Second) * 64 / scale),
		LocalityRetries:     3,
		Speculative:         true,
		SpeculativeSlowdown: 3,
		MaxFetchRetries:     3,
		FetchRetryDelay:     time.Duration(int64(time.Second) * 64 / scale),
		MaxTaskAttempts:     4,
		MaxTrackerFailures:  3,
		NetRetryBase:        200 * time.Millisecond,
		NetRetryMax:         5 * time.Second,
		MaxNetFetchRetries:  64,
		ParseNsPerRecord:    120,
		ParseNsPerByte:      0.4,
		SortNsPerCompare:    25,
		SerializeNsPerByte:  0.5,
		MergeNsPerByte:      0.8,
	}
}

func clampI64(v, lo int64) int64 {
	if v < lo {
		return lo
	}
	return v
}

// Counters aggregates the per-job statistics Hadoop reports.
type Counters struct {
	MapTasks    int
	ReduceTasks int
	LocalMaps   int // data-local map tasks
	RemoteMaps  int

	MapInputRecords     int64
	MapInputBytes       int64
	MapOutputRecords    int64
	MapOutputBytes      int64 // before compression
	CompressedMapOutput int64 // after compression (what hits the disk)
	Spills              int64
	CombineInput        int64
	CombineOutput       int64

	SpeculativeAttempts int64 // backup map attempts launched
	SpeculativeWins     int64 // backups that beat the original

	// Fault-recovery counters, nonzero only under fault injection.
	ReExecutedMaps      int64 // map tasks re-run because their output was lost
	FetchRetries        int64 // reduce fetch attempts that were retried
	FailedFetches       int64 // fetches abandoned after MaxFetchRetries
	NetFetchStalls      int64 // fetch retries spent waiting out transient network faults
	BlacklistedTrackers int64 // trackers excluded after MaxTrackerFailures
	TrackerRejoins      int64 // restarted trackers that re-registered mid-job
	DoubleRegistrations int64 // rejoins that would have over-filled a node's slots (must stay 0)

	ShuffleBytes        int64 // compressed bytes moved to reducers
	ReduceSpills        int64
	ReduceInputRecords  int64
	ReduceOutputRecords int64
	ReduceOutputBytes   int64

	// I/O attribution (the paper's future work: "reveal the major source
	// of I/O demand"): logical bytes per pipeline stage.
	MapSpillBytes       int64 // map-side spill writes (post-codec)
	MapMergeReadBytes   int64 // spill re-reads during the map-side merge
	MapMergeWriteBytes  int64 // merged map-output writes (post-codec)
	ReduceRunWriteBytes int64 // reduce-side shuffle-run spills
	ReduceRunReadBytes  int64 // reduce-side run re-reads at final merge
}

// JobError is the typed failure a job returns when recovery is exhausted:
// a map task burned through MaxTaskAttempts, a reduce output could not be
// stored, or the cluster lost too many nodes to finish.
type JobError struct {
	Job    string
	Reason string
	Err    error // underlying cause, if any
}

func (e *JobError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("mapred: job %s failed: %s: %v", e.Job, e.Reason, e.Err)
	}
	return fmt.Sprintf("mapred: job %s failed: %s", e.Job, e.Reason)
}

func (e *JobError) Unwrap() error { return e.Err }

// Result reports a completed job.
type Result struct {
	Counters
	Start    time.Duration
	MapsDone time.Duration // when the last map task finished
	End      time.Duration
}

// Runtime returns the job's total runtime.
func (r *Result) Runtime() time.Duration { return r.End - r.Start }
