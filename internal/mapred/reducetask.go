package mapred

import (
	"fmt"
	"time"

	"iochar/internal/cluster"
	"iochar/internal/disk"
	"iochar/internal/localfs"
	"iochar/internal/sim"
)

// reduceTask executes one reduce attempt on a node: shuffle (parallel
// fetchers pulling this partition's segment from every map output), merge
// (in-memory with disk spills when the shuffle buffer overflows), the user
// reduce function, and HDFS output.
func (rt *Runtime) reduceTask(p *sim.Proc, job *Job, js *jobState, part int, node *cluster.Node) {
	cfg := rt.cfg
	inc := node.Incarnation()
	// zombie reports whether this attempt's machine died under it — including
	// a crash-and-restart, which Alive alone cannot see. A zombie's on-disk
	// shuffle runs were truncated by the crash and must not be merged.
	zombie := func() bool {
		return js.faulty && (!node.Alive() || node.Incarnation() != inc)
	}
	type diskRun struct {
		vol  *localfs.FS
		file *localfs.File
		name string
		clen int64
		raw  int64
	}
	var (
		memRuns   []run
		memBytes  int64
		diskRuns  []diskRun
		runSeq    int
		shuffled  int64
		inRecords int64
		runWrite  int64
		runRead   int64
	)
	// spillRuns may be entered by several fetcher processes; the run index
	// and buffered-runs snapshot are taken before any blocking operation so
	// concurrent spills work on disjoint state and distinct file names.
	spillRuns := func(sp *sim.Proc) {
		idx := runSeq
		runSeq++
		runs := memRuns
		memRuns = nil
		memBytes = 0
		merged := mergeRuns(runs)
		node.Compute(sp, time.Duration(cfg.MergeNsPerByte*float64(len(merged))))
		enc := cfg.Codec.Compress(merged)
		node.Compute(sp, cfg.Codec.CompressCost(len(merged)))
		if zombie() {
			return // the machine died under the merge; its runs die with it
		}
		vol := node.NextMRVol()
		name := fmt.Sprintf("r_%06d.run%d", part, idx)
		f := vol.Create(name)
		f.SetStage(disk.StageSpill)
		f.Append(sp, enc)
		runWrite += int64(len(enc))
		diskRuns = append(diskRuns, diskRun{vol: vol, file: f, name: name, clen: int64(len(enc)), raw: int64(len(merged))})
		js.mu(func() { js.counters.ReduceSpills++ })
	}

	// Fetch queue: map task indices become available as maps finish. The
	// fetchState is shared by this attempt's fetchers.
	st := &fetchState{}
	if js.faulty {
		st.got = make([]bool, js.totalMaps)
	}
	ingest := func(fp *sim.Proc, enc []byte, seg segment) {
		if zombie() {
			return // attempt is dead; don't touch the node's volumes
		}
		raw := cfg.Codec.Decompress(enc)
		node.Compute(fp, cfg.Codec.DecompressCost(len(raw)))
		memRuns = append(memRuns, raw)
		memBytes += int64(len(raw))
		shuffled += seg.clen
		inRecords += seg.records
		if memBytes > cfg.ShuffleBufBytes {
			spillRuns(fp)
		}
	}
	fetchOne := func(fp *sim.Proc, out *mapOutput) {
		if js.faulty {
			rt.fetchOneFaulty(fp, js, st, out, node, part, ingest)
			return
		}
		seg := out.segs[part]
		if seg.clen == 0 {
			return
		}
		enc := out.file.ReadAt(fp, seg.off, seg.clen) // map-side disk read
		rt.net.Transfer(fp, out.node.Name, node.Name, seg.clen)
		ingest(fp, enc, seg)
	}
	nFetchers := cfg.ShuffleParallel
	if nFetchers < 1 {
		nFetchers = 1
	}
	var fetchers []*sim.Handle
	for i := 0; i < nFetchers; i++ {
		fetchers = append(fetchers, rt.env.Go(fmt.Sprintf("fetch-r%d-%d", part, i), func(fp *sim.Proc) {
			for {
				if zombie() {
					return // zombie attempt; the partition will be reassigned
				}
				out := js.nextOutput(fp, st)
				if out == nil {
					return
				}
				fetchOne(fp, out)
			}
		}))
	}
	for _, h := range fetchers {
		h.Wait(p)
	}
	abort := func() {
		for _, dr := range diskRuns {
			_ = dr.vol.Delete(dr.name)
		}
	}
	if zombie() || (js.faulty && (js.failed != nil || js.redOwner[part] != node.Name)) {
		abort()
		return
	}

	// Final merge: disk runs are read back and joined with what remains in
	// memory.
	runs := memRuns
	for _, dr := range diskRuns {
		dr.file.SetStage(disk.StageMerge)
		enc := dr.file.ReadAt(p, 0, dr.clen)
		if zombie() {
			abort() // the node bounced while the read slept; enc is truncated
			return
		}
		runRead += dr.clen
		raw := cfg.Codec.Decompress(enc)
		node.Compute(p, cfg.Codec.DecompressCost(len(raw)))
		runs = append(runs, raw)
	}
	merged := mergeRuns(runs)
	node.Compute(p, time.Duration(cfg.MergeNsPerByte*float64(len(merged))))

	// Reduce and write output to HDFS with the job's replication factor.
	if zombie() || (js.faulty && js.redOwner[part] != node.Name) {
		abort() // re-check after the merge: creating the part file now would
		return  // clobber a reassigned attempt's output
	}
	w := rt.fs.CreateWith(fmt.Sprintf("%s/part-r-%05d", job.Output, part), node.Name, job.OutputReplication)
	var outRecords, outBytes int64
	var cpu time.Duration
	var werr error
	// kvBuf is reused across output records; Write copies it into the HDFS
	// client buffer before any pipeline flush can yield the process.
	var kvBuf []byte
	emit := func(k, v []byte) {
		outRecords++
		outBytes += int64(len(k)+len(v)) + 1
		if werr == nil {
			kvBuf = appendKV(kvBuf[:0], k, v)
			werr = w.Write(p, kvBuf)
		}
	}
	groupRun(merged, func(key []byte, values [][]byte) {
		var vbytes int64
		for _, v := range values {
			vbytes += int64(len(v))
		}
		cpu += time.Duration(job.Costs.ReduceNsPerRecord*float64(len(values)) + job.Costs.ReduceNsPerByte*float64(vbytes))
		if cpu > time.Millisecond {
			node.Compute(p, cpu)
			cpu = 0
		}
		job.Reducer.Reduce(key, values, emit)
	})
	node.Compute(p, cpu)
	if werr == nil {
		werr = w.Close(p)
	}
	if werr != nil {
		abort()
		if !js.faulty {
			panic(werr) // a healthy run cannot fail an HDFS write
		}
		if !zombie() {
			// Live node, dead filesystem: output genuinely cannot be stored.
			// (A zombie's write failure is its own crash, not the data's; the
			// partition re-runs elsewhere.)
			js.fail(&JobError{Job: job.Name, Reason: fmt.Sprintf("reduce %d: cannot write output", part), Err: werr})
		}
		return
	}

	// Intermediate hygiene: local shuffle runs die here.
	for _, dr := range diskRuns {
		if err := dr.vol.Delete(dr.name); err != nil {
			if zombie() {
				continue // the crash already removed this run
			}
			panic(err)
		}
	}
	if zombie() || !js.finishReduce(part, node.Name) {
		return // zombie attempt lost the partition; discard its stats
	}

	js.mu(func() {
		js.counters.ShuffleBytes += shuffled
		js.counters.ReduceInputRecords += inRecords
		js.counters.ReduceOutputRecords += outRecords
		js.counters.ReduceOutputBytes += outBytes
		js.counters.ReduceRunWriteBytes += runWrite
		js.counters.ReduceRunReadBytes += runRead
	})
}
