package mapred

import (
	"reflect"
	"testing"
	"time"

	"iochar/internal/sim"
)

// masterRigMR is newRig plus a provisioned metadata volume and the
// JobTracker master layer.
func masterRigMR(t *testing.T, cfg MasterConfig) *testRig {
	t.Helper()
	r := newRig(t, nil)
	if err := r.cl.ProvisionMasterMeta(1); err != nil {
		t.Fatal(err)
	}
	r.rt.EnableMaster(r.cl.Master.MetaVols[0], cfg)
	return r
}

// runJobStopMaster runs a job and shuts the master daemons down when it
// completes, so env.Run can drain.
func (r *testRig) runJobStopMaster(t *testing.T, job *Job) *Result {
	t.Helper()
	var res *Result
	var err error
	r.env.Go("driver", func(p *sim.Proc) {
		res, err = r.rt.Run(p, job)
		r.rt.StopMaster()
	})
	r.env.Run(0)
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	return res
}

// TestJobTrackerReplayEquivalence samples the durability invariant while a
// job is in flight: at every sampled instant the job state a restarting
// JobTracker would rebuild from image+journal equals the scheduler's live
// state. A short checkpoint interval forces the image to roll mid-job.
func TestJobTrackerReplayEquivalence(t *testing.T) {
	r := masterRigMR(t, MasterConfig{CheckpointInterval: 2 * time.Millisecond})
	parts, want := textParts()
	r.loadLines("/in", parts)
	var nonEmpty int
	r.env.Go("checker", func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			p.Sleep(250 * time.Microsecond)
			live, replay := r.rt.LiveJobs(), r.rt.MasterReplayJobs()
			if len(live) > 0 {
				nonEmpty++
			}
			if !reflect.DeepEqual(live, replay) {
				t.Errorf("replayed job state diverged at %v:\n live   %+v\n replay %+v", p.Now(), live, replay)
				return
			}
		}
	})
	r.runJobStopMaster(t, wordCountJob(r.inputs("/in"), "/out"))
	if nonEmpty == 0 {
		t.Fatal("checker never observed an in-flight job; widen its window")
	}
	st := r.rt.MasterStats()
	if st.JournalRecords == 0 {
		t.Error("no job-state records journaled")
	}
	if st.Checkpoints == 0 {
		t.Error("no checkpoint rolled mid-job at a 2ms interval")
	}
	if live, replay := r.rt.LiveJobs(), r.rt.MasterReplayJobs(); len(live) != 0 || len(replay) != 0 {
		t.Errorf("job state not retired after completion: live %d, replay %d", len(live), len(replay))
	}
	checkWordCount(t, r.readOutput(t, "/out"), want)
}

// TestJobTrackerBounceMidJob crashes the JobTracker mid-job and restarts it
// after an outage: task grants must stall (not fail), scheduling must
// resume, and the output must be exactly the healthy run's.
func TestJobTrackerBounceMidJob(t *testing.T) {
	r := masterRigMR(t, MasterConfig{})
	parts, want := textParts()
	r.loadLines("/in", parts)
	r.env.Go("chaos", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		r.rt.CrashJobTracker()
		if !r.rt.JobTrackerDown() {
			t.Error("CrashJobTracker left the master serving")
		}
		p.Sleep(10 * time.Millisecond)
		r.rt.RestartJobTracker(p)
		r.rt.WaitMasterReady(p)
	})
	r.runJobStopMaster(t, wordCountJob(r.inputs("/in"), "/out"))
	st := r.rt.MasterStats()
	if st.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", st.Restarts)
	}
	if st.GrantStalls == 0 || st.StallTime == 0 {
		t.Errorf("no task tracker stalled on the outage: %+v", st)
	}
	checkWordCount(t, r.readOutput(t, "/out"), want)
}

// TestJobTrackerKillReplayDiff is the kill-replay-diff scenario at the
// JobTracker: snapshot the replayable state, crash, restart, and the
// recovered state must match the pre-crash snapshot exactly.
func TestJobTrackerKillReplayDiff(t *testing.T) {
	r := masterRigMR(t, MasterConfig{})
	parts, _ := textParts()
	r.loadLines("/in", parts)
	r.env.Go("chaos", func(p *sim.Proc) {
		p.Sleep(3 * time.Millisecond)
		pre := r.rt.LiveJobs()
		if len(pre) == 0 {
			t.Error("no job in flight at crash time; move the crash earlier")
			return
		}
		r.rt.CrashJobTracker()
		p.Sleep(5 * time.Millisecond)
		r.rt.RestartJobTracker(p)
		post := r.rt.MasterReplayJobs()
		// Map completions journaled during the outage (trackers finish work
		// already granted) are legitimately ahead of the snapshot; every bit
		// set pre-crash must survive, and nothing may regress.
		for name, j := range pre {
			pj := post[name]
			if pj == nil {
				t.Errorf("job %s lost across the bounce", name)
				continue
			}
			for i, done := range j.MapDone {
				if done && !pj.MapDone[i] {
					t.Errorf("job %s map %d regressed across the bounce", name, i)
				}
			}
			for i, done := range j.RedDone {
				if done && !pj.RedDone[i] {
					t.Errorf("job %s reduce %d regressed across the bounce", name, i)
				}
			}
		}
	})
	r.runJobStopMaster(t, wordCountJob(r.inputs("/in"), "/out"))
}
