package mapred

import (
	"fmt"
	"time"

	"iochar/internal/cluster"
	"iochar/internal/disk"
	"iochar/internal/localfs"
	"iochar/internal/sim"
)

// split is one map task's input slice.
type split struct {
	file  string
	off   int64
	len   int64
	hosts []string // nodes holding a replica of the first block
}

// kvEnt is one buffered map output pair. key/val point into the task arena;
// seq makes the sort a deterministic total order without the cost of a
// stable sort.
type kvEnt struct {
	part     int
	seq      int
	key, val []byte
}

// segment locates one partition's data inside a map output file.
type segment struct {
	off     int64
	clen    int64 // compressed length on disk
	rawLen  int64
	records int64
}

// mapOutput is the shuffle-visible result of one finished map task.
type mapOutput struct {
	taskIdx int
	node    *cluster.Node
	inc     int // node incarnation the attempt started under
	vol     *localfs.FS
	file    *localfs.File
	segs    []segment // one per reduce partition
	lost    bool      // node died or fetches failed; a replacement will be produced
}

// mapTask executes one map attempt on a node. It is called from a map-slot
// worker process. Several attempts of the same task may run concurrently
// under speculation; the first to complete wins, the rest abandon at the
// next chunk boundary and clean up after themselves.
func (rt *Runtime) mapTask(p *sim.Proc, job *Job, js *jobState, taskIdx, attempt int, sp split, node *cluster.Node) {
	cfg := rt.cfg
	reader, err := rt.fs.Open(sp.file, node.Name)
	if err != nil {
		panic(fmt.Sprintf("mapred: map %d: %v", taskIdx, err))
	}
	it := recordIter{format: job.Format, splitOff: sp.off, splitLen: sp.len, fileSize: reader.Size()}
	readOff, readLen := it.readRange()

	nparts := job.NumReduces
	state := &mapState{
		rt: rt, job: job, node: node, inc: node.Incarnation(),
		spillBase: fmt.Sprintf("m_%06d_a%d", taskIdx, attempt),
	}
	var inRecords, inBytes, outRecords, outBytes int64
	var cpu time.Duration
	emit := func(k, v []byte) {
		outRecords++
		outBytes += int64(len(k) + len(v))
		state.add(p, job.Partitioner(k, nparts), k, v)
	}
	handle := func(rec []byte) {
		inRecords++
		inBytes += int64(len(rec))
		cpu += time.Duration(cfg.ParseNsPerRecord + cfg.ParseNsPerByte*float64(len(rec)))
		cpu += time.Duration(job.Costs.MapNsPerRecord + job.Costs.MapNsPerByte*float64(len(rec)))
		job.Mapper.Map(rec, emit)
	}
	// Stream the split chunk by chunk, interleaving disk reads with record
	// processing as Hadoop's record readers do — the interleaving is what
	// lets CPU-bound workloads hide their I/O behind computation.
	fr := newFramer(it)
	for pos := readOff; pos < readOff+readLen && !fr.done; pos += cfg.ChunkBytes {
		if js.taskDone(taskIdx) {
			state.abandon() // another attempt won; stop wasting the disks
			return
		}
		if state.zombie() || (js.faulty && js.failed != nil) {
			state.abandon() // our tracker died mid-task, or the job is over
			return
		}
		n := cfg.ChunkBytes
		if pos+n > readOff+readLen {
			n = readOff + readLen - pos
		}
		data, err := reader.ReadAt(p, pos, n)
		if err != nil {
			state.abandon()
			if state.zombie() {
				return // zombie attempt: our own node died mid-read, so the
				// failure is ours, not the data's; the task re-runs elsewhere
			}
			// A live node cannot read the split: every replica of an input
			// block is gone, and no task re-execution can recover the job.
			js.fail(&JobError{Job: job.Name, Reason: fmt.Sprintf("map %d: input unreadable", taskIdx), Err: err})
			return
		}
		fr.feed(data, handle)
		if cpu > 0 {
			node.Compute(p, cpu)
			cpu = 0
		}
	}
	out := state.finish(p, taskIdx)
	if out == nil {
		return // the node bounced mid-merge; the attempt died with it
	}
	if !js.completeMap(out) {
		return // lost the race at the wire; completeMap discarded the output
	}
	js.mu(func() {
		js.counters.MapInputRecords += inRecords
		js.counters.MapInputBytes += inBytes
		js.counters.MapOutputRecords += outRecords
		js.counters.MapOutputBytes += outBytes
		js.counters.Spills += state.spillCount
		js.counters.CompressedMapOutput += state.compressedBytes
		js.counters.MapSpillBytes += state.spillBytes
		js.counters.MapMergeReadBytes += state.mergeReadBytes
		js.counters.MapMergeWriteBytes += state.mergeWriteBytes
		js.counters.CombineInput += state.combineIn
		js.counters.CombineOutput += state.combineOut
		if attempt > 1 {
			js.counters.SpeculativeWins++
		}
	})
}

// zombie reports whether the attempt's machine died under it — including a
// crash followed by a restart, which an aliveness check cannot see. A
// zombie's spill files were truncated by the crash, so it must abandon
// rather than merge them.
func (ms *mapState) zombie() bool {
	return ms.rt.faulty && (!ms.node.Alive() || ms.node.Incarnation() != ms.inc)
}

// abandon deletes the spill files of a cancelled attempt.
func (ms *mapState) abandon() {
	for i, sf := range ms.spills {
		_ = sf.vol.Delete(fmt.Sprintf("%s.spill%d", ms.spillBase, i))
	}
	ms.spills = nil
	ms.arena = nil
	ms.ents = nil
}

// mapState is the map-side collection buffer and spill machinery.
type mapState struct {
	rt   *Runtime
	job  *Job
	node *cluster.Node
	inc  int // node incarnation at attempt start

	arena    []byte
	ents     []kvEnt
	bufBytes int64
	scratch  run // serializePartition output buffer, reused across spills

	spillBase  string
	spills     []*spillFile
	spillCount int64

	compressedBytes int64
	spillBytes      int64 // attribution: spill writes
	mergeReadBytes  int64 // attribution: spill re-reads at merge
	mergeWriteBytes int64 // attribution: merged output writes
	combineIn       int64
	combineOut      int64
}

type spillFile struct {
	vol  *localfs.FS
	file *localfs.File
	segs []segment
}

// add buffers one pair, spilling when the sort buffer fills. Hadoop spills
// at 80% occupancy in the background; the synchronous equivalent preserves
// the on-disk outcome (spill count and sizes) that the I/O study sees.
func (ms *mapState) add(p *sim.Proc, part int, k, v []byte) {
	if ms.arena == nil {
		// Size the arena to the spill threshold once, so buffering does not
		// repeatedly reallocate (entries alias into it, so growth is a copy
		// of every buffered byte).
		ms.arena = make([]byte, 0, ms.rt.cfg.SortBufBytes+4096)
	}
	ko := len(ms.arena)
	ms.arena = append(ms.arena, k...)
	vo := len(ms.arena)
	ms.arena = append(ms.arena, v...)
	ms.ents = append(ms.ents, kvEnt{part: part, seq: len(ms.ents), key: ms.arena[ko:vo:vo], val: ms.arena[vo:len(ms.arena):len(ms.arena)]})
	ms.bufBytes += int64(len(k)+len(v)) + 16
	if float64(ms.bufBytes) >= 0.8*float64(ms.rt.cfg.SortBufBytes) {
		ms.spill(p)
	}
}

// spill sorts the buffer and writes one spill file with a segment per
// partition (combined and compressed), on the node's next intermediate
// volume.
func (ms *mapState) spill(p *sim.Proc) {
	// A zombie must not touch the node's volumes (they may all be failed
	// mid-crash); the attempt is abandoned at the next boundary check.
	if len(ms.ents) == 0 || ms.zombie() {
		return
	}
	cfg := ms.rt.cfg
	// Arena re-slicing hazard: entries hold views into ms.arena, safe since
	// the arena is append-only and the buffer is only recycled after every
	// entry has been serialized out.
	ms.node.Compute(p, time.Duration(nCompares(len(ms.ents))*cfg.SortNsPerCompare))
	sortKVEntries(ms.ents)
	if ms.zombie() {
		return // the machine died under the sort; see the guard above
	}
	vol := ms.node.NextMRVol()
	f := vol.Create(fmt.Sprintf("%s.spill%d", ms.spillBase, len(ms.spills)))
	f.SetStage(disk.StageSpill)
	sf := &spillFile{vol: vol, file: f}
	var off int64
	i := 0
	for part := 0; part < ms.job.NumReduces; part++ {
		j := i
		for j < len(ms.ents) && ms.ents[j].part == part {
			j++
		}
		raw, n := ms.serializePartition(p, ms.ents[i:j])
		i = j
		seg := segment{off: off, rawLen: int64(len(raw)), records: n}
		if len(raw) > 0 {
			enc := cfg.Codec.Compress(raw)
			ms.node.Compute(p, cfg.Codec.CompressCost(len(raw)))
			f.Append(p, enc)
			seg.clen = int64(len(enc))
			off += seg.clen
			ms.compressedBytes += seg.clen
			ms.spillBytes += seg.clen
		}
		sf.segs = append(sf.segs, seg)
	}
	ms.spills = append(ms.spills, sf)
	ms.spillCount++
	// Keep the backing arrays: every buffered byte was serialized (and copied)
	// above, so the next fill can overwrite them instead of reallocating the
	// full sort buffer once per spill.
	ms.arena = ms.arena[:0]
	ms.ents = ms.ents[:0]
	ms.bufBytes = 0
}

// serializePartition runs the combiner (if any) over one partition's sorted
// entries and serializes them, charging serialization CPU.
func (ms *mapState) serializePartition(p *sim.Proc, ents []kvEnt) (run, int64) {
	if len(ents) == 0 {
		return nil, 0
	}
	cfg := ms.rt.cfg
	// The caller consumes the returned run (compress + append, both copying)
	// before the next call, so the backing array is recycled across
	// partitions and spills instead of being regrown from nil each time.
	out := ms.scratch[:0]
	var n int64
	if comb := ms.job.Combiner; comb != nil {
		emit := func(k, v []byte) {
			out = appendKV(out, k, v)
			n++
		}
		i := 0
		var vals [][]byte
		for i < len(ents) {
			j := i
			vals = vals[:0]
			for j < len(ents) && string(ents[j].key) == string(ents[i].key) {
				vals = append(vals, ents[j].val)
				j++
			}
			ms.combineIn += int64(j - i)
			comb.Reduce(ents[i].key, vals, emit)
			i = j
		}
		ms.combineOut += n
	} else {
		for _, e := range ents {
			out = appendKV(out, e.key, e.val)
		}
		n = int64(len(ents))
	}
	ms.node.Compute(p, time.Duration(cfg.SerializeNsPerByte*float64(len(out))))
	ms.scratch = out
	return out, n
}

// finish flushes the final spill and merges multiple spills into the single
// map output file the shuffle serves, deleting the spills afterwards.
func (ms *mapState) finish(p *sim.Proc, taskIdx int) *mapOutput {
	if ms.zombie() {
		ms.abandon() // the machine died after the last chunk was processed
		return nil
	}
	ms.spill(p)
	if ms.zombie() {
		ms.abandon() // the final spill slept through a node bounce
		return nil
	}
	cfg := ms.rt.cfg
	if len(ms.spills) == 0 {
		// Mapper emitted nothing: an empty output with empty segments.
		vol := ms.node.NextMRVol()
		f := vol.Create(ms.spillBase + ".out")
		f.SetStage(disk.StageShuffle)
		return &mapOutput{taskIdx: taskIdx, node: ms.node, inc: ms.inc, vol: vol, file: f, segs: make([]segment, ms.job.NumReduces)}
	}
	if len(ms.spills) == 1 {
		// The lone spill file IS the map output; from here on its reads
		// serve the shuffle.
		sf := ms.spills[0]
		sf.file.SetStage(disk.StageShuffle)
		return &mapOutput{taskIdx: taskIdx, node: ms.node, inc: ms.inc, vol: sf.vol, file: sf.file, segs: sf.segs}
	}
	// Multi-spill merge: per partition, read every spill's segment back,
	// decompress, k-way merge, recompress, append to the final file.
	vol := ms.node.NextMRVol()
	f := vol.Create(ms.spillBase + ".out")
	f.SetStage(disk.StageMerge)
	for _, sf := range ms.spills {
		sf.file.SetStage(disk.StageMerge)
	}
	segs := make([]segment, 0, ms.job.NumReduces)
	var off int64
	for part := 0; part < ms.job.NumReduces; part++ {
		var runs []run
		var records int64
		for _, sf := range ms.spills {
			sg := sf.segs[part]
			if sg.clen == 0 {
				continue
			}
			enc := sf.file.ReadAt(p, sg.off, sg.clen)
			if ms.zombie() {
				// The node bounced while this read slept; the spill came back
				// crash-truncated and enc is not a complete stream.
				ms.abandon()
				_ = vol.Delete(f.Name())
				return nil
			}
			ms.mergeReadBytes += sg.clen
			raw := cfg.Codec.Decompress(enc)
			ms.node.Compute(p, cfg.Codec.DecompressCost(len(raw)))
			runs = append(runs, raw)
			records += sg.records
		}
		merged := mergeRuns(runs)
		ms.node.Compute(p, time.Duration(cfg.MergeNsPerByte*float64(len(merged))))
		seg := segment{off: off, rawLen: int64(len(merged)), records: records}
		if len(merged) > 0 {
			enc := cfg.Codec.Compress(merged)
			ms.node.Compute(p, cfg.Codec.CompressCost(len(merged)))
			f.Append(p, enc)
			seg.clen = int64(len(enc))
			off += seg.clen
			ms.compressedBytes += seg.clen
			ms.mergeWriteBytes += seg.clen
		}
		segs = append(segs, seg)
	}
	for i, sf := range ms.spills {
		if err := sf.vol.Delete(fmt.Sprintf("%s.spill%d", ms.spillBase, i)); err != nil {
			if ms.zombie() {
				continue // the crash already removed this spill
			}
			panic(err)
		}
	}
	// Merge writes are done; subsequent reads of this handle serve fetchers.
	f.SetStage(disk.StageShuffle)
	return &mapOutput{taskIdx: taskIdx, node: ms.node, inc: ms.inc, vol: vol, file: f, segs: segs}
}
