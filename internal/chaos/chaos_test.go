package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iochar/internal/core"
	"iochar/internal/disk"
	"iochar/internal/faults"
	"iochar/internal/mapred"
)

// testOpts is the smallest testbed with enough slaves for interesting
// schedules (node kills need survivors above the replication factor).
func testOpts() Options {
	return Options{
		Core:      core.Options{Scale: 262144, Slaves: 5, MapTaskTarget: 8, Seed: 1},
		MaxFaults: 3,
	}
}

// TestChaosTeraSortSurvivesSeeds: the recovery machinery survives a spread
// of generated schedules with every oracle green — the harness's baseline
// contract against the current code.
func TestChaosTeraSortSurvivesSeeds(t *testing.T) {
	h := New(testOpts())
	verdicts, err := h.RunSeeds(context.Background(), core.TS, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if !v.Survived {
			t.Errorf("seed %d (%s): %v", v.Schedule.ChaosSeed, v.Schedule.Plan, v.Findings)
		}
		if v.Schedule.Plan == "" {
			t.Errorf("seed %d generated an empty plan", v.Schedule.ChaosSeed)
		}
		if v.Wall == 0 {
			t.Errorf("seed %d verdict carries no wall time", v.Schedule.ChaosSeed)
		}
	}
}

// TestChaosKMeansFloatTolerance: K-means writes full-precision float sums
// whose low bits legitimately depend on value arrival order; a chaos run
// must judge those numerically instead of failing on reassociated sums.
func TestChaosKMeansFloatTolerance(t *testing.T) {
	h := New(testOpts())
	v, err := h.RunSeed(context.Background(), core.KM, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Survived {
		t.Errorf("KM seed 3 (%s): %v", v.Schedule.Plan, v.Findings)
	}
}

// TestChaosDeterministicAcrossParallelism is the determinism contract: one
// seed yields byte-identical schedule JSON, counters, and verdicts, whether
// seeds run one at a time or concurrently.
func TestChaosDeterministicAcrossParallelism(t *testing.T) {
	marshal := func(vs []*Verdict) string {
		t.Helper()
		b, err := json.Marshal(vs)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	opts := testOpts()
	seq, err := New(opts).RunSeeds(context.Background(), core.TS, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	par, err := New(opts).RunSeeds(context.Background(), core.TS, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := marshal(seq), marshal(par); a != b {
		t.Errorf("verdicts diverged across parallelism:\n seq %s\n par %s", a, b)
	}
	for i, v := range seq {
		a, err := v.Schedule.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		b, err := par[i].Schedule.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("schedule JSON for seed %d not byte-identical", v.Schedule.ChaosSeed)
		}
	}
}

// TestCorruptionOracleAcceptance is the integrity acceptance scenario: a
// schedule corrupting a replica of every workload's input passes every
// oracle (read-repair or the post-run scrub heals it before judgement),
// while the same schedule with integrity verification disabled serves the
// rotten bytes into the job and fails the output-checksum oracle.
func TestCorruptionOracleAcceptance(t *testing.T) {
	ctx := context.Background()
	h := New(testOpts())
	for _, w := range core.WorkloadOrder {
		// Corrupt at 100 µs — after setup loads the inputs, before any map
		// task has streamed the first block off a disk. Several events, each
		// flipping bytes in a randomly chosen replica of the part, so the
		// copy the (deterministically scheduled) map actually reads is dirty
		// no matter which replica holder the task lands on.
		in := fmt.Sprintf("/bench/%s/in/part-00000", w)
		plan := fmt.Sprintf(
			"corrupt-block@100µs:path=%[1]s;corrupt-block@150µs:path=%[1]s;"+
				"corrupt-block@200µs:path=%[1]s;corrupt-block@250µs:path=%[1]s", in)
		pl, err := faults.ParsePlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		g, err := h.goldenFor(ctx, w)
		if err != nil {
			t.Fatal(err)
		}
		findings, expected, rep, err := h.check(ctx, w, pl, g)
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 || len(expected) != 0 {
			t.Errorf("%s: corruption under integrity broke an oracle: %v %v", w, findings, expected)
		}
		if rep != nil && rep.Recovery.CorruptReplicas == 0 {
			t.Errorf("%s: the corruption was never detected (read-repair and scrub both missed it)", w)
		}

		// Same schedule, verification off: the corrupted replica is read
		// as-is, so the downstream output must diverge from the golden run.
		opts := h.Opts().Core
		opts.Faults = pl
		opts.Audit = true
		raw := map[string][]byte{}
		opts.Inspect = captureFloatOutputs(raw)
		rep2, err := core.RunOneContext(ctx, w, h.Opts().Factors, opts)
		if err != nil {
			t.Fatalf("%s without integrity: %v", w, err)
		}
		if fs := CompareOutputs(g.sums, rep2.Audit.OutputSums, g.raw, raw); len(fs) == 0 {
			t.Errorf("%s: output matched the golden run despite unverified corruption — the checksum oracle has no teeth", w)
		}
	}
}

// TestBrokenRecoveryCaughtAndShrunk deliberately disables the map
// re-execution budget (one attempt, Hadoop's retry machinery off) and
// asserts the harness catches the resulting failures and shrinks the
// schedule to a minimal reproduction of at most two faults.
func TestBrokenRecoveryCaughtAndShrunk(t *testing.T) {
	opts := testOpts()
	opts.ShrinkBudget = 16
	opts.Core.TuneMapred = func(c *mapred.Config) { c.MaxTaskAttempts = 1 }
	h := New(opts)
	for seed := int64(1); seed <= 12; seed++ {
		v, err := h.RunSeed(context.Background(), core.TS, seed)
		if err != nil {
			t.Fatal(err)
		}
		if v.Survived {
			continue
		}
		if v.Shrunk == nil {
			t.Fatalf("seed %d failed without a shrunk schedule: %v", seed, v.Findings)
		}
		pl, err := faults.ParsePlan(v.Shrunk.Plan)
		if err != nil {
			t.Fatalf("shrunk plan does not parse: %v", err)
		}
		if len(pl.Events) > 2 {
			t.Errorf("seed %d shrunk to %d faults (%s), want <= 2", seed, len(pl.Events), v.Shrunk.Plan)
		}
		if len(pl.Events) == 0 {
			t.Errorf("seed %d shrunk to an empty plan", seed)
		}
		return
	}
	t.Fatal("no seed in 1..12 tripped the broken recovery budget")
}

// TestReplayCheckedInSchedules replays every schedule under testdata/chaos —
// survived schedules saved by past chaos runs, kept as regressions against
// the recovery paths they exercised.
func TestReplayCheckedInSchedules(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "chaos", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no schedules under testdata/chaos")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			s, err := ParseSchedule(data)
			if err != nil {
				t.Fatal(err)
			}
			v, err := Replay(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Survived {
				t.Errorf("%s (%s): %v", s.Workload, s.Plan, v.Findings)
			}
		})
	}
}

// TestScheduleTierRoundTrip: the tier field survives schedule
// serialization — a flash-targeted fail-slow regression is only a
// regression if its replay rebuilds the same tiered fleet — and the
// checked-in flash schedule really records flash.
func TestScheduleTierRoundTrip(t *testing.T) {
	s := Schedule{
		Workload: "TS",
		Plan:     "slow-disk@50ms:node=slave-01,disk=mr0,factor=8",
		PlanSeed: 17, Scale: 16384, Slaves: 3, Seed: 1, MapTaskTarget: 8,
		Tier: disk.ClassSSD,
	}
	b, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSchedule(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("round trip changed the schedule: %+v -> %+v", s, got)
	}

	data, err := os.ReadFile(filepath.Join("testdata", "chaos", "TS-ssd-failslow.json"))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := ParseSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Tier != disk.ClassSSD {
		t.Errorf("TS-ssd-failslow.json parsed with tier %v, want ssd", cs.Tier)
	}
}

// TestGeneratePlanDeterministic: plan generation is a pure function of the
// seed, and respects the schedule-size cap.
func TestGeneratePlanDeterministic(t *testing.T) {
	nodes := Nodes(5)
	for seed := int64(1); seed <= 50; seed++ {
		a := GeneratePlan(seed, nodes, 100_000_000, 3)
		b := GeneratePlan(seed, nodes, 100_000_000, 3)
		if a.String() != b.String() || a.Seed != b.Seed {
			t.Fatalf("seed %d: %q != %q", seed, a, b)
		}
		if n := len(a.Events); n < 1 || n > 3 {
			t.Fatalf("seed %d: %d events, want 1..3", seed, n)
		}
		// Generated plans must survive a serialize/parse round trip.
		pl, err := faults.ParsePlan(a.String())
		if err != nil {
			t.Fatalf("seed %d: generated plan does not parse: %v", seed, err)
		}
		if pl.String() != a.String() {
			t.Fatalf("seed %d: round trip changed the plan", seed)
		}
	}
	if GeneratePlan(1, nodes, 100_000_000, 3).String() == GeneratePlan(2, nodes, 100_000_000, 3).String() {
		t.Error("seeds 1 and 2 generated identical plans")
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	s := Schedule{
		Workload: "TS", ChaosSeed: 7, Plan: "kill-node@300ms:node=slave-02",
		PlanSeed: 7, Scale: 262144, Slaves: 5, Seed: 1, MapTaskTarget: 8,
	}
	b, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSchedule(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("round trip changed the schedule:\n %+v\n %+v", got, s)
	}
	if _, err := ParseSchedule([]byte(`{"workload":"TS","plan":"explode@1s"}`)); err == nil {
		t.Error("bad plan syntax accepted")
	}
	if _, err := ParseSchedule([]byte(`{"workload":"nope","plan":""}`)); err == nil {
		t.Error("unknown workload accepted")
	}
}

// kv builds a KV stream from alternating key, value strings.
func kv(t *testing.T, pairs ...string) []byte {
	t.Helper()
	if len(pairs)%2 != 0 {
		t.Fatal("kv wants key/value pairs")
	}
	var out []byte
	for i := 0; i < len(pairs); i += 2 {
		out = mapred.AppendKV(out, []byte(pairs[i]), []byte(pairs[i+1]))
	}
	return out
}

func TestCompareOutputsExact(t *testing.T) {
	want := map[string]string{"/bench/TS/out/part-r-00000": "aa", "/bench/TS/out/part-r-00001": "bb"}
	got := map[string]string{"/bench/TS/out/part-r-00000": "aa", "/bench/TS/out/part-r-00002": "cc"}
	fs := CompareOutputs(want, got, nil, nil)
	if len(fs) != 2 {
		t.Fatalf("findings = %v, want a missing and an unexpected output", fs)
	}
	joined := strings.Join(fs, "\n")
	for _, frag := range []string{"missing output", "unexpected output"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("findings %v lack %q", fs, frag)
		}
	}
	if fs := CompareOutputs(want, want, nil, nil); len(fs) != 0 {
		t.Errorf("identical sums produced findings: %v", fs)
	}
	got["/bench/TS/out/part-r-00001"] = "xx"
	delete(got, "/bench/TS/out/part-r-00002")
	fs = CompareOutputs(want, got, nil, nil)
	if len(fs) != 1 || !strings.Contains(fs[0], "checksum mismatch") {
		t.Errorf("findings = %v, want one checksum mismatch", fs)
	}
}

func TestCompareOutputsFloatTolerant(t *testing.T) {
	const p = "/bench/KM/out-iter0/part-r-00000"
	want := map[string]string{p: "aa"}
	got := map[string]string{p: "bb"}

	// Low-bit drift in a float field is tolerated.
	wraw := map[string][]byte{p: kv(t, "c1", "5;1000.0000000001;2.5", "c2", "0.5|a,b")}
	graw := map[string][]byte{p: kv(t, "c2", "0.5|a,b", "c1", "5;1000.0000000002;2.5")}
	if fs := CompareOutputs(want, got, wraw, graw); len(fs) != 0 {
		t.Errorf("low-bit float drift flagged: %v", fs)
	}
	// Real numeric divergence is not.
	graw[p] = kv(t, "c1", "5;1001;2.5", "c2", "0.5|a,b")
	if fs := CompareOutputs(want, got, wraw, graw); len(fs) != 1 {
		t.Errorf("diverged sum not flagged: %v", fs)
	}
	// Non-numeric fields must stay byte-exact even on tolerant paths.
	graw[p] = kv(t, "c1", "5;1000.0000000001;2.5", "c2", "0.5|a,X")
	if fs := CompareOutputs(want, got, wraw, graw); len(fs) != 1 {
		t.Errorf("adjacency corruption not flagged: %v", fs)
	}
	// Different counts, different shape, missing captures: all findings.
	graw[p] = kv(t, "c1", "6;1000.0000000001;2.5", "c2", "0.5|a,b")
	if fs := CompareOutputs(want, got, wraw, graw); len(fs) != 1 {
		t.Errorf("count drift not flagged: %v", fs)
	}
	if fs := CompareOutputs(want, got, wraw, map[string][]byte{}); len(fs) != 1 {
		t.Errorf("missing capture not flagged: %v", fs)
	}
}
