// Fault-schedule generation and serialization. A Schedule is the replayable
// unit: everything needed to rebuild the testbed and re-inject the exact
// fault sequence — workload, testbed shape, seeds, and the plan in the
// canonical internal/faults syntax. Shrunk schedules from failed seeds are
// written as JSON and checked into testdata as regressions.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"iochar/internal/core"
	"iochar/internal/disk"
	"iochar/internal/faults"
)

// Schedule is one serialized chaos experiment.
type Schedule struct {
	Workload string `json:"workload"`
	// ChaosSeed is the seed the generator drew the plan from (0 for
	// hand-written or shrunk-then-edited schedules; replay never needs it).
	ChaosSeed int64 `json:"chaos_seed,omitempty"`
	// Plan is the fault schedule in internal/faults' plan syntax.
	Plan string `json:"plan"`
	// PlanSeed drives the drop-shuffle coin flips during injection.
	PlanSeed int64 `json:"plan_seed"`
	// Testbed shape: the run is only reproducible on the same cluster.
	Scale         int64 `json:"scale"`
	Slaves        int   `json:"slaves"`
	Seed          int64 `json:"seed"` // testbed seed (workload data, placement)
	MapTaskTarget int64 `json:"map_task_target,omitempty"`
	// Racks/UplinkBPS rebuild the network topology: rack-targeted faults
	// (partition rack=, slow-link rack=) only arm on a multi-rack fabric,
	// and placement differs across topologies (omitted = flat).
	Racks     int   `json:"racks,omitempty"`
	UplinkBPS int64 `json:"uplink_bps,omitempty"`
	// Tier is the device class backing the intermediate-data volumes
	// (omitted = hdd). Schedules that target flash devices — e.g. a
	// fail-slow on an mr volume — need it to rebuild the same fleet.
	Tier disk.Class `json:"tier,omitempty"`
	// MasterRecovery forces the journaled NameNode/JobTracker layers on for
	// the replayed run even when the plan carries no master fault (a plan
	// with restart-namenode/restart-jobtracker events implies them anyway).
	// Schedules probing slave faults *under* master recovery need it to
	// rebuild the same testbed.
	MasterRecovery bool `json:"master_recovery,omitempty"`
}

// Marshal renders the schedule as indented JSON, newline-terminated — the
// on-disk format of testdata/chaos regressions and `cmd/chaos -out` files.
func (s Schedule) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseSchedule decodes a schedule and validates its plan syntax.
func ParseSchedule(data []byte) (Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return Schedule{}, fmt.Errorf("chaos: bad schedule: %w", err)
	}
	if _, err := core.ParseWorkload(s.Workload); err != nil {
		return Schedule{}, err
	}
	if _, err := faults.ParsePlan(s.Plan); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// schedule captures a plan plus the harness's testbed shape.
func (h *Harness) schedule(w core.Workload, seed int64, plan faults.Plan) Schedule {
	return Schedule{
		Workload:       w.String(),
		ChaosSeed:      seed,
		Plan:           plan.String(),
		PlanSeed:       plan.Seed,
		Scale:          h.opts.Core.Scale,
		Slaves:         h.opts.Core.Slaves,
		Seed:           h.opts.Core.Seed,
		MapTaskTarget:  h.opts.Core.MapTaskTarget,
		Racks:          h.opts.Core.Racks,
		UplinkBPS:      h.opts.Core.UplinkBPS,
		Tier:           h.opts.Core.IntermediateTier,
		MasterRecovery: h.opts.Core.MasterRecovery.Enabled,
	}
}

// Nodes returns the slave names of an n-slave testbed — the targets fault
// schedules draw from.
func Nodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("slave-%02d", i)
	}
	return out
}

// GeneratePlan draws the seed's randomized fault schedule: 1..maxFaults
// events sampled over the golden run's duration against the given nodes.
// Deterministic: one seed, one schedule.
func GeneratePlan(seed int64, nodes []string, window time.Duration, maxFaults int) faults.Plan {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(maxFaults)
	return faults.RandomPlan(seed, nodes, window, n)
}

// Replay re-runs a serialized schedule under the full oracle set — how a
// shrunk schedule from a past failure becomes a regression test. The golden
// reference is rebuilt from the schedule's testbed shape, so a replay is
// self-contained.
func Replay(ctx context.Context, s Schedule) (*Verdict, error) {
	w, err := core.ParseWorkload(s.Workload)
	if err != nil {
		return nil, err
	}
	plan, err := faults.ParsePlan(s.Plan)
	if err != nil {
		return nil, err
	}
	plan.Seed = s.PlanSeed
	h := New(Options{Core: core.Options{
		Scale:            s.Scale,
		Slaves:           s.Slaves,
		Seed:             s.Seed,
		MapTaskTarget:    s.MapTaskTarget,
		Racks:            s.Racks,
		UplinkBPS:        s.UplinkBPS,
		IntermediateTier: s.Tier,
		MasterRecovery:   core.MasterRecovery{Enabled: s.MasterRecovery},
	}})
	g, err := h.goldenFor(ctx, w)
	if err != nil {
		return nil, err
	}
	findings, expected, rep, err := h.check(ctx, w, plan, g)
	if err != nil {
		return nil, err
	}
	v := &Verdict{Schedule: s, Survived: len(findings) == 0, Findings: findings, ExpectedLoss: expected}
	if rep != nil {
		v.Wall = rep.Wall
		v.Recovery = rep.Recovery
		v.Counters = sumCounters(rep)
	}
	return v, nil
}
