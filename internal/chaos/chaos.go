// Package chaos is the randomized fault-injection harness over the
// characterization testbed: it draws deterministic fault schedules from a
// seed, runs each MapReduce workload under them, and checks correctness
// oracles against a fault-free golden run — output bytes survived, HDFS
// ended fully replicated with no orphaned replicas, the local filesystems
// leaked nothing, every dirty page was flushed, and the simulation kernel
// drained without deadlock. A schedule that breaks an oracle is shrunk
// greedily to a minimal reproducing schedule and serialized as JSON, so a
// regression test (or `cmd/chaos -replay`) can pin the fix.
//
// Everything is deterministic per seed: the same seed yields byte-identical
// schedules, counters, and verdicts, at any parallelism, which is what makes
// a seed number a sufficient bug report.
package chaos

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"iochar/internal/core"
	"iochar/internal/faults"
	"iochar/internal/hdfs"
)

// Options configures the harness.
type Options struct {
	// Core is the fault-free testbed configuration every chaos run perturbs.
	// Faults, Audit, and Inspect must be left unset — the harness owns them.
	Core core.Options
	// Factors is the experiment cell chaos runs execute; the zero value
	// selects the paper's 1_8 / 16 GB / compression-on baseline.
	Factors core.Factors
	// MaxFaults caps the events per generated schedule (default 3).
	MaxFaults int
	// Parallelism bounds concurrent chaos runs (default 1). Verdicts are
	// identical at any value: every run owns its simulation kernel and RNG.
	Parallelism int
	// ShrinkBudget caps the candidate runs one shrink may spend (default 32).
	ShrinkBudget int
}

func (o Options) withDefaults() Options {
	// Mirror core's testbed defaults explicitly: schedules serialize these
	// values, so they must be pinned before any plan is generated.
	if o.Core.Scale <= 0 {
		o.Core.Scale = 1024
	}
	if o.Core.Slaves <= 0 {
		o.Core.Slaves = 10
	}
	if o.Core.Seed == 0 {
		o.Core.Seed = 1
	}
	if o.Factors.Slots.Name == "" {
		o.Factors = core.SlotsRuns[0]
	}
	if o.MaxFaults <= 0 {
		o.MaxFaults = 3
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 32
	}
	return o
}

// Harness runs seeded chaos experiments, lazily building one golden
// (fault-free) reference per workload and reusing it across seeds.
type Harness struct {
	opts Options

	mu      sync.Mutex
	goldens map[core.Workload]*golden
}

// New creates a harness. The zero Options value gives the paper's default
// testbed with at most 3 faults per schedule.
func New(opts Options) *Harness {
	return &Harness{opts: opts.withDefaults(), goldens: map[core.Workload]*golden{}}
}

// Opts returns the harness's normalized options.
func (h *Harness) Opts() Options { return h.opts }

// golden is the fault-free reference a workload's chaos runs are judged
// against: canonical output checksums, the raw bytes of the float-carrying
// outputs (compared numerically, not bit-exactly), and the run's wall time —
// the window fault schedules are sampled over.
type golden struct {
	wall time.Duration
	sums map[string]string
	raw  map[string][]byte
}

// goldenFor returns the workload's golden reference, running it on first
// use. Builds are serialized under the harness lock; concurrent seeds of the
// same workload wait for one build instead of racing duplicates.
func (h *Harness) goldenFor(ctx context.Context, w core.Workload) (*golden, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if g, ok := h.goldens[w]; ok {
		return g, nil
	}
	opts := h.opts.Core
	opts.Audit = true
	opts.Integrity = true
	raw := map[string][]byte{}
	opts.Inspect = captureFloatOutputs(raw)
	rep, err := core.RunOneContext(ctx, w, h.opts.Factors, opts)
	if err != nil {
		return nil, err
	}
	if !rep.Audit.Clean() {
		return nil, &GoldenError{Workload: w.String(), Violations: rep.Audit.Violations()}
	}
	g := &golden{wall: rep.Wall, sums: rep.Audit.OutputSums, raw: raw}
	h.goldens[w] = g
	return g, nil
}

// GoldenError means the fault-free reference run itself violated an
// invariant — the testbed is broken before any fault was injected.
type GoldenError struct {
	Workload   string
	Violations []string
}

func (e *GoldenError) Error() string {
	return "chaos: golden " + e.Workload + " run failed its own audit: " +
		joinMax(e.Violations, 3)
}

// RecoveryCounters is the fault-recovery work a run performed, aggregated
// over its jobs — part of the verdict so two runs of one seed can be
// compared field-for-field.
type RecoveryCounters struct {
	ReExecutedMaps      int64 `json:"re_executed_maps"`
	FetchRetries        int64 `json:"fetch_retries"`
	NetFetchStalls      int64 `json:"net_fetch_stalls"`
	FailedFetches       int64 `json:"failed_fetches"`
	BlacklistedTrackers int64 `json:"blacklisted_trackers"`
	SpeculativeAttempts int64 `json:"speculative_attempts"`
	TrackerRejoins      int64 `json:"tracker_rejoins"`
	DoubleRegistrations int64 `json:"double_registrations"`
}

func sumCounters(rep *core.RunReport) RecoveryCounters {
	var c RecoveryCounters
	for _, j := range rep.Jobs {
		c.ReExecutedMaps += j.ReExecutedMaps
		c.FetchRetries += j.FetchRetries
		c.NetFetchStalls += j.NetFetchStalls
		c.FailedFetches += j.FailedFetches
		c.BlacklistedTrackers += j.BlacklistedTrackers
		c.SpeculativeAttempts += j.SpeculativeAttempts
		c.TrackerRejoins += j.TrackerRejoins
		c.DoubleRegistrations += j.DoubleRegistrations
	}
	return c
}

// Verdict is the outcome of one seeded chaos run.
type Verdict struct {
	Schedule Schedule `json:"schedule"`
	// Survived means every oracle passed: the job finished, its output
	// matched the golden run, and every invariant audit came back clean
	// (after expected-loss classification).
	Survived bool     `json:"survived"`
	Findings []string `json:"findings,omitempty"`
	// ExpectedLoss lists findings reclassified as physics rather than bugs:
	// data loss confined to replication-factor-1 files (TeraSort output)
	// whose only replica a fault destroyed post-commit. Nothing the system
	// promised was violated, so these do not fail the run.
	ExpectedLoss []string `json:"expected_loss,omitempty"`
	// Wall, Recovery, and Counters describe the faulted run (zero when the
	// run failed outright and produced no report).
	Wall     time.Duration      `json:"wall_ns"`
	Recovery hdfs.RecoveryStats `json:"recovery"`
	Counters RecoveryCounters   `json:"counters"`
	// Shrunk is the minimal reproducing schedule of a failed run.
	Shrunk *Schedule `json:"shrunk,omitempty"`
}

// RunSeed generates the seed's fault schedule for the workload, runs it, and
// judges it against the golden reference, shrinking on failure. The error
// return is infrastructural (cancellation, a golden run that cannot be
// built); oracle failures land in the verdict, not the error.
func (h *Harness) RunSeed(ctx context.Context, w core.Workload, seed int64) (*Verdict, error) {
	g, err := h.goldenFor(ctx, w)
	if err != nil {
		return nil, err
	}
	plan := GeneratePlan(seed, Nodes(h.opts.Core.Slaves), g.wall, h.opts.MaxFaults)
	v := &Verdict{Schedule: h.schedule(w, seed, plan)}
	findings, expected, rep, err := h.check(ctx, w, plan, g)
	if err != nil {
		return nil, err
	}
	v.Findings = findings
	v.ExpectedLoss = expected
	v.Survived = len(findings) == 0
	if rep != nil {
		v.Wall = rep.Wall
		v.Recovery = rep.Recovery
		v.Counters = sumCounters(rep)
	}
	if !v.Survived {
		s := h.schedule(w, seed, h.shrink(ctx, w, plan, g))
		v.Shrunk = &s
	}
	return v, nil
}

// check executes one faulted run and returns its oracle findings plus the
// findings reclassified as expected loss. A run error (failed job,
// simulation deadlock) is itself a finding — every schedule the generator
// produces leaves enough of the cluster alive that recovery is supposed to
// succeed.
func (h *Harness) check(ctx context.Context, w core.Workload, plan faults.Plan, g *golden) (findings, expected []string, rep *core.RunReport, err error) {
	opts := h.opts.Core
	opts.Faults = plan
	opts.Audit = true
	opts.Integrity = true
	if planCorrupts(plan) {
		// Silent corruption in data the workload never re-reads is only
		// found by the scrubber; run it unthrottled so one pass fits the
		// post-run barrier regardless of data volume.
		opts.ScrubRate = -1
	}
	raw := map[string][]byte{}
	opts.Inspect = captureFloatOutputs(raw)
	rep, err = core.RunOneContext(ctx, w, h.opts.Factors, opts)
	if err != nil {
		if ctx.Err() != nil {
			return nil, nil, nil, ctx.Err()
		}
		return []string{"run failed: " + err.Error()}, nil, nil, nil
	}
	findings = rep.Audit.Violations()
	findings = append(findings, CompareOutputs(g.sums, rep.Audit.OutputSums, g.raw, raw)...)
	if c := sumCounters(rep); c.DoubleRegistrations != 0 {
		findings = append(findings, fmt.Sprintf("mapred: %d tracker rejoin(s) over-filled a node's slots", c.DoubleRegistrations))
	}
	findings, expected = classifyExpectedLoss(findings, rep.Audit)
	return findings, expected, rep, nil
}

// planCorrupts reports whether the plan injects silent block corruption.
func planCorrupts(plan faults.Plan) bool {
	for _, ev := range plan.Events {
		if ev.Kind == faults.CorruptBlock {
			return true
		}
	}
	return false
}

// classifyExpectedLoss splits out findings that are physics rather than
// bugs: when every replica of a replication-factor-1 file is destroyed
// post-commit, HDFS never promised survival, so the data-loss record, the
// lost-block audit entries, and the missing-output comparison for that path
// are expected. Loss touching any replicated file stays a real finding.
func classifyExpectedLoss(findings []string, audit *core.AuditReport) (remaining, expected []string) {
	lossPaths := map[string]bool{}
	for _, d := range audit.DataLoss {
		if d.Want == 1 {
			lossPaths[d.Path] = true
		}
	}
	if len(lossPaths) == 0 {
		return findings, nil
	}
	isExpected := func(f string) bool {
		for p := range lossPaths {
			if f == "missing output "+p ||
				strings.HasPrefix(f, "data loss: "+p+":") ||
				strings.HasPrefix(f, "hdfs: lost "+p+" blk_") {
				return true
			}
		}
		return false
	}
	for _, f := range findings {
		if isExpected(f) {
			expected = append(expected, f)
		} else {
			remaining = append(remaining, f)
		}
	}
	return remaining, expected
}

// RunSeeds runs seeds [seed, seed+runs) for one workload across the
// harness's worker pool and returns the verdicts in seed order.
func (h *Harness) RunSeeds(ctx context.Context, w core.Workload, seed int64, runs int) ([]*Verdict, error) {
	verdicts := make([]*Verdict, runs)
	errs := make([]error, runs)
	sem := make(chan struct{}, h.opts.Parallelism)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			verdicts[i], errs[i] = h.RunSeed(ctx, w, seed+int64(i))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return verdicts, nil
}

// Soak runs consecutive seeds (in batches of Parallelism) until the deadline
// passes or ctx is cancelled, calling onVerdict for each completed seed in
// order. It returns the number of seeds completed. A batch in flight when
// the deadline hits is finished, not abandoned.
func (h *Harness) Soak(ctx context.Context, w core.Workload, seed int64, deadline time.Time, onVerdict func(*Verdict)) (int, error) {
	runs := 0
	for time.Now().Before(deadline) && ctx.Err() == nil {
		batch, err := h.RunSeeds(ctx, w, seed+int64(runs), h.opts.Parallelism)
		if err != nil {
			return runs, err
		}
		for _, v := range batch {
			runs++
			if onVerdict != nil {
				onVerdict(v)
			}
		}
	}
	return runs, ctx.Err()
}

func joinMax(ss []string, n int) string {
	out := ""
	for i, s := range ss {
		if i == n {
			return out + ", ..."
		}
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}
