// Schedule shrinking: once a seed's schedule breaks an oracle, the harness
// reduces it to a minimal reproducing schedule before serializing it — the
// difference between "seed 7194 fails" and a two-line fault plan a human can
// reason about. Shrinking is greedy delta-debugging: drop whole events to a
// fixpoint, then narrow the survivors (shorter drop-shuffle windows, lower
// probabilities and slowdown factors). Every candidate re-runs the full
// oracle set and is accepted only if it still fails, so the result is
// 1-minimal with respect to these reductions within the run budget.
package chaos

import (
	"context"

	"iochar/internal/core"
	"iochar/internal/faults"
)

func (h *Harness) shrink(ctx context.Context, w core.Workload, plan faults.Plan, g *golden) faults.Plan {
	budget := h.opts.ShrinkBudget
	fails := func(pl faults.Plan) bool {
		if budget <= 0 || ctx.Err() != nil {
			return false
		}
		budget--
		findings, _, _, err := h.check(ctx, w, pl, g)
		return err == nil && len(findings) > 0
	}

	// Phase 1: drop events until no single event can be removed.
	for i := 0; len(plan.Events) > 1 && i < len(plan.Events); i++ {
		if cand := without(plan, i); fails(cand) {
			plan = cand
			i = -1 // rescan the smaller plan from the start
		}
	}

	// Phase 2: narrow the surviving events' magnitudes.
	for changed := true; changed; {
		changed = false
		for i := range plan.Events {
			for _, cand := range narrowed(plan, i) {
				if fails(cand) {
					plan = cand
					changed = true
					break
				}
			}
		}
	}
	return plan
}

// without returns the plan minus event i.
func without(pl faults.Plan, i int) faults.Plan {
	ev := append([]faults.Event{}, pl.Events[:i]...)
	ev = append(ev, pl.Events[i+1:]...)
	return faults.Plan{Events: ev, Seed: pl.Seed}
}

// narrowed proposes gentler variants of event i, strongest reduction first.
// Only tunable events have variants; a kill is already minimal.
func narrowed(pl faults.Plan, i int) []faults.Plan {
	ev := pl.Events[i]
	var cands []faults.Plan
	propose := func(e faults.Event) {
		evs := append([]faults.Event{}, pl.Events...)
		evs[i] = e
		cands = append(cands, faults.Plan{Events: evs, Seed: pl.Seed})
	}
	switch ev.Kind {
	case faults.DropShuffle:
		if w := (ev.Until - ev.At) / 2; w > 0 {
			e := ev
			e.Until = ev.At + w
			propose(e)
		}
		if p := ev.Prob / 2; p >= 0.05 {
			e := ev
			e.Prob = p
			propose(e)
		}
	case faults.SlowDisk:
		if f := ev.Factor / 2; f > 1 {
			e := ev
			e.Factor = f
			propose(e)
		}
	case faults.RestartDataNode, faults.RestartNode:
		if d := ev.Down / 2; d > 0 {
			e := ev
			e.Down = d
			propose(e)
		}
	case faults.Partition:
		if len(ev.Nodes) > 1 {
			e := ev
			e.Nodes = append([]string{}, ev.Nodes[:len(ev.Nodes)/2]...)
			propose(e)
		}
		if d := ev.Down / 2; d > 0 {
			e := ev
			e.Down = d
			propose(e)
		}
	case faults.SlowLink:
		if f := ev.Factor / 2; f > 1 {
			e := ev
			e.Factor = f
			propose(e)
		}
	case faults.DropLink:
		if w := (ev.Until - ev.At) / 2; w > 0 {
			e := ev
			e.Until = ev.At + w
			propose(e)
		}
		if p := ev.Prob / 2; p >= 0.05 {
			e := ev
			e.Prob = p
			propose(e)
		}
	}
	return cands
}
