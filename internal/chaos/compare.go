// Output-equality oracles. Most outputs must match the golden run
// bit-exactly (as canonical checksums); the exceptions are outputs carrying
// full-precision float accumulations, where fault recovery can legitimately
// reorder reduce-side value arrival and perturb the low bits of a sum.
// Those are compared numerically, field by field, under a tight relative
// tolerance — close enough to catch corruption, loose enough to admit
// float-addition reassociation.
package chaos

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"iochar/internal/cluster"
	"iochar/internal/hdfs"
	"iochar/internal/mapred"
	"iochar/internal/sim"
)

// Relative and absolute tolerance for float-carrying outputs: wide enough
// for sum reassociation across a handful of partials, orders of magnitude
// below any real divergence.
const (
	relTol = 1e-9
	absTol = 1e-12
)

// FloatTolerant reports whether an output file's values carry
// full-precision float accumulations (K-means iteration partial sums,
// PageRank iteration states) and must be compared numerically. Final
// outputs — TeraSort, aggregation totals, the K-means clustering — compare
// bit-exactly.
func FloatTolerant(path string) bool {
	return strings.Contains(path, "/out-iter") || strings.Contains(path, "/out-state")
}

// captureFloatOutputs returns an Inspect hook that reads back the raw bytes
// of every float-tolerant output file while the cluster still exists. Read
// failures are left to the audit's Unreadable oracle rather than reported
// twice.
func captureFloatOutputs(dst map[string][]byte) func(p *sim.Proc, fs *hdfs.FS, cl *cluster.Cluster) {
	return func(p *sim.Proc, fs *hdfs.FS, cl *cluster.Cluster) {
		for _, path := range fs.List("/bench/") {
			if !FloatTolerant(path) {
				continue
			}
			r, err := fs.Open(path, cl.Master.Name)
			if err != nil {
				continue
			}
			data, err := r.ReadAt(p, 0, r.Size())
			if err != nil {
				continue
			}
			dst[path] = data
		}
	}
}

// CompareOutputs judges a faulted run's outputs against the golden run's:
// wantSums/gotSums are the audits' canonical checksums, wantRaw/gotRaw the
// captured bytes of float-tolerant files. Findings are returned in path
// order, deterministically.
func CompareOutputs(wantSums, gotSums map[string]string, wantRaw, gotRaw map[string][]byte) []string {
	paths := map[string]bool{}
	for p := range wantSums {
		paths[p] = true
	}
	for p := range gotSums {
		paths[p] = true
	}
	ordered := make([]string, 0, len(paths))
	for p := range paths {
		ordered = append(ordered, p)
	}
	sort.Strings(ordered)

	var findings []string
	for _, p := range ordered {
		want, okW := wantSums[p]
		got, okG := gotSums[p]
		switch {
		case !okW:
			findings = append(findings, "unexpected output "+p)
		case !okG:
			findings = append(findings, "missing output "+p)
		case want == got:
			// Bit-exact (modulo pair order); nothing to judge.
		case !FloatTolerant(p):
			findings = append(findings, fmt.Sprintf("output %s checksum mismatch (%.8s != %.8s)", p, got, want))
		case wantRaw[p] == nil || gotRaw[p] == nil:
			findings = append(findings, fmt.Sprintf("output %s diverged and its bytes were not captured", p))
		default:
			if err := tolerantEqual(wantRaw[p], gotRaw[p]); err != nil {
				findings = append(findings, fmt.Sprintf("output %s diverged beyond float tolerance: %v", p, err))
			}
		}
	}
	return findings
}

type kvPair struct{ k, v []byte }

func parsePairs(data []byte) []kvPair {
	var pairs []kvPair
	for len(data) > 0 {
		k, v, rest := mapred.NextKV(data)
		if len(rest) >= len(data) {
			break
		}
		pairs = append(pairs, kvPair{k, v})
		data = rest
	}
	return pairs
}

// tolerantEqual compares two KV streams as key-sorted pair lists, with
// values matched field-by-field: fields that parse as floats compare under
// relTol/absTol, everything else must be byte-identical.
func tolerantEqual(want, got []byte) error {
	wp, gp := parsePairs(want), parsePairs(got)
	if len(wp) != len(gp) {
		return fmt.Errorf("%d pairs, want %d", len(gp), len(wp))
	}
	byKey := func(p []kvPair) func(i, j int) bool {
		return func(i, j int) bool { return bytes.Compare(p[i].k, p[j].k) < 0 }
	}
	sort.SliceStable(wp, byKey(wp))
	sort.SliceStable(gp, byKey(gp))
	for i := range wp {
		if !bytes.Equal(wp[i].k, gp[i].k) {
			return fmt.Errorf("key %q, want %q", gp[i].k, wp[i].k)
		}
		if err := valueEqual(wp[i].v, gp[i].v); err != nil {
			return fmt.Errorf("key %q: %v", wp[i].k, err)
		}
	}
	return nil
}

// splitFields cuts a value on the delimiters the workloads' value encodings
// use (K-means "count;f1;f2;...", PageRank "rank|adjacency").
func splitFields(v []byte) [][]byte {
	return bytes.FieldsFunc(v, func(r rune) bool { return r == ';' || r == '|' })
}

func valueEqual(want, got []byte) error {
	if bytes.Equal(want, got) {
		return nil
	}
	wf, gf := splitFields(want), splitFields(got)
	if len(wf) != len(gf) {
		return fmt.Errorf("value %q has %d fields, want %d (%q)", got, len(gf), len(wf), want)
	}
	for i := range wf {
		if bytes.Equal(wf[i], gf[i]) {
			continue
		}
		w, errW := strconv.ParseFloat(string(wf[i]), 64)
		g, errG := strconv.ParseFloat(string(gf[i]), 64)
		if errW != nil || errG != nil {
			return fmt.Errorf("field %q != %q", gf[i], wf[i])
		}
		diff := w - g
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if aw := abs(w); aw > scale {
			scale = aw
		}
		if diff > absTol && diff > relTol*scale {
			return fmt.Errorf("field %g off by %g from %g", g, diff, w)
		}
	}
	return nil
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
