package sim

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := New(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.Go("p", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		at = p.Now()
	})
	end, _ := e.Run(0)
	if at != 5*time.Millisecond {
		t.Errorf("process observed %v, want 5ms", at)
	}
	if end != 5*time.Millisecond {
		t.Errorf("Run returned %v, want 5ms", end)
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := New(1)
	e.Go("p", func(p *Proc) { p.Sleep(-time.Second) })
	if end, _ := e.Run(0); end != 0 {
		t.Errorf("end = %v, want 0", end)
	}
}

func TestFIFOAtSameTimestamp(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(time.Millisecond)
			order = append(order, i)
		})
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, v, i, order)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := New(1)
	var childRan bool
	var childAt time.Duration
	e.Go("parent", func(p *Proc) {
		p.Sleep(time.Second)
		h := e.Go("child", func(c *Proc) {
			c.Sleep(time.Second)
			childRan = true
			childAt = c.Now()
		})
		h.Wait(p)
		if !childRan {
			t.Error("Wait returned before child finished")
		}
	})
	e.Run(0)
	if childAt != 2*time.Second {
		t.Errorf("child finished at %v, want 2s", childAt)
	}
}

func TestWaitOnFinishedHandleReturnsImmediately(t *testing.T) {
	e := New(1)
	h := e.Go("fast", func(p *Proc) {})
	e.Go("waiter", func(p *Proc) {
		p.Sleep(time.Minute)
		before := p.Now()
		h.Wait(p)
		if p.Now() != before {
			t.Error("Wait on done handle advanced time")
		}
	})
	e.Run(0)
	if !h.Done() {
		t.Error("handle not done after Run")
	}
}

func TestMultipleWaitersOnHandle(t *testing.T) {
	e := New(1)
	h := e.Go("worker", func(p *Proc) { p.Sleep(3 * time.Second) })
	got := make([]time.Duration, 2)
	for i := range got {
		i := i
		e.Go("waiter", func(p *Proc) {
			h.Wait(p)
			got[i] = p.Now()
		})
	}
	e.Run(0)
	for i, g := range got {
		if g != 3*time.Second {
			t.Errorf("waiter %d resumed at %v, want 3s", i, g)
		}
	}
}

func TestAfterCallback(t *testing.T) {
	e := New(1)
	var fired time.Duration = -1
	e.After(7*time.Second, func() { fired = e.Now() })
	e.Run(0)
	if fired != 7*time.Second {
		t.Errorf("callback at %v, want 7s", fired)
	}
}

func TestRunLimitStopsEarly(t *testing.T) {
	e := New(1)
	var lastSeen time.Duration
	e.Go("p", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Second)
			lastSeen = p.Now()
		}
	})
	end, _ := e.Run(10 * time.Second)
	if end != 10*time.Second {
		t.Errorf("Run returned %v, want 10s", end)
	}
	if lastSeen != 10*time.Second {
		t.Errorf("last progress %v, want 10s", lastSeen)
	}
	// Resuming must finish the remaining work.
	end, _ = e.Run(0)
	if end != 100*time.Second {
		t.Errorf("resumed Run returned %v, want 100s", end)
	}
}

func TestDeadlockReturnsError(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	e.Go("stuck", func(p *Proc) { c.Wait(p) })
	e.Go("also-stuck", func(p *Proc) { c.Wait(p) })
	_, err := e.Run(0)
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error is %T, want *DeadlockError", err)
	}
	want := "sim: deadlock: 2 process(es) blocked with no pending events at t=0s [also-stuck, stuck]"
	if err.Error() != want {
		t.Errorf("error text = %q, want %q", err.Error(), want)
	}
	if len(dl.Blocked) != 2 || dl.Blocked[0] != "also-stuck" || dl.Blocked[1] != "stuck" {
		t.Errorf("Blocked = %v, want [also-stuck stuck]", dl.Blocked)
	}
}

func TestResourceSerializesAtCapacity(t *testing.T) {
	e := New(1)
	r := NewResource(e, "disk", 1)
	var finish []time.Duration
	for i := 0; i < 3; i++ {
		e.Go("u", func(p *Proc) {
			r.Use(p, 1, time.Second)
			finish = append(finish, p.Now())
		})
	}
	e.Run(0)
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if finish[i] != want[i] {
			t.Errorf("finish[%d] = %v, want %v", i, finish[i], want[i])
		}
	}
}

func TestResourceParallelismWithinCapacity(t *testing.T) {
	e := New(1)
	r := NewResource(e, "cores", 4)
	var finish []time.Duration
	for i := 0; i < 4; i++ {
		e.Go("u", func(p *Proc) {
			r.Use(p, 1, time.Second)
			finish = append(finish, p.Now())
		})
	}
	e.Run(0)
	for i, f := range finish {
		if f != time.Second {
			t.Errorf("finish[%d] = %v, want 1s (no queueing expected)", i, f)
		}
	}
}

func TestResourceFIFONoStarvation(t *testing.T) {
	e := New(1)
	r := NewResource(e, "mem", 4)
	var order []string
	e.Go("big-then-small", func(p *Proc) {
		r.Acquire(p, 4)
		p.Sleep(time.Second)
		r.Release(4)
		order = append(order, "first")
	})
	e.Go("big", func(p *Proc) {
		r.Acquire(p, 4) // queues behind first
		order = append(order, "big")
		p.Sleep(time.Second)
		r.Release(4)
	})
	e.Go("small", func(p *Proc) {
		r.Acquire(p, 1) // must NOT jump ahead of big
		order = append(order, "small")
		r.Release(1)
	})
	e.Run(0)
	if len(order) != 3 || order[1] != "big" {
		t.Errorf("order = %v, want big admitted before small", order)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := New(1)
	r := NewResource(e, "x", 2)
	e.Go("u", func(p *Proc) {
		r.Use(p, 1, time.Second)
		p.Sleep(time.Second)
	})
	e.Run(0)
	// 1 of 2 units held for 1s out of a 2s run = 0.25.
	if u := r.Utilization(); u < 0.24 || u > 0.26 {
		t.Errorf("utilization = %f, want 0.25", u)
	}
}

func TestResourceAvgWait(t *testing.T) {
	e := New(1)
	r := NewResource(e, "x", 1)
	for i := 0; i < 2; i++ {
		e.Go("u", func(p *Proc) { r.Use(p, 1, time.Second) })
	}
	e.Run(0)
	// First waits 0, second waits 1s: average 500ms.
	if w := r.AvgWait(); w != 500*time.Millisecond {
		t.Errorf("avg wait = %v, want 500ms", w)
	}
}

func TestAcquireBeyondCapacityPanics(t *testing.T) {
	e := New(1)
	r := NewResource(e, "x", 1)
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		r.Acquire(p, 2)
	})
	e.Run(0)
}

func TestChanFIFODelivery(t *testing.T) {
	e := New(1)
	c := NewChan(e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := c.Get(p)
			if !ok {
				return
			}
			got = append(got, v.(int))
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Millisecond)
			c.Put(i)
		}
		c.Close()
	})
	e.Run(0)
	if len(got) != 5 {
		t.Fatalf("got %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Errorf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestChanGetBlocksUntilPut(t *testing.T) {
	e := New(1)
	c := NewChan(e)
	var at time.Duration
	e.Go("consumer", func(p *Proc) {
		c.Get(p)
		at = p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(9 * time.Second)
		c.Put("x")
	})
	e.Run(0)
	if at != 9*time.Second {
		t.Errorf("consumer resumed at %v, want 9s", at)
	}
}

func TestChanCloseWakesAllGetters(t *testing.T) {
	e := New(1)
	c := NewChan(e)
	oks := []bool{true, true}
	for i := range oks {
		i := i
		e.Go("g", func(p *Proc) { _, oks[i] = c.Get(p) })
	}
	e.Go("closer", func(p *Proc) {
		p.Sleep(time.Second)
		c.Close()
	})
	e.Run(0)
	for i, ok := range oks {
		if ok {
			t.Errorf("getter %d saw ok=true after close of empty chan", i)
		}
	}
}

func TestChanBurstPutWakesAllServableGetters(t *testing.T) {
	e := New(1)
	c := NewChan(e)
	done := 0
	for i := 0; i < 3; i++ {
		e.Go("g", func(p *Proc) {
			if _, ok := c.Get(p); ok {
				done++
			}
		})
	}
	e.Go("p", func(p *Proc) {
		p.Sleep(time.Second)
		for i := 0; i < 3; i++ {
			c.Put(i)
		}
	})
	e.Run(0)
	if done != 3 {
		t.Errorf("served %d getters, want 3", done)
	}
}

func TestCondBroadcast(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	woke := 0
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *Proc) {
			c.Wait(p)
			woke++
		})
	}
	e.Go("b", func(p *Proc) {
		p.Sleep(time.Second)
		c.Broadcast()
	})
	e.Run(0)
	if woke != 4 {
		t.Errorf("woke = %d, want 4", woke)
	}
}

func TestLiveCount(t *testing.T) {
	e := New(1)
	e.Go("p", func(p *Proc) { p.Sleep(time.Second) })
	if e.Live() != 1 {
		t.Fatalf("Live = %d before Run, want 1", e.Live())
	}
	e.Run(0)
	if e.Live() != 0 {
		t.Fatalf("Live = %d after Run, want 0", e.Live())
	}
}

// Property: for any list of sleep durations, total elapsed time in a serial
// process equals the sum, and a parallel set of processes ends at the max.
func TestQuickSleepArithmetic(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 50 {
			raw = raw[:50]
		}
		var sum, max time.Duration
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			sum += d
			if d > max {
				max = d
			}
		}
		// Serial.
		e := New(1)
		e.Go("serial", func(p *Proc) {
			for _, r := range raw {
				p.Sleep(time.Duration(r) * time.Microsecond)
			}
		})
		if got, _ := e.Run(0); got != sum {
			t.Logf("serial: got %v want %v", got, sum)
			return false
		}
		// Parallel.
		e2 := New(1)
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			e2.Go("par", func(p *Proc) { p.Sleep(d) })
		}
		if got, _ := e2.Run(0); got != max {
			t.Logf("parallel: got %v want %v", got, max)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a capacity-1 resource used by N processes for d each finishes at
// exactly N*d — perfect serialization with no lost or duplicated time.
func TestQuickResourceSerialization(t *testing.T) {
	f := func(n uint8, durUS uint16) bool {
		procs := int(n%8) + 1
		d := time.Duration(durUS%1000+1) * time.Microsecond
		e := New(1)
		r := NewResource(e, "x", 1)
		for i := 0; i < procs; i++ {
			e.Go("u", func(p *Proc) { r.Use(p, 1, d) })
		}
		got, _ := e.Run(0)
		return got == time.Duration(procs)*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() []time.Duration {
		e := New(42)
		r := NewResource(e, "x", 2)
		var finishes []time.Duration
		for i := 0; i < 6; i++ {
			e.Go("u", func(p *Proc) {
				jitter := time.Duration(e.Rand().Intn(1000)) * time.Microsecond
				p.Sleep(jitter)
				r.Use(p, 1, time.Millisecond)
				finishes = append(finishes, p.Now())
			})
		}
		e.Run(0)
		return finishes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEventWakesAllWaiters(t *testing.T) {
	e := New(1)
	ev := NewEvent(e)
	woke := 0
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			ev.Wait(p)
			woke++
			if p.Now() != 2*time.Second {
				t.Errorf("woke at %v, want 2s", p.Now())
			}
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Sleep(2 * time.Second)
		ev.Fire()
	})
	e.Run(0)
	if woke != 3 {
		t.Errorf("woke = %d, want 3", woke)
	}
}

func TestEventWaitAfterFireReturnsImmediately(t *testing.T) {
	e := New(1)
	ev := NewEvent(e)
	e.Go("p", func(p *Proc) {
		ev.Fire()
		before := p.Now()
		ev.Wait(p)
		if p.Now() != before {
			t.Error("Wait on fired event advanced time")
		}
		if !ev.Fired() {
			t.Error("Fired() should be true")
		}
	})
	e.Run(0)
}

func TestEventDoubleFirePanics(t *testing.T) {
	e := New(1)
	ev := NewEvent(e)
	e.Go("p", func(p *Proc) {
		ev.Fire()
		defer func() {
			if recover() == nil {
				t.Error("want panic on double fire")
			}
		}()
		ev.Fire()
	})
	e.Run(0)
}

func TestGoexitInProcessDoesNotHangKernel(t *testing.T) {
	e := New(1)
	e.Go("dies", func(p *Proc) {
		p.Sleep(time.Second)
		runtime.Goexit() // simulates t.Fatal inside a process
	})
	e.Go("other", func(p *Proc) { p.Sleep(2 * time.Second) })
	end, _ := e.Run(0)
	if end != 2*time.Second {
		t.Errorf("end = %v, want 2s", end)
	}
}

func TestKillBlockedOnCondDiesImmediately(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	var reached bool
	h := e.Go("victim", func(p *Proc) {
		c.Wait(p)
		reached = true
	})
	e.Go("killer", func(p *Proc) {
		p.Sleep(time.Second)
		h.Kill()
	})
	end, _ := e.Run(0)
	if reached {
		t.Error("victim ran past its wait after Kill")
	}
	if !h.Done() {
		t.Error("killed process not marked done")
	}
	if end != time.Second {
		t.Errorf("end = %v, want 1s", end)
	}
	// The cond's waiter list must not retain the corpse.
	c.Broadcast() // would wake a dead proc and hang Run if it did
	e.Run(0)
}

func TestKillSleepingProcessDiesAtWakeup(t *testing.T) {
	e := New(1)
	var reached bool
	h := e.Go("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Second)
		reached = true
	})
	e.Go("killer", func(p *Proc) {
		p.Sleep(time.Second)
		h.Kill()
	})
	e.Run(0)
	if reached {
		t.Error("sleeper ran past its sleep after Kill")
	}
	if !h.Done() {
		t.Error("killed sleeper not done")
	}
}

func TestKillRunsDefersAndWakesWaiters(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	var cleaned, waited bool
	h := e.Go("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		c.Wait(p)
	})
	e.Go("waiter", func(p *Proc) {
		h.Wait(p)
		waited = true
	})
	e.Go("killer", func(p *Proc) {
		p.Sleep(time.Second)
		h.Kill()
	})
	e.Run(0)
	if !cleaned {
		t.Error("defer did not run on kill")
	}
	if !waited {
		t.Error("Handle.Wait not released by kill")
	}
}

func TestKillBeforeFirstRunSkipsBody(t *testing.T) {
	e := New(1)
	var ran bool
	h := e.Go("never", func(p *Proc) { ran = true })
	h.Kill()
	e.Run(0)
	if ran {
		t.Error("killed-before-start process ran")
	}
	if !h.Done() {
		t.Error("killed-before-start process not done")
	}
}

func TestKillUnregistersResourceWaiter(t *testing.T) {
	e := New(1)
	r := NewResource(e, "r", 1)
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(5 * time.Second)
		r.Release(1)
	})
	h := e.Go("queued", func(p *Proc) {
		p.Sleep(time.Millisecond) // queue behind the holder
		r.Acquire(p, 1)
		t.Error("killed waiter acquired the resource")
	})
	e.Go("third", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		r.Acquire(p, 1) // queued behind "queued"
		r.Release(1)
	})
	e.Go("killer", func(p *Proc) {
		p.Sleep(time.Second)
		h.Kill()
	})
	e.Run(0)
	if r.InUse() != 0 {
		t.Errorf("resource leaked: inUse=%d", r.InUse())
	}
}

func TestKillFinishedProcessIsNoop(t *testing.T) {
	e := New(1)
	h := e.Go("quick", func(p *Proc) {})
	e.Run(0)
	h.Kill() // must not panic or corrupt state
	e.Go("after", func(p *Proc) { p.Sleep(time.Second) })
	if end, _ := e.Run(0); end != time.Second {
		t.Errorf("end = %v, want 1s", end)
	}
}

func TestAfterFuncStop(t *testing.T) {
	e := New(1)
	var fired bool
	tm := e.AfterFunc(2*time.Second, func() { fired = true })
	e.After(time.Second, func() {
		if !tm.Stop() {
			t.Error("Stop before expiry should report true")
		}
	})
	e.Run(0)
	if fired {
		t.Error("stopped timer fired")
	}
	if tm.Fired() {
		t.Error("Fired() true on stopped timer")
	}
}

func TestAfterFuncFires(t *testing.T) {
	e := New(1)
	var at time.Duration
	tm := e.AfterFunc(3*time.Second, func() { at = e.Now() })
	e.Run(0)
	if at != 3*time.Second {
		t.Errorf("fired at %v, want 3s", at)
	}
	if !tm.Fired() || tm.Stop() {
		t.Error("post-fire state wrong")
	}
}

func TestRunContextCompletesUncancelled(t *testing.T) {
	e := New(1)
	e.Go("worker", func(p *Proc) { p.Sleep(5 * time.Second) })
	end, err := e.RunContext(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 5*time.Second {
		t.Errorf("end = %v, want 5s", end)
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	e := New(1)
	e.Go("worker", func(p *Proc) { p.Sleep(time.Second) })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx, 0); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if e.Now() != 0 {
		t.Errorf("clock advanced to %v after pre-cancelled run", e.Now())
	}
}

func TestRunContextCancelsMidSimulation(t *testing.T) {
	e := New(1)
	// A long-lived ticker: without cancellation this simulates 1000 virtual
	// seconds across a million events.
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < 1_000_000; i++ {
			p.Sleep(time.Millisecond)
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from inside the simulation at a known virtual time; the loop
	// must notice within one poll stride.
	e.After(10*time.Second, cancel)
	end, err := e.RunContext(ctx, 0)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if end < 10*time.Second || end > 10*time.Second+2*cancelStride*time.Millisecond {
		t.Errorf("stopped at %v, want shortly after 10s", end)
	}
}

func TestRunAfterRunContextLimitResumes(t *testing.T) {
	// RunContext with a limit behaves like Run: it pauses, and a later call
	// resumes from the pause point.
	e := New(1)
	var done bool
	e.Go("worker", func(p *Proc) { p.Sleep(4 * time.Second); done = true })
	at, err := e.RunContext(context.Background(), 2*time.Second)
	if err != nil || at != 2*time.Second || done {
		t.Fatalf("pause: at=%v err=%v done=%v", at, err, done)
	}
	e.Run(0)
	if !done {
		t.Error("worker never finished after resume")
	}
}
