// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock and runs simulated activities
// ("processes") as goroutines that are strictly serialized: at any moment at
// most one process executes, and control is handed between the kernel and a
// process through unbuffered channels. Events with equal timestamps fire in
// the order they were scheduled, so a simulation is fully deterministic for
// a given program and seed.
//
// A process is any function with signature func(*Proc). Within a process,
// virtual time passes only through blocking operations: Sleep, Resource
// acquisition, Chan operations, or Handle.Wait. Plain computation between
// blocking calls is instantaneous in virtual time (charge it explicitly with
// Sleep if it should cost simulated CPU time).
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Env is a discrete-event simulation environment. Create one with New, spawn
// processes with Go, then call Run to execute until no events remain.
type Env struct {
	now        time.Duration
	seq        uint64
	events     eventHeap
	yield      chan struct{}
	running    bool
	blocked    int                // processes waiting on a wakeup that is NOT in the event heap
	parked     map[*Proc]struct{} // the non-daemon processes counted by blocked
	live       int                // spawned processes that have not finished
	dispatched uint64             // events popped and fired since New
	rng        *rand.Rand
}

// New returns an empty environment whose clock starts at zero. The seed
// drives Env.Rand, the only source of randomness the kernel offers; two runs
// with the same seed and the same process program are identical.
func New(seed int64) *Env {
	return &Env{
		yield:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Rand returns the environment's deterministic random source. It must only
// be used from process context (never concurrently), which the kernel's
// serialization guarantees.
func (e *Env) Rand() *rand.Rand { return e.rng }

// event is a scheduled occurrence: either a process wakeup or a callback.
type event struct {
	at  time.Duration
	seq uint64
	p   *Proc  // non-nil: resume this process
	fn  func() // non-nil: run inline in the kernel (must not block)
}

// eventHeap is a binary min-heap ordered by (at, seq). It is hand-rolled
// rather than built on container/heap: the standard interface boxes every
// pushed and popped element into an interface value, which costs two heap
// allocations per scheduled event — the simulator's single hottest
// allocation site. Operating on the slice directly keeps the kernel's
// scheduling path allocation-free apart from amortized slice growth.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends ev and restores the heap invariant (sift-up).
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum event (sift-down).
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop references held by the vacated slot
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && s.less(r, l) {
			min = r
		}
		if !s.less(min, i) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

func (e *Env) schedule(ev event)                { ev.seq = e.seq; e.seq++; e.events.push(ev) }
func (e *Env) at(d time.Duration) time.Duration { return e.now + d }

// Proc is the handle a running process uses to interact with virtual time.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	handle *Handle
	daemon bool

	killed bool       // Kill was requested; unwind at the next resume point
	dead   bool       // the process goroutine has finished
	wl     waiterList // wait list the process is currently parked on, if any
}

// waiterList is implemented by every blocking primitive that parks processes
// (Resource, Chan, Cond, Event, Handle), so Kill can unregister a parked
// process without the primitive later waking a corpse.
type waiterList interface {
	removeWaiter(p *Proc) bool
}

// procKilled is the panic value that unwinds a killed process goroutine. The
// spawn wrapper recovers it and turns it into a normal process exit, so the
// process's own defers run — the supported way to release held resources.
type procKilled struct{ p *Proc }

// SetDaemon marks the process as a daemon: a service loop (disk servicer,
// writeback thread, sampler) that legitimately blocks forever once the
// simulation drains. Daemons are excluded from deadlock detection.
func (p *Proc) SetDaemon(on bool) { p.daemon = on }

// Env returns the environment this process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// Handle lets other processes wait for a spawned process to finish, and
// request its cancellation with Kill.
type Handle struct {
	env     *Env
	proc    *Proc
	done    bool
	waiters []*Proc
}

// Done reports whether the process has finished.
func (h *Handle) Done() bool { return h.done }

// Wait blocks the calling process until the handle's process finishes.
func (h *Handle) Wait(p *Proc) {
	if h.done {
		return
	}
	h.waiters = append(h.waiters, p)
	p.blockOn(h)
}

func (h *Handle) removeWaiter(p *Proc) bool {
	for i, w := range h.waiters {
		if w == p {
			h.waiters = append(h.waiters[:i], h.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// Kill requests cancellation of the handle's process: the process unwinds
// (running its defers) at its next resume point. A process parked on a wait
// list (Resource, Cond, Event, Chan, Handle) is unregistered and dies
// immediately; a sleeping process dies when its sleep expires; a process
// that never started dies without running. Kill on a finished process is a
// no-op. Note that a killed process does not release resources it holds
// unless it arranged release with defer — kill service loops and waiters,
// not resource holders.
func (h *Handle) Kill() {
	p := h.proc
	if h.done || p.killed {
		return
	}
	p.killed = true
	if p.wl != nil {
		p.wl.removeWaiter(p)
		p.wl = nil
		if !p.daemon {
			p.env.blocked--
			delete(p.env.parked, p)
		}
		p.env.schedule(event{at: p.env.now, p: p})
	}
	// Otherwise the process is sleeping, ready, or running: exactly one
	// resume is already pending (or it is on the CPU now), and the killed
	// flag unwinds it at that point.
}

// Go spawns fn as a new process starting at the current virtual time.
// It may be called before Run, or from inside a running process.
func (e *Env) Go(name string, fn func(*Proc)) *Handle {
	h := &Handle{env: e}
	p := &Proc{env: e, name: name, resume: make(chan struct{}), handle: h}
	h.proc = p
	e.live++
	go func() {
		<-p.resume // wait for the kernel to start us
		// The final yield is deferred so that a process goroutine killed by
		// runtime.Goexit (e.g. a test helper's t.Fatal/t.Skip inside the
		// process) still returns control to the kernel instead of hanging
		// the simulation. A procKilled panic (Handle.Kill) is recovered and
		// becomes a normal exit; any other panic is re-raised after control
		// returns to the kernel.
		defer func() {
			r := recover()
			p.dead = true
			e.live--
			h.done = true
			for _, w := range h.waiters {
				e.wake(w)
			}
			h.waiters = nil
			e.yield <- struct{}{} // return control to the kernel
			if r != nil {
				if _, ok := r.(procKilled); !ok {
					panic(r)
				}
			}
		}()
		if !p.killed { // killed before first run: die without executing fn
			fn(p)
		}
	}()
	e.schedule(event{at: e.now, p: p})
	return h
}

// After schedules fn to run inline in the kernel after d elapses. fn must
// not block; use Go for anything that needs virtual time of its own.
func (e *Env) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(event{at: e.at(d), fn: fn})
}

// Timer is a cancellable one-shot callback created with AfterFunc.
type Timer struct {
	stopped bool
	fired   bool
}

// Stop cancels the timer. It reports whether the cancellation took effect
// (false if the callback already ran).
func (t *Timer) Stop() bool {
	if t.fired {
		return false
	}
	t.stopped = true
	return true
}

// Fired reports whether the callback ran.
func (t *Timer) Fired() bool { return t.fired }

// AfterFunc schedules fn like After but returns a Timer whose Stop cancels
// the callback if it has not fired yet — the primitive behind revocable
// fault events and timeouts.
func (e *Env) AfterFunc(d time.Duration, fn func()) *Timer {
	t := &Timer{}
	e.After(d, func() {
		if t.stopped {
			return
		}
		t.fired = true
		fn()
	})
	return t
}

// wake schedules p to resume at the current time.
func (e *Env) wake(p *Proc) {
	if !p.daemon {
		e.blocked--
		delete(e.parked, p)
	}
	e.schedule(event{at: e.now, p: p})
}

// block yields control to the kernel until some other party calls wake.
// The caller must have arranged for the wakeup (waiter list, etc.).
func (p *Proc) block() {
	if !p.daemon {
		p.env.blocked++
		p.env.parked[p] = struct{}{}
	}
	p.env.yield <- struct{}{}
	<-p.resume
	p.wl = nil
	if p.killed {
		panic(procKilled{p})
	}
}

// blockOn parks the process on wl and blocks, so Kill can unregister it.
func (p *Proc) blockOn(wl waiterList) {
	p.wl = wl
	p.block()
}

// Sleep suspends the process for d of virtual time. Negative d sleeps 0.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e := p.env
	e.schedule(event{at: e.at(d), p: p})
	e.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(procKilled{p})
	}
}

// DeadlockError reports a simulation deadlock: the event heap drained while
// non-daemon processes remained blocked with no pending wakeup. Blocked
// lists the stuck processes' names, sorted, so a harness can record the
// deadlock as a finding instead of crashing.
type DeadlockError struct {
	At      time.Duration // virtual time at which the simulation stalled
	Blocked []string      // names of the blocked non-daemon processes, sorted
}

func (d *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock: %d process(es) blocked with no pending events at t=%v", len(d.Blocked), d.At)
	if len(d.Blocked) > 0 {
		b.WriteString(" [")
		b.WriteString(strings.Join(d.Blocked, ", "))
		b.WriteString("]")
	}
	return b.String()
}

// Run executes the simulation until the event heap is empty or until limit
// (if positive) is reached. It returns the final virtual time. If processes
// remain blocked with no pending events — a simulation deadlock — Run
// returns a *DeadlockError naming them.
func (e *Env) Run(limit time.Duration) (time.Duration, error) {
	return e.run(nil, limit)
}

// cancelStride is how many events Run processes between cancellation polls.
// Event dispatch is two channel handoffs, so a poll every few hundred events
// costs nothing measurable while keeping cancellation latency far below any
// human-visible delay.
const cancelStride = 256

// RunContext executes like Run (including returning *DeadlockError on a
// simulation deadlock) but polls ctx between events and stops early
// when it is cancelled, returning ctx's error. Cancellation abandons the
// simulation mid-flight: the virtual clock stays where it was, and process
// goroutines that were parked stay parked until the whole Env is dropped —
// a cancelled environment must not be resumed, only discarded.
func (e *Env) RunContext(ctx context.Context, limit time.Duration) (time.Duration, error) {
	return e.run(ctx, limit)
}

func (e *Env) run(ctx context.Context, limit time.Duration) (time.Duration, error) {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return e.now, err
		}
	}
	sinceCheck := 0
	for len(e.events) > 0 {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= cancelStride {
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					return e.now, err
				}
			}
		}
		ev := e.events.pop()
		if limit > 0 && ev.at > limit {
			e.now = limit
			e.events.push(ev)
			return e.now, nil
		}
		e.now = ev.at
		e.dispatched++
		if ev.fn != nil {
			ev.fn()
			continue
		}
		if ev.p.dead {
			// A resume raced with the process's death (it was killed and
			// unwound before this event fired); nobody is listening.
			continue
		}
		ev.p.resume <- struct{}{}
		<-e.yield
	}
	if e.blocked > 0 {
		names := make([]string, 0, len(e.parked))
		for p := range e.parked {
			names = append(names, p.name)
		}
		sort.Strings(names)
		return e.now, &DeadlockError{At: e.now, Blocked: names}
	}
	return e.now, nil
}

// Idle reports whether no events remain.
func (e *Env) Idle() bool { return len(e.events) == 0 }

// Live returns the number of spawned processes that have not finished.
func (e *Env) Live() int { return e.live }

// Events returns the cumulative number of events dispatched by Run since the
// environment was created — the kernel-throughput denominator behind the
// benchmark harness's events/sec metric.
func (e *Env) Events() uint64 { return e.dispatched }
