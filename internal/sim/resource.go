package sim

import "time"

// Resource is a counted resource (e.g. CPU cores, task slots, a bandwidth
// token pool) with strict FIFO admission in virtual time.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  []resWaiter

	// accounting
	grants    uint64
	waitTotal time.Duration
	busyTime  time.Duration // integral of inUse over time, for utilization
	lastTouch time.Duration
}

type resWaiter struct {
	p *Proc
	n int
}

func (r *Resource) removeWaiter(p *Proc) bool {
	for i, w := range r.waiters {
		if w.p == p {
			r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// NewResource creates a resource with the given capacity (> 0).
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive: " + name)
	}
	return &Resource{env: env, name: name, capacity: capacity}
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of waiting processes.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) accrue() {
	now := r.env.now
	r.busyTime += time.Duration(r.inUse) * (now - r.lastTouch)
	r.lastTouch = now
}

// Acquire blocks p until n units are available and then takes them.
// Admission is FIFO: a large request at the head blocks later small ones,
// preventing starvation. n must be within capacity.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 {
		return
	}
	if n > r.capacity {
		panic("sim: acquire exceeds capacity on " + r.name)
	}
	start := r.env.now
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.accrue()
		r.inUse += n
		r.grants++
		return
	}
	r.waiters = append(r.waiters, resWaiter{p: p, n: n})
	p.blockOn(r)
	// The releaser granted our units before waking us.
	r.waitTotal += r.env.now - start
	r.grants++
}

// Release returns n units and admits as many FIFO waiters as now fit.
func (r *Resource) Release(n int) {
	if n <= 0 {
		return
	}
	if r.inUse < n {
		panic("sim: release of more than in use on " + r.name)
	}
	r.accrue()
	r.inUse -= n
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			break
		}
		r.inUse += w.n
		r.waiters = r.waiters[1:]
		r.env.wake(w.p)
	}
}

// Use acquires n units, sleeps for d, and releases them — the common
// "hold a resource while time passes" idiom.
func (r *Resource) Use(p *Proc, n int, d time.Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// Utilization returns the time-averaged fraction of capacity held between
// t=0 and now. It is 0 before any activity.
func (r *Resource) Utilization() float64 {
	r.accrue()
	if r.env.now == 0 {
		return 0
	}
	return float64(r.busyTime) / (float64(r.capacity) * float64(r.env.now))
}

// BusyTime returns the cumulative integral of held units over time — the
// raw counter behind utilization sampling (one unit held for one second
// contributes one second).
func (r *Resource) BusyTime() time.Duration {
	r.accrue()
	return r.busyTime
}

// AvgWait returns the mean virtual time spent queued per grant.
func (r *Resource) AvgWait() time.Duration {
	if r.grants == 0 {
		return 0
	}
	return r.waitTotal / time.Duration(r.grants)
}

// Chan is an unbounded FIFO queue usable across processes in virtual time.
// Put never blocks; Get blocks until an item is available or the channel is
// closed. A Chan with a capacity bound can be built from Resource + Chan.
type Chan struct {
	env     *Env
	items   []any
	getters []*Proc
	closed  bool
}

// NewChan creates an empty channel.
func NewChan(env *Env) *Chan { return &Chan{env: env} }

func (c *Chan) removeWaiter(p *Proc) bool {
	for i, g := range c.getters {
		if g == p {
			c.getters = append(c.getters[:i], c.getters[i+1:]...)
			return true
		}
	}
	return false
}

// Len returns the number of queued items.
func (c *Chan) Len() int { return len(c.items) }

// Put enqueues v and wakes one waiting getter, if any.
func (c *Chan) Put(v any) {
	if c.closed {
		panic("sim: Put on closed Chan")
	}
	c.items = append(c.items, v)
	if len(c.getters) > 0 {
		g := c.getters[0]
		c.getters = c.getters[1:]
		c.env.wake(g)
	}
}

// Close marks the channel closed and wakes all waiting getters, which will
// observe ok=false once the queue drains.
func (c *Chan) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, g := range c.getters {
		c.env.wake(g)
	}
	c.getters = nil
}

// Get dequeues the oldest item, blocking if the channel is empty. It returns
// ok=false if the channel is closed and drained.
func (c *Chan) Get(p *Proc) (any, bool) {
	for len(c.items) == 0 {
		if c.closed {
			return nil, false
		}
		c.getters = append(c.getters, p)
		p.blockOn(c)
	}
	v := c.items[0]
	c.items = c.items[1:]
	// If items remain and other getters wait, hand the baton on so a burst
	// of Puts wakes every waiter it can serve.
	if len(c.items) > 0 && len(c.getters) > 0 {
		g := c.getters[0]
		c.getters = c.getters[1:]
		c.env.wake(g)
	}
	return v, true
}

// Cond is a broadcast condition variable in virtual time.
type Cond struct {
	env     *Env
	waiters []*Proc
}

// NewCond creates a condition variable.
func NewCond(env *Env) *Cond { return &Cond{env: env} }

// Wait blocks p until the next Broadcast. As with sync.Cond, callers should
// re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.blockOn(c)
}

func (c *Cond) removeWaiter(p *Proc) bool {
	for i, w := range c.waiters {
		if w == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		c.env.wake(w)
	}
	c.waiters = nil
}

// Event is a one-shot completion event: processes Wait on it, and a single
// Fire wakes them all. Waiting on an already-fired event returns
// immediately. It is the natural completion primitive for asynchronous
// operations such as block-layer requests.
type Event struct {
	env     *Env
	fired   bool
	waiters []*Proc
}

// NewEvent creates an unfired event.
func NewEvent(env *Env) *Event { return &Event{env: env} }

// Fired reports whether Fire has been called.
func (ev *Event) Fired() bool { return ev.fired }

// Wait blocks p until the event fires.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.blockOn(ev)
}

func (ev *Event) removeWaiter(p *Proc) bool {
	for i, w := range ev.waiters {
		if w == p {
			ev.waiters = append(ev.waiters[:i], ev.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// Fire marks the event fired and wakes all waiters. Firing twice panics —
// it would indicate double completion of an operation.
func (ev *Event) Fire() {
	if ev.fired {
		panic("sim: Event fired twice")
	}
	ev.fired = true
	for _, w := range ev.waiters {
		ev.env.wake(w)
	}
	ev.waiters = nil
}
