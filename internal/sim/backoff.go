package sim

import (
	"math/rand"
	"time"
)

// Backoff produces bounded exponential retry delays with deterministic
// jitter — the client-side wait discipline for a master that is down.
// Delays start at Base, double per call, and saturate at Max; each delay
// is then jittered uniformly in [d/2, d) from the supplied RNG, so
// stalled clients de-synchronize (no thundering herd on the restarted
// master) while the whole schedule stays a pure function of the seed.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
	rng  *rand.Rand
	cur  time.Duration
}

// NewBackoff returns a backoff over [base, max] drawing jitter from rng.
func NewBackoff(base, max time.Duration, rng *rand.Rand) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{Base: base, Max: max, rng: rng}
}

// Next returns the next jittered delay and advances the exponential
// schedule.
func (b *Backoff) Next() time.Duration {
	if b.cur == 0 {
		b.cur = b.Base
	}
	d := b.cur
	if b.cur < b.Max {
		b.cur *= 2
		if b.cur > b.Max {
			b.cur = b.Max
		}
	}
	// Uniform in [d/2, d): full jitter halves the mean extra latency while
	// keeping the exponential envelope.
	return d/2 + time.Duration(b.rng.Int63n(int64(d/2)+1))
}

// Reset returns the schedule to its base delay — call after a successful
// attempt.
func (b *Backoff) Reset() { b.cur = 0 }
