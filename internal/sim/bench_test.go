package sim

import (
	"math/rand"
	"testing"
	"time"
)

// The event kernel's hot operations are heap push/pop (schedule and
// dispatch) and the sleep/wake path processes ride through every yield.
// These benchmarks pin their per-event cost so `go test -bench` trends (and
// CI's benchstat step) catch kernel regressions directly, without running a
// whole workload.

// BenchmarkKernelTimerHeap measures raw schedule+dispatch throughput: b.N
// callbacks with pseudo-random delays pushed through the event heap in
// batches, so the heap works at realistic depth (~4k outstanding events).
func BenchmarkKernelTimerHeap(b *testing.B) {
	env := New(1)
	rng := rand.New(rand.NewSource(42))
	delays := make([]time.Duration, 4096)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(1_000_000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		batch := len(delays)
		if b.N-done < batch {
			batch = b.N - done
		}
		for j := 0; j < batch; j++ {
			env.After(delays[j], func() {})
		}
		if _, err := env.Run(0); err != nil {
			b.Fatal(err)
		}
		done += batch
	}
}

// BenchmarkKernelSleepWake measures the process path: one proc yielding b.N
// times, each iteration a full block/schedule/dispatch/wake round trip.
func BenchmarkKernelSleepWake(b *testing.B) {
	env := New(1)
	env.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := env.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelResourceHandoff measures contended Acquire/Release — the
// pattern task slots and CPU cores exercise constantly: two procs handing a
// single unit back and forth through the FIFO waiter queue.
func BenchmarkKernelResourceHandoff(b *testing.B) {
	env := New(1)
	res := NewResource(env, "unit", 1)
	worker := func(p *Proc) {
		for i := 0; i < b.N/2; i++ {
			res.Acquire(p, 1)
			p.Sleep(time.Nanosecond)
			res.Release(1)
		}
	}
	env.Go("a", worker)
	env.Go("b", worker)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := env.Run(0); err != nil {
		b.Fatal(err)
	}
}
