package iostat

import (
	"math"
	"testing"
	"time"

	"iochar/internal/disk"
	"iochar/internal/sim"
)

func testDisk(env *sim.Env) *disk.Disk {
	p := disk.SeagateST1000NM0011()
	p.Sectors = 1 << 24
	return disk.New(env, p)
}

func TestDeriveBandwidth(t *testing.T) {
	prev := disk.Stats{}
	cur := disk.Stats{
		SectorsRead:     2048, // 1 MiB
		SectorsWritten:  4096, // 2 MiB
		ReadsCompleted:  8,
		WritesCompleted: 16,
		TimeReading:     80 * time.Millisecond,
		TimeWriting:     160 * time.Millisecond,
		IOTicks:         120 * time.Millisecond,
	}
	s := Derive(prev, cur, time.Second, 1)
	if math.Abs(s.RMBs-1) > 1e-9 {
		t.Errorf("RMBs = %f, want 1", s.RMBs)
	}
	if math.Abs(s.WMBs-2) > 1e-9 {
		t.Errorf("WMBs = %f, want 2", s.WMBs)
	}
	if math.Abs(s.Util-12) > 1e-9 {
		t.Errorf("Util = %f, want 12", s.Util)
	}
	// await = 240ms / 24 requests = 10ms; svctm = 120ms/24 = 5ms; wait = 5ms.
	if math.Abs(s.AwaitMs-10) > 1e-9 {
		t.Errorf("AwaitMs = %f, want 10", s.AwaitMs)
	}
	if math.Abs(s.SvctmMs-5) > 1e-9 {
		t.Errorf("SvctmMs = %f, want 5", s.SvctmMs)
	}
	if math.Abs(s.WaitMs-5) > 1e-9 {
		t.Errorf("WaitMs = %f, want 5", s.WaitMs)
	}
	// avgrq-sz = 6144 sectors / 24 requests = 256.
	if math.Abs(s.AvgrqSz-256) > 1e-9 {
		t.Errorf("AvgrqSz = %f, want 256", s.AvgrqSz)
	}
}

func TestDeriveMultiDeviceUtilAveraged(t *testing.T) {
	cur := disk.Stats{IOTicks: time.Second, ReadsCompleted: 1, SectorsRead: 8}
	s := Derive(disk.Stats{}, cur, time.Second, 3)
	// One device-second of busy time across 3 devices over 1s = 33.3%.
	if math.Abs(s.Util-100.0/3) > 1e-6 {
		t.Errorf("Util = %f, want 33.33", s.Util)
	}
}

func TestDeriveZeroElapsed(t *testing.T) {
	s := Derive(disk.Stats{}, disk.Stats{SectorsRead: 100}, 0, 1)
	if s.RMBs != 0 || s.Util != 0 {
		t.Error("zero elapsed must derive zero sample")
	}
}

func TestDeriveIdleIntervalAllZero(t *testing.T) {
	st := disk.Stats{SectorsRead: 5000, ReadsCompleted: 10, IOTicks: time.Second}
	s := Derive(st, st, time.Second, 1)
	if s.RMBs != 0 || s.WMBs != 0 || s.Util != 0 || s.AwaitMs != 0 || s.AvgrqSz != 0 {
		t.Errorf("idle interval should be all zero, got %+v", s)
	}
}

func TestMonitorSamplesAtInterval(t *testing.T) {
	env := sim.New(1)
	d := testDisk(env)
	m := NewMonitor(100 * time.Millisecond)
	m.AddGroup("data", d)
	m.Start(env)
	env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			d.Do(p, disk.Write, int64(i*1024), 1024)
			p.Sleep(20 * time.Millisecond)
		}
		m.Stop(p.Now())
	})
	env.Run(0)
	rep := m.Report("data")
	if rep == nil {
		t.Fatal("missing report")
	}
	if rep.WMBs.Len() < 5 {
		t.Fatalf("only %d samples; expected several 100ms intervals", rep.WMBs.Len())
	}
	if rep.WMBs.Max() <= 0 {
		t.Error("write bandwidth never positive")
	}
	if rep.TotalWrittenBytes != 20*1024*disk.SectorSize {
		t.Errorf("TotalWrittenBytes = %d, want %d", rep.TotalWrittenBytes, 20*1024*disk.SectorSize)
	}
}

func TestMonitorStopsSampling(t *testing.T) {
	env := sim.New(1)
	d := testDisk(env)
	m := NewMonitor(10 * time.Millisecond)
	m.AddGroup("g", d)
	m.Start(env)
	env.Go("load", func(p *sim.Proc) {
		d.Do(p, disk.Read, 0, 512)
		m.Stop(p.Now())
	})
	end, _ := env.Run(0)
	// The sampler must exit promptly after Stop, not keep the sim alive.
	if end > time.Second {
		t.Errorf("simulation ran to %v; sampler failed to stop", end)
	}
}

func TestMonitorGroupAggregation(t *testing.T) {
	env := sim.New(1)
	d1, d2, d3 := testDisk(env), testDisk(env), testDisk(env)
	m := NewMonitor(50 * time.Millisecond)
	m.AddGroup("hdfs", d1, d2, d3)
	m.Start(env)
	env.Go("load", func(p *sim.Proc) {
		// Only d1 is busy; group util must be ~1/3 of a single-device run.
		for i := 0; i < 10; i++ {
			d1.Do(p, disk.Write, int64(i*2048), 2048)
		}
		m.Stop(p.Now())
	})
	env.Run(0)
	rep := m.Report("hdfs")
	if rep.Util.Max() > 40 {
		t.Errorf("group util max = %f, should be ~33%% when 1 of 3 disks is busy", rep.Util.Max())
	}
	if rep.Util.Max() <= 0 {
		t.Error("group util should be positive")
	}
}

func TestMonitorDuplicateGroupPanics(t *testing.T) {
	env := sim.New(1)
	d := testDisk(env)
	m := NewMonitor(time.Second)
	m.AddGroup("x", d)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	m.AddGroup("x", d)
}

func TestMonitorUnknownReportNil(t *testing.T) {
	m := NewMonitor(time.Second)
	if m.Report("nope") != nil {
		t.Error("unknown group should return nil")
	}
}

func TestGroupsOrder(t *testing.T) {
	env := sim.New(1)
	m := NewMonitor(time.Second)
	m.AddGroup("b", testDisk(env))
	m.AddGroup("a", testDisk(env))
	got := m.Groups()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("Groups = %v, want [b a]", got)
	}
}

func TestAwaitExceedsSvctmUnderQueueing(t *testing.T) {
	env := sim.New(1)
	d := testDisk(env)
	m := NewMonitor(time.Second)
	m.AddGroup("g", d)
	m.Start(env)
	env.Go("load", func(p *sim.Proc) {
		// Burst of scattered requests builds a queue: await > svctm.
		var reqs []*disk.Request
		for i := 0; i < 32; i++ {
			reqs = append(reqs, d.Submit(disk.Read, int64(i)*500_000, 8))
		}
		for _, r := range reqs {
			d.Wait(p, r)
		}
		m.Stop(p.Now())
	})
	env.Run(0)
	rep := m.Report("g")
	await, svctm := rep.AwaitMs.MeanNonzero(), rep.SvctmMs.MeanNonzero()
	if await <= svctm {
		t.Errorf("await %f should exceed svctm %f under queueing", await, svctm)
	}
}

func TestSequentialStreamHasLargerAvgrqSzThanRandom(t *testing.T) {
	run := func(random bool) float64 {
		env := sim.New(1)
		d := testDisk(env)
		m := NewMonitor(5 * time.Millisecond)
		m.AddGroup("g", d)
		m.Start(env)
		env.Go("load", func(p *sim.Proc) {
			if random {
				for i := 0; i < 64; i++ {
					d.Do(p, disk.Read, int64(env.Rand().Int63n(1<<23)), 16)
				}
			} else {
				// Async sequential stream: requests merge in the queue.
				var reqs []*disk.Request
				for i := 0; i < 64; i++ {
					reqs = append(reqs, d.Submit(disk.Read, int64(i*256), 256))
				}
				for _, r := range reqs {
					d.Wait(p, r)
				}
			}
			m.Stop(p.Now())
		})
		env.Run(0)
		return m.Report("g").AvgrqSz.MeanNonzero()
	}
	seq, rnd := run(false), run(true)
	if seq <= rnd*2 {
		t.Errorf("sequential avgrq-sz %f should be well above random %f", seq, rnd)
	}
}

func TestUtilPoolRecordsPerDiskSamples(t *testing.T) {
	env := sim.New(1)
	d1, d2, d3 := testDisk(env), testDisk(env), testDisk(env)
	m := NewMonitor(50 * time.Millisecond)
	m.AddGroup("g", d1, d2, d3)
	m.Start(env)
	env.Go("load", func(p *sim.Proc) {
		// Saturate only d1 for ~0.3s.
		for i := 0; i < 100; i++ {
			d1.Do(p, disk.Write, int64(i*2048), 2048)
		}
		m.Stop(p.Now())
	})
	env.Run(0)
	rep := m.Report("g")
	// Three per-disk samples per interval.
	if rep.UtilPool.Len() != 3*rep.Util.Len() {
		t.Fatalf("UtilPool has %d samples for %d intervals x 3 disks", rep.UtilPool.Len(), rep.Util.Len())
	}
	// The busy disk's samples push the pool max near 100 even though the
	// group average stays near 33.
	if rep.UtilPool.Max() < 90 {
		t.Errorf("pool max = %.1f, want the saturated disk visible (>90)", rep.UtilPool.Max())
	}
	if rep.Util.Max() > 50 {
		t.Errorf("group mean max = %.1f, want smoothing (<50)", rep.Util.Max())
	}
	// The paper's ratio statistic distinguishes them.
	if rep.UtilPool.FracAbove(90) <= rep.Util.FracAbove(90) {
		t.Error("per-disk pool should see more >90%% samples than the group average")
	}
}

func TestStopRefreshesTotalsOnDroppedTail(t *testing.T) {
	// I/O completing in a tail shorter than interval/10 is dropped from the
	// interval series (too noisy for rates) but must still count toward the
	// whole-run totals.
	env := sim.New(1)
	d := testDisk(env)
	m := NewMonitor(100 * time.Millisecond)
	m.AddGroup("g", d)
	m.Start(env)
	env.Go("load", func(p *sim.Proc) {
		d.Do(p, disk.Write, 0, 1024)
		p.Sleep(205*time.Millisecond - p.Now()) // wake just past the t=200ms sample
		d.Do(p, disk.Write, 1024, 64)           // contiguous: completes in well under 10ms
		m.Stop(p.Now())
	})
	env.Run(0)
	rep := m.Report("g")
	if got := rep.WMBs.Len(); got != 2 {
		t.Fatalf("sampled %d intervals, want 2 (tail must be dropped)", got)
	}
	if want := uint64(1024+64) * disk.SectorSize; rep.TotalWrittenBytes != want {
		t.Errorf("TotalWrittenBytes = %d, want %d (tail write lost)", rep.TotalWrittenBytes, want)
	}
	if rep.TotalWrites != 2 {
		t.Errorf("TotalWrites = %d, want 2", rep.TotalWrites)
	}
	if got, want := rep.TotalWrittenBytes, d.Stats().SectorsWritten*disk.SectorSize; got != want {
		t.Errorf("report totals %d disagree with disk.Stats %d", got, want)
	}
}

func TestMonitorHistograms(t *testing.T) {
	env := sim.New(1)
	d := testDisk(env)
	m := NewMonitor(100 * time.Millisecond)
	m.AddGroup("g", d)
	m.EnableHistograms()
	m.Start(env)
	env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			d.Do(p, disk.Read, int64(i)<<16, 64)
		}
		m.Stop(p.Now())
		d.Do(p, disk.Read, 1<<22, 64) // after Stop: must not be observed
	})
	env.Run(0)
	h := m.Report("g").Hists
	if h == nil {
		t.Fatal("Hists nil after EnableHistograms")
	}
	if h.Requests != 16 {
		t.Fatalf("Requests = %d, want 16 (the post-Stop request must not be observed)", h.Requests)
	}
	p50, p95 := h.Await.Quantile(0.50), h.Await.Quantile(0.95)
	if !(p50 > 0 && p50 <= p95 && p95 <= h.AwaitMaxMs*1.5) {
		t.Errorf("await quantiles inconsistent: p50=%g p95=%g max=%g", p50, p95, h.AwaitMaxMs)
	}
	if h.Svctm.Quantile(0.5) <= 0 || h.Size.Quantile(0.5) <= 0 {
		t.Error("svctm/size histograms empty")
	}
}

func TestMonitorWithoutHistogramsHasNilHists(t *testing.T) {
	env := sim.New(1)
	d := testDisk(env)
	m := NewMonitor(100 * time.Millisecond)
	m.AddGroup("g", d)
	m.Start(env)
	env.Go("load", func(p *sim.Proc) {
		d.Do(p, disk.Read, 0, 64)
		m.Stop(p.Now())
	})
	env.Run(0)
	if m.Report("g").Hists != nil {
		t.Error("Hists non-nil without EnableHistograms; observers-off must stay zero-cost")
	}
}
