// Package iostat reimplements the disk-statistics reporting of iostat(1),
// the tool the paper used for all of its measurements. A Monitor samples the
// cumulative diskstats counters of one or more device groups at a fixed
// interval of virtual time and derives the exact metrics of the paper's
// Table 4:
//
//	rMB/s, wMB/s  — megabytes read/written per second
//	%util         — fraction of the interval the device was busy
//	await         — mean time from request arrival to completion (ms)
//	svctm         — mean device service time per request (ms)
//	avgrq-sz      — mean request size, in 512-byte sectors
//
// The paper's per-scenario numbers aggregate the three HDFS disks and the
// three MapReduce-intermediate disks of each node across the cluster;
// Monitor's groups provide the same aggregation: counters are summed across
// member devices before the interval metrics are derived (so %util is the
// mean busy fraction of the group's devices).
package iostat

import (
	"fmt"
	"time"

	"iochar/internal/disk"
	"iochar/internal/sim"
	"iochar/internal/stats"
)

// Sample is one interval's derived metrics.
type Sample struct {
	T       time.Duration // end of the interval
	RMBs    float64
	WMBs    float64
	Util    float64 // percent, 0..100
	AwaitMs float64
	SvctmMs float64
	WaitMs  float64 // await - svctm: pure queueing delay (paper §3.2)
	AvgrqSz float64 // sectors
	Rps     float64 // read requests completed per second
	Wps     float64 // write requests completed per second
}

// Report accumulates the per-interval series for one device group.
type Report struct {
	Name    string
	RMBs    *stats.Series
	WMBs    *stats.Series
	Util    *stats.Series
	AwaitMs *stats.Series
	SvctmMs *stats.Series
	WaitMs  *stats.Series
	AvgrqSz *stats.Series
	Rps     *stats.Series
	Wps     *stats.Series

	// UtilPool pools per-device %util samples: one sample per member device
	// per interval, rather than the group average. Distribution statistics
	// like the paper's ">90%util ratio" (Tables 6-7) must be computed here
	// — averaging 30 disks first would erase exactly the peaks those
	// tables count.
	UtilPool *stats.Series

	// Totals over the whole monitored run.
	TotalReadBytes    uint64
	TotalWrittenBytes uint64
	TotalReads        uint64
	TotalWrites       uint64

	// Hists holds per-request distributions when the Monitor was started
	// with EnableHistograms; nil otherwise. Interval means (the series
	// above) answer Table 4; the distributions answer tail questions the
	// paper poses in §3.2 — what p95/p99 await looks like, not just the
	// average.
	Hists *Hists
}

// Hists are per-request latency and size distributions for one device group,
// observed from every completed request via the disk observer bus. Unlike
// the interval series, which average over whole seconds, these see each
// request individually, so tail percentiles are exact up to bucket width.
type Hists struct {
	Await *stats.Histogram // residence time per request (await), milliseconds
	Svctm *stats.Histogram // device service time per request, milliseconds
	Size  *stats.Histogram // request size, sectors

	// Exact extrema and counts, since the histograms quantize to bucket
	// upper bounds.
	AwaitMaxMs float64
	SvctmMaxMs float64
	SizeMax    float64
	Requests   uint64
}

// NewHists builds empty distributions sized for the simulated drives:
// latencies from 10 µs to 10 s, request sizes from 1 sector to twice the
// 512 KiB merge ceiling.
func NewHists() *Hists {
	return &Hists{
		Await: stats.NewHistogram(0.01, 10_000, 48),
		Svctm: stats.NewHistogram(0.01, 10_000, 48),
		Size:  stats.NewHistogram(1, 2048, 24),
	}
}

// Observe folds one completed request into the distributions.
func (h *Hists) Observe(c disk.Completion) {
	awaitMs := (c.Done - c.Arrived).Seconds() * 1000
	svctmMs := (c.Done - c.Start).Seconds() * 1000
	size := float64(c.Count)
	h.Await.Observe(awaitMs)
	h.Svctm.Observe(svctmMs)
	h.Size.Observe(size)
	if awaitMs > h.AwaitMaxMs {
		h.AwaitMaxMs = awaitMs
	}
	if svctmMs > h.SvctmMaxMs {
		h.SvctmMaxMs = svctmMs
	}
	if size > h.SizeMax {
		h.SizeMax = size
	}
	h.Requests++
}

// Merge folds other's distributions into h in place — bucket arrays are
// reused, so rolling many per-group Hists into a cluster-wide view does no
// per-merge allocation. Shapes must match (both built by NewHists).
func (h *Hists) Merge(other *Hists) {
	h.Await.Merge(other.Await)
	h.Svctm.Merge(other.Svctm)
	h.Size.Merge(other.Size)
	if other.AwaitMaxMs > h.AwaitMaxMs {
		h.AwaitMaxMs = other.AwaitMaxMs
	}
	if other.SvctmMaxMs > h.SvctmMaxMs {
		h.SvctmMaxMs = other.SvctmMaxMs
	}
	if other.SizeMax > h.SizeMax {
		h.SizeMax = other.SizeMax
	}
	h.Requests += other.Requests
}

func newReport(name string) *Report {
	return &Report{
		Name:     name,
		RMBs:     stats.NewSeries(name + ".rMB/s"),
		WMBs:     stats.NewSeries(name + ".wMB/s"),
		Util:     stats.NewSeries(name + ".%util"),
		AwaitMs:  stats.NewSeries(name + ".await"),
		SvctmMs:  stats.NewSeries(name + ".svctm"),
		WaitMs:   stats.NewSeries(name + ".wait"),
		AvgrqSz:  stats.NewSeries(name + ".avgrq-sz"),
		Rps:      stats.NewSeries(name + ".r/s"),
		Wps:      stats.NewSeries(name + ".w/s"),
		UtilPool: stats.NewSeries(name + ".%util-per-disk"),
	}
}

func (r *Report) add(s Sample) {
	r.RMBs.Add(s.T, s.RMBs)
	r.WMBs.Add(s.T, s.WMBs)
	r.Util.Add(s.T, s.Util)
	r.AwaitMs.Add(s.T, s.AwaitMs)
	r.SvctmMs.Add(s.T, s.SvctmMs)
	r.WaitMs.Add(s.T, s.WaitMs)
	r.AvgrqSz.Add(s.T, s.AvgrqSz)
	r.Rps.Add(s.T, s.Rps)
	r.Wps.Add(s.T, s.Wps)
}

// group is a named set of devices sampled together.
type group struct {
	name    string
	disks   []*disk.Disk
	last    disk.Stats
	lastPer []disk.Stats // per-device snapshots for the pooled series
	lastAt  time.Duration
	report  *Report
}

// combined sums the cumulative counters across the group's devices.
func (g *group) combined() disk.Stats {
	var out disk.Stats
	for _, d := range g.disks {
		s := d.Stats()
		out.ReadsCompleted += s.ReadsCompleted
		out.ReadsMerged += s.ReadsMerged
		out.SectorsRead += s.SectorsRead
		out.TimeReading += s.TimeReading
		out.WritesCompleted += s.WritesCompleted
		out.WritesMerged += s.WritesMerged
		out.SectorsWritten += s.SectorsWritten
		out.TimeWriting += s.TimeWriting
		out.IOTicks += s.IOTicks
		out.WeightedTicks += s.WeightedTicks
	}
	return out
}

// Derive computes one interval's metrics from a pair of cumulative counter
// snapshots over elapsed time across ndev devices. It is exported because it
// is precisely the iostat(1) arithmetic, useful on raw counters too.
func Derive(prev, cur disk.Stats, elapsed time.Duration, ndev int) Sample {
	if ndev <= 0 {
		ndev = 1
	}
	sec := elapsed.Seconds()
	if sec <= 0 {
		return Sample{}
	}
	dr := cur.ReadsCompleted - prev.ReadsCompleted
	dw := cur.WritesCompleted - prev.WritesCompleted
	dsr := cur.SectorsRead - prev.SectorsRead
	dsw := cur.SectorsWritten - prev.SectorsWritten
	dtr := cur.TimeReading - prev.TimeReading
	dtw := cur.TimeWriting - prev.TimeWriting
	dticks := cur.IOTicks - prev.IOTicks

	s := Sample{
		RMBs: float64(dsr) * disk.SectorSize / (1 << 20) / sec,
		WMBs: float64(dsw) * disk.SectorSize / (1 << 20) / sec,
		Util: float64(dticks) / (float64(elapsed) * float64(ndev)) * 100,
		Rps:  float64(dr) / sec,
		Wps:  float64(dw) / sec,
	}
	if n := dr + dw; n > 0 {
		// Computed in float seconds: sub-millisecond precision matters at
		// simulation scale even though iostat prints milliseconds.
		s.AwaitMs = (dtr + dtw).Seconds() * 1000 / float64(n)
		s.SvctmMs = dticks.Seconds() * 1000 / float64(n)
		s.AvgrqSz = float64(dsr+dsw) / float64(n)
	}
	if s.WaitMs = s.AwaitMs - s.SvctmMs; s.WaitMs < 0 {
		s.WaitMs = 0
	}
	return s
}

// Monitor periodically samples device groups. Create with NewMonitor, add
// groups, then Start it from simulation context; Stop ends sampling and
// flushes a final partial interval.
type Monitor struct {
	interval time.Duration
	groups   []*group
	byName   map[string]*group
	stopped  bool
	started  bool
	hists    bool
	unsubs   []func()
}

// EnableHistograms makes Start attach a per-request observer to every group
// device (via disk.Subscribe, so it composes with any number of trace
// sinks), populating Report.Hists. Call before Start.
func (m *Monitor) EnableHistograms() {
	if m.started {
		panic("iostat: EnableHistograms after Start")
	}
	m.hists = true
}

// NewMonitor creates a monitor with the given sampling interval (the paper
// used iostat's interval mode; 1s is the conventional choice).
func NewMonitor(interval time.Duration) *Monitor {
	if interval <= 0 {
		panic("iostat: non-positive interval")
	}
	return &Monitor{interval: interval, byName: map[string]*group{}}
}

// AddGroup registers a named device group. Panics on duplicates or after
// Start, both of which indicate mis-wiring.
func (m *Monitor) AddGroup(name string, disks ...*disk.Disk) {
	if m.started {
		panic("iostat: AddGroup after Start")
	}
	if _, dup := m.byName[name]; dup {
		panic(fmt.Sprintf("iostat: duplicate group %q", name))
	}
	if len(disks) == 0 {
		panic(fmt.Sprintf("iostat: empty group %q", name))
	}
	g := &group{name: name, disks: disks, lastPer: make([]disk.Stats, len(disks)), report: newReport(name)}
	m.groups = append(m.groups, g)
	m.byName[name] = g
}

// Start spawns the sampling process in env. Call at most once.
func (m *Monitor) Start(env *sim.Env) {
	if m.started {
		panic("iostat: Start called twice")
	}
	m.started = true
	now := env.Now()
	for _, g := range m.groups {
		g.last = g.combined()
		g.lastAt = now
		if m.hists {
			h := NewHists()
			g.report.Hists = h
			for _, d := range g.disks {
				m.unsubs = append(m.unsubs, d.Subscribe(h.Observe))
			}
		}
	}
	env.Go("iostat", func(p *sim.Proc) {
		for !m.stopped {
			p.Sleep(m.interval)
			m.sampleAll(p.Now())
		}
	})
}

// Stop ends sampling; a final partial interval is flushed if at least a
// tenth of the interval has elapsed since the last sample (shorter tails
// produce noisy rate estimates and are dropped, as iostat users do by
// ignoring the last line). The run totals are always refreshed from the
// final counters, dropped tail or not — I/O completing in the last sliver of
// a run must still count toward whole-run volume.
func (m *Monitor) Stop(now time.Duration) {
	if m.stopped {
		return
	}
	m.stopped = true
	for _, g := range m.groups {
		if now-g.lastAt >= m.interval/10 {
			m.sampleGroup(g, now)
		} else {
			g.refreshTotals(g.combined())
		}
	}
	for _, u := range m.unsubs {
		u()
	}
	m.unsubs = nil
}

func (m *Monitor) sampleAll(now time.Duration) {
	if m.stopped {
		return
	}
	for _, g := range m.groups {
		m.sampleGroup(g, now)
	}
}

func (m *Monitor) sampleGroup(g *group, now time.Duration) {
	cur := g.combined()
	s := Derive(g.last, cur, now-g.lastAt, len(g.disks))
	s.T = now
	g.report.add(s)
	for i, d := range g.disks {
		ds := d.Stats()
		per := Derive(g.lastPer[i], ds, now-g.lastAt, 1)
		g.report.UtilPool.Add(now, per.Util)
		g.lastPer[i] = ds
	}
	g.last = cur
	g.lastAt = now
	g.refreshTotals(cur)
}

// refreshTotals updates the report's whole-run totals from a combined
// counter snapshot.
func (g *group) refreshTotals(cur disk.Stats) {
	r := g.report
	r.TotalReadBytes = cur.SectorsRead * disk.SectorSize
	r.TotalWrittenBytes = cur.SectorsWritten * disk.SectorSize
	r.TotalReads = cur.ReadsCompleted
	r.TotalWrites = cur.WritesCompleted
}

// Report returns the accumulated report for a group, or nil if unknown.
func (m *Monitor) Report(name string) *Report {
	g := m.byName[name]
	if g == nil {
		return nil
	}
	return g.report
}

// Groups returns the registered group names in registration order.
func (m *Monitor) Groups() []string {
	out := make([]string, len(m.groups))
	for i, g := range m.groups {
		out[i] = g.name
	}
	return out
}
