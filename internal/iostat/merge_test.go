package iostat

import (
	"testing"
	"time"

	"iochar/internal/disk"
)

func TestHistsMerge(t *testing.T) {
	a, b := NewHists(), NewHists()
	a.Observe(disk.Completion{Count: 8, Arrived: 0, Start: time.Millisecond, Done: 2 * time.Millisecond})
	b.Observe(disk.Completion{Count: 512, Arrived: 0, Start: time.Millisecond, Done: 50 * time.Millisecond})
	b.Observe(disk.Completion{Count: 16, Arrived: 0, Start: time.Millisecond, Done: 3 * time.Millisecond})
	a.Merge(b)
	if a.Requests != 3 {
		t.Errorf("merged Requests = %d, want 3", a.Requests)
	}
	if a.Await.Total() != 3 || a.Svctm.Total() != 3 || a.Size.Total() != 3 {
		t.Errorf("merged totals = %d/%d/%d, want 3 each",
			a.Await.Total(), a.Svctm.Total(), a.Size.Total())
	}
	if a.AwaitMaxMs != 50 {
		t.Errorf("merged AwaitMaxMs = %v, want 50", a.AwaitMaxMs)
	}
	if a.SizeMax != 512 {
		t.Errorf("merged SizeMax = %v, want 512", a.SizeMax)
	}
	if b.Requests != 2 {
		t.Errorf("merge mutated its argument: Requests = %d, want 2", b.Requests)
	}
}

// Rolling per-group distributions into a cluster-wide view must not
// allocate: the bucket arrays of the receiver are reused in place.
func TestHistsMergeAllocs(t *testing.T) {
	a, b := NewHists(), NewHists()
	b.Observe(disk.Completion{Count: 64, Arrived: 0, Start: time.Millisecond, Done: 2 * time.Millisecond})
	allocs := testing.AllocsPerRun(1000, func() { a.Merge(b) })
	if allocs != 0 {
		t.Errorf("Merge allocates %.1f objects per call, want 0", allocs)
	}
}
