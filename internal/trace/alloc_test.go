package trace

import (
	"io"
	"testing"
	"time"

	"iochar/internal/disk"
)

// The streaming sink must not allocate per record: traces run to millions
// of requests, and a per-record allocation would dominate the simulation's
// heap churn. The encode buffer is grown once and reused forever.
func TestStreamCollectorRecordAllocs(t *testing.T) {
	c := disk.Completion{
		Op:      disk.Write,
		Sector:  123_456_789,
		Count:   1024,
		Arrived: 1500 * time.Millisecond,
		Done:    1502 * time.Millisecond,
	}
	for _, tc := range []struct {
		name   string
		format Format
	}{
		{"csv", FormatCSV},
		{"ndjson", FormatNDJSON},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewStreamCollectorFormat(io.Discard, tc.format)
			s.record("slave-03.mr1", c) // warm up: grow the encode buffer once
			allocs := testing.AllocsPerRun(1000, func() {
				s.record("slave-03.mr1", c)
			})
			if allocs != 0 {
				t.Errorf("%s record path allocates %.1f objects per record, want 0", tc.name, allocs)
			}
			if s.Err() != nil {
				t.Fatal(s.Err())
			}
		})
	}
}
