package trace

import (
	"bufio"
	"io"
	"strconv"

	"iochar/internal/disk"
)

// Format selects the streaming encoding.
type Format uint8

// Supported stream encodings. CSV matches WriteCSV's layout; NDJSON emits
// one JSON object per line for downstream tools that prefer it.
const (
	FormatCSV Format = iota
	FormatNDJSON
)

// StreamCollector encodes completed requests to a writer as they happen,
// holding only a small reusable buffer — memory use is independent of trace
// length, unlike Collector's in-RAM []Record. The simulation is serialized,
// so no locking is needed; writer errors are sticky and surface from Err and
// Close rather than interrupting the run.
type StreamCollector struct {
	bw     *bufio.Writer
	format Format
	buf    []byte // reusable per-record encode buffer
	n      int
	err    error
}

// NewStreamCollector returns a CSV stream sink writing to w, header
// included.
func NewStreamCollector(w io.Writer) *StreamCollector {
	return NewStreamCollectorFormat(w, FormatCSV)
}

// NewStreamCollectorFormat returns a stream sink with an explicit format.
func NewStreamCollectorFormat(w io.Writer, f Format) *StreamCollector {
	s := &StreamCollector{bw: bufio.NewWriter(w), format: f, buf: make([]byte, 0, 128)}
	if f == FormatCSV {
		_, s.err = s.bw.WriteString(csvHeader + "\n")
	}
	return s
}

// Attach subscribes the sink to a disk under the given device name and
// returns the unsubscribe function. Like Collector.Attach it composes with
// any other observers on the same disk.
func (s *StreamCollector) Attach(d *disk.Disk, dev string) func() {
	return d.Subscribe(func(c disk.Completion) { s.record(dev, c) })
}

// Len returns the number of records encoded so far.
func (s *StreamCollector) Len() int { return s.n }

// Err returns the first writer error, if any.
func (s *StreamCollector) Err() error { return s.err }

// Flush drains the internal writer buffer to the underlying writer.
func (s *StreamCollector) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}

// Close flushes the sink. The underlying writer, if it needs closing, is
// the caller's to close.
func (s *StreamCollector) Close() error { return s.Flush() }

func (s *StreamCollector) record(dev string, c disk.Completion) {
	if s.err != nil {
		return
	}
	op := byte('R')
	if c.Op == disk.Write {
		op = 'W'
	}
	b := s.buf[:0]
	if s.format == FormatCSV {
		b = append(b, dev...)
		b = append(b, ',', op, ',')
		b = strconv.AppendInt(b, c.Sector, 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(c.Count), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(c.Arrived), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(c.Done), 10)
		b = append(b, ',')
		b = append(b, c.Stage.String()...)
		b = append(b, '\n')
	} else {
		b = append(b, `{"dev":`...)
		b = strconv.AppendQuote(b, dev)
		b = append(b, `,"op":"`...)
		b = append(b, op, '"')
		b = append(b, `,"sector":`...)
		b = strconv.AppendInt(b, c.Sector, 10)
		b = append(b, `,"count":`...)
		b = strconv.AppendInt(b, int64(c.Count), 10)
		b = append(b, `,"arrived_ns":`...)
		b = strconv.AppendInt(b, int64(c.Arrived), 10)
		b = append(b, `,"done_ns":`...)
		b = strconv.AppendInt(b, int64(c.Done), 10)
		b = append(b, `,"stage":`...)
		b = strconv.AppendQuote(b, c.Stage.String())
		b = append(b, '}', '\n')
	}
	s.buf = b
	s.n++
	_, s.err = s.bw.Write(b)
}
