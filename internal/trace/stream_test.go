package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"iochar/internal/disk"
	"iochar/internal/iostat"
	"iochar/internal/sim"
)

// driveMixed issues a deterministic mixed read/write pattern (8 batches of
// 32 stage-tagged requests at pseudo-random sectors) and runs the sim to
// completion. Two invocations produce identical completion streams, which
// the simultaneous-observer tests below rely on.
func driveMixed(env *sim.Env, d *disk.Disk) {
	env.Go("io", func(pr *sim.Proc) {
		x := int64(12345)
		for b := 0; b < 8; b++ {
			var reqs []*disk.Request
			for i := 0; i < 32; i++ {
				x = (x*6364136223846793005 + 1442695040888963407) & (1<<62 - 1)
				op := disk.Read
				if (b+i)%3 == 0 {
					op = disk.Write
				}
				stage := disk.Stage((b + i) % disk.NumStages)
				reqs = append(reqs, d.SubmitStaged(op, x%(1<<23), 8, stage))
			}
			for _, r := range reqs {
				d.Wait(pr, r)
			}
			pr.Sleep(time.Millisecond)
		}
	})
	env.Run(0)
}

func mixedDisk() (*sim.Env, *disk.Disk) {
	env := sim.New(1)
	p := disk.SeagateST1000NM0011()
	p.Sectors = 1 << 24
	return env, disk.New(env, p)
}

func TestStreamCollectorMatchesWriteCSV(t *testing.T) {
	env, d := mixedDisk()
	c := NewCollector()
	c.Attach(d, "sda")
	var got bytes.Buffer
	s := NewStreamCollector(&got)
	s.Attach(d, "sda")
	driveMixed(env, d)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Len() == 0 || s.Len() != c.Len() {
		t.Fatalf("stream saw %d records, collector %d", s.Len(), c.Len())
	}
	var want bytes.Buffer
	if err := WriteCSV(&want, c.Records()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("streamed CSV differs from WriteCSV of the same records")
	}
	back, err := ReadCSV(&got)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, c.Records()) {
		t.Errorf("streamed CSV does not round-trip to the collected records")
	}
}

func TestStreamCollectorNDJSON(t *testing.T) {
	env, d := mixedDisk()
	c := NewCollector()
	c.Attach(d, "sda")
	var buf bytes.Buffer
	s := NewStreamCollectorFormat(&buf, FormatNDJSON)
	s.Attach(d, "sda")
	driveMixed(env, d)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != c.Len() {
		t.Fatalf("%d NDJSON lines, want %d", len(lines), c.Len())
	}
	for i, line := range lines {
		var obj struct {
			Dev       string `json:"dev"`
			Op        string `json:"op"`
			Sector    int64  `json:"sector"`
			Count     int    `json:"count"`
			ArrivedNs int64  `json:"arrived_ns"`
			DoneNs    int64  `json:"done_ns"`
			Stage     string `json:"stage"`
		}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		r := c.Records()[i]
		wantOp := "R"
		if r.Op == disk.Write {
			wantOp = "W"
		}
		if obj.Dev != r.Dev || obj.Op != wantOp || obj.Sector != r.Sector ||
			obj.Count != r.Count || obj.ArrivedNs != int64(r.Arrived) ||
			obj.DoneNs != int64(r.Done) || obj.Stage != r.Stage.String() {
			t.Fatalf("line %d = %+v, want record %+v", i+1, obj, r)
		}
	}
}

// TestSimultaneousStreamAndHistograms is the tentpole's acceptance check:
// a streaming trace sink and per-request histograms attached to the same
// disk in the same run each produce exactly what they produce alone.
func TestSimultaneousStreamAndHistograms(t *testing.T) {
	run := func(attach func(*disk.Disk)) {
		env, d := mixedDisk()
		attach(d)
		driveMixed(env, d)
	}

	var aloneCSV bytes.Buffer
	aloneStream := NewStreamCollector(&aloneCSV)
	run(func(d *disk.Disk) { aloneStream.Attach(d, "sda") })
	if err := aloneStream.Close(); err != nil {
		t.Fatal(err)
	}

	aloneHists := iostat.NewHists()
	run(func(d *disk.Disk) { d.Subscribe(aloneHists.Observe) })

	var bothCSV bytes.Buffer
	bothStream := NewStreamCollector(&bothCSV)
	bothHists := iostat.NewHists()
	run(func(d *disk.Disk) {
		bothStream.Attach(d, "sda")
		d.Subscribe(bothHists.Observe)
	})
	if err := bothStream.Close(); err != nil {
		t.Fatal(err)
	}

	if bothStream.Len() == 0 {
		t.Fatal("combined run streamed no records")
	}
	if uint64(bothStream.Len()) != bothHists.Requests {
		t.Errorf("stream saw %d requests, histograms %d", bothStream.Len(), bothHists.Requests)
	}
	if !bytes.Equal(bothCSV.Bytes(), aloneCSV.Bytes()) {
		t.Errorf("stream output with histograms attached differs from stream alone")
	}
	if !reflect.DeepEqual(bothHists, aloneHists) {
		t.Errorf("histograms with stream attached differ from histograms alone")
	}
}

// countingWriter discards its input, keeping only byte and line counts.
type countingWriter struct {
	bytes int64
	lines int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.bytes += int64(len(p))
	w.lines += bytes.Count(p, []byte{'\n'})
	return len(p), nil
}

// TestStreamCollectorBoundedMemory drives well over 1e5 completions through
// a stream sink and checks that the only retained state is the fixed encode
// buffer — the sink must not accumulate records the way Collector does.
func TestStreamCollectorBoundedMemory(t *testing.T) {
	const n = 150_000
	env := sim.New(1)
	p := disk.SeagateST1000NM0011()
	p.Sectors = 1 << 24
	p.NoMerge = true // every Submit must surface as its own completion
	d := disk.New(env, p)
	cw := &countingWriter{}
	s := NewStreamCollector(cw)
	s.Attach(d, "sda")
	env.Go("io", func(pr *sim.Proc) {
		done := 0
		for done < n {
			batch := 64
			if n-done < batch {
				batch = n - done
			}
			reqs := make([]*disk.Request, 0, batch)
			for i := 0; i < batch; i++ {
				sector := int64(done+i) * 16 % (1 << 24)
				reqs = append(reqs, d.Submit(disk.Read, sector, 1))
			}
			for _, r := range reqs {
				d.Wait(pr, r)
			}
			done += batch
		}
	})
	env.Run(0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != n {
		t.Fatalf("streamed %d records, want %d", s.Len(), n)
	}
	if w := cw.lines; w != n+1 { // header + one line per record
		t.Errorf("wrote %d lines, want %d", w, n+1)
	}
	if c := cap(s.buf); c > 1024 {
		t.Errorf("encode buffer grew to %d bytes over %d records; want O(1)", c, n)
	}
}

func BenchmarkStreamCollectorRecord(b *testing.B) {
	s := NewStreamCollector(&countingWriter{})
	c := disk.Completion{
		Op: disk.Write, Sector: 123456789, Count: 256, Stage: disk.StageSpill,
		Arrived: 1234 * time.Millisecond, Done: 1250 * time.Millisecond,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.record("slave-03.mr1", c)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}
