// Package trace provides block-level I/O tracing and replay — the
// blktrace-style methodology behind storage characterization studies. A
// Collector subscribes to one or more simulated disks and records every
// completed request (timestamp, device, op, sector, size, latency); traces
// serialize to a simple CSV and can be replayed through a fresh disk model
// with a different configuration, answering "what would this exact workload
// have done on a FIFO scheduler / without merging / on a different drive".
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"iochar/internal/disk"
	"iochar/internal/sim"
)

// Record is one completed block-layer request.
type Record struct {
	Dev     string
	Op      disk.Op
	Sector  int64
	Count   int
	Stage   disk.Stage    // pipeline stage that issued the request
	Arrived time.Duration // submission time
	Done    time.Duration // completion time
}

// Latency returns the request's residence time.
func (r Record) Latency() time.Duration { return r.Done - r.Arrived }

// Collector accumulates records in memory from subscribed disks. For long
// runs prefer StreamCollector, which writes records out as they complete
// instead of retaining them.
type Collector struct {
	recs []Record
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Attach subscribes the collector to a disk under the given device name and
// returns the unsubscribe function. Attaching does not displace other
// observers: any number of collectors, histogram monitors, and stream sinks
// can watch the same disk.
func (c *Collector) Attach(d *disk.Disk, dev string) func() {
	return d.Subscribe(func(cp disk.Completion) {
		c.recs = append(c.recs, Record{
			Dev: dev, Op: cp.Op, Sector: cp.Sector, Count: cp.Count,
			Stage: cp.Stage, Arrived: cp.Arrived, Done: cp.Done,
		})
	})
}

// Records returns the collected records ordered by completion time (the
// order they were observed).
func (c *Collector) Records() []Record { return c.recs }

// Len returns the number of collected records.
func (c *Collector) Len() int { return len(c.recs) }

// csvHeader is the column layout of a serialized trace. The stage column was
// added later; ReadCSV still accepts the older six-field layout.
const csvHeader = "dev,op,sector,count,arrived_ns,done_ns,stage"

// WriteCSV serializes records under the csvHeader layout.
func WriteCSV(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, csvHeader); err != nil {
		return err
	}
	for _, r := range recs {
		op := "R"
		if r.Op == disk.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%s,%s,%d,%d,%d,%d,%s\n",
			r.Dev, op, r.Sector, r.Count, int64(r.Arrived), int64(r.Done), r.Stage); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. The header line is recognized
// by content, so headerless traces (a common product of grep/split
// pipelines) keep their first record. Records whose completion precedes
// their arrival are rejected: no replay or latency analysis can make sense
// of them.
func ReadCSV(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "dev,op,") {
			continue // blank or header
		}
		f := strings.Split(text, ",")
		if len(f) != 6 && len(f) != 7 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 6 or 7", line, len(f))
		}
		var rec Record
		rec.Dev = f[0]
		switch f[1] {
		case "R":
			rec.Op = disk.Read
		case "W":
			rec.Op = disk.Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, f[1])
		}
		var err error
		if rec.Sector, err = strconv.ParseInt(f[2], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: sector: %v", line, err)
		}
		if rec.Count, err = strconv.Atoi(f[3]); err != nil {
			return nil, fmt.Errorf("trace: line %d: count: %v", line, err)
		}
		a, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: arrived: %v", line, err)
		}
		d, err := strconv.ParseInt(f[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: done: %v", line, err)
		}
		if d < a {
			return nil, fmt.Errorf("trace: line %d: done %d precedes arrived %d", line, d, a)
		}
		if len(f) == 7 {
			if rec.Stage, err = disk.ParseStage(f[6]); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", line, err)
			}
		}
		rec.Arrived, rec.Done = time.Duration(a), time.Duration(d)
		out = append(out, rec)
	}
	return out, sc.Err()
}

// ReplayResult summarizes a replay.
type ReplayResult struct {
	Requests  int
	Elapsed   time.Duration // virtual time from first submission to last completion
	MeanAwait time.Duration
	TotalBusy time.Duration
	DiskStats disk.Stats
}

// Replay re-issues one device's requests against a fresh disk with params
// p, preserving the original inter-arrival times (open-loop replay, the
// standard trace-replay methodology). Records for other devices are
// ignored. It returns the replayed timing summary.
func Replay(recs []Record, dev string, p disk.Params) (*ReplayResult, error) {
	var mine []Record
	for _, r := range recs {
		if r.Dev == dev {
			mine = append(mine, r)
		}
	}
	if len(mine) == 0 {
		return nil, fmt.Errorf("trace: no records for device %q", dev)
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i].Arrived < mine[j].Arrived })
	base := mine[0].Arrived

	// Validate before starting the simulation: a request that cannot fit on
	// the replay disk at all is a caller error, not something to clamp.
	for _, r := range mine {
		if int64(r.Count) > p.Sectors {
			return nil, fmt.Errorf("trace: request [%d,+%d) larger than replay disk (%d sectors)", r.Sector, r.Count, p.Sectors)
		}
	}

	env := sim.New(1)
	d := disk.New(env, p)
	var reqs []*disk.Request
	env.Go("replay", func(pr *sim.Proc) {
		for _, r := range mine {
			pr.Sleep(r.Arrived - base - (pr.Now() - 0))
			sector, count := r.Sector, r.Count
			if sector+int64(count) > p.Sectors {
				// Wrap out-of-range sectors onto the smaller replay disk.
				// The modulus p.Sectors-count+1 is always >= 1 (count <=
				// Sectors was checked above), so a request exactly the size
				// of the disk lands at sector 0 rather than dividing by
				// zero, and nothing ever goes negative.
				sector = sector % (p.Sectors - int64(count) + 1)
			}
			reqs = append(reqs, d.SubmitStaged(r.Op, sector, count, r.Stage))
		}
		for _, rq := range reqs {
			d.Wait(pr, rq)
		}
	})
	end, err := env.Run(0)
	if err != nil {
		return nil, err
	}

	st := d.Stats()
	res := &ReplayResult{
		Requests:  len(mine),
		Elapsed:   end,
		TotalBusy: st.IOTicks,
		DiskStats: st,
	}
	if n := st.ReadsCompleted + st.WritesCompleted; n > 0 {
		res.MeanAwait = (st.TimeReading + st.TimeWriting) / time.Duration(n)
	}
	return res, nil
}

// Devices returns the distinct device names in a trace, sorted.
func Devices(recs []Record) []string {
	set := map[string]bool{}
	for _, r := range recs {
		set[r.Dev] = true
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
