package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"iochar/internal/disk"
	"iochar/internal/sim"
)

func collectSome(t *testing.T) []Record {
	t.Helper()
	env := sim.New(1)
	p := disk.SeagateST1000NM0011()
	p.Sectors = 1 << 24
	d := disk.New(env, p)
	c := NewCollector()
	c.Attach(d, "sda")
	env.Go("io", func(pr *sim.Proc) {
		d.Do(pr, disk.Read, 0, 256)
		d.Do(pr, disk.Write, 1<<20, 64)
		d.Do(pr, disk.Read, 1<<21, 8)
	})
	env.Run(0)
	return c.Records()
}

func TestCollectorObservesCompletions(t *testing.T) {
	recs := collectSome(t)
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Dev != "sda" {
			t.Errorf("rec %d dev = %q", i, r.Dev)
		}
		if r.Done <= r.Arrived {
			t.Errorf("rec %d has non-positive latency", i)
		}
	}
	if recs[1].Op != disk.Write || recs[1].Count != 64 {
		t.Errorf("rec 1 = %+v, want the 64-sector write", recs[1])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := collectSome(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip: %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"dev,op,sector,count,arrived_ns,done_ns\nsda,X,0,1,0,1\n",
		"dev,op,sector,count,arrived_ns,done_ns\nsda,R,zero,1,0,1\n",
		"dev,op,sector,count,arrived_ns,done_ns\nsda,R,0,1,0\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestReplayPreservesWorkVolume(t *testing.T) {
	recs := collectSome(t)
	p := disk.SeagateST1000NM0011()
	p.Sectors = 1 << 24
	res, err := Replay(recs, "sda", p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 3 {
		t.Errorf("Requests = %d, want 3", res.Requests)
	}
	if got := res.DiskStats.SectorsRead + res.DiskStats.SectorsWritten; got != 256+64+8 {
		t.Errorf("sectors = %d, want 328", got)
	}
	if res.Elapsed <= 0 || res.MeanAwait <= 0 {
		t.Error("empty timing")
	}
}

func TestReplayUnknownDevice(t *testing.T) {
	if _, err := Replay(collectSome(t), "nvme9", disk.SeagateST1000NM0011()); err == nil {
		t.Error("want error")
	}
}

func TestReplaySchedulerComparison(t *testing.T) {
	// Build a seek-heavy trace, then replay under LOOK and FIFO: the
	// elevator must not be slower.
	env := sim.New(3)
	p := disk.SeagateST1000NM0011()
	p.Sectors = 1 << 24
	d := disk.New(env, p)
	c := NewCollector()
	c.Attach(d, "sda")
	env.Go("io", func(pr *sim.Proc) {
		var reqs []*disk.Request
		for i := 0; i < 64; i++ {
			reqs = append(reqs, d.Submit(disk.Read, env.Rand().Int63n(1<<23), 8))
		}
		for _, r := range reqs {
			d.Wait(pr, r)
		}
	})
	env.Run(0)

	look := p
	look.Scheduler = disk.SchedLOOK
	fifo := p
	fifo.Scheduler = disk.SchedFIFO
	rl, err := Replay(c.Records(), "sda", look)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Replay(c.Records(), "sda", fifo)
	if err != nil {
		t.Fatal(err)
	}
	if rl.TotalBusy > rf.TotalBusy {
		t.Errorf("LOOK busy %v exceeds FIFO %v on a seek-heavy trace", rl.TotalBusy, rf.TotalBusy)
	}
}

func TestDevices(t *testing.T) {
	recs := []Record{{Dev: "b"}, {Dev: "a"}, {Dev: "b"}}
	got := Devices(recs)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Devices = %v", got)
	}
}

// Property: CSV round-trips arbitrary well-formed records exactly.
func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		var recs []Record
		for i, v := range raw {
			op := disk.Read
			if v%2 == 1 {
				op = disk.Write
			}
			recs = append(recs, Record{
				Dev:     "dev" + string(rune('0'+i%3)),
				Op:      op,
				Sector:  int64(v) * 7,
				Count:   int(v%1024) + 1,
				Arrived: time.Duration(v) * time.Microsecond,
				Done:    time.Duration(v)*time.Microsecond + time.Millisecond,
			})
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, recs); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReadCSVHeaderless(t *testing.T) {
	recs := collectSome(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	_, body, ok := strings.Cut(buf.String(), "\n")
	if !ok {
		t.Fatal("no header line")
	}
	got, err := ReadCSV(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("headerless trace: %d records, want %d (first data line swallowed?)", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("rec %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestReadCSVLegacySixFields(t *testing.T) {
	// Pre-stage traces have six columns; they must parse with StageNone.
	in := "dev,op,sector,count,arrived_ns,done_ns\nsda,W,128,64,1000,2000\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("%d records, want 1", len(got))
	}
	want := Record{Dev: "sda", Op: disk.Write, Sector: 128, Count: 64,
		Stage: disk.StageNone, Arrived: 1000, Done: 2000}
	if got[0] != want {
		t.Errorf("got %+v, want %+v", got[0], want)
	}
}

func TestReadCSVRejectsDoneBeforeArrived(t *testing.T) {
	in := "sda,R,0,8,2000,1000,hdfs\n"
	if _, err := ReadCSV(strings.NewReader(in)); err == nil {
		t.Error("want error for done < arrived")
	} else if !strings.Contains(err.Error(), "precedes") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestReplayRequestFillsWholeDisk(t *testing.T) {
	// A request exactly the size of the replay disk used to divide by zero
	// in the wrap modulus; it must clamp to sector 0 and replay cleanly.
	recs := []Record{
		{Dev: "sda", Op: disk.Read, Sector: 4096, Count: 1024, Arrived: 0, Done: time.Millisecond},
		{Dev: "sda", Op: disk.Write, Sector: 9000, Count: 512, Arrived: time.Millisecond, Done: 2 * time.Millisecond},
	}
	p := disk.SeagateST1000NM0011()
	p.Sectors = 1024
	res, err := Replay(recs, "sda", p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 2 {
		t.Errorf("Requests = %d, want 2", res.Requests)
	}
	if got := res.DiskStats.SectorsRead + res.DiskStats.SectorsWritten; got != 1024+512 {
		t.Errorf("sectors moved = %d, want 1536", got)
	}
}

func TestReplayOversizedRequestErrors(t *testing.T) {
	recs := []Record{
		{Dev: "sda", Op: disk.Read, Sector: 0, Count: 2048, Arrived: 0, Done: time.Millisecond},
	}
	p := disk.SeagateST1000NM0011()
	p.Sectors = 1024
	if _, err := Replay(recs, "sda", p); err == nil {
		t.Error("want error for request larger than the replay disk")
	} else if !strings.Contains(err.Error(), "larger than replay disk") {
		t.Errorf("unhelpful error: %v", err)
	}
}
