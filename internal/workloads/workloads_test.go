package workloads

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"iochar/internal/cluster"
	"iochar/internal/datagen"
	"iochar/internal/hdfs"
	"iochar/internal/mapred"
	"iochar/internal/sim"
)

type rig struct {
	env *sim.Env
	cl  *cluster.Cluster
	fs  *hdfs.FS
	rt  *mapred.Runtime
}

func newRig() *rig {
	env := sim.New(1)
	cl, err := cluster.New(env, cluster.DefaultHardware(16384), 4)
	if err != nil {
		panic(err)
	}
	fs := hdfs.New(env, hdfs.DefaultConfig(16384), cl.Net, cl.Slaves)
	cfg := mapred.DefaultConfig(16384)
	cfg.MapSlots, cfg.ReduceSlots = 4, 2
	rt, err := mapred.New(env, cl, fs, cl.Net, cfg)
	if err != nil {
		panic(err)
	}
	return &rig{env: env, cl: cl, fs: fs, rt: rt}
}

// runWorkload prepares and runs a workload, returning its results.
func (r *rig) runWorkload(t *testing.T, w Workload, bytes int64) []*mapred.Result {
	t.Helper()
	w.Prepare(r.fs, r.cl, bytes, 42)
	var results []*mapred.Result
	var err error
	r.env.Go("driver", func(p *sim.Proc) {
		results, err = w.Run(p, r.rt, r.fs, r.cl)
	})
	r.env.Run(0)
	if err != nil {
		t.Fatalf("%s failed: %v", w.Key(), err)
	}
	if len(results) == 0 {
		t.Fatalf("%s returned no results", w.Key())
	}
	return results
}

// readKVOutput collects key/value pairs from a part-file directory.
func (r *rig) readKVOutput(t *testing.T, dir string) [][2][]byte {
	t.Helper()
	var out [][2][]byte
	r.env.Go("reader", func(p *sim.Proc) {
		for _, path := range r.fs.List(dir + "/part-r-") {
			rd, err := r.fs.Open(path, r.cl.Master.Name)
			if err != nil {
				t.Errorf("open %s: %v", path, err)
				return
			}
			data, err := rd.ReadAt(p, 0, rd.Size())
			if err != nil {
				panic(err)
			}
			for len(data) > 0 {
				k, v, rest := mapred.NextKV(data)
				out = append(out, [2][]byte{append([]byte(nil), k...), append([]byte(nil), v...)})
				data = rest
			}
		}
	})
	r.env.Run(0)
	return out
}

func TestByKeyAndAll(t *testing.T) {
	for _, k := range []string{"TS", "AGG", "KM", "PR", "terasort", "kmeans"} {
		if _, err := ByKey(k); err != nil {
			t.Errorf("ByKey(%q): %v", k, err)
		}
	}
	if _, err := ByKey("nope"); err == nil {
		t.Error("want error for unknown key")
	}
	if got := len(All()); got != 4 {
		t.Errorf("All() = %d workloads, want 4", got)
	}
	keys := map[string]bool{}
	for _, w := range All() {
		keys[w.Key()] = true
		if w.PaperInputBytes() <= 0 {
			t.Errorf("%s: non-positive paper input", w.Key())
		}
	}
	for _, k := range []string{"TS", "AGG", "KM", "PR"} {
		if !keys[k] {
			t.Errorf("All() missing %s", k)
		}
	}
}

func TestTeraSortProducesGloballySortedOutput(t *testing.T) {
	r := newRig()
	ts := NewTeraSort()
	results := r.runWorkload(t, ts, 300_000)
	res := results[0]
	if res.MapInputRecords == 0 {
		t.Fatal("no input records")
	}
	if res.ReduceOutputRecords != res.MapInputRecords {
		t.Errorf("records out %d != in %d (sort must be a permutation)", res.ReduceOutputRecords, res.MapInputRecords)
	}
	// Outputs concatenated in partition order must be globally sorted.
	var prev []byte
	var total int64
	r.env.Go("verify", func(p *sim.Proc) {
		for _, path := range r.fs.List(outputDir("TS") + "/part-r-") {
			rd, err := r.fs.Open(path, r.cl.Master.Name)
			if err != nil {
				t.Error(err)
				return
			}
			data, err := rd.ReadAt(p, 0, rd.Size())
			if err != nil {
				panic(err)
			}
			for len(data) > 0 {
				k, _, rest := mapred.NextKV(data)
				if prev != nil && bytes.Compare(prev, k) > 0 {
					t.Errorf("output not globally sorted: %q after %q", k, prev)
					return
				}
				prev = append(prev[:0], k...)
				total++
				data = rest
			}
		}
	})
	r.env.Run(0)
	if total != res.ReduceOutputRecords {
		t.Errorf("verified %d records, counters claim %d", total, res.ReduceOutputRecords)
	}
	// TeraSort moves its whole input through the shuffle.
	if res.MapOutputBytes < res.MapInputBytes*9/10 {
		t.Errorf("map output %d far below input %d; TeraSort should shuffle everything", res.MapOutputBytes, res.MapInputBytes)
	}
}

func TestAggregationMatchesSerialReference(t *testing.T) {
	r := newRig()
	agg := NewAggregation()
	results := r.runWorkload(t, agg, 300_000)

	// Serial reference over the same generated parts.
	want := map[string]int64{}
	gen := datagen.OrderGen{Seed: 42}
	per := int64(300_000) / int64(len(r.cl.Slaves))
	for i := range r.cl.Slaves {
		datagen.Lines(gen.Part(i, per), func(line []byte) {
			f := strings.Split(string(line), "|")
			price, _ := strconv.Atoi(f[4])
			qty, _ := strconv.Atoi(f[5])
			want[f[3]] += int64(price * qty)
		})
	}
	got := map[string]int64{}
	for _, kv := range r.readKVOutput(t, outputDir("AGG")) {
		n, err := strconv.ParseInt(string(kv[1]), 10, 64)
		if err != nil {
			t.Fatalf("bad sum %q", kv[1])
		}
		if _, dup := got[string(kv[0])]; dup {
			t.Errorf("category %s appears twice", kv[0])
		}
		got[string(kv[0])] = n
	}
	if len(got) != len(want) {
		t.Errorf("categories: got %d, want %d", len(got), len(want))
	}
	for cat, sum := range want {
		if got[cat] != sum {
			t.Errorf("category %s: got %d, want %d", cat, got[cat], sum)
		}
	}
	// AGG output is tiny relative to input.
	res := results[0]
	if res.ReduceOutputBytes*10 > res.MapInputBytes {
		t.Errorf("AGG output %d not ≪ input %d", res.ReduceOutputBytes, res.MapInputBytes)
	}
}

func TestKMeansIterationsConvergeAndClusterPassLabelsAll(t *testing.T) {
	r := newRig()
	km := NewKMeans()
	km.Iterations = 2
	results := r.runWorkload(t, km, 300_000)
	if len(results) != km.Iterations+1 {
		t.Fatalf("got %d job results, want %d iterations + clustering", len(results), km.Iterations+1)
	}
	iter, clusterRes := results[0], results[len(results)-1]
	// Iteration output (centroid partials) is tiny; clustering output ~ input.
	if iter.ReduceOutputBytes >= clusterRes.ReduceOutputBytes {
		t.Errorf("iteration output %d should be ≪ clustering output %d",
			iter.ReduceOutputBytes, clusterRes.ReduceOutputBytes)
	}
	if clusterRes.ReduceOutputBytes < clusterRes.MapInputBytes/2 {
		t.Errorf("clustering output %d should be near input %d (labels every point)",
			clusterRes.ReduceOutputBytes, clusterRes.MapInputBytes)
	}
	// All labels parse and stay in range.
	labels := map[int]int64{}
	for _, kv := range r.readKVOutput(t, outputDir("KM")) {
		c, err := strconv.Atoi(string(kv[0]))
		if err != nil || c < 0 || c >= km.K {
			t.Fatalf("bad cluster label %q", kv[0])
		}
		labels[c]++
	}
	if len(labels) < 2 {
		t.Errorf("all points in %d cluster(s); clustering degenerate", len(labels))
	}
	var labelled int64
	for _, n := range labels {
		labelled += n
	}
	if labelled != clusterRes.MapInputRecords {
		t.Errorf("labelled %d of %d points", labelled, clusterRes.MapInputRecords)
	}
}

func TestPageRankRanksFavorHighInDegree(t *testing.T) {
	r := newRig()
	pr := NewPageRank()
	pr.Iterations = 2
	r.runWorkload(t, pr, 200_000)

	// Serial in-degree reference from the same generated parts.
	indeg := map[string]int{}
	gen := datagen.GraphGen{Seed: 42}
	per := int64(200_000) / int64(len(r.cl.Slaves))
	for i := range r.cl.Slaves {
		datagen.Lines(gen.Part(i, per), func(line []byte) {
			f := strings.Split(string(line), "\t")
			indeg[f[1]]++
		})
	}
	var ranks map[string]float64
	r.env.Go("reader", func(p *sim.Proc) {
		ranks = pr.ReadRanks(p, r.fs, r.cl)
	})
	r.env.Run(0)
	if len(ranks) == 0 {
		t.Fatal("no ranks")
	}
	var sum float64
	for node, rank := range ranks {
		if rank <= 0 {
			t.Fatalf("non-positive rank %f for %s", rank, node)
		}
		sum += rank
	}
	mean := sum / float64(len(ranks))
	// The highest in-degree vertex should be well above the mean rank.
	best, bestDeg := "", 0
	for n, d := range indeg {
		if d > bestDeg {
			best, bestDeg = n, d
		}
	}
	if ranks[best] < 2*mean {
		t.Errorf("hub %s (in-degree %d) rank %f not ≫ mean %f", best, bestDeg, ranks[best], mean)
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	run := func() string {
		r := newRig()
		agg := NewAggregation()
		r.runWorkload(t, agg, 150_000)
		kvs := r.readKVOutput(t, outputDir("AGG"))
		var sb strings.Builder
		var lines []string
		for _, kv := range kvs {
			lines = append(lines, fmt.Sprintf("%s=%s", kv[0], kv[1]))
		}
		sort.Strings(lines)
		for _, l := range lines {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	if run() != run() {
		t.Error("AGG output differs across identical runs")
	}
}

func TestRunWithoutPrepareErrors(t *testing.T) {
	r := newRig()
	for _, w := range All() {
		var err error
		r.env.Go("driver", func(p *sim.Proc) {
			_, err = w.Run(p, r.rt, r.fs, r.cl)
		})
		r.env.Run(0)
		if err == nil {
			t.Errorf("%s: Run before Prepare should error", w.Key())
		}
	}
}

func TestJoinMatchesSerialReference(t *testing.T) {
	r := newRig()
	j := NewJoin()
	results := r.runWorkload(t, j, 400_000)
	res := results[0]
	if res.MapInputRecords == 0 || res.ReduceOutputRecords == 0 {
		t.Fatalf("empty join: in=%d out=%d", res.MapInputRecords, res.ReduceOutputRecords)
	}

	// Serial reference: regenerate both tables and join them directly.
	frac := 1.0 / 16
	per := int64(float64(400_000)*(1-frac)) / int64(len(r.cl.Slaves))
	dimPer := int64(float64(400_000)*frac) / int64(len(r.cl.Slaves))
	region := map[string]string{}
	gen := datagen.UserGen{Seed: 42}
	for i := range r.cl.Slaves {
		datagen.Lines(gen.Part(i, dimPer), func(line []byte) {
			f := strings.Split(string(line), "|")
			region[f[0]] = f[2]
		})
	}
	orders := datagen.OrderGen{Seed: 42}
	var wantRows int64
	for i := range r.cl.Slaves {
		datagen.Lines(orders.Part(i, per), func(line []byte) {
			f := strings.Split(string(line), "|")
			if _, ok := region[f[1]]; ok {
				wantRows++
			}
		})
	}
	if wantRows == 0 {
		t.Fatal("reference join empty; generators out of sync")
	}
	var gotRows int64
	for _, kv := range r.readKVOutput(t, outputDir("JOIN")) {
		f := strings.Split(string(kv[1]), "|")
		if len(f) != 4 { // name|region|price|qty
			t.Fatalf("bad joined row %q", kv[1])
		}
		if want := region[string(kv[0])]; f[1] != want {
			t.Fatalf("user %s joined to region %s, want %s", kv[0], f[1], want)
		}
		gotRows++
	}
	if gotRows != wantRows {
		t.Errorf("joined rows = %d, want %d", gotRows, wantRows)
	}
}

func TestExtensionsRegistry(t *testing.T) {
	ext := Extensions()
	if len(ext) != 1 || ext[0].Key() != "JOIN" {
		t.Errorf("Extensions = %v", ext)
	}
	if _, err := ByKey("JOIN"); err != nil {
		t.Error(err)
	}
	// All() must stay the paper's four.
	if len(All()) != 4 {
		t.Errorf("All() = %d workloads", len(All()))
	}
}
