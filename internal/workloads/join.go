package workloads

import (
	"fmt"

	"iochar/internal/cluster"
	"iochar/internal/datagen"
	"iochar/internal/hdfs"
	"iochar/internal/mapred"
	"iochar/internal/sim"
)

// Join is the paper's other Hive query ("SQL operations, such as join,
// aggregation and select"): a repartition equi-join of the order fact
// table against a user dimension table on user id, emitting
// (user, region, revenue) rows. It is included as an extension workload —
// the paper characterizes only Aggregation of the two — and exercises an
// I/O pattern neither AGG nor TS has: two heterogeneous inputs shuffled
// into the same reduce space, with output between AGG's (tiny) and TS's
// (everything).
type Join struct {
	seed int64
	// FactFraction sets the dimension table's size as a fraction of the
	// fact table (default 1/16).
	FactFraction float64
}

// NewJoin returns the workload.
func NewJoin() *Join { return &Join{seed: 1, FactFraction: 1.0 / 16} }

// Key implements Workload.
func (*Join) Key() string { return "JOIN" }

// Name implements Workload.
func (*Join) Name() string { return "Hive Join (extension)" }

// PaperInputBytes implements Workload: sized like Aggregation's table.
func (*Join) PaperInputBytes() int64 { return 512 << 30 }

// Prepare implements Workload: the fact table under in/fact and the
// dimension table under in/dim.
func (j *Join) Prepare(fs *hdfs.FS, cl *cluster.Cluster, total int64, seed int64) {
	j.seed = seed
	frac := j.FactFraction
	if frac <= 0 || frac >= 1 {
		frac = 1.0 / 16
	}
	orders := datagen.OrderGen{Seed: seed}
	users := datagen.UserGen{Seed: seed}
	loadParts(fs, cl, inputDir(j.Key())+"/fact", int64(float64(total)*(1-frac)), orders.Part)
	loadParts(fs, cl, inputDir(j.Key())+"/dim", int64(float64(total)*frac), users.Part)
}

// tag bytes distinguishing the two sides in the shuffle.
const (
	tagDim  = 'D'
	tagFact = 'F'
)

// Run implements Workload: one repartition-join job.
func (j *Join) Run(p *sim.Proc, rt *mapred.Runtime, fs *hdfs.FS, cl *cluster.Cluster) ([]*mapred.Result, error) {
	facts := fs.List(inputDir(j.Key()) + "/fact/")
	dims := fs.List(inputDir(j.Key()) + "/dim/")
	if len(facts) == 0 || len(dims) == 0 {
		return nil, fmt.Errorf("join: not prepared")
	}
	cleanOutputs(fs, outputDir(j.Key()))

	// The mapper distinguishes sides by schema: dimension rows have three
	// fields, fact rows six (a Hive multi-input job would use the split's
	// source path; schema sniffing keeps the Job single-mapper). The scratch
	// buffers are rebuilt from call-local values right before each emit,
	// which copies them before the simulation can switch tasks.
	var tagBuf []byte
	mapper := mapred.MapperFunc(func(rec []byte, emit func(k, v []byte)) {
		var pos [5]int // offsets of the first five separators
		sep := 0
		for i, b := range rec {
			if b == '|' {
				if sep < 5 {
					pos[sep] = i
				}
				sep++
			}
		}
		switch sep {
		case 2: // user|name|region
			tagBuf = append(tagBuf[:0], tagDim)
			tagBuf = append(tagBuf, rec[pos[0]+1:]...)
			emit(rec[:pos[0]], tagBuf)
		case 5: // order|user|item|category|price|quantity
			tagBuf = append(tagBuf[:0], tagFact)
			tagBuf = append(tagBuf, rec[pos[3]+1:]...) // price|quantity
			emit(rec[pos[0]+1:pos[1]], tagBuf)
		}
	})
	var rowBuf []byte
	reducer := mapred.ReducerFunc(func(k []byte, vals [][]byte, emit func(k, v []byte)) {
		var dim []byte
		for _, v := range vals {
			if v[0] == tagDim {
				dim = v[1:]
				break
			}
		}
		if dim == nil {
			return // no matching user: inner join drops the rows
		}
		for _, v := range vals {
			if v[0] != tagFact {
				continue
			}
			rowBuf = append(rowBuf[:0], dim...)
			rowBuf = append(rowBuf, '|')
			rowBuf = append(rowBuf, v[1:]...)
			emit(k, rowBuf)
		}
	})
	job := &mapred.Job{
		Name:       "hive-join",
		Input:      append(append([]string(nil), facts...), dims...),
		Output:     outputDir(j.Key()),
		Format:     mapred.LineFormat{},
		Mapper:     mapper,
		Reducer:    reducer,
		NumReduces: defaultReduces(cl),
		Costs: mapred.CostModel{
			// Hive-grade SerDe costs, as for Aggregation.
			MapNsPerRecord:    1100,
			MapNsPerByte:      40,
			ReduceNsPerRecord: 300,
			ReduceNsPerByte:   4,
		},
	}
	res, err := rt.Run(p, job)
	if err != nil {
		return nil, err
	}
	return []*mapred.Result{res}, nil
}
