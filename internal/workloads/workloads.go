// Package workloads implements the paper's four BigDataBench workloads as
// real MapReduce programs over the simulated cluster:
//
//	TS  — TeraSort: total-order sort of 100-byte records (I/O-bound).
//	AGG — Hive Aggregation: group-by revenue aggregation of an e-commerce
//	      order table (CPU-bound).
//	KM  — K-means: iterative centroid refinement (CPU-bound) followed by a
//	      clustering/labelling pass (I/O-bound), as in Table 3.
//	PR  — PageRank: adjacency construction plus power iterations
//	      (CPU-bound).
//
// Each workload carries a CostModel calibrated so its bottleneck class
// matches the paper's Table 3 on the simulated hardware: with 8 map slots
// and 12 cores per node, a map-side CPU cost above ~26 ns/byte starves the
// three HDFS disks (CPU-bound), while costs of a few ns/byte leave the
// disks saturated (I/O-bound).
package workloads

import (
	"fmt"
	"unsafe"

	"iochar/internal/cluster"
	"iochar/internal/hdfs"
	"iochar/internal/mapred"
	"iochar/internal/sim"
)

// bstr views b as a string without copying, for strconv parse calls on the
// per-record hot path (string(b) would allocate per record). The callee must
// not retain the string; strconv parsers only do so inside returned errors,
// which the callers treat as malformed-input dead ends.
func bstr(b []byte) string { return unsafe.String(unsafe.SliceData(b), len(b)) }

// Workload is one benchmark: input preparation plus a job sequence.
type Workload interface {
	// Key is the paper's abbreviation: TS, AGG, KM, PR.
	Key() string
	// Name is the full workload name.
	Name() string
	// PaperInputBytes is the unscaled input volume attributed to the
	// workload (Table 3; where the table is ambiguous DESIGN.md records
	// the assumption).
	PaperInputBytes() int64
	// Prepare generates the scaled input and loads it into HDFS instantly
	// (setup is excluded from measurement, as in the paper).
	Prepare(fs *hdfs.FS, cl *cluster.Cluster, bytes int64, seed int64)
	// Run executes the workload's job sequence and returns per-job results.
	Run(p *sim.Proc, rt *mapred.Runtime, fs *hdfs.FS, cl *cluster.Cluster) ([]*mapred.Result, error)
}

// ByKey returns the workload for a paper abbreviation.
func ByKey(key string) (Workload, error) {
	switch key {
	case "TS", "ts", "terasort":
		return NewTeraSort(), nil
	case "AGG", "agg", "aggregation":
		return NewAggregation(), nil
	case "KM", "km", "kmeans":
		return NewKMeans(), nil
	case "PR", "pr", "pagerank":
		return NewPageRank(), nil
	case "JOIN", "join":
		return NewJoin(), nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (want TS, AGG, KM, PR or JOIN)", key)
}

// All returns the four paper workloads in the paper's figure order.
// Extension workloads (Join) are reachable by key but excluded here so the
// figure/table harness stays faithful to the paper.
func All() []Workload {
	return []Workload{NewAggregation(), NewTeraSort(), NewKMeans(), NewPageRank()}
}

// Extensions returns the workloads beyond the paper's four.
func Extensions() []Workload {
	return []Workload{NewJoin()}
}

// inputDir and outputDir name the HDFS layout per workload.
func inputDir(key string) string  { return "/bench/" + key + "/in" }
func outputDir(key string) string { return "/bench/" + key + "/out" }

// loadParts spreads generated parts across the slaves: one part per slave,
// sized to total/nslaves, mirroring a parallel generation job whose outputs
// are local-first.
func loadParts(fs *hdfs.FS, cl *cluster.Cluster, dir string, total int64, gen func(part int, size int64) []byte) {
	n := len(cl.Slaves)
	per := total / int64(n)
	if per < 1 {
		per = 1
	}
	for i, s := range cl.Slaves {
		fs.Load(fmt.Sprintf("%s/part-%05d", dir, i), s.Name, gen(i, per))
	}
}

// defaultReduces sizes a job's reduce count: Hadoop's rule of thumb of a
// small multiple of the cluster's reduce-slot capacity. Held constant
// across slot configurations so output layout is comparable.
func defaultReduces(cl *cluster.Cluster) int { return 2 * len(cl.Slaves) }

// cleanOutputs removes a directory's part files between runs.
func cleanOutputs(fs *hdfs.FS, dir string) {
	for _, p := range fs.List(dir) {
		fs.Delete(p)
	}
}
