package workloads

import (
	"bytes"
	"fmt"
	"sort"

	"iochar/internal/cluster"
	"iochar/internal/datagen"
	"iochar/internal/hdfs"
	"iochar/internal/mapred"
	"iochar/internal/sim"
)

// TeraSort is Jim Gray's sort benchmark as shipped with Hadoop/BigDataBench:
// sample the key space, build a total-order partitioner, then sort via the
// framework's shuffle with identity map and reduce functions. Its map-side
// CPU cost is tiny, so the job is bounded by disk and network — the paper's
// I/O-bound classification, and the workload with the heaviest intermediate
// (MapReduce-disk) traffic because map output equals the full input.
type TeraSort struct {
	seed int64
}

// NewTeraSort returns the workload.
func NewTeraSort() *TeraSort { return &TeraSort{seed: 1} }

// Key implements Workload.
func (*TeraSort) Key() string { return "TS" }

// Name implements Workload.
func (*TeraSort) Name() string { return "TeraSort" }

// PaperInputBytes implements Workload: Table 3 gives TeraSort 1 TB.
func (*TeraSort) PaperInputBytes() int64 { return 1 << 40 }

// Prepare implements Workload.
func (t *TeraSort) Prepare(fs *hdfs.FS, cl *cluster.Cluster, total int64, seed int64) {
	t.seed = seed
	gen := datagen.TeraGen{Seed: seed}
	loadParts(fs, cl, inputDir(t.Key()), total, gen.Part)
}

// sampleSplitters reads a prefix of each input file and derives r-1 key cut
// points, exactly as TeraSort's input sampler does (the sampling I/O is
// part of the measured run, as in the real program).
func sampleSplitters(p *sim.Proc, fs *hdfs.FS, inputs []string, client string, r int) ([][]byte, error) {
	const perFile = 100 * datagen.RecordSize
	var keys [][]byte
	for _, path := range inputs {
		rd, err := fs.Open(path, client)
		if err != nil {
			return nil, err
		}
		data, err := rd.ReadAt(p, 0, perFile)
		if err != nil {
			return nil, err
		}
		for off := 0; off+datagen.RecordSize <= len(data); off += datagen.RecordSize {
			keys = append(keys, append([]byte(nil), datagen.Key(data, off)...))
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("terasort: no sample keys from %d inputs", len(inputs))
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	splitters := make([][]byte, 0, r-1)
	for i := 1; i < r; i++ {
		splitters = append(splitters, keys[i*len(keys)/r])
	}
	return splitters, nil
}

// totalOrderPartition returns a partitioner routing keys by binary search
// over the splitters, so partition i holds keys <= all of partition i+1 —
// concatenated reduce outputs are globally sorted.
func totalOrderPartition(splitters [][]byte) mapred.Partitioner {
	return func(key []byte, n int) int {
		lo, hi := 0, len(splitters)
		for lo < hi {
			mid := (lo + hi) / 2
			if bytes.Compare(key, splitters[mid]) < 0 {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo >= n {
			lo = n - 1
		}
		return lo
	}
}

// Run implements Workload.
func (t *TeraSort) Run(p *sim.Proc, rt *mapred.Runtime, fs *hdfs.FS, cl *cluster.Cluster) ([]*mapred.Result, error) {
	inputs := fs.List(inputDir(t.Key()) + "/")
	if len(inputs) == 0 {
		return nil, fmt.Errorf("terasort: not prepared")
	}
	cleanOutputs(fs, outputDir(t.Key()))
	r := defaultReduces(cl)
	splitters, err := sampleSplitters(p, fs, inputs, cl.Master.Name, r)
	if err != nil {
		return nil, err
	}
	job := &mapred.Job{
		Name:   "terasort",
		Input:  inputs,
		Output: outputDir(t.Key()),
		Format: mapred.FixedFormat{Size: datagen.RecordSize},
		Mapper: mapred.MapperFunc(func(rec []byte, emit func(k, v []byte)) {
			emit(rec[:datagen.KeySize], rec[datagen.KeySize:])
		}),
		Reducer: mapred.ReducerFunc(func(k []byte, vals [][]byte, emit func(k, v []byte)) {
			for _, v := range vals {
				emit(k, v)
			}
		}),
		Partitioner: totalOrderPartition(splitters),
		NumReduces:  r,
		// The sort benchmark's convention since GraySort: output is written
		// with replication 1 (only the input is triply replicated).
		OutputReplication: 1,
		Costs: mapred.CostModel{
			MapNsPerRecord:    60,
			MapNsPerByte:      0.8,
			ReduceNsPerRecord: 60,
			ReduceNsPerByte:   0.8,
		},
	}
	res, err := rt.Run(p, job)
	if err != nil {
		return nil, err
	}
	return []*mapred.Result{res}, nil
}
