package workloads

import (
	"bytes"
	"fmt"
	"strconv"

	"iochar/internal/cluster"
	"iochar/internal/datagen"
	"iochar/internal/hdfs"
	"iochar/internal/mapred"
	"iochar/internal/sim"
)

// PageRank is the link-analysis workload: one adjacency-construction job
// over the edge list, then a fixed number of power-iteration jobs that each
// scan the previous iteration's graph state, distribute rank along edges,
// and apply the damping factor. Parsing and rank arithmetic give it a high
// CPU cost per byte (CPU-bound in Table 3), and the iteration state it
// rewrites each pass is far smaller than TeraSort's shuffle, so its
// intermediate-disk pressure is modest — as in the paper's Table 7.
type PageRank struct {
	seed int64
	// Iterations is the number of power iterations after the build job.
	Iterations int
	// Damping is the standard teleport factor.
	Damping float64
}

// NewPageRank returns the workload with the conventional parameters.
func NewPageRank() *PageRank { return &PageRank{seed: 1, Iterations: 3, Damping: 0.85} }

// Key implements Workload.
func (*PageRank) Key() string { return "PR" }

// Name implements Workload.
func (*PageRank) Name() string { return "PageRank" }

// PaperInputBytes implements Workload. Table 3's volume column is garbled
// in the source text; DESIGN.md records the 64 GB assumption (the Google
// web graph expanded by BigDataBench's generator).
func (*PageRank) PaperInputBytes() int64 { return 64 << 30 }

// Prepare implements Workload.
func (pr *PageRank) Prepare(fs *hdfs.FS, cl *cluster.Cluster, total int64, seed int64) {
	pr.seed = seed
	gen := datagen.GraphGen{Seed: seed}
	loadParts(fs, cl, inputDir(pr.Key()), total, gen.Part)
}

// Vertex state value format: "rank|dst1,dst2,..." — rank as decimal float,
// destinations comma-separated (possibly empty for dangling vertices).
// encodeStateInto writes into dst[:0] so per-record callers can reuse one
// backing array.
func encodeStateInto(dst []byte, rank float64, adj []byte) []byte {
	out := strconv.AppendFloat(dst[:0], rank, 'g', 10, 64)
	out = append(out, '|')
	return append(out, adj...)
}

func decodeState(v []byte) (rank float64, adj []byte) {
	i := bytes.IndexByte(v, '|')
	if i < 0 {
		panic(fmt.Sprintf("pagerank: bad state %q", v))
	}
	r, err := strconv.ParseFloat(bstr(v[:i]), 64)
	if err != nil {
		panic(fmt.Sprintf("pagerank: bad rank in %q", v))
	}
	return r, v[i+1:]
}

// countDests returns the out-degree encoded in an adjacency blob.
func countDests(adj []byte) int {
	if len(adj) == 0 {
		return 0
	}
	return bytes.Count(adj, []byte{','}) + 1
}

// prCosts prices the text parsing and rank arithmetic of the iterations.
func prCosts() mapred.CostModel {
	return mapred.CostModel{
		MapNsPerRecord:    700,
		MapNsPerByte:      35,
		ReduceNsPerRecord: 400,
		ReduceNsPerByte:   5,
	}
}

// Run implements Workload.
func (pr *PageRank) Run(p *sim.Proc, rt *mapred.Runtime, fs *hdfs.FS, cl *cluster.Cluster) ([]*mapred.Result, error) {
	inputs := fs.List(inputDir(pr.Key()) + "/")
	if len(inputs) == 0 {
		return nil, fmt.Errorf("pagerank: not prepared")
	}
	var results []*mapred.Result

	// Job 1: adjacency construction from the raw edge list.
	stateDir := fmt.Sprintf("%s-state0", outputDir(pr.Key()))
	cleanOutputs(fs, stateDir)
	build := &mapred.Job{
		Name:   "pagerank-build",
		Input:  inputs,
		Output: stateDir,
		Format: mapred.LineFormat{},
		Mapper: mapred.MapperFunc(func(rec []byte, emit func(k, v []byte)) {
			i := bytes.IndexByte(rec, '\t')
			if i <= 0 || i+1 >= len(rec) {
				return
			}
			emit(rec[:i], rec[i+1:])
		}),
		Reducer: func() mapred.Reducer {
			// Per-job scratch; emit copies before any task switch can reuse it.
			var adj, state []byte
			return mapred.ReducerFunc(func(k []byte, vals [][]byte, emit func(k, v []byte)) {
				adj = adj[:0]
				for i, v := range vals {
					if i > 0 {
						adj = append(adj, ',')
					}
					adj = append(adj, v...)
				}
				state = encodeStateInto(state, 1.0, adj)
				emit(k, state)
			})
		}(),
		NumReduces: defaultReduces(cl),
		Costs:      prCosts(),
	}
	res, err := rt.Run(p, build)
	if err != nil {
		return nil, err
	}
	results = append(results, res)

	// Power iterations over the vertex state.
	damping := pr.Damping
	for iter := 1; iter <= pr.Iterations; iter++ {
		prevDir := stateDir
		stateDir = fmt.Sprintf("%s-state%d", outputDir(pr.Key()), iter)
		cleanOutputs(fs, stateDir)
		job := &mapred.Job{
			Name:   fmt.Sprintf("pagerank-iter%d", iter),
			Input:  fs.List(prevDir + "/part-r-"),
			Output: stateDir,
			Format: mapred.KVFormat{},
			Mapper: func() mapred.Mapper {
				// Per-job scratch. A map-side emit can spill (and so switch
				// tasks) before returning, which would let another task of
				// this job clobber the shared buffers — so each one is rebuilt
				// from call-local values right before the emit that copies it.
				var aBuf, cBuf []byte
				return mapred.MapperFunc(func(rec []byte, emit func(k, v []byte)) {
					node, state := mapred.SplitKV(rec)
					rank, adj := decodeState(state)
					// Preserve the graph structure.
					aBuf = append(aBuf[:0], 'A')
					aBuf = append(aBuf, adj...)
					emit(node, aBuf)
					deg := countDests(adj)
					if deg == 0 {
						return
					}
					contrib := rank / float64(deg)
					start := 0
					for i := 0; i <= len(adj); i++ {
						if i == len(adj) || adj[i] == ',' {
							cBuf = append(cBuf[:0], 'C')
							cBuf = strconv.AppendFloat(cBuf, contrib, 'g', 10, 64)
							emit(adj[start:i], cBuf)
							start = i + 1
						}
					}
				})
			}(),
			Reducer: func() mapred.Reducer {
				var state []byte
				return mapred.ReducerFunc(func(k []byte, vals [][]byte, emit func(k, v []byte)) {
					var adj []byte
					sum := 0.0
					for _, v := range vals {
						switch v[0] {
						case 'A':
							adj = v[1:]
						case 'C':
							c, err := strconv.ParseFloat(bstr(v[1:]), 64)
							if err != nil {
								panic(fmt.Sprintf("pagerank: bad contribution %q", v))
							}
							sum += c
						}
					}
					state = encodeStateInto(state, (1-damping)+damping*sum, adj)
					emit(k, state)
				})
			}(),
			NumReduces: defaultReduces(cl),
			Costs:      prCosts(),
		}
		res, err := rt.Run(p, job)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// ReadRanks returns the final rank of every vertex after Run, for
// verification and the examples.
func (pr *PageRank) ReadRanks(p *sim.Proc, fs *hdfs.FS, cl *cluster.Cluster) map[string]float64 {
	dir := fmt.Sprintf("%s-state%d", outputDir(pr.Key()), pr.Iterations)
	out := map[string]float64{}
	for _, path := range fs.List(dir + "/part-r-") {
		rd, err := fs.Open(path, cl.Master.Name)
		if err != nil {
			panic(err)
		}
		data, err := rd.ReadAt(p, 0, rd.Size())
		if err != nil {
			panic(err)
		}
		for len(data) > 0 {
			k, v, rest := mapred.NextKV(data)
			data = rest
			rank, _ := decodeState(v)
			out[string(k)] = rank
		}
	}
	return out
}
