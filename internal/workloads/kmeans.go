package workloads

import (
	"bytes"
	"fmt"
	"strconv"

	"iochar/internal/cluster"
	"iochar/internal/datagen"
	"iochar/internal/hdfs"
	"iochar/internal/mapred"
	"iochar/internal/sim"
)

// KMeans is the Mahout-style clustering workload: a fixed number of
// centroid-refinement iterations (each a full scan of the input assigning
// every point to its nearest center and reducing partial sums to new
// centers — CPU-bound, tiny output) followed by a final clustering pass
// that labels and writes every point (I/O-bound, output ≈ input), matching
// the two-phase bottleneck classification of Table 3.
type KMeans struct {
	seed int64
	// K is the number of centers; Dims the point dimensionality;
	// Iterations the refinement passes before the labelling pass.
	K          int
	Dims       int
	Iterations int
}

// NewKMeans returns the workload with BigDataBench-like defaults.
func NewKMeans() *KMeans { return &KMeans{seed: 1, K: 16, Dims: 8, Iterations: 3} }

// Key implements Workload.
func (*KMeans) Key() string { return "KM" }

// Name implements Workload.
func (*KMeans) Name() string { return "K-means" }

// PaperInputBytes implements Workload. Table 3's volume column is garbled
// in the source text; DESIGN.md records the 256 GB assumption.
func (*KMeans) PaperInputBytes() int64 { return 256 << 30 }

// Prepare implements Workload.
func (km *KMeans) Prepare(fs *hdfs.FS, cl *cluster.Cluster, total int64, seed int64) {
	km.seed = seed
	gen := datagen.PointGen{Seed: seed, Dims: km.Dims, TrueCenters: km.K}
	loadParts(fs, cl, inputDir(km.Key()), total, gen.Part)
}

// parsePointInto decodes a comma-separated coordinate line into dst[:0],
// so per-record callers can reuse one backing array across millions of
// records. It returns the (possibly regrown) slice.
func parsePointInto(dst []float64, line []byte, dims int) ([]float64, bool) {
	dst = dst[:0]
	start := 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ',' {
			v, err := strconv.ParseFloat(bstr(line[start:i]), 64)
			if err != nil {
				return dst, false
			}
			dst = append(dst, v)
			start = i + 1
		}
	}
	return dst, len(dst) == dims
}

// parsePoint is the allocating convenience form for cold paths.
func parsePoint(line []byte, dims int) ([]float64, bool) {
	pt, ok := parsePointInto(make([]float64, 0, dims), line, dims)
	if !ok {
		return nil, false
	}
	return pt, true
}

// nearest returns the index of the closest center (squared Euclidean).
func nearest(pt []float64, centers [][]float64) int {
	best, bestD := 0, 0.0
	for i, c := range centers {
		d := 0.0
		for j := range pt {
			diff := pt[j] - c[j]
			d += diff * diff
		}
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// encodeSumInto serializes (count, sumVec) partials into dst[:0];
// decodeSumInto reverses it. Both exist in buffer-reusing form because the
// iteration jobs run them once per input record.
func encodeSumInto(dst []byte, count int64, sum []float64) []byte {
	out := strconv.AppendInt(dst[:0], count, 10)
	for _, v := range sum {
		out = append(out, ';')
		out = strconv.AppendFloat(out, v, 'g', -1, 64)
	}
	return out
}

func decodeSumInto(dst []float64, v []byte) (int64, []float64) {
	dst = dst[:0]
	end := bytes.IndexByte(v, ';')
	if end < 0 {
		end = len(v)
	}
	n, err := strconv.ParseInt(bstr(v[:end]), 10, 64)
	if err != nil {
		panic(fmt.Sprintf("kmeans: bad partial %q", v))
	}
	for end < len(v) {
		start := end + 1
		end = start
		for end < len(v) && v[end] != ';' {
			end++
		}
		f, err := strconv.ParseFloat(bstr(v[start:end]), 64)
		if err != nil {
			panic(fmt.Sprintf("kmeans: bad partial %q", v))
		}
		dst = append(dst, f)
	}
	return n, dst
}

// decodeSum is the allocating convenience form for cold (driver-side) paths.
func decodeSum(v []byte) (int64, []float64) { return decodeSumInto(nil, v) }

// sumMerger is combiner and reducer for iteration jobs: it folds partial
// (count, sum) pairs; the reducer's final division to a centroid happens
// driver-side when the output is read back. One instance serves a whole job:
// its scratch buffers are only live between the start of a Reduce call and
// the emit that ends it, and every emit path copies the value out before the
// simulation can switch to another task.
type sumMerger struct {
	sum []float64
	dec []float64
	enc []byte
}

// Reduce implements mapred.Reducer.
func (m *sumMerger) Reduce(k []byte, vals [][]byte, emit func(k, v []byte)) {
	var count int64
	first := true
	for _, v := range vals {
		var n int64
		n, m.dec = decodeSumInto(m.dec, v)
		count += n
		if first {
			m.sum = append(m.sum[:0], m.dec...)
			first = false
		} else {
			for i := range m.sum {
				m.sum[i] += m.dec[i]
			}
		}
	}
	m.enc = encodeSumInto(m.enc, count, m.sum)
	emit(k, m.enc)
}

// iterCosts prices one distance evaluation per center per dimension plus
// float parsing — the arithmetic that makes iterations CPU-bound.
func (km *KMeans) iterCosts() mapred.CostModel {
	perRecord := float64(km.K*km.Dims)*4 + float64(km.Dims)*45 // distances + ParseFloat
	return mapred.CostModel{
		MapNsPerRecord:    perRecord,
		MapNsPerByte:      4,
		ReduceNsPerRecord: 300,
		ReduceNsPerByte:   1,
	}
}

// Run implements Workload: Iterations refinement jobs, then the clustering
// (labelling) job.
func (km *KMeans) Run(p *sim.Proc, rt *mapred.Runtime, fs *hdfs.FS, cl *cluster.Cluster) ([]*mapred.Result, error) {
	inputs := fs.List(inputDir(km.Key()) + "/")
	if len(inputs) == 0 {
		return nil, fmt.Errorf("kmeans: not prepared")
	}
	centers, err := km.seedCenters(p, fs, inputs, cl.Master.Name)
	if err != nil {
		return nil, err
	}
	var results []*mapred.Result
	for iter := 0; iter < km.Iterations; iter++ {
		out := fmt.Sprintf("%s-iter%d", outputDir(km.Key()), iter)
		cleanOutputs(fs, out)
		job := km.iterationJob(inputs, out, centers)
		res, err := rt.Run(p, job)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
		centers, err = km.readCenters(p, fs, out, cl.Master.Name, centers)
		if err != nil {
			return nil, err
		}
	}
	// Clustering pass: label every point and write it back out.
	out := outputDir(km.Key())
	cleanOutputs(fs, out)
	job := &mapred.Job{
		Name:   "kmeans-cluster",
		Input:  inputs,
		Output: out,
		Format: mapred.LineFormat{},
		Mapper: func() mapred.Mapper {
			// Per-job scratch: each buffer is rebuilt immediately before the
			// emit that consumes it, and emit copies before any task switch.
			var pt []float64
			var key []byte
			return mapred.MapperFunc(func(rec []byte, emit func(k, v []byte)) {
				var ok bool
				pt, ok = parsePointInto(pt, rec, km.Dims)
				if !ok {
					return
				}
				c := nearest(pt, centers)
				key = strconv.AppendInt(key[:0], int64(c), 10)
				emit(key, rec)
			})
		}(),
		Reducer: mapred.ReducerFunc(func(k []byte, vals [][]byte, emit func(k, v []byte)) {
			for _, v := range vals {
				emit(k, v)
			}
		}),
		NumReduces: defaultReduces(cl),
		Costs:      km.iterCosts(),
	}
	res, err := rt.Run(p, job)
	if err != nil {
		return nil, err
	}
	return append(results, res), nil
}

// iterationJob builds one refinement pass against fixed centers.
func (km *KMeans) iterationJob(inputs []string, output string, centers [][]float64) *mapred.Job {
	// Per-job scratch, same discipline as the clustering mapper above.
	var pt []float64
	var key, val []byte
	return &mapred.Job{
		Name:   "kmeans-iter",
		Input:  inputs,
		Output: output,
		Format: mapred.LineFormat{},
		Mapper: mapred.MapperFunc(func(rec []byte, emit func(k, v []byte)) {
			var ok bool
			pt, ok = parsePointInto(pt, rec, km.Dims)
			if !ok {
				return
			}
			c := nearest(pt, centers)
			key = strconv.AppendInt(key[:0], int64(c), 10)
			val = encodeSumInto(val, 1, pt)
			emit(key, val)
		}),
		Combiner:   &sumMerger{},
		Reducer:    &sumMerger{},
		NumReduces: km.K, // one reducer per centroid is plenty for tiny output
		Costs:      km.iterCosts(),
	}
}

// seedCenters reads the first K parseable points as initial centers (Mahout
// uses a seeding job; a driver-side read keeps the I/O visible but small).
func (km *KMeans) seedCenters(p *sim.Proc, fs *hdfs.FS, inputs []string, client string) ([][]float64, error) {
	rd, err := fs.Open(inputs[0], client)
	if err != nil {
		return nil, err
	}
	data, err := rd.ReadAt(p, 0, int64(km.K*km.Dims*24+1024))
	if err != nil {
		return nil, err
	}
	var centers [][]float64
	datagen.Lines(data, func(line []byte) {
		if len(centers) >= km.K {
			return
		}
		if pt, ok := parsePoint(line, km.Dims); ok {
			centers = append(centers, pt)
		}
	})
	if len(centers) < km.K {
		return nil, fmt.Errorf("kmeans: only %d seed centers in first read", len(centers))
	}
	return centers, nil
}

// readCenters parses an iteration's reduce output into the next center set,
// keeping the previous center where a cluster went empty.
func (km *KMeans) readCenters(p *sim.Proc, fs *hdfs.FS, dir, client string, prev [][]float64) ([][]float64, error) {
	next := make([][]float64, len(prev))
	copy(next, prev)
	for _, path := range fs.List(dir + "/part-r-") {
		rd, err := fs.Open(path, client)
		if err != nil {
			return nil, err
		}
		data, err := rd.ReadAt(p, 0, rd.Size())
		if err != nil {
			return nil, err
		}
		for len(data) > 0 {
			k, v, rest := mapred.NextKV(data)
			data = rest
			idx, err := strconv.Atoi(string(k))
			if err != nil || idx < 0 || idx >= len(next) {
				return nil, fmt.Errorf("kmeans: bad center key %q", k)
			}
			count, sum := decodeSum(v)
			if count == 0 {
				continue
			}
			c := make([]float64, len(sum))
			for i := range sum {
				c[i] = sum[i] / float64(count)
			}
			next[idx] = c
		}
	}
	return next, nil
}
