package workloads

import (
	"fmt"
	"strconv"

	"iochar/internal/cluster"
	"iochar/internal/datagen"
	"iochar/internal/hdfs"
	"iochar/internal/mapred"
	"iochar/internal/sim"
)

// Aggregation is the paper's Hive Query workload: the OLAP aggregation
// operator (SELECT category, SUM(price*quantity) ... GROUP BY category)
// compiled to a single MapReduce job with a map-side combiner, run over a
// Zipf-skewed e-commerce order table. Hive's deserialization and expression
// evaluation dominate, so the map-side CPU cost is high (CPU-bound in
// Table 3) while output is tiny — which is why the paper finds AGG the most
// HDFS-read-intensive workload (Table 6) with hardly any intermediate I/O.
type Aggregation struct {
	seed int64
}

// NewAggregation returns the workload.
func NewAggregation() *Aggregation { return &Aggregation{seed: 1} }

// Key implements Workload.
func (*Aggregation) Key() string { return "AGG" }

// Name implements Workload.
func (*Aggregation) Name() string { return "Aggregation" }

// PaperInputBytes implements Workload. Table 3's volume column is garbled
// in the source text; DESIGN.md records the 512 GB assumption.
func (*Aggregation) PaperInputBytes() int64 { return 512 << 30 }

// Prepare implements Workload.
func (a *Aggregation) Prepare(fs *hdfs.FS, cl *cluster.Cluster, total int64, seed int64) {
	a.seed = seed
	gen := datagen.OrderGen{Seed: seed}
	loadParts(fs, cl, inputDir(a.Key()), total, gen.Part)
}

// aggSummer is both combiner and reducer: it sums revenue values per
// category. The scratch buffer is rebuilt immediately before the emit that
// consumes it, and emit copies the bytes before the simulation can switch
// tasks, so one instance per job side is safe.
type aggSummer struct{ enc []byte }

// Reduce implements mapred.Reducer.
func (a *aggSummer) Reduce(k []byte, vals [][]byte, emit func(k, v []byte)) {
	var sum int64
	for _, v := range vals {
		n, err := strconv.ParseInt(bstr(v), 10, 64)
		if err != nil {
			panic(fmt.Sprintf("aggregation: bad partial %q: %v", v, err))
		}
		sum += n
	}
	a.enc = strconv.AppendInt(a.enc[:0], sum, 10)
	emit(k, a.enc)
}

// Run implements Workload.
func (a *Aggregation) Run(p *sim.Proc, rt *mapred.Runtime, fs *hdfs.FS, cl *cluster.Cluster) ([]*mapred.Result, error) {
	inputs := fs.List(inputDir(a.Key()) + "/")
	if len(inputs) == 0 {
		return nil, fmt.Errorf("aggregation: not prepared")
	}
	cleanOutputs(fs, outputDir(a.Key()))
	job := &mapred.Job{
		Name:   "aggregation",
		Input:  inputs,
		Output: outputDir(a.Key()),
		Format: mapred.LineFormat{},
		Mapper: func() mapred.Mapper {
			var val []byte // rebuilt right before each emit, which copies it
			return mapred.MapperFunc(func(rec []byte, emit func(k, v []byte)) {
				// Fields: order|user|item|category|price|quantity.
				var fieldStart [7]int
				nf := 1
				for i, b := range rec {
					if b == '|' && nf < 7 {
						fieldStart[nf] = i + 1
						nf++
					}
				}
				if nf < 6 {
					return // malformed line; Hive would null it out
				}
				cat := rec[fieldStart[3] : fieldStart[4]-1]
				price, err1 := strconv.Atoi(bstr(rec[fieldStart[4] : fieldStart[5]-1]))
				qty, err2 := strconv.Atoi(bstr(rec[fieldStart[5]:]))
				if err1 != nil || err2 != nil {
					return
				}
				val = strconv.AppendInt(val[:0], int64(price*qty), 10)
				emit(cat, val)
			})
		}(),
		Combiner:   &aggSummer{},
		Reducer:    &aggSummer{},
		NumReduces: defaultReduces(cl),
		Costs: mapred.CostModel{
			// Hive's SerDe + expression evaluation: heavy per-byte cost is
			// what starves the disks of CPU time and makes AGG CPU-bound —
			// the margin is wide enough that even doubled map slots leave
			// the cores, not the disks, as the bottleneck.
			MapNsPerRecord:    1200,
			MapNsPerByte:      45,
			ReduceNsPerRecord: 150,
			ReduceNsPerByte:   2,
		},
	}
	res, err := rt.Run(p, job)
	if err != nil {
		return nil, err
	}
	return []*mapred.Result{res}, nil
}
