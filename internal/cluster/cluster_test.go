package cluster

import (
	"testing"
	"time"

	"iochar/internal/sim"
)

func TestDefaultHardwareMatchesTable1(t *testing.T) {
	hw := DefaultHardware(1)
	if hw.Cores != 12 {
		t.Errorf("Cores = %d, want 12 (2 x E5645)", hw.Cores)
	}
	if hw.MemoryBytes != 32<<30 {
		t.Errorf("Memory = %d, want 32 GB", hw.MemoryBytes)
	}
	if hw.HDFSDisks != 3 || hw.MRDisks != 3 {
		t.Errorf("disks = %d/%d, want 3/3", hw.HDFSDisks, hw.MRDisks)
	}
	if hw.DiskParams.RPM != 7200 {
		t.Errorf("RPM = %d, want 7200", hw.DiskParams.RPM)
	}
}

func TestWithMemoryGB(t *testing.T) {
	hw := DefaultHardware(1).WithMemoryGB(16)
	if hw.MemoryBytes != 16<<30 {
		t.Errorf("Memory = %d, want 16 GB", hw.MemoryBytes)
	}
}

func TestCachePagesScaleWithMemory(t *testing.T) {
	small := DefaultHardware(1024).WithMemoryGB(16).CachePagesPerDisk()
	big := DefaultHardware(1024).WithMemoryGB(32).CachePagesPerDisk()
	if big != 2*small {
		t.Errorf("cache pages 16G=%d 32G=%d, want exact doubling", small, big)
	}
}

func TestCachePagesFloor(t *testing.T) {
	hw := DefaultHardware(1 << 40)
	if got := hw.CachePagesPerDisk(); got != 128 {
		t.Errorf("CachePagesPerDisk = %d, want floor 128", got)
	}
}

func TestClusterLayout(t *testing.T) {
	env := sim.New(1)
	c, err := New(env, DefaultHardware(1024), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Slaves) != 10 {
		t.Fatalf("slaves = %d, want 10", len(c.Slaves))
	}
	if len(c.Master.HDFSVols) != 0 {
		t.Error("master should carry no data disks")
	}
	if got := len(c.AllHDFSDisks()); got != 30 {
		t.Errorf("HDFS disks = %d, want 30", got)
	}
	if got := len(c.AllMRDisks()); got != 30 {
		t.Errorf("MR disks = %d, want 30", got)
	}
	for _, s := range c.Slaves {
		if len(s.HDFSVols) != 3 || len(s.MRVols) != 3 {
			t.Errorf("%s vols = %d/%d, want 3/3", s.Name, len(s.HDFSVols), len(s.MRVols))
		}
	}
}

func TestComputeQueuesBeyondCores(t *testing.T) {
	env := sim.New(1)
	hw := DefaultHardware(1024)
	hw.Cores = 2
	c, err := New(env, hw, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := c.Slaves[0]
	var last time.Duration
	for i := 0; i < 4; i++ {
		env.Go("task", func(p *sim.Proc) {
			n.Compute(p, time.Second)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	env.Run(0)
	if last != 2*time.Second {
		t.Errorf("4 tasks on 2 cores finished at %v, want 2s", last)
	}
}

func TestVolumeRoundRobin(t *testing.T) {
	env := sim.New(1)
	c, err := New(env, DefaultHardware(1024), 1)
	if err != nil {
		t.Fatal(err)
	}
	n := c.Slaves[0]
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		seen[n.NextMRVol().Disk().P.Name]++
	}
	if len(seen) != 3 {
		t.Errorf("round robin covered %d volumes, want 3", len(seen))
	}
	for name, count := range seen {
		if count != 2 {
			t.Errorf("volume %s used %d times, want 2", name, count)
		}
	}
}

func TestSyncAllFlushesDirtyPages(t *testing.T) {
	env := sim.New(1)
	c, err := New(env, DefaultHardware(1024), 2)
	if err != nil {
		t.Fatal(err)
	}
	env.Go("w", func(p *sim.Proc) {
		for _, s := range c.Slaves {
			f := s.NextMRVol().Create("x")
			f.Append(p, make([]byte, 64<<10))
		}
		c.SyncAll(p)
		for _, s := range c.Slaves {
			for _, v := range s.MRVols {
				if v.Cache().DirtyPages() != 0 {
					t.Errorf("%s still dirty after SyncAll", s.Name)
				}
			}
		}
	})
	env.Run(0)
}

func TestNodesShareNetwork(t *testing.T) {
	env := sim.New(1)
	c, err := New(env, DefaultHardware(1024), 2)
	if err != nil {
		t.Fatal(err)
	}
	env.Go("t", func(p *sim.Proc) {
		c.Net.Transfer(p, c.Slaves[0].Name, c.Slaves[1].Name, 1<<20)
	})
	env.Run(0)
	if c.Slaves[1].NIC.BytesReceived() != 1<<20 {
		t.Error("transfer across cluster nodes failed")
	}
}

func TestSharedDataDisksPoolSpindles(t *testing.T) {
	env := sim.New(1)
	hw := DefaultHardware(8192)
	hw.SharedDataDisks = true
	c, err := New(env, hw, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := c.Slaves[0]
	if len(n.HDFSVols) != 6 || len(n.MRVols) != 6 {
		t.Fatalf("vols = %d/%d, want 6/6 pooled", len(n.HDFSVols), len(n.MRVols))
	}
	// Both roles must address the same filesystems.
	for i := range n.HDFSVols {
		if n.HDFSVols[i] != n.MRVols[i] {
			t.Errorf("vol %d differs between roles under shared layout", i)
		}
	}
	// A file created through one role is visible through the other.
	env.Go("w", func(p *sim.Proc) {
		f := n.NextHDFSVol().Create("shared-file")
		f.Append(p, make([]byte, 1024))
	})
	env.Run(0)
	found := false
	for _, v := range n.MRVols {
		if v.Exists("shared-file") {
			found = true
		}
	}
	if !found {
		t.Error("file written via HDFS role invisible via MR role")
	}
}
