// Package cluster assembles simulated nodes into the paper's testbed: one
// master and ten slaves, each with two six-core Xeon E5645 processors, 16 or
// 32 GB of memory, a 1 GbE NIC, and seven 1 TB Seagate disks — one for the
// OS, three dedicated to HDFS data and three to MapReduce intermediate data
// (Table 1 of the paper).
//
// Because simulating terabyte inputs byte-for-byte is unnecessary for shape
// reproduction, Hardware carries a Scale divisor: capacities (disk size,
// page-cache budget) shrink by Scale while all *timing* parameters stay
// fixed. Upper layers (HDFS block size, sort buffers, input volumes) apply
// the same divisor, preserving every ratio the paper's effects depend on.
package cluster

import (
	"fmt"
	"time"

	"iochar/internal/disk"
	"iochar/internal/localfs"
	"iochar/internal/netsim"
	"iochar/internal/pagecache"
	"iochar/internal/sim"
)

// Hardware describes one node's resources, defaulting to the paper's
// Table 1 configuration.
type Hardware struct {
	Cores       int   // physical cores (2 × 6 for dual E5645)
	MemoryBytes int64 // 16 or 32 GB in the paper's experiments
	HDFSDisks   int   // disks dedicated to HDFS data
	MRDisks     int   // disks dedicated to MapReduce intermediate data
	DiskParams  disk.Params
	NetBPS      int64 // NIC bandwidth, bytes/second each direction
	Scale       int64 // capacity divisor (1 = paper scale)

	// Racks splits the fleet across this many top-of-rack switches (0 or 1
	// keeps the paper's flat single-switch fabric). Slave i lands in rack
	// i mod Racks; the master shares rack 0. UplinkBPS is the per-direction
	// bandwidth of each rack's uplink to the aggregation layer (0 = match
	// NetBPS, i.e. non-oversubscribed).
	Racks     int
	UplinkBPS int64

	// MemReservedFrac is the fraction of memory unavailable to the page
	// cache (OS, DataNode/TaskTracker daemons, task JVM heaps).
	MemReservedFrac float64
	PageCacheOpts   pagecache.Options

	// SharedDataDisks pools all HDFSDisks+MRDisks data disks: HDFS block
	// files and MapReduce intermediate files share every spindle, instead
	// of the paper testbed's dedicated 3+3 split. The paper's observation 4
	// recommends the dedicated layout because the two traffic classes have
	// incompatible access patterns; this switch lets that claim be tested.
	SharedDataDisks bool

	// MRDiskParams, when non-nil, provisions the intermediate-data volumes
	// on this device instead of DiskParams — the storage-tier hook (flash
	// intermediate tier). HDFS data disks always use DiskParams; nil keeps
	// the paper's all-mechanical testbed. A heterogeneous fleet is scaled
	// strictly (disk.ScaledStrict): a Scale that would clamp either class
	// to the capacity floor is an error, not a silent equalization of the
	// two capacities. Incompatible with SharedDataDisks — one pooled set
	// of spindles cannot be two device classes.
	MRDiskParams *disk.Params
}

// DefaultHardware returns the Table 1 node at the given scale divisor with
// 32 GB of memory (use WithMemoryGB for the 16 GB variant).
func DefaultHardware(scale int64) Hardware {
	if scale <= 0 {
		scale = 1
	}
	return Hardware{
		Cores:           12,
		MemoryBytes:     32 << 30,
		HDFSDisks:       3,
		MRDisks:         3,
		DiskParams:      disk.SeagateST1000NM0011(),
		NetBPS:          125 << 20,
		Scale:           scale,
		MemReservedFrac: 0.25,
		PageCacheOpts:   pagecache.DefaultOptions(),
	}
}

// WithMemoryGB returns a copy with the given physical memory.
func (h Hardware) WithMemoryGB(gb int) Hardware {
	h.MemoryBytes = int64(gb) << 30
	return h
}

// CachePagesPerDisk returns the page-cache budget for each data disk: the
// cacheable fraction of memory, scaled, split across the data disks.
func (h Hardware) CachePagesPerDisk() int {
	cacheable := float64(h.MemoryBytes) * (1 - h.MemReservedFrac) / float64(h.Scale)
	disks := h.HDFSDisks + h.MRDisks
	if disks == 0 {
		disks = 1
	}
	pages := int(cacheable / float64(disks) / pagecache.PageSize)
	// Floor of 512 KiB per disk: below this, concurrent stream readahead
	// windows cannot coexist at all, which no real deployment exhibits.
	if pages < 128 {
		pages = 128
	}
	return pages
}

// Node is one simulated machine.
type Node struct {
	Name string
	HW   Hardware
	Rack int
	CPU  *sim.Resource
	NIC  *netsim.NIC

	HDFSVols []*localfs.FS // one filesystem per HDFS data disk
	MRVols   []*localfs.FS // one filesystem per intermediate-data disk
	// MetaVols are the master's metadata volumes (NameNode edit log and
	// fsimage, JobTracker job journal). Empty everywhere except on a master
	// provisioned via ProvisionMasterMeta — the paper's testbed masters do
	// no data I/O, so these exist only when master recovery is modeled.
	MetaVols []*localfs.FS

	HDFSDisks []*disk.Disk
	MRDisks   []*disk.Disk
	MetaDisks []*disk.Disk

	mrNext   int  // round-robin cursor for intermediate volumes
	hdfsNext int  // round-robin cursor for HDFS volumes
	down     bool // fail-stop crashed (fault injection)
	inc      int  // crash count; see Incarnation
}

// Alive reports whether the node has not been fail-stopped.
func (n *Node) Alive() bool { return !n.down }

// Incarnation counts the node's crashes. A task attempt snapshots it at
// start and treats any later change as "my machine died under me" — Alive
// alone cannot distinguish a crash-and-restart from uninterrupted life, and
// an attempt that sleeps through a bounce would otherwise resume against
// intermediate files the crash truncated.
func (n *Node) Incarnation() int { return n.inc }

// SetDown marks the node crashed or recovered. Pure state; callers (the
// fault injector) are responsible for also severing the network and
// notifying HDFS/MapReduce control planes.
func (n *Node) SetDown(down bool) {
	if down && !n.down {
		n.inc++
	}
	n.down = down
}

// Compute charges d of CPU time on one core, queueing when all cores are
// busy — the mechanism by which task-slot counts above the core count stop
// helping.
func (n *Node) Compute(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	n.CPU.Use(p, 1, d)
}

// NextMRVol returns intermediate-data volumes round-robin, mirroring
// Hadoop's mapred.local.dir rotation across the three dedicated disks.
// Fail-stopped volumes are skipped, as Hadoop drops bad mapred.local.dir
// entries; with every volume failed it panics (an unusable node should have
// been fail-stopped whole instead).
func (n *Node) NextMRVol() *localfs.FS {
	for range n.MRVols {
		v := n.MRVols[n.mrNext%len(n.MRVols)]
		n.mrNext++
		if !v.Failed() {
			return v
		}
	}
	panic(fmt.Sprintf("cluster: all intermediate volumes failed on %s (down=%v inc=%d)", n.Name, n.down, n.inc))
}

// NextHDFSVol returns HDFS data volumes round-robin, mirroring the
// DataNode's dfs.data.dir rotation. Fail-stopped volumes are skipped.
func (n *Node) NextHDFSVol() *localfs.FS {
	for range n.HDFSVols {
		v := n.HDFSVols[n.hdfsNext%len(n.HDFSVols)]
		n.hdfsNext++
		if !v.Failed() {
			return v
		}
	}
	panic(fmt.Sprintf("cluster: all HDFS volumes failed on %s (down=%v inc=%d)", n.Name, n.down, n.inc))
}

// FindNode returns the named node (master or slave), or nil.
func (c *Cluster) FindNode(name string) *Node {
	if c.Master != nil && c.Master.Name == name {
		return c.Master
	}
	for _, s := range c.Slaves {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Cluster is the full testbed.
type Cluster struct {
	Env    *sim.Env
	Net    *netsim.Network
	Master *Node
	Slaves []*Node
}

// New builds a cluster of one master and nSlaves slaves, all with hardware
// hw. The master carries no data disks in the experiments (NameNode and
// JobTracker only), matching the paper's 1+10 layout.
func New(env *sim.Env, hw Hardware, nSlaves int) (*Cluster, error) {
	if nSlaves <= 0 {
		return nil, fmt.Errorf("cluster: need at least one slave, got %d", nSlaves)
	}
	if hw.Cores <= 0 {
		return nil, fmt.Errorf("cluster: need at least one core, got %d", hw.Cores)
	}
	if hw.HDFSDisks <= 0 || hw.MRDisks <= 0 {
		return nil, fmt.Errorf("cluster: need at least one HDFS and one MR disk, got %d+%d", hw.HDFSDisks, hw.MRDisks)
	}
	if hw.MRDiskParams != nil && hw.SharedDataDisks {
		return nil, fmt.Errorf("cluster: SharedDataDisks pools one set of spindles and cannot combine with a dedicated intermediate-tier device (MRDiskParams)")
	}
	racks := hw.Racks
	if racks <= 0 {
		racks = 1
	}
	if racks > nSlaves {
		return nil, fmt.Errorf("cluster: %d racks but only %d slaves", racks, nSlaves)
	}
	net := netsim.New(env, hw.NetBPS, 100_000) // 100 µs
	if racks > 1 {
		net.SetRacks(racks, hw.UplinkBPS)
	}
	c := &Cluster{Env: env, Net: net}
	master, err := newNode(env, net, "master", hw, 0, false)
	if err != nil {
		return nil, err
	}
	c.Master = master
	for i := 0; i < nSlaves; i++ {
		s, err := newNode(env, net, fmt.Sprintf("slave-%02d", i), hw, i%racks, true)
		if err != nil {
			return nil, err
		}
		c.Slaves = append(c.Slaves, s)
	}
	return c, nil
}

func newNode(env *sim.Env, net *netsim.Network, name string, hw Hardware, rack int, dataDisks bool) (*Node, error) {
	n := &Node{
		Name: name,
		HW:   hw,
		Rack: rack,
		CPU:  sim.NewResource(env, name+".cpu", hw.Cores),
		NIC:  net.AddNodeRack(name, rack),
	}
	if !dataDisks {
		return n, nil
	}
	// Homogeneous fleets keep the legacy clamped scaling (warned via the
	// disk package's clamp bus); a heterogeneous fleet must scale strictly
	// so the two capacities stay proportional.
	hdfsP := hw.DiskParams.Scaled(hw.Scale)
	mrP := hdfsP
	if hw.MRDiskParams != nil {
		var err error
		hdfsP, err = hw.DiskParams.ScaledStrict(hw.Scale)
		if err != nil {
			return nil, fmt.Errorf("cluster: HDFS data disks: %w", err)
		}
		mrP, err = hw.MRDiskParams.ScaledStrict(hw.Scale)
		if err != nil {
			return nil, fmt.Errorf("cluster: intermediate-tier disks: %w", err)
		}
	}
	pages := hw.CachePagesPerDisk()
	mkvol := func(p disk.Params, role string, i int) *localfs.FS {
		p.Name = fmt.Sprintf("%s.%s%d", name, role, i)
		d := disk.New(env, p)
		cache := pagecache.New(env, d, pages, hw.PageCacheOpts)
		return localfs.New(env, d, cache)
	}
	if hw.SharedDataDisks {
		// One pooled set of spindles; both roles rotate over all of them.
		for i := 0; i < hw.HDFSDisks+hw.MRDisks; i++ {
			fs := mkvol(hdfsP, "data", i)
			n.HDFSVols = append(n.HDFSVols, fs)
			n.MRVols = append(n.MRVols, fs)
			n.HDFSDisks = append(n.HDFSDisks, fs.Disk())
			n.MRDisks = append(n.MRDisks, fs.Disk())
		}
		return n, nil
	}
	for i := 0; i < hw.HDFSDisks; i++ {
		fs := mkvol(hdfsP, "hdfs", i)
		n.HDFSVols = append(n.HDFSVols, fs)
		n.HDFSDisks = append(n.HDFSDisks, fs.Disk())
	}
	for i := 0; i < hw.MRDisks; i++ {
		fs := mkvol(mrP, "mr", i)
		n.MRVols = append(n.MRVols, fs)
		n.MRDisks = append(n.MRDisks, fs.Disk())
	}
	return n, nil
}

// ProvisionMasterMeta equips the master with n metadata volumes
// ("master.meta0", ...) on the fleet's mechanical disk parameters. The
// volumes carry the NameNode edit log / fsimage and the JobTracker job
// journal, so master metadata I/O shows up in iostat like any other
// device. Called only when master recovery is enabled: a run without it
// builds the exact cluster the seed built. Calling twice is an error.
func (c *Cluster) ProvisionMasterMeta(n int) error {
	if n <= 0 {
		return fmt.Errorf("cluster: need at least one master meta volume, got %d", n)
	}
	if len(c.Master.MetaVols) > 0 {
		return fmt.Errorf("cluster: master meta volumes already provisioned")
	}
	hw := c.Master.HW
	p := hw.DiskParams.Scaled(hw.Scale)
	pages := hw.CachePagesPerDisk()
	for i := 0; i < n; i++ {
		pp := p
		pp.Name = fmt.Sprintf("%s.meta%d", c.Master.Name, i)
		d := disk.New(c.Env, pp)
		cache := pagecache.New(c.Env, d, pages, hw.PageCacheOpts)
		fs := localfs.New(c.Env, d, cache)
		c.Master.MetaVols = append(c.Master.MetaVols, fs)
		c.Master.MetaDisks = append(c.Master.MetaDisks, d)
	}
	return nil
}

// AllHDFSDisks returns every HDFS data disk across the slaves, for iostat
// grouping.
func (c *Cluster) AllHDFSDisks() []*disk.Disk {
	var out []*disk.Disk
	for _, s := range c.Slaves {
		out = append(out, s.HDFSDisks...)
	}
	return out
}

// AllMRDisks returns every intermediate-data disk across the slaves.
func (c *Cluster) AllMRDisks() []*disk.Disk {
	var out []*disk.Disk
	for _, s := range c.Slaves {
		out = append(out, s.MRDisks...)
	}
	return out
}

// DisksByClass returns every data disk of the given device class across the
// slaves, deduplicated (SharedDataDisks aliases the HDFS and MR lists), in
// stable provisioning order — for the per-class iostat groups of a tiered
// run.
func (c *Cluster) DisksByClass(class disk.Class) []*disk.Disk {
	var out []*disk.Disk
	seen := make(map[*disk.Disk]bool)
	add := func(ds []*disk.Disk) {
		for _, d := range ds {
			if !seen[d] && d.Class() == class {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	for _, s := range c.Slaves {
		add(s.HDFSDisks)
		add(s.MRDisks)
	}
	return out
}

// SyncAll flushes every page cache on every slave — end-of-run barrier so
// iostat captures all writes. Volumes are deduplicated by identity: with
// SharedDataDisks the HDFS and MR volume lists alias the same filesystems,
// and each cache must flush exactly once. Dead nodes and failed volumes are
// skipped — their unwritten cache contents are lost, as on real hardware.
func (c *Cluster) SyncAll(p *sim.Proc) {
	seen := make(map[*localfs.FS]bool)
	sync := func(v *localfs.FS) {
		if seen[v] || v.Failed() {
			return
		}
		seen[v] = true
		v.Cache().Sync(p)
	}
	for _, s := range c.Slaves {
		if !s.Alive() {
			continue
		}
		for _, v := range s.HDFSVols {
			sync(v)
		}
		for _, v := range s.MRVols {
			sync(v)
		}
	}
	for _, v := range c.Master.MetaVols {
		sync(v)
	}
}
