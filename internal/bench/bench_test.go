package bench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iochar/internal/core"
	"iochar/internal/disk"
)

// benchCfg is a small two-workload configuration that still exercises the
// full pipeline (sort-heavy TS, combiner-heavy AGG).
func benchCfg() Config {
	return Config{
		Scale: 262144, Slaves: 3, MapTaskTarget: 16, Seed: 7, Iterations: 1,
		Workloads: []core.Workload{core.TS, core.AGG},
	}
}

// TestRunDeterminism is the harness's core guarantee: two runs at the same
// seed and configuration produce identical simulated outcomes — virtual
// time, kernel event count, and the full outcome fingerprint. The
// optimization workflow leans on this: a hot-path change is only a speedup
// if the fingerprint survives it.
func TestRunDeterminism(t *testing.T) {
	cfg := benchCfg()
	r1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Workloads) != len(r2.Workloads) {
		t.Fatalf("workload counts differ: %d vs %d", len(r1.Workloads), len(r2.Workloads))
	}
	for i := range r1.Workloads {
		a, b := r1.Workloads[i], r2.Workloads[i]
		if a.Fingerprint != b.Fingerprint {
			t.Errorf("%s: fingerprints differ across runs: %s vs %s", a.Workload, a.Fingerprint, b.Fingerprint)
		}
		if a.VirtualNS != b.VirtualNS {
			t.Errorf("%s: virtual time differs across runs: %d vs %d", a.Workload, a.VirtualNS, b.VirtualNS)
		}
		if a.Events != b.Events {
			t.Errorf("%s: kernel event counts differ across runs: %d vs %d", a.Workload, a.Events, b.Events)
		}
	}
	if err := r1.Validate(); err != nil {
		t.Errorf("result fails its own schema validation: %v", err)
	}
}

// TestRunSeedSensitivity guards the other direction: a different seed must
// produce a different fingerprint, or the fingerprint isn't actually
// covering the simulated outcome.
func TestRunSeedSensitivity(t *testing.T) {
	cfg := benchCfg()
	r1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 8
	r2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Workloads {
		if r1.Workloads[i].Fingerprint == r2.Workloads[i].Fingerprint {
			t.Errorf("%s: fingerprint identical across seeds 7 and 8", r1.Workloads[i].Workload)
		}
	}
}

// TestTieredRunAwaitCollapse measures the same configuration at both tiers:
// the flash run must report a collapsed MapReduce-disk await (the effect the
// checked-in BENCH_ssdtier.json documents), and its fingerprint must differ
// — moving the intermediate volumes to a different device model changes the
// simulated outcome by design.
func TestTieredRunAwaitCollapse(t *testing.T) {
	// Tiered fleets scale strictly; 16384 keeps both device capacities
	// above the sector floor (benchCfg's 262144 would not).
	cfg := Config{
		Scale: 16384, Slaves: 3, MapTaskTarget: 8, Seed: 7, Iterations: 1,
		Workloads: []core.Workload{core.TS},
	}
	hdd, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tier = disk.ClassSSD
	ssd, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, s := hdd.Workloads[0], ssd.Workloads[0]
	if h.MRAwaitMs <= 0 || s.MRAwaitMs <= 0 {
		t.Fatalf("await metrics missing: hdd %.3f ms, ssd %.3f ms", h.MRAwaitMs, s.MRAwaitMs)
	}
	if s.MRAwaitMs >= h.MRAwaitMs {
		t.Errorf("MR await did not collapse on flash: %.3f ms vs %.3f ms", s.MRAwaitMs, h.MRAwaitMs)
	}
	if h.Fingerprint == s.Fingerprint {
		t.Error("fingerprint identical across tiers: tier is not reaching the simulation")
	}
}

// TestLoadFileRejectsSchemaMismatch: feeding an old-schema result as
// -baseline must fail loudly, not be compared field-by-field against a
// layout it predates.
func TestLoadFileRejectsSchemaMismatch(t *testing.T) {
	r := &Result{
		Schema: SchemaVersion - 1,
		Config: Config{Scale: 65536, Slaves: 4, Iterations: 1},
		Workloads: []WorkloadResult{{
			Workload: "TS", WallNS: 1, Events: 1, Fingerprint: "deadbeef",
		}},
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_old.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadFile(path)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("LoadFile(old schema) = %v, want schema-mismatch error", err)
	}
}
