package bench

import (
	"context"
	"testing"

	"iochar/internal/core"
)

// benchCfg is a small two-workload configuration that still exercises the
// full pipeline (sort-heavy TS, combiner-heavy AGG).
func benchCfg() Config {
	return Config{
		Scale: 262144, Slaves: 3, MapTaskTarget: 16, Seed: 7, Iterations: 1,
		Workloads: []core.Workload{core.TS, core.AGG},
	}
}

// TestRunDeterminism is the harness's core guarantee: two runs at the same
// seed and configuration produce identical simulated outcomes — virtual
// time, kernel event count, and the full outcome fingerprint. The
// optimization workflow leans on this: a hot-path change is only a speedup
// if the fingerprint survives it.
func TestRunDeterminism(t *testing.T) {
	cfg := benchCfg()
	r1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Workloads) != len(r2.Workloads) {
		t.Fatalf("workload counts differ: %d vs %d", len(r1.Workloads), len(r2.Workloads))
	}
	for i := range r1.Workloads {
		a, b := r1.Workloads[i], r2.Workloads[i]
		if a.Fingerprint != b.Fingerprint {
			t.Errorf("%s: fingerprints differ across runs: %s vs %s", a.Workload, a.Fingerprint, b.Fingerprint)
		}
		if a.VirtualNS != b.VirtualNS {
			t.Errorf("%s: virtual time differs across runs: %d vs %d", a.Workload, a.VirtualNS, b.VirtualNS)
		}
		if a.Events != b.Events {
			t.Errorf("%s: kernel event counts differ across runs: %d vs %d", a.Workload, a.Events, b.Events)
		}
	}
	if err := r1.Validate(); err != nil {
		t.Errorf("result fails its own schema validation: %v", err)
	}
}

// TestRunSeedSensitivity guards the other direction: a different seed must
// produce a different fingerprint, or the fingerprint isn't actually
// covering the simulated outcome.
func TestRunSeedSensitivity(t *testing.T) {
	cfg := benchCfg()
	r1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 8
	r2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Workloads {
		if r1.Workloads[i].Fingerprint == r2.Workloads[i].Fingerprint {
			t.Errorf("%s: fingerprint identical across seeds 7 and 8", r1.Workloads[i].Workload)
		}
	}
}
