// Package bench is the simulator's performance harness: it executes each
// workload (and optionally the full cold -all experiment matrix) at fixed
// seeds and scale, measures host wall-clock, kernel events/sec, allocation
// volume and heap footprint, and packages the numbers as a schema-versioned
// result that is comparable across commits.
//
// Two properties make the numbers trustworthy:
//
//   - Every run records a deterministic fingerprint of its simulated outcome
//     (virtual wall time, kernel event count, byte totals, job counters).
//     Two revisions may only be speed-compared when their fingerprints
//     match — an optimization that changes simulated results is a bug, not
//     a speedup, and Compare reports exactly that.
//   - Results embed the configuration and environment they were measured
//     under, so a BENCH_<rev>.json is self-describing.
package bench

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"iochar/internal/core"
	"iochar/internal/disk"
	"iochar/internal/report"
)

// SchemaVersion identifies the result JSON layout. Bump it whenever a field
// changes meaning, so downstream tooling can reject results it would
// misread. v2 added Config.Tier and the per-workload device-await metrics
// (hdfs_await_ms / mr_await_ms) that quantify the intermediate-tier effect.
const SchemaVersion = 2

// Config fixes everything that determines a benchmark run.
type Config struct {
	Scale         int64   `json:"scale"`
	Slaves        int     `json:"slaves"`
	MapTaskTarget int64   `json:"map_task_target"`
	Seed          int64   `json:"seed"`
	InputFraction float64 `json:"input_fraction,omitempty"`
	// Racks places slave i in rack i%Racks behind a ToR switch; 0 or 1
	// keeps the flat single-rack network (byte-identical to pre-rack
	// results). UplinkBPS caps each rack's uplink (0 = NIC rate).
	Racks     int   `json:"racks,omitempty"`
	UplinkBPS int64 `json:"uplink_bps,omitempty"`
	// Iterations is how many times each workload executes; wall-clock is
	// the minimum across iterations (the least-noise estimator), allocation
	// counts the per-iteration mean.
	Iterations int `json:"iterations"`
	// Workloads to measure; empty means the paper's four plus Join.
	Workloads []core.Workload `json:"workloads,omitempty"`
	// Tier selects the device class backing the intermediate-data volumes
	// for the per-workload measurements (HDFS data disks stay mechanical).
	// The suite measurement always runs untiered: its output hash is the
	// correctness anchor, and it must stay comparable across results that
	// differ only in Tier. Tiered fleets scale strictly, so a Tier of
	// ClassSSD constrains Scale to factors both device capacities survive.
	Tier disk.Class `json:"tier,omitempty"`
	// Suite, when true, additionally measures the cold full -all matrix
	// (sequential, fresh suite) and hashes its rendered output — the
	// correctness gate for hot-path optimization.
	Suite bool `json:"suite"`
	// ProfileDir, when set, captures cpu.pprof and heap.pprof there.
	ProfileDir string `json:"-"`
}

// Quick returns the smoke-test configuration: small inputs, one iteration,
// suite included. It finishes in well under a minute on commodity hardware.
func Quick() Config {
	return Config{Scale: 65536, Slaves: 4, MapTaskTarget: 24, Seed: 1, Iterations: 1, Suite: true}
}

// Default returns the standard measurement configuration used for the
// checked-in BENCH_*.json trajectory: large enough that per-workload wall
// times are tens-of-milliseconds-noise-proof, three iterations.
func Default() Config {
	return Config{Scale: 16384, Slaves: 10, MapTaskTarget: 64, Seed: 1, Iterations: 3, Suite: true}
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 16384
	}
	if c.Slaves <= 0 {
		c.Slaves = 10
	}
	if c.MapTaskTarget <= 0 {
		c.MapTaskTarget = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Iterations <= 0 {
		c.Iterations = 1
	}
	if len(c.Workloads) == 0 {
		c.Workloads = append(core.PaperWorkloads(), core.Join)
	}
	return c
}

func (c Config) options() core.Options {
	return core.NewOptions(
		core.WithScale(c.Scale),
		core.WithSlaves(c.Slaves),
		core.WithRacks(c.Racks),
		core.WithUplink(c.UplinkBPS),
		core.WithMapTaskTarget(c.MapTaskTarget),
		core.WithSeed(c.Seed),
		core.WithInputFraction(c.InputFraction),
	)
}

// workloadOptions is options() plus the tier policy: only the per-workload
// measurements tier; the suite measurement stays on options() so its output
// hash is tier-invariant.
func (c Config) workloadOptions() core.Options {
	return c.options().With(core.WithIntermediateTier(c.Tier))
}

// WorkloadResult is one workload's measurement.
type WorkloadResult struct {
	Workload   string `json:"workload"`
	Iterations int    `json:"iterations"`

	// Host-side cost.
	WallNS       int64   `json:"wall_ns"` // min across iterations
	EventsPerSec float64 `json:"events_per_sec"`
	AllocBytes   uint64  `json:"alloc_bytes"`   // mean TotalAlloc delta per run
	AllocObjects uint64  `json:"alloc_objects"` // mean Mallocs delta per run
	HeapBytes    uint64  `json:"heap_bytes"`    // max post-run HeapAlloc (pre-GC)

	// Simulated outcome (deterministic; part of the fingerprint).
	VirtualNS int64  `json:"virtual_ns"`
	Events    uint64 `json:"events"`

	// Device-await means over busy intervals (deterministic, but NOT part
	// of the fingerprint: results at different tiers are expected to differ
	// here — that delta is the point of a tier comparison).
	HDFSAwaitMs float64 `json:"hdfs_await_ms"`
	MRAwaitMs   float64 `json:"mr_await_ms"`

	// Fingerprint hashes the simulated outcome; equal seeds and revisions
	// with unequal fingerprints are incomparable.
	Fingerprint string `json:"fingerprint"`
}

// SuiteResult is the cold full-matrix measurement.
type SuiteResult struct {
	Cells        int    `json:"cells"`
	WallNS       int64  `json:"wall_ns"`
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
	HeapBytes    uint64 `json:"heap_bytes"`
	// OutputSHA256 hashes the rendered -all byte stream (every figure and
	// table) — byte-identity across revisions is the golden gate.
	OutputSHA256 string `json:"output_sha256"`
}

// Result is one revision's complete measurement.
type Result struct {
	Schema    int    `json:"schema"`
	Rev       string `json:"rev,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Config    Config           `json:"config"`
	Workloads []WorkloadResult `json:"workloads"`
	Suite     *SuiteResult     `json:"suite,omitempty"`

	// Baseline, when the run was given one, embeds the prior revision's
	// result so the emitted JSON carries its own comparison point.
	Baseline *Result `json:"baseline,omitempty"`
}

// Validate checks the structural invariants CI relies on.
func (r *Result) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("bench: schema %d, want %d", r.Schema, SchemaVersion)
	}
	if len(r.Workloads) == 0 {
		return fmt.Errorf("bench: no workload results")
	}
	for _, w := range r.Workloads {
		if w.Workload == "" || w.WallNS <= 0 || w.Events == 0 || w.Fingerprint == "" {
			return fmt.Errorf("bench: incomplete result for workload %q", w.Workload)
		}
	}
	if r.Config.Suite && r.Suite == nil {
		return fmt.Errorf("bench: config requested suite measurement but result has none")
	}
	if r.Suite != nil && (r.Suite.Cells == 0 || r.Suite.OutputSHA256 == "") {
		return fmt.Errorf("bench: incomplete suite result")
	}
	return nil
}

// fingerprint hashes the deterministic outcome of one run: virtual wall
// time, kernel event count, the two disk groups' whole-run totals, and the
// per-job counters. It deliberately excludes anything host-dependent.
func fingerprint(rep *core.RunReport) string {
	h := sha256.New()
	fmt.Fprintf(h, "wall=%d events=%d\n", rep.Wall, rep.Events)
	fmt.Fprintf(h, "hdfs=%d,%d,%d,%d\n",
		rep.HDFS.TotalReadBytes, rep.HDFS.TotalWrittenBytes, rep.HDFS.TotalReads, rep.HDFS.TotalWrites)
	fmt.Fprintf(h, "mr=%d,%d,%d,%d\n",
		rep.MR.TotalReadBytes, rep.MR.TotalWrittenBytes, rep.MR.TotalReads, rep.MR.TotalWrites)
	for i, j := range rep.Jobs {
		fmt.Fprintf(h, "job=%d maps=%d reduces=%d in=%d out=%d spills=%d shuffle=%d runtime=%d\n",
			i, j.MapTasks, j.ReduceTasks, j.MapInputBytes, j.ReduceOutputBytes,
			j.Spills, j.ShuffleBytes, j.Runtime())
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Fingerprint exposes the run fingerprint for tests (determinism assertions)
// and external tooling.
func Fingerprint(rep *core.RunReport) string { return fingerprint(rep) }

// memSnapshot reads the allocator counters after a forced GC, so deltas
// across a run measure the run alone.
func memSnapshot() runtime.MemStats {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms
}

// Run executes the configured measurement. It is deliberately sequential —
// parallel cells would share the allocator and scheduler and contaminate
// each other's numbers.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{
		Schema:    SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Config:    cfg,
	}

	var cpuProf *os.File
	if cfg.ProfileDir != "" {
		if err := os.MkdirAll(cfg.ProfileDir, 0o755); err != nil {
			return nil, err
		}
		f, err := os.Create(filepath.Join(cfg.ProfileDir, "cpu.pprof"))
		if err != nil {
			return nil, err
		}
		cpuProf = f
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
	}

	wlOpts := cfg.workloadOptions()
	factors := core.SlotsRuns[0] // the baseline cell: 1_8 slots, 16 GB, compress on
	for _, w := range cfg.Workloads {
		wr := WorkloadResult{Workload: w.String(), Iterations: cfg.Iterations}
		for it := 0; it < cfg.Iterations; it++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			before := memSnapshot()
			start := time.Now()
			rep, err := core.RunOneContext(ctx, w, factors, wlOpts)
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("bench: %s iteration %d: %w", w, it, err)
			}
			var after runtime.MemStats
			runtime.ReadMemStats(&after) // pre-GC: heap still holds the run
			fp := fingerprint(rep)
			if wr.Fingerprint == "" {
				wr.Fingerprint = fp
				wr.VirtualNS = int64(rep.Wall)
				wr.Events = rep.Events
				wr.HDFSAwaitMs = rep.HDFS.AwaitMs.MeanNonzero()
				wr.MRAwaitMs = rep.MR.AwaitMs.MeanNonzero()
			} else if fp != wr.Fingerprint {
				return nil, fmt.Errorf("bench: %s is nondeterministic: fingerprint %s then %s", w, wr.Fingerprint, fp)
			}
			if wr.WallNS == 0 || int64(wall) < wr.WallNS {
				wr.WallNS = int64(wall)
			}
			wr.AllocBytes += after.TotalAlloc - before.TotalAlloc
			wr.AllocObjects += after.Mallocs - before.Mallocs
			if h := after.HeapAlloc; h > wr.HeapBytes {
				wr.HeapBytes = h
			}
		}
		wr.AllocBytes /= uint64(cfg.Iterations)
		wr.AllocObjects /= uint64(cfg.Iterations)
		wr.EventsPerSec = float64(wr.Events) / (float64(wr.WallNS) / 1e9)
		res.Workloads = append(res.Workloads, wr)
	}

	if cfg.Suite {
		// Always untiered (cfg.options, not workloadOptions): the suite hash
		// must stay comparable across results that differ only in Tier.
		sr, err := runSuite(ctx, cfg.options())
		if err != nil {
			return nil, err
		}
		res.Suite = sr
	}

	if cpuProf != nil {
		pprof.StopCPUProfile()
		cpuProf.Close()
		hf, err := os.Create(filepath.Join(cfg.ProfileDir, "heap.pprof"))
		if err != nil {
			return nil, err
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(hf)
		hf.Close()
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runSuite measures the cold full -all matrix: a fresh sequential suite,
// every figure and table rendered, output hashed.
func runSuite(ctx context.Context, opts core.Options) (*SuiteResult, error) {
	before := memSnapshot()
	start := time.Now()
	s := core.NewSuite(opts)
	if err := s.RunAll(ctx); err != nil {
		return nil, err
	}
	out := sha256.New()
	for _, n := range core.Figures() {
		fd, err := s.Figure(n)
		if err != nil {
			return nil, err
		}
		report.WriteFigure(out, fd)
	}
	for _, n := range core.Tables() {
		td, err := s.Table(n)
		if err != nil {
			return nil, err
		}
		report.WriteTable(out, td)
	}
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return &SuiteResult{
		Cells:        s.CachedRuns(),
		WallNS:       int64(wall),
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		AllocObjects: after.Mallocs - before.Mallocs,
		HeapBytes:    after.HeapAlloc,
		OutputSHA256: hex.EncodeToString(out.Sum(nil)),
	}, nil
}

// FileName returns the conventional result name for a revision.
func FileName(rev string) string {
	if rev == "" {
		rev = "dev"
	}
	return "BENCH_" + rev + ".json"
}

// WriteFile marshals r as indented JSON to path.
func WriteFile(path string, r *Result) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadFile reads and validates a result JSON.
func LoadFile(path string) (*Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &Result{}
	if err := json.Unmarshal(b, r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return r, nil
}
