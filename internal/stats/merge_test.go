package stats

import "testing"

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1, 1024, 11)
	b := NewHistogram(1, 1024, 11)
	for _, v := range []float64{0.5, 2, 8, 8, 100} {
		a.Observe(v)
	}
	for _, v := range []float64{8, 2000, 2000} {
		b.Observe(v)
	}
	a.Merge(b)
	if got, want := a.Total(), uint64(8); got != want {
		t.Errorf("merged total = %d, want %d", got, want)
	}
	if got, want := b.Total(), uint64(3); got != want {
		t.Errorf("merge mutated its argument: total = %d, want %d", got, want)
	}
	// Bucket-wise: the three 8s (two from a, one from b) share a bucket.
	ref := NewHistogram(1, 1024, 11)
	for _, v := range []float64{0.5, 2, 8, 8, 100, 8, 2000, 2000} {
		ref.Observe(v)
	}
	for i := range ref.Counts {
		if a.Counts[i] != ref.Counts[i] {
			t.Fatalf("bucket %d: merged %d, reference %d", i, a.Counts[i], ref.Counts[i])
		}
	}
}

func TestHistogramMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched shapes did not panic")
		}
	}()
	NewHistogram(1, 1024, 11).Merge(NewHistogram(1, 1024, 12))
}

// Merge must reuse the receiver's bucket array: rollups over many groups
// run inside sampled hot paths and cannot afford per-merge garbage.
func TestHistogramMergeAllocs(t *testing.T) {
	a := NewHistogram(1, 1024, 11)
	b := NewHistogram(1, 1024, 11)
	b.Observe(64)
	allocs := testing.AllocsPerRun(1000, func() { a.Merge(b) })
	if allocs != 0 {
		t.Errorf("Merge allocates %.1f objects per call, want 0", allocs)
	}
}
