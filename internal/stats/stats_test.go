package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func mkSeries(vals ...float64) *Series {
	s := NewSeries("t")
	for i, v := range vals {
		s.Add(time.Duration(i)*time.Second, v)
	}
	return s
}

func TestSeriesMaxMean(t *testing.T) {
	s := mkSeries(1, 5, 3)
	if s.Max() != 5 {
		t.Errorf("Max = %f, want 5", s.Max())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %f, want 3", s.Mean())
	}
}

func TestEmptySeriesZeroes(t *testing.T) {
	s := NewSeries("e")
	if s.Max() != 0 || s.Mean() != 0 || s.MeanNonzero() != 0 || s.FracAbove(0) != 0 || s.Percentile(50) != 0 {
		t.Error("empty series should return zeroes everywhere")
	}
}

func TestOutOfOrderAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s := NewSeries("x")
	s.Add(2*time.Second, 1)
	s.Add(1*time.Second, 1)
}

func TestMeanNonzeroSkipsIdleIntervals(t *testing.T) {
	s := mkSeries(0, 10, 0, 20, 0)
	if got := s.MeanNonzero(); got != 15 {
		t.Errorf("MeanNonzero = %f, want 15", got)
	}
}

func TestFracAbove(t *testing.T) {
	s := mkSeries(85, 91, 96, 99.5, 100)
	cases := []struct {
		thr  float64
		want float64
	}{{90, 0.8}, {95, 0.6}, {99, 0.4}}
	for _, c := range cases {
		if got := s.FracAbove(c.thr); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("FracAbove(%f) = %f, want %f", c.thr, got, c.want)
		}
	}
}

func TestFracAboveIsStrict(t *testing.T) {
	s := mkSeries(90, 90, 90)
	if got := s.FracAbove(90); got != 0 {
		t.Errorf("FracAbove(90) on all-90 = %f, want 0 (strict)", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	s := mkSeries(10, 20, 30, 40, 50)
	if got := s.Percentile(50); got != 30 {
		t.Errorf("P50 = %f, want 30", got)
	}
	if got := s.Percentile(100); got != 50 {
		t.Errorf("P100 = %f, want 50", got)
	}
	if got := s.Percentile(0); got != 10 {
		t.Errorf("P0 = %f, want 10", got)
	}
}

func TestDownsamplePreservesMeanApprox(t *testing.T) {
	s := NewSeries("big")
	for i := 0; i < 1000; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i%10))
	}
	d := s.Downsample(50)
	if d.Len() > 50 {
		t.Fatalf("downsampled to %d points, want <= 50", d.Len())
	}
	if math.Abs(d.Mean()-s.Mean()) > 0.5 {
		t.Errorf("downsample changed mean: %f vs %f", d.Mean(), s.Mean())
	}
}

func TestDownsampleNoopWhenSmall(t *testing.T) {
	s := mkSeries(1, 2, 3)
	if d := s.Downsample(10); d != s {
		t.Error("Downsample should return receiver when already small")
	}
}

func TestSummaryMoments(t *testing.T) {
	var m Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Observe(v)
	}
	if m.Mean() != 5 {
		t.Errorf("Mean = %f, want 5", m.Mean())
	}
	if m.Stddev() != 2 {
		t.Errorf("Stddev = %f, want 2", m.Stddev())
	}
	if m.MinV != 2 || m.MaxV != 9 {
		t.Errorf("Min/Max = %f/%f, want 2/9", m.MinV, m.MaxV)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var m Summary
	if m.Mean() != 0 || m.Stddev() != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram(1, 1024, 11)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Total() != 1000 {
		t.Fatalf("Total = %d, want 1000", h.Total())
	}
	q50 := h.Quantile(0.5)
	if q50 < 500 || q50 > 1024 {
		t.Errorf("Q50 = %f, want upper bound >= 500", q50)
	}
	q0 := h.Quantile(0)
	if q0 > 4 {
		t.Errorf("Q0 = %f, want small bucket", q0)
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewHistogram(0, 10, 4)
}

// Property: FracAbove is monotone non-increasing in the threshold and always
// within [0,1]; Percentile matches sorting for the nearest-rank definition.
func TestQuickSeriesProperties(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Abs(math.Mod(v, 1000)))
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := mkSeries(vals...)
		prev := 1.1
		for _, thr := range []float64{0, 10, 100, 500, 900} {
			fr := s.FracAbove(thr)
			if fr < 0 || fr > 1 || fr > prev {
				return false
			}
			prev = fr
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return s.Percentile(100) == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: Summary mean matches the direct mean and min<=mean<=max.
func TestQuickSummaryProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var m Summary
		sum := 0.0
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Mod(v, 1e6)
			m.Observe(v)
			sum += v
			n++
		}
		if n == 0 {
			return true
		}
		direct := sum / float64(n)
		if math.Abs(m.Mean()-direct) > 1e-6*math.Max(1, math.Abs(direct)) {
			return false
		}
		return m.MinV <= m.Mean()+1e-9 && m.Mean() <= m.MaxV+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
