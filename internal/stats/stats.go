// Package stats provides the small statistical toolkit the characterization
// framework needs: time series of sampled metrics, streaming summaries, and
// fixed-bucket histograms. Everything is deterministic and allocation-light.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is one sample of a metric at a virtual timestamp.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only time series of metric samples.
type Series struct {
	Name   string
	Points []Point
}

// NewSeries creates an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample. Timestamps are expected to be non-decreasing;
// out-of-order appends panic since they indicate a simulation bug.
func (s *Series) Add(t time.Duration, v float64) {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		panic(fmt.Sprintf("stats: out-of-order sample on %s: %v after %v", s.Name, t, s.Points[n-1].T))
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Values returns just the sample values, in order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Max returns the largest sample value, or 0 for an empty series.
func (s *Series) Max() float64 {
	max := 0.0
	for i, p := range s.Points {
		if i == 0 || p.V > max {
			max = p.V
		}
	}
	return max
}

// Mean returns the arithmetic mean of samples, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// MeanNonzero returns the mean over samples with V > 0 — useful for
// averaging per-interval latencies that are undefined in idle intervals.
func (s *Series) MeanNonzero() float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.V > 0 {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FracAbove returns the fraction of samples strictly greater than threshold.
// This is exactly the paper's Tables 6 and 7 (">90%util", ">95%util",
// ">99%util" ratios over the sampled execution).
func (s *Series) FracAbove(threshold float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	n := 0
	for _, p := range s.Points {
		if p.V > threshold {
			n++
		}
	}
	return float64(n) / float64(len(s.Points))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank on a
// sorted copy. Empty series yield 0.
func (s *Series) Percentile(p float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	vals := s.Values()
	sort.Float64s(vals)
	if p <= 0 {
		return vals[0]
	}
	if p >= 100 {
		return vals[len(vals)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	return vals[rank]
}

// Downsample reduces the series to at most n points by averaging equal-width
// windows, preserving overall shape for compact plotting. It returns the
// receiver unchanged if it already fits.
func (s *Series) Downsample(n int) *Series {
	if n <= 0 || len(s.Points) <= n {
		return s
	}
	out := NewSeries(s.Name)
	per := float64(len(s.Points)) / float64(n)
	for i := 0; i < n; i++ {
		lo, hi := int(float64(i)*per), int(float64(i+1)*per)
		if hi > len(s.Points) {
			hi = len(s.Points)
		}
		if lo >= hi {
			continue
		}
		sum := 0.0
		for _, p := range s.Points[lo:hi] {
			sum += p.V
		}
		out.Add(s.Points[hi-1].T, sum/float64(hi-lo))
	}
	return out
}

// Summary holds streaming moments of a value stream.
type Summary struct {
	N     uint64
	Sum   float64
	SumSq float64
	MinV  float64
	MaxV  float64
}

// Observe folds one value into the summary.
func (m *Summary) Observe(v float64) {
	if m.N == 0 || v < m.MinV {
		m.MinV = v
	}
	if m.N == 0 || v > m.MaxV {
		m.MaxV = v
	}
	m.N++
	m.Sum += v
	m.SumSq += v * v
}

// Mean returns the running mean (0 if empty).
func (m *Summary) Mean() float64 {
	if m.N == 0 {
		return 0
	}
	return m.Sum / float64(m.N)
}

// Stddev returns the population standard deviation (0 if fewer than 2).
func (m *Summary) Stddev() float64 {
	if m.N < 2 {
		return 0
	}
	mean := m.Mean()
	v := m.SumSq/float64(m.N) - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Histogram is a fixed-bucket histogram over [0, +inf) with geometric bucket
// boundaries, suitable for request sizes and latencies. All state is in the
// exported fields, so a Histogram survives a JSON round trip intact (run
// reports carrying histograms are persisted by internal/runcache).
type Histogram struct {
	Bounds []float64 // ascending upper bounds; final bucket is overflow
	Counts []uint64
}

// NewHistogram builds a histogram with nbuckets geometric buckets spanning
// [min, max]. nbuckets must be >= 2 and 0 < min < max.
func NewHistogram(min, max float64, nbuckets int) *Histogram {
	if nbuckets < 2 || min <= 0 || max <= min {
		panic("stats: invalid histogram shape")
	}
	h := &Histogram{
		Bounds: make([]float64, nbuckets),
		Counts: make([]uint64, nbuckets+1),
	}
	ratio := math.Pow(max/min, 1/float64(nbuckets-1))
	b := min
	for i := range h.Bounds {
		h.Bounds[i] = b
		b *= ratio
	}
	return h
}

// Observe adds one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Counts[i]++
}

// Merge folds other's observations into h in place, reusing h's bucket
// array — no allocation, so aggregating per-disk distributions into group
// and cluster rollups costs nothing per merge. Both histograms must have
// the same shape (same constructor arguments); merging mismatched shapes
// panics, since the bucket-wise sum would be meaningless.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.Bounds) != len(other.Bounds) || len(h.Counts) != len(other.Counts) {
		panic("stats: merging histograms of different shapes")
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Quantile returns an upper-bound estimate of the q-th quantile (0..1).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Bounds[len(h.Bounds)-1]
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}
