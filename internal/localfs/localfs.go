// Package localfs implements the per-disk local filesystem used underneath
// both the HDFS datanode (block files) and the MapReduce runtime
// (intermediate spill/merge/shuffle files).
//
// It is an extent-allocating, append-write filesystem: file contents are
// real bytes held in memory (the correctness layer), while every access is
// translated to device sector ranges and pushed through the page cache to
// the modeled disk (the timing layer). When many writers grow files
// concurrently their extents interleave on the device — the natural origin
// of the fragmented, seek-heavy layout that makes MapReduce intermediate
// I/O "small and random" in the paper.
package localfs

import (
	"fmt"
	"sort"

	"iochar/internal/disk"
	"iochar/internal/pagecache"
	"iochar/internal/sim"
)

// DefaultExtentSectors is the allocation granularity: 1 MiB extents.
const DefaultExtentSectors = 2048

// Stats counts filesystem-level activity.
type Stats struct {
	FilesCreated uint64
	FilesDeleted uint64
	BytesWritten uint64
	BytesRead    uint64
	Extents      uint64 // currently allocated extents across live files
}

// extent is a contiguous run of device sectors.
type extent struct {
	sector  int64
	sectors int64
}

func (e extent) end() int64 { return e.sector + e.sectors }

// file is an on-"disk" file: real contents plus its device extents.
type file struct {
	name    string
	size    int64
	data    []byte
	extents []extent
	alloced int64 // sectors allocated
	opens   int
	deleted bool
}

// FS is one disk's filesystem. Create with New.
type FS struct {
	env     *sim.Env
	cache   *pagecache.Cache
	d       *disk.Disk
	extSize int64

	files    map[string]*file
	free     []extent // sorted, coalesced free extents
	nextFree int64    // bump pointer past the highest allocation
	stats    Stats
	failed   bool // fail-stopped device (fault injection)

	journalRecs int64 // metadata journal records since mount (sizes remount replay)
}

// New creates a filesystem covering the whole device behind cache.
func New(env *sim.Env, d *disk.Disk, cache *pagecache.Cache) *FS {
	return &FS{
		env:     env,
		cache:   cache,
		d:       d,
		extSize: DefaultExtentSectors,
		files:   make(map[string]*file),
	}
}

// SetExtentSectors overrides the allocation granularity (testing and
// fragmentation ablations).
func (fs *FS) SetExtentSectors(n int64) {
	if n <= 0 {
		panic("localfs: non-positive extent size")
	}
	fs.extSize = n
}

// Stats returns a copy of the counters.
func (fs *FS) Stats() Stats { return fs.stats }

// Cache returns the page cache backing this filesystem.
func (fs *FS) Cache() *pagecache.Cache { return fs.cache }

// Disk returns the device backing this filesystem.
func (fs *FS) Disk() *disk.Disk { return fs.d }

// Fail marks the device fail-stopped: its contents are considered lost and
// volume rotations skip it. Timing state is untouched — already-issued I/O
// completes, as a dying drive's in-flight requests do.
func (fs *FS) Fail() { fs.failed = true }

// Failed reports whether the device has fail-stopped.
func (fs *FS) Failed() bool { return fs.failed }

// Exists reports whether name exists.
func (fs *FS) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// Size returns the byte size of name, or -1 if absent.
func (fs *FS) Size(name string) int64 {
	f, ok := fs.files[name]
	if !ok {
		return -1
	}
	return f.size
}

// List returns all file names, sorted.
func (fs *FS) List() []string {
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// File is an open handle. Writers append; readers use ReadAt with a
// per-handle readahead state.
type File struct {
	fs    *FS
	f     *file
	rs    pagecache.ReadState
	stage disk.Stage
}

// SetStage tags this handle with the pipeline stage on whose behalf it does
// I/O. Subsequent Append and ReadAt calls carry the tag down to the physical
// requests they cause (including deferred writeback of the dirtied pages).
// The tag is per handle, not per file: a spill file re-read by the merge pass
// retags its handle rather than the data.
func (h *File) SetStage(s disk.Stage) { h.stage = s }

// Stage returns the handle's current pipeline-stage tag.
func (h *File) Stage() disk.Stage { return h.stage }

// Create creates an empty file and returns a handle. Creating an existing
// name truncates it (the MapReduce runtime never does; tests may).
func (fs *FS) Create(name string) *File {
	if old, ok := fs.files[name]; ok {
		fs.release(old)
	}
	f := &file{name: name}
	fs.files[name] = f
	fs.stats.FilesCreated++
	fs.journalRecs++
	f.opens++
	return &File{fs: fs, f: f}
}

// Open returns a read handle, or an error if absent.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("localfs: open %s on %s: no such file", name, fs.d.P.Name)
	}
	f.opens++
	return &File{fs: fs, f: f}, nil
}

// Delete removes a file: extents return to the free list and its cached
// pages are discarded without writeback — deleted intermediate data that
// never aged out of the cache produces no disk I/O at all.
func (fs *FS) Delete(name string) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("localfs: delete %s on %s: no such file", name, fs.d.P.Name)
	}
	fs.release(f)
	delete(fs.files, name)
	fs.stats.FilesDeleted++
	fs.journalRecs++
	return nil
}

func (fs *FS) release(f *file) {
	f.deleted = true
	for _, e := range f.extents {
		fs.cache.Discard(e.sector, int(e.sectors))
		fs.freeExtent(e)
	}
	fs.stats.Extents -= uint64(len(f.extents))
	f.extents = nil
	f.data = nil
}

// Name returns the file's name.
func (h *File) Name() string { return h.f.name }

// FS returns the filesystem holding this file.
func (h *File) FS() *FS { return h.fs }

// Size returns the current byte size.
func (h *File) Size() int64 { return h.f.size }

// Append writes data at the end of the file, blocking p for the page-cache
// work (which may throttle on the dirty ratio). Contents are stored
// verbatim; timing flows through cache and disk.
func (h *File) Append(p *sim.Proc, data []byte) {
	if h.f.deleted {
		panic("localfs: append to deleted file " + h.f.name)
	}
	if len(data) == 0 {
		return
	}
	start := h.f.size
	h.f.data = append(h.f.data, data...)
	h.f.size += int64(len(data))
	h.fs.stats.BytesWritten += uint64(len(data))

	needSectors := (h.f.size + disk.SectorSize - 1) / disk.SectorSize
	for h.f.alloced < needSectors {
		h.fs.grow(h.f, needSectors-h.f.alloced)
	}
	for _, r := range h.f.sectorRanges(start, int64(len(data))) {
		h.fs.cache.WriteStaged(p, r.sector, int(r.sectors), h.stage)
	}
}

// Install appends data without charging any virtual time or touching the
// page cache — the bytes appear on disk, cold. It exists for experiment
// setup (loading input datasets), which the paper's measurements exclude.
func (h *File) Install(data []byte) {
	if h.f.deleted {
		panic("localfs: install into deleted file " + h.f.name)
	}
	h.f.data = append(h.f.data, data...)
	h.f.size += int64(len(data))
	needSectors := (h.f.size + disk.SectorSize - 1) / disk.SectorSize
	for h.f.alloced < needSectors {
		h.fs.grow(h.f, needSectors-h.f.alloced)
	}
}

// ReadAt returns length bytes from offset off, blocking p for the cache
// fetches. Short reads at EOF return the available suffix. The content
// slice is pinned before blocking: if the file is deleted while the read
// waits on the disk (read-repair purging a corrupt replica under an
// in-flight reader), the handle serves the bytes it opened — POSIX unlink
// semantics — instead of tripping over the released file table entry.
func (h *File) ReadAt(p *sim.Proc, off, length int64) []byte {
	if off < 0 || off >= h.f.size {
		return nil
	}
	if off+length > h.f.size {
		length = h.f.size - off
	}
	data := h.f.data[off : off+length]
	for _, r := range h.f.sectorRanges(off, length) {
		h.rs.Limit = h.f.extentEnd(r.sector)
		h.fs.cache.ReadStaged(p, &h.rs, r.sector, int(r.sectors), h.stage)
	}
	h.fs.stats.BytesRead += uint64(length)
	return data
}

// Sync flushes the whole cache (per-file dirty tracking is not modeled; the
// runtime syncs at well-defined points where whole-cache flush is faithful
// enough).
func (h *File) Sync(p *sim.Proc) { h.fs.cache.Sync(p) }

// Close releases the handle.
func (h *File) Close() {
	if h.f.opens > 0 {
		h.f.opens--
	}
}

// sectorRanges maps the byte range [off, off+length) onto device sector
// runs, one per extent crossed.
func (f *file) sectorRanges(off, length int64) []extent {
	if length <= 0 {
		return nil
	}
	firstSect := off / disk.SectorSize
	lastSect := (off + length + disk.SectorSize - 1) / disk.SectorSize
	var out []extent
	var walked int64
	for _, e := range f.extents {
		extFirst := walked
		extLast := walked + e.sectors
		walked = extLast
		lo, hi := maxI(firstSect, extFirst), minI(lastSect, extLast)
		if lo >= hi {
			continue
		}
		out = append(out, extent{sector: e.sector + (lo - extFirst), sectors: hi - lo})
	}
	return out
}

// extentEnd returns the exclusive device-sector bound of the extent
// containing sector, used to fence readahead inside the file's own space.
func (f *file) extentEnd(sector int64) int64 {
	for _, e := range f.extents {
		if sector >= e.sector && sector < e.end() {
			return e.end()
		}
	}
	return sector
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// grow allocates at least want more sectors for f (rounded up to the extent
// granularity), preferring to extend the file's last extent when the next
// device sectors are free — files written alone stay sequential; files
// written concurrently interleave.
func (fs *FS) grow(f *file, want int64) {
	n := fs.extSize
	for n < want {
		n += fs.extSize
	}
	fs.journalRecs++
	// Try to extend in place from the bump pointer.
	if len(f.extents) > 0 && f.extents[len(f.extents)-1].end() == fs.nextFree {
		if fs.nextFree+n <= fs.d.P.Sectors {
			f.extents[len(f.extents)-1].sectors += n
			f.alloced += n
			fs.nextFree += n
			return
		}
	}
	e := fs.allocExtent(n)
	// Coalesce with the previous extent if adjacent.
	if len(f.extents) > 0 && f.extents[len(f.extents)-1].end() == e.sector {
		f.extents[len(f.extents)-1].sectors += e.sectors
	} else {
		f.extents = append(f.extents, e)
		fs.stats.Extents++
	}
	f.alloced += n
}

// allocExtent takes n sectors: first-fit from the free list, else from the
// bump pointer. Exhaustion panics — experiments must size their disks.
func (fs *FS) allocExtent(n int64) extent {
	for i, e := range fs.free {
		if e.sectors >= n {
			out := extent{sector: e.sector, sectors: n}
			if e.sectors == n {
				fs.free = append(fs.free[:i], fs.free[i+1:]...)
			} else {
				fs.free[i] = extent{sector: e.sector + n, sectors: e.sectors - n}
			}
			return out
		}
	}
	if fs.nextFree+n > fs.d.P.Sectors {
		panic(fmt.Sprintf("localfs: disk %s full (%d sectors, need %d more)", fs.d.P.Name, fs.d.P.Sectors, n))
	}
	out := extent{sector: fs.nextFree, sectors: n}
	fs.nextFree += n
	return out
}

// freeExtent returns e to the free list, keeping it sorted and coalesced.
func (fs *FS) freeExtent(e extent) {
	i := sort.Search(len(fs.free), func(i int) bool { return fs.free[i].sector >= e.sector })
	fs.free = append(fs.free, extent{})
	copy(fs.free[i+1:], fs.free[i:])
	fs.free[i] = e
	// Coalesce with neighbours.
	if i+1 < len(fs.free) && fs.free[i].end() == fs.free[i+1].sector {
		fs.free[i].sectors += fs.free[i+1].sectors
		fs.free = append(fs.free[:i+1], fs.free[i+2:]...)
	}
	if i > 0 && fs.free[i-1].end() == fs.free[i].sector {
		fs.free[i-1].sectors += fs.free[i].sectors
		fs.free = append(fs.free[:i], fs.free[i+1:]...)
	}
}

// FreeExtentCount returns the size of the free list (fragmentation probe).
func (fs *FS) FreeExtentCount() int { return len(fs.free) }

// LeakedExtents returns the number of device sectors that are neither on
// the free list nor backing a live file — allocation leaked by a delete
// path that failed to return extents. Zero on a correct filesystem at any
// point; the chaos harness checks it after every run.
func (fs *FS) LeakedExtents() int64 {
	leaked := fs.nextFree
	for _, e := range fs.free {
		leaked -= e.sectors
	}
	for _, f := range fs.files {
		leaked -= f.alloced
	}
	return leaked
}

// ExtentCount returns the number of extents backing name, or 0 if absent —
// a direct fragmentation measure.
func (fs *FS) ExtentCount(name string) int {
	f, ok := fs.files[name]
	if !ok {
		return 0
	}
	return len(f.extents)
}
