// Crash–restart semantics for one volume: what survives a power loss, what
// does not, and what remount costs. The contract mirrors a journaling
// filesystem (ext4-style metadata journal, no data journal): metadata is
// always recoverable by replaying a small journal, file data survives only
// up to its flushed prefix — bytes whose pages were still dirty in the page
// cache at crash time are gone, and the file comes back truncated at the
// first unflushed page.
package localfs

import (
	"iochar/internal/disk"
	"iochar/internal/sim"
)

// journalRecSize is the modeled size of one metadata journal record.
const journalRecSize = 64

// maxJournalSectors caps the remount replay charge — real journals are
// checkpointed and bounded (128 MiB default in ext4; we model a small one).
const maxJournalSectors = 4096 // 2 MiB

// Crash models a power loss on this volume. Every resident page-cache page
// is dropped without writeback; each file is truncated to its flushed
// prefix (the bytes before its first dirty page — data past that point
// never reached the platter); whole-extent allocations past the truncated
// size are released, as a journal replay frees uncommitted allocations.
// The volume is left failed; Remount brings it back.
func (fs *FS) Crash() {
	names := fs.sortedNames()
	for _, name := range names {
		fs.truncateToFlushed(fs.files[name])
	}
	fs.cache.DropAll()
	fs.failed = true
}

// truncateToFlushed cuts f at the byte offset of its first dirty page and
// frees the now-unneeded tail sectors.
func (fs *FS) truncateToFlushed(f *file) {
	if f.size == 0 {
		return
	}
	// Find the first dirty device sector across the file's extents, walking
	// them in file order so the earliest file offset wins.
	cut := f.size
	var walked int64 // bytes of file covered by prior extents
	for _, r := range f.sectorRanges(0, f.size) {
		if s := fs.cache.FirstDirtyInRange(r.sector, int(r.sectors)); s >= 0 {
			off := walked + (s-r.sector)*disk.SectorSize
			if off < cut {
				cut = off
			}
			break // extents are visited in file order; first hit is lowest
		}
		walked += r.sectors * disk.SectorSize
	}
	if cut >= f.size {
		return
	}
	f.size = cut
	f.data = f.data[:cut]
	fs.shrinkAlloc(f, (cut+disk.SectorSize-1)/disk.SectorSize)
}

// shrinkAlloc releases f's allocated sectors beyond keep, splitting the
// extent containing the cut point if needed.
func (fs *FS) shrinkAlloc(f *file, keep int64) {
	if f.alloced <= keep {
		return
	}
	var covered int64
	for i := 0; i < len(f.extents); i++ {
		e := f.extents[i]
		if covered >= keep {
			// Whole extent is past the cut: free it.
			fs.freeExtent(e)
			f.extents = append(f.extents[:i], f.extents[i+1:]...)
			fs.stats.Extents--
			i--
			continue
		}
		if covered+e.sectors > keep {
			// Split: keep the prefix, free the tail.
			keepHere := keep - covered
			fs.freeExtent(extent{sector: e.sector + keepHere, sectors: e.sectors - keepHere})
			f.extents[i].sectors = keepHere
			covered = keep
			continue
		}
		covered += e.sectors
	}
	f.alloced = keep
}

// Remount brings a crashed volume back: the metadata journal is replayed
// (charged as one sequential read sized by the journal's record count) and
// the volume rejoins service. Caller is the fault injector's rejoin path.
func (fs *FS) Remount(p *sim.Proc) {
	recs := fs.journalRecs
	nsect := (recs*journalRecSize + disk.SectorSize - 1) / disk.SectorSize
	if nsect > maxJournalSectors {
		nsect = maxJournalSectors
	}
	if nsect > 0 {
		req := fs.d.SubmitStaged(disk.Read, 0, int(nsect), disk.StageNone)
		fs.d.Wait(p, req)
	}
	fs.failed = false
}

// Corrupt flips (bit-inverts) n bytes of name starting at off — silent
// media corruption: no timing, no cache interaction, just wrong bytes the
// next reader will see. Returns false if the file is absent or the range
// does not overlap it.
func (fs *FS) Corrupt(name string, off int64, n int) bool {
	f, ok := fs.files[name]
	if !ok || off < 0 || off >= f.size || n <= 0 {
		return false
	}
	end := off + int64(n)
	if end > f.size {
		end = f.size
	}
	for i := off; i < end; i++ {
		f.data[i] ^= 0xFF
	}
	return true
}

// Peek returns name's raw contents with no timing charge — the verification
// backdoor used by audits and the datanode's remount block scan (real
// datanodes read their own local metadata cheaply at startup; modeling that
// traffic is out of scope, while scrub reads are charged for real).
func (fs *FS) Peek(name string) []byte {
	f, ok := fs.files[name]
	if !ok {
		return nil
	}
	return f.data
}

func (fs *FS) sortedNames() []string {
	return fs.List()
}
