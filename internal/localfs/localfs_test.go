package localfs

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"iochar/internal/disk"
	"iochar/internal/pagecache"
	"iochar/internal/sim"
)

func rig() (*sim.Env, *disk.Disk, *FS) {
	env := sim.New(1)
	p := disk.SeagateST1000NM0011()
	p.Sectors = 1 << 22
	d := disk.New(env, p)
	c := pagecache.New(env, d, 1<<16, pagecache.DefaultOptions())
	return env, d, New(env, d, c)
}

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	env, _, fs := rig()
	want := payload(100_000)
	env.Go("io", func(p *sim.Proc) {
		f := fs.Create("a")
		f.Append(p, want[:40_000])
		f.Append(p, want[40_000:])
		got := f.ReadAt(p, 0, int64(len(want)))
		if !bytes.Equal(got, want) {
			t.Error("round trip mismatch")
		}
	})
	env.Run(0)
	if fs.Size("a") != 100_000 {
		t.Errorf("Size = %d, want 100000", fs.Size("a"))
	}
}

func TestReadAtOffsets(t *testing.T) {
	env, _, fs := rig()
	want := payload(10_000)
	env.Go("io", func(p *sim.Proc) {
		f := fs.Create("a")
		f.Append(p, want)
		if got := f.ReadAt(p, 5000, 100); !bytes.Equal(got, want[5000:5100]) {
			t.Error("offset read mismatch")
		}
		if got := f.ReadAt(p, 9990, 100); !bytes.Equal(got, want[9990:]) {
			t.Error("EOF-clamped read mismatch")
		}
		if got := f.ReadAt(p, 20_000, 10); got != nil {
			t.Error("read past EOF should be nil")
		}
		if got := f.ReadAt(p, -1, 10); got != nil {
			t.Error("negative offset should be nil")
		}
	})
	env.Run(0)
}

func TestOpenMissingFileErrors(t *testing.T) {
	_, _, fs := rig()
	if _, err := fs.Open("ghost"); err == nil {
		t.Error("want error opening missing file")
	}
	if err := fs.Delete("ghost"); err == nil {
		t.Error("want error deleting missing file")
	}
}

func TestDeleteFreesAndDiscards(t *testing.T) {
	env, d, fs := rig()
	env.Go("io", func(p *sim.Proc) {
		f := fs.Create("tmp")
		f.Append(p, payload(1<<20)) // 1 MiB dirty in cache
		if err := fs.Delete("tmp"); err != nil {
			t.Fatal(err)
		}
		fs.Cache().Sync(p)
	})
	env.Run(0)
	if w := d.Stats().SectorsWritten; w != 0 {
		t.Errorf("deleted-before-writeback file still wrote %d sectors", w)
	}
	if fs.Exists("tmp") {
		t.Error("file still exists after delete")
	}
	if fs.FreeExtentCount() == 0 {
		t.Error("extents not returned to free list")
	}
}

func TestSpaceReuseAfterDelete(t *testing.T) {
	env, _, fs := rig()
	env.Go("io", func(p *sim.Proc) {
		a := fs.Create("a")
		a.Append(p, payload(4<<20))
		if err := fs.Delete("a"); err != nil {
			t.Fatal(err)
		}
		b := fs.Create("b")
		b.Append(p, payload(4<<20))
	})
	env.Run(0)
	// b should have reused a's extents: free list coalesced to empty.
	if got := fs.FreeExtentCount(); got != 0 {
		t.Errorf("FreeExtentCount = %d, want 0 (space reused)", got)
	}
}

func TestSoleWriterStaysSequential(t *testing.T) {
	env, _, fs := rig()
	env.Go("io", func(p *sim.Proc) {
		f := fs.Create("big")
		for i := 0; i < 16; i++ {
			f.Append(p, payload(1<<20))
		}
	})
	env.Run(0)
	if got := fs.ExtentCount("big"); got != 1 {
		t.Errorf("sole writer produced %d extents, want 1 (sequential layout)", got)
	}
}

func TestConcurrentWritersInterleaveExtents(t *testing.T) {
	env, _, fs := rig()
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("spill-%d", i)
		env.Go(name, func(p *sim.Proc) {
			f := fs.Create(name)
			for j := 0; j < 8; j++ {
				f.Append(p, payload(1<<20))
				p.Sleep(1) // interleave allocations
			}
		})
	}
	env.Run(0)
	frag := 0
	for i := 0; i < 4; i++ {
		frag += fs.ExtentCount(fmt.Sprintf("spill-%d", i))
	}
	if frag <= 4 {
		t.Errorf("concurrent writers produced %d extents total, want interleaving (>4)", frag)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	env, _, fs := rig()
	env.Go("io", func(p *sim.Proc) {
		f := fs.Create("x")
		f.Append(p, payload(1000))
		g := fs.Create("x")
		if g.Size() != 0 {
			t.Errorf("recreate left size %d, want 0", g.Size())
		}
	})
	env.Run(0)
}

func TestAppendToDeletedPanics(t *testing.T) {
	env, _, fs := rig()
	env.Go("io", func(p *sim.Proc) {
		f := fs.Create("x")
		f.Append(p, payload(10))
		fs.Delete("x")
		defer func() {
			if recover() == nil {
				t.Error("want panic on append to deleted file")
			}
		}()
		f.Append(p, payload(10))
	})
	env.Run(0)
}

func TestListSorted(t *testing.T) {
	env, _, fs := rig()
	env.Go("io", func(p *sim.Proc) {
		fs.Create("c")
		fs.Create("a")
		fs.Create("b")
	})
	env.Run(0)
	got := fs.List()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	env, _, fs := rig()
	env.Go("io", func(p *sim.Proc) {
		f := fs.Create("s")
		f.Append(p, payload(5000))
		f.ReadAt(p, 0, 5000)
		fs.Delete("s")
	})
	env.Run(0)
	s := fs.Stats()
	if s.FilesCreated != 1 || s.FilesDeleted != 1 {
		t.Errorf("created/deleted = %d/%d, want 1/1", s.FilesCreated, s.FilesDeleted)
	}
	if s.BytesWritten != 5000 || s.BytesRead != 5000 {
		t.Errorf("bytes w/r = %d/%d, want 5000/5000", s.BytesWritten, s.BytesRead)
	}
	if s.Extents != 0 {
		t.Errorf("live extents = %d after delete, want 0", s.Extents)
	}
}

// Property: any interleaving of appends across files round-trips all
// contents exactly, and deleting everything empties the allocator back to
// one coalesced free region (or pure bump-pointer state).
func TestQuickMultiFileIntegrity(t *testing.T) {
	f := func(ops []uint16) bool {
		if len(ops) > 40 {
			ops = ops[:40]
		}
		env := sim.New(9)
		dp := disk.SeagateST1000NM0011()
		dp.Sectors = 1 << 22
		d := disk.New(env, dp)
		c := pagecache.New(env, d, 1<<16, pagecache.DefaultOptions())
		fs := New(env, d, c)
		want := map[string][]byte{}
		handles := map[string]*File{}
		okAll := true
		env.Go("io", func(p *sim.Proc) {
			for i, op := range ops {
				name := fmt.Sprintf("f%d", op%5)
				h, ok := handles[name]
				if !ok {
					h = fs.Create(name)
					handles[name] = h
					want[name] = nil
				}
				chunk := payload(int(op)%3000 + 1)
				chunk[0] = byte(i) // make interleavings distinguishable
				h.Append(p, chunk)
				want[name] = append(want[name], chunk...)
			}
			for name, h := range handles {
				got := h.ReadAt(p, 0, int64(len(want[name])))
				if !bytes.Equal(got, want[name]) {
					okAll = false
				}
			}
			for name := range handles {
				if err := fs.Delete(name); err != nil {
					okAll = false
				}
			}
		})
		env.Run(0)
		if !okAll {
			return false
		}
		return fs.FreeExtentCount() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInstallIsInstantAndCold(t *testing.T) {
	env, d, fs := rig()
	f := fs.Create("cold")
	f.Install(payload(500_000))
	if env.Now() != 0 {
		t.Error("Install consumed virtual time")
	}
	if d.Stats().SectorsWritten != 0 {
		t.Error("Install generated disk writes")
	}
	if fs.Size("cold") != 500_000 {
		t.Errorf("Size = %d", fs.Size("cold"))
	}
	// A later read must hit the disk (nothing cached) and return the bytes.
	var ok bool
	env.Go("r", func(p *sim.Proc) {
		got := f.ReadAt(p, 1000, 4096)
		ok = bytes.Equal(got, payload(500_000)[1000:5096])
	})
	env.Run(0)
	if !ok {
		t.Error("installed content mismatch")
	}
	if d.Stats().SectorsRead == 0 {
		t.Error("cold read should hit the disk")
	}
}

func TestInstallThenAppendCoexist(t *testing.T) {
	env, _, fs := rig()
	f := fs.Create("mix")
	f.Install(payload(10_000))
	env.Go("w", func(p *sim.Proc) {
		f.Append(p, payload(5_000))
		got := f.ReadAt(p, 0, 15_000)
		want := append(payload(10_000), payload(5_000)...)
		if !bytes.Equal(got, want) {
			t.Error("install+append content mismatch")
		}
	})
	env.Run(0)
}
