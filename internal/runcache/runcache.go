// Package runcache is a versioned, content-addressed on-disk store for
// experiment results. Entries are keyed by a hash of the full run
// configuration (workload, factors, testbed options, schema version) and
// hold one JSON payload each, so repeat invocations of the characterization
// suite can skip cells that already executed under an identical
// configuration.
//
// The store is deliberately forgiving: any entry that cannot be proven valid
// — missing, truncated, unparsable, written by a different schema version,
// or filed under the wrong key — is treated as a cache miss, never an error.
// A subsequent Put simply rewrites it. Writes go through a temp file and an
// atomic rename, so a crashed or interrupted writer can leave at worst a
// stale temp file, never a half-written entry under a live key.
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Store is one cache directory. The zero value is not usable; create with
// Open. A Store is safe for concurrent use by multiple goroutines (each
// operation touches one file, and writes are atomic renames), though two
// processes racing a Put on the same key simply last-write-wins with either
// of the two equivalent payloads.
type Store struct {
	dir     string
	version int
}

// Open creates (if needed) and returns the store rooted at dir. version is
// the caller's result-schema version: entries written under any other
// version are invisible to this store.
func Open(dir string, version int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	return &Store{dir: dir, version: version}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Key derives the content address for a run configuration: the SHA-256 of
// the canonical JSON encoding of material. Callers should include every
// input that can change the result (and a schema version) in material;
// encoding/json's deterministic struct-field ordering makes the hash stable
// across processes.
func Key(material any) (string, error) {
	b, err := json.Marshal(material)
	if err != nil {
		return "", fmt.Errorf("runcache: keying: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// envelope is the on-disk entry framing. Version and Key are verified on
// read so a schema bump or a renamed/copied file degrades to a miss instead
// of deserializing a stale payload into current-code structs.
type envelope struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// Path returns the file an entry for key lives at.
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// Get loads the entry for key into out, reporting whether a valid entry was
// found. Every failure mode — absent file, truncated or corrupt JSON,
// version or key mismatch, payload that does not fit out — returns false.
// On false, out may have been partially populated; discard it.
func (s *Store) Get(key string, out any) bool {
	b, err := os.ReadFile(s.Path(key))
	if err != nil {
		return false
	}
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return false
	}
	if env.Version != s.version || env.Key != key || len(env.Payload) == 0 {
		return false
	}
	return json.Unmarshal(env.Payload, out) == nil
}

// Put stores v under key, replacing any existing entry (including corrupt
// ones). The write is atomic: a temp file in the same directory is renamed
// over the final path.
func (s *Store) Put(key string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runcache: encoding %s: %w", key, err)
	}
	b, err := json.Marshal(envelope{Version: s.version, Key: key, Payload: payload})
	if err != nil {
		return fmt.Errorf("runcache: encoding %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("runcache: writing %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runcache: writing %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.Path(key)); err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	return nil
}

// Len counts the valid-looking entries (by filename shape) in the store —
// a cheap observability hook for tests and tools, not a validity check.
func (s *Store) Len() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}
