package runcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name  string
	Bytes int64
	Serie []float64
}

func testStore(t *testing.T, version int) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "cache"), version)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKeyDeterministicAndSensitive(t *testing.T) {
	type material struct {
		Workload string
		Scale    int64
	}
	a, err := Key(material{"TS", 4096})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Key(material{"TS", 4096})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical material hashed differently: %s vs %s", a, b)
	}
	c, _ := Key(material{"TS", 8192})
	if a == c {
		t.Error("different material collided")
	}
	if len(a) != 64 {
		t.Errorf("key %q is not a sha256 hex digest", a)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := testStore(t, 1)
	in := payload{Name: "TS", Bytes: 1 << 30, Serie: []float64{1.5, 2.25, 0}}
	key, _ := Key(in)
	var out payload
	if s.Get(key, &out) {
		t.Fatal("hit before Put")
	}
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	if !s.Get(key, &out) {
		t.Fatal("miss after Put")
	}
	if out.Name != in.Name || out.Bytes != in.Bytes || len(out.Serie) != 3 || out.Serie[1] != 2.25 {
		t.Errorf("round trip mangled payload: %+v", out)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestTruncatedEntryIsAMissAndRewritable(t *testing.T) {
	s := testStore(t, 1)
	in := payload{Name: "AGG", Bytes: 42}
	key, _ := Key(in)
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-file, as a crashed writer without atomic rename would.
	full, err := os.ReadFile(s.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(key), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Get(key, &out) {
		t.Fatal("truncated entry served as a hit")
	}
	if err := s.Put(key, in); err != nil {
		t.Fatalf("rewrite over truncated entry: %v", err)
	}
	if !s.Get(key, &out) || out.Bytes != 42 {
		t.Errorf("rewritten entry unreadable: %+v", out)
	}
}

func TestSchemaVersionMismatchIsAMiss(t *testing.T) {
	dir := t.TempDir()
	old, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Name: "KM"}
	key, _ := Key(in)
	if err := old.Put(key, in); err != nil {
		t.Fatal(err)
	}
	cur, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if cur.Get(key, &out) {
		t.Fatal("version-1 entry served to a version-2 store")
	}
	// And the new version's Put claims the slot without complaint.
	if err := cur.Put(key, in); err != nil {
		t.Fatal(err)
	}
	if !cur.Get(key, &out) {
		t.Error("rewritten entry unreadable")
	}
	if old.Get(key, &out) {
		t.Error("version-2 entry served to the version-1 store")
	}
}

func TestGarbageAndEmptyEntriesAreMisses(t *testing.T) {
	s := testStore(t, 1)
	key, _ := Key("anything")
	for name, content := range map[string]string{
		"empty":                 "",
		"garbage":               "not json at all {{{",
		"valid-but-wrong-shape": `[1,2,3]`,
		"no-payload":            `{"version":1,"key":"` + key + `"}`,
	} {
		if err := os.WriteFile(s.Path(key), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out payload
		if s.Get(key, &out) {
			t.Errorf("%s entry served as a hit", name)
		}
	}
}

func TestKeyFieldMismatchIsAMiss(t *testing.T) {
	// An entry copied or renamed to another key's slot must not be served:
	// the envelope's recorded key disagrees with the filename's.
	s := testStore(t, 1)
	in := payload{Name: "PR"}
	keyA, _ := Key("a")
	keyB, _ := Key("b")
	if err := s.Put(keyA, in); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(s.Path(keyA))
	if err := os.WriteFile(s.Path(keyB), b, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Get(keyB, &out) {
		t.Error("entry filed under the wrong key served as a hit")
	}
}

func TestPayloadTypeMismatchIsAMiss(t *testing.T) {
	s := testStore(t, 1)
	key, _ := Key("k")
	if err := s.Put(key, map[string]string{"Bytes": "not-a-number"}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Get(key, &out) {
		t.Error("payload that does not fit the target type served as a hit")
	}
}

func TestPutLeavesNoTempDebrisOnSuccess(t *testing.T) {
	s := testStore(t, 1)
	key, _ := Key("x")
	if err := s.Put(key, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", 1); err == nil {
		t.Error("want error for empty dir")
	}
}

func TestEnvelopeIsPlainJSON(t *testing.T) {
	// The on-disk format is documented as inspectable JSON; pin that.
	s := testStore(t, 7)
	key, _ := Key("k")
	if err := s.Put(key, payload{Name: "TS"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(s.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Version int             `json:"version"`
		Key     string          `json:"key"`
		Payload json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("entry is not plain JSON: %v", err)
	}
	if env.Version != 7 || env.Key != key || len(env.Payload) == 0 {
		t.Errorf("envelope = %+v", env)
	}
}
