// DataNode restart: a crashed DataNode coming back up re-registers with
// the NameNode and sends a block report — the list of replica files its
// volumes actually hold. The NameNode reconciles the report against its
// block map: intact replicas of still-live, still-short blocks are
// re-adopted (cancelling now-unneeded re-replication work already queued),
// while stale files — deleted blocks, crash-truncated partials, corrupt
// bytes, or copies of blocks already back at target — are purged from the
// volume. This is the invalidation/re-registration protocol that keeps a
// returning node from serving the past.
package hdfs

import (
	"fmt"

	"iochar/internal/localfs"
	"iochar/internal/sim"
)

// RejoinDataNode restarts the DataNode on the named cluster node after a
// crash: heartbeats resume, and the block report is reconciled as
// described in the file comment. The caller (the fault injector's rejoin
// path) must first bring the node's volumes and network back. No-op if the
// node never crashed.
func (fs *FS) RejoinDataNode(p *sim.Proc, node string) {
	dn, ok := fs.byNode[node]
	if !ok {
		panic("hdfs: RejoinDataNode: no datanode on " + node)
	}
	if !dn.crashed {
		return
	}
	dn.crashed = false
	if fs.rec != nil {
		fs.startHeartbeat(dn)
	}
	fs.reregister(p, dn)
}

// reregister sends a DataNode's re-registration block report to the
// NameNode and reconciles it. Shared by the crash-restart path
// (RejoinDataNode) and the partition-heal path: a node the NameNode
// declared dead for missed heartbeats during a partition re-registers from
// its heartbeat loop once a beat gets through, with exactly the same
// reconciliation — intact replicas re-adopted, stale and excess files
// purged, unconfirmed credits struck.
func (fs *FS) reregister(p *sim.Proc, dn *DataNode) {
	dn.deadByNN = false
	dn.lastBeat = p.Now()
	if fs.rec != nil {
		fs.rec.stats.BlockReports++
	}

	old := dn.blocks
	dn.blocks = make(map[int64]storedBlock)
	for _, vol := range dn.node.HDFSVols {
		if vol.Failed() {
			continue
		}
		for _, name := range vol.List() {
			id, ok := parseBlockFileName(name)
			if !ok {
				continue
			}
			fs.reconcileReported(dn, vol, name, id, old)
			if dn.crashed {
				// Died again while the report's integrity reads slept. Stop
				// scanning; the next rejoin (or dead detection) takes over.
				return
			}
		}
	}
	// Strike credited replicas the report did not confirm — crash-truncated
	// partials the scan purged, files on a volume that failed while the node
	// was down. The node returned before the dead timeout, so these were
	// never struck by detection; without this the NameNode keeps crediting
	// copies the node cannot serve and never queues their repair.
	for _, id := range sortedBlockIDs(old) {
		if _, confirmed := dn.blocks[id]; confirmed {
			continue
		}
		b := fs.blockByID[id]
		if b == nil || b.gone || !holdsReplica(b, dn) {
			continue
		}
		fs.strikeReplica(b, dn)
	}
	if fs.rec != nil {
		fs.rec.idle.Broadcast()
	}
}

// strikeReplica removes dn from b's credited and landed sets and queues the
// block for repair if it is now below target.
func (fs *FS) strikeReplica(b *blockMeta, dn *DataNode) {
	for i, have := range b.landed {
		if have == dn {
			b.landed = append(b.landed[:i], b.landed[i+1:]...)
			break
		}
	}
	fs.dropReplica(b, dn)
}

// reconcileReported is the NameNode handling one entry of a block report.
func (fs *FS) reconcileReported(dn *DataNode, vol *localfs.FS, name string, id int64, old map[int64]storedBlock) {
	purge := func() {
		vol.Delete(name)
		if fs.rec != nil {
			fs.rec.stats.StaleReplicasPurged++
		}
	}
	b := fs.blockByID[id]
	if b == nil || b.gone {
		purge() // block deleted while the node was down
		return
	}
	sb, had := old[id]
	if !had || sb.vol != vol {
		h, err := vol.Open(name)
		if err != nil {
			return
		}
		sb = storedBlock{file: h, vol: vol}
	}
	if vol.Size(name) != b.size || (fs.integrity && !fs.replicaClean(b, sb, 0, b.size)) {
		purge() // crash-truncated partial or rotten bytes
		return
	}
	if holdsReplica(b, dn) {
		// Never struck from the map (the node returned before the dead
		// timeout): keep serving it.
		dn.blocks[id] = sb
		return
	}
	if len(b.replicas) >= b.want {
		purge() // already repaired elsewhere; this copy is excess
		return
	}
	// Intact, needed, and uncredited: re-adopt.
	dn.blocks[id] = sb
	b.replicas = append(b.replicas, dn)
	if !holdsLanded(b, dn) {
		b.landed = append(b.landed, dn)
	}
	if fs.rec != nil {
		fs.rec.stats.ReAdoptedReplicas++
	}
	if len(b.replicas) >= b.want {
		// Re-adoption restored the target factor: strike the pending
		// re-replication queued when the node bounced inside its own
		// dead-timeout window. Left queued, the entry keeps the recovery
		// barrier open and a repair worker can race it against the block
		// report, copying an excess replica the reconciliation then purges —
		// the node's bounce double-counted in the recovering iostat group.
		fs.dequeueRepair(b)
	}
}

func holdsReplica(b *blockMeta, dn *DataNode) bool {
	for _, have := range b.replicas {
		if have == dn {
			return true
		}
	}
	return false
}

func holdsLanded(b *blockMeta, dn *DataNode) bool {
	for _, have := range b.landed {
		if have == dn {
			return true
		}
	}
	return false
}

func parseBlockFileName(name string) (int64, bool) {
	var id int64
	if _, err := fmt.Sscanf(name, "blk_%d", &id); err != nil {
		return 0, false
	}
	return id, name == blockFileName(id)
}
