// HDFS failure detection and repair: DataNode heartbeats, the NameNode's
// dead-node monitor, and the background re-replication pipeline that
// restores each block's replication factor with real byte copies through
// the disk and network models.
//
// None of this machinery exists unless EnableRecovery is called — a
// fault-free run spawns no heartbeat processes, takes no extra events, and
// produces byte-identical counters to a build without this file.
package hdfs

import (
	"fmt"
	"sort"
	"time"

	"iochar/internal/disk"
	"iochar/internal/localfs"
	"iochar/internal/sim"
)

// RecoveryConfig tunes failure detection and repair, mirroring the Hadoop
// 1.x knobs it abstracts.
type RecoveryConfig struct {
	// HeartbeatInterval is how often each DataNode reports in
	// (dfs.heartbeat.interval, default 3 s).
	HeartbeatInterval time.Duration
	// DeadTimeout is how long the NameNode waits past the last heartbeat
	// before declaring a DataNode dead. Hadoop's default is 10.5 min; fault
	// experiments usually shorten it so recovery fits the run.
	DeadTimeout time.Duration
	// Streams is the number of concurrent re-replication copies
	// (dfs.max-repl-streams, default 2).
	Streams int
}

// DefaultRecoveryConfig returns heartbeats every 3 s, a 30 s dead timeout
// (Hadoop's production 10.5 min compressed to experiment timescales), and
// two replication streams.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{HeartbeatInterval: 3 * time.Second, DeadTimeout: 30 * time.Second, Streams: 2}
}

// RecoveryStats counts the repair work a run performed.
type RecoveryStats struct {
	ReReplicatedBlocks uint64 // block copies made to restore replication
	ReReplicatedBytes  uint64 // bytes moved by those copies
	DeadDataNodes      int    // DataNodes the NameNode declared dead
	FailedVolumes      int    // volumes that fail-stopped and were reported
	LostBlocks         int    // blocks whose every replica was lost
	PipelineRetries    uint64 // whole-block write pipeline re-attempts
	ReadFailovers      uint64 // mid-stream reader failovers to another replica

	// Integrity and restart accounting (zero unless those features ran).
	ChecksumErrors      uint64 // chunk verifications that failed (read, scrub, or copy)
	CorruptReplicas     int    // replicas struck as corrupt and queued for read-repair
	ScrubbedBlocks      uint64 // replica verifications the scrubber performed
	ScrubbedBytes       uint64 // bytes the scrubber read off disk
	BlockReports        int    // rejoin block reports the NameNode processed
	ReAdoptedReplicas   int    // replicas re-credited intact from a rejoining node
	StaleReplicasPurged int    // rejoin-scanned files deleted as stale or excess
	CancelledRepairs    int    // queued repairs dequeued as no longer needed

	// Network-fault accounting (zero unless the fabric was faulted).
	NetStalls    uint64        // backoff sleeps waiting out transient network faults
	NetStallTime time.Duration // total time spent in those stalls
}

// recoveryState is the live recovery machinery hanging off an FS.
type recoveryState struct {
	cfg     RecoveryConfig
	stats   RecoveryStats
	queue   []*blockMeta // under-replicated blocks awaiting repair
	queued  map[int64]bool
	inWork  int       // copies currently in flight
	work    *sim.Cond // signalled when queue gains work or stops
	idle    *sim.Cond // signalled when recovery may have quiesced
	stopped bool
}

// EnableRecovery switches on failure detection and repair: one heartbeat
// process per DataNode, the NameNode monitor, and cfg.Streams re-replication
// workers. Call it once, before Run, and only for runs with a fault plan —
// the machinery adds periodic events that a healthy-baseline run should not
// carry.
func (fs *FS) EnableRecovery(cfg RecoveryConfig) {
	if fs.rec != nil {
		panic("hdfs: EnableRecovery called twice")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 3 * time.Second
	}
	if cfg.DeadTimeout <= 0 {
		cfg.DeadTimeout = 30 * time.Second
	}
	if cfg.Streams <= 0 {
		cfg.Streams = 2
	}
	rec := &recoveryState{
		cfg:    cfg,
		queued: make(map[int64]bool),
		work:   sim.NewCond(fs.env),
		idle:   sim.NewCond(fs.env),
	}
	fs.rec = rec
	for _, dn := range fs.datanodes {
		dn.lastBeat = fs.env.Now()
		fs.startHeartbeat(dn)
	}
	fs.env.Go("namenode-monitor", func(p *sim.Proc) {
		for {
			p.Sleep(cfg.HeartbeatInterval)
			if rec.stopped {
				return
			}
			if ms := fs.master; ms != nil && (ms.down || ms.safeMode) {
				// A dead or restarting NameNode declares nobody dead: while
				// down it sees no clock, and in safe mode judging liveness
				// from beats missed during its own outage would kill the
				// whole cluster. Timestamps are reset at restart.
				continue
			}
			for _, dn := range fs.datanodes {
				if !dn.deadByNN && p.Now()-dn.lastBeat > cfg.DeadTimeout {
					fs.declareDead(dn)
				}
			}
		}
	})
	for i := 0; i < cfg.Streams; i++ {
		fs.env.Go(fmt.Sprintf("re-replicator-%d", i), func(p *sim.Proc) {
			fs.replicationWorker(p)
		})
	}
}

// startHeartbeat spawns the DataNode's heartbeat process. The generation
// counter retires a predecessor that has not yet noticed its node crashed:
// a crash–rejoin shorter than one heartbeat interval must not leave two
// beating processes for one node.
func (fs *FS) startHeartbeat(dn *DataNode) {
	rec := fs.rec
	dn.beatGen++
	gen := dn.beatGen
	fs.env.Go("heartbeat:"+dn.node.Name, func(p *sim.Proc) {
		for {
			p.Sleep(rec.cfg.HeartbeatInterval)
			if rec.stopped || dn.crashed || dn.beatGen != gen {
				return
			}
			if ms := fs.master; ms != nil && ms.down {
				continue // nobody is listening; the beat goes unheard
			}
			if fs.masterNode != "" && !fs.reachable(dn.node.Name, fs.masterNode) {
				continue // partitioned away from the NameNode; the beat is lost
			}
			dn.lastBeat = p.Now()
			if dn.deadByNN {
				// The NameNode declared this node dead while it was cut off
				// (a partition long enough to miss the dead timeout). The
				// first beat that gets through re-registers with a block
				// report, exactly as a restarted DataNode would.
				fs.reregister(p, dn)
				if rec.stopped || dn.crashed || dn.beatGen != gen {
					return
				}
				continue
			}
			if ms := fs.master; ms != nil && ms.safeMode {
				fs.masterBlockReport(dn)
			}
		}
	})
}

// RecoveryStats returns a copy of the repair counters (zero value when
// recovery was never enabled).
func (fs *FS) RecoveryStats() RecoveryStats {
	if fs.rec == nil {
		return RecoveryStats{}
	}
	return fs.rec.stats
}

// RecoveryEnabled reports whether EnableRecovery has been called.
func (fs *FS) RecoveryEnabled() bool { return fs.rec != nil }

// CrashDataNode fail-stops the DataNode on the named cluster node: it stops
// serving reads and write-pipeline hops immediately and stops heartbeating,
// so the NameNode declares it dead after DeadTimeout. The caller (the fault
// injector) is responsible for also severing the node's network if the
// whole machine died rather than just the DataNode process.
func (fs *FS) CrashDataNode(node string) {
	dn, ok := fs.byNode[node]
	if !ok {
		panic("hdfs: CrashDataNode: no datanode on " + node)
	}
	dn.crashed = true
	if fs.rec != nil {
		fs.rec.idle.Broadcast()
	}
	// A safe-mode master waiting on this node's block report must not wait
	// forever: re-evaluate the exit condition against the shrunken live set.
	fs.maybeExitSafeMode()
}

// FailVolume fail-stops one HDFS volume on the named node. Unlike a node
// crash, the DataNode itself survives and reports the disk failure to the
// NameNode immediately (Hadoop's DataNode re-registers on a dfs.data.dir
// error), so the lost replicas enter the repair queue with no detection
// latency.
func (fs *FS) FailVolume(node string, vol *localfs.FS) {
	dn, ok := fs.byNode[node]
	if !ok {
		panic("hdfs: FailVolume: no datanode on " + node)
	}
	vol.Fail()
	if fs.rec != nil {
		fs.rec.stats.FailedVolumes++
	}
	for _, id := range sortedBlockIDs(dn.blocks) {
		if dn.blocks[id].vol != vol {
			continue
		}
		delete(dn.blocks, id)
		b := fs.blockByID[id]
		if b == nil {
			continue
		}
		fs.dropReplica(b, dn)
	}
}

// sortedBlockIDs fixes an iteration order for a DataNode's block map: Go
// randomizes map order per run, and the repair queue's order shifts disk
// contention enough to change downstream event timing — which would break
// the same-seed-same-run determinism guarantee.
func sortedBlockIDs(blocks map[int64]storedBlock) []int64 {
	ids := make([]int64, 0, len(blocks))
	for id := range blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// declareDead is the NameNode acting on a missed-heartbeat timeout: every
// replica on the dead node is struck from the block map and each affected
// block joins the repair queue.
func (fs *FS) declareDead(dn *DataNode) {
	dn.deadByNN = true
	fs.rec.stats.DeadDataNodes++
	for _, id := range sortedBlockIDs(dn.blocks) {
		if b := fs.blockByID[id]; b != nil {
			fs.dropReplica(b, dn)
		}
	}
	fs.rec.idle.Broadcast()
}

// dropReplica removes dn from b's replica set and queues b for repair if it
// fell below its target factor.
func (fs *FS) dropReplica(b *blockMeta, dn *DataNode) {
	for i, have := range b.replicas {
		if have == dn {
			b.replicas = append(b.replicas[:i], b.replicas[i+1:]...)
			break
		}
	}
	if len(b.replicas) == 0 {
		if fs.rec != nil {
			fs.rec.stats.LostBlocks++
		}
		return
	}
	if len(b.replicas) < b.want {
		fs.enqueueUnderReplicated(b)
	}
}

// dequeueRepair removes b from the pending-repair queue — the block got
// back to its target factor by other means (a rejoining node re-adopting
// the replica whose loss queued it) and the copy is no longer needed.
func (fs *FS) dequeueRepair(b *blockMeta) {
	rec := fs.rec
	if rec == nil || !rec.queued[b.id] {
		return
	}
	for i, q := range rec.queue {
		if q == b {
			rec.queue = append(rec.queue[:i], rec.queue[i+1:]...)
			break
		}
	}
	delete(rec.queued, b.id)
	rec.stats.CancelledRepairs++
	rec.idle.Broadcast()
}

// enqueueUnderReplicated queues b for background repair. A no-op without
// recovery enabled (a healthy run can still create under-replicated blocks
// when a file asks for more replicas than exist; the seed behaved the same).
func (fs *FS) enqueueUnderReplicated(b *blockMeta) {
	rec := fs.rec
	if rec == nil || rec.stopped || rec.queued[b.id] {
		return
	}
	rec.queued[b.id] = true
	rec.queue = append(rec.queue, b)
	rec.work.Broadcast()
}

// replicationWorker drains the under-replicated queue: pick a live source
// replica, read the block's bytes off its disk, stream them to a live
// target that lacks the block, and append them to the target's volume —
// the same byte-for-byte path a DataNode-to-DataNode DataTransfer takes.
func (fs *FS) replicationWorker(p *sim.Proc) {
	rec := fs.rec
	for {
		for len(rec.queue) == 0 {
			if rec.stopped {
				return
			}
			rec.work.Wait(p)
		}
		// Repairs are NameNode-directed: pause while the master is down or
		// in safe mode (block reports may be about to re-adopt the very
		// replicas this queue would copy).
		for ms := fs.master; ms != nil && !rec.stopped && (ms.down || ms.safeMode); {
			ms.ready.Wait(p)
		}
		if rec.stopped {
			return
		}
		if len(rec.queue) == 0 {
			// Drained while we waited out the master: a block report
			// re-adopted the queued replicas and cancelled the repairs.
			continue
		}
		b := rec.queue[0]
		rec.queue = rec.queue[1:]
		delete(rec.queued, b.id)
		if b.gone || len(b.replicas) == 0 || len(b.replicas) >= b.want {
			if !b.gone && len(b.replicas) >= b.want {
				// The block got back to target while queued — typically a
				// rejoining node re-adopting the very replica whose loss
				// queued the repair.
				rec.stats.CancelledRepairs++
			}
			rec.idle.Broadcast()
			continue
		}
		rec.inWork++
		copied, retry := fs.copyBlock(p, b)
		rec.inWork--
		// Re-enqueue on mid-copy failure, or after a successful copy that
		// still leaves the block short. A block with no live source or no
		// eligible target is NOT re-queued — it would spin without
		// advancing virtual time; dropReplica re-queues it when the
		// NameNode's view changes.
		if retry || (copied && !b.gone && len(b.replicas) < b.want) {
			fs.enqueueUnderReplicated(b)
		}
		rec.idle.Broadcast()
	}
}

// copyBlock makes one replica of b. copied reports a new replica landed;
// retry reports a mid-copy failure (source or target died after virtual
// time was spent) worth another attempt from the survivors.
func (fs *FS) copyBlock(p *sim.Proc, b *blockMeta) (copied, retry bool) {
	var src, dst *DataNode
	var sb storedBlock
	topoBlocked := false
	for _, dn := range b.replicas {
		if dn.crashed {
			continue
		}
		s, ok := dn.blocks[b.id]
		if !ok || s.vol.Failed() {
			continue
		}
		d, blocked := fs.chooseTarget(b, dn.node.Name)
		if d != nil {
			src, sb, dst = dn, s, d
			break
		}
		if blocked {
			topoBlocked = true
		}
	}
	if src == nil || dst == nil {
		if topoBlocked {
			// Live sources exist but every eligible target is across a
			// partition. Partitions heal on a schedule: sleep one beat and
			// retry instead of dropping the block from the queue — and
			// instead of spinning at zero virtual time.
			p.Sleep(fs.rec.cfg.HeartbeatInterval)
			return false, true
		}
		return false, false // nothing live to copy from, or no eligible target
	}
	content := sb.file.ReadAt(p, 0, b.size)
	if fs.integrity && !fs.verifyRange(b, sb, 0, b.size) {
		// The chosen source is itself corrupt: strike it and retry from the
		// survivors — replication must never propagate bad bytes.
		fs.reportCorrupt(b, src)
		return false, len(b.replicas) > 0
	}
	if err := fs.net.TryTransfer(p, src.node.Name, dst.node.Name, b.size); err != nil {
		return false, true // died mid-stream; retry from survivors
	}
	if dst.crashed || b.gone {
		return false, !b.gone
	}
	f := dst.node.NextHDFSVol().Create(blockFileName(b.id))
	f.SetStage(disk.StageHDFS)
	f.Append(p, content)
	if b.gone || dst.crashed || f.FS().Failed() {
		// The block was deleted — or the target (node or volume) died —
		// while the copy was landing; crediting it now would leave an orphan
		// or unreadable replica. The volume check matters: FailVolume's
		// replica sweep only sees blocks the DataNode already credits, so a
		// copy still in flight at the failure would otherwise land dead and
		// never re-enter the repair queue.
		_ = f.FS().Delete(f.Name())
		return false, !b.gone
	}
	dst.blocks[b.id] = storedBlock{file: f, vol: f.FS()}
	b.replicas = append(b.replicas, dst)
	fs.rec.stats.ReReplicatedBlocks++
	fs.rec.stats.ReReplicatedBytes += uint64(b.size)
	return true, false
}

// chooseTarget picks a live DataNode that does not already hold b and is
// reachable from the copy source, using the same round-robin cursor as
// initial placement. blocked reports that a target exists but only across
// a partition — the caller's cue to wait for the heal rather than give up.
func (fs *FS) chooseTarget(b *blockMeta, src string) (dst *DataNode, blocked bool) {
	for range fs.datanodes {
		dn := fs.datanodes[fs.place%len(fs.datanodes)]
		fs.place++
		if dn.crashed {
			continue
		}
		holds := false
		for _, have := range b.replicas {
			if have == dn {
				holds = true
				break
			}
		}
		if holds {
			continue
		}
		if !fs.reachable(src, dn.node.Name) {
			blocked = true
			continue
		}
		return dn, false
	}
	return nil, blocked
}

// pendingDetection counts crashed DataNodes the NameNode has not yet
// declared dead — failures whose repair work has not entered the queue.
func (fs *FS) pendingDetection() int {
	n := 0
	for _, dn := range fs.datanodes {
		if dn.crashed && !dn.deadByNN {
			n++
		}
	}
	return n
}

// WaitRecovered blocks p until failure handling has quiesced: every crashed
// DataNode has been declared dead and the repair queue has drained. It
// returns immediately when recovery is not enabled or nothing failed. Call
// it after the workload finishes so the run's iostat window includes the
// recovery traffic.
func (fs *FS) WaitRecovered(p *sim.Proc) {
	rec := fs.rec
	if rec == nil {
		return
	}
	for !rec.stopped && (fs.pendingDetection() > 0 || len(rec.queue) > 0 || rec.inWork > 0) {
		rec.idle.Wait(p)
	}
}

// StopRecovery shuts the machinery down: heartbeat and monitor processes
// exit at their next tick and replication workers exit immediately, letting
// Env.Run(0) drain. Pending repairs are abandoned.
func (fs *FS) StopRecovery() {
	rec := fs.rec
	if rec == nil || rec.stopped {
		return
	}
	rec.stopped = true
	rec.work.Broadcast()
	rec.idle.Broadcast()
	if ms := fs.master; ms != nil {
		// Replication workers may be parked on the master-ready condition.
		ms.ready.Broadcast()
	}
}

// UnderReplicated returns the number of blocks currently queued or in
// flight for repair (test and report hook).
func (fs *FS) UnderReplicated() int {
	if fs.rec == nil {
		return 0
	}
	return len(fs.rec.queue) + fs.rec.inWork
}
