// Package hdfs simulates the Hadoop Distributed File System as deployed on
// the paper's testbed: a NameNode holding the namespace and block map, one
// DataNode per slave storing 64 MB blocks (scaled) on the node's three
// dedicated HDFS disks, three-way replication with a write pipeline over
// the network, and streaming readers that prefer the local replica.
//
// Real bytes flow end to end: a block's content is stored in the DataNode's
// local filesystem and returned verbatim to readers, while every access is
// timed through the page-cache and disk models. HDFS's signature I/O
// pattern — large sequential block reads and writes — therefore emerges
// from the same mechanics the paper measured rather than being asserted.
package hdfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"iochar/internal/cluster"
	"iochar/internal/disk"
	"iochar/internal/localfs"
	"iochar/internal/netsim"
	"iochar/internal/sim"
)

// Config holds filesystem-wide parameters.
type Config struct {
	BlockSize   int64 // bytes; the paper's Hadoop 1.0.4 default is 64 MB
	Replication int   // the default 3
	// PacketSize is the granularity of the write pipeline's streaming.
	PacketSize int64
	// ChecksumChunk is the granularity of per-block CRC32C checksums
	// (io.bytes.per.checksum; Hadoop's default 512 B is modeled coarser, at
	// 16 KiB, to keep sum arrays proportional to scaled block sizes).
	ChecksumChunk int64

	// NetRetryBase and NetRetryMax bound the exponential backoff clients
	// sleep on when the network fails transiently (a partition or a lossy
	// link), and NetRetries caps how many such stalls one operation takes
	// before giving up. Transient failures heal on a schedule, so the budget
	// is generous — unlike crash handling, patience is the correct response.
	NetRetryBase time.Duration
	NetRetryMax  time.Duration
	NetRetries   int
	// Seed feeds the backoff jitter rng; healthy runs never draw from it.
	Seed int64
}

// DefaultConfig returns Hadoop 1.0.4 defaults scaled by the divisor.
func DefaultConfig(scale int64) Config {
	if scale <= 0 {
		scale = 1
	}
	bs := (64 << 20) / scale
	if bs < 16<<10 {
		bs = 16 << 10
	}
	return Config{
		BlockSize: bs, Replication: 3, PacketSize: 64 << 10, ChecksumChunk: 16 << 10,
		NetRetryBase: 200 * time.Millisecond, NetRetryMax: 5 * time.Second, NetRetries: 64,
	}
}

// blockMeta is the NameNode's view of one block.
type blockMeta struct {
	id       int64
	size     int64
	want     int // target replication factor
	replicas []*DataNode
	// landed lists every DataNode that physically stored the replica,
	// including pipeline hops whose client died before acking them into
	// replicas. Delete consults it so an abandoned write cannot strand a
	// replica file on a live node.
	landed []*DataNode
	gone   bool // file deleted; drop from recovery queues
	// sums holds the per-chunk CRC32C checksums of the block's true content,
	// computed from the writer's bytes (the end-to-end property: the client's
	// checksum travels with the block). Nil unless integrity is enabled.
	sums []uint32
}

// fileMeta is one namespace entry.
type fileMeta struct {
	name   string
	size   int64
	blocks []*blockMeta
	open   bool // being written
}

// FS is the filesystem: NameNode state plus its DataNodes.
type FS struct {
	env        *sim.Env
	cfg        Config
	net        transferer
	topo       topology // fs.net's topology view, nil for topology-blind fakes
	masterNode string   // node hosting the NameNode ("" = topology-blind RPCs)
	netRng     *rand.Rand
	files      map[string]*fileMeta
	datanodes  []*DataNode
	byNode     map[string]*DataNode
	blockByID  map[int64]*blockMeta
	nextBlock  int64
	place      int            // round-robin placement cursor
	rec        *recoveryState // nil unless EnableRecovery was called
	integrity  bool           // per-chunk checksums verified on every read
	scrub      *scrubState    // nil unless EnableScrubber was called
	master     *masterState   // nil unless EnableMaster was called
}

// transferer is the network dependency (satisfied by *netsim.Network).
type transferer interface {
	Transfer(p *sim.Proc, src, dst string, bytes int64)
	TryTransfer(p *sim.Proc, src, dst string, bytes int64) error
}

// topology is the optional rack/reachability view of the network, satisfied
// by *netsim.Network. Test fakes that only implement transferer keep
// working: without it every node is reachable and the fabric is one rack.
type topology interface {
	Reachable(a, b string) bool
	RackOf(name string) int
	Racks() int
}

// storedBlock is one replica as held by a DataNode: the block file plus the
// volume it lives on (so a failed volume can report exactly its blocks).
type storedBlock struct {
	file *localfs.File
	vol  *localfs.FS
}

// DataNode serves blocks from one slave's HDFS volumes.
type DataNode struct {
	node     *cluster.Node
	blocks   map[int64]storedBlock
	crashed  bool          // fail-stopped; stops serving and heartbeating
	lastBeat time.Duration // last heartbeat the NameNode saw
	deadByNN bool          // the NameNode has declared this node dead
	beatGen  int           // heartbeat process generation (bumped per restart)
}

// Node returns the cluster node hosting this DataNode.
func (dn *DataNode) Node() *cluster.Node { return dn.node }

// BlockCount returns the number of replicas stored here.
func (dn *DataNode) BlockCount() int { return len(dn.blocks) }

// Alive reports whether the DataNode process is still serving.
func (dn *DataNode) Alive() bool { return !dn.crashed }

// New creates the filesystem with a DataNode on every given node.
func New(env *sim.Env, cfg Config, net transferer, nodes []*cluster.Node) *FS {
	if cfg.BlockSize <= 0 || cfg.Replication <= 0 {
		panic("hdfs: invalid config")
	}
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 64 << 10
	}
	if cfg.NetRetryBase <= 0 {
		cfg.NetRetryBase = 200 * time.Millisecond
	}
	if cfg.NetRetryMax < cfg.NetRetryBase {
		cfg.NetRetryMax = cfg.NetRetryBase
	}
	if cfg.NetRetries <= 0 {
		cfg.NetRetries = 64
	}
	fs := &FS{
		env:       env,
		cfg:       cfg,
		net:       net,
		netRng:    rand.New(rand.NewSource(cfg.Seed ^ 0x4e455453)),
		files:     make(map[string]*fileMeta),
		byNode:    make(map[string]*DataNode),
		blockByID: make(map[int64]*blockMeta),
	}
	if t, ok := net.(topology); ok {
		fs.topo = t
	}
	for _, n := range nodes {
		if len(n.HDFSVols) == 0 {
			panic("hdfs: node " + n.Name + " has no HDFS volumes")
		}
		dn := &DataNode{node: n, blocks: make(map[int64]storedBlock)}
		fs.datanodes = append(fs.datanodes, dn)
		fs.byNode[n.Name] = dn
	}
	if len(fs.datanodes) < cfg.Replication {
		panic("hdfs: fewer datanodes than the replication factor")
	}
	return fs
}

// Config returns the filesystem configuration.
func (fs *FS) Config() Config { return fs.cfg }

// SetMasterNode names the node hosting the NameNode, so client RPCs and
// DataNode heartbeats become partition-aware: a client cut off from the
// master stalls with backoff like a client of a crashed master, and a
// DataNode cut off stops being heard. Empty (the default) keeps RPCs
// topology-blind, as does a network without a topology view.
func (fs *FS) SetMasterNode(name string) { fs.masterNode = name }

// reachable reports whether a and b can exchange bytes right now. Always
// true for topology-blind networks.
func (fs *FS) reachable(a, b string) bool {
	if fs.topo == nil {
		return true
	}
	return fs.topo.Reachable(a, b)
}

// netBlocked reports whether any live DataNode is currently unreachable
// from the client — the signal that an empty placement is a transient
// topology problem worth waiting out rather than a dead cluster.
func (fs *FS) netBlocked(client string) bool {
	if fs.topo == nil {
		return false
	}
	for _, dn := range fs.datanodes {
		if !dn.crashed && !fs.reachable(client, dn.node.Name) {
			return true
		}
	}
	return false
}

// netStall sleeps one backoff step for a transient network failure,
// charging the recovery stats. bo is created lazily by the caller.
func (fs *FS) netStall(p *sim.Proc, bo *sim.Backoff) {
	d := bo.Next()
	p.Sleep(d)
	if fs.rec != nil {
		fs.rec.stats.NetStalls++
		fs.rec.stats.NetStallTime += d
	}
}

// waitMasterFrom is waitMaster for a client on a known node: after the
// usual crash/safe-mode stall it also waits out a partition separating the
// client from the master's node, with the same backoff discipline — a
// partitioned-off client behaves like a client of a bounced master. The
// stall is bounded by the net-retry budget so a client on a permanently
// dead node cannot spin the simulation forever.
func (fs *FS) waitMasterFrom(p *sim.Proc, mutating bool, node string) {
	fs.waitMaster(p, mutating)
	if node == "" || fs.masterNode == "" || fs.reachable(node, fs.masterNode) {
		return
	}
	bo := sim.NewBackoff(fs.cfg.NetRetryBase, fs.cfg.NetRetryMax, fs.netRng)
	for i := 0; i < fs.cfg.NetRetries && !fs.reachable(node, fs.masterNode); i++ {
		fs.netStall(p, bo)
	}
	// The master may have bounced while we were cut off.
	fs.waitMaster(p, mutating)
}

// Exists reports whether the path exists.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[path]
	return ok
}

// Size returns a path's length in bytes, or -1 if absent.
func (fs *FS) Size(path string) int64 {
	f, ok := fs.files[path]
	if !ok {
		return -1
	}
	return f.size
}

// List returns paths with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	var out []string
	for name := range fs.files {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes a path and frees its block replicas.
func (fs *FS) Delete(path string) error {
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("hdfs: delete %s: no such file", path)
	}
	for _, b := range f.blocks {
		b.gone = true
		delete(fs.blockByID, b.id)
		for _, dn := range append(append([]*DataNode{}, b.replicas...), b.landed...) {
			sb, ok := dn.blocks[b.id]
			if !ok {
				continue
			}
			delete(dn.blocks, b.id)
			sb.vol.Delete(sb.file.Name())
		}
	}
	delete(fs.files, path)
	fs.releaseLease(path)
	fs.journalEdit(editRec{op: opDelete, path: path})
	return nil
}

// BlockLocations returns, per block of the file, the node names holding a
// replica — the scheduler's locality input.
func (fs *FS) BlockLocations(path string) ([][]string, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("hdfs: locations %s: no such file", path)
	}
	out := make([][]string, len(f.blocks))
	for i, b := range f.blocks {
		for _, dn := range b.replicas {
			out[i] = append(out[i], dn.node.Name)
		}
	}
	return out, nil
}

// choose picks replication replica targets. On the paper's flat single-rack
// fabric: the writer's own DataNode first (if it has one), then round-robin
// across the rest — Hadoop's default placement with rack-awareness
// flattened. With racks > 1 the rack-aware policy applies instead (one
// local replica, the rest on a single remote rack). Crashed and — under
// network faults — unreachable DataNodes are excluded at allocation; if
// fewer eligible nodes exist than the requested factor, every eligible node
// is returned (nil when none are left).
func (fs *FS) choose(writer string, replication int) []*DataNode {
	if fs.topo != nil && fs.topo.Racks() > 1 {
		return fs.chooseRackAware(writer, replication)
	}
	live := 0
	for _, dn := range fs.datanodes {
		if !dn.crashed && fs.reachable(writer, dn.node.Name) {
			live++
		}
	}
	if replication > live {
		replication = live
	}
	var out []*DataNode
	if dn, ok := fs.byNode[writer]; ok && !dn.crashed {
		out = append(out, dn)
	}
	for len(out) < replication {
		dn := fs.datanodes[fs.place%len(fs.datanodes)]
		fs.place++
		if dn.crashed || !fs.reachable(writer, dn.node.Name) {
			continue
		}
		dup := false
		for _, have := range out {
			if have == dn {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, dn)
		}
	}
	return out
}

// chooseRackAware is Hadoop's default multi-rack placement: first replica
// on the writer's node (or its rack), the second and third on one common
// remote rack, spilling anywhere eligible when a rack runs short. The same
// round-robin cursor as flat placement keeps the choice deterministic.
func (fs *FS) chooseRackAware(writer string, replication int) []*DataNode {
	elig := func(dn *DataNode) bool {
		return !dn.crashed && fs.reachable(writer, dn.node.Name)
	}
	live := 0
	for _, dn := range fs.datanodes {
		if elig(dn) {
			live++
		}
	}
	if replication > live {
		replication = live
	}
	var out []*DataNode
	has := func(dn *DataNode) bool {
		for _, have := range out {
			if have == dn {
				return true
			}
		}
		return false
	}
	pick := func(want func(*DataNode) bool) *DataNode {
		for range fs.datanodes {
			dn := fs.datanodes[fs.place%len(fs.datanodes)]
			fs.place++
			if !elig(dn) || has(dn) || !want(dn) {
				continue
			}
			return dn
		}
		return nil
	}
	localRack := -1
	if dn, ok := fs.byNode[writer]; ok && elig(dn) {
		out = append(out, dn)
		localRack = dn.node.Rack
	} else if fs.topo != nil {
		localRack = fs.topo.RackOf(writer)
	}
	remoteRack := -1
	for len(out) < replication {
		var dn *DataNode
		if remoteRack < 0 {
			if dn = pick(func(d *DataNode) bool { return d.node.Rack != localRack }); dn != nil {
				remoteRack = dn.node.Rack
			}
		} else {
			dn = pick(func(d *DataNode) bool { return d.node.Rack == remoteRack })
		}
		if dn == nil {
			dn = pick(func(*DataNode) bool { return true })
		}
		if dn == nil {
			break
		}
		out = append(out, dn)
	}
	return out
}

// Writer streams data into a new file.
type Writer struct {
	fs          *FS
	meta        *fileMeta
	client      string // node name of the writing client
	replication int
	buf         []byte
}

// Create opens a new file for writing from the given client node with the
// filesystem's default replication. An existing path is replaced, as
// "hadoop fs -rm && rewrite" would.
func (fs *FS) Create(path, clientNode string) *Writer {
	return fs.CreateWith(path, clientNode, fs.cfg.Replication)
}

// CreateWith opens a new file with an explicit replication factor, as
// Hadoop's per-file dfs.replication does (TeraSort conventionally writes
// its output with replication 1).
func (fs *FS) CreateWith(path, clientNode string, replication int) *Writer {
	if replication <= 0 || replication > len(fs.datanodes) {
		replication = fs.cfg.Replication
	}
	if fs.Exists(path) {
		fs.Delete(path)
	}
	meta := &fileMeta{name: path, open: true}
	fs.files[path] = meta
	fs.journalEdit(editRec{op: opCreate, path: path, repl: replication})
	fs.grantLease(path, clientNode)
	return &Writer{fs: fs, meta: meta, client: clientNode, replication: replication}
}

// Write appends data to the stream, blocking p while full blocks flush
// through the replication pipeline. It returns an error only when a block
// cannot be stored on any live DataNode.
func (w *Writer) Write(p *sim.Proc, data []byte) error {
	w.buf = append(w.buf, data...)
	bs := w.fs.cfg.BlockSize
	// Flush by offset and copy the tail down once, keeping the buffer's
	// capacity: re-slicing past the flushed prefix would orphan it and force
	// a fresh block-sized allocation on every following append.
	var flushed int64
	for int64(len(w.buf))-flushed >= bs {
		if err := w.flushBlock(p, w.buf[flushed:flushed+bs]); err != nil {
			w.buf = w.buf[:copy(w.buf, w.buf[flushed:])]
			return err
		}
		flushed += bs
	}
	w.buf = w.buf[:copy(w.buf, w.buf[flushed:])]
	return nil
}

// Close flushes the final partial block and seals the file.
func (w *Writer) Close(p *sim.Proc) error {
	if len(w.buf) > 0 {
		if err := w.flushBlock(p, w.buf); err != nil {
			return err
		}
		w.buf = nil
	}
	// Sealing is a NameNode RPC: it stalls while the master is down or
	// holding mutations in safe mode — or while the client is partitioned
	// away from it.
	w.fs.waitMasterFrom(p, true, w.client)
	w.meta.open = false
	w.fs.journalEdit(editRec{op: opClose, path: w.meta.name})
	w.fs.releaseLease(w.meta.name)
	return nil
}

// flushBlock ships one block through the write pipeline: the client streams
// packets to the first replica, which relays downstream, every replica
// appending to its local block file concurrently. The hops run in parallel
// processes, so pipeline time approximates max(hop) rather than sum(hop),
// as in HDFS.
//
// Under fault injection a hop can fail (its target crashed, or the network
// path collapsed mid-transfer). As in HDFS pipeline recovery, the block
// survives on whichever replicas completed — the under-replication is
// queued for background repair. Only when *no* replica lands does the
// client retry the whole block against a fresh pipeline, and after
// maxPipelineRetries such attempts the write fails for good. Transient
// network failures (a partition, a lossy link) are different: they heal on
// a schedule, so the client stalls with backoff under the generous
// net-retry budget instead of burning pipeline attempts.
func (w *Writer) flushBlock(p *sim.Proc, data []byte) error {
	const maxPipelineRetries = 3
	fs := w.fs
	// Allocating a block is a NameNode RPC: it stalls while the master is
	// down or holding mutations in safe mode, with backoff+jitter retries.
	fs.waitMasterFrom(p, true, w.client)
	id := fs.nextBlock
	fs.nextBlock++
	b := &blockMeta{id: id, size: int64(len(data)), want: w.replication}
	w.meta.blocks = append(w.meta.blocks, b)
	w.meta.size += b.size
	fs.blockByID[id] = b
	fs.journalEdit(editRec{op: opAddBlock, path: w.meta.name, block: id, size: b.size, repl: b.want})
	fs.renewLease(w.meta.name, p.Now())

	// data can be used in place: every pipeline hop is waited on before this
	// function returns, and the DataNode Append copies the bytes, so nothing
	// references it afterwards — no defensive copy needed.
	content := data
	if fs.integrity {
		b.sums = chunkSums(content, fs.cfg.ChecksumChunk)
	}
	var bo *sim.Backoff
	netStalls := 0
	stall := func() bool {
		if netStalls >= fs.cfg.NetRetries {
			return false
		}
		netStalls++
		if bo == nil {
			bo = sim.NewBackoff(fs.cfg.NetRetryBase, fs.cfg.NetRetryMax, fs.netRng)
		}
		fs.netStall(p, bo)
		return true
	}
	for attempt := 0; attempt < maxPipelineRetries; {
		targets := fs.choose(w.client, w.replication)
		if len(targets) == 0 {
			// No eligible target. If live DataNodes exist on the far side of
			// a partition, this is transient: wait out the heal.
			if fs.netBlocked(w.client) && stall() {
				continue
			}
			return fmt.Errorf("hdfs: write %s block %d: no live datanodes", w.meta.name, id)
		}
		ok := make([]bool, len(targets))
		errs := make([]error, len(targets))
		var hops []*sim.Handle
		prev := w.client
		for i, dn := range targets {
			i, dn := i, dn
			src := prev
			hops = append(hops, fs.env.Go("pipeline", func(hp *sim.Proc) {
				if err := fs.net.TryTransfer(hp, src, dn.node.Name, b.size); err != nil {
					errs[i] = err
					return
				}
				if dn.crashed {
					return
				}
				f := dn.node.NextHDFSVol().Create(blockFileName(id))
				f.SetStage(disk.StageHDFS)
				f.Append(hp, content)
				if dn.crashed {
					// Crashed while appending: bytes are on a dead node.
					return
				}
				if b.gone || f.FS().Failed() {
					// The file was deleted mid-append (the writer died and a
					// re-executed attempt already replaced its output), or the
					// volume fail-stopped while the bytes were landing — its
					// replica sweep cannot have seen this still-uncredited
					// block; keep the stray bytes off the DataNode.
					f.FS().Delete(f.Name())
					return
				}
				dn.blocks[id] = storedBlock{file: f, vol: f.FS()}
				b.landed = append(b.landed, dn)
				ok[i] = true
			}))
			prev = dn.node.Name
		}
		for _, h := range hops {
			h.Wait(p)
		}
		for i, dn := range targets {
			// A hop that finished before its node crashed — or whose stored
			// copy a volume-failure sweep has since deleted — must not be
			// credited: the NameNode's failure handling has already run (it
			// saw an empty replica list for this still-open block), so a
			// credit now would stand forever and the block would close
			// "fully replicated" with one replica on a corpse.
			if _, stored := dn.blocks[id]; ok[i] && !dn.crashed && stored {
				b.replicas = append(b.replicas, dn)
			}
		}
		if len(b.replicas) > 0 {
			if len(b.replicas) < b.want {
				fs.enqueueUnderReplicated(b)
			}
			if attempt > 0 && fs.rec != nil {
				fs.rec.stats.PipelineRetries += uint64(attempt)
			}
			return nil
		}
		// Nothing landed. A hop severed by a transient fault is worth a
		// backoff stall that does not consume a pipeline attempt; anything
		// else (crashed targets, failed volumes) burns one.
		transient := false
		for _, err := range errs {
			if err != nil && errors.Is(err, netsim.ErrTransient) {
				transient = true
				break
			}
		}
		if transient && stall() {
			continue
		}
		attempt++
	}
	return fmt.Errorf("hdfs: write %s block %d: pipeline failed %d times", w.meta.name, id, maxPipelineRetries)
}

func blockFileName(id int64) string { return fmt.Sprintf("blk_%d", id) }

// Load installs a file's content instantly (no virtual time, cold caches),
// for experiment setup. Placement starts each file's pipeline at a caller-
// chosen node so datasets spread evenly; the usual replica policy applies.
func (fs *FS) Load(path string, firstNode string, data []byte) {
	if fs.Exists(path) {
		fs.Delete(path)
	}
	meta := &fileMeta{name: path}
	fs.files[path] = meta
	fs.journalEdit(editRec{op: opCreate, path: path, repl: fs.cfg.Replication})
	for off := int64(0); off < int64(len(data)); off += fs.cfg.BlockSize {
		end := off + fs.cfg.BlockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		id := fs.nextBlock
		fs.nextBlock++
		replicas := fs.choose(firstNode, fs.cfg.Replication)
		b := &blockMeta{id: id, size: end - off, want: fs.cfg.Replication, replicas: replicas}
		if fs.integrity {
			b.sums = chunkSums(data[off:end], fs.cfg.ChecksumChunk)
		}
		meta.blocks = append(meta.blocks, b)
		meta.size += b.size
		fs.blockByID[id] = b
		fs.journalEdit(editRec{op: opAddBlock, path: path, block: id, size: b.size, repl: b.want})
		for _, dn := range replicas {
			f := dn.node.NextHDFSVol().Create(blockFileName(id))
			f.SetStage(disk.StageHDFS)
			f.Install(data[off:end])
			dn.blocks[id] = storedBlock{file: f, vol: f.FS()}
		}
	}
	fs.journalEdit(editRec{op: opClose, path: path})
}

// Reader streams a byte range of a file.
type Reader struct {
	fs     *FS
	meta   *fileMeta
	client string
}

// Open returns a reader for the path on behalf of a client node.
func (fs *FS) Open(path, clientNode string) (*Reader, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("hdfs: open %s: no such file", path)
	}
	if f.open {
		return nil, fmt.Errorf("hdfs: open %s: file is being written", path)
	}
	return &Reader{fs: fs, meta: f, client: clientNode}, nil
}

// Size returns the file's length.
func (r *Reader) Size() int64 { return r.meta.size }

// ReadAt returns length bytes starting at off, blocking p for block reads
// (local replica preferred; remote replicas add a network transfer). Reads
// are clamped at EOF. It returns a *LostBlockError when every replica of
// some covered block is unreachable.
func (r *Reader) ReadAt(p *sim.Proc, off, length int64) ([]byte, error) {
	// Locating blocks is a NameNode RPC: reads stall only while the master
	// is down (safe mode keeps the namespace readable) or while the client
	// is partitioned away from it.
	r.fs.waitMasterFrom(p, false, r.client)
	if off < 0 || off >= r.meta.size {
		return nil, nil
	}
	if off+length > r.meta.size {
		length = r.meta.size - off
	}
	out := make([]byte, 0, length)
	var blockStart int64
	for _, b := range r.meta.blocks {
		blockEnd := blockStart + b.size
		lo, hi := maxI(off, blockStart), minI(off+length, blockEnd)
		if lo < hi {
			data, err := r.readBlockRange(p, b, lo-blockStart, hi-lo)
			if err != nil {
				if _, lost := err.(*LostBlockError); lost {
					if dle := r.fs.dataLoss(r.meta); dle != nil {
						return nil, dle
					}
				}
				return nil, err
			}
			out = append(out, data...)
		}
		blockStart = blockEnd
		if blockStart >= off+length {
			break
		}
	}
	return out, nil
}

// DataLossError reports that a file has lost data for good: the named
// blocks have no reachable replica anywhere. Want is the highest
// replication target among the lost blocks — Want == 1 identifies loss the
// user opted into by writing with replication 1 (TeraSort's conventional
// output setting), which a chaos oracle may classify as expected.
type DataLossError struct {
	Path   string
	Blocks []int64 // lost block IDs, ascending
	Want   int     // max replication target among the lost blocks
}

func (e *DataLossError) Error() string {
	return fmt.Sprintf("hdfs: data loss in %s: %d block(s) unreachable (replication target %d): %v",
		e.Path, len(e.Blocks), e.Want, e.Blocks)
}

// dataLoss scans every block of f and builds a DataLossError naming all the
// blocks with no readable replica, or nil if none qualify.
func (fs *FS) dataLoss(f *fileMeta) *DataLossError {
	var e *DataLossError
	for _, b := range f.blocks {
		readable := false
		for _, dn := range b.replicas {
			if dn.crashed {
				continue
			}
			if sb, ok := dn.blocks[b.id]; ok && !sb.vol.Failed() {
				readable = true
				break
			}
		}
		if readable {
			continue
		}
		if e == nil {
			e = &DataLossError{Path: f.name}
		}
		e.Blocks = append(e.Blocks, b.id)
		if b.want > e.Want {
			e.Want = b.want
		}
	}
	return e
}

// LostBlockError reports a block with no reachable replica.
type LostBlockError struct {
	Path  string
	Block int64
}

func (e *LostBlockError) Error() string {
	return fmt.Sprintf("hdfs: read %s: block %d has no reachable replica", e.Path, e.Block)
}

// readBlockRange reads [off, off+length) of one block from the best
// replica: local if present (pure disk path), else the placement-order
// first remote (disk at the remote node + network transfer). Replicas on
// crashed DataNodes are skipped, and a remote transfer that collapses
// mid-stream (source crashed) fails the client over to the next replica —
// HDFS's DFSInputStream retry. When every failure was transient (replicas
// exist but are partitioned away, or a lossy link exhausted its
// retransmits) the client stalls with backoff and retries the candidate
// scan: the reachable-side replica policy means a heal — not a repair — is
// what brings the data back.
func (r *Reader) readBlockRange(p *sim.Proc, b *blockMeta, off, length int64) ([]byte, error) {
	fs := r.fs
	var bo *sim.Backoff
	for tries := 0; ; tries++ {
		data, transient, err := r.readBlockOnce(p, b, off, length)
		if err == nil || !transient || tries >= fs.cfg.NetRetries {
			return data, err
		}
		if bo == nil {
			bo = sim.NewBackoff(fs.cfg.NetRetryBase, fs.cfg.NetRetryMax, fs.netRng)
		}
		fs.netStall(p, bo)
	}
}

// readBlockOnce makes one pass over the replica candidates. transient
// reports that at least one candidate failed for a reason that heals
// (partition, lossy link), so the caller may retry.
func (r *Reader) readBlockOnce(p *sim.Proc, b *blockMeta, off, length int64) (data []byte, transient bool, err error) {
	// Candidate order: local replica first, then placement order.
	cands := make([]*DataNode, 0, len(b.replicas))
	for _, dn := range b.replicas {
		if dn.node.Name == r.client {
			cands = append(cands, dn)
			break
		}
	}
	for _, dn := range b.replicas {
		if dn.node.Name != r.client {
			cands = append(cands, dn)
		}
	}
	for _, dn := range cands {
		if dn.crashed {
			continue
		}
		if dn.node.Name != r.client && !r.fs.reachable(r.client, dn.node.Name) {
			// Partitioned away: don't even charge the remote disk read.
			transient = true
			continue
		}
		sb, ok := dn.blocks[b.id]
		if !ok || sb.vol.Failed() {
			continue
		}
		data := sb.file.ReadAt(p, off, length)
		if r.fs.integrity && !r.fs.verifyRange(b, sb, off, length) {
			// A chunk covering this range failed its CRC: strike the replica,
			// queue read-repair, and fail over to the next candidate — the
			// DFSClient's reportChecksumFailure path.
			r.fs.reportCorrupt(b, dn)
			continue
		}
		if dn.node.Name == r.client {
			return data, false, nil
		}
		if err := r.fs.net.TryTransfer(p, dn.node.Name, r.client, length); err != nil {
			if errors.Is(err, netsim.ErrTransient) {
				transient = true
			}
			if r.fs.rec != nil {
				r.fs.rec.stats.ReadFailovers++
			}
			continue
		}
		return data, false, nil
	}
	return nil, transient, &LostBlockError{Path: r.meta.name, Block: b.id}
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
