// NameNode mortality: the master's metadata made durable and its process
// made killable. Every namespace mutation appends a record to a write-ahead
// edit journal on the master's metadata volume — real bytes through the
// page-cache and disk models, so the metadata stream shows up in iostat
// exactly as the paper's master-node traces do — and a periodic checkpoint
// rolls the journal into an fsimage. Killing the NameNode stalls clients on
// bounded exponential backoff; restarting it replays checkpoint+journal,
// holds mutations in block-report safe mode until enough replicas are
// re-confirmed, and recovers the leases of writers that died in the outage.
//
// None of this exists unless EnableMaster is called: a run without master
// recovery allocates no metadata volume, journals nothing, and stays
// byte-identical to a build without this file.
//
// Modeling note — logical vs physical journal. The logical journal (the
// []editRec the replay path consumes) is appended synchronously at mutation
// time, as HDFS's logSync-before-ack guarantees; the *bytes* of those
// records are charged to the metadata disk asynchronously in batches by the
// editlog daemon. Durability is therefore never lost to a crash (matching
// the synchronous-log contract) while the disk sees the batched sequential
// append pattern real edit logging produces.
package hdfs

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"iochar/internal/disk"
	"iochar/internal/localfs"
	"iochar/internal/sim"
)

const (
	editsFileName = "nn_edits"
	imageFileName = "nn_fsimage"
)

// MasterConfig tunes NameNode durability and recovery.
type MasterConfig struct {
	// CheckpointInterval is how often the journal is rolled into an fsimage
	// (fs.checkpoint.period; Hadoop's default hour compressed to experiment
	// timescales). Expired leases are also recovered on this tick.
	CheckpointInterval time.Duration
	// SafeModeFrac is the fraction of pre-crash replicas that must be
	// re-confirmed by block reports before a restarted NameNode leaves safe
	// mode (dfs.safemode.threshold.pct). Safe mode also exits once every
	// live DataNode has reported, so a replica lost forever cannot wedge
	// the cluster.
	SafeModeFrac float64
	// LeaseTimeout is how long a writer may go without renewing its lease
	// before the NameNode seals the file on its behalf (the hard lease
	// limit; Hadoop's is an hour).
	LeaseTimeout time.Duration
	// RetryBase and RetryMax bound the exponential backoff clients sleep on
	// while the master is down (ipc.client.connect retry policy).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed drives the jitter of client retry backoff.
	Seed int64
}

// DefaultMasterConfig returns experiment-scale defaults; callers scale the
// durations alongside the rest of the run's timing knobs.
func DefaultMasterConfig() MasterConfig {
	return MasterConfig{
		CheckpointInterval: 30 * time.Second,
		SafeModeFrac:       0.999,
		LeaseTimeout:       60 * time.Second,
		RetryBase:          200 * time.Millisecond,
		RetryMax:           5 * time.Second,
		Seed:               1,
	}
}

// MasterStats counts the NameNode's durability and recovery work.
type MasterStats struct {
	JournalRecords  uint64        // edit records logged
	JournalBytes    uint64        // edit bytes appended to the metadata disk
	JournalBatches  uint64        // editlog daemon flushes
	Checkpoints     uint64        // fsimage checkpoints written
	CheckpointBytes uint64        // fsimage bytes written
	Restarts        int           // times the NameNode was restarted
	ReplayRecords   uint64        // journal records replayed across restarts
	ReplayBytes     uint64        // fsimage+journal bytes read back at restart
	SafeModeWait    time.Duration // total time spent in safe mode
	LeaseGrants     uint64        // leases granted to writers
	LeaseReleases   uint64        // leases released by a clean Close
	LeaseRecoveries uint64        // leases the NameNode recovered (expiry or dead client)
	ClientStalls    uint64        // client operations that found the master unavailable
	StallTime       time.Duration // total client time spent stalled
}

// editOp enumerates the journal's record types.
type editOp int

const (
	opCreate editOp = iota
	opAddBlock
	opClose
	opDelete
	opLeaseRecover
)

func (op editOp) String() string {
	switch op {
	case opCreate:
		return "OP_ADD"
	case opAddBlock:
		return "OP_ADD_BLOCK"
	case opClose:
		return "OP_CLOSE"
	case opDelete:
		return "OP_DELETE"
	case opLeaseRecover:
		return "OP_REASSIGN_LEASE"
	}
	return "OP_INVALID"
}

// editRec is one journal record.
type editRec struct {
	op    editOp
	path  string
	block int64
	size  int64
	repl  int
}

// lease tracks one open file's writer.
type lease struct {
	client  string
	renewed time.Duration
}

// masterState is the live NameNode-durability machinery hanging off an FS.
type masterState struct {
	cfg  MasterConfig
	vol  *localfs.FS
	rng  *rand.Rand
	gen  int // incarnation; bumped per crash
	down bool

	edits      *localfs.File
	editsBytes int64
	pending    []editRec // records logged but not yet byte-charged
	journal    []editRec // logical journal since the last checkpoint
	image      NamespaceSnapshot
	leases     map[string]*lease

	safeMode         bool
	safeModeStart    time.Duration
	reported         map[*DataNode]bool
	expectedReplicas int
	reportedReplicas int

	wake    *sim.Cond // signalled when pending gains records or state changes
	ready   *sim.Cond // signalled when the master becomes serviceable
	stopped bool
	stats   MasterStats
}

// EnableMaster switches on NameNode metadata durability, journaling to the
// given metadata volume. Call it once, before any files are created (so
// experiment setup is journaled too), and only for runs modeling master
// recovery — the machinery adds periodic events a healthy baseline must not
// carry.
func (fs *FS) EnableMaster(vol *localfs.FS, cfg MasterConfig) {
	if fs.master != nil {
		panic("hdfs: EnableMaster called twice")
	}
	if vol == nil {
		panic("hdfs: EnableMaster needs a metadata volume")
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 30 * time.Second
	}
	if cfg.SafeModeFrac <= 0 || cfg.SafeModeFrac > 1 {
		cfg.SafeModeFrac = 0.999
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 60 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 200 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryBase {
		cfg.RetryMax = cfg.RetryBase
	}
	ms := &masterState{
		cfg:      cfg,
		vol:      vol,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		image:    NamespaceSnapshot{},
		leases:   make(map[string]*lease),
		reported: make(map[*DataNode]bool),
		wake:     sim.NewCond(fs.env),
		ready:    sim.NewCond(fs.env),
	}
	f := vol.Create(editsFileName)
	f.SetStage(disk.StageMeta)
	ms.edits = f
	fs.master = ms

	fs.env.Go("namenode-editlog", func(p *sim.Proc) {
		for {
			for len(ms.pending) == 0 || ms.down {
				if ms.stopped {
					return
				}
				ms.wake.Wait(p)
			}
			fs.flushEdits(p)
		}
	})
	fs.env.Go("namenode-checkpoint", func(p *sim.Proc) {
		for {
			p.Sleep(ms.cfg.CheckpointInterval)
			if ms.stopped {
				return
			}
			if ms.down || ms.safeMode {
				continue
			}
			fs.recoverExpiredLeases(p.Now())
			fs.checkpoint(p)
		}
	})
}

// MasterEnabled reports whether EnableMaster has been called.
func (fs *FS) MasterEnabled() bool { return fs.master != nil }

// MasterStats returns a copy of the NameNode durability counters (zero
// value when the master layer is not enabled).
func (fs *FS) MasterStats() MasterStats {
	if fs.master == nil {
		return MasterStats{}
	}
	return fs.master.stats
}

// MasterServing reports whether the NameNode is up and out of safe mode.
func (fs *FS) MasterServing() bool {
	ms := fs.master
	return ms == nil || (!ms.down && !ms.safeMode)
}

// journalEdit logs one record: appended to the logical journal immediately
// (the synchronous-durability contract) and queued for the editlog daemon
// to charge its bytes to the metadata disk.
func (fs *FS) journalEdit(r editRec) {
	ms := fs.master
	if ms == nil {
		return
	}
	ms.journal = append(ms.journal, r)
	ms.pending = append(ms.pending, r)
	ms.stats.JournalRecords++
	ms.wake.Broadcast()
}

// renderEdit gives a record its on-disk shape — proportional real bytes in
// the spirit of an edit-log record, not a serialization format.
func renderEdit(r editRec) string {
	return fmt.Sprintf("%s %s %d %d %d\n", r.op, r.path, r.block, r.size, r.repl)
}

// flushEdits appends every pending record to the edits file and syncs it —
// the batched sequential metadata write the paper's master traces show.
func (fs *FS) flushEdits(p *sim.Proc) {
	ms := fs.master
	if ms == nil || len(ms.pending) == 0 {
		return
	}
	batch := ms.pending
	ms.pending = nil
	var buf []byte
	for _, r := range batch {
		buf = append(buf, renderEdit(r)...)
	}
	ms.edits.Append(p, buf)
	ms.edits.Sync(p)
	ms.editsBytes += int64(len(buf))
	ms.stats.JournalBytes += uint64(len(buf))
	ms.stats.JournalBatches++
}

// MasterFlush synchronously drains the pending edit records to disk. The
// run driver calls it before the final cache sync so a run's journal bytes
// are fully accounted.
func (fs *FS) MasterFlush(p *sim.Proc) {
	if fs.master != nil {
		fs.flushEdits(p)
	}
}

// checkpoint rolls the journal: flush pending edits, snapshot the live
// namespace as the new fsimage (real bytes written and synced), truncate
// the edits file, and clear the logical journal.
func (fs *FS) checkpoint(p *sim.Proc) {
	ms := fs.master
	fs.flushEdits(p)
	ms.image = fs.LiveNamespace()
	ms.journal = nil
	ms.vol.Delete(editsFileName)
	f := ms.vol.Create(editsFileName)
	f.SetStage(disk.StageMeta)
	ms.edits = f
	ms.editsBytes = 0

	data := renderImage(ms.image)
	ms.vol.Delete(imageFileName)
	img := ms.vol.Create(imageFileName)
	img.SetStage(disk.StageMeta)
	img.Append(p, data)
	img.Sync(p)
	ms.stats.Checkpoints++
	ms.stats.CheckpointBytes += uint64(len(data))
}

// renderImage serializes a namespace snapshot deterministically.
func renderImage(snap NamespaceSnapshot) []byte {
	paths := make([]string, 0, len(snap))
	for p := range snap {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var buf []byte
	for _, p := range paths {
		f := snap[p]
		buf = append(buf, fmt.Sprintf("F %s %d %t\n", p, f.Size, f.Open)...)
		for _, b := range f.Blocks {
			buf = append(buf, fmt.Sprintf("B %d %d %d\n", b.ID, b.Size, b.Want)...)
		}
	}
	return buf
}

// CrashNameNode fail-stops the NameNode process: clients stall, heartbeats
// go unheard, and no metadata is journaled until RestartNameNode. The
// metadata volume itself survives (the journal is already durable). Safe to
// call from a fault injector's inline timer callback — it never blocks.
func (fs *FS) CrashNameNode() {
	ms := fs.master
	if ms == nil {
		panic("hdfs: CrashNameNode without EnableMaster")
	}
	if ms.down {
		return
	}
	ms.down = true
	ms.gen++
}

// NameNodeDown reports whether the NameNode is currently crashed.
func (fs *FS) NameNodeDown() bool {
	ms := fs.master
	return ms != nil && ms.down
}

// RestartNameNode brings the NameNode back: it replays checkpoint+journal
// off the metadata disk (charged as a sequential read), recovers the leases
// of writers whose nodes died during the outage, and — when failure
// detection is running — enters safe mode until enough replicas are
// re-confirmed by block reports. Heartbeat timestamps are reset so the
// outage itself cannot read as a cluster-wide dead timeout.
func (fs *FS) RestartNameNode(p *sim.Proc) {
	ms := fs.master
	if ms == nil || !ms.down {
		return
	}
	for _, name := range []string{imageFileName, editsFileName} {
		sz := ms.vol.Size(name)
		if sz <= 0 {
			continue
		}
		f, err := ms.vol.Open(name)
		if err != nil {
			continue
		}
		f.SetStage(disk.StageMeta)
		f.ReadAt(p, 0, sz)
		ms.stats.ReplayBytes += uint64(sz)
	}
	ms.stats.Restarts++
	ms.stats.ReplayRecords += uint64(len(ms.journal))

	now := p.Now()
	// Leases: a writer on a dead node can never renew — seal its file now so
	// readers (and re-executed task attempts) are not wedged behind it. Live
	// writers get a fresh renewal stamp; they were merely stalled.
	for _, path := range sortedLeasePaths(ms.leases) {
		l := ms.leases[path]
		if dn, ok := fs.byNode[l.client]; ok && dn.crashed {
			fs.recoverLease(path)
			continue
		}
		l.renewed = now
	}
	if fs.rec != nil {
		expected := 0
		for _, b := range fs.blockByID {
			expected += len(b.replicas)
		}
		if expected > 0 {
			ms.safeMode = true
			ms.safeModeStart = now
			ms.expectedReplicas = expected
			ms.reportedReplicas = 0
			ms.reported = make(map[*DataNode]bool)
		}
	}
	for _, dn := range fs.datanodes {
		if !dn.crashed {
			dn.lastBeat = now
		}
	}
	ms.down = false
	ms.wake.Broadcast()
	ms.ready.Broadcast()
	fs.maybeExitSafeMode()
}

// masterBlockReport is the NameNode processing one DataNode's safe-mode
// block report: credit every replica the node holds that the block map
// still expects of it.
func (fs *FS) masterBlockReport(dn *DataNode) {
	ms := fs.master
	if ms == nil || !ms.safeMode || ms.reported[dn] {
		return
	}
	ms.reported[dn] = true
	if fs.rec != nil {
		fs.rec.stats.BlockReports++
	}
	n := 0
	for id := range dn.blocks {
		if b := fs.blockByID[id]; b != nil && holdsReplica(b, dn) {
			n++
		}
	}
	ms.reportedReplicas += n
	fs.maybeExitSafeMode()
}

// maybeExitSafeMode leaves safe mode once the replica-report threshold is
// met, or once every live DataNode has reported (replicas lost for good
// must not wedge the cluster — their repair starts the moment safe mode
// lifts).
func (fs *FS) maybeExitSafeMode() {
	ms := fs.master
	if ms == nil || !ms.safeMode {
		return
	}
	need := int(ms.cfg.SafeModeFrac * float64(ms.expectedReplicas))
	done := ms.reportedReplicas >= need
	if !done {
		done = true
		for _, dn := range fs.datanodes {
			if !dn.crashed && !ms.reported[dn] {
				done = false
				break
			}
		}
	}
	if !done {
		return
	}
	ms.safeMode = false
	ms.stats.SafeModeWait += fs.env.Now() - ms.safeModeStart
	ms.ready.Broadcast()
}

// waitMaster stalls a client while the NameNode cannot serve it: any
// operation waits out a crash, and mutations additionally wait out safe
// mode. Retries follow bounded exponential backoff with jitter, so stalled
// clients pile back onto the restarted master staggered, not as a herd.
func (fs *FS) waitMaster(p *sim.Proc, mutating bool) {
	ms := fs.master
	if ms == nil || ms.stopped {
		return
	}
	if !ms.down && !(mutating && ms.safeMode) {
		return
	}
	ms.stats.ClientStalls++
	start := p.Now()
	bo := sim.NewBackoff(ms.cfg.RetryBase, ms.cfg.RetryMax, ms.rng)
	for !ms.stopped && (ms.down || (mutating && ms.safeMode)) {
		p.Sleep(bo.Next())
	}
	ms.stats.StallTime += p.Now() - start
}

// WaitMasterReady blocks p until the NameNode is up and out of safe mode —
// the run driver's barrier before waiting on block recovery.
func (fs *FS) WaitMasterReady(p *sim.Proc) {
	ms := fs.master
	if ms == nil {
		return
	}
	for !ms.stopped && (ms.down || ms.safeMode) {
		ms.ready.Wait(p)
	}
}

// StopMaster shuts the durability machinery down; daemons exit at their
// next tick and stalled clients unblock. Pending edit bytes are abandoned
// unless MasterFlush ran first.
func (fs *FS) StopMaster() {
	ms := fs.master
	if ms == nil || ms.stopped {
		return
	}
	ms.stopped = true
	ms.wake.Broadcast()
	ms.ready.Broadcast()
}

// Lease bookkeeping, called from the namespace mutation paths.

func (fs *FS) grantLease(path, client string) {
	ms := fs.master
	if ms == nil {
		return
	}
	ms.leases[path] = &lease{client: client, renewed: fs.env.Now()}
	ms.stats.LeaseGrants++
}

func (fs *FS) renewLease(path string, now time.Duration) {
	ms := fs.master
	if ms == nil {
		return
	}
	if l, ok := ms.leases[path]; ok {
		l.renewed = now
	}
}

func (fs *FS) releaseLease(path string) {
	ms := fs.master
	if ms == nil {
		return
	}
	if _, ok := ms.leases[path]; ok {
		delete(ms.leases, path)
		ms.stats.LeaseReleases++
	}
}

// recoverLease is the NameNode sealing an open file whose writer is gone:
// the file closes at its current length and the action is journaled, so a
// replayed master agrees the file is readable.
func (fs *FS) recoverLease(path string) {
	ms := fs.master
	delete(ms.leases, path)
	f, ok := fs.files[path]
	if !ok || !f.open {
		return
	}
	f.open = false
	fs.journalEdit(editRec{op: opLeaseRecover, path: path})
	ms.stats.LeaseRecoveries++
}

// recoverExpiredLeases hard-expires leases that have gone LeaseTimeout
// without renewal — the writer died without its node being declared dead
// (or simply hung) and the file must not stay unreadable forever.
func (fs *FS) recoverExpiredLeases(now time.Duration) {
	ms := fs.master
	for _, path := range sortedLeasePaths(ms.leases) {
		if now-ms.leases[path].renewed > ms.cfg.LeaseTimeout {
			fs.recoverLease(path)
		}
	}
}

// sortedLeasePaths fixes lease-scan order (map iteration is randomized and
// the scan's journal records must be deterministic).
func sortedLeasePaths(leases map[string]*lease) []string {
	paths := make([]string, 0, len(leases))
	for p := range leases {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Replay-equivalence surface: a canonical namespace snapshot buildable both
// from the live state and from checkpoint+journal, so tests can pin that a
// restarted master reconstructs exactly the state the live master held.

// BlockRecord is one block in a namespace snapshot.
type BlockRecord struct {
	ID   int64
	Size int64
	Want int
}

// FileRecord is one file in a namespace snapshot.
type FileRecord struct {
	Size   int64
	Open   bool
	Blocks []BlockRecord
}

// NamespaceSnapshot is a canonical copy of the NameNode's namespace.
type NamespaceSnapshot map[string]*FileRecord

func cloneSnapshot(snap NamespaceSnapshot) NamespaceSnapshot {
	out := make(NamespaceSnapshot, len(snap))
	for p, f := range snap {
		c := &FileRecord{Size: f.Size, Open: f.Open}
		c.Blocks = append(c.Blocks, f.Blocks...)
		out[p] = c
	}
	return out
}

// LiveNamespace snapshots the NameNode's in-memory namespace.
func (fs *FS) LiveNamespace() NamespaceSnapshot {
	snap := make(NamespaceSnapshot, len(fs.files))
	for name, f := range fs.files {
		fr := &FileRecord{Size: f.size, Open: f.open}
		for _, b := range f.blocks {
			fr.Blocks = append(fr.Blocks, BlockRecord{ID: b.id, Size: b.size, Want: b.want})
		}
		snap[name] = fr
	}
	return snap
}

// MasterReplayNamespace rebuilds the namespace the way a restarting
// NameNode does: start from the last checkpoint's fsimage and apply the
// journal. Equality with LiveNamespace is the durability invariant.
func (fs *FS) MasterReplayNamespace() NamespaceSnapshot {
	ms := fs.master
	if ms == nil {
		panic("hdfs: MasterReplayNamespace without EnableMaster")
	}
	snap := cloneSnapshot(ms.image)
	for _, r := range ms.journal {
		applyEdit(snap, r)
	}
	return snap
}

func applyEdit(snap NamespaceSnapshot, r editRec) {
	switch r.op {
	case opCreate:
		snap[r.path] = &FileRecord{Open: true}
	case opAddBlock:
		if f := snap[r.path]; f != nil {
			f.Blocks = append(f.Blocks, BlockRecord{ID: r.block, Size: r.size, Want: r.repl})
			f.Size += r.size
		}
	case opClose, opLeaseRecover:
		if f := snap[r.path]; f != nil {
			f.Open = false
		}
	case opDelete:
		delete(snap, r.path)
	}
}
