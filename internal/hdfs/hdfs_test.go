package hdfs

import (
	"bytes"
	"testing"
	"testing/quick"

	"iochar/internal/cluster"
	"iochar/internal/sim"
)

func rig(nSlaves int) (*sim.Env, *cluster.Cluster, *FS) {
	env := sim.New(1)
	c, err := cluster.New(env, cluster.DefaultHardware(4096), nSlaves)
	if err != nil {
		panic(err)
	}
	fs := New(env, DefaultConfig(4096), c.Net, c.Slaves)
	return env, c, fs
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*13 + i>>8)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	env, c, fs := rig(4)
	want := pattern(200_000)
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/data/a", c.Slaves[0].Name)
		w.Write(p, want[:50_000])
		w.Write(p, want[50_000:])
		w.Close(p)
		r, err := fs.Open("/data/a", c.Slaves[1].Name)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := r.ReadAt(p, 0, int64(len(want)))
		if !bytes.Equal(got, want) {
			t.Error("round trip mismatch")
		}
	})
	env.Run(0)
	if fs.Size("/data/a") != 200_000 {
		t.Errorf("Size = %d, want 200000", fs.Size("/data/a"))
	}
}

func TestReplicationFactorHonored(t *testing.T) {
	env, c, fs := rig(5)
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/r", c.Slaves[0].Name)
		w.Write(p, pattern(100_000))
		w.Close(p)
	})
	env.Run(0)
	locs, err := fs.BlockLocations("/r")
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range locs {
		if len(l) != 3 {
			t.Errorf("block %d has %d replicas, want 3", i, len(l))
		}
		seen := map[string]bool{}
		for _, n := range l {
			if seen[n] {
				t.Errorf("block %d has duplicate replica on %s", i, n)
			}
			seen[n] = true
		}
	}
}

func TestFirstReplicaIsLocalToWriter(t *testing.T) {
	env, c, fs := rig(4)
	writer := c.Slaves[2].Name
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/local", writer)
		w.Write(p, pattern(64_000))
		w.Close(p)
	})
	env.Run(0)
	locs, _ := fs.BlockLocations("/local")
	for i, l := range locs {
		if l[0] != writer {
			t.Errorf("block %d first replica on %s, want writer %s", i, l[0], writer)
		}
	}
}

func TestBlockSplitting(t *testing.T) {
	env, c, fs := rig(3)
	bs := fs.Config().BlockSize
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/big", c.Slaves[0].Name)
		w.Write(p, pattern(int(bs*3+bs/2)))
		w.Close(p)
	})
	env.Run(0)
	locs, _ := fs.BlockLocations("/big")
	if len(locs) != 4 {
		t.Errorf("blocks = %d, want 4 (3.5 block sizes)", len(locs))
	}
}

func TestLocalReadAvoidsNetwork(t *testing.T) {
	env, c, fs := rig(4)
	writer := c.Slaves[0]
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/x", writer.Name)
		w.Write(p, pattern(100_000))
		w.Close(p)
		rxBefore := writer.NIC.BytesReceived()
		r, _ := fs.Open("/x", writer.Name)
		r.ReadAt(p, 0, 100_000)
		if got := writer.NIC.BytesReceived() - rxBefore; got != 0 {
			t.Errorf("local read moved %d bytes over the network", got)
		}
	})
	env.Run(0)
}

func TestRemoteReadUsesNetwork(t *testing.T) {
	env, c, fs := rig(8)
	env.Go("client", func(p *sim.Proc) {
		// A single block keeps the replica set to 3 of 8 slaves, so an
		// outsider node is guaranteed to exist.
		fs.Load("/y", c.Slaves[0].Name, pattern(16_000))
		// Find a slave with no replica.
		locs, _ := fs.BlockLocations("/y")
		holders := map[string]bool{}
		for _, l := range locs {
			for _, n := range l {
				holders[n] = true
			}
		}
		var outsider *cluster.Node
		for _, s := range c.Slaves {
			if !holders[s.Name] {
				outsider = s
				break
			}
		}
		if outsider == nil {
			t.Skip("every slave holds a replica at this scale")
		}
		before := outsider.NIC.BytesReceived()
		r, _ := fs.Open("/y", outsider.Name)
		r.ReadAt(p, 0, 16_000)
		if got := outsider.NIC.BytesReceived() - before; got != 16_000 {
			t.Errorf("remote read transferred %d bytes, want 16000", got)
		}
	})
	env.Run(0)
}

func TestLoadIsInstantAndCold(t *testing.T) {
	env, c, fs := rig(3)
	fs.Load("/cold", c.Slaves[0].Name, pattern(500_000))
	if env.Now() != 0 {
		t.Error("Load consumed virtual time")
	}
	for _, s := range c.Slaves {
		for _, d := range s.HDFSDisks {
			if d.Stats().SectorsWritten != 0 {
				t.Error("Load generated disk writes")
			}
		}
	}
	var read []byte
	env.Go("r", func(p *sim.Proc) {
		r, err := fs.Open("/cold", c.Slaves[1].Name)
		if err != nil {
			t.Fatal(err)
		}
		read, _ = r.ReadAt(p, 1000, 5000)
	})
	env.Run(0)
	if !bytes.Equal(read, pattern(500_000)[1000:6000]) {
		t.Error("loaded content mismatch")
	}
	if env.Now() == 0 {
		t.Error("cold read should consume virtual time (disk access)")
	}
}

func TestDeleteFreesBlocks(t *testing.T) {
	env, c, fs := rig(3)
	fs.Load("/tmp", c.Slaves[0].Name, pattern(300_000))
	before := 0
	for _, s := range c.Slaves {
		for _, v := range s.HDFSVols {
			before += len(v.List())
		}
	}
	if before == 0 {
		t.Fatal("no block files created")
	}
	if err := fs.Delete("/tmp"); err != nil {
		t.Fatal(err)
	}
	after := 0
	for _, s := range c.Slaves {
		for _, v := range s.HDFSVols {
			after += len(v.List())
		}
	}
	if after != 0 {
		t.Errorf("%d block files remain after delete", after)
	}
	if fs.Exists("/tmp") {
		t.Error("file still in namespace")
	}
	_ = env
	_ = c
}

func TestOpenWhileWritingErrors(t *testing.T) {
	env, c, fs := rig(3)
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/w", c.Slaves[0].Name)
		w.Write(p, pattern(10))
		if _, err := fs.Open("/w", c.Slaves[0].Name); err == nil {
			t.Error("open of in-flight file should fail")
		}
		w.Close(p)
		if _, err := fs.Open("/w", c.Slaves[0].Name); err != nil {
			t.Errorf("open after close failed: %v", err)
		}
	})
	env.Run(0)
}

func TestOpenMissingErrors(t *testing.T) {
	_, c, fs := rig(3)
	if _, err := fs.Open("/ghost", c.Slaves[0].Name); err == nil {
		t.Error("want error")
	}
	if err := fs.Delete("/ghost"); err == nil {
		t.Error("want error")
	}
}

func TestListPrefix(t *testing.T) {
	_, c, fs := rig(3)
	fs.Load("/in/part-0", c.Slaves[0].Name, pattern(10))
	fs.Load("/in/part-1", c.Slaves[1].Name, pattern(10))
	fs.Load("/out/part-0", c.Slaves[2].Name, pattern(10))
	got := fs.List("/in/")
	if len(got) != 2 || got[0] != "/in/part-0" || got[1] != "/in/part-1" {
		t.Errorf("List(/in/) = %v", got)
	}
}

func TestReadAtEOFClamps(t *testing.T) {
	env, c, fs := rig(3)
	want := pattern(1000)
	fs.Load("/e", c.Slaves[0].Name, want)
	env.Go("r", func(p *sim.Proc) {
		r, _ := fs.Open("/e", c.Slaves[0].Name)
		if got, _ := r.ReadAt(p, 900, 500); !bytes.Equal(got, want[900:]) {
			t.Error("EOF clamp mismatch")
		}
		if got, _ := r.ReadAt(p, 2000, 10); got != nil {
			t.Error("read past EOF should be nil")
		}
	})
	env.Run(0)
}

// Property: for any content and any read window, HDFS returns exactly the
// bytes written, across block boundaries and replica choices.
func TestQuickReadWindows(t *testing.T) {
	env, c, fs := rig(4)
	content := pattern(300_000)
	fs.Load("/q", c.Slaves[0].Name, content)
	f := func(offRaw, lenRaw uint32, clientRaw uint8) bool {
		off := int64(offRaw) % int64(len(content))
		length := int64(lenRaw)%50_000 + 1
		client := c.Slaves[int(clientRaw)%len(c.Slaves)].Name
		ok := true
		env.Go("r", func(p *sim.Proc) {
			r, err := fs.Open("/q", client)
			if err != nil {
				ok = false
				return
			}
			got, _ := r.ReadAt(p, off, length)
			end := off + length
			if end > int64(len(content)) {
				end = int64(len(content))
			}
			if !bytes.Equal(got, content[off:end]) {
				ok = false
			}
		})
		env.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDefaultConfigScaling(t *testing.T) {
	c1 := DefaultConfig(1)
	if c1.BlockSize != 64<<20 {
		t.Errorf("BlockSize = %d, want 64 MB", c1.BlockSize)
	}
	c2 := DefaultConfig(1024)
	if c2.BlockSize != 64<<10 {
		t.Errorf("scaled BlockSize = %d, want 64 KB", c2.BlockSize)
	}
	tiny := DefaultConfig(1 << 30)
	if tiny.BlockSize != 16<<10 {
		t.Errorf("BlockSize floor = %d, want 16 KB", tiny.BlockSize)
	}
}

func TestCreateWithReplicationOne(t *testing.T) {
	env, c, fs := rig(4)
	env.Go("client", func(p *sim.Proc) {
		w := fs.CreateWith("/r1", c.Slaves[0].Name, 1)
		w.Write(p, pattern(64_000))
		w.Close(p)
	})
	env.Run(0)
	locs, err := fs.BlockLocations("/r1")
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range locs {
		if len(l) != 1 {
			t.Errorf("block %d has %d replicas, want 1", i, len(l))
		}
		if l[0] != c.Slaves[0].Name {
			t.Errorf("block %d not on the writer", i)
		}
	}
}

func TestCreateWithInvalidReplicationFallsBack(t *testing.T) {
	env, c, fs := rig(4)
	env.Go("client", func(p *sim.Proc) {
		w := fs.CreateWith("/bad", c.Slaves[0].Name, 99) // > datanodes
		w.Write(p, pattern(10_000))
		w.Close(p)
	})
	env.Run(0)
	locs, _ := fs.BlockLocations("/bad")
	for _, l := range locs {
		if len(l) != fs.Config().Replication {
			t.Errorf("fallback replication = %d, want %d", len(l), fs.Config().Replication)
		}
	}
}

func TestReplicationOneMovesLessData(t *testing.T) {
	written := func(rep int) uint64 {
		env, c, fs := rig(4)
		env.Go("client", func(p *sim.Proc) {
			w := fs.CreateWith("/w", c.Slaves[0].Name, rep)
			w.Write(p, pattern(200_000))
			w.Close(p)
			for _, s := range c.Slaves {
				for _, v := range s.HDFSVols {
					v.Cache().Sync(p)
				}
			}
		})
		env.Run(0)
		var total uint64
		for _, s := range c.Slaves {
			for _, d := range s.HDFSDisks {
				total += d.Stats().SectorsWritten
			}
		}
		return total
	}
	one, three := written(1), written(3)
	if three < one*5/2 {
		t.Errorf("replication 3 wrote %d sectors, want ~3x replication 1's %d", three, one)
	}
}
