// Post-run invariant auditing for the chaos harness: after recovery has
// quiesced, the namespace must be fully replicated (given the surviving
// nodes) and no DataNode may hold replica files the NameNode no longer
// credits. A violation means a recovery path lost or leaked data.
package hdfs

import (
	"fmt"
	"sort"
)

// ReplicationAudit is the outcome of a full NameNode/DataNode cross-check;
// see FS.AuditReplication.
type ReplicationAudit struct {
	Blocks          int      // live blocks scanned
	UnderReplicated []string // "path blk_N have/want" for blocks short of target
	Orphans         []string // "node/blk_N" replica files outside the block map
	LostBlocks      []string // "path blk_N" blocks with zero live replicas
	Stale           []string // "node/blk_N" credited replicas with wrong size or bad chunks
}

// OK reports whether the audit found no violations.
func (a ReplicationAudit) OK() bool {
	return len(a.UnderReplicated) == 0 && len(a.Orphans) == 0 && len(a.LostBlocks) == 0 && len(a.Stale) == 0
}

// String renders a compact summary of the violations (empty when OK).
func (a ReplicationAudit) String() string {
	if a.OK() {
		return ""
	}
	return fmt.Sprintf("hdfs audit: %d under-replicated, %d orphans, %d lost, %d stale (of %d blocks)",
		len(a.UnderReplicated), len(a.Orphans), len(a.LostBlocks), len(a.Stale), a.Blocks)
}

// AuditReplication cross-checks the NameNode's block map against what the
// DataNodes actually store. For every live block it counts replicas that are
// really readable — on an uncrashed DataNode, on an unfailed volume — and
// flags the block when that count is below the achievable target
// (min(want, live DataNodes)). It also flags orphans: replica files a
// DataNode holds for blocks the NameNode has deleted or struck from that
// node. Run it after WaitRecovered; on a healthy or fully recovered cluster
// the audit is clean.
func (fs *FS) AuditReplication() ReplicationAudit {
	var a ReplicationAudit
	live := 0
	for _, dn := range fs.datanodes {
		if !dn.crashed {
			live++
		}
	}

	// NameNode side: every live block must meet its achievable target.
	ids := make([]int64, 0, len(fs.blockByID))
	for id := range fs.blockByID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	owner := make(map[int64]string, len(ids))
	for name, f := range fs.files {
		for _, b := range f.blocks {
			owner[b.id] = name
		}
	}
	for _, id := range ids {
		b := fs.blockByID[id]
		a.Blocks++
		have := 0
		for _, dn := range b.replicas {
			if dn.crashed {
				continue
			}
			if sb, ok := dn.blocks[id]; ok && !sb.vol.Failed() {
				// A credited replica must also be the right bytes: a
				// crash-truncated partial or silently corrupt copy the
				// NameNode still credits is a stale replica that could
				// serve wrong data.
				if sb.file.Size() != b.size || !fs.replicaClean(b, sb, 0, b.size) {
					a.Stale = append(a.Stale, fmt.Sprintf("%s/blk_%d", dn.node.Name, id))
					continue
				}
				have++
			}
		}
		want := b.want
		if want > live {
			want = live
		}
		switch {
		case have == 0 && live > 0:
			a.LostBlocks = append(a.LostBlocks, fmt.Sprintf("%s blk_%d", owner[id], id))
		case have < want:
			a.UnderReplicated = append(a.UnderReplicated,
				fmt.Sprintf("%s blk_%d %d/%d", owner[id], id, have, want))
		}
	}

	// DataNode side: every replica a *live* DataNode stores must be credited
	// by the NameNode (crashed nodes legitimately keep unreachable files).
	for _, dn := range fs.datanodes {
		if dn.crashed {
			continue
		}
		for _, id := range sortedBlockIDs(dn.blocks) {
			b, ok := fs.blockByID[id]
			credited := false
			if ok {
				for _, have := range b.replicas {
					if have == dn {
						credited = true
						break
					}
				}
			}
			if !credited {
				a.Orphans = append(a.Orphans, fmt.Sprintf("%s/blk_%d", dn.node.Name, id))
			}
		}
	}
	sort.Strings(a.Orphans)
	return a
}
