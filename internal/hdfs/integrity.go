// End-to-end data integrity: per-chunk CRC32C checksums computed from the
// writer's bytes, verified on every streaming read, plus the background
// scrubber that walks stored replicas in virtual time looking for silent
// corruption. Verification itself is free in the timing model (real
// checksumming is CPU work the paper's disk traces do not see); the
// *reads* the scrubber performs are charged through the page cache and
// disk like any other I/O, tagged disk.StageScrub so scrub traffic is
// separable in iostat and trace output.
//
// Like recovery, none of this exists unless EnableIntegrity/EnableScrubber
// is called: a run without them computes no checksums, spawns no scrub
// process, and is byte-identical to the seed.
package hdfs

import (
	"hash/crc32"
	"math/rand"
	"sort"
	"time"

	"iochar/internal/disk"
	"iochar/internal/sim"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// chunkSums returns the CRC32C of each ChecksumChunk-sized piece of data
// (last chunk short).
func chunkSums(data []byte, chunk int64) []uint32 {
	if chunk <= 0 {
		chunk = 16 << 10
	}
	n := (int64(len(data)) + chunk - 1) / chunk
	sums := make([]uint32, 0, n)
	for off := int64(0); off < int64(len(data)); off += chunk {
		end := off + chunk
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		sums = append(sums, crc32.Checksum(data[off:end], castagnoli))
	}
	return sums
}

// EnableIntegrity switches on end-to-end checksumming: every block written
// or loaded from now on carries per-chunk CRC32C sums, and every streaming
// read verifies the chunks it touches, failing over to another replica and
// queueing read-repair when one is bad. Blocks that already exist are
// checksummed in place (call EnableIntegrity at setup, before any fault can
// corrupt stored bytes, so the sums capture the true content).
func (fs *FS) EnableIntegrity() {
	fs.integrity = true
	for _, b := range fs.blockByID {
		if b.sums != nil {
			continue
		}
		for _, dn := range b.replicas {
			if sb, ok := dn.blocks[b.id]; ok && !sb.vol.Failed() {
				b.sums = chunkSums(sb.vol.Peek(sb.file.Name()), fs.cfg.ChecksumChunk)
				break
			}
		}
	}
}

// IntegrityEnabled reports whether EnableIntegrity has been called.
func (fs *FS) IntegrityEnabled() bool { return fs.integrity }

// replicaClean checks every checksum chunk overlapping [off, off+length)
// of the replica sb against b's end-to-end sums, with no side effects.
// Chunk-aligned verification is what HDFS does: a read is widened to chunk
// boundaries for checksumming.
func (fs *FS) replicaClean(b *blockMeta, sb storedBlock, off, length int64) bool {
	if b.sums == nil {
		return true
	}
	chunk := fs.cfg.ChecksumChunk
	if chunk <= 0 {
		chunk = 16 << 10
	}
	raw := sb.vol.Peek(sb.file.Name())
	if int64(len(raw)) != b.size {
		return false // truncated or overgrown replica is corrupt by definition
	}
	c0 := off / chunk
	c1 := (off + length + chunk - 1) / chunk
	for c := c0; c < c1 && c < int64(len(b.sums)); c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > b.size {
			hi = b.size
		}
		if crc32.Checksum(raw[lo:hi], castagnoli) != b.sums[c] {
			return false
		}
	}
	return true
}

// verifyRange is replicaClean plus the checksum-error counter — the form
// the serving paths (reads, scrub, copies) use.
func (fs *FS) verifyRange(b *blockMeta, sb storedBlock, off, length int64) bool {
	if fs.replicaClean(b, sb, off, length) {
		return true
	}
	if fs.rec != nil {
		fs.rec.stats.ChecksumErrors++
	}
	return false
}

// verifyWhole checks an entire replica's content against b's sums.
func (fs *FS) verifyWhole(b *blockMeta, sb storedBlock) bool {
	return fs.verifyRange(b, sb, 0, b.size)
}

// reportCorrupt is the NameNode learning that dn's replica of b failed a
// checksum: the replica file is deleted, the replica struck from the block
// map, and the block queued for re-replication from a good copy —
// read-repair through the existing pipeline.
func (fs *FS) reportCorrupt(b *blockMeta, dn *DataNode) {
	if sb, ok := dn.blocks[b.id]; ok {
		sb.vol.Delete(sb.file.Name())
		delete(dn.blocks, b.id)
	}
	if fs.rec != nil {
		fs.rec.stats.CorruptReplicas++
	}
	fs.strikeReplica(b, dn)
}

// CorruptReplica flips bytes inside one stored replica — the corrupt-block
// fault's entry point. The victim is chosen deterministically from rng over
// the eligible replicas: those on the named node (when node is non-empty)
// and of the named path's blocks (when path is non-empty); nothing is
// signalled — the corruption is silent until a read or scrub trips over it.
// Returns the corrupted block ID, or -1 when nothing is eligible.
func (fs *FS) CorruptReplica(node, path string, rng *rand.Rand) int64 {
	var eligible map[int64]bool
	if path != "" {
		f, ok := fs.files[path]
		if !ok {
			return -1
		}
		eligible = make(map[int64]bool, len(f.blocks))
		for _, b := range f.blocks {
			eligible[b.id] = true
		}
	}
	type cand struct {
		dn *DataNode
		id int64
	}
	var cands []cand
	for _, dn := range fs.datanodes {
		if node != "" && dn.node.Name != node {
			continue
		}
		if dn.crashed {
			continue
		}
		for _, id := range sortedBlockIDs(dn.blocks) {
			if (eligible == nil || eligible[id]) && !dn.blocks[id].vol.Failed() {
				cands = append(cands, cand{dn, id})
			}
		}
	}
	if len(cands) == 0 {
		return -1
	}
	c := cands[rng.Intn(len(cands))]
	sb := c.dn.blocks[c.id]
	b := fs.blockByID[c.id]
	off := int64(0)
	if b.size > 1 {
		off = rng.Int63n(b.size)
	}
	n := 1 + rng.Intn(64)
	sb.vol.Corrupt(sb.file.Name(), off, n)
	return c.id
}

// ScrubConfig tunes the background scrubber.
type ScrubConfig struct {
	// BytesPerSec rate-limits scrub reads (dfs.datanode.scan.period made a
	// bandwidth knob); <= 0 means unthrottled — each pass runs flat out,
	// limited only by disk speed.
	BytesPerSec int64
	// PassInterval is the idle gap between full passes over the namespace.
	PassInterval time.Duration
}

// DefaultScrubConfig returns a gentle 4 MiB/s scrub with 30 s between
// passes.
func DefaultScrubConfig() ScrubConfig {
	return ScrubConfig{BytesPerSec: 4 << 20, PassInterval: 30 * time.Second}
}

// scrubState is the live scrubber hanging off an FS.
type scrubState struct {
	cfg     ScrubConfig
	stopped bool
	// lastPassStart is the start time of the most recently *completed* pass;
	// ScrubWait uses it to wait for a pass that began after a given moment.
	lastPassStart time.Duration
	passes        int
	done          *sim.Cond
}

// EnableScrubber starts the background replica scrubber: a daemon process
// that walks every stored replica in block-ID order, reads its bytes
// through the page cache and disk (tagged StageScrub), verifies them
// against the end-to-end sums, and reports corrupt replicas for
// read-repair. Requires EnableIntegrity. Call once, at setup.
func (fs *FS) EnableScrubber(cfg ScrubConfig) {
	if fs.scrub != nil {
		panic("hdfs: EnableScrubber called twice")
	}
	if !fs.integrity {
		panic("hdfs: EnableScrubber without EnableIntegrity")
	}
	if cfg.PassInterval <= 0 {
		cfg.PassInterval = 30 * time.Second
	}
	st := &scrubState{cfg: cfg, done: sim.NewCond(fs.env)}
	fs.scrub = st
	fs.env.Go("scrubber", func(p *sim.Proc) {
		p.SetDaemon(true)
		for !st.stopped {
			start := p.Now()
			fs.scrubPass(p, st)
			if st.stopped {
				return
			}
			st.lastPassStart = start
			st.passes++
			st.done.Broadcast()
			p.Sleep(cfg.PassInterval)
		}
	})
}

// scrubPass verifies one full sweep of the namespace: every stored replica
// of every live block, in block-ID then replica order.
func (fs *FS) scrubPass(p *sim.Proc, st *scrubState) {
	ids := make([]int64, 0, len(fs.blockByID))
	for id := range fs.blockByID {
		ids = append(ids, id)
	}
	sortInt64s(ids)
	for _, id := range ids {
		if st.stopped {
			return
		}
		b := fs.blockByID[id]
		if b == nil || b.gone {
			continue
		}
		// Snapshot the replica list: reportCorrupt mutates it.
		reps := append([]*DataNode(nil), b.replicas...)
		for _, dn := range reps {
			if st.stopped {
				return
			}
			if dn.crashed {
				continue
			}
			sb, ok := dn.blocks[id]
			if !ok || sb.vol.Failed() {
				continue
			}
			h, err := sb.vol.Open(sb.file.Name())
			if err != nil {
				continue
			}
			h.SetStage(disk.StageScrub)
			h.ReadAt(p, 0, b.size)
			h.Close()
			if fs.rec != nil {
				fs.rec.stats.ScrubbedBlocks++
				fs.rec.stats.ScrubbedBytes += uint64(b.size)
			}
			if !fs.verifyWhole(b, sb) {
				fs.reportCorrupt(b, dn)
			}
			if st.cfg.BytesPerSec > 0 {
				p.Sleep(time.Duration(b.size * int64(time.Second) / st.cfg.BytesPerSec))
			}
		}
	}
}

// ScrubWait blocks p until a full scrub pass that *started* at or after the
// call has completed — every replica present when the wait began has been
// verified at least once. No-op without a scrubber.
func (fs *FS) ScrubWait(p *sim.Proc) {
	st := fs.scrub
	if st == nil {
		return
	}
	now := p.Now()
	for !st.stopped && st.lastPassStart < now {
		st.done.Wait(p)
	}
}

// StopScrubber halts the scrubber at its next block boundary.
func (fs *FS) StopScrubber() {
	if fs.scrub == nil || fs.scrub.stopped {
		return
	}
	fs.scrub.stopped = true
	fs.scrub.done.Broadcast()
}

// AuditIntegrity verifies every stored replica of every live block against
// the end-to-end checksums, with no timing charge (it is an oracle, not a
// workload). It returns "node/blk_N" identifiers of replicas with bad
// chunks — empty on a cluster whose data fully survived. Nil sums (a block
// written before EnableIntegrity, or integrity off) verify trivially.
func (fs *FS) AuditIntegrity() []string {
	if !fs.integrity {
		return nil
	}
	var bad []string
	ids := make([]int64, 0, len(fs.blockByID))
	for id := range fs.blockByID {
		ids = append(ids, id)
	}
	sortInt64s(ids)
	for _, id := range ids {
		b := fs.blockByID[id]
		for _, dn := range b.replicas {
			if dn.crashed {
				continue
			}
			sb, ok := dn.blocks[id]
			if !ok || sb.vol.Failed() {
				continue
			}
			if !fs.replicaClean(b, sb, 0, b.size) {
				bad = append(bad, dn.node.Name+"/"+blockFileName(id))
			}
		}
	}
	return bad
}

func sortInt64s(ids []int64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
