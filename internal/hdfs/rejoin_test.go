package hdfs

import (
	"bytes"
	"testing"
	"time"

	"iochar/internal/sim"
)

// TestRejoinBeforeDetectionReAdopts: a DataNode that restarts inside the
// dead timeout rejoins with its replicas intact — the block report
// re-credits every copy and no re-replication happens.
func TestRejoinBeforeDetectionReAdopts(t *testing.T) {
	env, c, fs := rig(4)
	fs.EnableRecovery(fastRecovery())
	victim := c.Slaves[0].Name
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/f", c.Slaves[0].Name)
		w.Write(p, pattern(150_000))
		w.Close(p)
		fs.CrashDataNode(victim)
		p.Sleep(100 * time.Millisecond) // well inside the 1 s dead timeout
		fs.RejoinDataNode(p, victim)
		fs.WaitRecovered(p)
		fs.StopRecovery()
	})
	env.Run(0)

	st := fs.RecoveryStats()
	if st.BlockReports != 1 {
		t.Errorf("BlockReports = %d, want 1", st.BlockReports)
	}
	if st.ReAdoptedReplicas != 0 {
		// The dead timeout never fired, so the replicas were never struck:
		// the report confirms them in place rather than re-adopting.
		t.Errorf("%d replicas re-adopted though none were ever struck", st.ReAdoptedReplicas)
	}
	if st.StaleReplicasPurged != 0 {
		t.Errorf("%d replicas purged on a clean fast rejoin", st.StaleReplicasPurged)
	}
	if st.ReReplicatedBlocks != 0 {
		t.Errorf("%d blocks re-replicated though the node came straight back", st.ReReplicatedBlocks)
	}
	if a := fs.AuditReplication(); !a.OK() {
		t.Errorf("audit after fast rejoin: %s", a.String())
	}
}

// TestRejoinAfterReReplicationPurgesExcess: a DataNode that stays down past
// the dead timeout has its blocks re-replicated elsewhere; when it finally
// rejoins, the block report must purge the now-excess copies instead of
// leaving the namespace over-replicated or orphaned.
func TestRejoinAfterReReplicationPurgesExcess(t *testing.T) {
	env, c, fs := rig(5)
	fs.EnableRecovery(fastRecovery())
	victim := c.Slaves[0].Name
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/f", c.Slaves[0].Name)
		w.Write(p, pattern(200_000))
		w.Close(p)
		fs.CrashDataNode(victim)
		p.Sleep(3 * time.Second) // past the 1 s dead timeout
		fs.WaitRecovered(p)      // re-replication onto survivors completes
		fs.RejoinDataNode(p, victim)
		fs.WaitRecovered(p)
		fs.StopRecovery()
	})
	env.Run(0)

	st := fs.RecoveryStats()
	if st.ReReplicatedBlocks == 0 {
		t.Fatal("dead timeout never triggered re-replication; the scenario is vacuous")
	}
	if st.StaleReplicasPurged == 0 {
		t.Error("rejoin purged no excess replicas")
	}
	if a := fs.AuditReplication(); !a.OK() {
		t.Errorf("audit after late rejoin: %s", a.String())
	}
	// The purged files must really be gone from the node's volumes (no
	// orphan files waiting to confuse a future report).
	dn := fs.byNode[victim]
	for _, vol := range c.Slaves[0].HDFSVols {
		for _, name := range vol.List() {
			id, ok := parseBlockFileName(name)
			if !ok {
				continue
			}
			if _, credited := dn.blocks[id]; !credited {
				t.Errorf("uncredited replica file %s survived on %s", name, victim)
			}
		}
	}
}

// TestRejoinCancelsQueuedRepairs: when the node comes back while its blocks
// sit in the repair queue (detection fired, copies not yet made), the block
// report restores the replicas and the queued repairs drain as no-ops.
func TestRejoinCancelsQueuedRepairs(t *testing.T) {
	env, c, fs := rig(4)
	// Streams: 0 is invalid; use 1 with a long copy so the queue backs up —
	// simpler: no workers would hang WaitRecovered. Instead rejoin right
	// after detection, before workers start copying: heartbeat 100 ms, dead
	// timeout 1 s, rejoin at 1.2 s.
	fs.EnableRecovery(fastRecovery())
	victim := c.Slaves[0].Name
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/f", c.Slaves[0].Name)
		w.Write(p, pattern(150_000))
		w.Close(p)
		fs.CrashDataNode(victim)
		p.Sleep(1200 * time.Millisecond) // just past detection
		fs.RejoinDataNode(p, victim)
		fs.WaitRecovered(p)
		fs.StopRecovery()
	})
	env.Run(0)

	st := fs.RecoveryStats()
	if st.DeadDataNodes != 1 {
		t.Fatalf("DeadDataNodes = %d, want 1", st.DeadDataNodes)
	}
	if st.CancelledRepairs == 0 && st.ReReplicatedBlocks == 0 {
		t.Error("neither cancelled nor executed repairs after detection — queue never drained?")
	}
	if a := fs.AuditReplication(); !a.OK() {
		t.Errorf("audit after rejoin: %s", a.String())
	}
}

// TestRejoinPurgesCrashTruncatedReplicas: a whole-machine crash loses dirty
// page cache, truncating unsynced replica files. The rejoin block report
// must refuse those partial files (size mismatch) so reads never see them.
func TestRejoinPurgesCrashTruncatedReplicas(t *testing.T) {
	env, c, fs := rig(4)
	fs.EnableIntegrity()
	fs.EnableRecovery(fastRecovery())
	victim := c.Slaves[0]
	want := pattern(180_000)
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/f", victim.Name)
		w.Write(p, want)
		w.Close(p)
		// Crash the machine's volumes without syncing: dirty pages drop and
		// files truncate to their flushed prefix.
		for _, vol := range victim.HDFSVols {
			vol.Crash()
		}
		fs.CrashDataNode(victim.Name)
		p.Sleep(50 * time.Millisecond)
		for _, vol := range victim.HDFSVols {
			vol.Remount(p)
		}
		fs.RejoinDataNode(p, victim.Name)
		fs.WaitRecovered(p)

		// Every byte must still be readable from the surviving replicas.
		r, err := fs.Open("/f", victim.Name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadAt(p, 0, int64(len(want)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Error("read served wrong bytes after crash-restart")
		}
		fs.StopRecovery()
	})
	env.Run(0)

	if a := fs.AuditReplication(); !a.OK() {
		t.Errorf("audit after crash-restart rejoin: %s", a.String())
	}
	if bad := fs.AuditIntegrity(); len(bad) != 0 {
		t.Errorf("bad chunks after crash-restart rejoin: %v", bad)
	}
}

func TestParseBlockFileName(t *testing.T) {
	cases := []struct {
		name string
		id   int64
		ok   bool
	}{
		{"blk_0", 0, true},
		{"blk_42", 42, true},
		{"blk_", 0, false},
		{"blk_x", 0, false},
		{"blk_07", 0, false}, // not the canonical rendering of 7
		{"spill_3", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		id, ok := parseBlockFileName(c.name)
		if ok != c.ok || (ok && id != c.id) {
			t.Errorf("parseBlockFileName(%q) = %d,%v want %d,%v", c.name, id, ok, c.id, c.ok)
		}
	}
}
