package hdfs

import (
	"reflect"
	"testing"
	"time"

	"iochar/internal/cluster"
	"iochar/internal/sim"
)

// masterRig is rig() plus a provisioned metadata volume and the NameNode
// master layer.
func masterRig(t *testing.T, nSlaves int, cfg MasterConfig) (*sim.Env, *cluster.Cluster, *FS) {
	t.Helper()
	env, c, fs := rig(nSlaves)
	if err := c.ProvisionMasterMeta(1); err != nil {
		t.Fatal(err)
	}
	fs.EnableMaster(c.Master.MetaVols[0], cfg)
	return env, c, fs
}

// TestMasterReplayEquivalence pins the durability invariant at every
// namespace transition: the state a restarting NameNode would rebuild from
// checkpoint+journal equals the live in-memory namespace — including with a
// file mid-write, whose allocated blocks must already be journaled.
func TestMasterReplayEquivalence(t *testing.T) {
	env, c, fs := masterRig(t, 4, MasterConfig{})
	check := func(stage string) {
		if !reflect.DeepEqual(fs.LiveNamespace(), fs.MasterReplayNamespace()) {
			t.Errorf("%s: replayed namespace diverges from live state", stage)
		}
	}
	env.Go("client", func(p *sim.Proc) {
		defer fs.StopMaster()
		w := fs.Create("/a", c.Slaves[0].Name)
		w.Write(p, pattern(150_000))
		w.Close(p)
		check("after close")
		w2 := fs.Create("/b", c.Slaves[1].Name)
		w2.Write(p, pattern(60_000))
		check("mid-write")
		w2.Close(p)
		check("after second close")
		fs.Delete("/a")
		check("after delete")
	})
	env.Run(0)
	if fs.MasterStats().JournalRecords == 0 {
		t.Error("no edit records journaled")
	}
}

// TestMasterCheckpointRollsJournal: a checkpoint truncates the journal,
// writes real fsimage bytes, and replay from the new image+journal still
// reproduces the live namespace.
func TestMasterCheckpointRollsJournal(t *testing.T) {
	env, c, fs := masterRig(t, 4, MasterConfig{CheckpointInterval: 50 * time.Millisecond})
	env.Go("client", func(p *sim.Proc) {
		defer fs.StopMaster()
		w := fs.Create("/ck", c.Slaves[0].Name)
		w.Write(p, pattern(100_000))
		w.Close(p)
		p.Sleep(120 * time.Millisecond) // at least two checkpoint ticks
		st := fs.MasterStats()
		if st.Checkpoints == 0 || st.CheckpointBytes == 0 {
			t.Errorf("no checkpoint ran in 120ms at a 50ms interval: %+v", st)
		}
		if n := len(fs.master.journal); n != 0 {
			t.Errorf("journal holds %d records after a checkpoint, want 0", n)
		}
		w2 := fs.Create("/post", c.Slaves[1].Name)
		w2.Write(p, pattern(40_000))
		w2.Close(p)
		if !reflect.DeepEqual(fs.LiveNamespace(), fs.MasterReplayNamespace()) {
			t.Error("image+journal replay diverges after a checkpoint")
		}
	})
	env.Run(0)
}

// TestNameNodeKillReplayDiff is the kill-replay-diff scenario: crash the
// NameNode, restart it, and the post-restart state must be identical to the
// pre-crash snapshot — nothing lost, nothing invented. A writer caught by
// the outage stalls on backoff instead of failing and completes only after
// the restart.
func TestNameNodeKillReplayDiff(t *testing.T) {
	env, c, fs := masterRig(t, 4, MasterConfig{})
	var preCrash NamespaceSnapshot
	var restartAt, closedAt time.Duration
	env.Go("writer", func(p *sim.Proc) {
		defer fs.StopMaster()
		w := fs.Create("/w", c.Slaves[0].Name)
		w.Write(p, pattern(20_000))
		p.Sleep(5 * time.Millisecond) // the crash lands here, mid-file
		w.Write(p, pattern(20_000))   // block allocation stalls on the outage
		w.Close(p)
		closedAt = p.Now()
		if !reflect.DeepEqual(fs.LiveNamespace(), fs.MasterReplayNamespace()) {
			t.Error("replayed namespace diverges after the bounce")
		}
	})
	env.Go("chaos", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		preCrash = fs.LiveNamespace()
		fs.CrashNameNode()
		if !fs.NameNodeDown() {
			t.Error("CrashNameNode left the master serving")
		}
		p.Sleep(20 * time.Millisecond)
		fs.RestartNameNode(p)
		restartAt = p.Now()
		if diff := fs.LiveNamespace(); !reflect.DeepEqual(preCrash, diff) {
			t.Errorf("kill-replay diff: state after restart differs from pre-crash snapshot:\n pre  %+v\n post %+v", preCrash, diff)
		}
	})
	env.Run(0)
	st := fs.MasterStats()
	if st.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", st.Restarts)
	}
	if st.ClientStalls == 0 || st.StallTime == 0 {
		t.Errorf("the writer never stalled on the outage: %+v", st)
	}
	if closedAt <= restartAt {
		t.Errorf("writer closed at %v, before the restart at %v", closedAt, restartAt)
	}
}

// TestLeaseExpirySealsAbandonedFile: a writer that stops renewing (without
// its node dying) is hard-expired on the checkpoint tick; the file seals at
// its flushed length and the recovery is journaled.
func TestLeaseExpirySealsAbandonedFile(t *testing.T) {
	env, c, fs := masterRig(t, 4, MasterConfig{
		CheckpointInterval: 10 * time.Millisecond,
		LeaseTimeout:       30 * time.Millisecond,
	})
	env.Go("client", func(p *sim.Proc) {
		defer fs.StopMaster()
		w := fs.Create("/abandoned", c.Slaves[0].Name)
		w.Write(p, pattern(40_000)) // flushes blocks; never closed
		p.Sleep(100 * time.Millisecond)
		st := fs.MasterStats()
		if st.LeaseRecoveries != 1 {
			t.Errorf("LeaseRecoveries = %d, want 1", st.LeaseRecoveries)
		}
		if fs.files["/abandoned"].open {
			t.Error("file still open after its lease expired")
		}
		if !reflect.DeepEqual(fs.LiveNamespace(), fs.MasterReplayNamespace()) {
			t.Error("replayed namespace diverges after lease recovery")
		}
	})
	env.Run(0)
}

// TestRestartRecoversDeadWritersLease: a writer whose node died during the
// NameNode outage can never renew; the restarting master must seal its file
// rather than leave it open forever.
func TestRestartRecoversDeadWritersLease(t *testing.T) {
	env, c, fs := masterRig(t, 5, MasterConfig{})
	fs.EnableRecovery(RecoveryConfig{HeartbeatInterval: time.Millisecond, DeadTimeout: 5 * time.Millisecond})
	env.Go("driver", func(p *sim.Proc) {
		defer func() {
			fs.StopMaster()
			fs.StopRecovery()
		}()
		w := fs.Create("/dead-writer", c.Slaves[2].Name)
		w.Write(p, pattern(40_000))
		fs.CrashNameNode()
		fs.CrashDataNode(c.Slaves[2].Name)
		p.Sleep(10 * time.Millisecond)
		fs.RestartNameNode(p)
		fs.WaitMasterReady(p)
		if fs.files["/dead-writer"].open {
			t.Error("dead writer's file not sealed at restart")
		}
		if fs.MasterStats().LeaseRecoveries == 0 {
			t.Error("no lease recovery recorded for the dead writer")
		}
		if !reflect.DeepEqual(fs.LiveNamespace(), fs.MasterReplayNamespace()) {
			t.Error("replayed namespace diverges after dead-writer lease recovery")
		}
	})
	env.Run(0)
}

// TestSafeModeExitThreshold pins the safe-mode exit rule: with
// SafeModeFrac=1 every pre-crash replica must be re-confirmed, so safe mode
// holds until the last DataNode's block report lands. Reads are served
// throughout; mutations are not.
func TestSafeModeExitThreshold(t *testing.T) {
	env, c, fs := masterRig(t, 4, MasterConfig{SafeModeFrac: 1.0})
	// Long heartbeat interval so the test drives block reports by hand.
	fs.EnableRecovery(RecoveryConfig{HeartbeatInterval: 10 * time.Second, DeadTimeout: 100 * time.Second})
	env.Go("driver", func(p *sim.Proc) {
		defer func() {
			fs.StopMaster()
			fs.StopRecovery()
		}()
		w := fs.Create("/sm", c.Slaves[0].Name)
		w.Write(p, pattern(200_000))
		w.Close(p)
		fs.CrashNameNode()
		p.Sleep(time.Millisecond)
		fs.RestartNameNode(p)
		ms := fs.master
		if !ms.safeMode {
			t.Fatal("restart with live replicas did not enter safe mode")
		}
		if fs.MasterServing() {
			t.Error("MasterServing true while in safe mode")
		}
		r, err := fs.Open("/sm", c.Slaves[1].Name)
		if err != nil {
			t.Fatalf("namespace read failed in safe mode: %v", err)
		}
		if _, err := r.ReadAt(p, 0, 1000); err != nil {
			t.Errorf("data read failed in safe mode: %v", err)
		}
		for _, dn := range fs.datanodes[:len(fs.datanodes)-1] {
			fs.masterBlockReport(dn)
		}
		if !ms.safeMode {
			t.Error("safe mode exited below the full-replica threshold")
		}
		p.Sleep(2 * time.Millisecond) // accrue measurable safe-mode wait
		fs.masterBlockReport(fs.datanodes[len(fs.datanodes)-1])
		if ms.safeMode {
			t.Error("safe mode held after every replica was re-confirmed")
		}
		if fs.MasterStats().SafeModeWait == 0 {
			t.Error("SafeModeWait not accounted")
		}
	})
	env.Run(0)
}
