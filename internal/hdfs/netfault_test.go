package hdfs

import (
	"bytes"
	"testing"
	"time"

	"iochar/internal/cluster"
	"iochar/internal/sim"
)

// rackRig is rig with a multi-rack network: slave i lands in rack i%racks
// behind a ToR switch, and the FS is given the master node so client RPCs
// are topology-aware.
func rackRig(nSlaves, racks int) (*sim.Env, *cluster.Cluster, *FS) {
	env := sim.New(1)
	hw := cluster.DefaultHardware(4096)
	hw.Racks = racks
	c, err := cluster.New(env, hw, nSlaves)
	if err != nil {
		panic(err)
	}
	fs := New(env, DefaultConfig(4096), c.Net, c.Slaves)
	fs.SetMasterNode(c.Master.Name)
	return env, c, fs
}

// TestRackAwarePlacementSpread pins Hadoop's default multi-rack placement
// for every possible writer: the first replica is writer-local, and the
// remaining two share one rack that is not the writer's.
func TestRackAwarePlacementSpread(t *testing.T) {
	env, c, fs := rackRig(6, 3)
	env.Go("client", func(p *sim.Proc) {
		for _, s := range c.Slaves {
			w := fs.Create("/spread/"+s.Name, s.Name)
			w.Write(p, pattern(150_000))
			w.Close(p)
		}
	})
	env.Run(0)
	for _, s := range c.Slaves {
		locs, err := fs.BlockLocations("/spread/" + s.Name)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range locs {
			if len(l) != 3 {
				t.Fatalf("writer %s block %d: %d replicas, want 3", s.Name, i, len(l))
			}
			if l[0] != s.Name {
				t.Errorf("writer %s block %d: first replica on %s, want writer-local", s.Name, i, l[0])
			}
			writerRack := c.Net.RackOf(s.Name)
			r1, r2 := c.Net.RackOf(l[1]), c.Net.RackOf(l[2])
			if r1 != r2 {
				t.Errorf("writer %s block %d: remote replicas split racks %d and %d, want one common rack", s.Name, i, r1, r2)
			}
			if r1 == writerRack {
				t.Errorf("writer %s block %d: remote replicas landed in the writer's rack %d", s.Name, i, writerRack)
			}
		}
	}
}

// TestReadFailoverDuringPartition: with the writer's replica partitioned
// away, a reader on another node must fail over to a remote-rack replica
// without stalling — the other replicas are reachable throughout.
func TestReadFailoverDuringPartition(t *testing.T) {
	env, c, fs := rackRig(4, 2)
	fs.EnableRecovery(RecoveryConfig{HeartbeatInterval: 10 * time.Second, DeadTimeout: 100 * time.Second})
	writer, reader := c.Slaves[0], c.Slaves[2] // both rack 0; replicas 2+3 land in rack 1
	want := pattern(180_000)
	env.Go("driver", func(p *sim.Proc) {
		defer fs.StopRecovery()
		w := fs.Create("/cut", writer.Name)
		w.Write(p, want)
		w.Close(p)
		c.Net.Partition("cut-writer", []string{writer.Name})
		r, err := fs.Open("/cut", reader.Name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadAt(p, 0, int64(len(want)))
		if err != nil {
			t.Fatalf("read during writer partition: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Error("failover read returned wrong bytes")
		}
		c.Net.Heal("cut-writer")
	})
	env.Run(0)
	if st := fs.RecoveryStats(); st.NetStalls != 0 {
		t.Errorf("NetStalls = %d; reachable replicas should satisfy the read without stalling", st.NetStalls)
	}
}

// TestReadWaitsOutPartitionHeal: when every replica holder is partitioned
// away from the reader, the read must park in the net-retry backoff loop
// and complete once the partition heals — not fail, not spin.
func TestReadWaitsOutPartitionHeal(t *testing.T) {
	env, c, fs := rackRig(4, 2)
	fs.EnableRecovery(RecoveryConfig{HeartbeatInterval: 10 * time.Second, DeadTimeout: 100 * time.Second})
	writer, reader := c.Slaves[0], c.Slaves[2]
	want := pattern(120_000)
	const healAt = 2 * time.Second
	var doneAt time.Duration
	env.Go("driver", func(p *sim.Proc) {
		defer fs.StopRecovery()
		w := fs.Create("/healed", writer.Name)
		w.Write(p, want)
		w.Close(p)
		locs, err := fs.BlockLocations("/healed")
		if err != nil {
			t.Fatal(err)
		}
		holders := map[string]bool{}
		for _, l := range locs {
			for _, n := range l {
				holders[n] = true
			}
		}
		if holders[reader.Name] {
			t.Fatalf("test setup: reader %s holds a replica", reader.Name)
		}
		cut := make([]string, 0, len(holders))
		for _, s := range c.Slaves {
			if holders[s.Name] {
				cut = append(cut, s.Name)
			}
		}
		start := env.Now()
		env.AfterFunc(healAt, func() { c.Net.Heal("cut-all") })
		c.Net.Partition("cut-all", cut)
		r, err := fs.Open("/healed", reader.Name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadAt(p, 0, int64(len(want)))
		if err != nil {
			t.Fatalf("read across partition heal: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Error("post-heal read returned wrong bytes")
		}
		doneAt = env.Now() - start
	})
	env.Run(0)
	if doneAt < healAt {
		t.Errorf("read completed at +%v, before the heal at +%v", doneAt, healAt)
	}
	if st := fs.RecoveryStats(); st.NetStalls == 0 {
		t.Error("no NetStalls recorded while every replica was unreachable")
	}
}
