package hdfs

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"iochar/internal/sim"
)

// fastRecovery is a recovery config small enough that detection and repair
// complete within a short test run.
func fastRecovery() RecoveryConfig {
	return RecoveryConfig{HeartbeatInterval: 100 * time.Millisecond, DeadTimeout: time.Second, Streams: 2}
}

func TestChunkSums(t *testing.T) {
	data := pattern(40_000)
	sums := chunkSums(data, 16<<10)
	if len(sums) != 3 {
		t.Fatalf("got %d chunks, want 3 (two full 16 KiB + tail)", len(sums))
	}
	if got := chunkSums(nil, 16<<10); len(got) != 0 {
		t.Errorf("empty data produced %d sums", len(got))
	}
	// Same bytes, same sums; one flipped byte in the middle chunk changes
	// exactly that chunk's sum.
	again := chunkSums(data, 16<<10)
	mut := append([]byte(nil), data...)
	mut[20_000] ^= 0xFF
	mutSums := chunkSums(mut, 16<<10)
	for i := range sums {
		if sums[i] != again[i] {
			t.Fatalf("chunk %d not deterministic", i)
		}
		changed := mutSums[i] != sums[i]
		if changed != (i == 1) {
			t.Errorf("chunk %d changed=%v after flipping a byte in chunk 1", i, changed)
		}
	}
}

// TestCorruptReadFailsOverAndRepairs: a checksummed read that hits a corrupt
// replica must serve correct bytes from another copy, report the corruption,
// and the NameNode must re-replicate back to full strength.
func TestCorruptReadFailsOverAndRepairs(t *testing.T) {
	env, c, fs := rig(4)
	fs.EnableIntegrity()
	fs.EnableRecovery(fastRecovery())
	want := pattern(150_000)
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/f", c.Slaves[0].Name)
		w.Write(p, want)
		w.Close(p)

		// Corrupt the writer-local replica; a local-first read from the same
		// node is then guaranteed to hit the bad copy before failing over.
		rng := rand.New(rand.NewSource(7))
		if id := fs.CorruptReplica(c.Slaves[0].Name, "/f", rng); id < 0 {
			t.Fatal("CorruptReplica found no eligible replica")
		}
		r, err := fs.Open("/f", c.Slaves[0].Name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadAt(p, 0, int64(len(want)))
		if err != nil {
			t.Fatalf("read after corruption: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Error("read served wrong bytes instead of failing over")
		}
		fs.WaitRecovered(p)
		fs.StopRecovery()
	})
	env.Run(0)

	st := fs.RecoveryStats()
	if st.ChecksumErrors == 0 {
		t.Error("no checksum error counted")
	}
	if st.CorruptReplicas == 0 {
		t.Error("no corrupt replica reported")
	}
	if st.ReReplicatedBlocks == 0 {
		t.Error("read-repair made no copy")
	}
	if a := fs.AuditReplication(); !a.OK() {
		t.Errorf("replication audit after repair: %s", a.String())
	}
	if bad := fs.AuditIntegrity(); len(bad) != 0 {
		t.Errorf("bad chunks survived read-repair: %v", bad)
	}
}

// TestIntegrityOffServesCorruptBytes pins the gate: without EnableIntegrity
// nothing verifies, so a corrupted local replica is served as-is.
func TestIntegrityOffServesCorruptBytes(t *testing.T) {
	env, c, fs := rig(4)
	want := pattern(100_000)
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/f", c.Slaves[0].Name)
		w.Write(p, want)
		w.Close(p)
		rng := rand.New(rand.NewSource(7))
		if id := fs.CorruptReplica(c.Slaves[0].Name, "/f", rng); id < 0 {
			t.Fatal("CorruptReplica found no eligible replica")
		}
		r, err := fs.Open("/f", c.Slaves[0].Name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadAt(p, 0, int64(len(want)))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, want) {
			t.Error("corrupted replica read back clean — corruption did not land?")
		}
	})
	env.Run(0)
}

// TestScrubberFindsSilentCorruption: corruption in a block nobody reads is
// invisible to the foreground path; a scrub pass must find and repair it.
func TestScrubberFindsSilentCorruption(t *testing.T) {
	env, c, fs := rig(4)
	fs.EnableIntegrity()
	fs.EnableRecovery(fastRecovery())
	fs.EnableScrubber(ScrubConfig{BytesPerSec: -1, PassInterval: 50 * time.Millisecond})
	want := pattern(120_000)
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/silent", c.Slaves[1].Name)
		w.Write(p, want)
		w.Close(p)
		rng := rand.New(rand.NewSource(3))
		if id := fs.CorruptReplica("", "/silent", rng); id < 0 {
			t.Fatal("CorruptReplica found no eligible replica")
		}
		fs.ScrubWait(p)
		fs.WaitRecovered(p)
		fs.StopScrubber()
		fs.StopRecovery()
	})
	env.Run(0)

	st := fs.RecoveryStats()
	if st.ScrubbedBlocks == 0 || st.ScrubbedBytes == 0 {
		t.Errorf("scrubber did no work: %+v", st)
	}
	if st.CorruptReplicas == 0 {
		t.Error("scrubber missed the corruption")
	}
	if bad := fs.AuditIntegrity(); len(bad) != 0 {
		t.Errorf("bad chunks survived scrub: %v", bad)
	}
	if a := fs.AuditReplication(); !a.OK() {
		t.Errorf("replication audit after scrub repair: %s", a.String())
	}
}

// TestScrubberChargesScrubStage: scrub reads must be disk I/O tagged with
// the scrub stage, not free, and not attributed to foreground stages.
func TestScrubberChargesScrubStage(t *testing.T) {
	env, c, fs := rig(3)
	fs.EnableIntegrity()
	env.Go("client", func(p *sim.Proc) {
		w := fs.Create("/s", c.Slaves[0].Name)
		w.Write(p, pattern(80_000))
		w.Close(p)
	})
	env.Run(0)
	// Drop caches so the scrub pass must touch the disks.
	for _, s := range c.Slaves {
		for _, v := range s.HDFSVols {
			v.Cache().DropAll()
		}
	}
	before := int64(0)
	for _, s := range c.Slaves {
		for _, d := range s.HDFSDisks {
			before += int64(d.Stats().SectorsRead)
		}
	}
	fs.EnableScrubber(ScrubConfig{BytesPerSec: -1, PassInterval: time.Second})
	env.Go("wait", func(p *sim.Proc) {
		fs.ScrubWait(p)
		fs.StopScrubber()
	})
	env.Run(0)
	after := int64(0)
	for _, s := range c.Slaves {
		for _, d := range s.HDFSDisks {
			after += int64(d.Stats().SectorsRead)
		}
	}
	if after <= before {
		t.Errorf("scrub pass read no sectors (before=%d after=%d)", before, after)
	}
}

// TestDataLossErrorStructured: when every replica of a block is gone, the
// reader's error must name the path, the lost block IDs, and the file's
// replication target, so callers can tell promised loss from a bug.
func TestDataLossErrorStructured(t *testing.T) {
	env, c, fs := rig(4)
	want := pattern(90_000)
	env.Go("client", func(p *sim.Proc) {
		w := fs.CreateWith("/once", c.Slaves[0].Name, 1)
		w.Write(p, want)
		w.Close(p)
		locs, err := fs.BlockLocations("/once")
		if err != nil {
			t.Fatal(err)
		}
		fs.CrashDataNode(locs[0][0])
		r, err := fs.Open("/once", c.Slaves[1].Name)
		if err != nil {
			t.Fatal(err)
		}
		_, err = r.ReadAt(p, 0, int64(len(want)))
		dl, ok := err.(*DataLossError)
		if !ok {
			t.Fatalf("read error = %v (%T), want *DataLossError", err, err)
		}
		if dl.Path != "/once" {
			t.Errorf("Path = %q, want /once", dl.Path)
		}
		if dl.Want != 1 {
			t.Errorf("Want = %d, want 1", dl.Want)
		}
		if len(dl.Blocks) == 0 {
			t.Error("no lost block IDs named")
		}
	})
	env.Run(0)
}
