// Package cliutil holds the small pieces the command-line front ends
// (cmd/iochar, cmd/mrrun, cmd/bench) share: validation of the numeric
// testbed flags, and stderr reporting of capacity-clamp warnings raised
// during provisioning.
//
// Validation exists because the library's withDefaults policy — reset any
// nonsense value to the documented default — is right for programmatic use
// but wrong at the CLI: `-scale -4096` silently running the (enormous)
// default-scale experiment looks exactly like a hang.
package cliutil

import (
	"fmt"
	"io"
	"sync"
	"time"

	"iochar/internal/disk"
)

// ValidateRunFlags checks the numeric knobs common to the runner CLIs.
// scale must be positive; slaves must be positive; frac must lie in (0, 1];
// interval must be non-negative (0 selects the documented auto default);
// parallel must be non-negative (0 selects GOMAXPROCS).
func ValidateRunFlags(scale int64, slaves int, frac float64, interval time.Duration, parallel int) error {
	if scale <= 0 {
		return fmt.Errorf("-scale must be positive, got %d", scale)
	}
	if slaves <= 0 {
		return fmt.Errorf("-slaves must be positive, got %d", slaves)
	}
	if frac <= 0 || frac > 1 {
		return fmt.Errorf("-input-fraction must be in (0,1], got %v", frac)
	}
	if interval < 0 {
		return fmt.Errorf("-sample-interval must be non-negative (0 = auto), got %v", interval)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be non-negative (0 = GOMAXPROCS), got %d", parallel)
	}
	return nil
}

// ValidateTopologyFlags checks the rack-topology knobs. racks must be
// positive (1 = the flat single-rack network, byte-identical to the
// pre-rack behaviour); uplinkMB is the per-rack ToR uplink bandwidth in
// MB/s and must be non-negative (0 = match the NIC rate, i.e. a
// non-blocking fabric). The racks-vs-slaves bound (every rack must hold a
// slave) is enforced at provisioning time, where both values are known.
func ValidateTopologyFlags(racks int, uplinkMB int64) error {
	if racks < 1 {
		return fmt.Errorf("-racks must be positive, got %d", racks)
	}
	if uplinkMB < 0 {
		return fmt.Errorf("-uplink must be non-negative MB/s (0 = NIC rate), got %d", uplinkMB)
	}
	if uplinkMB > 0 && racks == 1 {
		return fmt.Errorf("-uplink is meaningful only with -racks > 1 (a single rack has no uplinks)")
	}
	return nil
}

// WarnClamps subscribes to the disk package's capacity-clamp bus and prints
// each distinct warning once to w, prefixed with the tool name — the CLI
// surface for "your -scale is so large that capacity ratios no longer
// hold". It returns the unsubscribe function. Safe for concurrent
// notification (parallel suite cells provision concurrently).
func WarnClamps(w io.Writer, tool string) (unsubscribe func()) {
	var mu sync.Mutex
	seen := map[string]bool{}
	return disk.SubscribeScaleClamps(func(cw disk.ClampWarning) {
		msg := cw.String()
		mu.Lock()
		dup := seen[msg]
		seen[msg] = true
		mu.Unlock()
		if !dup {
			fmt.Fprintf(w, "%s: warning: %s\n", tool, msg)
		}
	})
}
