package cliutil

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"iochar/internal/disk"
)

// Regression: non-positive -scale (and friends) used to fall through to the
// library's silent-default policy, so `mrrun -scale -4096` ran the
// default-scale experiment — indistinguishable from a hang. The CLIs now
// validate and exit with a clear message instead.
func TestValidateRunFlags(t *testing.T) {
	ok := func(scale int64, slaves int, frac float64, interval time.Duration, parallel int) {
		t.Helper()
		if err := ValidateRunFlags(scale, slaves, frac, interval, parallel); err != nil {
			t.Errorf("ValidateRunFlags(%d,%d,%v,%v,%d) = %v, want nil", scale, slaves, frac, interval, parallel, err)
		}
	}
	bad := func(want string, scale int64, slaves int, frac float64, interval time.Duration, parallel int) {
		t.Helper()
		err := ValidateRunFlags(scale, slaves, frac, interval, parallel)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("ValidateRunFlags(%d,%d,%v,%v,%d) = %v, want error mentioning %q", scale, slaves, frac, interval, parallel, err, want)
		}
	}
	ok(4096, 10, 1, 0, 0)
	ok(1, 1, 0.25, time.Millisecond, 8)
	bad("-scale", 0, 10, 1, 0, 0)
	bad("-scale", -4096, 10, 1, 0, 0)
	bad("-slaves", 4096, 0, 1, 0, 0)
	bad("-input-fraction", 4096, 10, 0, 0, 0)
	bad("-input-fraction", 4096, 10, 1.5, 0, 0)
	bad("-sample-interval", 4096, 10, 1, -time.Second, 0)
	bad("-parallel", 4096, 10, 1, 0, -1)
}

func TestWarnClampsPrintsEachDistinctWarningOnce(t *testing.T) {
	var buf bytes.Buffer
	unsub := WarnClamps(&buf, "testtool")
	defer unsub()

	p := disk.SeagateST1000NM0011()
	p.Scaled(1 << 20)
	p.Scaled(1 << 20) // identical clamp: deduplicated
	p.Scaled(1 << 21) // different factor: its own line

	out := buf.String()
	if got := strings.Count(out, "testtool: warning:"); got != 2 {
		t.Errorf("got %d warning lines, want 2:\n%s", got, out)
	}
	if !strings.Contains(out, p.Name) {
		t.Errorf("warning should name the device:\n%s", out)
	}

	unsub()
	before := buf.Len()
	p.Scaled(1 << 22)
	if buf.Len() != before {
		t.Error("unsubscribed WarnClamps still printed")
	}
}
