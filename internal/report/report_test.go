package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"iochar/internal/core"
	"iochar/internal/stats"
)

func sampleSeries(vals ...float64) *stats.Series {
	s := stats.NewSeries("s")
	for i, v := range vals {
		s.Add(time.Duration(i)*time.Second, v)
	}
	return s
}

func sampleFigure() *core.FigureData {
	return &core.FigureData{
		ID:    10,
		Title: "Effects of task slots on Disk average size of I/O requests",
		Note:  "mem=16G, compression=on",
		Panels: []core.Panel{
			{
				Title: "HDFS — Avg Size of I/O Requests",
				Unit:  "sectors",
				Rows: []core.SeriesRow{
					{Label: "AGG_1_8", Mean: 100, MeanBusy: 120, Summary: 120, Peak: 300, Series: sampleSeries(80, 120, 160)},
					{Label: "TS_1_8", Mean: 300, MeanBusy: 350, Summary: 350, Peak: 512, Series: sampleSeries(200, 400, 450)},
				},
			},
		},
	}
}

func sampleTable() *core.TableData {
	return &core.TableData{
		ID:     6,
		Title:  "The ratio of HDFS disk utilization",
		Header: []string{"", "AGG", "TS"},
		Rows: [][]string{
			{">90%util", "22.6%", "5.2%"},
			{">95%util", "16.4%", "3.8%"},
		},
	}
}

func TestWriteFigureContainsEveryRow(t *testing.T) {
	var buf bytes.Buffer
	WriteFigure(&buf, sampleFigure())
	out := buf.String()
	for _, want := range []string{"Figure 10", "AGG_1_8", "TS_1_8", "(a)", "sectors", "peak"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFigureBarsScaleToMax(t *testing.T) {
	var buf bytes.Buffer
	WriteFigure(&buf, sampleFigure())
	lines := strings.Split(buf.String(), "\n")
	var aggBar, tsBar int
	for _, l := range lines {
		// Count only inside the |...| bar region; the trailing sparkline can
		// also contain full blocks.
		lo := strings.IndexByte(l, '|')
		hi := strings.LastIndexByte(l, '|')
		if lo < 0 || hi <= lo {
			continue
		}
		n := strings.Count(l[lo:hi], "█")
		if strings.Contains(l, "AGG_1_8") {
			aggBar = n
		}
		if strings.Contains(l, "TS_1_8") {
			tsBar = n
		}
	}
	if tsBar <= aggBar {
		t.Errorf("bar lengths: TS %d should exceed AGG %d", tsBar, aggBar)
	}
	if tsBar != barWidth {
		t.Errorf("max row bar = %d, want full width %d", tsBar, barWidth)
	}
}

func TestWriteTableAligned(t *testing.T) {
	var buf bytes.Buffer
	WriteTable(&buf, sampleTable())
	out := buf.String()
	for _, want := range []string{"Table 6", ">90%util", "22.6%", "AGG"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
	// Header separator present.
	if !strings.Contains(out, "---") {
		t.Error("missing header rule")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline(sampleSeries(0, 5, 10), 3)
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline length %d, want 3", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] >= runes[2] {
		t.Errorf("sparkline not increasing: %q", s)
	}
}

func TestSparklineEmptyAndFlat(t *testing.T) {
	if got := Sparkline(nil, 4); got != "    " {
		t.Errorf("nil series = %q", got)
	}
	flat := Sparkline(sampleSeries(0, 0, 0), 3)
	if !strings.Contains(flat, string(sparkChars[0])) {
		t.Errorf("flat zero series = %q", flat)
	}
}

func TestWriteFigureCSV(t *testing.T) {
	var buf bytes.Buffer
	WriteFigureCSV(&buf, sampleFigure())
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], "10,a,AGG_1_8,") {
		t.Errorf("CSV row malformed: %s", lines[1])
	}
	if !strings.Contains(lines[1], ";") {
		t.Error("CSV row missing series values")
	}
}

func TestWriteTableCSV(t *testing.T) {
	var buf bytes.Buffer
	WriteTableCSV(&buf, sampleTable())
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if lines[1] != ">90%util,22.6%,5.2%" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestMBFormatting(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.0KB",
		3 << 20: "3.0MB",
		5 << 30: "5.00GB",
	}
	for in, want := range cases {
		if got := mb(in); got != want {
			t.Errorf("mb(%d) = %q, want %q", in, got, want)
		}
	}
}
