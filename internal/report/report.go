// Package report renders the characterization results as terminal output:
// grouped horizontal bar charts for figure panels (one bar per
// workload × factor level, as in the paper's figures), sparklines for the
// sampled time series, aligned tables, and CSV export for external
// plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"iochar/internal/core"
	"iochar/internal/iostat"
	"iochar/internal/stats"
)

// barWidth is the maximum bar length in characters.
const barWidth = 42

// sparkChars are the eight quantization levels of a sparkline.
var sparkChars = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a fixed-width unicode strip.
func Sparkline(s *stats.Series, width int) string {
	if s == nil || s.Len() == 0 {
		return strings.Repeat(" ", width)
	}
	d := s.Downsample(width)
	max := d.Max()
	if max <= 0 {
		return strings.Repeat(string(sparkChars[0]), d.Len())
	}
	var sb strings.Builder
	for _, p := range d.Points {
		idx := int(p.V / max * float64(len(sparkChars)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkChars) {
			idx = len(sparkChars) - 1
		}
		sb.WriteRune(sparkChars[idx])
	}
	return sb.String()
}

// bar renders a value as a horizontal bar against the panel maximum.
func bar(v, max float64) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * barWidth)
	if n < 0 {
		n = 0
	}
	if n > barWidth {
		n = barWidth
	}
	return strings.Repeat("█", n)
}

// WriteFigure renders a figure: per panel, a grouped bar chart of the mean
// over busy intervals plus a peak marker and a sparkline of the sampled
// series — the information the paper's time-series plots convey, in a form
// that survives a terminal.
func WriteFigure(w io.Writer, fd *core.FigureData) {
	fmt.Fprintf(w, "Figure %d: %s\n", fd.ID, fd.Title)
	if fd.Note != "" {
		fmt.Fprintf(w, "(baseline: %s)\n", fd.Note)
	}
	for i, panel := range fd.Panels {
		fmt.Fprintf(w, "\n(%c) %s [%s]\n", 'a'+i, panel.Title, panel.Unit)
		max := 0.0
		labelW := 0
		for _, r := range panel.Rows {
			if r.Summary > max {
				max = r.Summary
			}
			if len(r.Label) > labelW {
				labelW = len(r.Label)
			}
		}
		for _, r := range panel.Rows {
			fmt.Fprintf(w, "  %-*s %8.1f |%-*s| peak %8.1f  %s\n",
				labelW, r.Label, r.Summary, barWidth, bar(r.Summary, max), r.Peak,
				Sparkline(r.Series, 24))
		}
	}
	fmt.Fprintln(w)
}

// WriteTable renders a table with aligned columns. Tables with ID 0 are
// extensions (not numbered in the paper) and print title-only.
func WriteTable(w io.Writer, td *core.TableData) {
	if td.ID == 0 {
		fmt.Fprintf(w, "%s\n", td.Title)
	} else {
		fmt.Fprintf(w, "Table %d: %s\n", td.ID, td.Title)
	}
	rows := append([][]string{td.Header}, td.Rows...)
	widths := make([]int, len(td.Header))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var sb strings.Builder
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		fmt.Fprintln(w, "  "+sb.String())
		if ri == 0 {
			total := 0
			for _, wd := range widths {
				total += wd + 2
			}
			fmt.Fprintln(w, "  "+strings.Repeat("-", total-2))
		}
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteFigureCSV emits the figure's rows as CSV: panel, label, mean,
// mean_busy, peak, then the downsampled series values.
func WriteFigureCSV(w io.Writer, fd *core.FigureData) {
	fmt.Fprintln(w, "figure,panel,label,mean,mean_busy,peak,series")
	for i, panel := range fd.Panels {
		for _, r := range panel.Rows {
			var vals []string
			for _, p := range r.Series.Points {
				vals = append(vals, fmt.Sprintf("%.3f", p.V))
			}
			fmt.Fprintf(w, "%d,%c,%s,%.4f,%.4f,%.4f,%s\n",
				fd.ID, 'a'+i, r.Label, r.Mean, r.MeanBusy, r.Peak, strings.Join(vals, ";"))
		}
	}
}

// WriteTableCSV emits the table as plain CSV.
func WriteTableCSV(w io.Writer, td *core.TableData) {
	fmt.Fprintln(w, strings.Join(td.Header, ","))
	for _, row := range td.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// JobSummary renders one run's job counters compactly (used by mrrun).
func JobSummary(w io.Writer, rep *core.RunReport) {
	fmt.Fprintf(w, "workload %s (%s, mem=%dG, compress=%v): %d job(s), runtime %v\n",
		rep.Workload, rep.Factors.Slots.Name, rep.Factors.MemoryGB, rep.Factors.Compress,
		len(rep.Jobs), rep.Wall)
	for i, j := range rep.Jobs {
		fmt.Fprintf(w, "  job %d: maps=%d (attempts: %d local, %d remote, %d speculative) reduces=%d  mapOut=%s (disk %s)  shuffle=%s  out=%s  spills=%d/%d\n",
			i, j.MapTasks, j.LocalMaps, j.RemoteMaps, j.SpeculativeAttempts, j.ReduceTasks,
			mb(j.MapOutputBytes), mb(j.CompressedMapOutput), mb(j.ShuffleBytes),
			mb(j.ReduceOutputBytes), j.Spills, j.ReduceSpills)
	}
	fmt.Fprintf(w, "  HDFS : read %s, wrote %s, %d+%d requests\n",
		mb(int64(rep.HDFS.TotalReadBytes)), mb(int64(rep.HDFS.TotalWrittenBytes)),
		rep.HDFS.TotalReads, rep.HDFS.TotalWrites)
	fmt.Fprintf(w, "  MR   : read %s, wrote %s, %d+%d requests\n",
		mb(int64(rep.MR.TotalReadBytes)), mb(int64(rep.MR.TotalWrittenBytes)),
		rep.MR.TotalReads, rep.MR.TotalWrites)
	if rep.CPUUtil != nil && rep.CPUUtil.Len() > 0 {
		fmt.Fprintf(w, "  CPU  : %.0f%% mean / %.0f%% peak cluster utilization\n",
			rep.CPUUtil.Mean(), rep.CPUUtil.Max())
	}
	writeNetwork(w, rep)
	if rep.Masters != nil {
		nn, jt := rep.NameNode, rep.JobTracker
		fmt.Fprintf(w, "  meta : read %s, wrote %s, %d+%d requests (master-node disks)\n",
			mb(int64(rep.Masters.TotalReadBytes)), mb(int64(rep.Masters.TotalWrittenBytes)),
			rep.Masters.TotalReads, rep.Masters.TotalWrites)
		fmt.Fprintf(w, "  NameNode   : %d edit(s) / %s journaled in %d flush(es), %d checkpoint(s) / %s, leases %d granted / %d released / %d recovered\n",
			nn.JournalRecords, mb(int64(nn.JournalBytes)), nn.JournalBatches,
			nn.Checkpoints, mb(int64(nn.CheckpointBytes)),
			nn.LeaseGrants, nn.LeaseReleases, nn.LeaseRecoveries)
		if nn.Restarts > 0 {
			fmt.Fprintf(w, "    restarts : %d restart(s), replayed %d record(s) / %s, safe mode %v, %d client stall(s) / %v stalled\n",
				nn.Restarts, nn.ReplayRecords, mb(int64(nn.ReplayBytes)),
				nn.SafeModeWait, nn.ClientStalls, nn.StallTime)
		}
		fmt.Fprintf(w, "  JobTracker : %d record(s) / %s journaled in %d flush(es), %d checkpoint(s) / %s\n",
			jt.JournalRecords, mb(int64(jt.JournalBytes)), jt.JournalBatches,
			jt.Checkpoints, mb(int64(jt.CheckpointBytes)))
		if jt.Restarts > 0 {
			fmt.Fprintf(w, "    restarts : %d restart(s), replayed %d record(s) / %s, %d grant stall(s) / %v stalled, %d missed event(s), %d zombie output(s)\n",
				jt.Restarts, jt.ReplayRecords, mb(int64(jt.ReplayBytes)),
				jt.GrantStalls, jt.StallTime, jt.MissedEvents, jt.ZombieOutputs)
		}
	}
	if len(rep.FaultsInjected) > 0 {
		fmt.Fprintf(w, "  faults injected:\n")
		for _, ev := range rep.FaultsInjected {
			fmt.Fprintf(w, "    %s\n", ev)
		}
		rs := rep.Recovery
		fmt.Fprintf(w, "  HDFS recovery: %d block(s) / %s re-replicated, %d dead DataNode(s), %d failed volume(s), %d lost block(s), %d read failover(s), %d pipeline retries\n",
			rs.ReReplicatedBlocks, mb(int64(rs.ReReplicatedBytes)), rs.DeadDataNodes,
			rs.FailedVolumes, rs.LostBlocks, rs.ReadFailovers, rs.PipelineRetries)
		if rs.ChecksumErrors+rs.ScrubbedBlocks > 0 || rs.CorruptReplicas > 0 {
			fmt.Fprintf(w, "  integrity    : %d checksum error(s), %d corrupt replica(s) repaired, %d replica(s) / %s scrubbed\n",
				rs.ChecksumErrors, rs.CorruptReplicas, rs.ScrubbedBlocks, mb(int64(rs.ScrubbedBytes)))
		}
		if rs.BlockReports > 0 {
			fmt.Fprintf(w, "  rejoin       : %d block report(s), %d replica(s) re-adopted, %d stale purged, %d queued repair(s) cancelled\n",
				rs.BlockReports, rs.ReAdoptedReplicas, rs.StaleReplicasPurged, rs.CancelledRepairs)
		}
		var reexec, retries, failed int64
		for _, j := range rep.Jobs {
			reexec += j.ReExecutedMaps
			retries += j.FetchRetries
			failed += j.FailedFetches
		}
		fmt.Fprintf(w, "  MR recovery  : %d re-executed map(s), %d fetch retries, %d failed fetches\n",
			reexec, retries, failed)
	}
}

// writeNetwork renders the fabric's traffic accounting inside JobSummary:
// aggregate NIC traffic, per-uplink bytes and utilization on multi-rack
// runs, and the retransmission/stall counters network faults leave behind.
func writeNetwork(w io.Writer, rep *core.RunReport) {
	ns := rep.Network
	if ns == nil || len(ns.NICs) == 0 {
		return
	}
	var sent, retrans uint64
	var busiestTx time.Duration
	for _, nic := range ns.NICs {
		sent += nic.BytesSent
		retrans += nic.RetransBytes
		if nic.TxBusy > busiestTx {
			busiestTx = nic.TxBusy
		}
	}
	util := func(busy time.Duration) float64 {
		if rep.Wall <= 0 {
			return 0
		}
		return 100 * float64(busy) / float64(rep.Wall)
	}
	fmt.Fprintf(w, "  net  : %s over %d NIC(s), busiest tx %.0f%% utilized",
		mb(int64(sent)), len(ns.NICs), util(busiestTx))
	if ns.Racks > 1 {
		fmt.Fprintf(w, ", %d rack(s)", ns.Racks)
	}
	fmt.Fprintln(w)
	for _, u := range ns.Uplinks {
		fmt.Fprintf(w, "    uplink rack%02d: up %s (%.0f%% util), down %s (%.0f%% util) @ %s/s\n",
			u.Rack, mb(int64(u.BytesUp)), util(u.UpBusy),
			mb(int64(u.BytesDown)), util(u.DownBusy), mb(u.BPS))
	}
	if retrans > 0 || ns.FailedTransfers > 0 || ns.DroppedChunks > 0 {
		fmt.Fprintf(w, "    faults: %s retransmitted (%d dropped chunk(s)), %d failed transfer(s)\n",
			mb(int64(retrans)), ns.DroppedChunks, ns.FailedTransfers)
	}
	var netFetchStalls int64
	for _, j := range rep.Jobs {
		netFetchStalls += j.NetFetchStalls
	}
	rs := rep.Recovery
	if rs.NetStalls > 0 || netFetchStalls > 0 {
		fmt.Fprintf(w, "    stalls: HDFS clients %d / %v waiting out partitions, shuffle %d net fetch retries\n",
			rs.NetStalls, rs.NetStallTime, netFetchStalls)
	}
}

// WriteLatencyDists renders one group's per-request distributions as
// p50/p95/p99/max rows — the tail companion to the Table-4 interval means.
// Groups monitored without EnableHistograms (h == nil) print nothing.
func WriteLatencyDists(w io.Writer, name string, h *iostat.Hists) {
	if h == nil || h.Requests == 0 {
		return
	}
	fmt.Fprintf(w, "  %-5s distributions over %d requests:\n", name, h.Requests)
	row := func(metric string, hist *stats.Histogram, max float64, unit string) {
		// Bucketed quantiles report the bucket's upper edge, which can land
		// past the true maximum; clamp so the row reads consistently.
		q := func(p float64) float64 { return math.Min(hist.Quantile(p), max) }
		fmt.Fprintf(w, "    %-6s p50 %9.2f  p95 %9.2f  p99 %9.2f  max %9.2f  %s\n",
			metric, q(0.50), q(0.95), q(0.99), max, unit)
	}
	row("await", h.Await, h.AwaitMaxMs, "ms")
	row("svctm", h.Svctm, h.SvctmMaxMs, "ms")
	row("rq-sz", h.Size, h.SizeMax, "sectors")
}

func mb(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
