// Command mrrun executes a single workload on the simulated testbed with
// explicit configuration knobs and prints the job counters plus a compact
// iostat view of both disk groups — the "run one benchmark, watch iostat"
// workflow of the paper.
//
// Usage:
//
//	mrrun -workload TS -slots 2_16 -mem 16 -compress
//	mrrun -workload AGG -scale 8192
//	mrrun -workload TS -hist -trace-out ts.csv   # histograms AND a trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"iochar"
	"iochar/internal/cliutil"
	"iochar/internal/disk"
	"iochar/internal/iostat"
	"iochar/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "TS", "TS | AGG | KM | PR | JOIN (extension)")
		slots     = flag.String("slots", "1_8", "task slots config: 1_8 | 2_16")
		mem       = flag.Int("mem", 32, "node memory in GB (paper used 16 or 32)")
		compress  = flag.Bool("compress", false, "compress intermediate data")
		scale     = flag.Int64("scale", 4096, "capacity divisor vs the paper's testbed")
		slaves    = flag.Int("slaves", 10, "number of slave nodes")
		racks     = flag.Int("racks", 1, "rack count: slave i lands in rack i%racks behind a ToR switch (1 = flat network)")
		uplink    = flag.Int64("uplink", 0, "per-rack ToR uplink bandwidth in MB/s (0 = NIC rate; only meaningful with -racks > 1)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		frac      = flag.Float64("input-fraction", 1, "shrink inputs further (0,1]")
		tier      = flag.String("tier", "hdd", "device class for intermediate-data volumes: hdd | ssd (HDFS data disks stay mechanical)")
		interval  = flag.Duration("sample-interval", 0, "iostat sampling interval in virtual time (0 = auto: 1 s scaled down with -scale)")
		traceFile = flag.String("trace", "", "buffer a block-level I/O trace in memory, write CSV to this file (deprecated; prefer -trace-out)")
		streamOut = flag.String("trace-out", "", "stream a block-level I/O trace to this file as requests complete (CSV, or NDJSON if the name ends in .ndjson); O(1) memory")
		hist      = flag.Bool("hist", false, "collect per-request await/svctm/size histograms and print p50/p95/p99/max rows")
		faultStr  = flag.String("faults", "", `fault plan, e.g. "kill-datanode@15s:node=slave-02;restart-datanode@10s:node=slave-01,down=5s;corrupt-block@8s:path=/bench/TS/in/part-000"`)
		verify    = flag.Bool("verify", false, "end-to-end HDFS checksums (CRC32C), verified on every read with failover and read-repair")
		masters   = flag.Bool("master-recovery", false, "journal NameNode/JobTracker state to dedicated master-node disks (restart-namenode/restart-jobtracker faults imply this)")
		scrub     = flag.Int64("scrub", 0, "background replica scrubber: bytes/sec rate limit, -1 = unthrottled, 0 = off (implies -verify)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w, err := iochar.ParseWorkload(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrrun:", err)
		os.Exit(2)
	}
	if err := cliutil.ValidateRunFlags(*scale, *slaves, *frac, *interval, 0); err != nil {
		fmt.Fprintln(os.Stderr, "mrrun:", err)
		os.Exit(2)
	}
	if err := cliutil.ValidateTopologyFlags(*racks, *uplink); err != nil {
		fmt.Fprintln(os.Stderr, "mrrun:", err)
		os.Exit(2)
	}
	tierClass, err := iochar.ParseTier(*tier)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrrun:", err)
		os.Exit(2)
	}
	// Capacity-floor clamps during provisioning mean the requested -scale no
	// longer preserves capacity ratios; surface each distinct one on stderr.
	unsub := cliutil.WarnClamps(os.Stderr, "mrrun")
	defer unsub()
	var sc iochar.SlotsConfig
	switch *slots {
	case "1_8":
		sc = iochar.Slots1x8
	case "2_16":
		sc = iochar.Slots2x16
	default:
		fmt.Fprintf(os.Stderr, "mrrun: unknown slots config %q (want 1_8 or 2_16)\n", *slots)
		os.Exit(2)
	}
	opts := iochar.NewOptions(
		iochar.WithScale(*scale),
		iochar.WithSlaves(*slaves),
		iochar.WithRacks(*racks),
		iochar.WithUplink(*uplink<<20),
		iochar.WithSeed(*seed),
		iochar.WithInputFraction(*frac),
		iochar.WithScrubRate(*scrub),
		iochar.WithSampleInterval(*interval),
		iochar.WithIntermediateTier(tierClass),
	)
	if *hist {
		opts = opts.With(iochar.WithHistograms())
	}
	if *verify || *scrub != 0 {
		opts = opts.With(iochar.WithIntegrity())
	}
	if *masters {
		opts = opts.With(iochar.WithMasterRecovery())
	}
	if *faultStr != "" {
		plan, err := iochar.ParseFaultPlan(*faultStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrrun:", err)
			os.Exit(2)
		}
		opts = opts.With(iochar.WithFaults(plan))
	}

	// All observers ride the same per-disk bus, so any combination of the
	// in-memory collector, the streaming sink, the per-stage accumulator and
	// -hist histograms can watch one run.
	var collector *trace.Collector
	var stream *trace.StreamCollector
	var streamFile *os.File
	var phys *iochar.PhysicalAttribution
	if *traceFile != "" {
		collector = trace.NewCollector()
	}
	if *streamOut != "" {
		f, err := os.Create(*streamOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrrun:", err)
			os.Exit(1)
		}
		streamFile = f
		format := trace.FormatCSV
		if strings.HasSuffix(*streamOut, ".ndjson") {
			format = trace.FormatNDJSON
		}
		stream = trace.NewStreamCollectorFormat(f, format)
	}
	if collector != nil || stream != nil {
		phys = iochar.NewPhysicalAttribution()
		opts = opts.With(iochar.WithTraceAttach(func(dev string, d *disk.Disk) {
			if collector != nil {
				collector.Attach(d, dev)
			}
			if stream != nil {
				stream.Attach(d, dev)
			}
			phys.Attach(d)
		}))
	}

	rep, err := iochar.RunContext(ctx, w, iochar.Factors{
		Slots: sc, MemoryGB: *mem, Compress: *compress,
	}, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrrun:", err)
		os.Exit(1)
	}
	if collector != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrrun:", err)
			os.Exit(1)
		}
		if err := trace.WriteCSV(f, collector.Records()); err != nil {
			fmt.Fprintln(os.Stderr, "mrrun:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %d trace records to %s\n", collector.Len(), *traceFile)
	}
	if stream != nil {
		if err := stream.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mrrun:", err)
			os.Exit(1)
		}
		streamFile.Close()
		fmt.Printf("streamed %d trace records to %s\n", stream.Len(), *streamOut)
	}
	iochar.Summarize(os.Stdout, rep)

	fmt.Println("\niostat (mean over busy intervals / peak):")
	fmt.Printf("  %-10s %16s %16s %14s %12s %14s\n",
		"group", "rMB/s", "wMB/s", "%util", "await(ms)", "avgrq-sz")
	printGroup := func(name string, r *iostat.Report) {
		fmt.Printf("  %-10s %7.1f / %6.1f %7.1f / %6.1f %6.1f / %5.1f %5.2f / %4.1f %7.0f / %5.0f\n",
			name,
			r.RMBs.MeanNonzero(), r.RMBs.Max(),
			r.WMBs.MeanNonzero(), r.WMBs.Max(),
			r.Util.MeanNonzero(), r.Util.Max(),
			r.AwaitMs.MeanNonzero(), r.AwaitMs.Max(),
			r.AvgrqSz.MeanNonzero(), r.AvgrqSz.Max())
	}
	printGroup("HDFS", rep.HDFS)
	printGroup("MapReduce", rep.MR)
	if rep.Masters != nil {
		// Master metadata stream: the NameNode edit journal / fsimage and
		// the JobTracker job-state journal on the master's own disks.
		printGroup("masters", rep.Masters)
	}
	if len(rep.Classes) > 0 {
		// Tiered run: the per-device-class split (every spindle vs every
		// flash device) behind the hdd.*/ssd.* report series.
		classes := make([]string, 0, len(rep.Classes))
		for n := range rep.Classes {
			classes = append(classes, n)
		}
		sort.Strings(classes)
		for _, n := range classes {
			printGroup(n, rep.Classes[n])
		}
	}
	names := make([]string, 0, len(rep.FaultGroups))
	for n := range rep.FaultGroups {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		printGroup(n, rep.FaultGroups[n])
	}
	if *hist {
		fmt.Println("\nper-request distributions (p50/p95/p99/max):")
		iochar.LatencyDists(os.Stdout, "HDFS", rep.HDFS.Hists)
		iochar.LatencyDists(os.Stdout, "MapReduce", rep.MR.Hists)
	}
	if phys != nil {
		fmt.Println()
		iochar.RenderPhysicalAttribution(os.Stdout, phys)
	}
}
