// Command datagen emits BigDataBench-style synthetic data to stdout, for
// inspecting what the workloads consume or for feeding external tools.
//
// Usage:
//
//	datagen -kind text -bytes 1048576 > terasort.dat    # 100-byte records
//	datagen -kind table -bytes 65536                    # order rows
//	datagen -kind points -bytes 65536                   # K-means points
//	datagen -kind graph -bytes 65536                    # PageRank edges
package main

import (
	"flag"
	"fmt"
	"os"

	"iochar/internal/datagen"
)

func main() {
	var (
		kind = flag.String("kind", "text", "text | table | points | graph")
		size = flag.Int64("bytes", 1<<20, "approximate output volume")
		part = flag.Int("part", 0, "part index (parts are independent shards)")
		seed = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	var data []byte
	switch *kind {
	case "text":
		data = datagen.TeraGen{Seed: *seed}.Part(*part, *size)
	case "table":
		data = datagen.OrderGen{Seed: *seed}.Part(*part, *size)
	case "points":
		data = datagen.PointGen{Seed: *seed}.Part(*part, *size)
	case "graph":
		data = datagen.GraphGen{Seed: *seed}.Part(*part, *size)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if _, err := os.Stdout.Write(data); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
