// Command bench measures the simulator itself: host wall-clock, kernel
// events/sec, allocation volume and heap footprint for each workload at a
// fixed seed and scale, plus the cold full -all experiment matrix, emitted
// as a schema-versioned BENCH_<rev>.json comparable across commits.
//
// Usage:
//
//	bench                          # default config -> BENCH_<rev>.json
//	bench -quick                   # smoke-test config (sub-minute)
//	bench -baseline results/BENCH_seed.json   # embed + compare
//	bench -profile-dir prof/       # capture cpu.pprof and heap.pprof
//	bench -check BENCH_abc123.json # validate an existing result and exit
//
// The tool prints a comparison table when -baseline is given and exits
// nonzero if fingerprints diverge (an "optimization" that changed simulated
// results) or the suite output hash moved — speed numbers are only
// comparable between revisions that compute identical results.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"

	"iochar/internal/bench"
	"iochar/internal/core"
	"iochar/internal/disk"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "smoke-test configuration (small inputs, one iteration)")
		scale      = flag.Int64("scale", 0, "override capacity divisor")
		slaves     = flag.Int("slaves", 0, "override slave-node count")
		racks      = flag.Int("racks", 0, "override rack count (slave i lands in rack i%racks; 0 = flat single-rack network)")
		uplink     = flag.Int64("uplink", 0, "per-rack ToR uplink bandwidth in MB/s (0 = NIC rate; only meaningful with -racks > 1)")
		seed       = flag.Int64("seed", 0, "override simulation seed")
		iters      = flag.Int("iterations", 0, "override timed iterations per workload")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default TS,AGG,KM,PR,JOIN)")
		noSuite    = flag.Bool("no-suite", false, "skip the cold -all matrix measurement")
		out        = flag.String("out", "", "output path (default BENCH_<rev>.json)")
		baseline   = flag.String("baseline", "", "prior BENCH_*.json to embed and compare against")
		profileDir = flag.String("profile-dir", "", "capture cpu.pprof and heap.pprof under this directory")
		check      = flag.String("check", "", "validate an existing result JSON against the schema and exit")
		rev        = flag.String("rev", "", "revision label for the output name (default: git short rev)")
		tier       = flag.String("tier", "hdd", "device class for intermediate-data volumes in the workload measurements: hdd | ssd (the suite measurement always runs untiered)")
	)
	flag.Parse()

	// Overrides use 0 as "keep the config default", so only a negative value
	// can be nonsense — reject it instead of silently ignoring it.
	for _, f := range []struct {
		name string
		v    int64
	}{{"-scale", *scale}, {"-slaves", int64(*slaves)}, {"-racks", int64(*racks)}, {"-uplink", *uplink}, {"-iterations", int64(*iters)}} {
		if f.v < 0 {
			fmt.Fprintf(os.Stderr, "bench: %s must be positive (0 = config default), got %d\n", f.name, f.v)
			os.Exit(2)
		}
	}
	tierClass, err := disk.ParseClass(*tier)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}

	if *check != "" {
		if _, err := bench.LoadFile(*check); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid (schema %d)\n", *check, bench.SchemaVersion)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := bench.Default()
	if *quick {
		cfg = bench.Quick()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *slaves > 0 {
		cfg.Slaves = *slaves
	}
	if *racks > 0 {
		cfg.Racks = *racks
	}
	if *uplink > 0 {
		cfg.UplinkBPS = *uplink << 20
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *iters > 0 {
		cfg.Iterations = *iters
	}
	if *noSuite {
		cfg.Suite = false
	}
	cfg.Tier = tierClass
	cfg.ProfileDir = *profileDir
	if *workloads != "" {
		cfg.Workloads = nil
		for _, name := range strings.Split(*workloads, ",") {
			w, err := core.ParseWorkload(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(2)
			}
			cfg.Workloads = append(cfg.Workloads, w)
		}
	}

	var base *bench.Result
	if *baseline != "" {
		b, err := bench.LoadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		base = b
	}

	res, err := bench.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	res.Rev = *rev
	if res.Rev == "" {
		res.Rev = gitRev()
	}
	res.Baseline = base

	path := *out
	if path == "" {
		path = bench.FileName(res.Rev)
	}
	if err := bench.WriteFile(path, res); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", path)

	printResult(res)
	if base != nil {
		ok := printComparison(base, res)
		if !ok {
			os.Exit(1)
		}
	}
}

// gitRev returns the short HEAD revision, or "dev" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

func printResult(r *bench.Result) {
	fmt.Printf("%-9s %12s %14s %14s %12s %12s  %s\n",
		"workload", "wall", "events/sec", "allocs", "alloc-MB", "virtual", "fingerprint")
	for _, w := range r.Workloads {
		fmt.Printf("%-9s %12s %14.0f %14d %12.1f %12s  %s\n",
			w.Workload, fmtNS(w.WallNS), w.EventsPerSec, w.AllocObjects,
			float64(w.AllocBytes)/(1<<20), fmtNS(w.VirtualNS), w.Fingerprint)
	}
	if s := r.Suite; s != nil {
		fmt.Printf("%-9s %12s %14s %14d %12.1f %12s  sha=%s\n",
			"suite", fmtNS(s.WallNS), fmt.Sprintf("%d cells", s.Cells), s.AllocObjects,
			float64(s.AllocBytes)/(1<<20), "-", s.OutputSHA256[:16])
	}
}

// printComparison renders the delta table against the baseline and reports
// whether the two results are comparable. Same-tier results must agree on
// every workload fingerprint and the suite output hash. When the tiers
// differ, per-workload fingerprints diverge by design (the device model
// under the intermediate volumes changed), so the table reports the
// simulated await and virtual-wall deltas instead, and only the untiered
// suite hash gates comparability.
func printComparison(base, cur *bench.Result) bool {
	ok := true
	fmt.Printf("\nvs baseline %s:\n", base.Rev)
	byName := map[string]bench.WorkloadResult{}
	for _, w := range base.Workloads {
		byName[w.Workload] = w
	}
	if base.Config.Tier != cur.Config.Tier {
		fmt.Printf("intermediate tier %s -> %s: comparing simulated effect, not host speed\n",
			base.Config.Tier, cur.Config.Tier)
		fmt.Printf("%-9s %12s %12s %9s   %10s %10s %9s\n",
			"workload", "mr-await-old", "mr-await-new", "Δawait", "vwall-old", "vwall-new", "Δvwall")
		for _, w := range cur.Workloads {
			b, found := byName[w.Workload]
			if !found {
				continue
			}
			fmt.Printf("%-9s %10.3fms %10.3fms %8.1f%%   %10s %10s %8.1f%%\n",
				w.Workload, b.MRAwaitMs, w.MRAwaitMs,
				pctF(b.MRAwaitMs, w.MRAwaitMs),
				fmtNS(b.VirtualNS), fmtNS(w.VirtualNS), pct(b.VirtualNS, w.VirtualNS))
		}
	} else {
		fmt.Printf("%-9s %10s %10s %8s   %10s %8s\n", "workload", "wall-old", "wall-new", "Δwall", "allocs", "Δallocs")
		for _, w := range cur.Workloads {
			b, found := byName[w.Workload]
			if !found {
				continue
			}
			if b.Fingerprint != w.Fingerprint {
				fmt.Printf("%-9s FINGERPRINT DIVERGED (%s -> %s): results not comparable\n",
					w.Workload, b.Fingerprint, w.Fingerprint)
				ok = false
				continue
			}
			fmt.Printf("%-9s %10s %10s %7.1f%%   %10d %7.1f%%\n",
				w.Workload, fmtNS(b.WallNS), fmtNS(w.WallNS), pct(b.WallNS, w.WallNS),
				w.AllocObjects, pct(int64(b.AllocObjects), int64(w.AllocObjects)))
		}
	}
	if base.Suite != nil && cur.Suite != nil {
		switch {
		case base.Suite.OutputSHA256 != cur.Suite.OutputSHA256:
			fmt.Printf("suite     OUTPUT HASH DIVERGED: -all output is no longer byte-identical\n")
			ok = false
		case base.Config.Tier != cur.Config.Tier:
			// The suite always runs untiered, so its hash must agree even
			// across tiers; speed rows would compare different columns here.
			fmt.Printf("suite     output hash identical (%s)\n", cur.Suite.OutputSHA256[:16])
		default:
			fmt.Printf("%-9s %10s %10s %7.1f%%   %10d %7.1f%%\n",
				"suite", fmtNS(base.Suite.WallNS), fmtNS(cur.Suite.WallNS),
				pct(base.Suite.WallNS, cur.Suite.WallNS),
				cur.Suite.AllocObjects, pct(int64(base.Suite.AllocObjects), int64(cur.Suite.AllocObjects)))
		}
	}
	return ok
}

// pct returns the signed percent change from old to new (negative = faster).
func pct(old, new int64) float64 {
	if old == 0 {
		return 0
	}
	return (float64(new) - float64(old)) / float64(old) * 100
}

func pctF(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
