// Command iosim drives the standalone disk model with a synthetic access
// pattern and prints iostat columns per interval — the tool used to
// validate the block-layer model against known patterns (pure sequential
// streams should merge into large requests and saturate transfer bandwidth;
// pure random small requests should be seek-bound with avgrq-sz near the
// issue size).
//
// Usage:
//
//	iosim -pattern seq -op read -reqkb 128 -streams 4 -seconds 10
//	iosim -pattern rand -op write -reqkb 4 -streams 32 -seconds 10
//
// A slow-disk fault plan degrades the device mid-run (fail-slow hardware;
// watch await/%util jump at the event time):
//
//	iosim -pattern seq -op read -reqkb 128 -streams 4 -seconds 10 -faults "slow-disk@5s:factor=8"
//
// It can also replay a trace captured with `mrrun -trace` through an
// alternative configuration ("what would this exact request stream have
// done under FIFO / without merging"):
//
//	iosim -replay ts.trace -dev slave-00.mr0 -sched fifo
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"iochar/internal/disk"
	"iochar/internal/faults"
	"iochar/internal/iostat"
	"iochar/internal/sim"
	"iochar/internal/trace"
)

func main() {
	var (
		pattern = flag.String("pattern", "seq", "seq | rand")
		op      = flag.String("op", "read", "read | write")
		reqKB   = flag.Int("reqkb", 64, "request size in KiB")
		streams = flag.Int("streams", 1, "concurrent streams")
		seconds = flag.Int("seconds", 10, "virtual seconds to run")
		sched   = flag.String("sched", "look", "look | fifo")
		nomerge = flag.Bool("nomerge", false, "disable request merging")
		seed    = flag.Int64("seed", 1, "seed")
		replay  = flag.String("replay", "", "replay a trace CSV instead of generating a pattern")
		dev     = flag.String("dev", "", "device name within the trace (with -replay)")
		faultSt = flag.String("faults", "", `slow-disk fault plan for the device, e.g. "slow-disk@5s:factor=8"`)
	)
	flag.Parse()

	plan, err := faults.ParsePlan(*faultSt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iosim:", err)
		os.Exit(2)
	}
	for _, ev := range plan.Events {
		if ev.Kind != faults.SlowDisk {
			fmt.Fprintf(os.Stderr, "iosim: only slow-disk faults apply to the standalone disk model, got %s\n", ev.Kind)
			os.Exit(2)
		}
	}

	p := disk.SeagateST1000NM0011()
	p.NoMerge = *nomerge
	if *sched == "fifo" {
		p.Scheduler = disk.SchedFIFO
	} else if *sched != "look" {
		fmt.Fprintln(os.Stderr, "iosim: unknown scheduler", *sched)
		os.Exit(2)
	}

	if *replay != "" {
		runReplay(*replay, *dev, p)
		return
	}
	var dop disk.Op
	switch *op {
	case "read":
		dop = disk.Read
	case "write":
		dop = disk.Write
	default:
		fmt.Fprintln(os.Stderr, "iosim: unknown op", *op)
		os.Exit(2)
	}
	sectors := int64(*reqKB) * 1024 / disk.SectorSize
	if sectors <= 0 {
		fmt.Fprintln(os.Stderr, "iosim: request too small")
		os.Exit(2)
	}

	env := sim.New(*seed)
	d := disk.New(env, p)
	for _, ev := range plan.Events {
		ev := ev
		env.AfterFunc(ev.At, func() {
			d.SetSlowFactor(ev.Factor)
			fmt.Fprintf(os.Stderr, "iosim: t=%v %s\n", env.Now(), ev)
		})
	}
	mon := iostat.NewMonitor(time.Second)
	mon.AddGroup("disk", d)
	mon.Start(env)

	horizon := time.Duration(*seconds) * time.Second
	for s := 0; s < *streams; s++ {
		s := s
		env.Go(fmt.Sprintf("stream-%d", s), func(pr *sim.Proc) {
			pos := int64(s) * (p.Sectors / int64(*streams))
			for pr.Now() < horizon {
				var sector int64
				if *pattern == "rand" {
					sector = env.Rand().Int63n(p.Sectors - sectors)
				} else {
					sector = pos
					pos += sectors
					if pos+sectors >= p.Sectors {
						pos = int64(s) * (p.Sectors / int64(*streams))
					}
				}
				d.Do(pr, dop, sector, int(sectors))
			}
		})
	}
	env.Go("stopper", func(pr *sim.Proc) {
		pr.Sleep(horizon)
		mon.Stop(pr.Now())
	})
	env.Run(horizon + time.Second)

	rep := mon.Report("disk")
	fmt.Printf("%8s %10s %10s %8s %10s %10s %10s\n",
		"t(s)", "rMB/s", "wMB/s", "%util", "await(ms)", "svctm(ms)", "avgrq-sz")
	for i := range rep.Util.Points {
		fmt.Printf("%8.0f %10.1f %10.1f %8.1f %10.2f %10.2f %10.1f\n",
			rep.Util.Points[i].T.Seconds(),
			rep.RMBs.Points[i].V, rep.WMBs.Points[i].V, rep.Util.Points[i].V,
			rep.AwaitMs.Points[i].V, rep.SvctmMs.Points[i].V, rep.AvgrqSz.Points[i].V)
	}
	st := d.Stats()
	fmt.Printf("\ntotals: %d reads (%d merged), %d writes (%d merged), %.1f MB read, %.1f MB written\n",
		st.ReadsCompleted, st.ReadsMerged, st.WritesCompleted, st.WritesMerged,
		float64(st.SectorsRead)*disk.SectorSize/(1<<20),
		float64(st.SectorsWritten)*disk.SectorSize/(1<<20))
}

// runReplay replays one device's requests from a trace file through the
// configured disk parameters and prints the timing summary.
func runReplay(path, dev string, p disk.Params) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iosim:", err)
		os.Exit(1)
	}
	defer f.Close()
	recs, err := trace.ReadCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iosim:", err)
		os.Exit(1)
	}
	if dev == "" {
		devs := trace.Devices(recs)
		if len(devs) == 0 {
			fmt.Fprintln(os.Stderr, "iosim: empty trace")
			os.Exit(1)
		}
		dev = devs[0]
		fmt.Fprintf(os.Stderr, "iosim: no -dev given; using %s (of %v)\n", dev, devs)
	}
	res, err := trace.Replay(recs, dev, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iosim:", err)
		os.Exit(1)
	}
	fmt.Printf("replayed %d requests on %s: elapsed %v, device busy %v, mean await %v\n",
		res.Requests, dev, res.Elapsed, res.TotalBusy, res.MeanAwait)
	st := res.DiskStats
	fmt.Printf("reads %d (%d merged), writes %d (%d merged), %.1f MB in, %.1f MB out\n",
		st.ReadsCompleted, st.ReadsMerged, st.WritesCompleted, st.WritesMerged,
		float64(st.SectorsRead)*disk.SectorSize/(1<<20),
		float64(st.SectorsWritten)*disk.SectorSize/(1<<20))
}
