package main

import (
	"reflect"
	"testing"
)

func TestReplayConflicts(t *testing.T) {
	cases := []struct {
		set  []string
		want []string
	}{
		{nil, nil},
		{[]string{"replay", "v"}, nil},
		{[]string{"replay", "runs"}, []string{"runs"}},
		{[]string{"soak", "replay", "workload"}, []string{"soak", "workload"}},
		{[]string{"runs", "soak", "workload"}, []string{"runs", "soak", "workload"}},
		{[]string{"scale", "slaves", "seed", "out"}, nil},
	}
	for _, c := range cases {
		if got := replayConflicts(c.set); !reflect.DeepEqual(got, c.want) {
			t.Errorf("replayConflicts(%v) = %v, want %v", c.set, got, c.want)
		}
	}
}
