// Command chaos drives the randomized fault-injection harness: it draws
// deterministic fault schedules from consecutive seeds, runs workloads under
// them, and judges each run against a fault-free golden reference with the
// full oracle set (output checksums, HDFS replication audit, localfs leak
// accounting, dirty-page check, clean kernel drain). Failing schedules are
// shrunk to a minimal reproduction and written out as replayable JSON.
//
// Usage:
//
//	chaos -seed 1 -runs 8                     # 8 seeds, all four workloads
//	chaos -workload TS -runs 32 -max-faults 4 # hammer one workload harder
//	chaos -workload KM -soak 2m               # loop seeds until the deadline
//	chaos -replay testdata/ts-kill.json       # re-judge a saved schedule
//	chaos -runs 16 -out failures/             # save shrunk failures as JSON
//
// The exit status is 0 when every oracle passed, 1 when any seed failed,
// 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"iochar/internal/chaos"
	"iochar/internal/cliutil"
	"iochar/internal/core"
	"iochar/internal/disk"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "first chaos seed; run i uses seed+i")
		runs      = flag.Int("runs", 8, "seeds to run per workload")
		workload  = flag.String("workload", "", "TS | AGG | KM | PR (empty = all four)")
		maxFaults = flag.Int("max-faults", 3, "max fault events per generated schedule")
		outDir    = flag.String("out", "", "directory to write failing (shrunk) schedules as JSON")
		scale     = flag.Int64("scale", 262144, "capacity divisor vs the paper's testbed")
		slaves    = flag.Int("slaves", 5, "number of slave nodes")
		racks     = flag.Int("racks", 1, "rack count: slave i lands in rack i%racks behind a ToR switch (1 = flat network; recorded in generated schedules)")
		uplink    = flag.Int64("uplink", 0, "per-rack ToR uplink bandwidth in MB/s (0 = NIC rate; only meaningful with -racks > 1)")
		mapTasks  = flag.Int64("map-tasks", 8, "map-task target for the largest workload")
		tier      = flag.String("tier", "hdd", "device class for intermediate-data volumes: hdd | ssd (generated schedules record it; note ssd constrains -scale)")
		masters   = flag.Bool("master-recovery", false, "force the journaled NameNode/JobTracker layers on for every run, so slave-fault schedules also exercise them (master-fault schedules imply this; recorded in generated schedules)")
		parallel  = flag.Int("parallel", 1, "concurrent chaos runs (verdicts are identical at any value)")
		soak      = flag.Duration("soak", 0, "loop seeds until this much wall-clock time has passed (overrides -runs)")
		replay    = flag.String("replay", "", "replay a schedule JSON file instead of generating schedules")
		verbose   = flag.Bool("v", false, "print every verdict, not just failures")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *replay != "" {
		var set []string
		flag.Visit(func(f *flag.Flag) { set = append(set, f.Name) })
		if c := replayConflicts(set); len(c) > 0 {
			fmt.Fprintf(os.Stderr, "chaos: -replay re-judges one saved schedule and cannot be combined with -%s\n",
				strings.Join(c, ", -"))
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(replayFile(ctx, *replay))
	}

	workloads := core.WorkloadOrder
	if *workload != "" {
		w, err := core.ParseWorkload(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(2)
		}
		workloads = []core.Workload{w}
	}

	tierClass, err := disk.ParseClass(*tier)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(2)
	}
	if err := cliutil.ValidateTopologyFlags(*racks, *uplink); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(2)
	}

	coreOpts := []core.Option{
		core.WithScale(*scale),
		core.WithSlaves(*slaves),
		core.WithRacks(*racks),
		core.WithUplink(*uplink << 20),
		core.WithMapTaskTarget(*mapTasks),
		core.WithIntermediateTier(tierClass),
	}
	if *masters {
		coreOpts = append(coreOpts, core.WithMasterRecovery())
	}
	h := chaos.New(chaos.Options{
		Core:        core.NewOptions(coreOpts...),
		MaxFaults:   *maxFaults,
		Parallelism: *parallel,
	})

	failed := 0
	for _, w := range workloads {
		var verdicts []*chaos.Verdict
		var err error
		if *soak > 0 {
			deadline := time.Now().Add(*soak)
			_, err = h.Soak(ctx, w, *seed, deadline, func(v *chaos.Verdict) {
				verdicts = append(verdicts, v)
			})
		} else {
			verdicts, err = h.RunSeeds(ctx, w, *seed, *runs)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		survived := 0
		for _, v := range verdicts {
			if v.Survived {
				survived++
				if *verbose {
					note := ""
					if n := len(v.ExpectedLoss); n > 0 {
						note = fmt.Sprintf("  (%d expected repl-1 loss(es))", n)
					}
					fmt.Printf("%-4s seed=%-6d SURVIVED  wall=%-12v reexec=%d retries=%d blacklisted=%d  [%s]%s\n",
						v.Schedule.Workload, v.Schedule.ChaosSeed, v.Wall,
						v.Counters.ReExecutedMaps, v.Counters.FetchRetries,
						v.Counters.BlacklistedTrackers, v.Schedule.Plan, note)
				}
				continue
			}
			failed++
			fmt.Printf("%-4s seed=%-6d FAILED    [%s]\n", v.Schedule.Workload, v.Schedule.ChaosSeed, v.Schedule.Plan)
			for _, f := range v.Findings {
				fmt.Printf("      finding: %s\n", f)
			}
			for _, f := range v.ExpectedLoss {
				fmt.Printf("      expected (repl-1): %s\n", f)
			}
			if v.Shrunk != nil {
				fmt.Printf("      shrunk:  [%s]\n", v.Shrunk.Plan)
				if *outDir != "" {
					if path, err := writeSchedule(*outDir, *v.Shrunk); err != nil {
						fmt.Fprintln(os.Stderr, "chaos:", err)
					} else {
						fmt.Printf("      saved:   %s\n", path)
					}
				}
			}
		}
		fmt.Printf("%s: %d/%d seeds survived\n", w, survived, len(verdicts))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// replayConflicts returns, in order, the generation-only flags in set (the
// explicitly passed flag names) that are meaningless next to -replay: a
// replay runs exactly one schedule whose workload and shape come from the
// file, so -soak, -runs, and -workload would be silently ignored — reject
// them instead.
func replayConflicts(set []string) []string {
	conflicting := map[string]bool{"soak": true, "runs": true, "workload": true}
	var out []string
	for _, name := range set {
		if conflicting[name] {
			out = append(out, name)
		}
	}
	return out
}

// replayFile re-judges one saved schedule; exit status as for generation.
func replayFile(ctx context.Context, path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return 2
	}
	s, err := chaos.ParseSchedule(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return 2
	}
	v, err := chaos.Replay(ctx, s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return 1
	}
	if !v.Survived {
		fmt.Printf("%s REPLAY FAILED [%s]\n", s.Workload, s.Plan)
		for _, f := range v.Findings {
			fmt.Printf("  finding: %s\n", f)
		}
		return 1
	}
	fmt.Printf("%s REPLAY SURVIVED [%s] wall=%v reexec=%d retries=%d\n",
		s.Workload, s.Plan, v.Wall, v.Counters.ReExecutedMaps, v.Counters.FetchRetries)
	return 0
}

// writeSchedule saves a shrunk schedule under dir with a collision-free,
// content-describing name.
func writeSchedule(dir string, s chaos.Schedule) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("%s-seed%d.json", s.Workload, s.ChaosSeed)
	path := filepath.Join(dir, name)
	b, err := s.Marshal()
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, b, 0o644)
}
