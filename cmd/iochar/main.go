// Command iochar regenerates the figures and tables of "I/O
// Characterization of Big Data Workloads in Data Centers" on the simulated
// testbed.
//
// Usage:
//
//	iochar -figure 1          # one figure (1-12)
//	iochar -table 6           # one table (5-7)
//	iochar -all               # every figure and table
//	iochar -figure 3 -csv     # CSV instead of terminal rendering
//	iochar -scale 8192        # smaller/faster testbed (default 4096)
//
// Runs are cached within one invocation, so -all executes each experiment
// cell exactly once even though figures share runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"iochar"
)

func main() {
	var (
		figure  = flag.Int("figure", 0, "regenerate paper figure N (1-12)")
		table   = flag.Int("table", 0, "regenerate paper table N (5-7)")
		all     = flag.Bool("all", false, "regenerate every figure and table")
		attr    = flag.Bool("attr", false, "print the per-stage I/O demand breakdown (extension)")
		csv     = flag.Bool("csv", false, "emit CSV instead of terminal charts")
		scale   = flag.Int64("scale", 4096, "capacity divisor vs the paper's testbed")
		slaves  = flag.Int("slaves", 10, "number of slave nodes")
		seed    = flag.Int64("seed", 1, "simulation seed")
		frac    = flag.Float64("input-fraction", 1, "shrink inputs further (0,1]")
		verbose = flag.Bool("v", false, "progress to stderr")
	)
	flag.Parse()

	opts := iochar.Options{Scale: *scale, Slaves: *slaves, Seed: *seed, InputFraction: *frac}
	s := iochar.NewSuite(opts)

	var figures, tables []int
	switch {
	case *all:
		figures, tables = iochar.Figures(), iochar.Tables()
	case *figure != 0:
		figures = []int{*figure}
	case *table != 0:
		tables = []int{*table}
	case *attr:
		// handled below
	default:
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	for _, n := range figures {
		if *verbose {
			fmt.Fprintf(os.Stderr, "figure %d...\n", n)
		}
		var err error
		if *csv {
			err = iochar.RenderFigureCSV(os.Stdout, s, n)
		} else {
			err = iochar.RenderFigure(os.Stdout, s, n)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "iochar:", err)
			os.Exit(1)
		}
	}
	for _, n := range tables {
		if *verbose {
			fmt.Fprintf(os.Stderr, "table %d...\n", n)
		}
		var err error
		if *csv {
			err = iochar.RenderTableCSV(os.Stdout, s, n)
		} else {
			err = iochar.RenderTable(os.Stdout, s, n)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "iochar:", err)
			os.Exit(1)
		}
	}
	if *attr {
		if err := iochar.RenderAttribution(os.Stdout, s); err != nil {
			fmt.Fprintln(os.Stderr, "iochar:", err)
			os.Exit(1)
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "done in %v (%d experiment cells)\n",
			time.Since(start).Round(time.Second), s.CachedRuns())
	}
}
