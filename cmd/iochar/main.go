// Command iochar regenerates the figures and tables of "I/O
// Characterization of Big Data Workloads in Data Centers" on the simulated
// testbed.
//
// Usage:
//
//	iochar -figure 1          # one figure (1-12)
//	iochar -table 6           # one table (5-7)
//	iochar -all               # every figure and table
//	iochar -figure 3 -csv     # CSV instead of terminal rendering
//	iochar -scale 8192        # smaller/faster testbed (default 4096)
//	iochar -all -parallel 4   # fan experiment cells out across 4 workers
//	iochar -all -cache-dir ~/.cache/iochar  # persist cells across runs
//	iochar -hist              # per-request latency/size distributions
//	iochar -trace-out t.csv   # stream baseline block traces to a file
//
// Runs are cached within one invocation, so -all executes each experiment
// cell exactly once even though figures share runs. With -cache-dir the
// cells additionally persist on disk: a repeat invocation under the same
// configuration loads every cell from the cache and renders byte-identical
// output without simulating anything. Ctrl-C cancels a sweep mid-cell.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"iochar"
	"iochar/internal/cliutil"
	"iochar/internal/disk"
	"iochar/internal/trace"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "regenerate paper figure N (1-12)")
		table    = flag.Int("table", 0, "regenerate paper table N (5-7)")
		all      = flag.Bool("all", false, "regenerate every figure and table")
		attr     = flag.Bool("attr", false, "print the per-stage I/O demand breakdown (extension)")
		hist     = flag.Bool("hist", false, "print per-request latency/size distributions for the baseline cells (extension)")
		traceOut = flag.String("trace-out", "", "stream the baseline workloads' block traces to this file (CSV, or NDJSON if the name ends in .ndjson)")
		csv      = flag.Bool("csv", false, "emit CSV instead of terminal charts")
		scale    = flag.Int64("scale", 4096, "capacity divisor vs the paper's testbed")
		slaves   = flag.Int("slaves", 10, "number of slave nodes")
		racks    = flag.Int("racks", 1, "rack count: slave i lands in rack i%racks behind a ToR switch (1 = flat network)")
		uplink   = flag.Int64("uplink", 0, "per-rack ToR uplink bandwidth in MB/s (0 = NIC rate; only meaningful with -racks > 1)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		frac     = flag.Float64("input-fraction", 1, "shrink inputs further (0,1]")
		verify   = flag.Bool("verify", false, "end-to-end HDFS checksums on every cell (extension; timing-neutral)")
		scrub    = flag.Int64("scrub", 0, "background replica scrubber: bytes/sec rate limit, -1 = unthrottled, 0 = off (implies -verify)")
		tier     = flag.String("tier", "hdd", "device class for intermediate-data volumes on every cell: hdd | ssd")
		interval = flag.Duration("sample-interval", 0, "iostat sampling interval in virtual time (0 = auto: 1 s scaled down with -scale)")
		parallel = flag.Int("parallel", 0, "experiment cells to simulate concurrently (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "persist experiment cells under this directory")
		verbose  = flag.Bool("v", false, "per-cell progress to stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := cliutil.ValidateRunFlags(*scale, *slaves, *frac, *interval, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "iochar:", err)
		os.Exit(2)
	}
	if err := cliutil.ValidateTopologyFlags(*racks, *uplink); err != nil {
		fmt.Fprintln(os.Stderr, "iochar:", err)
		os.Exit(2)
	}
	tierClass, err := iochar.ParseTier(*tier)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iochar:", err)
		os.Exit(2)
	}
	unsubClamps := cliutil.WarnClamps(os.Stderr, "iochar")
	defer unsubClamps()

	opts := iochar.NewOptions(
		iochar.WithScale(*scale),
		iochar.WithSlaves(*slaves),
		iochar.WithRacks(*racks),
		iochar.WithUplink(*uplink<<20),
		iochar.WithSeed(*seed),
		iochar.WithInputFraction(*frac),
		iochar.WithScrubRate(*scrub),
		iochar.WithSampleInterval(*interval),
		iochar.WithIntermediateTier(tierClass),
	)
	if *hist {
		opts = opts.With(iochar.WithHistograms())
	}
	if *verify || *scrub != 0 {
		opts = opts.With(iochar.WithIntegrity())
	}
	sopts := []iochar.SuiteOption{iochar.WithParallelism(*parallel)}
	if *cacheDir != "" {
		sopts = append(sopts, iochar.WithCacheDir(*cacheDir))
	}
	if *verbose {
		sopts = append(sopts, iochar.WithProgress(progressLine))
	}
	s := iochar.NewSuite(opts, sopts...)

	var figures, tables []int
	switch {
	case *all:
		figures, tables = iochar.Figures(), iochar.Tables()
	case *figure != 0:
		figures = []int{*figure}
	case *table != 0:
		tables = []int{*table}
	case *attr, *hist, *traceOut != "":
		// handled below
	default:
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	// Resolve every needed cell up front across the worker pool; rendering
	// below then serves purely from memory.
	if err := prewarm(ctx, s, figures, tables); err != nil {
		fmt.Fprintln(os.Stderr, "iochar:", err)
		os.Exit(1)
	}
	for _, n := range figures {
		if *verbose {
			fmt.Fprintf(os.Stderr, "figure %d...\n", n)
		}
		var err error
		if *csv {
			err = iochar.RenderFigureCSV(os.Stdout, s, n)
		} else {
			err = iochar.RenderFigure(os.Stdout, s, n)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "iochar:", err)
			os.Exit(1)
		}
	}
	for _, n := range tables {
		if *verbose {
			fmt.Fprintf(os.Stderr, "table %d...\n", n)
		}
		var err error
		if *csv {
			err = iochar.RenderTableCSV(os.Stdout, s, n)
		} else {
			err = iochar.RenderTable(os.Stdout, s, n)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "iochar:", err)
			os.Exit(1)
		}
	}
	if *attr {
		if err := iochar.RenderAttribution(os.Stdout, s); err != nil {
			fmt.Fprintln(os.Stderr, "iochar:", err)
			os.Exit(1)
		}
	}
	if *hist {
		if err := iochar.RenderLatencyTable(os.Stdout, s); err != nil {
			fmt.Fprintln(os.Stderr, "iochar:", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := streamTraces(ctx, *traceOut, opts); err != nil {
			fmt.Fprintln(os.Stderr, "iochar:", err)
			os.Exit(1)
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "done in %v (%d experiment cells)\n",
			time.Since(start).Round(time.Second), s.CachedRuns())
	}
}

// streamTraces runs every paper workload at the baseline cell with a
// streaming trace sink attached, writing one combined file whose device
// names are prefixed by workload ("TS:slave-03.mr1"). The sink encodes
// records as they complete, so memory stays flat however long the traces
// get. Trace runs bypass the suite cache by construction (live observers
// cannot be serialized).
func streamTraces(ctx context.Context, path string, opts iochar.Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	format := trace.FormatCSV
	if strings.HasSuffix(path, ".ndjson") {
		format = trace.FormatNDJSON
	}
	sink := trace.NewStreamCollectorFormat(f, format)
	for _, w := range iochar.Workloads() {
		prefix := w.String() + ":"
		runOpts := opts.With(iochar.WithTraceAttach(
			func(dev string, d *disk.Disk) { sink.Attach(d, prefix+dev) }))
		if _, err := iochar.RunContext(ctx, w, iochar.SlotsRuns[0], runOpts); err != nil {
			return err
		}
	}
	if err := sink.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "streamed %d trace records to %s\n", sink.Len(), path)
	return nil
}

// prewarm resolves the cells the requested outputs need, in parallel. -all
// sweeps the full matrix; single figures/tables sweep just their own cells.
func prewarm(ctx context.Context, s *iochar.Suite, figures, tables []int) error {
	if len(figures) == len(iochar.Figures()) && len(tables) == len(iochar.Tables()) {
		return s.RunAll(ctx)
	}
	var cells []iochar.Cell
	for _, n := range figures {
		fc, err := iochar.FigureCells(n)
		if err != nil {
			return err
		}
		cells = append(cells, fc...)
	}
	for _, n := range tables {
		tc, err := iochar.TableCells(n)
		if err != nil {
			return err
		}
		cells = append(cells, tc...)
	}
	if len(cells) == 0 {
		return nil
	}
	return s.Prewarm(ctx, cells)
}

// progressLine renders one resolved cell to stderr, e.g.
//
//	cell 3/20 TS_1_8 mem=16G compress=true: executed
//	cell 4/20 KM_2_16 mem=16G compress=true: cache
func progressLine(ev iochar.ProgressEvent) {
	src := "executed"
	if ev.Source == iochar.SourceDisk {
		src = "cache"
	}
	total := ""
	if ev.Total > 0 {
		total = fmt.Sprintf("/%d", ev.Total)
	}
	status := src
	if ev.Err != nil {
		status = src + " FAILED: " + ev.Err.Error()
	}
	fmt.Fprintf(os.Stderr, "cell %d%s %s mem=%dG compress=%v: %s\n",
		ev.Done, total, ev.Factors.Label(ev.Workload), ev.Factors.MemoryGB,
		ev.Factors.Compress, status)
}
